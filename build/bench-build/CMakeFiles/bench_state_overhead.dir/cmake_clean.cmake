file(REMOVE_RECURSE
  "../bench/bench_state_overhead"
  "../bench/bench_state_overhead.pdb"
  "CMakeFiles/bench_state_overhead.dir/bench_state_overhead.cc.o"
  "CMakeFiles/bench_state_overhead.dir/bench_state_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
