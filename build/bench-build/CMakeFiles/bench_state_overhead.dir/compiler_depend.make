# Empty compiler generated dependencies file for bench_state_overhead.
# This may be replaced when dependencies are built.
