file(REMOVE_RECURSE
  "../bench/bench_fig13_failure"
  "../bench/bench_fig13_failure.pdb"
  "CMakeFiles/bench_fig13_failure.dir/bench_fig13_failure.cc.o"
  "CMakeFiles/bench_fig13_failure.dir/bench_fig13_failure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
