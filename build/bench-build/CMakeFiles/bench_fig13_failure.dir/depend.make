# Empty dependencies file for bench_fig13_failure.
# This may be replaced when dependencies are built.
