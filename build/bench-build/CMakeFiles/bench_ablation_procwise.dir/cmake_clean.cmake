file(REMOVE_RECURSE
  "../bench/bench_ablation_procwise"
  "../bench/bench_ablation_procwise.pdb"
  "CMakeFiles/bench_ablation_procwise.dir/bench_ablation_procwise.cc.o"
  "CMakeFiles/bench_ablation_procwise.dir/bench_ablation_procwise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_procwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
