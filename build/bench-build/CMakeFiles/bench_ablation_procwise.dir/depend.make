# Empty dependencies file for bench_ablation_procwise.
# This may be replaced when dependencies are built.
