# Empty dependencies file for bench_ablation_readin.
# This may be replaced when dependencies are built.
