
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_readin.cc" "bench-build/CMakeFiles/bench_ablation_readin.dir/bench_ablation_readin.cc.o" "gcc" "bench-build/CMakeFiles/bench_ablation_readin.dir/bench_ablation_readin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_lrpd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
