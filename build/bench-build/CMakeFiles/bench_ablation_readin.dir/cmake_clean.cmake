file(REMOVE_RECURSE
  "../bench/bench_ablation_readin"
  "../bench/bench_ablation_readin.pdb"
  "CMakeFiles/bench_ablation_readin.dir/bench_ablation_readin.cc.o"
  "CMakeFiles/bench_ablation_readin.dir/bench_ablation_readin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_readin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
