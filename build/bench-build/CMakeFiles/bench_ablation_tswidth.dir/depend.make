# Empty dependencies file for bench_ablation_tswidth.
# This may be replaced when dependencies are built.
