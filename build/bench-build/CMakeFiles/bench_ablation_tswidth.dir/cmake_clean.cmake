file(REMOVE_RECURSE
  "../bench/bench_ablation_tswidth"
  "../bench/bench_ablation_tswidth.pdb"
  "CMakeFiles/bench_ablation_tswidth.dir/bench_ablation_tswidth.cc.o"
  "CMakeFiles/bench_ablation_tswidth.dir/bench_ablation_tswidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tswidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
