file(REMOVE_RECURSE
  "../bench/bench_ablation_detect"
  "../bench/bench_ablation_detect.pdb"
  "CMakeFiles/bench_ablation_detect.dir/bench_ablation_detect.cc.o"
  "CMakeFiles/bench_ablation_detect.dir/bench_ablation_detect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
