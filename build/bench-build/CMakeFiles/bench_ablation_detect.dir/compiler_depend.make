# Empty compiler generated dependencies file for bench_ablation_detect.
# This may be replaced when dependencies are built.
