file(REMOVE_RECURSE
  "../bench/bench_ablation_chunking"
  "../bench/bench_ablation_chunking.pdb"
  "CMakeFiles/bench_ablation_chunking.dir/bench_ablation_chunking.cc.o"
  "CMakeFiles/bench_ablation_chunking.dir/bench_ablation_chunking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
