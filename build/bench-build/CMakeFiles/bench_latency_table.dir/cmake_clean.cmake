file(REMOVE_RECURSE
  "../bench/bench_latency_table"
  "../bench/bench_latency_table.pdb"
  "CMakeFiles/bench_latency_table.dir/bench_latency_table.cc.o"
  "CMakeFiles/bench_latency_table.dir/bench_latency_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
