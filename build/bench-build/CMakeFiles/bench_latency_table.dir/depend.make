# Empty dependencies file for bench_latency_table.
# This may be replaced when dependencies are built.
