file(REMOVE_RECURSE
  "CMakeFiles/example_privatized_workspace.dir/privatized_workspace.cpp.o"
  "CMakeFiles/example_privatized_workspace.dir/privatized_workspace.cpp.o.d"
  "privatized_workspace"
  "privatized_workspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_privatized_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
