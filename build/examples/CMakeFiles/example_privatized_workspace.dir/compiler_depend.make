# Empty compiler generated dependencies file for example_privatized_workspace.
# This may be replaced when dependencies are built.
