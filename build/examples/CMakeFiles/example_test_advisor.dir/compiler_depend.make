# Empty compiler generated dependencies file for example_test_advisor.
# This may be replaced when dependencies are built.
