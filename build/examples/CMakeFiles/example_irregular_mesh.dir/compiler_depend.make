# Empty compiler generated dependencies file for example_irregular_mesh.
# This may be replaced when dependencies are built.
