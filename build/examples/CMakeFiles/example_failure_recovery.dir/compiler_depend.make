# Empty compiler generated dependencies file for example_failure_recovery.
# This may be replaced when dependencies are built.
