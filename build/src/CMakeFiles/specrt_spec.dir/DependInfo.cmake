
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/access_bits.cc" "src/CMakeFiles/specrt_spec.dir/spec/access_bits.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/access_bits.cc.o.d"
  "/root/repo/src/spec/nonpriv.cc" "src/CMakeFiles/specrt_spec.dir/spec/nonpriv.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/nonpriv.cc.o.d"
  "/root/repo/src/spec/oracle.cc" "src/CMakeFiles/specrt_spec.dir/spec/oracle.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/oracle.cc.o.d"
  "/root/repo/src/spec/priv.cc" "src/CMakeFiles/specrt_spec.dir/spec/priv.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/priv.cc.o.d"
  "/root/repo/src/spec/priv_compact.cc" "src/CMakeFiles/specrt_spec.dir/spec/priv_compact.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/priv_compact.cc.o.d"
  "/root/repo/src/spec/spec_unit.cc" "src/CMakeFiles/specrt_spec.dir/spec/spec_unit.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/spec_unit.cc.o.d"
  "/root/repo/src/spec/translation_table.cc" "src/CMakeFiles/specrt_spec.dir/spec/translation_table.cc.o" "gcc" "src/CMakeFiles/specrt_spec.dir/spec/translation_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
