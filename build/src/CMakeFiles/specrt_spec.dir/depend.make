# Empty dependencies file for specrt_spec.
# This may be replaced when dependencies are built.
