file(REMOVE_RECURSE
  "CMakeFiles/specrt_spec.dir/spec/access_bits.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/access_bits.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/nonpriv.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/nonpriv.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/oracle.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/oracle.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/priv.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/priv.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/priv_compact.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/priv_compact.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/spec_unit.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/spec_unit.cc.o.d"
  "CMakeFiles/specrt_spec.dir/spec/translation_table.cc.o"
  "CMakeFiles/specrt_spec.dir/spec/translation_table.cc.o.d"
  "libspecrt_spec.a"
  "libspecrt_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
