file(REMOVE_RECURSE
  "libspecrt_spec.a"
)
