# Empty compiler generated dependencies file for specrt_runtime.
# This may be replaced when dependencies are built.
