file(REMOVE_RECURSE
  "CMakeFiles/specrt_runtime.dir/runtime/checkpoint.cc.o"
  "CMakeFiles/specrt_runtime.dir/runtime/checkpoint.cc.o.d"
  "CMakeFiles/specrt_runtime.dir/runtime/isa.cc.o"
  "CMakeFiles/specrt_runtime.dir/runtime/isa.cc.o.d"
  "CMakeFiles/specrt_runtime.dir/runtime/processor.cc.o"
  "CMakeFiles/specrt_runtime.dir/runtime/processor.cc.o.d"
  "CMakeFiles/specrt_runtime.dir/runtime/scheduler.cc.o"
  "CMakeFiles/specrt_runtime.dir/runtime/scheduler.cc.o.d"
  "CMakeFiles/specrt_runtime.dir/runtime/validate.cc.o"
  "CMakeFiles/specrt_runtime.dir/runtime/validate.cc.o.d"
  "libspecrt_runtime.a"
  "libspecrt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
