file(REMOVE_RECURSE
  "libspecrt_runtime.a"
)
