
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/checkpoint.cc" "src/CMakeFiles/specrt_runtime.dir/runtime/checkpoint.cc.o" "gcc" "src/CMakeFiles/specrt_runtime.dir/runtime/checkpoint.cc.o.d"
  "/root/repo/src/runtime/isa.cc" "src/CMakeFiles/specrt_runtime.dir/runtime/isa.cc.o" "gcc" "src/CMakeFiles/specrt_runtime.dir/runtime/isa.cc.o.d"
  "/root/repo/src/runtime/processor.cc" "src/CMakeFiles/specrt_runtime.dir/runtime/processor.cc.o" "gcc" "src/CMakeFiles/specrt_runtime.dir/runtime/processor.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/CMakeFiles/specrt_runtime.dir/runtime/scheduler.cc.o" "gcc" "src/CMakeFiles/specrt_runtime.dir/runtime/scheduler.cc.o.d"
  "/root/repo/src/runtime/validate.cc" "src/CMakeFiles/specrt_runtime.dir/runtime/validate.cc.o" "gcc" "src/CMakeFiles/specrt_runtime.dir/runtime/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specrt_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
