# Empty dependencies file for specrt_core.
# This may be replaced when dependencies are built.
