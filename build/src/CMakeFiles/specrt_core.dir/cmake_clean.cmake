file(REMOVE_RECURSE
  "CMakeFiles/specrt_core.dir/core/advisor.cc.o"
  "CMakeFiles/specrt_core.dir/core/advisor.cc.o.d"
  "CMakeFiles/specrt_core.dir/core/loop_exec.cc.o"
  "CMakeFiles/specrt_core.dir/core/loop_exec.cc.o.d"
  "CMakeFiles/specrt_core.dir/core/parallelizer.cc.o"
  "CMakeFiles/specrt_core.dir/core/parallelizer.cc.o.d"
  "libspecrt_core.a"
  "libspecrt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
