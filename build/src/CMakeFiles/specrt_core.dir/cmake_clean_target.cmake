file(REMOVE_RECURSE
  "libspecrt_core.a"
)
