# Empty compiler generated dependencies file for specrt_lrpd.
# This may be replaced when dependencies are built.
