file(REMOVE_RECURSE
  "CMakeFiles/specrt_lrpd.dir/lrpd/lrpd.cc.o"
  "CMakeFiles/specrt_lrpd.dir/lrpd/lrpd.cc.o.d"
  "CMakeFiles/specrt_lrpd.dir/lrpd/lrpd_codegen.cc.o"
  "CMakeFiles/specrt_lrpd.dir/lrpd/lrpd_codegen.cc.o.d"
  "libspecrt_lrpd.a"
  "libspecrt_lrpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_lrpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
