file(REMOVE_RECURSE
  "libspecrt_lrpd.a"
)
