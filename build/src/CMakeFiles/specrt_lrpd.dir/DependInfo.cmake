
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lrpd/lrpd.cc" "src/CMakeFiles/specrt_lrpd.dir/lrpd/lrpd.cc.o" "gcc" "src/CMakeFiles/specrt_lrpd.dir/lrpd/lrpd.cc.o.d"
  "/root/repo/src/lrpd/lrpd_codegen.cc" "src/CMakeFiles/specrt_lrpd.dir/lrpd/lrpd_codegen.cc.o" "gcc" "src/CMakeFiles/specrt_lrpd.dir/lrpd/lrpd_codegen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/specrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
