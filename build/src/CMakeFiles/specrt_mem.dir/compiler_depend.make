# Empty compiler generated dependencies file for specrt_mem.
# This may be replaced when dependencies are built.
