
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addr_map.cc" "src/CMakeFiles/specrt_mem.dir/mem/addr_map.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/addr_map.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/specrt_mem.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/cache_ctrl.cc" "src/CMakeFiles/specrt_mem.dir/mem/cache_ctrl.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/cache_ctrl.cc.o.d"
  "/root/repo/src/mem/dir_ctrl.cc" "src/CMakeFiles/specrt_mem.dir/mem/dir_ctrl.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/dir_ctrl.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/CMakeFiles/specrt_mem.dir/mem/directory.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/directory.cc.o.d"
  "/root/repo/src/mem/dsm.cc" "src/CMakeFiles/specrt_mem.dir/mem/dsm.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/dsm.cc.o.d"
  "/root/repo/src/mem/msg.cc" "src/CMakeFiles/specrt_mem.dir/mem/msg.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/msg.cc.o.d"
  "/root/repo/src/mem/network.cc" "src/CMakeFiles/specrt_mem.dir/mem/network.cc.o" "gcc" "src/CMakeFiles/specrt_mem.dir/mem/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
