file(REMOVE_RECURSE
  "libspecrt_mem.a"
)
