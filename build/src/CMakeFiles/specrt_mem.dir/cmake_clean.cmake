file(REMOVE_RECURSE
  "CMakeFiles/specrt_mem.dir/mem/addr_map.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/addr_map.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/cache.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/cache_ctrl.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/cache_ctrl.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/dir_ctrl.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/dir_ctrl.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/directory.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/directory.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/dsm.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/dsm.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/msg.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/msg.cc.o.d"
  "CMakeFiles/specrt_mem.dir/mem/network.cc.o"
  "CMakeFiles/specrt_mem.dir/mem/network.cc.o.d"
  "libspecrt_mem.a"
  "libspecrt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
