file(REMOVE_RECURSE
  "libspecrt_workloads.a"
)
