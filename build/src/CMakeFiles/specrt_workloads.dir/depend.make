# Empty dependencies file for specrt_workloads.
# This may be replaced when dependencies are built.
