file(REMOVE_RECURSE
  "CMakeFiles/specrt_workloads.dir/workloads/adm.cc.o"
  "CMakeFiles/specrt_workloads.dir/workloads/adm.cc.o.d"
  "CMakeFiles/specrt_workloads.dir/workloads/microloops.cc.o"
  "CMakeFiles/specrt_workloads.dir/workloads/microloops.cc.o.d"
  "CMakeFiles/specrt_workloads.dir/workloads/ocean.cc.o"
  "CMakeFiles/specrt_workloads.dir/workloads/ocean.cc.o.d"
  "CMakeFiles/specrt_workloads.dir/workloads/p3m.cc.o"
  "CMakeFiles/specrt_workloads.dir/workloads/p3m.cc.o.d"
  "CMakeFiles/specrt_workloads.dir/workloads/track.cc.o"
  "CMakeFiles/specrt_workloads.dir/workloads/track.cc.o.d"
  "libspecrt_workloads.a"
  "libspecrt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
