file(REMOVE_RECURSE
  "CMakeFiles/specrt_sim.dir/sim/config.cc.o"
  "CMakeFiles/specrt_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/specrt_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/specrt_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/specrt_sim.dir/sim/logging.cc.o"
  "CMakeFiles/specrt_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/specrt_sim.dir/sim/random.cc.o"
  "CMakeFiles/specrt_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/specrt_sim.dir/sim/stats.cc.o"
  "CMakeFiles/specrt_sim.dir/sim/stats.cc.o.d"
  "libspecrt_sim.a"
  "libspecrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
