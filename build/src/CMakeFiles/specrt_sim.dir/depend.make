# Empty dependencies file for specrt_sim.
# This may be replaced when dependencies are built.
