file(REMOVE_RECURSE
  "libspecrt_sim.a"
)
