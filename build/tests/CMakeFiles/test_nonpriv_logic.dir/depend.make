# Empty dependencies file for test_nonpriv_logic.
# This may be replaced when dependencies are built.
