file(REMOVE_RECURSE
  "CMakeFiles/test_nonpriv_logic.dir/test_nonpriv_logic.cc.o"
  "CMakeFiles/test_nonpriv_logic.dir/test_nonpriv_logic.cc.o.d"
  "test_nonpriv_logic"
  "test_nonpriv_logic.pdb"
  "test_nonpriv_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonpriv_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
