# Empty dependencies file for test_parallelizer.
# This may be replaced when dependencies are built.
