file(REMOVE_RECURSE
  "CMakeFiles/test_spec_unit.dir/test_spec_unit.cc.o"
  "CMakeFiles/test_spec_unit.dir/test_spec_unit.cc.o.d"
  "test_spec_unit"
  "test_spec_unit.pdb"
  "test_spec_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
