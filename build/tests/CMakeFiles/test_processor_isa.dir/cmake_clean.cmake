file(REMOVE_RECURSE
  "CMakeFiles/test_processor_isa.dir/test_processor_isa.cc.o"
  "CMakeFiles/test_processor_isa.dir/test_processor_isa.cc.o.d"
  "test_processor_isa"
  "test_processor_isa.pdb"
  "test_processor_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processor_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
