# Empty dependencies file for test_processor_isa.
# This may be replaced when dependencies are built.
