# Empty dependencies file for test_oracle_lrpd.
# This may be replaced when dependencies are built.
