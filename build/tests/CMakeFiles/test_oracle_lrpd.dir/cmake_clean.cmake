file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_lrpd.dir/test_oracle_lrpd.cc.o"
  "CMakeFiles/test_oracle_lrpd.dir/test_oracle_lrpd.cc.o.d"
  "test_oracle_lrpd"
  "test_oracle_lrpd.pdb"
  "test_oracle_lrpd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_lrpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
