# Empty dependencies file for test_priv_compact.
# This may be replaced when dependencies are built.
