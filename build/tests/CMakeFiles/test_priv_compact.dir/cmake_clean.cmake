file(REMOVE_RECURSE
  "CMakeFiles/test_priv_compact.dir/test_priv_compact.cc.o"
  "CMakeFiles/test_priv_compact.dir/test_priv_compact.cc.o.d"
  "test_priv_compact"
  "test_priv_compact.pdb"
  "test_priv_compact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priv_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
