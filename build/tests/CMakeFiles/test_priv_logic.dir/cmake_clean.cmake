file(REMOVE_RECURSE
  "CMakeFiles/test_priv_logic.dir/test_priv_logic.cc.o"
  "CMakeFiles/test_priv_logic.dir/test_priv_logic.cc.o.d"
  "test_priv_logic"
  "test_priv_logic.pdb"
  "test_priv_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priv_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
