# Empty dependencies file for test_priv_logic.
# This may be replaced when dependencies are built.
