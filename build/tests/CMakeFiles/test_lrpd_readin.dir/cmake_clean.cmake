file(REMOVE_RECURSE
  "CMakeFiles/test_lrpd_readin.dir/test_lrpd_readin.cc.o"
  "CMakeFiles/test_lrpd_readin.dir/test_lrpd_readin.cc.o.d"
  "test_lrpd_readin"
  "test_lrpd_readin.pdb"
  "test_lrpd_readin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrpd_readin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
