# Empty compiler generated dependencies file for test_lrpd_readin.
# This may be replaced when dependencies are built.
