file(REMOVE_RECURSE
  "CMakeFiles/test_addr_map.dir/test_addr_map.cc.o"
  "CMakeFiles/test_addr_map.dir/test_addr_map.cc.o.d"
  "test_addr_map"
  "test_addr_map.pdb"
  "test_addr_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addr_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
