# Empty dependencies file for test_addr_map.
# This may be replaced when dependencies are built.
