# Empty dependencies file for test_dir_ctrl.
# This may be replaced when dependencies are built.
