file(REMOVE_RECURSE
  "CMakeFiles/test_dir_ctrl.dir/test_dir_ctrl.cc.o"
  "CMakeFiles/test_dir_ctrl.dir/test_dir_ctrl.cc.o.d"
  "test_dir_ctrl"
  "test_dir_ctrl.pdb"
  "test_dir_ctrl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
