# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_addr_map[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_dsm_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_nonpriv_logic[1]_include.cmake")
include("/root/repo/build/tests/test_priv_logic[1]_include.cmake")
include("/root/repo/build/tests/test_priv_compact[1]_include.cmake")
include("/root/repo/build/tests/test_spec_unit[1]_include.cmake")
include("/root/repo/build/tests/test_dir_ctrl[1]_include.cmake")
include("/root/repo/build/tests/test_parallelizer[1]_include.cmake")
include("/root/repo/build/tests/test_reduction[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_lrpd_readin[1]_include.cmake")
include("/root/repo/build/tests/test_torture[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_oracle_lrpd[1]_include.cmake")
include("/root/repo/build/tests/test_processor_isa[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_machine_property[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
