#!/usr/bin/env bash
# Run a simulation campaign: a set of bench binaries, each fanning
# its independent simulations across -j worker threads through the
# campaign runner (sim/campaign.hh). Telemetry from every bench is
# appended to one JSON file, shard merge order fixed by job id, so
# the output is byte-stable for a given (build, seed set, -j).
#
# usage: scripts/run_campaign.sh [-j N] [-o out.json] [-q] [-B dir] [bench...]
#
#   -j N      worker threads per bench (0 = all host cores;
#             default: $SPECRT_JOBS if set, else all host cores)
#   -o PATH   telemetry output (default: campaign_results.json)
#   -q        pass --quick to every bench (CI-smoke sizes)
#   -B DIR    build directory (default: build)
#   bench...  bench names without the bench_ prefix (default: all
#             except micro_host, which is a google-benchmark CLI)
#
# Exits non-zero if any bench fails; the rest still run so one bad
# configuration doesn't hide the others' results.

set -u

jobs="${SPECRT_JOBS:-0}"
out="campaign_results.json"
quick=""
builddir="build"

while getopts "j:o:qB:h" opt; do
    case "$opt" in
        j) jobs="$OPTARG" ;;
        o) out="$OPTARG" ;;
        q) quick="--quick" ;;
        B) builddir="$OPTARG" ;;
        h|*) sed -n '2,20p' "$0"; exit 0 ;;
    esac
done
shift $((OPTIND - 1))

benchdir="$builddir/bench"
if [ ! -d "$benchdir" ]; then
    echo "error: $benchdir not found (build first, or pass -B)" >&2
    exit 2
fi

benches=()
if [ "$#" -gt 0 ]; then
    for name in "$@"; do
        benches+=("$benchdir/bench_$name")
    done
else
    for b in "$benchdir"/bench_*; do
        case "$b" in
            *bench_micro_host) continue ;;
        esac
        benches+=("$b")
    done
fi

rm -f "$out"
rc=0
for b in "${benches[@]}"; do
    if [ ! -x "$b" ]; then
        echo "error: $b not found or not executable" >&2
        rc=1
        continue
    fi
    echo "=== $(basename "$b") (--jobs $jobs) ==="
    "$b" $quick --jobs "$jobs" --out "$out" || rc=1
done

echo
echo "campaign telemetry: $out"
exit "$rc"
