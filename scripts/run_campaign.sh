#!/usr/bin/env bash
# Run a simulation campaign: a set of bench binaries, each fanning
# its independent simulations across -j worker threads through the
# campaign runner (sim/campaign.hh). Telemetry from every bench is
# appended to one JSON file, shard merge order fixed by job id, so
# the output is byte-stable for a given (build, seed set, -j).
#
# usage: scripts/run_campaign.sh [-j N] [-o out.json] [-q] [-B dir]
#        [-p status.json | --progress] [bench...]
#
#   -j N      worker threads per bench (0 = all host cores;
#             default: $SPECRT_JOBS if set, else all host cores)
#   -o PATH   telemetry output (default: campaign_results.json)
#   -q        pass --quick to every bench (CI-smoke sizes)
#   -B DIR    build directory (default: build)
#   -p PATH   stream live progress snapshots to PATH; watch them with
#             scripts/specrt_top.py PATH
#   --progress  shorthand for -p campaign_status.json
#   bench...  bench names without the bench_ prefix (default: all
#             except micro_host, which is a google-benchmark CLI)
#
# Exits non-zero if any bench fails; the rest still run so one bad
# configuration doesn't hide the others' results.

set -u

jobs="${SPECRT_JOBS:-0}"
out="campaign_results.json"
quick=""
builddir="build"
progress=""

# getopts knows no long options: map --progress to -p <default path>.
mapped=()
for arg in "$@"; do
    if [ "$arg" = "--progress" ]; then
        mapped+=("-p" "campaign_status.json")
    else
        mapped+=("$arg")
    fi
done
set -- ${mapped[@]+"${mapped[@]}"}

while getopts "j:o:qB:p:h" opt; do
    case "$opt" in
        j) jobs="$OPTARG" ;;
        o) out="$OPTARG" ;;
        q) quick="--quick" ;;
        B) builddir="$OPTARG" ;;
        p) progress="$OPTARG" ;;
        h|*) sed -n '2,25p' "$0"; exit 0 ;;
    esac
done
shift $((OPTIND - 1))

benchdir="$builddir/bench"
if [ ! -d "$benchdir" ]; then
    echo "error: $benchdir not found (build first, or pass -B)" >&2
    exit 2
fi

benches=()
if [ "$#" -gt 0 ]; then
    for name in "$@"; do
        benches+=("$benchdir/bench_$name")
    done
else
    for b in "$benchdir"/bench_*; do
        case "$b" in
            *bench_micro_host) continue ;;
        esac
        benches+=("$b")
    done
fi

rm -f "$out"
if [ -n "$progress" ]; then
    rm -f "$progress"
    echo "live progress: $progress (scripts/specrt_top.py $progress)"
fi
rc=0
for b in "${benches[@]}"; do
    if [ ! -x "$b" ]; then
        echo "error: $b not found or not executable" >&2
        rc=1
        continue
    fi
    echo "=== $(basename "$b") (--jobs $jobs) ==="
    if [ -n "$progress" ]; then
        "$b" $quick --jobs "$jobs" --out "$out" \
            --status-out "$progress" || rc=1
    else
        "$b" $quick --jobs "$jobs" --out "$out" || rc=1
    fi
done

echo
echo "campaign telemetry: $out"
exit "$rc"
