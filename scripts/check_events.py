#!/usr/bin/env python3
"""Schema checker for the structured event log (obs/event_log.hh).

    scripts/check_events.py events.jsonl

Validates that every line is a standalone JSON object with a known
"ev" kind and that each kind carries its required fields with the
right JSON types. CI runs this against the JSONL a bench wrote with
--events-out, so a malformed emitter fails fast instead of producing
a log nothing can parse.

Exit status: 0 when every line validates, 1 on any violation, 2 on
bad input. --selftest exercises the checker against known-good and
known-bad lines.
"""

import argparse
import json
import sys

# kind -> {field: allowed JSON types}. Extra fields are errors too:
# the emitters write a fixed field set, so anything unexpected means
# an emitter and this schema have drifted apart.
NUM = (int, float)
STR = (str,)
BOOL = (bool,)
SCHEMA = {
    "run_begin": {"t": NUM, "mode": STR, "iters": NUM, "procs": NUM},
    "run_end": {"t": NUM, "mode": STR, "passed": BOOL,
                "infra_failed": BOOL, "total_ticks": NUM,
                "iters": NUM},
    "job_begin": {"job": NUM, "seed": STR},
    "job_end": {"job": NUM, "ok": BOOL, "error": STR},
    "abort": {"t": NUM, "elem": STR, "node": NUM, "iter": NUM,
              "reason": STR, "rule": STR},
    "sw_abort": {"t": NUM, "reason": STR},
    "fault": {"t": NUM, "kind": STR, "msg": STR, "src": NUM,
              "dst": NUM},
    "degrade": {"from": STR, "to": STR, "reason": STR},
    "checkpoint": {"t": NUM, "what": STR},
    "commit": {"t": NUM},
}

FAULT_KINDS = {"drop", "dup", "jitter", "lost"}


def check_line(line, lineno, errors):
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        errors.append(f"line {lineno}: not valid JSON: {e}")
        return
    if not isinstance(obj, dict):
        errors.append(f"line {lineno}: not a JSON object")
        return
    kind = obj.get("ev")
    if kind not in SCHEMA:
        errors.append(f"line {lineno}: unknown event kind {kind!r}")
        return
    fields = SCHEMA[kind]
    for name, types in fields.items():
        if name not in obj:
            errors.append(f"line {lineno}: {kind} missing "
                          f"field {name!r}")
        elif not isinstance(obj[name], types) or \
                (types is NUM and isinstance(obj[name], bool)):
            errors.append(f"line {lineno}: {kind} field {name!r} has "
                          f"type {type(obj[name]).__name__}")
    for name in obj:
        if name != "ev" and name not in fields:
            errors.append(f"line {lineno}: {kind} has unexpected "
                          f"field {name!r}")
    if kind == "fault" and obj.get("kind") not in FAULT_KINDS:
        errors.append(f"line {lineno}: fault kind {obj.get('kind')!r} "
                      f"not in {sorted(FAULT_KINDS)}")


def check_file(path):
    errors = []
    count = 0
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                count += 1
                check_line(line, lineno, errors)
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    for err in errors:
        print(err, file=sys.stderr)
    print(f"{path}: {count} event lines, {len(errors)} violation(s)")
    return 1 if errors else 0


def selftest():
    good = [
        '{"ev":"run_begin","t":0,"mode":"HW","iters":64,"procs":8}',
        '{"ev":"run_end","t":9301,"mode":"HW","passed":true,'
        '"infra_failed":false,"total_ticks":9301,"iters":64}',
        '{"ev":"job_begin","job":3,"seed":"0x1a2b"}',
        '{"ev":"job_end","job":3,"ok":false,"error":"boom"}',
        '{"ev":"abort","t":302,"elem":"0x1a8","node":2,"iter":7,'
        '"reason":"flow dep","rule":"RAW"}',
        '{"ev":"sw_abort","t":10,"reason":"software LRPD test failed"}',
        '{"ev":"fault","t":5,"kind":"drop","msg":"ReadReq",'
        '"src":1,"dst":2}',
        '{"ev":"degrade","from":"HW","to":"SW","reason":"lost"}',
        '{"ev":"checkpoint","t":1,"what":"backup of shared arrays"}',
        '{"ev":"commit","t":99}',
    ]
    for line in good:
        errors = []
        check_line(line, 1, errors)
        assert not errors, f"good line rejected: {line}: {errors}"

    bad = [
        "not json",
        "[1,2,3]",
        '{"ev":"warp_core_breach","t":1}',
        '{"ev":"commit"}',                        # missing t
        '{"ev":"commit","t":"soon"}',             # wrong type
        '{"ev":"commit","t":1,"extra":true}',     # drifted field
        '{"ev":"fault","t":5,"kind":"gamma_ray","msg":"x",'
        '"src":1,"dst":2}',                       # unknown fault kind
        '{"ev":"run_end","t":1,"mode":"HW","passed":1,'
        '"infra_failed":false,"total_ticks":1,"iters":1}',  # bool as int
    ]
    for line in bad:
        errors = []
        check_line(line, 1, errors)
        assert errors, f"bad line accepted: {line}"

    print("selftest: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("jsonl", nargs="?",
                    help="event log written with --events-out")
    ap.add_argument("--selftest", action="store_true",
                    help="validate the checker against known lines")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.jsonl:
        ap.error("jsonl path required (or --selftest)")
    return check_file(args.jsonl)


if __name__ == "__main__":
    sys.exit(main())
