#!/usr/bin/env python3
"""Live campaign dashboard: tail the JSON status file a campaign
streams (bench --status-out PATH / run_campaign.sh --progress) and
render a one-screen progress view in the terminal.

    scripts/specrt_top.py campaign_status.json
    scripts/specrt_top.py --once campaign_status.json   # one frame (CI)

The writer (sim/campaign.cc ProgressPublisher) renames each snapshot
into place atomically, so a read never sees a torn file; a transient
missing file just means the campaign has not started (or has already
moved on), and the watcher keeps polling until a snapshot with
"done": true appears.

Exit status: 0 once the campaign reports done (or immediately with
--once), 2 on bad arguments or an unreadable file that never appears.
"""

import argparse
import json
import sys
import time


def fmt_eta(seconds):
    if seconds is None or seconds < 0:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}:{seconds % 60:02d}"


def bar(done, total, width=40):
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * done / total)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render(snap):
    total = snap.get("total", 0)
    ok = snap.get("ok", 0)
    failed = snap.get("failed", 0)
    running = snap.get("running", 0)
    finished = ok + failed
    lines = [
        f"specrt campaign  {bar(finished, total)} {finished}/{total}"
        f"  eta {fmt_eta(snap.get('eta_s'))}",
        f"  running {running:4d}   ok {ok:4d}   failed {failed:4d}"
        f"   {snap.get('jobs_per_sec', 0):.2f} jobs/s"
        f"   {snap.get('ticks_per_sec', 0):.3g} sim ticks/s",
    ]
    if snap.get("running_jobs"):
        ids = ", ".join(str(j) for j in snap["running_jobs"][:16])
        lines.append(f"  running jobs: {ids}")
    if snap.get("failed_jobs"):
        ids = ", ".join(str(j) for j in snap["failed_jobs"][:16])
        lines.append(f"  FAILED jobs:  {ids}")
    hot = snap.get("hot", "")
    if hot:
        for hl in hot.strip().splitlines():
            lines.append(f"  hot: {hl}")
    if snap.get("done"):
        lines.append("  done.")
    return "\n".join(lines)


def read_snapshot(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        # Not written yet, or mid-rename on a filesystem without
        # atomic rename semantics: treat as "no snapshot yet".
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("status", help="status JSON the campaign streams")
    ap.add_argument("--interval", type=float, default=0.5,
                    help="poll period in seconds (default 0.5)")
    ap.add_argument("--once", action="store_true",
                    help="render one frame and exit (CI smoke)")
    ap.add_argument("--timeout", type=float, default=0,
                    help="give up after this many seconds without a "
                         "readable snapshot (0 = wait forever)")
    args = ap.parse_args()

    waited = 0.0
    while True:
        snap = read_snapshot(args.status)
        if snap is None:
            if args.once:
                print(f"error: no readable snapshot at {args.status}",
                      file=sys.stderr)
                return 2
            if args.timeout and waited >= args.timeout:
                print(f"error: no snapshot at {args.status} after "
                      f"{args.timeout}s", file=sys.stderr)
                return 2
            time.sleep(args.interval)
            waited += args.interval
            continue

        frame = render(snap)
        if args.once:
            print(frame)
            return 0
        # Clear screen + home, then the frame: a cheap full redraw.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        if snap.get("done"):
            return 0
        time.sleep(args.interval)
        waited = 0.0


if __name__ == "__main__":
    sys.exit(main())
