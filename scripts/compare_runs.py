#!/usr/bin/env python3
"""Compare two unified run reports (bench --report-out) and render a
regression-highlighting Markdown table.

    scripts/compare_runs.py base/report.json new/report.json
    scripts/compare_runs.py A.json B.json --fail-on-regression
    scripts/compare_runs.py A.json B.json \\
        --bench-a base/BENCH_results.json \\
        --bench-b new/BENCH_results.json

This is the Python twin of obs::diff / examples/report_diff: the same
flattening (dotted keys, "[i]" array suffixes, bools as 0/1), the
same per-key direction rules (stall cycles up = regression, speedup
up = improvement), the same tolerance band, and the same Markdown
shape, so a table produced here matches one produced by the C++ tool
byte for byte. On top, --bench-a/--bench-b fold in the host-side
figures the deterministic report deliberately excludes (wall time,
peak RSS, arena high-water) as an informational section -- shown,
never classified.

Exit status: 0 on success (no regressions, or --fail-on-regression
not set), 1 when --fail-on-regression is set and regressions exist,
2 on bad input.
"""

import argparse
import json
import sys


def flatten(value, path="", out=None):
    """Mirror of obs::parseReport: numbers+bools into floats, strings
    kept, arrays as path[i], nulls skipped."""
    if out is None:
        out = {"numbers": {}, "strings": {}}
    if isinstance(value, dict):
        for key in value:
            sub = key if not path else f"{path}.{key}"
            flatten(value[key], sub, out)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            flatten(item, f"{path}[{i}]", out)
    elif isinstance(value, bool):
        out["numbers"][path] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        out["numbers"][path] = float(value)
    elif isinstance(value, str):
        out["strings"][path] = value
    # None: skipped
    return out


def key_direction(key):
    """Mirror of obs::keyDirection: -1 lower-better, +1 higher-better,
    0 neutral."""
    # "speedup" anywhere, not just as a suffix: the benches name
    # their headline metrics hw_speedup_mean_16p and the like.
    if "speedup" in key or key.endswith("ticks_per_sec") or \
            key.endswith("events_per_sec"):
        return +1
    if key.startswith("cost.stalls."):
        return -1
    if key.startswith("events.counts."):
        kind = key[len("events.counts."):]
        if kind in ("abort", "sw_abort", "fault", "degrade"):
            return -1
        return 0
    for marker in ("violation", "abort", "lost", "retr",
                   "infra_failed", "failures", "mem_"):
        if marker in key:
            return -1
    return 0


def diff(a, b, tolerance=0.02):
    """Mirror of obs::diff. Returns (rows, compared, regressions,
    improvements); rows are (key, kind, numeric, va, vb, sa, sb)."""
    rows = []
    compared = regressions = improvements = 0
    keys = sorted(set(a["numbers"]) | set(b["numbers"])
                  | set(a["strings"]) | set(b["strings"]))
    for key in keys:
        if key == "schema":
            continue
        na, nb = a["numbers"].get(key), b["numbers"].get(key)
        sa, sb = a["strings"].get(key), b["strings"].get(key)
        in_a = na is not None or sa is not None
        in_b = nb is not None or sb is not None

        if not in_a or not in_b:
            kind = "added" if in_b else "removed"
            numeric = (nb is not None) if in_b else (na is not None)
            rows.append((key, kind, numeric, na or 0.0, nb or 0.0,
                         sa or "", sb or ""))
            continue

        compared += 1
        if na is not None and nb is not None:
            if na == nb:
                continue
            denom = max(abs(na), abs(nb))
            if denom > 0 and abs(nb - na) / denom <= tolerance:
                continue
            direction = key_direction(key)
            if direction == 0:
                kind = "changed"
            elif (nb > na) == (direction > 0):
                kind = "improved"
            else:
                kind = "regressed"
            rows.append((key, kind, True, na, nb, "", ""))
        elif sa is not None and sb is not None:
            if sa == sb:
                continue
            kind = "changed"
            rows.append((key, kind, False, 0.0, 0.0, sa, sb))
        else:
            # Type changed between reports: neutral string row.
            kind = "changed"
            rows.append((key, kind, False, 0.0, 0.0,
                         sa if sa is not None else f"{na:.17g}",
                         sb if sb is not None else f"{nb:.17g}"))
        if kind == "regressed":
            regressions += 1
        elif kind == "improved":
            improvements += 1
    return rows, compared, regressions, improvements


def table_number(v):
    return "%g" % v


def cell(s):
    out = "".join(" " if c in "\n|" else c for c in s)
    if len(out) > 48:
        out = out[:45] + "..."
    return out


STATUS = {
    "regressed": ":x: regressed",
    "improved": ":white_check_mark: improved",
    "changed": "changed",
    "added": "added",
    "removed": "removed",
}


def markdown(rows, compared, regressions, improvements, name_a,
             name_b):
    """Mirror of obs::diffMarkdown."""
    lines = [f"### Run comparison: {name_a} vs {name_b}", ""]
    if not rows:
        lines.append(f"No differences: {compared} keys compared, "
                     "all equal.")
        return "\n".join(lines) + "\n"
    lines.append(f"| key | {name_a} | {name_b} | delta | status |")
    lines.append("|---|---:|---:|---:|---|")
    for key, kind, numeric, va, vb, sa, sb in rows:
        only_a = kind == "removed"
        only_b = kind == "added"
        delta = "n/a"
        if numeric:
            ca = "-" if only_b else table_number(va)
            cb = "-" if only_a else table_number(vb)
            if not only_a and not only_b and va != 0:
                delta = "%+.1f%%" % (100.0 * (vb - va) / va)
        else:
            ca = "-" if only_b else f"`{cell(sa)}`"
            cb = "-" if only_a else f"`{cell(sb)}`"
        lines.append(f"| `{key}` | {ca} | {cb} | {delta} "
                     f"| {STATUS[kind]} |")
    lines.append("")
    lines.append(f"**{compared} keys compared, {len(rows)} "
                 f"difference(s), {regressions} regression(s), "
                 f"{improvements} improvement(s).**")
    return "\n".join(lines) + "\n"


# Host-side keys worth showing from a BENCH_results.json record.
HOST_KEYS = ("wall_ms", "ticks_per_sec", "mem_peak_rss_kb",
             "mem_arena_hwm_blocks")


def host_rows(rec_a, rec_b):
    rows = []
    for key in HOST_KEYS:
        va, vb = rec_a.get(key), rec_b.get(key)
        if va is None and vb is None:
            continue
        rows.append((key, va, vb))
    return rows


def host_markdown(rows, name_a, name_b):
    lines = ["", f"### Host-side figures (informational)", "",
             f"| key | {name_a} | {name_b} | delta |",
             "|---|---:|---:|---:|"]
    for key, va, vb in rows:
        ca = "-" if va is None else table_number(va)
        cb = "-" if vb is None else table_number(vb)
        delta = "n/a"
        if isinstance(va, (int, float)) and \
                isinstance(vb, (int, float)) and va:
            delta = "%+.1f%%" % (100.0 * (vb - va) / va)
        lines.append(f"| `{key}` | {ca} | {cb} | {delta} |")
    lines.append("")
    lines.append("Host figures depend on the machine and are never "
                 "classified as regressions.")
    return "\n".join(lines) + "\n"


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def bench_record(path, bench):
    """The last record in a BENCH_results.json (optionally of one
    bench name)."""
    data = load_json(path)
    if not isinstance(data, list):
        print(f"error: {path} is not a JSON array", file=sys.stderr)
        sys.exit(2)
    picked = None
    for rec in data:
        if isinstance(rec, dict) and \
                (bench is None or rec.get("bench") == bench):
            picked = rec
    if picked is None:
        print(f"error: no matching bench record in {path}",
              file=sys.stderr)
        sys.exit(2)
    return picked


def label_of(path):
    base = path.rsplit("/", 1)[-1]
    if base.endswith(".json"):
        base = base[:-5]
    return base or path


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report_a", help="baseline report.json")
    ap.add_argument("report_b", help="candidate report.json")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="relative change treated as equal "
                         "(default 0.02)")
    ap.add_argument("--name-a", help="label for report A "
                                     "(default: basename)")
    ap.add_argument("--name-b", help="label for report B")
    ap.add_argument("--bench-a", metavar="PATH",
                    help="BENCH_results.json for run A: adds "
                         "informational host-side rows")
    ap.add_argument("--bench-b", metavar="PATH",
                    help="BENCH_results.json for run B")
    ap.add_argument("--bench", help="bench name to pick from the "
                                    "--bench-a/--bench-b files")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 when any key regressed")
    args = ap.parse_args()

    a = flatten(load_json(args.report_a))
    b = flatten(load_json(args.report_b))
    name_a = args.name_a or label_of(args.report_a)
    name_b = args.name_b or label_of(args.report_b)

    rows, compared, regressions, improvements = diff(
        a, b, args.tolerance)
    out = markdown(rows, compared, regressions, improvements,
                   name_a, name_b)

    if args.bench_a and args.bench_b:
        rec_a = bench_record(args.bench_a, args.bench)
        rec_b = bench_record(args.bench_b, args.bench)
        hrows = host_rows(rec_a, rec_b)
        if hrows:
            out += host_markdown(hrows, name_a, name_b)

    sys.stdout.write(out)
    return 1 if (args.fail_on_regression and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
