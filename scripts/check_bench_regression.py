#!/usr/bin/env python3
"""Perf gate: compare a fresh BENCH_results.json against the committed
baseline (bench/baseline.json) and fail on throughput regressions.

For every bench present in both files, the current simulation rate
(ticks_per_sec) must stay within a tolerance band of the baseline's.
Benches without a baseline entry, or with a zero/absent rate (e.g.
table-printing benches that simulate nothing), are skipped with a
note. Benches may also declare their own gates via a metric named
``*_speedup`` with a ``min_<metric>`` entry in the baseline.

Exit status: 0 when everything is in band, 1 on any violation, 2 on
bad input.

Refreshing the baseline
-----------------------
Machine speed drifts with the CI runner generation, so the committed
baseline is only compared in *ratio* terms with a wide band (default
+/-75% in CI, because shared runners are noisy; tighten locally with
--tolerance 0.25). To refresh after an intentional engine change:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j
    for b in build/bench/bench_*; do
        "$b" --quick --out /tmp/quick.json || true
    done
    python3 scripts/check_bench_regression.py \
        --results /tmp/quick.json --rebase
    git add bench/baseline.json

--rebase rewrites bench/baseline.json from the current results
instead of comparing.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Record keys the gate interprets. Anything else (e.g. the
# timeline_samples / timeline_series / timeline_out keys written by
# --timeline-out runs) is informational: noted, never a failure, and
# never carried into the baseline by --rebase. mem_* keys (host
# memory figures every record now carries) are informational too,
# but printed with their values instead of the unknown-key note.
KNOWN_RECORD_KEYS = {
    "schema", "bench", "quick", "git_sha", "config_fingerprint",
    "exit_code", "wall_ms", "sim_ticks", "events_fired",
    "ticks_per_sec", "events_per_sec", "runs", "infra_failed_runs",
    "metrics", "stats",
}


def unknown_keys(rec):
    return sorted(k for k in rec
                  if k not in KNOWN_RECORD_KEYS
                  and not k.startswith("mem_"))


def mem_keys(rec):
    """Informational host-memory figures (never gated)."""
    return {k: rec[k] for k in sorted(rec) if k.startswith("mem_")}


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, list):
        print(f"error: {path} is not a JSON array", file=sys.stderr)
        sys.exit(2)
    return data


def latest_by_bench(records):
    """Keep the last record per bench name (results files append)."""
    out = {}
    for rec in records:
        if isinstance(rec, dict) and "bench" in rec:
            out[rec["bench"]] = rec
    return out


def rebase(results, baseline_path):
    base = []
    for name in sorted(results):
        rec = results[name]
        entry = {
            "bench": name,
            "ticks_per_sec": rec.get("ticks_per_sec", 0),
            "events_per_sec": rec.get("events_per_sec", 0),
        }
        # Carry headline speedup metrics as explicit minimum gates.
        # Timeline-derived metrics are observability output, not
        # performance claims; they never become gates.
        metrics = rec.get("metrics", {})
        if not isinstance(metrics, dict):
            metrics = {}
        for key, val in sorted(metrics.items()):
            if key.endswith("_speedup") and \
                    not key.startswith("timeline_"):
                entry[f"min_{key}"] = round(val * 0.8, 3)
        base.append(entry)
    baseline_path.write_text(json.dumps(base, indent=2) + "\n")
    print(f"baseline rewritten: {baseline_path} ({len(base)} benches)")


def compare(results, baseline, tolerance, rows=None):
    """Gate ``results`` against ``baseline``; returns (checked,
    failures). When ``rows`` is a list, one entry per comparison is
    appended for the markdown summary: (status, bench, quantity,
    current, baseline, floor)."""
    failures = 0
    checked = 0
    if rows is None:
        rows = []
    for name in sorted(results):
        rec = results[name]
        extra = unknown_keys(rec)
        if extra:
            print(f"note {name}: ignoring unknown record keys: "
                  + ", ".join(extra))
        mem = mem_keys(rec)
        if mem:
            print(f"info {name}: "
                  + ", ".join(f"{k}={v}" for k, v in mem.items()))
        if rec.get("exit_code", 0) != 0:
            print(f"FAIL {name}: bench exited nonzero "
                  f"({rec.get('exit_code')})")
            rows.append(("FAIL", name, "exit_code",
                         rec.get("exit_code"), 0, 0))
            failures += 1
            continue
        base = baseline.get(name)
        if base is None:
            print(f"skip {name}: no baseline entry "
                  "(run --rebase to add it)")
            rows.append(("skip", name, "ticks_per_sec",
                         rec.get("ticks_per_sec", 0), None, None))
            continue

        cur = rec.get("ticks_per_sec", 0)
        ref = base.get("ticks_per_sec", 0)
        if cur and ref:
            floor = ref * (1.0 - tolerance)
            status = "ok  " if cur >= floor else "FAIL"
            print(f"{status} {name}: {cur:.3g} ticks/s "
                  f"(baseline {ref:.3g}, floor {floor:.3g})")
            rows.append((status.strip(), name, "ticks_per_sec",
                         cur, ref, floor))
            if cur < floor:
                failures += 1
            checked += 1
        else:
            print(f"skip {name}: no simulation rate to compare")

        # Explicit minimum gates (e.g. min_sched_fire_speedup).
        metrics = rec.get("metrics", {})
        if not isinstance(metrics, dict):
            metrics = {}
        for key, floor in base.items():
            if not key.startswith("min_"):
                continue
            metric = key[len("min_"):]
            val = metrics.get(metric)
            if val is None:
                print(f"FAIL {name}: metric {metric} missing")
                rows.append(("FAIL", name, metric, None, None,
                             floor))
                failures += 1
                continue
            status = "ok  " if val >= floor else "FAIL"
            print(f"{status} {name}: {metric} = {val:.3f} "
                  f"(floor {floor})")
            rows.append((status.strip(), name, metric, val, None,
                         floor))
            if val < floor:
                failures += 1
            checked += 1

    print(f"\n{checked} comparisons, {failures} failures")
    return checked, failures


def write_summary(rows, failures, path):
    """Render the comparison rows as a GitHub-flavored markdown table
    (meant for $GITHUB_STEP_SUMMARY)."""

    def num(v):
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    def delta(cur, ref):
        if not isinstance(cur, (int, float)) or not ref:
            return "-"
        return f"{(cur / ref - 1) * 100:+.1f}%"

    lines = [
        "### Perf gate: baseline vs current",
        "",
        "| status | bench | quantity | current | baseline | floor "
        "| vs baseline |",
        "|---|---|---|---|---|---|---|",
    ]
    icon = {"ok": "✅", "FAIL": "❌", "skip": "➖"}
    for status, bench, quantity, cur, ref, floor in rows:
        lines.append(
            f"| {icon.get(status, status)} {status} | {bench} "
            f"| {quantity} | {num(cur)} | {num(ref)} | {num(floor)} "
            f"| {delta(cur, ref)} |")
    lines.append("")
    lines.append(f"**{len(rows)} comparisons, {failures} "
                 f"failure(s).**")
    lines.append("")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")
    print(f"summary table appended to {path}")


def selftest():
    """Verify the gate's record-shape tolerance (run by CI).

    1. Records carrying timeline-derived keys the gate does not know
       must pass untouched (the keys are noted, never failures).
    2. A genuine min_ gate violation must still fail in their
       presence.
    3. --rebase must not turn timeline-derived metrics into gates.
    """
    timeline_rec = {
        "bench": "smoke",
        "exit_code": 0,
        "ticks_per_sec": 100.0,
        "metrics": {"foo_speedup": 1.0},
        "timeline_samples": 5,
        "timeline_series": 3,
        "timeline_out": "timeline.csv",
        "mem_peak_rss_kb": 51200,
        "mem_arena_hwm_blocks": 77,
    }
    assert unknown_keys(timeline_rec) == \
        ["timeline_out", "timeline_samples", "timeline_series"], \
        "mem_* keys are informational, not unknown"
    assert mem_keys(timeline_rec) == \
        {"mem_arena_hwm_blocks": 77, "mem_peak_rss_kb": 51200}

    baseline = {"smoke": {"bench": "smoke", "ticks_per_sec": 100.0,
                          "min_foo_speedup": 0.8}}
    _, failures = compare({"smoke": timeline_rec}, baseline, 0.75)
    assert failures == 0, "unknown timeline keys must not fail the gate"

    slow = dict(timeline_rec, metrics={"foo_speedup": 0.5})
    _, failures = compare({"smoke": slow}, baseline, 0.75)
    assert failures == 1, "a real metric floor violation must still fail"

    rec = dict(timeline_rec,
               metrics={"foo_speedup": 1.0,
                        "timeline_sample_speedup": 9.0})
    with tempfile.TemporaryDirectory() as td:
        out = Path(td) / "baseline.json"
        rebase({"smoke": rec}, out)
        rebased = {b["bench"]: b for b in json.loads(out.read_text())}
    assert "min_foo_speedup" in rebased["smoke"]
    assert "min_timeline_sample_speedup" not in rebased["smoke"], \
        "rebase must not gate timeline-derived metrics"

    # 4. --summary must render every comparison row, pass and fail
    #    alike, as a markdown table.
    rows = []
    _, failures = compare({"smoke": slow}, baseline, 0.75, rows)
    with tempfile.TemporaryDirectory() as td:
        out = Path(td) / "summary.md"
        write_summary(rows, failures, out)
        text = out.read_text()
    assert "| status | bench |" in text, "summary lost its header"
    assert "ticks_per_sec" in text and "foo_speedup" in text, \
        "summary must carry one row per comparison"
    assert "1 failure(s)" in text, "summary must report the verdict"

    print("selftest: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results", default=str(REPO / "BENCH_results.json"))
    ap.add_argument("--baseline", default=str(REPO / "bench" / "baseline.json"))
    ap.add_argument("--tolerance", type=float, default=0.75,
                    help="allowed fractional drop in ticks/sec "
                         "(default 0.75: CI runners are noisy)")
    ap.add_argument("--rebase", action="store_true",
                    help="rewrite the baseline from current results")
    ap.add_argument("--selftest", action="store_true",
                    help="check the gate's own record-shape tolerance")
    ap.add_argument("--summary", metavar="PATH",
                    help="append a markdown baseline-vs-current diff "
                         "table to PATH (use $GITHUB_STEP_SUMMARY "
                         "in CI)")
    args = ap.parse_args()

    if args.selftest:
        return selftest()

    results = latest_by_bench(load(args.results))
    if not results:
        print("error: no bench records in results file", file=sys.stderr)
        return 2

    if args.rebase:
        rebase(results, Path(args.baseline))
        return 0

    baseline = {b["bench"]: b for b in load(args.baseline)}
    rows = []
    _, failures = compare(results, baseline, args.tolerance, rows)
    if args.summary:
        write_summary(rows, failures, args.summary)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
