/**
 * @file
 * Directory-controller behavior: per-line serialization, controller
 * occupancy, superseded writebacks (forward served from the
 * writeback buffer), and transaction bookkeeping.
 */

#include <gtest/gtest.h>

#include "mem/dsm.hh"

using namespace specrt;

namespace
{

struct Rig
{
    MachineConfig cfg;
    std::unique_ptr<DsmSystem> dsm;
    const Region *r;

    explicit Rig(int procs = 4)
    {
        cfg.numProcs = procs;
        dsm = std::make_unique<DsmSystem>(cfg);
        int id = dsm->memory().alloc("A", 1024 * 1024 + 4096, 4,
                                     Placement::Fixed, 0);
        r = &dsm->memory().region(id);
        for (uint64_t e = 0; e < 256; ++e)
            dsm->memory().write(r->elemAddr(e), 4, e + 1);
    }

    Tick
    loadLatency(NodeId n, Addr a)
    {
        Tick t0 = dsm->eventQueue().curTick();
        Tick t1 = t0;
        dsm->cacheCtrl(n).load(a, 4, 1, [&](uint64_t) {
            t1 = dsm->eventQueue().curTick();
        });
        dsm->eventQueue().run();
        return t1 - t0;
    }
};

} // namespace

TEST(DirCtrl, SameLineRequestsSerialize)
{
    Rig rig;
    // Two reads of the same (cold) line issued in the same cycle
    // from different nodes: the second waits for the first
    // transaction to complete at the home.
    Tick t1 = 0, t2 = 0;
    rig.dsm->cacheCtrl(1).load(rig.r->base, 4, 1, [&](uint64_t) {
        t1 = rig.dsm->eventQueue().curTick();
    });
    rig.dsm->cacheCtrl(2).load(rig.r->base, 4, 1, [&](uint64_t) {
        t2 = rig.dsm->eventQueue().curTick();
    });
    rig.dsm->eventQueue().run();
    EXPECT_EQ(std::min(t1, t2), 208u);
    EXPECT_GT(std::max(t1, t2), 208u); // strictly serialized
    EXPECT_EQ(rig.dsm->dirCtrl(0).numTxns(), 2u);
}

TEST(DirCtrl, DifferentLinesOnlyPayOccupancy)
{
    Rig rig;
    Tick t1 = 0, t2 = 0;
    rig.dsm->cacheCtrl(1).load(rig.r->base, 4, 1, [&](uint64_t) {
        t1 = rig.dsm->eventQueue().curTick();
    });
    rig.dsm->cacheCtrl(2).load(rig.r->base + 64, 4, 1, [&](uint64_t) {
        t2 = rig.dsm->eventQueue().curTick();
    });
    rig.dsm->eventQueue().run();
    // The controller pipeline separates them by at most the
    // occupancy, not by a full transaction.
    EXPECT_EQ(std::min(t1, t2), 208u);
    EXPECT_LE(std::max(t1, t2), 208u + rig.cfg.lat.dirOccupancy);
}

TEST(DirCtrl, SupersededWritebackIsDropped)
{
    Rig rig;
    // Node 1 dirties a line, then evicts it (writeback in flight via
    // a conflicting fill), while node 2 writes the same line. The
    // forward may catch node 1 with the line only in its writeback
    // buffer; the home must then drop node 1's writeback as
    // superseded and node 2 must end up the owner with fresh data.
    rig.dsm->cacheCtrl(1).store(rig.r->base, 4, 4141, 1);
    rig.dsm->eventQueue().run();

    // Evict: fill the same L2 set (8192 lines away) with a load.
    rig.dsm->cacheCtrl(1).load(rig.r->base + 8192 * 64, 4, 1,
                               [](uint64_t) {});
    // Same cycle: node 2 writes the line.
    rig.dsm->cacheCtrl(2).store(rig.r->base, 4, 4242, 1);
    rig.dsm->eventQueue().run();

    EXPECT_TRUE(rig.dsm->cacheCtrl(1).quiescent());
    EXPECT_TRUE(rig.dsm->cacheCtrl(2).quiescent());

    const DirEntry *e =
        rig.dsm->dirCtrl(0).directory().find(rig.r->base);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Dirty);
    EXPECT_EQ(e->owner, 2);

    // Node 2's value survives.
    uint64_t v = 0;
    rig.dsm->cacheCtrl(3).load(rig.r->base, 4, 1,
                               [&](uint64_t val) { v = val; });
    rig.dsm->eventQueue().run();
    EXPECT_EQ(v, 4242u);
}

TEST(DirCtrl, BackToBackSharersThenUpgrade)
{
    Rig rig(8);
    for (NodeId n = 1; n < 8; ++n)
        rig.loadLatency(n, rig.r->base);
    const DirEntry *e =
        rig.dsm->dirCtrl(0).directory().find(rig.r->base);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->numSharers(), 7);

    rig.dsm->cacheCtrl(4).store(rig.r->base, 4, 99, 1);
    rig.dsm->eventQueue().run();
    e = rig.dsm->dirCtrl(0).directory().find(rig.r->base);
    EXPECT_EQ(e->state, DirState::Dirty);
    EXPECT_EQ(e->owner, 4);
}

TEST(DirCtrl, ResetForgetsDirectoryState)
{
    Rig rig;
    rig.loadLatency(1, rig.r->base);
    EXPECT_NE(rig.dsm->dirCtrl(0).directory().find(rig.r->base),
              nullptr);
    rig.dsm->resetMachine(true);
    EXPECT_EQ(rig.dsm->dirCtrl(0).directory().find(rig.r->base),
              nullptr);
    EXPECT_EQ(rig.dsm->dirCtrl(0).directory().numEntries(), 0u);
}

TEST(DirCtrl, WritebackMakesLineUncached)
{
    Rig rig;
    rig.dsm->cacheCtrl(1).store(rig.r->base, 4, 7, 1);
    rig.dsm->eventQueue().run();
    rig.dsm->cacheCtrl(1).load(rig.r->base + 8192 * 64, 4, 1,
                               [](uint64_t) {});
    rig.dsm->eventQueue().run();
    const DirEntry *e =
        rig.dsm->dirCtrl(0).directory().find(rig.r->base);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Uncached);
    EXPECT_EQ(rig.dsm->memory().read(rig.r->base, 4), 7u);
}
