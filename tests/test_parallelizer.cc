/** @file Tests of the SpeculativeParallelizer facade. */

#include <gtest/gtest.h>

#include "core/parallelizer.hh"
#include "sim/logging.hh"
#include "workloads/microloops.hh"

using namespace specrt;

TEST(Parallelizer, CompareRunsAllFourScenarios)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    SpeculativeParallelizer spec(cfg);
    Fig1CLoop loop(64, 256, true, 3);
    ExecConfig xc;
    ScenarioComparison c = spec.compare(loop, xc);
    EXPECT_EQ(c.serial.mode, ExecMode::Serial);
    EXPECT_EQ(c.ideal.mode, ExecMode::Ideal);
    EXPECT_EQ(c.sw.mode, ExecMode::SW);
    EXPECT_EQ(c.hw.mode, ExecMode::HW);
    EXPECT_TRUE(c.hw.passed);
    EXPECT_GT(c.serial.totalTicks, 0u);
    EXPECT_GT(c.hwSpeedup(), 0.0);
    EXPECT_GT(c.idealSpeedup(), 0.0);
    EXPECT_GT(c.swSpeedup(), 0.0);
}

TEST(Parallelizer, SpeedupIsSerialOverScenario)
{
    ScenarioComparison c;
    c.serial.totalTicks = 1000;
    c.hw.totalTicks = 250;
    EXPECT_DOUBLE_EQ(c.speedup(c.hw), 4.0);
}

TEST(Parallelizer, DescribeMentionsPhasesAndFailure)
{
    RunResult r;
    r.mode = ExecMode::HW;
    r.passed = false;
    r.totalTicks = 123;
    r.phases.loop = 10;
    r.phases.backup = 5;
    r.phases.restore = 6;
    r.phases.serial = 100;
    std::string s = SpeculativeParallelizer::describe(r);
    EXPECT_NE(s.find("HW"), std::string::npos);
    EXPECT_NE(s.find("FAILED"), std::string::npos);
    EXPECT_NE(s.find("restore 6"), std::string::npos);
    EXPECT_NE(s.find("serial 100"), std::string::npos);
}

TEST(Parallelizer, ConfigIsValidatedAtConstruction)
{
    setLogThrowOnFatal(true);
    LogSink old = setLogSink([](LogLevel, const std::string &) {});
    MachineConfig cfg;
    cfg.numProcs = -3;
    EXPECT_THROW(SpeculativeParallelizer{cfg}, FatalError);
    setLogSink(old);
    setLogThrowOnFatal(false);
}

TEST(Parallelizer, RunsAreDeterministic)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    SpeculativeParallelizer spec(cfg);
    Fig1CLoop loop(64, 256, true, 3);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    RunResult a = spec.run(loop, xc);
    RunResult b = spec.run(loop, xc);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.phases.loop, b.phases.loop);
    EXPECT_EQ(a.agg.busy, b.agg.busy);
}
