/**
 * @file
 * Tests for the campaign flight recorder (obs/event_log.hh,
 * obs/report.hh): ring bounds and shard merging, exact emitter
 * formats, executor lifecycle instrumentation, byte-identity of the
 * merged event log across campaign fan-outs, report render /
 * round-trip / self-diff, the per-key diff direction rules, the
 * progress status file, and replayable failure attribution.
 *
 * Rule observed throughout (see test_campaign.cc): no gtest
 * assertions inside campaign jobs; jobs record into id-indexed slots
 * and the main thread asserts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "obs/event_log.hh"
#include "obs/report.hh"
#include "sim/campaign.hh"
#include "sim/sim_context.hh"
#include "support/json_checker.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using test_support::validJson;

namespace
{

/**
 * Each test runs in a private SimContext, so its event log starts
 * disabled and empty and the process-level context is untouched.
 * ScopedSimContext re-syncs the obs::enabled() latch on both edges.
 */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scoped = std::make_unique<ScopedSimContext>(ctx);
    }

    void
    TearDown() override
    {
        scoped.reset();
    }

    SimContext ctx;
    std::unique_ptr<ScopedSimContext> scoped;
};

} // namespace

// --- EventLog ring ----------------------------------------------------

TEST_F(ObsTest, RingKeepsNewestAndCountsDrops)
{
    obs::EventLog log;
    log.enable(4);
    for (int i = 0; i < 7; ++i)
        log.emit("line " + std::to_string(i));
    EXPECT_EQ(log.capacity(), 4u);
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.recorded(), 7u);
    EXPECT_EQ(log.dropped(), 3u);
    // Oldest-first iteration over the retained suffix.
    for (size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(log.at(i), "line " + std::to_string(i + 3));
    EXPECT_EQ(log.jsonl(), "line 3\nline 4\nline 5\nline 6\n");

    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_TRUE(log.isOn()) << "clear() keeps the on/off state";
}

TEST_F(ObsTest, EnableReshapesWithoutReordering)
{
    obs::EventLog log;
    log.enable(3);
    for (int i = 0; i < 5; ++i)
        log.emit("e" + std::to_string(i));
    // Growing keeps the retained lines, oldest first.
    log.enable(8);
    EXPECT_EQ(log.jsonl(), "e2\ne3\ne4\n");
    log.emit("e5");
    EXPECT_EQ(log.at(3), "e5");
    // Shrinking sheds oldest-first.
    log.enable(2);
    EXPECT_EQ(log.jsonl(), "e4\ne5\n");
}

TEST_F(ObsTest, MergeAppendsShardsInCallOrder)
{
    obs::EventLog a, b, c, dst;
    a.enable(8);
    a.emit("a0");
    a.emit("a1");
    // b stays empty; c is never enabled but emit() still records
    // (enablement is the emitters' job, merge paths use raw logs).
    c.emit("c0");
    dst.merge(a);
    dst.merge(b);
    dst.merge(c);
    EXPECT_EQ(dst.jsonl(), "a0\na1\nc0\n");
    EXPECT_EQ(dst.recorded(), 3u);

    // A shard that shed lines carries its true emit count along.
    obs::EventLog small;
    small.enable(1);
    small.emit("s0");
    small.emit("s1");
    obs::EventLog sum;
    sum.merge(small);
    EXPECT_EQ(sum.size(), 1u);
    EXPECT_EQ(sum.recorded(), 2u);
    EXPECT_EQ(sum.dropped(), 1u);
}

// --- typed emitters ---------------------------------------------------

TEST_F(ObsTest, DisabledEmittersRecordNothing)
{
    ASSERT_FALSE(obs::enabled());
    obs::runBegin(0, "HW", 64, 8);
    obs::runEnd(9, "HW", true, false, 9, 64);
    obs::jobBegin(1, 0x2a);
    obs::jobEnd(1, true, "");
    obs::abortEvent(3, 0x1a8, 2, 7, "flow dep", "RAW");
    obs::swAbort(4, "lrpd");
    obs::faultInject(5, "drop", "ReadReq", 1, 2);
    obs::degrade("HW", "SW", "lost");
    obs::checkpointMark(6, "backup");
    obs::commitMark(7);
    EXPECT_EQ(obs::log().recorded(), 0u);
}

TEST_F(ObsTest, EmitterLinesAreByteExact)
{
    obs::log().enable();
    obs::refreshEnabled();
    ASSERT_TRUE(obs::enabled());
    obs::runBegin(0, "HW", 64, 8);
    obs::runEnd(9301, "HW", false, false, 9301, 64);
    obs::jobBegin(3, 0x1a2b);
    obs::jobEnd(3, false, "went \"boom\"");
    obs::abortEvent(302, 0x1a8, 2, 7, "flow dep", "RAW");
    obs::swAbort(10, "software LRPD test failed");
    obs::faultInject(5, "drop", "ReadReq", 1, 2);
    obs::degrade("HW", "SW", "lost message");
    obs::checkpointMark(1, "backup of shared arrays");
    obs::commitMark(99);

    const obs::EventLog &log = obs::log();
    ASSERT_EQ(log.size(), 10u);
    EXPECT_EQ(log.at(0), "{\"ev\":\"run_begin\",\"t\":0,\"mode\":"
                         "\"HW\",\"iters\":64,\"procs\":8}");
    EXPECT_EQ(log.at(1),
              "{\"ev\":\"run_end\",\"t\":9301,\"mode\":\"HW\","
              "\"passed\":false,\"infra_failed\":false,"
              "\"total_ticks\":9301,\"iters\":64}");
    EXPECT_EQ(log.at(2), "{\"ev\":\"job_begin\",\"job\":3,"
                         "\"seed\":\"0x1a2b\"}");
    EXPECT_EQ(log.at(3), "{\"ev\":\"job_end\",\"job\":3,\"ok\":false,"
                         "\"error\":\"went \\\"boom\\\"\"}");
    EXPECT_EQ(log.at(4),
              "{\"ev\":\"abort\",\"t\":302,\"elem\":\"0x1a8\","
              "\"node\":2,\"iter\":7,\"reason\":\"flow dep\","
              "\"rule\":\"RAW\"}");
    EXPECT_EQ(log.at(5), "{\"ev\":\"sw_abort\",\"t\":10,\"reason\":"
                         "\"software LRPD test failed\"}");
    EXPECT_EQ(log.at(6),
              "{\"ev\":\"fault\",\"t\":5,\"kind\":\"drop\","
              "\"msg\":\"ReadReq\",\"src\":1,\"dst\":2}");
    EXPECT_EQ(log.at(7), "{\"ev\":\"degrade\",\"from\":\"HW\","
                         "\"to\":\"SW\",\"reason\":\"lost message\"}");
    EXPECT_EQ(log.at(8), "{\"ev\":\"checkpoint\",\"t\":1,\"what\":"
                         "\"backup of shared arrays\"}");
    EXPECT_EQ(log.at(9), "{\"ev\":\"commit\",\"t\":99}");
    // Every line is standalone JSON (the schema checker's contract).
    for (size_t i = 0; i < log.size(); ++i)
        EXPECT_TRUE(validJson(log.at(i))) << log.at(i);
}

TEST_F(ObsTest, EnvEnableIsPerContext)
{
    setenv("SPECRT_EVENTS", "1", 1);
    SimContext inner;
    {
        ScopedSimContext active(inner);
        EXPECT_TRUE(obs::maybeEnableFromEnv());
        EXPECT_TRUE(obs::enabled());
    }
    unsetenv("SPECRT_EVENTS");
    // The outer (fixture) context was never env-enabled.
    EXPECT_FALSE(obs::enabled());
    SimContext off;
    {
        ScopedSimContext active(off);
        EXPECT_FALSE(obs::maybeEnableFromEnv());
    }
}

// --- executor lifecycle instrumentation -------------------------------

namespace
{

/** Run @p w under HW speculation with the current log collecting. */
RunResult
instrumentedRun(Workload &w)
{
    obs::log().enable();
    obs::refreshEnabled();
    MachineConfig cfg;
    cfg.numProcs = 4;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, w, xc);
    return exec.run();
}

} // namespace

TEST_F(ObsTest, ExecutorEmitsLifecycleEvents)
{
    Fig1BLoop parallel(16); // privatizable swap: HW run passes
    RunResult r = instrumentedRun(parallel);
    ASSERT_TRUE(r.passed);
    std::string jsonl = obs::log().jsonl();
    EXPECT_NE(jsonl.find("\"ev\":\"run_begin\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"ev\":\"checkpoint\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"ev\":\"commit\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"passed\":true"), std::string::npos);
    ASSERT_GE(obs::log().size(), 2u);
    EXPECT_EQ(obs::log().at(0).find("{\"ev\":\"run_begin\""), 0u);
    EXPECT_EQ(obs::log().at(obs::log().size() - 1)
                  .find("{\"ev\":\"run_end\""),
              0u);
}

TEST_F(ObsTest, ExecutorEmitsAbortAttribution)
{
    Fig1ALoop serialDep(16); // A(i) += A(i-1): HW speculation aborts
    RunResult r = instrumentedRun(serialDep);
    ASSERT_FALSE(r.passed);
    std::string jsonl = obs::log().jsonl();
    EXPECT_NE(jsonl.find("\"ev\":\"abort\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"passed\":false"), std::string::npos);
}

// --- campaign merge determinism ---------------------------------------

namespace
{

/**
 * Run an n-job campaign where each job fills its own event log with
 * a real executor run, capture the per-job shards, and merge them in
 * job-id order -- exactly what bench::runJobs does. The merged JSONL
 * must not depend on the worker count.
 */
std::string
mergedCampaignEvents(size_t n, unsigned workers)
{
    std::vector<obs::EventLog> shards(n);
    campaign::Options o;
    o.jobs = workers;
    o.baseSeed = 7;
    campaign::run(
        n,
        [&](size_t id, SimContext &) {
            obs::log().enable();
            obs::refreshEnabled();
            Fig1BLoop loop(8 + 2 * id);
            MachineConfig cfg;
            cfg.numProcs = 4;
            ExecConfig xc;
            xc.mode = ExecMode::HW;
            LoopExecutor exec(cfg, loop, xc);
            exec.run();
            shards[id] = obs::log();
        },
        o);
    obs::EventLog merged;
    for (const obs::EventLog &shard : shards)
        merged.merge(shard);
    return merged.jsonl();
}

} // namespace

TEST_F(ObsTest, MergedEventsAreByteIdenticalAcrossJobs)
{
    std::string serial = mergedCampaignEvents(6, 1);
    std::string parallel = mergedCampaignEvents(6, 4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"ev\":\"run_begin\""), std::string::npos);
}

// --- report render / parse / diff -------------------------------------

namespace
{

obs::ReportInputs
sampleInputs(const obs::EventLog *events)
{
    obs::ReportInputs in;
    in.name = "fig11_speedup";
    in.gitSha = "deadbeef";
    in.configFingerprint = "00ffee11";
    in.baseSeed = 42;
    in.simTicks = 9301;
    in.eventsFired = 120;
    in.runs = 3;
    in.metrics.emplace_back("fig11_speedup", 3.25);
    in.stats.emplace_back("machine.aborts", 2.0);
    in.cost.valid = true;
    in.cost.numProcs = 4;
    in.cost.perNodeTicks = 1000;
    in.cost.busy = 700;
    in.cost.stalls[0] = 300;
    in.events = events;
    return in;
}

} // namespace

TEST_F(ObsTest, ReportRendersValidJsonAndRoundTrips)
{
    obs::log().enable();
    obs::refreshEnabled();
    obs::runBegin(0, "HW", 64, 8);
    obs::abortEvent(302, 0x1a8, 2, 7, "flow dep", "RAW");
    obs::runEnd(9301, "HW", false, false, 9301, 64);

    std::string json = renderReport(sampleInputs(&obs::log()));
    EXPECT_TRUE(validJson(json)) << json;

    obs::RunReport rep;
    std::string err;
    ASSERT_TRUE(obs::parseReport(json, rep, err)) << err;
    EXPECT_EQ(rep.strings.at("name"), "fig11_speedup");
    EXPECT_EQ(rep.numbers.at("base_seed"), 42.0);
    EXPECT_EQ(rep.numbers.at("sim_ticks"), 9301.0);
    EXPECT_EQ(rep.numbers.at("metrics.fig11_speedup"), 3.25);
    EXPECT_EQ(rep.numbers.at("cost.busy"), 700.0);
    EXPECT_EQ(rep.numbers.at("events.counts.abort"), 1.0);
    EXPECT_EQ(rep.numbers.at("events.recorded"), 3.0);

    // Rendering twice is byte-identical; a self-diff is empty.
    EXPECT_EQ(json, renderReport(sampleInputs(&obs::log())));
    obs::DiffResult d = obs::diff(rep, rep);
    EXPECT_TRUE(d.identical());
    std::string md = obs::diffMarkdown(d, "a", "b");
    EXPECT_NE(md.find("No differences"), std::string::npos);
}

TEST_F(ObsTest, ReportNullSectionsRenderAsZeros)
{
    obs::ReportInputs in;
    in.name = "empty";
    std::string json = renderReport(in);
    EXPECT_TRUE(validJson(json)) << json;
    obs::RunReport rep;
    std::string err;
    ASSERT_TRUE(obs::parseReport(json, rep, err)) << err;
    // Sections are always present so two reports share a key set.
    EXPECT_EQ(rep.numbers.at("critpath.runs"), 0.0);
    EXPECT_EQ(rep.numbers.at("timeline.samples"), 0.0);
    EXPECT_EQ(rep.numbers.at("events.recorded"), 0.0);
    EXPECT_EQ(rep.numbers.at("cost.valid"), 0.0);
}

TEST_F(ObsTest, DiffDirectionRules)
{
    EXPECT_EQ(obs::keyDirection("metrics.fig11_speedup"), 1);
    EXPECT_EQ(obs::keyDirection("metrics.hw_speedup_mean_16p"), 1);
    EXPECT_EQ(obs::keyDirection("ticks_per_sec"), 1);
    EXPECT_EQ(obs::keyDirection("cost.stalls.dir_queue"), -1);
    EXPECT_EQ(obs::keyDirection("events.counts.abort"), -1);
    EXPECT_EQ(obs::keyDirection("events.counts.run_begin"), 0);
    EXPECT_EQ(obs::keyDirection("infra_failed_runs"), -1);
    EXPECT_EQ(obs::keyDirection("sim_ticks"), 0);

    obs::RunReport a, b;
    a.numbers["metrics.x_speedup"] = 2.0;
    b.numbers["metrics.x_speedup"] = 3.0; // up on a +1 key: improved
    a.numbers["cost.stalls.dir_queue"] = 100;
    b.numbers["cost.stalls.dir_queue"] = 150; // up on a -1 key
    a.numbers["sim_ticks"] = 100;
    b.numbers["sim_ticks"] = 200; // neutral key: changed
    a.numbers["runs"] = 100;
    b.numbers["runs"] = 101; // within 2% tolerance: equal
    a.numbers["gone"] = 1;
    b.numbers["fresh"] = 1;
    a.strings["git_sha"] = "aaa";
    b.strings["git_sha"] = "bbb"; // strings diff as neutral rows

    obs::DiffResult d = obs::diff(a, b);
    EXPECT_EQ(d.regressions, 1u);
    EXPECT_EQ(d.improvements, 1u);
    ASSERT_EQ(d.rows.size(), 6u); // sorted: all but "runs"
    std::map<std::string, obs::DiffKind> kinds;
    for (const obs::DiffRow &row : d.rows)
        kinds[row.key] = row.kind;
    EXPECT_EQ(kinds.at("metrics.x_speedup"), obs::DiffKind::Improved);
    EXPECT_EQ(kinds.at("cost.stalls.dir_queue"),
              obs::DiffKind::Regressed);
    EXPECT_EQ(kinds.at("sim_ticks"), obs::DiffKind::Changed);
    EXPECT_EQ(kinds.at("git_sha"), obs::DiffKind::Changed);
    EXPECT_EQ(kinds.at("gone"), obs::DiffKind::Removed);
    EXPECT_EQ(kinds.at("fresh"), obs::DiffKind::Added);
    EXPECT_EQ(kinds.count("runs"), 0u);

    std::string md = obs::diffMarkdown(d, "base", "new");
    EXPECT_NE(md.find(":x: regressed"), std::string::npos);
    EXPECT_NE(md.find(":white_check_mark: improved"),
              std::string::npos);
    EXPECT_NE(md.find("1 regression(s), 1 improvement(s)"),
              std::string::npos);
}

// --- progress streaming -----------------------------------------------

TEST_F(ObsTest, ProgressStatusFileIsPublished)
{
    std::string path = ::testing::TempDir() + "specrt_status.json";
    std::remove(path.c_str());
    campaign::Options o;
    o.jobs = 2;
    o.progressPath = path;
    o.progressIntervalMs = 10;
    o.progressLive = [] {
        campaign::ProgressLive live;
        live.simTicks = 1234;
        live.hot = "node 0: 7 msgs";
        return live;
    };
    auto outcomes = campaign::run(
        6, [](size_t, SimContext &) {}, o);
    ASSERT_TRUE(campaign::allOk(outcomes));

    // The final snapshot is published before run() returns.
    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << path;
    std::stringstream ss;
    ss << f.rdbuf();
    std::string snap = ss.str();
    EXPECT_TRUE(validJson(snap)) << snap;
    EXPECT_NE(snap.find("\"done\": true"), std::string::npos);
    EXPECT_NE(snap.find("\"ok\": 6"), std::string::npos);
    EXPECT_NE(snap.find("\"sim_ticks\": 1234"), std::string::npos);
    EXPECT_NE(snap.find("node 0: 7 msgs"), std::string::npos);
    // No torn-write temp file left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

// --- replayable failure attribution -----------------------------------

TEST_F(ObsTest, DescribeFailuresNamesSeedAndConfig)
{
    campaign::Options o;
    o.jobs = 2;
    o.baseSeed = 5;
    auto outcomes = campaign::run(
        4,
        [](size_t id, SimContext &ctx) {
            ctx.configFingerprint = "cafe1234";
            if (id == 2)
                throw std::runtime_error("boom");
        },
        o);
    EXPECT_FALSE(campaign::allOk(outcomes));
    EXPECT_EQ(outcomes[2].seed, campaign::jobSeed(5, 2));
    EXPECT_EQ(outcomes[2].configFingerprint, "cafe1234");
    std::string report = campaign::describeFailures(outcomes);
    EXPECT_NE(report.find("job 2"), std::string::npos);
    EXPECT_NE(report.find("seed 0x"), std::string::npos);
    EXPECT_NE(report.find("cafe1234"), std::string::npos);
    EXPECT_NE(report.find("boom"), std::string::npos);
}
