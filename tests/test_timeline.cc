/**
 * @file
 * Tests for the time-series metrics engine (sim/timeline.hh): the
 * column store's rectangular-matrix invariant, the built-in
 * spec-transition series, CSV shape, heatmap feeds and hot-summary
 * ranking, campaign merge of unequal-length timelines, the
 * RunSampler's daemon-event scheduling (zero events when disabled,
 * interval longer than the run, stat resets mid-run, and the
 * no-timing-perturbation guarantee), config/env wiring, and an
 * end-to-end HW abort whose export must carry Perfetto counter
 * tracks plus a hot-node attribution of the conflicting element.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/loop_exec.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/sim_context.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"
#include "sim/trace_export.hh"
#include "support/json_checker.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using test_support::validJson;

namespace
{

/**
 * Each test runs in a private SimContext, so its timeline starts
 * disabled and empty and the process-level context is untouched.
 */
class TimelineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scoped = std::make_unique<ScopedSimContext>(ctx);
    }

    void
    TearDown() override
    {
        scoped.reset();
    }

    timeline::Timeline &tl() { return timeline::current(); }

    SimContext ctx;
    std::unique_ptr<ScopedSimContext> scoped;
};

const timeline::Timeline::Series *
findSeries(const timeline::Timeline &t, const std::string &name)
{
    for (const timeline::Timeline::Series &s : t.allSeries())
        if (s.name == name)
            return &s;
    return nullptr;
}

using Row = std::vector<std::pair<std::string, double>>;

} // namespace

// --- column store -----------------------------------------------------

TEST_F(TimelineTest, DisabledByDefaultAndFeedsAreNoOps)
{
    EXPECT_FALSE(timeline::enabled());
    EXPECT_FALSE(tl().isOn());
    timeline::dirAccess(0, 0x40);
    timeline::dirQueued(1, 0x40);
    timeline::dirConflict(2, 0x40);
    timeline::specTransition();
    EXPECT_TRUE(tl().heatMap().empty());
    EXPECT_EQ(tl().numSamples(), 0u);
}

TEST_F(TimelineTest, EnableSetsTheLatchAndDisableClearsIt)
{
    tl().enable(100);
    EXPECT_TRUE(timeline::enabled());
    EXPECT_EQ(tl().interval(), 100u);
    tl().disable();
    EXPECT_FALSE(timeline::enabled());
    // Zero interval falls back to the default.
    tl().enable(0);
    EXPECT_EQ(tl().interval(),
              timeline::Timeline::defaultIntervalTicks);
}

TEST_F(TimelineTest, SampleKeepsTheMatrixRectangular)
{
    timeline::Timeline &t = tl();
    t.sample(10, 0, Row{{"a", 1.0}});
    // Series "b" first appears at row 1: it must be zero-backfilled
    // for row 0, and "a" must read 0 at row 1.
    t.sample(20, 0, Row{{"b", 2.0}});
    EXPECT_EQ(t.numSamples(), 2u);
    for (const timeline::Timeline::Series &s : t.allSeries())
        ASSERT_EQ(s.values.size(), t.numSamples()) << s.name;

    const timeline::Timeline::Series *a = findSeries(t, "a");
    const timeline::Timeline::Series *b = findSeries(t, "b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->values[0], 1.0);
    EXPECT_EQ(a->values[1], 0.0);
    EXPECT_EQ(b->values[0], 0.0);
    EXPECT_EQ(b->values[1], 2.0);
}

TEST_F(TimelineTest, BuiltInSpecTransitionSeriesCountsSinceLastSample)
{
    tl().enable(100);
    timeline::specTransition();
    timeline::specTransition();
    timeline::specTransition();
    tl().sample(5, 0, Row{});
    tl().sample(6, 0, Row{});
    // A run with zero registered groups and zero gauges still
    // produces a non-degenerate matrix: the built-in series.
    EXPECT_EQ(tl().numSeries(), 1u);
    const timeline::Timeline::Series *s =
        findSeries(tl(), "spec.transitions");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->values.size(), 2u);
    EXPECT_EQ(s->values[0], 3.0); // accumulated, then cleared
    EXPECT_EQ(s->values[1], 0.0);
}

TEST_F(TimelineTest, CsvIsExactlyTheMatrixPlusHeatFooter)
{
    tl().enable(100);
    tl().sample(10, 0, Row{{"net.in_flight", 2.0}});
    tl().sample(20, 0, Row{});
    tl().noteDirAccess(1, 0x80); // bucket 0x80 >> 6 = 0x2
    EXPECT_EQ(tl().csv(),
              "tick,run,net.in_flight,spec.transitions\n"
              "10,0,2,0\n"
              "20,0,0,0\n"
              "# heat home=1 bucket=0x2 accesses=1 queued=0 "
              "conflicts=0\n");
}

TEST_F(TimelineTest, MergeOfUnequalLengthTimelinesOffsetsRunIds)
{
    timeline::Timeline a;
    timeline::Timeline b;
    uint32_t ra = a.beginRun();
    a.sample(10, ra, Row{{"x", 1.0}});
    a.sample(20, ra, Row{{"x", 2.0}});
    a.noteDirConflict(0, 0x10);
    uint32_t rb = b.beginRun();
    b.sample(5, rb, Row{{"y", 7.0}});
    b.noteDirConflict(0, 0x10);
    b.noteDirQueued(2, 0x100);

    a.merge(b);

    // Rows: a's two, then b's one with its run id offset past a's.
    ASSERT_EQ(a.numSamples(), 3u);
    EXPECT_EQ(a.sampleTicks(), (std::vector<Tick>{10, 20, 5}));
    EXPECT_EQ(a.sampleRuns(), (std::vector<uint32_t>{0, 0, 1}));

    // Series union, zero-backfilled on both sides.
    for (const timeline::Timeline::Series &s : a.allSeries())
        ASSERT_EQ(s.values.size(), 3u) << s.name;
    const timeline::Timeline::Series *x = findSeries(a, "x");
    const timeline::Timeline::Series *y = findSeries(a, "y");
    ASSERT_NE(x, nullptr);
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(x->values, (std::vector<double>{1.0, 2.0, 0.0}));
    EXPECT_EQ(y->values, (std::vector<double>{0.0, 0.0, 7.0}));

    // Heat cells sum.
    auto conflictCell = a.heatMap().find({NodeId(0), Addr(0)});
    ASSERT_NE(conflictCell, a.heatMap().end());
    EXPECT_EQ(conflictCell->second.conflicts, 2u);
    auto queuedCell = a.heatMap().find({NodeId(2), Addr(0x100 >> 6)});
    ASSERT_NE(queuedCell, a.heatMap().end());
    EXPECT_EQ(queuedCell->second.queued, 1u);
}

TEST_F(TimelineTest, HotSummaryRanksConflictsOverRawTraffic)
{
    timeline::Timeline &t = tl();
    EXPECT_EQ(t.hotSummary(), "");
    // Node 1 is busy, node 2 had the actual conflict: node 2 wins.
    for (int i = 0; i < 10; ++i)
        t.noteDirAccess(1, 0x40);
    t.noteDirConflict(2, 0x200);
    std::string hot = t.hotSummary();
    EXPECT_NE(hot.find("directory contention summary"),
              std::string::npos);
    size_t n2 = hot.find("node 2:");
    size_t n1 = hot.find("node 1:");
    ASSERT_NE(n2, std::string::npos);
    ASSERT_NE(n1, std::string::npos);
    EXPECT_LT(n2, n1);
    EXPECT_NE(hot.find("hot elements"), std::string::npos);
}

// --- RunSampler -------------------------------------------------------

TEST_F(TimelineTest, SamplerIsInertWhenTheTimelineIsDisabled)
{
    EventQueue eq;
    timeline::RunSampler s(eq);
    EXPECT_FALSE(s.active());
    s.addGauge("g", []() { return 1.0; });
    s.arm();
    // Acceptance bar: a disabled timeline schedules ZERO events.
    EXPECT_EQ(eq.numPending(), 0u);
    eq.schedule(10, []() {});
    eq.run();
    s.finish();
    EXPECT_EQ(tl().numSamples(), 0u);
}

TEST_F(TimelineTest, SamplerSamplesOnTheGridWhileWorkIsPending)
{
    tl().enable(10);
    EventQueue eq;
    double g = 0;
    timeline::RunSampler s(eq);
    ASSERT_TRUE(s.active());
    s.addGauge("g", [&]() { return g; });
    for (Tick t : {Tick(5), Tick(15), Tick(25), Tick(35)})
        eq.schedule(t, [&g, t]() { g = static_cast<double>(t); });
    s.arm();
    s.arm(); // idempotent while the event is in flight
    eq.run();
    // Grid points 10/20/30 fall inside the run; 40 does not.
    EXPECT_EQ(eq.curTick(), 35u);
    ASSERT_EQ(tl().numSamples(), 3u);
    EXPECT_EQ(tl().sampleTicks(), (std::vector<Tick>{10, 20, 30}));
    s.finish();
    ASSERT_EQ(tl().numSamples(), 4u);
    EXPECT_EQ(tl().sampleTicks().back(), 35u);
    const timeline::Timeline::Series *gs = findSeries(tl(), "g");
    ASSERT_NE(gs, nullptr);
    EXPECT_EQ(gs->values, (std::vector<double>{5, 15, 25, 35}));
    // All rows belong to the sampler's single run.
    for (uint32_t r : tl().sampleRuns())
        EXPECT_EQ(r, 0u);
}

TEST_F(TimelineTest, IntervalLongerThanTheRunStillRecordsAFinalRow)
{
    tl().enable(5000);
    EventQueue eq;
    timeline::RunSampler s(eq);
    s.addGauge("g", []() { return 1.0; });
    eq.schedule(20, []() {});
    s.arm();
    eq.run();
    // The pending sampling event must NOT drag the drain (and the
    // measured phase end) out to tick 5000.
    EXPECT_EQ(eq.curTick(), 20u);
    EXPECT_EQ(tl().numSamples(), 0u);
    EXPECT_EQ(eq.numDaemon(), 1u);
    s.finish();
    ASSERT_EQ(tl().numSamples(), 1u);
    EXPECT_EQ(tl().sampleTicks()[0], 20u);
}

TEST_F(TimelineTest, StatResetMidRunDoesNotProduceNegativeDeltas)
{
    tl().enable(10);
    EventQueue eq;
    StatGroup g("g");
    Scalar c(&g, "c", "a counter");
    timeline::RunSampler s(eq);
    s.addStatDelta(g);
    eq.schedule(5, [&]() { c = 5; });
    eq.schedule(15, [&]() {
        g.resetStats(); // mid-run reset...
        c = 2;          // ...then the counter starts over
    });
    eq.schedule(25, []() {});
    s.arm();
    eq.run();
    s.finish();
    const timeline::Timeline::Series *d =
        findSeries(tl(), "delta.g.c");
    ASSERT_NE(d, nullptr);
    // Sample at 10: delta 5. Sample at 20: the value shrank (reset),
    // so the counter-reset rule restarts from the new absolute value
    // instead of reporting -3. Final row at 25: no change.
    EXPECT_EQ(d->values, (std::vector<double>{5.0, 2.0, 0.0}));
    for (double v : d->values)
        EXPECT_GE(v, 0.0);
}

TEST_F(TimelineTest, SamplerWithNothingRegisteredStillProducesRows)
{
    tl().enable(10);
    EventQueue eq;
    timeline::RunSampler s(eq);
    for (Tick t = 1; t <= 25; ++t)
        eq.schedule(t, []() {});
    s.arm();
    eq.run();
    s.finish();
    EXPECT_EQ(tl().numSeries(), 1u);
    EXPECT_NE(findSeries(tl(), "spec.transitions"), nullptr);
    EXPECT_EQ(tl().numSamples(), 3u); // 10, 20, final at 25
    EXPECT_EQ(tl().csv().substr(0, 26),
              "tick,run,spec.transitions\n");
}

// --- config / env -----------------------------------------------------

TEST(TimelineConfigTest, FromEnvParsesTheKnobs)
{
    unsetenv("SPECRT_TIMELINE");
    unsetenv("SPECRT_TIMELINE_OUT");
    unsetenv("SPECRT_TIMELINE_INTERVAL");
    EXPECT_FALSE(TimelineConfig::fromEnv().enabled);

    setenv("SPECRT_TIMELINE", "0", 1);
    EXPECT_FALSE(TimelineConfig::fromEnv().enabled);

    setenv("SPECRT_TIMELINE", "1", 1);
    TimelineConfig on = TimelineConfig::fromEnv();
    EXPECT_TRUE(on.enabled);
    EXPECT_TRUE(on.outPath.empty());

    setenv("SPECRT_TIMELINE", "run.csv", 1);
    EXPECT_EQ(TimelineConfig::fromEnv().outPath, "run.csv");

    setenv("SPECRT_TIMELINE_OUT", "other.csv", 1);
    setenv("SPECRT_TIMELINE_INTERVAL", "250", 1);
    TimelineConfig full = TimelineConfig::fromEnv();
    EXPECT_EQ(full.outPath, "other.csv");
    EXPECT_EQ(full.intervalTicks, 250u);

    unsetenv("SPECRT_TIMELINE");
    unsetenv("SPECRT_TIMELINE_OUT");
    unsetenv("SPECRT_TIMELINE_INTERVAL");
}

TEST(TimelineConfigTest, TimelineKnobDoesNotChangeTheFingerprint)
{
    MachineConfig plain;
    MachineConfig sampled;
    sampled.timeline.enabled = true;
    sampled.timeline.outPath = "x.csv";
    sampled.timeline.intervalTicks = 123;
    // Observability must never look like a different machine to the
    // perf-gate baseline matcher.
    EXPECT_EQ(plain.fingerprint(), sampled.fingerprint());
}

TEST_F(TimelineTest, ApplyConfigEnablesWithIntervalAndOutPath)
{
    TimelineConfig tc;
    tc.enabled = true;
    tc.intervalTicks = 123;
    tc.outPath = "x.csv";
    timeline::applyConfig(tc);
    EXPECT_TRUE(timeline::enabled());
    EXPECT_EQ(tl().interval(), 123u);
    EXPECT_EQ(SimContext::current().timelineOutPath, "x.csv");
}

// --- instance scoping -------------------------------------------------

TEST_F(TimelineTest, ScopedContextSwitchesTheCurrentTimeline)
{
    tl().enable(100);
    EXPECT_TRUE(timeline::enabled());
    SimContext inner;
    {
        ScopedSimContext active(inner);
        // The inner context's timeline is off; the latch followed.
        EXPECT_FALSE(timeline::enabled());
        timeline::dirAccess(0, 0x40); // gated: no-op
        EXPECT_TRUE(inner.timelineData().heatMap().empty());
    }
    EXPECT_TRUE(timeline::enabled());
    EXPECT_EQ(&timeline::current(), &ctx.timelineData());
}

// --- end to end -------------------------------------------------------

TEST_F(TimelineTest, EnabledTimelineDoesNotChangeSimulatedTiming)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.blockIters = 2;

    Tick base;
    PhaseTimes base_phases;
    {
        Fig1ALoop loop(32);
        LoopExecutor exec(cfg, loop, xc);
        RunResult r = exec.run();
        base = r.totalTicks;
        base_phases = r.phases;
    }

    tl().enable(100);
    {
        Fig1ALoop loop(32);
        LoopExecutor exec(cfg, loop, xc);
        RunResult r = exec.run();
        // The daemon-event sampler must not perturb modeled time:
        // phase durations are read off curTick after each drain.
        EXPECT_EQ(r.totalTicks, base);
        EXPECT_EQ(r.phases.loop, base_phases.loop);
        EXPECT_EQ(r.phases.serial, base_phases.serial);
    }
    EXPECT_GT(tl().numSamples(), 0u);
}

TEST_F(TimelineTest, HwAbortYieldsCounterTracksAndHotNodeAttribution)
{
    // Fig. 1(a): every iteration reads the element the previous one
    // wrote, so HW speculation aborts; with trace + timeline on, the
    // export must carry counter tracks on the trace's timebase and
    // the hot summary must name the home of the conflicting element.
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.trace.enabled = true;
    cfg.timeline.enabled = true;
    cfg.timeline.intervalTicks = 50;
    Fig1ALoop loop(64);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.blockIters = 2;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();
    EXPECT_FALSE(res.passed);
    ASSERT_TRUE(res.hwFailure.failed);

    timeline::Timeline &t = tl();
    EXPECT_GT(t.numSamples(), 0u);
    EXPECT_GE(t.numSeries(), 3u);

    // The abort fed the heatmap at the failing element's home node.
    NodeId home = exec.machine().memory().homeOf(res.hwFailure.elemAddr);
    auto cell = t.heatMap().find(
        {home, res.hwFailure.elemAddr >>
                   timeline::Timeline::bucketShift});
    ASSERT_NE(cell, t.heatMap().end());
    EXPECT_GE(cell->second.conflicts, 1u);

    std::string hot = t.hotSummary();
    std::ostringstream want;
    want << "node " << home << ":";
    EXPECT_NE(hot.find("directory contention summary"),
              std::string::npos);
    EXPECT_NE(hot.find(want.str()), std::string::npos);

    // One JSON document: trace events AND >= 3 counter tracks.
    std::string json =
        trace::chromeTraceJson(trace::buffer(), &t);
    ASSERT_TRUE(validJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("ABORT"), std::string::npos);
    size_t tracks = 0;
    for (const timeline::Timeline::Series &s : t.allSeries())
        if (json.find("\"name\": \"" + s.name + "\"") !=
            std::string::npos)
            ++tracks;
    EXPECT_GE(tracks, 3u);

    // The text summary gains the contention report.
    std::string sum = trace::textSummary(trace::buffer(), &t);
    EXPECT_NE(sum.find("directory contention summary"),
              std::string::npos);
}
