/** @file Tests of the micro-ISA and the processor model's timing. */

#include <gtest/gtest.h>

#include "mem/dsm.hh"
#include "runtime/processor.hh"
#include "runtime/scheduler.hh"

using namespace specrt;

TEST(Isa, AluSemantics)
{
    EXPECT_EQ(evalAlu(AluOp::Add, 3, 4), 7);
    EXPECT_EQ(evalAlu(AluOp::Sub, 3, 4), -1);
    EXPECT_EQ(evalAlu(AluOp::Mul, 3, 4), 12);
    EXPECT_EQ(evalAlu(AluOp::And, 6, 3), 2);
    EXPECT_EQ(evalAlu(AluOp::Or, 6, 3), 7);
    EXPECT_EQ(evalAlu(AluOp::Xor, 6, 3), 5);
    EXPECT_EQ(evalAlu(AluOp::Min, 6, 3), 3);
    EXPECT_EQ(evalAlu(AluOp::Max, 6, 3), 6);
    EXPECT_EQ(evalAlu(AluOp::Mod, -1, 5), 4);
    EXPECT_EQ(evalAlu(AluOp::Shr, 256, 3), 32);
}

TEST(Isa, BuildersFillFields)
{
    Op l = opLoad(3, 1, IndexOperand::fromReg(2));
    EXPECT_EQ(l.kind, OpKind::Load);
    EXPECT_EQ(l.dst, 3);
    EXPECT_EQ(l.arrayId, 1);
    EXPECT_TRUE(l.index.isReg);

    Op s = opStore(0, 17, 4);
    EXPECT_EQ(s.kind, OpKind::Store);
    EXPECT_EQ(s.index.imm, 17);
    EXPECT_EQ(s.srcA, 4);

    EXPECT_FALSE(opToString(opBusy(3)).empty());
    EXPECT_NE(opToString(l).find("load"), std::string::npos);
}

namespace
{

/** One-processor harness running a single program. */
struct Harness
{
    MachineConfig cfg;
    std::unique_ptr<DsmSystem> dsm;
    std::unique_ptr<Processor> proc;
    const Region *r;
    std::vector<ArrayBinding> bindings;

    Harness()
    {
        cfg.numProcs = 2;
        dsm = std::make_unique<DsmSystem>(cfg);
        int id = dsm->memory().alloc("A", 64 * 1024, 4,
                                     Placement::Fixed, 0);
        r = &dsm->memory().region(id);
        for (uint64_t e = 0; e < 64; ++e)
            dsm->memory().write(r->elemAddr(e), 4, e * 10);
        proc = std::make_unique<Processor>(0, dsm->eventQueue(),
                                           dsm->cacheCtrl(0), cfg);
        bindings.push_back({r, false, -1});
        proc->setBindings(&bindings);
    }

    /** Run one program as the sole iteration; return elapsed ticks. */
    Tick
    run(const IterProgram &prog)
    {
        StaticChunkSource src(1, 1);
        bool done = false;
        Tick t0 = dsm->eventQueue().curTick();
        proc->startPhase(
            &src,
            [&prog](IterNum, IterProgram &out) { out = prog; }, false,
            [&done](NodeId) { done = true; });
        dsm->eventQueue().run();
        EXPECT_TRUE(done);
        return dsm->eventQueue().curTick() - t0;
    }
};

} // namespace

TEST(Processor, BusyOpsTakeTheirCycles)
{
    Harness h;
    IterProgram prog = {opBusy(10), opBusy(5)};
    Tick t = h.run(prog);
    EXPECT_EQ(t, 15u);
    EXPECT_EQ(h.proc->busyCycles(), 15.0);
    EXPECT_EQ(h.proc->memCycles(), 0.0);
}

TEST(Processor, AluChainComputesAndCosts)
{
    Harness h;
    IterProgram prog = {
        opImm(1, 6), opImm(2, 7), opAlu(3, AluOp::Mul, 1, 2),
        opStore(0, 0, 3),
    };
    h.run(prog);
    h.dsm->resetMachine(true);
    EXPECT_EQ(h.dsm->memory().read(h.r->elemAddr(0), 4), 42u);
    EXPECT_EQ(h.proc->busyCycles(), 4.0);
}

TEST(Processor, LoadLatencyGoesToMemTime)
{
    Harness h;
    IterProgram prog = {opLoad(1, 0, 5)};
    h.run(prog);
    // Local memory miss: 60 cycles total = 1 busy + 59 stall.
    EXPECT_EQ(h.proc->busyCycles(), 1.0);
    EXPECT_EQ(h.proc->memCycles(), 59.0);
}

TEST(Processor, CachedLoadHasNoMemTime)
{
    Harness h;
    IterProgram prog = {opLoad(1, 0, 5), opLoad(2, 0, 5)};
    h.run(prog);
    EXPECT_EQ(h.proc->memCycles(), 59.0); // only the first one
    EXPECT_EQ(h.proc->busyCycles(), 2.0);
}

TEST(Processor, IndirectIndexingUsesRegisterValue)
{
    Harness h;
    // A[3] holds 30; use it (scaled) as an index: A[30/10]=A[3]...
    // Simpler: load A[4]=40, shift to 5, load A[5]=50.
    IterProgram prog = {
        opImm(1, 4),
        opLoad(2, 0, IndexOperand::fromReg(1)), // r2 = 40
        opImm(3, 3),
        opAlu(4, AluOp::Shr, 2, 3),             // r4 = 5
        opLoad(5, 0, IndexOperand::fromReg(4)), // r5 = A[5] = 50
        opStore(0, 60, 5),
    };
    h.run(prog);
    h.dsm->resetMachine(true);
    EXPECT_EQ(h.dsm->memory().read(h.r->elemAddr(60), 4), 50u);
}

TEST(Processor, StoresDontStallUntilBufferFull)
{
    Harness h;
    IterProgram prog;
    // More distinct-line stores than write-buffer entries.
    for (int i = 0; i < h.cfg.writeBufferEntries + 4; ++i)
        prog.push_back(opStore(0, i * 16, 1)); // 16 elems = 1 line
    h.run(prog);
    EXPECT_GT(h.proc->memCycles(), 0.0); // eventually stalled
    EXPECT_EQ(h.proc->busyCycles(),
              static_cast<double>(h.cfg.writeBufferEntries + 4));
}

TEST(Processor, RegistersClearBetweenIterations)
{
    Harness h;
    StaticChunkSource src(2, 1);
    std::vector<int64_t> seen;
    bool done = false;
    h.proc->startPhase(
        &src,
        [&](IterNum i, IterProgram &out) {
            if (i == 1) {
                out = {opImm(7, 99), opStore(0, 1, 7)};
            } else {
                // r7 must be 0 again in iteration 2.
                out = {opStore(0, 2, 7)};
            }
        },
        false, [&done](NodeId) { done = true; });
    h.dsm->eventQueue().run();
    EXPECT_TRUE(done);
    h.dsm->resetMachine(true);
    EXPECT_EQ(h.dsm->memory().read(h.r->elemAddr(1), 4), 99u);
    EXPECT_EQ(h.dsm->memory().read(h.r->elemAddr(2), 4), 0u);
}

TEST(Processor, SchedulingDelayCountsAsSync)
{
    Harness h;
    DynamicSource src(1, 1, 100);
    bool done = false;
    h.proc->startPhase(
        &src, [](IterNum, IterProgram &out) { out = {opBusy(1)}; },
        false, [&done](NodeId) { done = true; });
    h.dsm->eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(h.proc->syncCycles(), 100.0);
}

TEST(Processor, IterationCountsAreTracked)
{
    Harness h;
    StaticChunkSource src(5, 1);
    bool done = false;
    h.proc->startPhase(
        &src, [](IterNum, IterProgram &out) { out = {opBusy(2)}; },
        false, [&done](NodeId) { done = true; });
    h.dsm->eventQueue().run();
    EXPECT_EQ(h.proc->itersExecuted(), 5u);
}
