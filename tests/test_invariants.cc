/**
 * @file
 * Protocol invariant checker tests: healthy runs stay quiet,
 * hand-planted corruption is caught and reported through the
 * structured ProtocolViolation channel (handler or warn()), and an
 * idle machine passes the quiescence pass.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/logging.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/** Collects violation identifiers for assertions. */
struct Collector
{
    std::vector<ProtocolViolation> got;

    InvariantChecker::Handler
    handler()
    {
        return [this](const ProtocolViolation &v) { got.push_back(v); };
    }

    bool
    saw(const std::string &invariant) const
    {
        for (const ProtocolViolation &v : got)
            if (v.invariant == invariant)
                return true;
        return false;
    }
};

} // namespace

TEST(Invariants, HealthyHwRunIsQuiet)
{
    Fig1CLoop loop(128, 512, true, 3);
    MachineConfig cfg;
    cfg.numProcs = 8;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.checkInvariants = true;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.invariantViolations, 0u);
    ASSERT_NE(exec.invariantChecker(), nullptr);
    EXPECT_GE(exec.invariantChecker()->checks.value(), 1);
}

TEST(Invariants, HealthyPrivRunIsQuiet)
{
    RandomLoopParams rp{64, 64, 3, 0.7, 64, TestType::Priv, 31};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.checkInvariants = true;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();
    EXPECT_FALSE(r.infraFailed);
    EXPECT_EQ(r.invariantViolations, 0u);
}

TEST(Invariants, HealthySwRunIsQuiet)
{
    Fig1CLoop loop(64, 256, true, 5);
    MachineConfig cfg;
    cfg.numProcs = 4;
    ExecConfig xc;
    xc.mode = ExecMode::SW;
    xc.checkInvariants = true;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.invariantViolations, 0u);
}

TEST(Invariants, CorruptedDirtyEntryIsCaught)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4096, 4, Placement::RoundRobin);
    Addr line = dsm.memory().region(id).base;
    NodeId home = dsm.memory().homeOf(line);

    // Home believes node 1 owns the line dirty, but no cache holds
    // it: a lost WriteReply would look exactly like this.
    DirEntry &e = dsm.dirCtrl(home).directory().entry(line);
    e.state = DirState::Dirty;
    e.owner = 1;

    InvariantChecker ck(dsm);
    Collector col;
    ck.setHandler(col.handler());
    size_t n = ck.checkCoherence();
    EXPECT_GE(n, 1u);
    EXPECT_TRUE(col.saw("dirty-owner-caches"));
    EXPECT_EQ(ck.numViolations(), n);
}

TEST(Invariants, StaleSharedCopyIsCaught)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4096, 4, Placement::RoundRobin);
    Addr line = dsm.memory().region(id).base;
    NodeId home = dsm.memory().homeOf(line);

    NodeCache &cache = dsm.cacheCtrl(0).cacheArray();
    std::vector<uint8_t> bytes(cache.lineBytes(), 0xAB); // memory is 0
    CacheLine victim;
    cache.fill(line, LineState::Shared, bytes.data(), &victim);

    DirEntry &e = dsm.dirCtrl(home).directory().entry(line);
    e.state = DirState::Shared;
    e.addSharer(0);

    InvariantChecker ck(dsm);
    Collector col;
    ck.setHandler(col.handler());
    EXPECT_GE(ck.checkCoherence(), 1u);
    EXPECT_TRUE(col.saw("shared-data"));

    // Fix the data but drop the presence bit: now the holder is
    // invisible to the home.
    dsm.memory().readLine(line, bytes.data(), cache.lineBytes());
    cache.fill(line, LineState::Shared, bytes.data(), &victim);
    e.sharers = 0;
    col.got.clear();
    EXPECT_GE(ck.checkCoherence(), 1u);
    EXPECT_TRUE(col.saw("shared-presence"));
}

TEST(Invariants, DefaultHandlerWarnsThroughLogSink)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4096, 4, Placement::RoundRobin);
    Addr line = dsm.memory().region(id).base;
    NodeId home = dsm.memory().homeOf(line);
    DirEntry &e = dsm.dirCtrl(home).directory().entry(line);
    e.state = DirState::Dirty;
    e.owner = 1;

    std::vector<std::string> warned;
    LogSink prev =
        setLogSink([&warned](LogLevel l, const std::string &m) {
            if (l == LogLevel::Warn)
                warned.push_back(m);
        });
    InvariantChecker ck(dsm); // no handler installed
    size_t n = ck.checkCoherence();
    setLogSink(prev);

    EXPECT_GE(n, 1u);
    ASSERT_FALSE(warned.empty());
    EXPECT_NE(warned[0].find("protocol invariant"), std::string::npos);
    EXPECT_NE(warned[0].find("dirty-owner-caches"), std::string::npos);
}

TEST(Invariants, IdleMachineIsQuiesced)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    DsmSystem dsm(cfg);
    InvariantChecker ck(dsm);
    Collector col;
    ck.setHandler(col.handler());
    EXPECT_EQ(ck.checkQuiesced(), 0u);
    EXPECT_EQ(ck.checkAll(), 0u);
    EXPECT_TRUE(col.got.empty());
    EXPECT_GE(ck.checks.value(), 1);
}

TEST(Invariants, ViolationFormatsAsIdAndDetail)
{
    ProtocolViolation v{"dirty-single-owner", "line 0x40 held twice"};
    EXPECT_EQ(v.str(), "dirty-single-owner: line 0x40 held twice");
}
