/**
 * @file
 * Unit and equivalence tests for the vector-clock happens-before
 * oracle (verify/hb_oracle.hh): clock algebra, edge semantics
 * (barrier, commit/acquire, message, serial chaining), and the
 * fuzzed equivalence of its two race verdicts with the definitional
 * oracle (spec/oracle.hh) on placed random-loop traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/scheduler.hh"
#include "spec/oracle.hh"
#include "verify/hb_oracle.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using verify::HbOracle;
using verify::HbReport;
using verify::VectorClock;

namespace
{

AccessEvent
ev(NodeId proc, IterNum iter, uint64_t elem, bool write)
{
    return {proc, iter, elem, write, 0, false};
}

/** The loop's full trace with static-chunk processor placement. */
std::vector<AccessEvent>
staticPlacedTrace(const RandomLoop &loop, IterNum iters, int procs)
{
    StaticChunkSource chunks(iters, procs);
    std::vector<NodeId> owner(iters + 1, 0);
    for (NodeId p = 0; p < procs; ++p) {
        auto [lo, hi] = chunks.chunkOf(p);
        for (IterNum i = lo; i < hi; ++i)
            owner[i] = p;
    }
    std::vector<AccessEvent> placed = loop.expectedTrace();
    for (AccessEvent &e : placed)
        e.proc = owner[e.iter];
    return placed;
}

} // namespace

TEST(VectorClockTest, OrderingAndJoin)
{
    VectorClock a(3), b(3);
    EXPECT_FALSE(a.happensBefore(b)); // equal clocks: not strict
    EXPECT_FALSE(a.concurrentWith(b));

    a.tick(0); // a = [1,0,0]
    EXPECT_TRUE(b.happensBefore(a));
    EXPECT_FALSE(a.happensBefore(b));

    b.tick(1); // b = [0,1,0]
    EXPECT_TRUE(a.concurrentWith(b));

    b.join(a); // b = [1,1,0]
    EXPECT_TRUE(a.happensBefore(b));
    EXPECT_FALSE(a.concurrentWith(b));
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(a.str(), "[1,0,0]");
}

TEST(HbOracleTest, CrossProcessorWriteRaces)
{
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 7, true));
    hb.onAccess(ev(1, 2, 7, false));
    HbReport r = hb.analyze();
    EXPECT_FALSE(r.nonPrivOk);
    ASSERT_EQ(r.nonPrivRaces.size(), 1u);
    EXPECT_EQ(r.nonPrivRaces[0].elem, 7u);
    EXPECT_FALSE(r.nonPrivRaces[0].str().empty());
}

TEST(HbOracleTest, ReadOnlySharingIsNotARace)
{
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 3, false));
    hb.onAccess(ev(1, 2, 3, false));
    HbReport r = hb.analyze();
    EXPECT_TRUE(r.nonPrivOk);
    EXPECT_TRUE(r.privOk);
}

TEST(HbOracleTest, SingleProcessorNeverRacesNonPriv)
{
    HbOracle hb(2, 3);
    hb.onAccess(ev(0, 1, 5, true));
    hb.onAccess(ev(0, 2, 5, true));
    hb.onAccess(ev(0, 3, 5, false));
    EXPECT_TRUE(hb.analyze().nonPrivOk);
}

TEST(HbOracleTest, MessageEdgeOrdersTheRaceAway)
{
    // Same accesses as CrossProcessorWriteRaces, but a point-to-point
    // edge between them (e.g. an ownership transfer) orders them.
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 7, true));
    hb.onMessage(0, 1);
    hb.onAccess(ev(1, 2, 7, false));
    EXPECT_TRUE(hb.analyze().nonPrivOk);
}

TEST(HbOracleTest, CommitAcquirePairOrdersTheRaceAway)
{
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 7, true));
    hb.commit(0);
    hb.acquire(1);
    hb.onAccess(ev(1, 2, 7, false));
    EXPECT_TRUE(hb.analyze().nonPrivOk);
}

TEST(HbOracleTest, BarrierOrdersEverything)
{
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 7, true));
    hb.onBarrier();
    hb.onAccess(ev(1, 2, 7, true));
    HbReport r = hb.analyze();
    EXPECT_TRUE(r.nonPrivOk);
    EXPECT_TRUE(r.privOk);
}

TEST(HbOracleTest, ExposedReadAfterUnorderedWriteFlowRaces)
{
    // Iteration 1 writes elem 4; iteration 3's first access reads
    // it: under privatization the read-in exposes the stale copy.
    HbOracle hb(2, 3);
    hb.onAccess(ev(0, 1, 4, true));
    hb.onAccess(ev(1, 3, 4, false));
    HbReport r = hb.analyze();
    EXPECT_FALSE(r.privOk);
    ASSERT_EQ(r.privRaces.size(), 1u);
    EXPECT_EQ(r.privRaces[0].iterA, 1);
    EXPECT_EQ(r.privRaces[0].iterB, 3);
}

TEST(HbOracleTest, WriteFirstIterationsDoNotFlowRace)
{
    // Each iteration writes before reading: privatization holds even
    // though non-privatization fails.
    HbOracle hb(2, 2);
    hb.onAccess(ev(0, 1, 4, true));
    hb.onAccess(ev(0, 1, 4, false));
    hb.onAccess(ev(1, 2, 4, true));
    hb.onAccess(ev(1, 2, 4, false));
    HbReport r = hb.analyze();
    EXPECT_TRUE(r.privOk);
    EXPECT_FALSE(r.nonPrivOk);
}

TEST(HbOracleTest, EarlierReadThanWriteIsAntiDepNotFlowRace)
{
    // Read-first in iter 1, write in iter 3: MaxR1st (1) <= MinW (3),
    // the paper's test passes; privatization covers the anti-dep.
    HbOracle hb(2, 3);
    hb.onAccess(ev(0, 1, 9, false));
    hb.onAccess(ev(1, 3, 9, true));
    EXPECT_TRUE(hb.analyze().privOk);
}

TEST(HbOracleTest, SequentialEdgesEraseAllRaces)
{
    // The serial anchor: with iteration chaining, the same pattern
    // that flow-races in parallel is fully ordered.
    HbOracle hb(1, 3);
    hb.sequentialEdges();
    hb.onAccess(ev(0, 1, 4, true));
    hb.onAccess(ev(0, 3, 4, false));
    HbReport r = hb.analyze();
    EXPECT_TRUE(r.privOk);
    EXPECT_TRUE(r.nonPrivOk);
}

TEST(HbOracleTest, AnalyzeTraceMatchesOracleOnFig3Archetypes)
{
    // The paper's Fig. 3 single-element archetypes pin the verdict
    // boundaries: read-in-needed passes priv, write-first passes
    // priv, flow-dep fails it. Two processors, iterations 1-4 on
    // proc 0 and 5-8 on proc 1.
    const IterNum n = 8;
    auto place = [](IterNum i) {
        return static_cast<NodeId>(i <= 4 ? 0 : 1);
    };
    struct Archetype
    {
        const char *name;
        std::vector<AccessEvent> trace;
    };
    std::vector<Archetype> cases(3);
    cases[0].name = "read-in-needed";
    for (IterNum i = 1; i <= n; ++i) {
        if (i <= 3) {
            cases[0].trace.push_back(ev(place(i), i, 0, false));
        } else {
            cases[0].trace.push_back(ev(place(i), i, 0, true));
            cases[0].trace.push_back(ev(place(i), i, 0, false));
        }
    }
    cases[1].name = "write-first";
    for (IterNum i = 1; i <= n; ++i) {
        cases[1].trace.push_back(ev(place(i), i, 0, true));
        cases[1].trace.push_back(ev(place(i), i, 0, false));
    }
    cases[2].name = "flow-dep";
    for (IterNum i = 1; i <= n; ++i) {
        cases[2].trace.push_back(ev(place(i), i, 0, false));
        cases[2].trace.push_back(ev(place(i), i, 0, true));
    }

    for (const Archetype &c : cases) {
        HbReport hb = HbOracle::analyzeTrace(c.trace, 2, n);
        EXPECT_EQ(hb.privOk, Oracle::privParallel(c.trace)) << c.name;
        EXPECT_EQ(hb.nonPrivOk, Oracle::nonPrivParallel(c.trace))
            << c.name;
    }
    EXPECT_TRUE(HbOracle::analyzeTrace(cases[0].trace, 2, n).privOk);
    EXPECT_TRUE(HbOracle::analyzeTrace(cases[1].trace, 2, n).privOk);
    EXPECT_FALSE(HbOracle::analyzeTrace(cases[2].trace, 2, n).privOk);
}

TEST(HbOracleTest, FuzzEquivalenceWithDefinitionalOracle)
{
    // 160 random loops across processor counts and write densities:
    // both verdicts must equal the definitional oracle's on every
    // placed trace, and both outcomes of each verdict must occur.
    size_t priv_fail = 0, nonpriv_fail = 0;
    for (uint64_t seed = 1; seed <= 160; ++seed) {
        int procs = 2 << (seed % 3);
        RandomLoopParams rp;
        rp.iters = 6 + static_cast<IterNum>(seed % 20);
        rp.elems = 4u << (seed % 3);
        rp.accesses = 2 + static_cast<int>(seed % 3);
        rp.writeProb = 0.125 * static_cast<double>(seed % 8);
        rp.window = rp.elems;
        rp.test = TestType::Priv;
        rp.seed = seed * 77;
        RandomLoop loop(rp);

        auto placed = staticPlacedTrace(loop, rp.iters, procs);
        HbReport hb = HbOracle::analyzeTrace(placed, procs, rp.iters);

        bool priv_ok = Oracle::privParallel(loop.expectedTrace());
        bool nonpriv_ok = Oracle::nonPrivParallel(placed);
        ASSERT_EQ(hb.privOk, priv_ok) << "seed " << seed;
        ASSERT_EQ(hb.nonPrivOk, nonpriv_ok) << "seed " << seed;
        priv_fail += !priv_ok;
        nonpriv_fail += !nonpriv_ok;

        // A failing verdict must come with at least one concrete race.
        if (!priv_ok) {
            ASSERT_FALSE(hb.privRaces.empty()) << "seed " << seed;
        }
        if (!nonpriv_ok) {
            ASSERT_FALSE(hb.nonPrivRaces.empty()) << "seed " << seed;
        }
    }
    EXPECT_GT(priv_fail, 0u);
    EXPECT_LT(priv_fail, 160u);
    EXPECT_GT(nonpriv_fail, 0u);
    EXPECT_LT(nonpriv_fail, 160u);
}
