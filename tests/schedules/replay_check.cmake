# Replay one witness schedule and assert the violation reproduces.
#
#   cmake -DMODEL_CHECK=<binary> -DSCHEDULE=<file> -DEXPECT=<regex>
#         -P replay_check.cmake
#
# Passes iff the replay exits 2 (violation reproduced) and its output
# matches EXPECT (the invariant attribution the witness was shrunk
# for). Any other exit code -- including 0, a clean replay -- means
# the witness corpus and the replay path have drifted apart.

if(NOT MODEL_CHECK OR NOT SCHEDULE OR NOT EXPECT)
    message(FATAL_ERROR "need -DMODEL_CHECK= -DSCHEDULE= -DEXPECT=")
endif()

execute_process(
    COMMAND "${MODEL_CHECK}" --replay-schedule "${SCHEDULE}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc
)
message(STATUS "replay output:\n${out}${err}")

if(NOT rc EQUAL 2)
    message(FATAL_ERROR
            "expected exit 2 (violation reproduced), got '${rc}': the "
            "witness no longer replays -- schedule surface drifted")
endif()
if(NOT out MATCHES "${EXPECT}")
    message(FATAL_ERROR
            "violation reproduced but attribution changed: expected "
            "output to match '${EXPECT}'")
endif()
