/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace specrt;

TEST(Random, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, BoolProbability)
{
    Rng r(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.25);
    EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(Random, ReseedRestartsStream)
{
    Rng r(5);
    uint64_t first = r.next();
    r.next();
    r.reseed(5);
    EXPECT_EQ(r.next(), first);
}

TEST(Random, BoundedUniformish)
{
    Rng r(17);
    int buckets[8] = {};
    for (int i = 0; i < 80000; ++i)
        ++buckets[r.nextBounded(8)];
    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(buckets[b], 10000, 500);
}
