/**
 * @file
 * Integration tests of the DASH-like protocol: latency composition
 * (the paper's 1/12/60/208/291-cycle round trips), state
 * transitions, forwarding, writebacks, invalidations, races, and
 * global coherence invariants.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/dsm.hh"
#include "sim/random.hh"

using namespace specrt;

namespace
{

struct Machine
{
    MachineConfig cfg;
    std::unique_ptr<DsmSystem> dsm;
    const Region *r = nullptr;

    explicit Machine(int procs = 4, Placement pl = Placement::Fixed,
                     NodeId home = 0)
    {
        cfg.numProcs = procs;
        dsm = std::make_unique<DsmSystem>(cfg);
        // Large enough that an 8192-line-distant conflict address maps.
        int id = dsm->memory().alloc("A", 1024 * 1024 + 4096, 4, pl, home);
        r = &dsm->memory().region(id);
        for (uint64_t e = 0; e < r->numElems(); ++e)
            dsm->memory().write(r->elemAddr(e), 4, e + 100);
    }

    EventQueue &eq() { return dsm->eventQueue(); }

    /** Blocking load; returns (value, round-trip latency). */
    std::pair<uint64_t, Tick>
    load(NodeId n, Addr a)
    {
        uint64_t value = 0;
        Tick t0 = eq().curTick();
        Tick t1 = t0;
        bool done = false;
        dsm->cacheCtrl(n).load(a, 4, 1, [&](uint64_t v) {
            value = v;
            t1 = eq().curTick();
            done = true;
        });
        eq().run();
        EXPECT_TRUE(done);
        return {value, t1 - t0};
    }

    /** Store and drain the write buffer. */
    void
    store(NodeId n, Addr a, uint64_t v)
    {
        ASSERT_TRUE(dsm->cacheCtrl(n).store(a, 4, v, 1));
        eq().run();
        EXPECT_TRUE(dsm->cacheCtrl(n).quiescent());
    }

    LineState
    stateAt(NodeId n, Addr a)
    {
        const CacheLine *line =
            dsm->cacheCtrl(n).cacheArray().findLine(a);
        return line ? line->state : LineState::Invalid;
    }

    /** Global single-writer / dir-consistency invariants. */
    void
    checkCoherence(Addr a)
    {
        Addr line = dsm->cacheCtrl(0).cacheArray().lineAlign(a);
        int dirty_nodes = 0;
        NodeId dirty_at = invalidNode;
        for (NodeId n = 0; n < cfg.numProcs; ++n) {
            LineState s = stateAt(n, line);
            if (s == LineState::Dirty) {
                ++dirty_nodes;
                dirty_at = n;
            }
        }
        EXPECT_LE(dirty_nodes, 1) << "two dirty copies of a line";
        const DirEntry *e =
            dsm->dirCtrl(dsm->memory().homeOf(line))
                .directory()
                .find(line);
        if (dirty_nodes == 1) {
            ASSERT_NE(e, nullptr);
            EXPECT_EQ(e->state, DirState::Dirty);
            EXPECT_EQ(e->owner, dirty_at);
        }
        if (e && e->state == DirState::Shared) {
            for (NodeId n = 0; n < cfg.numProcs; ++n) {
                if (stateAt(n, line) != LineState::Invalid)
                    EXPECT_TRUE(e->isSharer(n))
                        << "holder not in sharer set";
            }
        }
    }
};

} // namespace

TEST(DsmLatency, L1HitIsOneCycle)
{
    Machine m;
    m.load(1, m.r->base);              // warm
    auto [v, lat] = m.load(1, m.r->base);
    EXPECT_EQ(lat, 1u);
    EXPECT_EQ(v, 100u);
}

TEST(DsmLatency, L2HitIsTwelveCycles)
{
    Machine m;
    m.load(1, m.r->base);
    // Displace only the L1 entry: L1 has 512 sets, L2 8192; a line
    // 512 lines away shares the L1 set but not the L2 set.
    m.load(1, m.r->base + 512 * 64);
    auto [v, lat] = m.load(1, m.r->base);
    EXPECT_EQ(lat, 12u);
    EXPECT_EQ(v, 100u);
}

TEST(DsmLatency, LocalMemoryIsSixtyCycles)
{
    Machine m;
    auto [v, lat] = m.load(0, m.r->base); // home is node 0
    EXPECT_EQ(lat, 60u);
    EXPECT_EQ(v, 100u);
}

TEST(DsmLatency, RemoteCleanIsTwoHops208)
{
    Machine m;
    auto [v, lat] = m.load(2, m.r->base); // requester != home, clean
    EXPECT_EQ(lat, 208u);
    EXPECT_EQ(v, 100u);
}

TEST(DsmLatency, RemoteDirtyIsThreeHops291)
{
    Machine m;
    m.store(1, m.r->base, 777);          // dirty at node 1
    auto [v, lat] = m.load(2, m.r->base); // 2 -> home 0 -> owner 1 -> 2
    EXPECT_EQ(lat, 291u);
    EXPECT_EQ(v, 777u);
    m.checkCoherence(m.r->base);
}

TEST(DsmProtocol, ReadSharesAcrossNodes)
{
    Machine m;
    m.load(1, m.r->base);
    m.load(2, m.r->base);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Shared);
    EXPECT_EQ(m.stateAt(2, m.r->base), LineState::Shared);
    m.checkCoherence(m.r->base);
}

TEST(DsmProtocol, WriteInvalidatesSharers)
{
    Machine m;
    m.load(1, m.r->base);
    m.load(2, m.r->base);
    m.load(3, m.r->base);
    m.store(2, m.r->base, 555);
    EXPECT_EQ(m.stateAt(2, m.r->base), LineState::Dirty);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Invalid);
    EXPECT_EQ(m.stateAt(3, m.r->base), LineState::Invalid);
    m.checkCoherence(m.r->base);
    auto [v, lat] = m.load(2, m.r->base);
    EXPECT_EQ(v, 555u);
    EXPECT_EQ(lat, 1u);
}

TEST(DsmProtocol, ReadOfDirtyLineDowngradesOwner)
{
    Machine m;
    m.store(1, m.r->base, 42);
    m.load(3, m.r->base);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Shared);
    EXPECT_EQ(m.stateAt(3, m.r->base), LineState::Shared);
    // The sharing writeback refreshed memory.
    EXPECT_EQ(m.dsm->memory().read(m.r->base, 4), 42u);
    m.checkCoherence(m.r->base);
}

TEST(DsmProtocol, WriteOfDirtyLineTransfersOwnership)
{
    Machine m;
    m.store(1, m.r->base, 42);
    m.store(3, m.r->base, 43);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Invalid);
    EXPECT_EQ(m.stateAt(3, m.r->base), LineState::Dirty);
    m.checkCoherence(m.r->base);
    auto [v, lat] = m.load(3, m.r->base);
    EXPECT_EQ(v, 43u);
    (void)lat;
}

TEST(DsmProtocol, UpgradeFromSharedKeepsData)
{
    Machine m;
    m.load(1, m.r->base + 4);
    m.store(1, m.r->base + 4, 999);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Dirty);
    // Neighbouring word in the line kept its memory value.
    auto [v, lat] = m.load(1, m.r->base);
    EXPECT_EQ(v, 100u);
    (void)lat;
}

TEST(DsmProtocol, EvictionWritesBackDirtyData)
{
    Machine m;
    m.store(1, m.r->base, 4242);
    // Fill the same L2 set with a conflicting line: 8192 lines away.
    m.load(1, m.r->base + 8192 * 64);
    m.eq().run();
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Invalid);
    EXPECT_EQ(m.dsm->memory().read(m.r->base, 4), 4242u);
    const DirEntry *e = m.dsm->dirCtrl(0).directory().find(m.r->base);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Uncached);
    // The line can be fetched again, with the written data.
    auto [v, lat] = m.load(2, m.r->base);
    EXPECT_EQ(v, 4242u);
    EXPECT_EQ(lat, 208u); // clean again
}

TEST(DsmProtocol, ConcurrentWritesSerializeAtHome)
{
    Machine m;
    // Issue two stores to the same line from different nodes in the
    // same cycle; the directory must serialize them and end with one
    // owner.
    ASSERT_TRUE(m.dsm->cacheCtrl(1).store(m.r->base, 4, 11, 1));
    ASSERT_TRUE(m.dsm->cacheCtrl(2).store(m.r->base, 4, 22, 1));
    m.eq().run();
    m.checkCoherence(m.r->base);
    int dirty = (m.stateAt(1, m.r->base) == LineState::Dirty) +
                (m.stateAt(2, m.r->base) == LineState::Dirty);
    EXPECT_EQ(dirty, 1);
    // The final value is whichever write was serialized second.
    auto [v, lat] = m.load(3, m.r->base);
    EXPECT_TRUE(v == 11 || v == 22);
    (void)lat;
}

TEST(DsmProtocol, ConcurrentReadAndWriteSameLine)
{
    Machine m;
    uint64_t rv = 0;
    bool rdone = false;
    m.dsm->cacheCtrl(3).load(m.r->base, 4, 1, [&](uint64_t v) {
        rv = v;
        rdone = true;
    });
    ASSERT_TRUE(m.dsm->cacheCtrl(1).store(m.r->base, 4, 321, 1));
    m.eq().run();
    EXPECT_TRUE(rdone);
    EXPECT_TRUE(rv == 100 || rv == 321);
    m.checkCoherence(m.r->base);
}

TEST(DsmProtocol, WriteBufferAbsorbsStores)
{
    Machine m;
    CacheCtrl &cc = m.dsm->cacheCtrl(1);
    // Distinct lines so each store needs its own transaction.
    int accepted = 0;
    for (int i = 0; i < m.cfg.writeBufferEntries; ++i)
        accepted += cc.store(m.r->base + i * 64, 4, i, 1);
    EXPECT_EQ(accepted, m.cfg.writeBufferEntries);
    // Buffer is now full.
    EXPECT_FALSE(cc.store(m.r->base + 999 * 64, 4, 1, 1));
    m.eq().run();
    EXPECT_TRUE(cc.quiescent());
    for (int i = 0; i < m.cfg.writeBufferEntries; ++i)
        EXPECT_EQ(m.stateAt(1, m.r->base + i * 64), LineState::Dirty);
}

TEST(DsmProtocol, LoadBlocksBehindBufferedStoreToSameLine)
{
    Machine m;
    CacheCtrl &cc = m.dsm->cacheCtrl(1);
    ASSERT_TRUE(cc.store(m.r->base, 4, 606, 1));
    uint64_t v = 0;
    bool done = false;
    cc.load(m.r->base, 4, 1, [&](uint64_t val) {
        v = val;
        done = true;
    });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(v, 606u); // sees its own store
}

TEST(DsmProtocol, RoundRobinPlacementSpreadsHomes)
{
    Machine m(4, Placement::RoundRobin);
    std::set<NodeId> homes;
    for (int page = 0; page < 4; ++page)
        homes.insert(
            m.dsm->memory().homeOf(m.r->base + page * m.cfg.pageBytes));
    EXPECT_EQ(homes.size(), 4u);
    // Data is reachable wherever it lives.
    for (int page = 0; page < 4; ++page) {
        Addr a = m.r->base + page * m.cfg.pageBytes;
        auto [v, lat] = m.load(1, a);
        EXPECT_EQ(v, (a - m.r->base) / 4 + 100);
        (void)lat;
    }
}

TEST(DsmProtocol, ResetMachineCommitsDirtyLines)
{
    Machine m;
    m.store(1, m.r->base, 8080);
    m.dsm->resetMachine(true);
    EXPECT_EQ(m.dsm->memory().read(m.r->base, 4), 8080u);
    EXPECT_EQ(m.stateAt(1, m.r->base), LineState::Invalid);
    auto [v, lat] = m.load(1, m.r->base);
    EXPECT_EQ(v, 8080u);
    EXPECT_EQ(lat, 208u); // caches cold again (home is node 0)
}

TEST(DsmProtocol, ResetMachineDiscardsWhenAborting)
{
    Machine m;
    m.store(1, m.r->base, 7070);
    m.dsm->resetMachine(false);
    EXPECT_EQ(m.dsm->memory().read(m.r->base, 4), 100u);
}

TEST(DsmProtocol, ManyNodesHammerOneLine)
{
    Machine m(8);
    for (int round = 0; round < 4; ++round) {
        for (NodeId n = 0; n < 8; ++n) {
            m.store(n, m.r->base, n * 10 + round);
            m.checkCoherence(m.r->base);
        }
        for (NodeId n = 0; n < 8; ++n) {
            auto [v, lat] = m.load(n, m.r->base);
            EXPECT_EQ(v, 70u + round); // last writer was node 7
            (void)lat;
        }
        m.checkCoherence(m.r->base);
    }
}

TEST(DsmProtocol, DataIntegrityUnderMixedTraffic)
{
    Machine m(4);
    // Interleave stores/loads from all nodes over several lines and
    // check final memory equals a sequential model.
    std::map<Addr, uint64_t> model;
    Rng rng(3);
    for (int step = 0; step < 200; ++step) {
        NodeId n = static_cast<NodeId>(rng.nextBounded(4));
        Addr a = m.r->elemAddr(rng.nextBounded(64));
        if (rng.nextBool(0.5)) {
            uint64_t v = rng.next() & 0xffffffff;
            m.store(n, a, v); // drains fully, so ordering is defined
            model[a] = v;
        } else {
            auto [v, lat] = m.load(n, a);
            uint64_t expect = model.count(a)
                                  ? model[a]
                                  : (a - m.r->base) / 4 + 100;
            EXPECT_EQ(v, expect);
            (void)lat;
        }
    }
    m.dsm->resetMachine(true);
    for (auto &[a, v] : model)
        EXPECT_EQ(m.dsm->memory().read(a, 4), v);
}
