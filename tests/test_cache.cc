/** @file Unit tests for the two-level cache arrays. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace specrt;

namespace
{

MachineConfig
tinyCfg()
{
    MachineConfig cfg;
    cfg.l1 = {1024, 64};   // 16 lines
    cfg.l2 = {4096, 64};   // 64 lines
    return cfg;
}

std::vector<uint8_t>
pattern(uint8_t seed)
{
    std::vector<uint8_t> data(64);
    for (int i = 0; i < 64; ++i)
        data[i] = static_cast<uint8_t>(seed + i);
    return data;
}

} // namespace

TEST(NodeCache, IndexingWrapsBySetCount)
{
    NodeCache cache(tinyCfg());
    EXPECT_EQ(cache.numL2Lines(), 64u);
    EXPECT_EQ(cache.l2Index(0), cache.l2Index(64 * 64));
    EXPECT_NE(cache.l2Index(0), cache.l2Index(64));
    EXPECT_EQ(cache.lineAlign(0x12345), 0x12340u);
}

TEST(NodeCache, FillThenFind)
{
    NodeCache cache(tinyCfg());
    auto data = pattern(1);
    CacheLine victim;
    EXPECT_FALSE(cache.fill(0x1000, LineState::Shared, data.data(),
                            &victim));
    const CacheLine *line = cache.findLine(0x1010);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::Shared);
    EXPECT_TRUE(cache.l1Hit(0x1010));
}

TEST(NodeCache, ConflictEvictsVictim)
{
    NodeCache cache(tinyCfg());
    auto d1 = pattern(1);
    auto d2 = pattern(2);
    CacheLine victim;
    cache.fill(0x0, LineState::Dirty, d1.data(), &victim);
    // Same L2 set: stride = 64 lines * 64 bytes.
    EXPECT_TRUE(cache.fill(64 * 64, LineState::Shared, d2.data(),
                           &victim));
    EXPECT_EQ(victim.addr, 0u);
    EXPECT_EQ(victim.state, LineState::Dirty);
    EXPECT_EQ(victim.data[0], d1[0]);
    EXPECT_EQ(cache.findLine(0x0), nullptr);
    EXPECT_FALSE(cache.l1Hit(0x0)); // inclusion: L1 dropped too
}

TEST(NodeCache, WordReadWrite)
{
    NodeCache cache(tinyCfg());
    auto data = pattern(0);
    CacheLine victim;
    cache.fill(0x2000, LineState::Dirty, data.data(), &victim);
    cache.writeWord(0x2008, 4, 0xaabbccdd);
    EXPECT_EQ(cache.readWord(0x2008, 4), 0xaabbccddu);
    // Neighbouring words untouched.
    EXPECT_EQ(cache.readWord(0x200c, 1), data[12]);
}

TEST(NodeCache, InvalidateDropsBothLevels)
{
    NodeCache cache(tinyCfg());
    auto data = pattern(3);
    CacheLine victim;
    cache.fill(0x3000, LineState::Shared, data.data(), &victim);
    cache.invalidate(0x3000);
    EXPECT_EQ(cache.findLine(0x3000), nullptr);
    EXPECT_FALSE(cache.l1Hit(0x3000));
}

TEST(NodeCache, L1IsAFilterOverL2)
{
    NodeCache cache(tinyCfg());
    auto d1 = pattern(1);
    auto d2 = pattern(2);
    CacheLine victim;
    cache.fill(0x0000, LineState::Shared, d1.data(), &victim);
    // L1 has 16 sets; 16 lines later maps to the same L1 set but a
    // different L2 set.
    cache.fill(16 * 64, LineState::Shared, d2.data(), &victim);
    EXPECT_FALSE(cache.l1Hit(0x0000));      // displaced from L1...
    EXPECT_NE(cache.findLine(0x0000), nullptr); // ...but still in L2
    cache.l1Fill(0x0000);
    EXPECT_TRUE(cache.l1Hit(0x0000));
}

TEST(NodeCache, FlushCollectsDirtyVictims)
{
    NodeCache cache(tinyCfg());
    auto d = pattern(9);
    CacheLine victim;
    // Adjacent lines: different L2 sets, both resident.
    cache.fill(0x1000, LineState::Dirty, d.data(), &victim);
    cache.fill(0x1040, LineState::Shared, d.data(), &victim);
    std::vector<CacheLine> victims;
    cache.flushAll(&victims);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0].addr, 0x1000u);
    EXPECT_EQ(cache.findLine(0x1000), nullptr);
    EXPECT_EQ(cache.findLine(0x1040), nullptr);
}

TEST(NodeCache, RefillSameLineKeepsVictimOut)
{
    NodeCache cache(tinyCfg());
    auto d1 = pattern(1);
    auto d2 = pattern(2);
    CacheLine victim;
    cache.fill(0x1000, LineState::Shared, d1.data(), &victim);
    // Refill of the very same line must not report a victim.
    EXPECT_FALSE(cache.fill(0x1000, LineState::Dirty, d2.data(),
                            &victim));
    EXPECT_EQ(cache.findLine(0x1000)->state, LineState::Dirty);
    EXPECT_EQ(cache.readWord(0x1000, 1), d2[0]);
}
