/**
 * @file
 * Tests of the privatization algorithm's pure transition logic
 * (paper Figures 8 and 9), including read-in/copy-out, plus a
 * property test: replaying any trace through the private/shared
 * directory logic yields PASS iff the oracle's read-first/write
 * time-stamp predicate holds.
 */

#include <gtest/gtest.h>

#include <map>

#include "spec/oracle.hh"
#include "spec/priv.hh"
#include "sim/random.hh"

using namespace specrt;

// ---- cache tags: Fig. 8(a) / 9(f) ------------------------------------

TEST(PrivCache, FirstReadIsReadFirst)
{
    PrivTagBits t;
    EXPECT_TRUE(privCacheRead(t, 5).readFirst);
    EXPECT_TRUE(t.read1st);
    EXPECT_FALSE(privCacheRead(t, 5).readFirst); // same iteration
}

TEST(PrivCache, ReadAfterWriteSameIterationIsCovered)
{
    PrivTagBits t;
    privCacheWrite(t, 5);
    EXPECT_FALSE(privCacheRead(t, 5).readFirst);
}

TEST(PrivCache, TagsClearAtIterationBoundary)
{
    PrivTagBits t;
    privCacheWrite(t, 5);
    // Iteration 6 starts: the write bit no longer covers reads.
    EXPECT_TRUE(privCacheRead(t, 6).readFirst);
}

TEST(PrivCache, FirstWritePerIterationSignals)
{
    PrivTagBits t;
    EXPECT_TRUE(privCacheWrite(t, 3).firstWrite);
    EXPECT_FALSE(privCacheWrite(t, 3).firstWrite);
    EXPECT_TRUE(privCacheWrite(t, 4).firstWrite); // new iteration
}

TEST(PrivCache, EffectiveViewHonorsIterTag)
{
    PrivTagBits t{true, true, 7};
    PrivTagBits same = privEffective(t, 7);
    EXPECT_TRUE(same.read1st);
    PrivTagBits later = privEffective(t, 8);
    EXPECT_FALSE(later.read1st);
    EXPECT_FALSE(later.write);
}

// ---- private directory: Fig. 8(b)/(c), 9(g)/(h) ----------------------

TEST(PrivPDir, ReadFirstSignalRecordsIter)
{
    PrivPrivDirBits d;
    privPDirReadFirstSig(d, 9);
    EXPECT_EQ(d.pMaxR1st, 9);
}

TEST(PrivPDir, UntouchedLineReadsIn)
{
    PrivPrivDirBits d;
    PrivPDirResult r = privPDirRead(d, 4, true);
    EXPECT_TRUE(r.needReadIn);
    EXPECT_FALSE(r.readFirst);
}

TEST(PrivPDir, TouchedLineReadDetectsReadFirst)
{
    PrivPrivDirBits d;
    d.pMaxW = 2;
    PrivPDirResult r = privPDirRead(d, 4, false);
    EXPECT_TRUE(r.readFirst);
    EXPECT_EQ(d.pMaxR1st, 4);
    // Already read-first this iteration: no duplicate.
    EXPECT_FALSE(privPDirRead(d, 4, false).readFirst);
}

TEST(PrivPDir, ReadCoveredByThisIterationsWrite)
{
    PrivPrivDirBits d;
    d.pMaxW = 4;
    EXPECT_FALSE(privPDirRead(d, 4, false).readFirst);
}

TEST(PrivPDir, FirstWriteSigForwardsOnlyOnce)
{
    PrivPrivDirBits d;
    EXPECT_TRUE(privPDirFirstWriteSig(d, 3).firstWrite);
    EXPECT_EQ(d.pMaxW, 3);
    EXPECT_FALSE(privPDirFirstWriteSig(d, 5).firstWrite);
    EXPECT_EQ(d.pMaxW, 5);
}

TEST(PrivPDir, WriteMissOnUntouchedLineReadsInForWrite)
{
    PrivPrivDirBits d;
    PrivPDirResult r = privPDirWrite(d, 2, true);
    EXPECT_TRUE(r.needReadIn);
    privPDirReadInDone(d, 2, true);
    EXPECT_EQ(d.pMaxW, 2);
    EXPECT_EQ(d.pMaxR1st, 0);
}

TEST(PrivPDir, WriteMissWithValidDataSignalsFirstWrite)
{
    PrivPrivDirBits d;
    d.pMaxR1st = 1; // some element of the line was read in before
    PrivPDirResult r = privPDirWrite(d, 2, false);
    EXPECT_FALSE(r.needReadIn);
    EXPECT_TRUE(r.firstWrite);
    EXPECT_EQ(d.pMaxW, 2);
}

TEST(PrivPDir, ReadInDoneForReadRecordsReadFirst)
{
    PrivPrivDirBits d;
    privPDirReadInDone(d, 6, false);
    EXPECT_EQ(d.pMaxR1st, 6);
    EXPECT_EQ(d.pMaxW, 0);
}

// ---- shared directory: Fig. 8(d)/(e), 9(i)/(j) -----------------------

TEST(PrivSDir, ReadFirstBeforeAnyWritePasses)
{
    PrivSharedDirBits d;
    EXPECT_FALSE(privSDirReadFirst(d, 10).fail);
    EXPECT_EQ(d.maxR1st, 10);
}

TEST(PrivSDir, ReadFirstAfterEarlierWriteFails)
{
    PrivSharedDirBits d;
    EXPECT_FALSE(privSDirFirstWrite(d, 5).fail);
    EXPECT_FALSE(privSDirReadFirst(d, 5).fail); // same iteration: ok
    EXPECT_FALSE(privSDirReadFirst(d, 3).fail); // earlier: ok
    EXPECT_TRUE(privSDirReadFirst(d, 6).fail);  // later: flow dep
}

TEST(PrivSDir, WriteBeforeLaterReadFirstFails)
{
    PrivSharedDirBits d;
    EXPECT_FALSE(privSDirReadFirst(d, 7).fail);
    EXPECT_FALSE(privSDirFirstWrite(d, 7).fail);  // equal: ok
    EXPECT_FALSE(privSDirFirstWrite(d, 9).fail);  // later: ok
    EXPECT_TRUE(privSDirFirstWrite(d, 4).fail);   // earlier: flow dep
}

TEST(PrivSDir, MinWTracksLowestWriter)
{
    PrivSharedDirBits d;
    privSDirFirstWrite(d, 9);
    privSDirFirstWrite(d, 4);
    EXPECT_EQ(d.minW, 4);
    privSDirFirstWrite(d, 7);
    EXPECT_EQ(d.minW, 4);
}

TEST(PrivSDir, CopyOutArbitratesByIteration)
{
    PrivSharedDirBits d;
    EXPECT_TRUE(privSDirCopyOut(d, 5));
    EXPECT_FALSE(privSDirCopyOut(d, 3)); // older value loses
    EXPECT_TRUE(privSDirCopyOut(d, 8));
    EXPECT_EQ(d.lastCopyIter, 8);
}

// ---- paper Figure 3 shapes -------------------------------------------

TEST(PrivScenario, ReadOnlyPrefixThenWritesPasses)
{
    // Iterations 1..4 read-first; 5..8 write. Parallel with read-in.
    PrivSharedDirBits d;
    for (IterNum i = 1; i <= 4; ++i)
        EXPECT_FALSE(privSDirReadFirst(d, i).fail);
    for (IterNum i = 5; i <= 8; ++i)
        EXPECT_FALSE(privSDirFirstWrite(d, i).fail);
}

TEST(PrivScenario, ReadThenWriteEveryIterationFails)
{
    // do i: ... = A(1); A(1) = ...: iteration 2's read-first sees
    // iteration 1's write.
    PrivSharedDirBits d;
    EXPECT_FALSE(privSDirReadFirst(d, 1).fail);
    EXPECT_FALSE(privSDirFirstWrite(d, 1).fail);
    EXPECT_TRUE(privSDirReadFirst(d, 2).fail);
}

TEST(PrivScenario, WriteBeforeReadEveryIterationPasses)
{
    PrivSharedDirBits d;
    for (IterNum i = 1; i <= 16; ++i)
        EXPECT_FALSE(privSDirFirstWrite(d, i).fail);
    // The reads are covered inside each iteration, so no read-first
    // ever reaches the shared directory.
}

// ---- property: replay == oracle --------------------------------------

namespace
{

/**
 * Replay a trace through per-processor cache tags, private
 * directories, and the shared directory, in trace order.
 */
bool
replayPasses(const std::vector<AccessEvent> &trace, int procs)
{
    std::vector<std::map<uint64_t, PrivTagBits>> tags(procs);
    std::vector<std::map<uint64_t, PrivPrivDirBits>> pdir(procs);
    std::map<uint64_t, PrivSharedDirBits> sdir;

    for (const AccessEvent &e : trace) {
        PrivTagBits &t = tags[e.proc][e.elem];
        PrivPrivDirBits &pd = pdir[e.proc][e.elem];
        if (e.isWrite) {
            PrivCacheResult c = privCacheWrite(t, e.iter);
            if (!c.firstWrite)
                continue;
            PrivPDirResult p = privPDirFirstWriteSig(pd, e.iter);
            if (!p.firstWrite)
                continue;
            if (privSDirFirstWrite(sdir[e.elem], e.iter).fail)
                return false;
        } else {
            PrivCacheResult c = privCacheRead(t, e.iter);
            if (!c.readFirst)
                continue;
            privPDirReadFirstSig(pd, e.iter);
            if (privSDirReadFirst(sdir[e.elem], e.iter).fail)
                return false;
        }
    }
    return true;
}

struct PrivPropParams
{
    uint64_t seed;
    int procs;
    int elems;
    int iters;
    int accesses;
    double write_prob;
};

class PrivProperty : public ::testing::TestWithParam<PrivPropParams>
{
};

} // namespace

TEST_P(PrivProperty, ReplayMatchesOracle)
{
    PrivPropParams p = GetParam();
    Rng rng(p.seed);
    for (int round = 0; round < 40; ++round) {
        // Build per-iteration access lists, then execute iterations
        // in a random interleaving across processors (each proc runs
        // its iterations in increasing order, as required).
        std::vector<AccessEvent> trace;
        for (IterNum i = 1; i <= p.iters; ++i) {
            NodeId proc =
                static_cast<NodeId>(rng.nextBounded(p.procs));
            for (int a = 0; a < p.accesses; ++a) {
                trace.push_back({proc, i, rng.nextBounded(p.elems),
                                 rng.nextBool(p.write_prob), 0});
            }
        }
        EXPECT_EQ(replayPasses(trace, p.procs),
                  Oracle::privParallel(trace))
            << "seed " << p.seed << " round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrivProperty,
    ::testing::Values(
        PrivPropParams{11, 2, 3, 8, 3, 0.5},    // heavy collisions
        PrivPropParams{12, 4, 16, 24, 4, 0.3},
        PrivPropParams{13, 8, 64, 40, 4, 0.1},  // mostly reads
        PrivPropParams{14, 8, 8, 40, 2, 0.9},   // mostly writes
        PrivPropParams{15, 4, 4, 16, 5, 0.5},
        PrivPropParams{16, 16, 128, 64, 3, 0.25}));

TEST(PrivProperty, FirstViolationIndexIsConsistent)
{
    Rng rng(77);
    for (int round = 0; round < 30; ++round) {
        std::vector<AccessEvent> trace;
        for (IterNum i = 1; i <= 16; ++i) {
            for (int a = 0; a < 3; ++a)
                trace.push_back({0, i, rng.nextBounded(4),
                                 rng.nextBool(0.4), 0});
        }
        int64_t idx = Oracle::firstPrivViolation(trace);
        EXPECT_EQ(idx >= 0, !Oracle::privParallel(trace));
        if (idx >= 0) {
            std::vector<AccessEvent> prefix(trace.begin(),
                                            trace.begin() + idx);
            EXPECT_TRUE(Oracle::privParallel(prefix));
        }
    }
}
