/**
 * @file
 * End-to-end tests of the loop executor: all four execution modes,
 * semantic equivalence with serial execution, failure + restore +
 * re-execution, privatization with read-in/copy-out, and early
 * abort timing.
 */

#include <gtest/gtest.h>

#include "core/loop_exec.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

MachineConfig
machine(int procs = 8)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    return cfg;
}

/** Final contents of shared array @p decl after running @p w. */
std::vector<uint64_t>
finalArray(LoopExecutor &exec, int decl)
{
    const Region *r = exec.sharedRegion(decl);
    std::vector<uint64_t> out(r->numElems());
    for (uint64_t e = 0; e < r->numElems(); ++e)
        out[e] = exec.machine().memory().read(r->elemAddr(e),
                                              r->elemBytes);
    return out;
}

/** Run one mode; return (result, final contents of array 0). */
std::pair<RunResult, std::vector<uint64_t>>
runMode(Workload &w, ExecMode mode, int procs = 8,
        ExecConfig base = {})
{
    base.mode = mode;
    LoopExecutor exec(machine(procs), w, base);
    RunResult res = exec.run();
    return {res, finalArray(exec, 0)};
}

} // namespace

TEST(Executor, SerialMatchesHandComputedFig1A)
{
    Fig1ALoop loop(16);
    auto [res, a] = runMode(loop, ExecMode::Serial, 1);
    EXPECT_TRUE(res.passed);
    // A starts as (1, 2, ..., 17); A[i] += A[i-1] serially gives
    // prefix sums.
    uint64_t expect = 1;
    for (IterNum i = 1; i <= 16; ++i) {
        expect += static_cast<uint64_t>(i) + 1;
        EXPECT_EQ(a[i], expect) << "element " << i;
    }
}

TEST(Executor, HwAbortsFlowDependentLoop)
{
    Fig1ALoop loop(64);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    ExecConfig xc;
    xc.blockIters = 2;
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8, xc);
    EXPECT_FALSE(hw.passed);
    EXPECT_TRUE(hw.hwFailure.failed);
    EXPECT_GT(hw.phases.serial, 0u);
    EXPECT_GT(hw.phases.restore, 0u);
    // Re-executed serially: results match the serial run.
    EXPECT_EQ(ha, sa);
}

TEST(Executor, SwFailsFlowDependentLoopAfterFullRun)
{
    Fig1ALoop loop(64);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 8);
    EXPECT_FALSE(sw.passed);
    EXPECT_GT(sw.phases.merge, 0u);
    EXPECT_GT(sw.phases.analysis, 0u);
    EXPECT_GT(sw.phases.serial, 0u);
    EXPECT_EQ(swa, sa);
    // SW detects only after loop completion; the loop phase ran all
    // iterations.
    EXPECT_EQ(sw.itersExecuted, 64u);
}

TEST(Executor, HwDetectsFailureBeforeLoopEnd)
{
    Fig1ALoop loop(256);
    ExecConfig xc;
    xc.blockIters = 2;
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8, xc);
    EXPECT_FALSE(hw.passed);
    // Early abort: far fewer iterations executed than the trip count.
    EXPECT_LT(hw.itersExecuted, 64u);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 8, xc);
    EXPECT_LT(hw.phases.loop, sw.phases.loop);
}

TEST(Executor, ParallelLoopPassesEverywhereAndMatchesSerial)
{
    Fig1CLoop loop(256, 1024, /*disjoint=*/true, 5);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [ideal, ia] = runMode(loop, ExecMode::Ideal, 8);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 8);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_TRUE(ideal.passed);
    EXPECT_TRUE(sw.passed);
    EXPECT_TRUE(hw.passed);
    EXPECT_EQ(ia, sa);
    EXPECT_EQ(swa, sa);
    EXPECT_EQ(ha, sa);
    EXPECT_EQ(hw.phases.serial, 0u);
    EXPECT_EQ(hw.phases.restore, 0u);
}

TEST(Executor, CollidingSubscriptsFailEverywhereAndRecover)
{
    Fig1CLoop loop(128, 256, /*disjoint=*/false, 7);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 8);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_FALSE(sw.passed);
    EXPECT_FALSE(hw.passed);
    EXPECT_EQ(swa, sa);
    EXPECT_EQ(ha, sa);
}

TEST(Executor, PrivatizationMakesFig1BParallel)
{
    Fig1BLoop loop(64);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    EXPECT_EQ(ha, sa);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 8);
    EXPECT_TRUE(sw.passed);
    EXPECT_EQ(swa, sa);
}

TEST(Executor, DowngradedPrivatizationFails)
{
    // The forced-failure scenario of section 6.2: run the
    // non-privatization algorithm on privatization-needing arrays.
    Fig1BLoop loop(64);
    ExecConfig xc;
    xc.downgradePrivToNonPriv = true;
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8, xc);
    EXPECT_FALSE(hw.passed);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    EXPECT_EQ(ha, sa);
}

TEST(Executor, Fig3ReadInNeededPassesHw)
{
    Fig3Loop loop(Fig3Kind::ReadInNeeded, 32);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    // R captured the pre-loop value 999 in the first half; the
    // second-half entries saw each iteration's own write.
    LoopExecutor sexec(machine(1), loop, ExecConfig{ExecMode::Serial});
    (void)sexec;
    auto [hw2, hr] = runMode(loop, ExecMode::HW, 8);
    (void)hw2;
    EXPECT_EQ(ha, sa); // A(1): copy-out of the last writing iteration
}

TEST(Executor, Fig3ReadInResultsMatchSerialInR)
{
    Fig3Loop loop(Fig3Kind::ReadInNeeded, 32);
    ExecConfig xc;
    LoopExecutor serial_exec(machine(1), loop,
                             ExecConfig{ExecMode::Serial});
    RunResult sres = serial_exec.run();
    EXPECT_TRUE(sres.passed);
    auto sr = finalArray(serial_exec, 1);

    xc.mode = ExecMode::HW;
    LoopExecutor hw_exec(machine(8), loop, xc);
    RunResult hres = hw_exec.run();
    EXPECT_TRUE(hres.passed) << hres.hwFailure.reason;
    const Region *r = hw_exec.sharedRegion(1);
    for (uint64_t e = 0; e < r->numElems(); ++e) {
        EXPECT_EQ(hw_exec.machine().memory().read(r->elemAddr(e), 4),
                  sr[e])
            << "R[" << e << "]";
    }
}

TEST(Executor, Fig3WriteFirstCopyOutTakesLastIteration)
{
    Fig3Loop loop(Fig3Kind::WriteFirst, 32);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    EXPECT_GT(hw.phases.copyOut, 0u);
    EXPECT_EQ(ha[0], 2000u + 32u); // iteration 32's value wins
}

TEST(Executor, Fig3FlowDepFailsHwPriv)
{
    Fig3Loop loop(Fig3Kind::FlowDep, 32);
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_FALSE(hw.passed);
    EXPECT_EQ(ha, sa);
}

TEST(Executor, Fig2FailsBothSchemes)
{
    Fig2Loop loop;
    auto [serial, sa] = runMode(loop, ExecMode::Serial, 1);
    auto [sw, swa] = runMode(loop, ExecMode::SW, 4);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 4);
    EXPECT_FALSE(sw.passed);
    EXPECT_FALSE(hw.passed);
    EXPECT_EQ(swa, sa);
    EXPECT_EQ(ha, sa);
    // The SW analysis saw the paper's chart values.
    const LrpdAnalysis &a = sw.swAnalyses.at(0);
    EXPECT_EQ(a.atw, 3u);
    EXPECT_EQ(a.atm, 2u);
}

TEST(Executor, BreakdownAndPhasesAreConsistent)
{
    Fig1CLoop loop(256, 1024, true, 5);
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8);
    EXPECT_GT(hw.agg.busy, 0.0);
    EXPECT_GT(hw.agg.mem, 0.0);
    EXPECT_EQ(hw.totalTicks, hw.phases.total());
    EXPECT_GT(hw.phases.backup, 0u);
    EXPECT_GT(hw.phases.loop, 0u);
}

TEST(Executor, TraceIsKeptOnRequest)
{
    Fig1CLoop loop(64, 128, true, 5);
    ExecConfig xc;
    xc.keepTrace = true;
    auto [hw, ha] = runMode(loop, ExecMode::HW, 4, xc);
    EXPECT_FALSE(hw.trace.empty());
    // Each iteration reads and writes the tested array once.
    size_t reads = 0, writes = 0;
    for (const AccessEvent &e : hw.trace) {
        reads += !e.isWrite;
        writes += e.isWrite;
    }
    EXPECT_EQ(reads, 64u);
    EXPECT_EQ(writes, 64u);
}

TEST(Executor, SchedulingPoliciesAllWork)
{
    Fig1CLoop loop(128, 512, true, 9);
    for (SchedPolicy pol :
         {SchedPolicy::StaticChunk, SchedPolicy::BlockCyclic,
          SchedPolicy::Dynamic}) {
        ExecConfig xc;
        xc.sched = pol;
        auto [hw, ha] = runMode(loop, ExecMode::HW, 8, xc);
        EXPECT_TRUE(hw.passed) << schedPolicyName(pol);
        EXPECT_EQ(hw.itersExecuted, 128u);
    }
}

TEST(Executor, MaxItersCapsTheRun)
{
    Fig1CLoop loop(256, 1024, true, 3);
    ExecConfig xc;
    xc.maxIters = 100;
    auto [hw, ha] = runMode(loop, ExecMode::HW, 8, xc);
    EXPECT_EQ(hw.itersExecuted, 100u);
}
