/**
 * @file
 * Tests for the stall-attribution engine (sim/stall.hh) and the
 * critical-path recorder (sim/critpath.hh):
 *
 *  - the accounting invariant busy(n) + sum(stall(n, c)) == run ticks
 *    holds tick-for-tick, per node, across serial, HW-priv,
 *    HW-nonpriv (downgraded), and fault-injected runs;
 *  - RunResult::cost is exposed, consistent, and all-zero/invalid
 *    when the profiler is off;
 *  - a forced directory hot-spot makes dir-queue the dominant cause
 *    and the report names the hot home node;
 *  - campaign merges are byte-identical across --jobs values;
 *  - Engine::settlePhase residual charging and over-attribution
 *    give-back behave exactly as documented.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "sim/campaign.hh"
#include "sim/critpath.hh"
#include "sim/sim_context.hh"
#include "sim/stall.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

MachineConfig
machine(int procs, bool profiled = true)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.critpath.enabled = profiled;
    return cfg;
}

/**
 * Assert the accounting invariant on @p exec's engine after a run:
 * every node's busy + attributed stall cycles equals the run length,
 * exactly (all charges are integral cycle counts held in doubles).
 */
void
expectExactAttribution(LoopExecutor &exec, const RunResult &res,
                       const char *what)
{
    stall::Engine *eng = exec.stallEngine();
    ASSERT_NE(eng, nullptr) << what;
    EXPECT_EQ(eng->settledTicks(),
              static_cast<double>(res.totalTicks))
        << what;
    for (NodeId n = 0; n < eng->numProcs(); ++n) {
        EXPECT_EQ(eng->busyOf(n) + eng->attributed(n),
                  static_cast<double>(res.totalTicks))
            << what << ": node " << n;
    }
    // The CostBreakdown mirrors the engine, summed over nodes.
    ASSERT_TRUE(res.cost.valid) << what;
    EXPECT_EQ(res.cost.numProcs, eng->numProcs()) << what;
    EXPECT_EQ(res.cost.perNodeTicks,
              static_cast<double>(res.totalTicks))
        << what;
    EXPECT_EQ(res.cost.busy + res.cost.stallTotal(),
              static_cast<double>(res.totalTicks) * eng->numProcs())
        << what;
}

} // namespace

// --- end-to-end accounting invariant ----------------------------------

TEST(StallAccounting, SerialRunFullyAttributed)
{
    SimContext ctx(1);
    ScopedSimContext scope(ctx);
    Fig1CLoop loop(64, 256, /*disjoint=*/true, 5);
    LoopExecutor exec(machine(1), loop, ExecConfig{ExecMode::Serial});
    RunResult res = exec.run();
    EXPECT_TRUE(res.passed);
    EXPECT_GT(res.totalTicks, 0u);
    expectExactAttribution(exec, res, "serial");
}

TEST(StallAccounting, HwPrivatizedRunFullyAttributed)
{
    SimContext ctx(2);
    ScopedSimContext scope(ctx);
    Fig1BLoop loop(64);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(machine(8), loop, xc);
    RunResult res = exec.run();
    EXPECT_TRUE(res.passed) << res.hwFailure.reason;
    expectExactAttribution(exec, res, "hw-priv");
}

TEST(StallAccounting, HwNonPrivAbortedRunFullyAttributed)
{
    // Downgraded privatization fails speculation: the run includes
    // restore + serial re-execution phases (AbortRedo attribution).
    SimContext ctx(3);
    ScopedSimContext scope(ctx);
    Fig1BLoop loop(64);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.downgradePrivToNonPriv = true;
    LoopExecutor exec(machine(8), loop, xc);
    RunResult res = exec.run();
    EXPECT_FALSE(res.passed);
    EXPECT_GT(res.phases.serial, 0u);
    expectExactAttribution(exec, res, "hw-nonpriv-abort");
    EXPECT_GT(exec.stallEngine()->causeTotal(stall::Cause::AbortRedo),
              0.0);
}

TEST(StallAccounting, FaultedRunFullyAttributed)
{
    // Message loss + watchdog retries: the retry windows and the
    // settle-time give-back paths all stay exact.
    SimContext ctx(4);
    ScopedSimContext scope(ctx);
    Fig1CLoop loop(64, 256, /*disjoint=*/true, 7);
    MachineConfig cfg = machine(4);
    cfg.fault.seed = 11;
    cfg.fault.dropProb = 0.05;
    cfg.fault.jitterProb = 0.1;
    cfg.fault.watchdogTimeout = 4000;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();
    expectExactAttribution(exec, res, "faulted");
}

TEST(StallAccounting, DisabledProfilerLeavesCostInvalid)
{
    SimContext ctx(5);
    ScopedSimContext scope(ctx);
    Fig1CLoop loop(32, 128, true, 5);
    LoopExecutor exec(machine(4, /*profiled=*/false), loop,
                      ExecConfig{ExecMode::Ideal});
    RunResult res = exec.run();
    EXPECT_TRUE(res.passed);
    EXPECT_FALSE(res.cost.valid);
    EXPECT_EQ(res.cost.stallTotal(), 0.0);
    EXPECT_EQ(exec.stallEngine(), nullptr);
    EXPECT_EQ(res.cost.summary(), "");
}

TEST(StallAccounting, MemStallsAreSplitIntoComponents)
{
    // A remote-heavy run must attribute real cycles to the memory
    // system split, not just the phase residuals.
    SimContext ctx(6);
    ScopedSimContext scope(ctx);
    Fig1CLoop loop(128, 512, true, 5);
    ExecConfig xc;
    xc.mode = ExecMode::Ideal;
    LoopExecutor exec(machine(8), loop, xc);
    RunResult res = exec.run();
    EXPECT_TRUE(res.passed);
    expectExactAttribution(exec, res, "ideal");
    EXPECT_GT(res.cost.stallOf(stall::Cause::LoadMiss), 0.0);
    EXPECT_GT(res.cost.stallOf(stall::Cause::NetTransit), 0.0);
    EXPECT_GT(res.cost.stallOf(stall::Cause::Barrier), 0.0);
    std::string s = res.cost.summary();
    EXPECT_NE(s.find("run bounded"), std::string::npos) << s;
}

// --- pinned dominant-cause scenario -----------------------------------

TEST(CritPath, DirHotspotMakesDirQueueDominant)
{
    // A tiny array lives on one page -> one home node; a huge
    // directory occupancy serializes every miss there. The dominant
    // cost component must be dir-queue, and the report must name the
    // hot home.
    SimContext ctx(7);
    ScopedSimContext scope(ctx);
    Fig1CLoop loop(64, 64, /*disjoint=*/true, 5);
    MachineConfig cfg = machine(8);
    cfg.lat.dirOccupancy = 2000;
    ExecConfig xc;
    xc.mode = ExecMode::Ideal;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();
    EXPECT_TRUE(res.passed);
    expectExactAttribution(exec, res, "dir-hotspot");

    EXPECT_EQ(res.cost.dominantCause(), stall::Cause::DirQueue)
        << res.cost.summary();
    EXPECT_GT(res.cost.dominantShare(), 0.5);
    std::string s = res.cost.summary();
    EXPECT_NE(s.find("dir-queue"), std::string::npos) << s;

    // The recorder saw the transactions and names the hot home.
    critpath::Recorder &rec = critpath::current();
    EXPECT_TRUE(rec.hasData());
    EXPECT_GT(rec.numTxns(), 0u);
    std::string line = rec.summaryLine();
    EXPECT_NE(line.find("dir-queue"), std::string::npos) << line;
    EXPECT_NE(line.find("at home node"), std::string::npos) << line;
    EXPECT_FALSE(rec.slowest().empty());
    // Slowest transactions carry the component split.
    const critpath::TxnRecord &slow = rec.slowest().front();
    EXPECT_GT(slow.dirWait, 0.0);
    EXPECT_GE(slow.latency(),
              slow.dirWait + slow.net + slow.retry + slow.service -
                  1e-9);

    // The Perfetto export contains the async track and the summary.
    std::string json = rec.perfettoJson();
    EXPECT_NE(json.find("\"critical path\""), std::string::npos);
    EXPECT_NE(json.find("\"dir_queue\""), std::string::npos);
    EXPECT_NE(json.find("run bounded"), std::string::npos);
}

// --- campaign determinism ---------------------------------------------

namespace
{

/** Run @p n profiled jobs under @p workers threads; return the merged
 *  recorder's Perfetto JSON (merged in job-id order). */
std::string
mergedCritpathJson(size_t n, unsigned workers)
{
    std::vector<critpath::Recorder> shards(n);
    campaign::Options opts;
    opts.jobs = workers;
    auto outcomes = campaign::run(
        n,
        [&](size_t id, SimContext &) {
            critpath::current().enable();
            Fig1CLoop loop(64, 256, true,
                           static_cast<int>(5 + id));
            ExecConfig xc;
            xc.mode = ExecMode::HW;
            LoopExecutor exec(machine(4), loop, xc);
            exec.run();
            shards[id] = critpath::current();
        },
        opts);
    EXPECT_TRUE(campaign::allOk(outcomes));
    critpath::Recorder merged;
    for (const critpath::Recorder &s : shards)
        merged.merge(s);
    return merged.perfettoJson();
}

} // namespace

TEST(CritPath, CampaignMergeIsByteIdenticalAcrossJobs)
{
    std::string serial = mergedCritpathJson(4, 1);
    std::string parallel = mergedCritpathJson(4, 2);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// --- engine unit behavior ---------------------------------------------

TEST(StallEngine, SettleChargesResidualToPhaseCause)
{
    stall::Engine eng(2);
    eng.beginPhase();
    eng.charge(0, stall::Cause::DirQueue, 30);
    std::vector<double> busy = {50, 10};
    eng.settlePhase(100, busy, stall::Cause::Barrier);
    // Node 0: 100 - 50 busy - 30 dir = 20 residual -> Barrier.
    EXPECT_EQ(eng.busyOf(0), 50.0);
    EXPECT_EQ(eng.total(0, stall::Cause::DirQueue), 30.0);
    EXPECT_EQ(eng.total(0, stall::Cause::Barrier), 20.0);
    // Node 1: all residual.
    EXPECT_EQ(eng.total(1, stall::Cause::Barrier), 90.0);
    EXPECT_EQ(eng.settledTicks(), 100.0);
    for (NodeId n = 0; n < 2; ++n)
        EXPECT_EQ(eng.busyOf(n) + eng.attributed(n), 100.0);
}

TEST(StallEngine, SettleGivesBackOverAttribution)
{
    stall::Engine eng(1);
    eng.beginPhase();
    // Attribute more than the phase holds: 80 net + 40 dir vs 100
    // ticks and 10 busy -> 30 cycles must come back, net first.
    eng.charge(0, stall::Cause::NetTransit, 80);
    eng.charge(0, stall::Cause::DirQueue, 40);
    std::vector<double> busy = {10};
    eng.settlePhase(100, busy, stall::Cause::Other);
    EXPECT_EQ(eng.busyOf(0), 10.0);
    EXPECT_EQ(eng.total(0, stall::Cause::NetTransit), 50.0);
    EXPECT_EQ(eng.total(0, stall::Cause::DirQueue), 40.0);
    EXPECT_EQ(eng.busyOf(0) + eng.attributed(0), 100.0);
}

TEST(StallEngine, LoadWaitReconcilesComponentCredits)
{
    stall::Engine eng(1);
    eng.beginPhase();
    eng.loadBegin(0, 7, 0x100, 0x104, 3, 1, 1000);
    eng.dirWait(0, 7, 20);
    eng.netLeg(0, 7, 74);
    eng.netLeg(0, 7, 74);
    // A retry window larger than the whole wait: must be clamped.
    eng.retryWindow(0, 7, 500);
    eng.loadWait(0, 300, 1300);
    EXPECT_EQ(eng.total(0, stall::Cause::DirQueue), 20.0);
    EXPECT_EQ(eng.total(0, stall::Cause::NetTransit), 148.0);
    // 300 - 20 - 148 = 132 left for the retry credit...
    EXPECT_EQ(eng.total(0, stall::Cause::RetryBackoff), 132.0);
    // ...and nothing for the service remainder.
    EXPECT_EQ(eng.total(0, stall::Cause::LoadMiss), 0.0);
    EXPECT_EQ(eng.attributed(0), 300.0);
}

TEST(StallEngine, MismatchedSeqCreditsAreDropped)
{
    stall::Engine eng(1);
    eng.loadBegin(0, 7, 0x100, 0x104, 3, 1, 0);
    eng.dirWait(0, 99, 1000); // store txn / stray: never charged
    eng.netLeg(0, 99, 74);
    EXPECT_EQ(eng.attributed(0), 0.0);
    eng.loadWait(0, 50, 100);
    EXPECT_EQ(eng.total(0, stall::Cause::LoadMiss), 50.0);
}

TEST(StallEngine, CostBreakdownSummaryNamesDominantCause)
{
    stall::CostBreakdown cb;
    cb.valid = true;
    cb.numProcs = 4;
    cb.stalls[static_cast<size_t>(stall::Cause::NetTransit)] = 610;
    cb.stalls[static_cast<size_t>(stall::Cause::LoadMiss)] = 390;
    EXPECT_EQ(cb.dominantCause(), stall::Cause::NetTransit);
    EXPECT_EQ(cb.summary(), "run bounded 61% by net-transit");
}
