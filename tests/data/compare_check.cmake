# Pinned-output check for scripts/compare_runs.py: diff the two
# committed sample reports and require the Markdown to match
# compare_expected.md byte for byte, then require --fail-on-regression
# to exit 1 (the samples contain a seeded regression).
#
# Invoked by ctest (tests/CMakeLists.txt) as:
#   cmake -DPYTHON3=... -DSCRIPT=... -DDATA=... -P compare_check.cmake

execute_process(
    COMMAND ${PYTHON3} ${SCRIPT}
            ${DATA}/report_base.json ${DATA}/report_new.json
    OUTPUT_VARIABLE got
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "compare_runs.py exited ${rc}: ${err}")
endif()

file(READ ${DATA}/compare_expected.md want)
if(NOT got STREQUAL want)
    message(FATAL_ERROR "compare_runs.py output drifted from "
            "compare_expected.md.\n--- got ---\n${got}\n--- want ---\n"
            "${want}\nIf the change is intentional, regenerate with:\n"
            "  python3 scripts/compare_runs.py "
            "tests/data/report_base.json tests/data/report_new.json "
            "> tests/data/compare_expected.md")
endif()

execute_process(
    COMMAND ${PYTHON3} ${SCRIPT}
            ${DATA}/report_base.json ${DATA}/report_new.json
            --fail-on-regression
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR "--fail-on-regression exited ${rc}, "
            "expected 1 (the sample reports seed a regression)")
endif()
