/** @file Tests of the test-selection advisor (paper section 2.2.4). */

#include <gtest/gtest.h>

#include "core/advisor.hh"
#include "core/loop_exec.hh"
#include "workloads/adm.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

std::vector<ArrayAdvice>
profileAndAdvise(Workload &w, int procs = 8)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    ExecConfig xc;
    xc.mode = ExecMode::Ideal;
    xc.keepTrace = true;
    xc.traceAllArrays = true;
    LoopExecutor exec(cfg, w, xc);
    RunResult r = exec.run();
    return adviseTests(r.trace, w.arrays());
}

} // namespace

TEST(Advisor, ReadOnlyArraysNeedNoTest)
{
    Fig1CLoop loop(64, 256, true, 3);
    auto advice = profileAndAdvise(loop);
    ASSERT_EQ(advice.size(), 3u);
    EXPECT_EQ(advice[1].recommended, TestType::None); // F
    EXPECT_TRUE(advice[1].readOnly);
    EXPECT_EQ(advice[2].recommended, TestType::None); // G
}

TEST(Advisor, DisjointSubscriptsGetNonPrivRobust)
{
    Fig1CLoop loop(64, 256, true, 3);
    auto advice = profileAndAdvise(loop);
    EXPECT_EQ(advice[0].recommended, TestType::NonPriv);
    EXPECT_TRUE(advice[0].nonPrivRobust);
    EXPECT_FALSE(advice[0].expectSerial);
}

TEST(Advisor, WorkspaceGetsPrivatization)
{
    AdmParams p;
    p.iters = 16;
    AdmLoop loop(p);
    auto advice = profileAndAdvise(loop);
    EXPECT_EQ(advice[0].recommended, TestType::NonPriv); // field
    EXPECT_EQ(advice[1].recommended, TestType::Priv);    // wrk
    EXPECT_TRUE(advice[1].privOk);
    EXPECT_FALSE(advice[1].nonPrivRobust);
}

TEST(Advisor, HistogramGetsReduction)
{
    HistogramParams p;
    p.iters = 32;
    HistogramLoop loop(p);
    auto advice = profileAndAdvise(loop);
    EXPECT_EQ(advice[0].recommended, TestType::Reduction);
    EXPECT_TRUE(advice[0].reductionOk);
    EXPECT_FALSE(advice[0].privOk);    // accumulations are read-first
    EXPECT_FALSE(advice[0].nonPrivRobust);
}

TEST(Advisor, SerialRecurrenceIsFlagged)
{
    Fig1ALoop loop(32);
    auto advice = profileAndAdvise(loop);
    EXPECT_TRUE(advice[0].expectSerial);
    EXPECT_EQ(advice[0].lrpd, LrpdVerdict::NotParallel);
}

TEST(Advisor, ReportMentionsEveryArray)
{
    AdmParams p;
    p.iters = 16;
    AdmLoop loop(p);
    auto advice = profileAndAdvise(loop);
    std::string report = adviceReport(advice);
    EXPECT_NE(report.find("field"), std::string::npos);
    EXPECT_NE(report.find("wrk"), std::string::npos);
    EXPECT_NE(report.find("idx"), std::string::npos);
    EXPECT_NE(report.find("privatization"), std::string::npos);
}

TEST(Advisor, EmptyTraceIsHarmless)
{
    std::vector<ArrayDecl> decls = {
        {"X", 8, 4, TestType::None, false, false}};
    auto advice = adviseTests({}, decls);
    ASSERT_EQ(advice.size(), 1u);
    EXPECT_EQ(advice[0].recommended, TestType::None);
}

TEST(Advisor, RecommendationsActuallyPass)
{
    // Close the loop: run each workload under its recommended tests
    // and expect the hardware to agree.
    AdmParams p;
    p.iters = 32;
    AdmLoop loop(p);
    auto advice = profileAndAdvise(loop);
    auto decls = loop.arrays();
    for (const ArrayAdvice &a : advice)
        EXPECT_EQ(a.recommended, decls[a.declIdx].test)
            << "advisor disagrees with the workload's declaration "
            << decls[a.declIdx].name;

    MachineConfig cfg;
    cfg.numProcs = 8;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, loop, xc);
    EXPECT_TRUE(exec.run().passed);
}
