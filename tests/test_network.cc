/** @file Unit tests for the constant-latency network. */

#include <gtest/gtest.h>

#include "mem/network.hh"

using namespace specrt;

namespace
{

struct Fixture
{
    MachineConfig cfg;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<Msg> cacheRx;
    std::vector<Msg> dirRx;
    std::vector<Tick> rxTicks;

    Fixture()
    {
        cfg.numProcs = 4;
        net = std::make_unique<Network>(eq, cfg);
        for (NodeId n = 0; n < 4; ++n) {
            net->setCacheHandler(n, [this](const Msg &m) {
                cacheRx.push_back(m);
                rxTicks.push_back(eq.curTick());
            });
            net->setDirHandler(n, [this](const Msg &m) {
                dirRx.push_back(m);
                rxTicks.push_back(eq.curTick());
            });
        }
    }

    Msg
    mk(MsgType t, NodeId src, NodeId dst)
    {
        Msg m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.lineAddr = 0x1000;
        return m;
    }
};

} // namespace

TEST(Network, InterNodeLatencyIsOneHop)
{
    Fixture f;
    f.net->send(f.mk(MsgType::ReadReply, 0, 1));
    f.eq.run();
    ASSERT_EQ(f.rxTicks.size(), 1u);
    EXPECT_EQ(f.rxTicks[0], f.cfg.lat.netHop);
}

TEST(Network, IntraNodeIsImmediate)
{
    Fixture f;
    f.net->send(f.mk(MsgType::ReadReply, 2, 2));
    f.eq.run();
    ASSERT_EQ(f.rxTicks.size(), 1u);
    EXPECT_EQ(f.rxTicks[0], 0u);
}

TEST(Network, ExtraDelayAdds)
{
    Fixture f;
    f.net->send(f.mk(MsgType::ReadReply, 0, 1), 11);
    f.eq.run();
    EXPECT_EQ(f.rxTicks[0], f.cfg.lat.netHop + 11);
}

TEST(Network, RoutesRequestsToDirectory)
{
    Fixture f;
    f.net->send(f.mk(MsgType::ReadReq, 0, 1));
    f.net->send(f.mk(MsgType::FirstUpdate, 0, 1));
    f.net->send(f.mk(MsgType::Inval, 1, 0));
    f.eq.run();
    EXPECT_EQ(f.dirRx.size(), 2u);
    EXPECT_EQ(f.cacheRx.size(), 1u);
    EXPECT_EQ(f.cacheRx[0].type, MsgType::Inval);
}

TEST(Network, InOrderPerPair)
{
    Fixture f;
    for (int i = 0; i < 20; ++i) {
        Msg m = f.mk(MsgType::ReadReply, 0, 1);
        m.iter = i;
        f.net->send(std::move(m));
    }
    f.eq.run();
    ASSERT_EQ(f.cacheRx.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(f.cacheRx[i].iter, i);
}

TEST(Network, CountsHopsAndMsgs)
{
    Fixture f;
    f.net->send(f.mk(MsgType::ReadReply, 0, 1));
    f.net->send(f.mk(MsgType::ReadReply, 1, 1));
    f.net->send(f.mk(MsgType::ReadReply, 2, 3));
    f.eq.run();
    EXPECT_EQ(f.net->numMsgs(), 3u);
    EXPECT_EQ(f.net->numHops(), 2u);
}

TEST(Network, RetriesAreCountedPerMessageClass)
{
    Fixture f;
    FaultConfig fc;
    fc.seed = 3;
    fc.dropProb = 1.0; // every eligible transmission is lost
    fc.watchdogTimeout = 100;
    FaultPlan plan(fc);
    f.net->setFaultPlan(&plan);
    size_t lost = 0;
    f.net->setLostHook([&](const Msg &, const char *) { ++lost; });

    plan.arm();
    f.net->send(f.mk(MsgType::FirstUpdate, 0, 1));
    f.net->send(f.mk(MsgType::CopyOutSig, 2, 1));
    f.eq.run();
    plan.disarm();

    // Each dropped signal is retransmitted watchdogMaxRetries times
    // (every attempt drops too), then declared lost -- and every
    // retry lands in its class's bucket.
    auto retries = static_cast<double>(fc.watchdogMaxRetries);
    EXPECT_EQ(
        f.net->retriesByType[static_cast<size_t>(MsgType::FirstUpdate)],
        retries);
    EXPECT_EQ(
        f.net->retriesByType[static_cast<size_t>(MsgType::CopyOutSig)],
        retries);
    EXPECT_EQ(
        f.net->retriesByType[static_cast<size_t>(MsgType::ReadReply)],
        0.0);
    EXPECT_EQ(f.net->retriesByType.total(),
              f.net->msgsRetried.value());
    EXPECT_EQ(lost, 2u);
    EXPECT_EQ(f.net->msgsLost.value(), 2.0);
    EXPECT_EQ(f.net->numPendingRetransmits(), 0u);
}

TEST(Network, JitterNeverReordersAChannel)
{
    Fixture f;
    FaultConfig fc;
    fc.seed = 11;
    fc.jitterProb = 0.8;
    fc.jitterMaxCycles = 50;
    FaultPlan plan(fc);
    f.net->setFaultPlan(&plan);

    plan.arm();
    for (int i = 0; i < 30; ++i) {
        Msg m = f.mk(MsgType::ReadReply, 0, 1);
        m.iter = i;
        f.net->send(std::move(m));
    }
    f.eq.run();
    plan.disarm();

    ASSERT_EQ(f.cacheRx.size(), 30u);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(f.cacheRx[i].iter, i);
}
