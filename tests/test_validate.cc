/** @file Tests of the workload validator. */

#include <gtest/gtest.h>

#include "runtime/validate.hh"
#include "workloads/adm.hh"
#include "workloads/microloops.hh"
#include "workloads/ocean.hh"
#include "workloads/p3m.hh"
#include "workloads/track.hh"

using namespace specrt;

namespace
{

/** A deliberately broken workload. */
class BrokenLoop : public Workload
{
  public:
    std::string name() const override { return "broken"; }

    std::vector<ArrayDecl>
    arrays() const override
    {
        return {
            {"A", 8, 4, TestType::None, true, false},
            {"R", 8, 4, TestType::Reduction, true, false},
        };
    }

    IterNum numIters() const override { return 2; }
    void initData(AddrMap &,
                  const std::vector<const Region *> &) override
    {}

    void
    genIteration(IterNum i, IterProgram &out) override
    {
        if (i == 1) {
            out.push_back(opLoad(1, 0, 100));    // out of bounds
            out.push_back(opImm(30, 5));         // reserved register
            out.push_back(opStore(0, 2, 1));
            out.push_back(opLoad(2, 0, 3));
            out.back().isReduction = true;       // tag on non-red array
        } else {
            out.push_back(opLoad(1, 1, 0));      // untagged on R
            out.push_back(opLoadRed(2, 1, IndexOperand::immediate(1)));
            out.push_back(opAlu(2, AluOp::Add, 2, 1));
            out.push_back(opStoreRed(1, IndexOperand::immediate(1), 2));
        }
    }
};

} // namespace

TEST(Validate, ShippedWorkloadsAreClean)
{
    {
        OceanLoop w{};
        ValidationReport r = validateWorkload(w, 8);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
    {
        P3mLoop w{};
        ValidationReport r = validateWorkload(w, 64);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
    {
        AdmLoop w{};
        ValidationReport r = validateWorkload(w);
        EXPECT_TRUE(r.ok()) << r.summary();
        EXPECT_GT(r.dynamicIndexAccesses, 0u); // subscripted subscripts
    }
    {
        TrackLoop w{TrackParams{3}};
        ValidationReport r = validateWorkload(w, 64);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
    {
        HistogramLoop w{};
        ValidationReport r = validateWorkload(w, 32);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
    {
        Fig2Loop w;
        ValidationReport r = validateWorkload(w);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
}

TEST(Validate, CatchesEveryPlantedBug)
{
    BrokenLoop w;
    ValidationReport r = validateWorkload(w);
    EXPECT_FALSE(r.ok());
    std::string s = r.summary();
    EXPECT_NE(s.find("out of bounds"), std::string::npos);
    EXPECT_NE(s.find("reserved"), std::string::npos);
    EXPECT_NE(s.find("reduction-tagged access to non-reduction"),
              std::string::npos);
    EXPECT_NE(s.find("untagged access to reduction array"),
              std::string::npos);
    EXPECT_EQ(r.issues.size(), 4u) << s;
}

TEST(Validate, RogueHistogramIsFlagged)
{
    HistogramParams p;
    p.iters = 16;
    p.rogueIter = 3;
    HistogramLoop w(p);
    ValidationReport r = validateWorkload(w);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("untagged access"), std::string::npos);
}

TEST(Validate, MaxItersLimitsTheSweep)
{
    OceanLoop w{};
    ValidationReport two = validateWorkload(w, 2);
    ValidationReport four = validateWorkload(w, 4);
    EXPECT_LT(two.opsChecked, four.opsChecked);
}
