/**
 * @file
 * Tests of the section 2.2.3 software read-in extension (the Awmin
 * shadow): the extended LRPD test must agree with the hardware
 * privatization predicate (Oracle::privParallel) on every trace, and
 * the executor's SW mode with swReadIn must pass the Figure 3
 * read-in loop that the basic software test rejects.
 */

#include <gtest/gtest.h>

#include "core/loop_exec.hh"
#include "lrpd/lrpd.hh"
#include "sim/random.hh"
#include "workloads/microloops.hh"

using namespace specrt;

TEST(LrpdReadIn, AcceptsReadOnlyPrefixPattern)
{
    // Iterations 1..4 read element 0; 5..8 write then read it.
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 4; ++i)
        t.push_back({0, i, 0, false, 0});
    for (IterNum i = 5; i <= 8; ++i) {
        t.push_back({0, i, 0, true, 0});
        t.push_back({0, i, 0, false, 0});
    }
    LrpdAnalysis basic = LrpdTest::run(t, 1, 2, true, false, false);
    EXPECT_EQ(basic.verdict, LrpdVerdict::NotParallel);
    LrpdAnalysis ext = LrpdTest::run(t, 1, 2, true, false, true);
    EXPECT_EQ(ext.verdict, LrpdVerdict::DoallWithPriv);
    EXPECT_FALSE(ext.r1stAfterWmin);
}

TEST(LrpdReadIn, RejectsReadAfterWriteIteration)
{
    // Iteration 1 writes; iteration 2 reads first: flow dependence.
    std::vector<AccessEvent> t = {
        {0, 1, 0, true, 0},
        {0, 2, 0, false, 0},
    };
    LrpdAnalysis ext = LrpdTest::run(t, 1, 2, true, false, true);
    EXPECT_EQ(ext.verdict, LrpdVerdict::NotParallel);
    EXPECT_TRUE(ext.r1stAfterWmin);
}

TEST(LrpdReadIn, ReadBeforeLaterWriteInSameIterationIsReadFirst)
{
    // Iteration 2 reads then writes: that read is read-first, and
    // iteration 1's write makes it a dependence.
    std::vector<AccessEvent> t = {
        {0, 1, 0, true, 0},
        {0, 2, 0, false, 0},
        {0, 2, 0, true, 0},
    };
    LrpdAnalysis ext = LrpdTest::run(t, 1, 2, true, false, true);
    EXPECT_EQ(ext.verdict, LrpdVerdict::NotParallel);
}

TEST(LrpdReadIn, AgreesWithHardwarePredicateOnRandomTraces)
{
    Rng rng(4242);
    for (int round = 0; round < 300; ++round) {
        std::vector<AccessEvent> t;
        int procs = 1 + static_cast<int>(rng.nextBounded(4));
        for (IterNum i = 1; i <= 12; ++i) {
            NodeId p = static_cast<NodeId>(rng.nextBounded(procs));
            for (int a = 0; a < 3; ++a)
                t.push_back({p, i, rng.nextBounded(4),
                             rng.nextBool(0.45), 0});
        }
        LrpdAnalysis ext = LrpdTest::run(t, 4, procs, true, false,
                                         true);
        EXPECT_EQ(ext.verdict != LrpdVerdict::NotParallel,
                  Oracle::privParallel(t))
            << "round " << round;
    }
}

TEST(LrpdReadIn, ExecutorSwReadInPassesFig3)
{
    Fig3Loop loop(Fig3Kind::ReadInNeeded, 32);
    MachineConfig cfg;
    cfg.numProcs = 8;

    ExecConfig basic;
    basic.mode = ExecMode::SW;
    LoopExecutor be(cfg, loop, basic);
    EXPECT_FALSE(be.run().passed);

    ExecConfig ext;
    ext.mode = ExecMode::SW;
    ext.swReadIn = true;
    LoopExecutor ee(cfg, loop, ext);
    RunResult r = ee.run();
    EXPECT_TRUE(r.passed);
    // The extra Awmin shadow costs more marking work.
    EXPECT_GT(r.phases.loop, 0u);
}

TEST(LrpdReadIn, ExecutorSwReadInStillRejectsFlowDeps)
{
    Fig3Loop loop(Fig3Kind::FlowDep, 32);
    MachineConfig cfg;
    cfg.numProcs = 8;
    ExecConfig ext;
    ext.mode = ExecMode::SW;
    ext.swReadIn = true;
    LoopExecutor exec(cfg, loop, ext);
    RunResult r = exec.run();
    EXPECT_FALSE(r.passed);
    EXPECT_GT(r.phases.serial, 0u);
}

TEST(LrpdReadIn, CostsMoreThanBasicMarking)
{
    Fig3Loop loop(Fig3Kind::WriteFirst, 64);
    MachineConfig cfg;
    cfg.numProcs = 8;
    ExecConfig basic;
    basic.mode = ExecMode::SW;
    LoopExecutor be(cfg, loop, basic);
    RunResult rb = be.run();
    ExecConfig ext = basic;
    ext.swReadIn = true;
    LoopExecutor ee(cfg, loop, ext);
    RunResult re = ee.run();
    EXPECT_TRUE(rb.passed);
    EXPECT_TRUE(re.passed);
    EXPECT_GE(re.agg.busy, rb.agg.busy); // extra shadow instructions
}
