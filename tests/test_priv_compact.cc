/**
 * @file
 * Equivalence of the section 4.1 compact (3-bit) private-directory
 * state with the full time-stamp state: for every per-processor
 * access sequence with ascending iteration numbers, both emit the
 * same read-first and first-write signal streams ("a protocol that
 * has no more messages than the one with PMaxR1st and PMaxW"), and
 * the compact read-in decision is conservative (never misses a
 * needed read-in).
 */

#include <gtest/gtest.h>

#include "spec/priv.hh"
#include "spec/priv_compact.hh"
#include "sim/random.hh"

using namespace specrt;

TEST(PrivCompact, PerIterationBitsRoll)
{
    PrivCompactBits b;
    privCompactWrite(b, 3, false);
    EXPECT_TRUE(b.write);
    PrivCompactBits eff = privCompactEffective(b, 4);
    EXPECT_FALSE(eff.write);
    EXPECT_TRUE(eff.writeAny); // sticky
}

TEST(PrivCompact, FirstWritePerLoopSignalsOnce)
{
    PrivCompactBits b;
    EXPECT_TRUE(privCompactWrite(b, 2, false).firstWrite);
    EXPECT_FALSE(privCompactWrite(b, 2, false).firstWrite);
    EXPECT_FALSE(privCompactWrite(b, 5, false).firstWrite);
}

TEST(PrivCompact, ReadFirstPerIteration)
{
    PrivCompactBits b;
    EXPECT_TRUE(privCompactRead(b, 1, false).readFirst);
    EXPECT_FALSE(privCompactRead(b, 1, false).readFirst);
    EXPECT_TRUE(privCompactRead(b, 2, false).readFirst);
    privCompactWrite(b, 3, false);
    EXPECT_FALSE(privCompactRead(b, 3, false).readFirst); // covered
}

TEST(PrivCompact, ReadInDoneForWriteSticksWriteAny)
{
    PrivCompactBits b;
    privCompactReadInDone(b, 4, true);
    EXPECT_TRUE(b.writeAny);
    EXPECT_FALSE(privCompactWrite(b, 5, false).firstWrite);
}

namespace
{

struct SignalTrace
{
    std::vector<std::pair<IterNum, int>> events; // (iter, kind)
    // kind: 0 = read-first, 1 = first-write, 2 = read-in
};

/** Drive the time-stamp state over a sequence; record signals. */
SignalTrace
runTimestamp(const std::vector<std::tuple<IterNum, bool, bool>> &seq)
{
    SignalTrace t;
    PrivPrivDirBits d;
    for (auto [iter, is_write, untouched] : seq) {
        PrivPDirResult r = is_write
                               ? privPDirWrite(d, iter, untouched)
                               : privPDirRead(d, iter, untouched);
        if (r.needReadIn) {
            t.events.emplace_back(iter, 2);
            privPDirReadInDone(d, iter, is_write);
        }
        if (r.readFirst)
            t.events.emplace_back(iter, 0);
        if (r.firstWrite)
            t.events.emplace_back(iter, 1);
    }
    return t;
}

/** Same, compact state. */
SignalTrace
runCompact(const std::vector<std::tuple<IterNum, bool, bool>> &seq)
{
    SignalTrace t;
    PrivCompactBits b;
    for (auto [iter, is_write, untouched] : seq) {
        PrivPDirResult r =
            is_write ? privCompactWrite(b, iter, untouched)
                     : privCompactRead(b, iter, untouched);
        if (r.needReadIn) {
            t.events.emplace_back(iter, 2);
            privCompactReadInDone(b, iter, is_write);
        }
        if (r.readFirst)
            t.events.emplace_back(iter, 0);
        if (r.firstWrite)
            t.events.emplace_back(iter, 1);
    }
    return t;
}

} // namespace

TEST(PrivCompact, SignalStreamsMatchTimestampVersion)
{
    // Random per-processor access sequences: iterations ascend;
    // within an iteration, random reads/writes. The element starts
    // untouched; the untouched flag is true only until the first
    // access completes (single-element "line").
    Rng rng(2718);
    for (int round = 0; round < 500; ++round) {
        std::vector<std::tuple<IterNum, bool, bool>> seq;
        bool untouched = true;
        IterNum iter = 0;
        int accesses = 3 + static_cast<int>(rng.nextBounded(12));
        for (int a = 0; a < accesses; ++a) {
            if (iter == 0 || rng.nextBool(0.4))
                ++iter; // advance (possibly skipping) iterations
            if (rng.nextBool(0.3))
                iter += static_cast<IterNum>(rng.nextBounded(3));
            bool is_write = rng.nextBool(0.5);
            seq.emplace_back(iter, is_write, untouched);
            untouched = false;
        }
        SignalTrace ts = runTimestamp(seq);
        SignalTrace cp = runCompact(seq);
        EXPECT_EQ(ts.events, cp.events) << "round " << round;
    }
}

TEST(PrivCompact, ReadInDecisionIsConservative)
{
    // After a read-only iteration, the compact state cannot remember
    // the element was read (its per-iteration bit cleared); if the
    // line looks untouched it re-reads-in -- harmless (same data)
    // but never the other way around: whenever the time-stamp
    // version wants a read-in, so does the compact one.
    PrivPrivDirBits d;
    PrivCompactBits b;
    // Both untouched: both read in.
    EXPECT_TRUE(privPDirRead(d, 1, true).needReadIn);
    EXPECT_TRUE(privCompactRead(b, 1, true).needReadIn);
}
