/**
 * @file
 * Tests for the bench telemetry aggregation layer (bench/telemetry.hh):
 * Telemetry fold semantics (counters sum, metrics overwrite by key,
 * stats last-nonempty-wins, cost breakdowns sum), the ScopedTelemetry
 * thread redirect, and the headline determinism contract -- runJobs()
 * aggregation (telemetry AND the merged event log) is byte-identical
 * whatever the worker count.
 *
 * Links bench_harness, not just specrt; registered with its own rule
 * in tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>

#include "core/loop_exec.hh"
#include "obs/event_log.hh"
#include "sim/sim_context.hh"
#include "telemetry.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/** Render every observable Telemetry field (full precision). */
std::string
renderTelemetry(const bench::Telemetry &t)
{
    std::ostringstream os;
    os << "ticks=" << t.simTicks << " events=" << t.eventsFired
       << " runs=" << t.runs << " infra=" << t.infraFailedRuns
       << "\n";
    for (const auto &kv : t.metrics)
        os << "metric " << kv.first << " = " << std::setprecision(17)
           << kv.second << "\n";
    for (const auto &kv : t.stats)
        os << "stat " << kv.first << " = " << std::setprecision(17)
           << kv.second << "\n";
    os << "cost valid=" << t.cost.valid << " procs=" << t.cost.numProcs
       << " perNode=" << t.cost.perNodeTicks << " busy=" << t.cost.busy;
    for (size_t i = 0; i < stall::numCauses; ++i)
        os << " s" << i << "=" << t.cost.stalls[i];
    os << "\n";
    return os.str();
}

} // namespace

// --- fold semantics ---------------------------------------------------

TEST(TelemetryMerge, CountersSumMetricsOverwriteStatsReplace)
{
    bench::Telemetry a;
    a.simTicks = 100;
    a.eventsFired = 10;
    a.runs = 1;
    a.metric("shared", 1.0);
    a.metric("only_a", 7.0);
    a.stats.emplace_back("old.counter", 1.0);

    bench::Telemetry b;
    b.simTicks = 50;
    b.eventsFired = 5;
    b.runs = 2;
    b.infraFailedRuns = 1;
    b.metric("shared", 2.0);
    b.stats.emplace_back("new.counter", 9.0);

    a.merge(b);
    EXPECT_EQ(a.simTicks, 150u);
    EXPECT_EQ(a.eventsFired, 15u);
    EXPECT_EQ(a.runs, 3u);
    EXPECT_EQ(a.infraFailedRuns, 1u);
    // Same-keyed metric overwritten, disjoint one kept.
    ASSERT_EQ(a.metrics.size(), 2u);
    EXPECT_EQ(a.metrics[0].first, "shared");
    EXPECT_EQ(a.metrics[0].second, 2.0);
    EXPECT_EQ(a.metrics[1].first, "only_a");
    // Non-empty shard stats replace ("last machine wins").
    ASSERT_EQ(a.stats.size(), 1u);
    EXPECT_EQ(a.stats[0].first, "new.counter");

    // An empty shard snapshot leaves the current one alone.
    bench::Telemetry empty;
    a.merge(empty);
    ASSERT_EQ(a.stats.size(), 1u);
    EXPECT_EQ(a.stats[0].first, "new.counter");
}

TEST(TelemetryMerge, CostBreakdownsSum)
{
    bench::Telemetry a, b;
    b.cost.valid = true;
    b.cost.numProcs = 4;
    b.cost.perNodeTicks = 1000;
    b.cost.busy = 600;
    b.cost.stalls[0] = 400;
    a.merge(b);
    EXPECT_TRUE(a.cost.valid);
    EXPECT_EQ(a.cost.numProcs, 4);
    EXPECT_EQ(a.cost.busy, 600u);

    bench::Telemetry c;
    c.cost.valid = true;
    c.cost.numProcs = 8;
    c.cost.perNodeTicks = 500;
    c.cost.busy = 300;
    c.cost.stalls[0] = 200;
    a.merge(c);
    EXPECT_EQ(a.cost.numProcs, 8) << "procs is a max, not a sum";
    EXPECT_EQ(a.cost.perNodeTicks, 1500u);
    EXPECT_EQ(a.cost.busy, 900u);
    EXPECT_EQ(a.cost.stalls[0], 600u);

    // A shard with no profile never flips valid.
    bench::Telemetry d, e;
    d.merge(e);
    EXPECT_FALSE(d.cost.valid);
}

TEST(TelemetryMerge, RecordRunFoldsResultAndCost)
{
    RunResult r;
    r.totalTicks = 42;
    r.eventsFired = 7;
    r.infraFailed = true;
    r.cost.valid = true;
    r.cost.numProcs = 2;
    r.cost.busy = 30;
    bench::Telemetry t;
    t.recordRun(r);
    t.recordRun(r);
    EXPECT_EQ(t.simTicks, 84u);
    EXPECT_EQ(t.eventsFired, 14u);
    EXPECT_EQ(t.runs, 2u);
    EXPECT_EQ(t.infraFailedRuns, 2u);
    EXPECT_TRUE(t.cost.valid);
    EXPECT_EQ(t.cost.busy, 60u);
}

// --- thread redirect --------------------------------------------------

TEST(TelemetryScope, ScopedTelemetryRedirectsThisThread)
{
    bench::Telemetry &process = bench::telemetry();
    uint64_t before = process.runs;
    bench::Telemetry shard;
    {
        bench::ScopedTelemetry redirect(shard);
        EXPECT_EQ(&bench::telemetry(), &shard);
        bench::telemetry().runs += 3;
    }
    EXPECT_EQ(&bench::telemetry(), &process);
    EXPECT_EQ(shard.runs, 3u);
    EXPECT_EQ(process.runs, before);
}

// --- runJobs determinism ----------------------------------------------

namespace
{

/**
 * The whole aggregate a bench run would publish -- telemetry record
 * fields plus the merged event log -- after fanning 5 executor jobs
 * (one of which fails) across @p workers threads. Byte differences
 * between worker counts are aggregation-order bugs.
 */
std::string
aggregateAtFanout(unsigned workers)
{
    bench::telemetry() = bench::Telemetry{};
    obs::log().clear();
    obs::log().enable();
    obs::refreshEnabled();

    bench::setJobs(workers);
    auto outcomes = bench::runJobs(
        5,
        [](size_t id, SimContext &) {
            if (id == 3)
                throw std::runtime_error("job 3 deliberate failure");
            Fig1BLoop loop(8 + 2 * id);
            MachineConfig cfg;
            cfg.numProcs = 4;
            ExecConfig xc;
            xc.mode = ExecMode::HW;
            LoopExecutor exec(cfg, loop, xc);
            RunResult r = exec.run();
            bench::telemetry().recordRun(r);
            bench::telemetry().metric("last_iters",
                                      double(r.itersExecuted));
            StatSnapshot snap;
            exec.machine().snapshot(snap);
            bench::telemetry().stats = snap;
        },
        /*base_seed=*/11);
    EXPECT_EQ(outcomes.size(), 5u);
    EXPECT_FALSE(outcomes[3].ok);

    std::string out = renderTelemetry(bench::telemetry());
    out += obs::log().jsonl();

    bench::setJobs(1);
    bench::telemetry() = bench::Telemetry{};
    obs::log().clear();
    obs::log().disable();
    obs::refreshEnabled();
    return out;
}

} // namespace

TEST(TelemetryRunJobs, AggregationIsByteIdenticalAcrossFanouts)
{
    std::string serial = aggregateAtFanout(1);
    std::string parallel = aggregateAtFanout(4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // The aggregate really carries both layers.
    EXPECT_NE(serial.find("metric last_iters"), std::string::npos);
    EXPECT_NE(serial.find("\"ev\":\"run_begin\""), std::string::npos);
    EXPECT_NE(serial.find("\"ev\":\"job_end\""), std::string::npos);
    EXPECT_NE(serial.find("job 3 deliberate failure"),
              std::string::npos);
    EXPECT_EQ(serial.find("ticks=0 "), std::string::npos)
        << "jobs recorded no simulated work:\n"
        << serial;
}

TEST(TelemetryRunJobs, DisabledEventLogStaysEmpty)
{
    bench::telemetry() = bench::Telemetry{};
    obs::log().clear();
    obs::log().disable();
    obs::refreshEnabled();
    bench::setJobs(2);
    bench::runJobs(3, [](size_t, SimContext &) {
        Fig1BLoop loop(8);
        MachineConfig cfg;
        cfg.numProcs = 2;
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        LoopExecutor(cfg, loop, xc).run();
    });
    EXPECT_EQ(obs::log().recorded(), 0u);
    bench::setJobs(1);
    bench::telemetry() = bench::Telemetry{};
}
