/**
 * @file
 * Tests for the protocol trace subsystem (sim/trace.hh): ring
 * mechanics, op/category naming (including the EventKind reuse),
 * abort-cause attribution, config/env wiring, the Chrome trace-event
 * JSON exporter (validated with an in-test JSON parser), and an
 * end-to-end HW abort that must come back fully attributed.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/loop_exec.hh"
#include "sim/config.hh"
#include "sim/profile.hh"
#include "sim/sim_context.hh"
#include "sim/trace.hh"
#include "sim/trace_export.hh"
#include "support/json_checker.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/**
 * Each test owns this thread's current-context ring: start disabled
 * and empty, leave it disabled and empty.
 */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::buffer().disable();
        trace::buffer().clear();
    }

    void
    TearDown() override
    {
        trace::buffer().disable();
        trace::buffer().clear();
    }
};

trace::TraceRecord
rec(Tick tick, trace::TraceOp op, NodeId node, IterNum iter,
    Addr addr = invalidAddr, const char *label = nullptr)
{
    trace::TraceRecord r;
    r.tick = tick;
    r.op = op;
    r.node = node;
    r.iter = iter;
    r.addr = addr;
    r.label = label;
    return r;
}

using test_support::validJson;

} // namespace

// --- naming / EventKind reuse (satellite: no parallel enum) -----------

TEST(TraceNames, EveryEventKindHasAUniqueName)
{
    std::set<std::string> seen;
    for (size_t k = 0; k < numEventKinds; ++k) {
        const char *n = eventKindName(static_cast<EventKind>(k));
        ASSERT_NE(n, nullptr);
        EXPECT_STRNE(n, "?");
        EXPECT_TRUE(seen.insert(n).second)
            << "duplicate EventKind name " << n;
    }
    EXPECT_STREQ(eventKindName(EventKind::Spec), "spec");
}

TEST(TraceNames, EveryOpHasANameAndAnEventKindCategory)
{
    std::set<std::string> seen;
    for (size_t o = 0; o < trace::numTraceOps; ++o) {
        auto op = static_cast<trace::TraceOp>(o);
        const char *n = trace::traceOpName(op);
        ASSERT_NE(n, nullptr);
        EXPECT_STRNE(n, "?") << "unnamed op " << o;
        EXPECT_TRUE(seen.insert(n).second)
            << "duplicate op name " << n;
        // The category axis IS the profiling EventKind -- no
        // subsystem may fall outside it.
        EventKind k = trace::opCategory(op);
        EXPECT_LT(static_cast<size_t>(k), numEventKinds);
        EXPECT_STRNE(eventKindName(k), "?");
    }
    EXPECT_EQ(trace::opCategory(trace::TraceOp::SpecBit),
              EventKind::Spec);
    EXPECT_EQ(trace::opCategory(trace::TraceOp::MsgSend),
              EventKind::Network);
}

// --- ring mechanics ---------------------------------------------------

TEST_F(TraceTest, DisabledByDefaultAndEmitIsANoOp)
{
    EXPECT_FALSE(trace::enabled());
    trace::TraceBuffer &b = trace::buffer();
    b.emit(rec(1, trace::TraceOp::IterBegin, 0, 1));
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.recorded(), 0u);
}

TEST_F(TraceTest, EmitKeepsOrderAndStampsLoopId)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(8);
    b.setLoop(7);
    b.emit(rec(10, trace::TraceOp::IterBegin, 0, 1));
    b.emit(rec(20, trace::TraceOp::IterEnd, 0, 1));
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.at(0).tick, 10u);
    EXPECT_EQ(b.at(0).loop, 7u);
    EXPECT_EQ(b.at(1).tick, 20u);
    EXPECT_EQ(b.dropped(), 0u);
}

TEST_F(TraceTest, RingWrapsOverwritingOldestAndCountsDrops)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(4);
    for (Tick t = 1; t <= 10; ++t)
        b.emit(rec(t, trace::TraceOp::IterBegin, 0, 1));
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.recorded(), 10u);
    EXPECT_EQ(b.dropped(), 6u);
    // Oldest-first iteration sees ticks 7..10.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(b.at(i).tick, 7u + i);
}

TEST_F(TraceTest, ScopedCtxPublishesAndRestores)
{
    trace::buffer().enable(8);
    trace::ctx() = {1, 2, 3, 4};
    {
        trace::ScopedCtx s(10, 5, 0x40, 9);
        EXPECT_EQ(trace::ctx().node, 5);
        EXPECT_EQ(trace::ctx().iter, 9);
    }
    EXPECT_EQ(trace::ctx().node, 2);
    EXPECT_EQ(trace::ctx().iter, 4);
}

TEST_F(TraceTest, BitAndStampHelpersSkipNoChange)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(8);
    trace::ScopedCtx s(10, 1, 0x40, 3);
    trace::specBits(false, 0x5, 0x5);       // unchanged: no record
    trace::timeStamp(trace::TsStamp::MinW, 4, 4);
    EXPECT_EQ(b.size(), 0u);
    trace::specBits(true, 0x0, 0x3);
    trace::timeStamp(trace::TsStamp::MinW, 0, 4);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.at(0).op, trace::TraceOp::SpecBit);
    EXPECT_EQ(b.at(0).node, 1);
    EXPECT_EQ(b.at(0).iter, 3);
    EXPECT_EQ(b.at(0).addr, 0x40u);
    EXPECT_EQ(b.at(1).op, trace::TraceOp::TimeStamp);
    EXPECT_STREQ(b.at(1).label, "MinW");
}

// --- abort attribution ------------------------------------------------

TEST(TraceRules, DetectorReasonsMapToPaperRules)
{
    EXPECT_NE(std::string(trace::violatedRule(
                  "read of element written by another processor"))
                  .find("§3.2"),
              std::string::npos);
    EXPECT_NE(std::string(trace::violatedRule(
                  "read-first iteration after a writing iteration "
                  "(flow dependence)"))
                  .find("§3.3"),
              std::string::npos);
    // Unknown reasons still get a pointer at the paper.
    EXPECT_NE(std::string(trace::violatedRule("some new detector"))
                  .find("§3.2"),
              std::string::npos);
    EXPECT_NE(trace::violatedRule(nullptr), nullptr);
}

TEST(TraceRules, EveryDetectorReasonIsMapped)
{
    // The exact reason literals fail() is called with, across
    // spec/nonpriv.cc, spec/priv.cc, and the executor's reduction
    // hook. Each must land on a specific rule, not the unmapped
    // fallback.
    const char *reasons[] = {
        "read of element written by another processor",
        "write of element read or written by another processor",
        "write fill of element accessed by another processor",
        "read fill of element written by another processor",
        "race between two First_updates: loser already wrote",
        "read request for element written by another processor",
        "write request for element accessed by another processor",
        "race between a First_update and a write",
        "race between a ROnly_update and a write",
        "contradictory First merge: two first accessors",
        "merged state: element both written and read-shared",
        "read-first iteration after a writing iteration "
        "(flow dependence)",
        "writing iteration before a read-first iteration "
        "(flow dependence)",
        "non-reduction access to an array under the reduction test",
    };
    for (const char *r : reasons) {
        std::string rule = trace::violatedRule(r);
        EXPECT_EQ(rule.find("unmapped"), std::string::npos)
            << "no rule for detector reason: " << r;
    }
}

TEST_F(TraceTest, AttributeAbortFindsTheConflictingPair)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(16);
    const Addr elem = 0x80;
    // Node 0 iter 2 wrote the element...
    auto w = rec(10, trace::TraceOp::SpecBit, 0, 2, elem, "write");
    w.sub = 1;
    b.emit(w);
    // ...unrelated traffic on another element...
    b.emit(rec(11, trace::TraceOp::SpecBit, 1, 3, 0x90, "read"));
    // ...node 1 iter 5 then read it (the access that trips).
    b.emit(rec(12, trace::TraceOp::SpecBit, 1, 5, elem, "read"));

    trace::AbortCause c = trace::attributeAbort(
        b, elem, 1, 5, "read of element written by another processor",
        12);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.elemAddr, elem);
    EXPECT_EQ(c.failNode, 1);
    EXPECT_EQ(c.failIter, 5);
    ASSERT_TRUE(c.haveFailing);
    EXPECT_EQ(c.failing.tick, 12u);
    ASSERT_TRUE(c.haveEarlier);
    EXPECT_EQ(c.earlier.tick, 10u);
    EXPECT_EQ(c.earlier.node, 0);
    EXPECT_EQ(c.earlier.iter, 2);
    EXPECT_NE(std::string(c.rule).find("§3.2"), std::string::npos);

    std::string report = c.str();
    EXPECT_NE(report.find("element 0x80"), std::string::npos);
    EXPECT_NE(report.find("iteration 5"), std::string::npos);
    EXPECT_NE(report.find("earlier:"), std::string::npos);
}

TEST_F(TraceTest, AttributeAbortSurvivesAnEmptyRing)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(4);
    trace::AbortCause c =
        trace::attributeAbort(b, 0x40, 2, 7, "write raced", 99);
    EXPECT_TRUE(c.valid);
    EXPECT_FALSE(c.haveFailing);
    EXPECT_FALSE(c.haveEarlier);
    EXPECT_NE(c.str().find("not in the trace ring"),
              std::string::npos);
}

// --- config / env -----------------------------------------------------

TEST(TraceConfigTest, FromEnvParsesTheKnobs)
{
    unsetenv("SPECRT_TRACE");
    unsetenv("SPECRT_TRACE_OUT");
    unsetenv("SPECRT_TRACE_CAPACITY");
    EXPECT_FALSE(TraceConfig::fromEnv().enabled);

    setenv("SPECRT_TRACE", "0", 1);
    EXPECT_FALSE(TraceConfig::fromEnv().enabled);

    setenv("SPECRT_TRACE", "1", 1);
    TraceConfig on = TraceConfig::fromEnv();
    EXPECT_TRUE(on.enabled);
    EXPECT_TRUE(on.outPath.empty());

    setenv("SPECRT_TRACE", "run.json", 1);
    EXPECT_EQ(TraceConfig::fromEnv().outPath, "run.json");

    setenv("SPECRT_TRACE_OUT", "other.json", 1);
    setenv("SPECRT_TRACE_CAPACITY", "1024", 1);
    TraceConfig full = TraceConfig::fromEnv();
    EXPECT_EQ(full.outPath, "other.json");
    EXPECT_EQ(full.capacityRecords, 1024u);

    unsetenv("SPECRT_TRACE");
    unsetenv("SPECRT_TRACE_OUT");
    unsetenv("SPECRT_TRACE_CAPACITY");
}

TEST(TraceConfigTest, TraceKnobDoesNotChangeTheConfigFingerprint)
{
    MachineConfig plain;
    MachineConfig traced;
    traced.trace.enabled = true;
    traced.trace.outPath = "x.json";
    // Observability must never look like a different machine to the
    // perf-gate baseline matcher.
    EXPECT_EQ(plain.fingerprint(), traced.fingerprint());
}

// --- JSON exporter ----------------------------------------------------

TEST_F(TraceTest, ChromeTraceJsonIsParseableAndCarriesTheEvents)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(32);
    b.setLoop(1);
    b.emit(rec(5, trace::TraceOp::LoopBegin, invalidNode, 0,
               invalidAddr, "HW"));
    b.emit(rec(10, trace::TraceOp::IterBegin, 0, 1));
    auto send = rec(12, trace::TraceOp::MsgSend, 0, 1, 0x40, "ReadReq");
    send.peer = 1;
    send.b = 77; // flow id
    b.emit(send);
    auto recv = send;
    recv.op = trace::TraceOp::MsgRecv;
    recv.tick = 20;
    recv.node = 1;
    recv.peer = 0;
    b.emit(recv);
    b.emit(rec(25, trace::TraceOp::IterEnd, 0, 1));
    b.emit(rec(30, trace::TraceOp::Abort, 0, 1, 0x40,
               "read of element written by another processor"));
    b.emit(rec(31, trace::TraceOp::LoopEnd, invalidNode, 0,
               invalidAddr, "failed"));

    std::string json = trace::chromeTraceJson(b);
    ASSERT_TRUE(validJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos); // flow out
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos); // flow in
    EXPECT_NE(json.find("ABORT"), std::string::npos);
    EXPECT_NE(json.find("ReadReq"), std::string::npos);

    // And a summary for terminals.
    std::string sum = trace::textSummary(b);
    EXPECT_NE(sum.find("abort"), std::string::npos);
}

TEST_F(TraceTest, ExportFileRoundTrips)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(8);
    b.emit(rec(1, trace::TraceOp::IterBegin, 0, 1));
    std::string path =
        ::testing::TempDir() + "/specrt_trace_roundtrip.json";
    ASSERT_TRUE(trace::exportChromeTraceFile(b, path));
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    EXPECT_TRUE(validJson(buf.str()));
    std::remove(path.c_str());
}

// --- end to end -------------------------------------------------------

TEST_F(TraceTest, HwAbortComesBackFullyAttributed)
{
    // Fig. 1(a): A(i) = A(i) + A(i-1) -- every iteration reads the
    // element the previous one wrote, so HW speculation must abort
    // and the trace must say why.
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.trace.enabled = true;
    Fig1ALoop loop(64);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.blockIters = 2;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();

    EXPECT_FALSE(res.passed);
    ASSERT_TRUE(res.hwFailure.failed);

    const trace::AbortCause &c = res.hwFailure.cause;
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.elemAddr, res.hwFailure.elemAddr);
    EXPECT_EQ(c.failNode, res.hwFailure.node);
    EXPECT_GT(c.failIter, 0);
    ASSERT_NE(c.rule, nullptr);
    EXPECT_NE(std::string(c.rule).find("§3.2"), std::string::npos);
    // The conflicting earlier access was reconstructed, and it really
    // is a different iteration's doing.
    ASSERT_TRUE(c.haveEarlier);
    EXPECT_TRUE(c.earlier.node != c.failNode ||
                c.earlier.iter != c.failIter);
    EXPECT_EQ(c.earlier.addr, c.elemAddr);

    // The ring holds the synthesized Abort record...
    trace::TraceBuffer &b = trace::buffer();
    bool have_abort = false;
    bool have_grant = false;
    bool have_msg = false;
    for (size_t i = 0; i < b.size(); ++i) {
        const trace::TraceRecord &r = b.at(i);
        have_abort |= r.op == trace::TraceOp::Abort;
        have_grant |= r.op == trace::TraceOp::Grant;
        have_msg |= r.op == trace::TraceOp::MsgSend;
    }
    EXPECT_TRUE(have_abort);
    EXPECT_TRUE(have_grant);
    EXPECT_TRUE(have_msg);

    // ...and the full export is valid Chrome trace-event JSON.
    std::string json = trace::chromeTraceJson(b);
    EXPECT_TRUE(validJson(json));
    EXPECT_NE(json.find("ABORT"), std::string::npos);
}

TEST_F(TraceTest, DisabledRunRecordsNothing)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    Fig1ALoop loop(16);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();
    ASSERT_TRUE(res.hwFailure.failed);
    EXPECT_FALSE(res.hwFailure.cause.valid);
    EXPECT_EQ(trace::buffer().recorded(), 0u);
}

// --- ring edge cases --------------------------------------------------

TEST_F(TraceTest, WrapAtExactCapacityIsNotADrop)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(4);
    for (Tick t = 1; t <= 4; ++t)
        b.emit(rec(t, trace::TraceOp::IterBegin, 0, 1));
    // Exactly full: the head wrapped to slot 0 but nothing was lost.
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.recorded(), 4u);
    EXPECT_EQ(b.dropped(), 0u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(b.at(i).tick, 1u + i);
    // One more now overwrites the oldest.
    b.emit(rec(5, trace::TraceOp::IterBegin, 0, 1));
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.dropped(), 1u);
    EXPECT_EQ(b.at(0).tick, 2u);
    EXPECT_EQ(b.at(3).tick, 5u);
}

TEST_F(TraceTest, CapacityZeroIsCoercedToOne)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(0);
    EXPECT_EQ(b.capacity(), 1u);
    EXPECT_TRUE(b.isOn());
    b.emit(rec(1, trace::TraceOp::IterBegin, 0, 1));
    EXPECT_EQ(b.size(), 1u);
}

TEST_F(TraceTest, CapacityOneRetainsOnlyTheNewestRecord)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(1);
    for (Tick t = 1; t <= 5; ++t)
        b.emit(rec(t, trace::TraceOp::IterBegin, 0, 1));
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b.at(0).tick, 5u);
    EXPECT_EQ(b.recorded(), 5u);
    EXPECT_EQ(b.dropped(), 4u);
}

TEST_F(TraceTest, AttributeAbortSurvivesOverwrittenCausingRecord)
{
    trace::TraceBuffer &b = trace::buffer();
    b.enable(4);
    const Addr elem = 0x80;
    // The conflicting earlier write...
    auto w = rec(1, trace::TraceOp::SpecBit, 0, 2, elem, "write");
    w.sub = 1;
    b.emit(w);
    // ...is pushed out of the ring by unrelated traffic.
    for (Tick t = 2; t <= 6; ++t)
        b.emit(rec(t, trace::TraceOp::SpecBit, 1, 3, 0x90, "read"));
    // The failing read is recent enough to survive.
    b.emit(rec(7, trace::TraceOp::SpecBit, 1, 5, elem, "read"));

    trace::AbortCause c = trace::attributeAbort(
        b, elem, 1, 5, "read of element written by another processor",
        7);
    ASSERT_TRUE(c.valid);
    EXPECT_TRUE(c.haveFailing);
    EXPECT_FALSE(c.haveEarlier);
    EXPECT_NE(c.str().find("not in the trace ring"),
              std::string::npos);
}

// --- instance scoping -------------------------------------------------

TEST_F(TraceTest, StandaloneBuffersAreIndependent)
{
    trace::TraceBuffer b1;
    trace::TraceBuffer b2;
    b1.enable(4);
    b2.enable(4);
    b1.emit(rec(1, trace::TraceOp::IterBegin, 0, 1));
    EXPECT_EQ(b1.size(), 1u);
    EXPECT_EQ(b2.size(), 0u);
    // Enabling a standalone ring does not switch the hot-path guard
    // on: that tracks the CURRENT CONTEXT's ring only.
    EXPECT_FALSE(trace::enabled());
}

TEST_F(TraceTest, ScopedSimContextSwitchesTheCurrentRing)
{
    trace::TraceBuffer &outer = trace::buffer();
    outer.enable(8);
    EXPECT_TRUE(trace::enabled());

    SimContext inner;
    {
        ScopedSimContext active(inner);
        // The inner context's ring is off and empty; the guard must
        // have followed the context switch.
        EXPECT_FALSE(trace::enabled());
        EXPECT_EQ(&trace::buffer(), &inner.traceBuffer());
        trace::buffer().enable(4);
        EXPECT_TRUE(trace::enabled());
        trace::buffer().emit(rec(1, trace::TraceOp::IterBegin, 0, 1));
        EXPECT_EQ(trace::buffer().size(), 1u);
    }
    // Back outside: the outer ring, still enabled, still empty.
    EXPECT_TRUE(trace::enabled());
    EXPECT_EQ(&trace::buffer(), &outer);
    EXPECT_EQ(outer.size(), 0u);
    EXPECT_EQ(inner.traceBuffer().size(), 1u);
}

TEST_F(TraceTest, LoopIdsArePerContext)
{
    SimContext a;
    SimContext b;
    uint32_t a1, a2, b1;
    {
        ScopedSimContext active(a);
        a1 = trace::nextLoopId();
        a2 = trace::nextLoopId();
    }
    {
        ScopedSimContext active(b);
        b1 = trace::nextLoopId();
    }
    EXPECT_EQ(a2, a1 + 1);
    // A fresh context starts its ids over: two campaign jobs built
    // from the same seed must stamp identical loop ids.
    EXPECT_EQ(b1, a1);
}
