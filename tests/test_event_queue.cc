/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <random>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/small_function.hh"

using namespace specrt;

namespace
{

// Global allocation counters for the steady-state test. Overriding
// operator new/delete in the test binary counts every heap
// allocation the engine (or anything else on this thread) makes.
std::atomic<uint64_t> gAllocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(4, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, SameTickReentrantScheduling)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&]() {
        order.push_back(1);
        // Zero-delay event fires later within the same tick.
        eq.scheduleIn(0, [&]() { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 7u);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    int fired = 0;
    EventId a = eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DescheduleUnknownIsNoop)
{
    EventQueue eq;
    eq.deschedule(invalidEventId);
    eq.deschedule(123456);
    eq.schedule(1, []() {});
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StopHaltsImmediately)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() {
        ++fired;
        eq.stop();
    });
    eq.schedule(20, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.numPending(), 1u);
    // A subsequent run() resumes.
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    eq.run();
    EXPECT_EQ(fired, 0);
}

// --- daemon events ----------------------------------------------------

TEST(EventQueue, DaemonAloneDoesNotRunAndDoesNotAdvanceTime)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleDaemon(50, [&]() { ++fired; });
    EXPECT_EQ(eq.numPending(), 1u);
    EXPECT_EQ(eq.numDaemon(), 1u);
    EXPECT_TRUE(eq.drained());
    // run() must return immediately: only daemons remain. The event
    // stays pending for a later leg.
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.numPending(), 1u);
}

TEST(EventQueue, DaemonFiresInOrderWhileRealWorkIsPending)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(10); });
    eq.scheduleDaemon(5, [&]() { order.push_back(5); });
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 5);
    EXPECT_EQ(order[1], 10);
    EXPECT_EQ(eq.curTick(), 10u);
    EXPECT_EQ(eq.numDaemon(), 0u);
}

TEST(EventQueue, DaemonBeyondLastRealEventStaysPendingAcrossLegs)
{
    EventQueue eq;
    int samples = 0;
    eq.schedule(10, []() {});
    eq.scheduleDaemon(50, [&]() { ++samples; });
    // First leg: real work ends at 10; the daemon at 50 must not
    // drag the drain (and curTick) out to 50.
    EXPECT_EQ(eq.run(), 10u);
    EXPECT_EQ(samples, 0);
    EXPECT_EQ(eq.numDaemon(), 1u);
    // Second leg reaches past the daemon's tick: now it fires.
    eq.schedule(100, []() {});
    EXPECT_EQ(eq.run(), 100u);
    EXPECT_EQ(samples, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DaemonRearmingItselfCannotWedgeTheDrain)
{
    EventQueue eq;
    int samples = 0;
    // A periodic daemon that always re-arms -- the timeline
    // sampler's shape. Without daemon semantics this loop would
    // never drain.
    std::function<void()> rearm = [&]() {
        ++samples;
        eq.scheduleDaemonIn(10, [&]() { rearm(); });
    };
    eq.scheduleDaemonIn(10, [&]() { rearm(); });
    for (Tick t = 1; t <= 100; ++t)
        eq.schedule(t, []() {});
    eq.run();
    // Fired at 10, 20, ..., 90 while real events were pending. The
    // tick-100 re-arm was scheduled after the tick-100 real event
    // (higher seq), so once that real event fires only the daemon
    // remains and the drain stops without firing it.
    EXPECT_EQ(samples, 9);
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_EQ(eq.numPending(), 1u);
    EXPECT_EQ(eq.numDaemon(), 1u);
}

TEST(EventQueue, DescheduleAndResetKeepDaemonCountsExact)
{
    EventQueue eq;
    EventId id = eq.scheduleDaemon(50, []() {});
    eq.schedule(10, []() {});
    eq.deschedule(id);
    EXPECT_EQ(eq.numDaemon(), 0u);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.scheduleDaemon(60, []() {});
    eq.reset();
    EXPECT_EQ(eq.numDaemon(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilLeavesLoneDaemonsPendingToo)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleDaemon(5, [&]() { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.numDaemon(), 1u);
}

TEST(EventQueue, CountsFiredEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, []() {});
    eq.run();
    EXPECT_EQ(eq.numFired(), 5u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 2654435761u) % 5000 + 1);
        eq.schedule(when, [&, when]() {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.numFired(), 10000u);
}

TEST(EventQueue, CancelThenRescheduleReusesSlotSafely)
{
    EventQueue eq;
    int a = 0, b = 0;
    EventId ida = eq.schedule(10, [&]() { ++a; });
    eq.deschedule(ida);
    // The freed slot is reused; the stale id must not name it.
    EventId idb = eq.schedule(10, [&]() { ++b; });
    eq.deschedule(ida); // stale: generation mismatch, no-op
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    // Descheduling after the event fired is also a no-op.
    eq.deschedule(idb);
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, StaleIdAfterFireCannotCancelReusedSlot)
{
    EventQueue eq;
    int fired = 0;
    EventId first = eq.schedule(1, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    // The slot is recycled for a new event; the old id must not
    // cancel it.
    eq.schedule(2, [&]() { ++fired; });
    eq.deschedule(first);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTickFifoOrderingSurvivesInterleavedCancel)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids;
    // curTick == 0, so these all take the same-tick FIFO lane.
    for (int i = 0; i < 12; ++i)
        ids.push_back(eq.schedule(0, [&order, i]() {
            order.push_back(i);
        }));
    // Cancel every third, interleaved with more scheduling.
    for (int i = 0; i < 12; i += 3)
        eq.deschedule(ids[i]);
    eq.schedule(0, [&order]() { order.push_back(100); });
    eq.run();
    std::vector<int> expect;
    for (int i = 0; i < 12; ++i)
        if (i % 3 != 0)
            expect.push_back(i);
    expect.push_back(100);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, RandomizedScriptMatchesReferenceModel)
{
    // 10k randomized schedules with interleaved cancellations,
    // checked against a sorted reference model: fire order must be
    // exactly (when, schedule-sequence) over the surviving events.
    std::mt19937 rng(0xC0FFEE);
    EventQueue eq;
    std::vector<int> fired;

    struct Ref
    {
        Tick when;
        uint64_t seq;
        int token;
    };
    std::vector<Ref> model;
    std::vector<std::pair<EventId, size_t>> cancellable;

    uint64_t seq = 0;
    for (int i = 0; i < 10000; ++i) {
        if (!cancellable.empty() && rng() % 4 == 0) {
            size_t pick = rng() % cancellable.size();
            auto [id, ref] = cancellable[pick];
            eq.deschedule(id);
            model[ref].token = -1; // cancelled
            cancellable.erase(cancellable.begin() + pick);
        }
        Tick when = rng() % 512; // tick 0 exercises the FIFO lane
        int token = i;
        EventId id = eq.schedule(
            when, [&fired, token]() { fired.push_back(token); });
        model.push_back(Ref{when, seq++, token});
        cancellable.push_back({id, model.size() - 1});
    }

    eq.run();

    std::vector<Ref> alive;
    for (const Ref &r : model)
        if (r.token >= 0)
            alive.push_back(r);
    std::sort(alive.begin(), alive.end(),
              [](const Ref &a, const Ref &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.seq < b.seq;
              });
    ASSERT_EQ(fired.size(), alive.size());
    for (size_t i = 0; i < alive.size(); ++i)
        ASSERT_EQ(fired[i], alive[i].token) << "position " << i;
}

TEST(EventQueue, NumFiredTotalSurvivesReset)
{
    EventQueue eq;
    for (int i = 0; i < 3; ++i)
        eq.schedule(i + 1, []() {});
    eq.run();
    eq.reset();
    eq.schedule(1, []() {});
    eq.run();
    EXPECT_EQ(eq.numFired(), 1u);
    EXPECT_EQ(eq.numFiredTotal(), 4u);
}

TEST(EventQueue, SteadyStateMakesNoHeapAllocations)
{
    EventQueue eq;
    uint64_t counter = 0;
    std::vector<EventId> ids;
    ids.reserve(64);
    auto round = [&]() {
        ids.clear();
        for (int i = 0; i < 64; ++i)
            ids.push_back(eq.scheduleIn(
                static_cast<Cycles>(i % 7 + 1),
                [&counter]() { ++counter; }));
        for (int i = 0; i < 64; i += 2)
            eq.deschedule(ids[i]);
        for (int i = 0; i < 8; ++i)
            eq.scheduleIn(0, [&counter]() { ++counter; });
        eq.run();
    };
    // Warm up: vectors grow to the working-set size.
    for (int i = 0; i < 4; ++i)
        round();

    uint64_t before = gAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 16; ++i)
        round();
    uint64_t delta =
        gAllocs.load(std::memory_order_relaxed) - before;
    // The engine itself must be allocation-free in steady state; the
    // test's own ids vector is reserved, so any delta is the engine's.
    EXPECT_EQ(delta, 0u);
    EXPECT_GT(counter, 0u);
}

TEST(SmallFunction, InlineAndHeapStorage)
{
    uint64_t x = 0;
    auto small = [&x]() { ++x; };
    static_assert(SmallFunction::storedInline<decltype(small)>(),
                  "small capture must use the inline buffer");

    struct Big
    {
        char pad[96];
    };
    Big big{};
    auto large = [&x, big]() { x += static_cast<uint64_t>(big.pad[0]) + 1; };
    static_assert(!SmallFunction::storedInline<decltype(large)>(),
                  "oversized capture must spill to the heap");

    SmallFunction f(std::move(small));
    SmallFunction g(std::move(large));
    f();
    g();
    EXPECT_EQ(x, 2u);

    // Move transfers the callable and empties the source.
    SmallFunction h(std::move(f));
    h();
    EXPECT_EQ(x, 3u);
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(static_cast<bool>(h));
}

namespace
{

/** Controller scripting fixed picks; records what it was offered. */
struct ScriptedController : ScheduleController
{
    std::vector<size_t> script;
    size_t next = 0;
    std::vector<std::vector<EventChoice>> offered;

    size_t
    pick(const EventChoice *choices, size_t n) override
    {
        offered.emplace_back(choices, choices + n);
        return next < script.size() ? script[next++] : 0;
    }
};

} // namespace

TEST(ScheduleControllerHook, NotConsultedForForcedMoves)
{
    // Distinct ticks: always exactly one ready event, never a
    // decision point.
    EventQueue q;
    ScriptedController c;
    q.setScheduleController(&c);
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(c.offered.empty());
}

TEST(ScheduleControllerHook, PickReordersSameTickEvents)
{
    EventQueue q;
    ScriptedController c;
    c.script = {2};
    q.setScheduleController(&c);
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(0); }, EventKind::Cache, 4);
    q.schedule(10, [&] { order.push_back(1); }, EventKind::Network, 5);
    q.schedule(10, [&] { order.push_back(2); }, EventKind::Sched);
    q.run();
    // Pick 2 first; the rest follow in default order.
    EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
    ASSERT_EQ(c.offered.size(), 2u);
    // Candidates carry the scheduling-site tags, default order.
    ASSERT_EQ(c.offered[0].size(), 3u);
    EXPECT_EQ(c.offered[0][0].kind, EventKind::Cache);
    EXPECT_EQ(c.offered[0][0].actor, 4u);
    EXPECT_EQ(c.offered[0][1].kind, EventKind::Network);
    EXPECT_EQ(c.offered[0][1].actor, 5u);
    EXPECT_EQ(c.offered[0][2].kind, EventKind::Sched);
    EXPECT_EQ(c.offered[0][2].actor, unknownActor);
}

TEST(ScheduleControllerHook, OutOfRangePickIsClamped)
{
    EventQueue q;
    ScriptedController c;
    c.script = {99};
    q.setScheduleController(&c);
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(0); });
    q.schedule(10, [&] { order.push_back(1); });
    q.run();
    // Clamped to the last candidate.
    EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(ScheduleControllerHook, ControllerSurvivesReset)
{
    EventQueue q;
    ScriptedController c;
    q.setScheduleController(&c);
    q.schedule(10, [] {});
    q.reset();
    EXPECT_EQ(q.scheduleController(), &c);
    q.schedule(5, [] {});
    q.schedule(5, [] {});
    q.run();
    EXPECT_EQ(c.offered.size(), 1u);
}

TEST(PostFireHook, FiresPerEventWithTickAndKind)
{
    EventQueue q;
    std::vector<std::pair<Tick, EventKind>> fired;
    q.setPostFireHook(
        [&](Tick t, EventKind k) { fired.emplace_back(t, k); });
    q.schedule(10, [] {}, EventKind::Network, 1);
    q.schedule(20, [] {}, EventKind::Cache, 0);
    q.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], (std::pair<Tick, EventKind>{10,
                                                    EventKind::Network}));
    EXPECT_EQ(fired[1],
              (std::pair<Tick, EventKind>{20, EventKind::Cache}));
}

TEST(PostFireHook, RunsAfterTheCallbackAndOnControlledPath)
{
    EventQueue q;
    ScriptedController c;
    q.setScheduleController(&c);
    std::vector<int> seq;
    q.setPostFireHook([&](Tick, EventKind) { seq.push_back(-1); });
    q.schedule(10, [&] { seq.push_back(0); });
    q.schedule(10, [&] { seq.push_back(1); });
    q.run();
    // callback, hook, callback, hook -- on the controlled path too.
    EXPECT_EQ(seq, (std::vector<int>{0, -1, 1, -1}));
}
