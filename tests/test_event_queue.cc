/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace specrt;

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(4, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, SameTickReentrantScheduling)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&]() {
        order.push_back(1);
        // Zero-delay event fires later within the same tick.
        eq.scheduleIn(0, [&]() { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 7u);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    int fired = 0;
    EventId a = eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DescheduleUnknownIsNoop)
{
    EventQueue eq;
    eq.deschedule(invalidEventId);
    eq.deschedule(123456);
    eq.schedule(1, []() {});
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StopHaltsImmediately)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() {
        ++fired;
        eq.stop();
    });
    eq.schedule(20, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.numPending(), 1u);
    // A subsequent run() resumes.
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CountsFiredEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, []() {});
    eq.run();
    EXPECT_EQ(eq.numFired(), 5u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 2654435761u) % 5000 + 1);
        eq.schedule(when, [&, when]() {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.numFired(), 10000u);
}
