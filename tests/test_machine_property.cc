/**
 * @file
 * Machine-level property tests over seeded random loops:
 *
 *  (1) soundness -- whenever the full hardware protocol passes a
 *      run, the oracle's predicate holds on the actual scheduled
 *      trace (non-privatization) or on the loop's access pattern
 *      (privatization, schedule-independent);
 *  (2) completeness -- for static scheduling (deterministic
 *      placement) the non-privatization verdict exactly equals the
 *      oracle's; the privatization verdict always exactly equals
 *      the oracle's;
 *  (3) state safety -- pass or fail, the final shared-memory state
 *      equals serial execution's (failures restore + re-execute;
 *      passing privatized runs copy out).
 */

#include <gtest/gtest.h>

#include "core/loop_exec.hh"
#include "runtime/scheduler.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

std::vector<uint64_t>
arrayContents(LoopExecutor &exec, int decl)
{
    const Region *r = exec.sharedRegion(decl);
    std::vector<uint64_t> out(r->numElems());
    for (uint64_t e = 0; e < r->numElems(); ++e)
        out[e] = exec.machine().memory().read(r->elemAddr(e),
                                              r->elemBytes);
    return out;
}

/** The loop's full trace with static-chunk processor placement. */
std::vector<AccessEvent>
staticPlacedTrace(const RandomLoop &loop, IterNum iters, int procs)
{
    StaticChunkSource chunks(iters, procs);
    std::vector<NodeId> owner(iters + 1, 0);
    for (NodeId p = 0; p < procs; ++p) {
        auto [lo, hi] = chunks.chunkOf(p);
        for (IterNum i = lo; i < hi; ++i)
            owner[i] = p;
    }
    std::vector<AccessEvent> placed = loop.expectedTrace();
    for (AccessEvent &e : placed)
        e.proc = owner[e.iter];
    return placed;
}

struct PropCase
{
    uint64_t seed;
    int procs;
    RandomLoopParams params;
    SchedPolicy sched;
    IterNum block;
};

class MachineProperty : public ::testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(MachineProperty, VerdictAndState)
{
    PropCase pc = GetParam();
    MachineConfig cfg;
    cfg.numProcs = pc.procs;

    for (int round = 0; round < 6; ++round) {
        RandomLoopParams rp = pc.params;
        rp.seed = pc.seed * 1000 + round;
        RandomLoop loop(rp);

        ExecConfig sxc;
        sxc.mode = ExecMode::Serial;
        LoopExecutor serial(cfg, loop, sxc);
        RunResult sres = serial.run();
        ASSERT_TRUE(sres.passed);
        auto sa = arrayContents(serial, 0);

        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = pc.sched;
        xc.blockIters = pc.block;
        xc.keepTrace = true;
        LoopExecutor hw(cfg, loop, xc);
        RunResult hres = hw.run();
        auto ha = arrayContents(hw, 0);

        if (rp.test == TestType::NonPriv) {
            if (hres.passed) {
                // Soundness: the scheduled pattern truly qualifies.
                EXPECT_TRUE(Oracle::nonPrivParallel(hres.trace))
                    << "seed " << rp.seed;
            }
            if (pc.sched == SchedPolicy::StaticChunk) {
                // Deterministic placement: exact equivalence.
                bool oracle_ok = Oracle::nonPrivParallel(
                    staticPlacedTrace(loop, rp.iters, pc.procs));
                EXPECT_EQ(hres.passed, oracle_ok)
                    << "seed " << rp.seed;
            }
        } else {
            bool oracle_ok =
                Oracle::privParallel(loop.expectedTrace());
            EXPECT_EQ(hres.passed, oracle_ok) << "seed " << rp.seed;
        }

        EXPECT_EQ(ha, sa) << "state diverged from serial (seed "
                          << rp.seed << ", passed=" << hres.passed
                          << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    NonPrivSweep, MachineProperty,
    ::testing::Values(
        PropCase{21, 4,
                 {32, 512, 3, 0.4, 1, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{22, 4,
                 {24, 16, 3, 0.5, 16, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 2},
        PropCase{23, 8,
                 {48, 64, 4, 0.2, 64, TestType::NonPriv, 0},
                 SchedPolicy::BlockCyclic, 4},
        PropCase{24, 8,
                 {48, 64, 4, 0.0, 64, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{25, 2,
                 {16, 8, 2, 0.9, 8, TestType::NonPriv, 0},
                 SchedPolicy::StaticChunk, 4},
        PropCase{26, 8,
                 {64, 32, 3, 0.3, 32, TestType::NonPriv, 0},
                 SchedPolicy::StaticChunk, 4}));

INSTANTIATE_TEST_SUITE_P(
    PrivSweep, MachineProperty,
    ::testing::Values(
        PropCase{31, 4,
                 {32, 64, 4, 0.6, 64, TestType::Priv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{32, 8,
                 {40, 16, 3, 0.5, 16, TestType::Priv, 0},
                 SchedPolicy::BlockCyclic, 2},
        PropCase{33, 4,
                 {24, 8, 4, 0.8, 8, TestType::Priv, 0},
                 SchedPolicy::StaticChunk, 4},
        PropCase{34, 8,
                 {64, 128, 3, 0.05, 128, TestType::Priv, 0},
                 SchedPolicy::Dynamic, 8}));

TEST(MachineProperty, ReadOnlyRandomLoopsAlwaysPassNonPriv)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RandomLoopParams rp{48, 64, 4, 0.0, 64, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        LoopExecutor hw(cfg, loop, xc);
        EXPECT_TRUE(hw.run().passed) << "seed " << seed;
    }
}

TEST(MachineProperty, SingleProcessorHwAlwaysPassesNonPriv)
{
    // With one processor every element is trivially single-processor
    // and the non-privatization test can never fail.
    MachineConfig cfg;
    cfg.numProcs = 1;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RandomLoopParams rp{32, 8, 4, 0.6, 8, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        LoopExecutor hw(cfg, loop, xc);
        EXPECT_TRUE(hw.run().passed) << "seed " << seed;
    }
}

TEST(MachineProperty, SwVerdictMatchesLrpdOracleUnderStaticChunk)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    for (uint64_t seed = 41; seed <= 46; ++seed) {
        RandomLoopParams rp{24, 16, 3, 0.4, 16, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::SW;
        xc.sched = SchedPolicy::StaticChunk;
        LoopExecutor sw(cfg, loop, xc);
        RunResult res = sw.run();
        LrpdVerdict v = Oracle::lrpd(
            staticPlacedTrace(loop, rp.iters, cfg.numProcs));
        EXPECT_EQ(res.passed, v == LrpdVerdict::Doall)
            << "seed " << seed;
    }
}
