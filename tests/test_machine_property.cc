/**
 * @file
 * Machine-level property tests over seeded random loops:
 *
 *  (1) soundness -- whenever the full hardware protocol passes a
 *      run, the oracle's predicate holds on the actual scheduled
 *      trace (non-privatization) or on the loop's access pattern
 *      (privatization, schedule-independent);
 *  (2) completeness -- for static scheduling (deterministic
 *      placement) the non-privatization verdict exactly equals the
 *      oracle's; the privatization verdict always exactly equals
 *      the oracle's;
 *  (3) state safety -- pass or fail, the final shared-memory state
 *      equals serial execution's (failures restore + re-execute;
 *      passing privatized runs copy out).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "runtime/scheduler.hh"
#include "sim/campaign.hh"
#include "sim/sim_context.hh"
#include "spec/oracle.hh"
#include "spec/priv.hh"
#include "spec/priv_compact.hh"
#include "verify/hb_oracle.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

std::vector<uint64_t>
arrayContents(LoopExecutor &exec, int decl)
{
    const Region *r = exec.sharedRegion(decl);
    std::vector<uint64_t> out(r->numElems());
    for (uint64_t e = 0; e < r->numElems(); ++e)
        out[e] = exec.machine().memory().read(r->elemAddr(e),
                                              r->elemBytes);
    return out;
}

/** The loop's full trace with static-chunk processor placement. */
std::vector<AccessEvent>
staticPlacedTrace(const RandomLoop &loop, IterNum iters, int procs)
{
    StaticChunkSource chunks(iters, procs);
    std::vector<NodeId> owner(iters + 1, 0);
    for (NodeId p = 0; p < procs; ++p) {
        auto [lo, hi] = chunks.chunkOf(p);
        for (IterNum i = lo; i < hi; ++i)
            owner[i] = p;
    }
    std::vector<AccessEvent> placed = loop.expectedTrace();
    for (AccessEvent &e : placed)
        e.proc = owner[e.iter];
    return placed;
}

struct PropCase
{
    uint64_t seed;
    int procs;
    RandomLoopParams params;
    SchedPolicy sched;
    IterNum block;
};

class MachineProperty : public ::testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(MachineProperty, VerdictAndState)
{
    PropCase pc = GetParam();
    MachineConfig cfg;
    cfg.numProcs = pc.procs;

    for (int round = 0; round < 6; ++round) {
        RandomLoopParams rp = pc.params;
        rp.seed = pc.seed * 1000 + round;
        RandomLoop loop(rp);

        ExecConfig sxc;
        sxc.mode = ExecMode::Serial;
        LoopExecutor serial(cfg, loop, sxc);
        RunResult sres = serial.run();
        ASSERT_TRUE(sres.passed);
        auto sa = arrayContents(serial, 0);

        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = pc.sched;
        xc.blockIters = pc.block;
        xc.keepTrace = true;
        LoopExecutor hw(cfg, loop, xc);
        RunResult hres = hw.run();
        auto ha = arrayContents(hw, 0);

        if (rp.test == TestType::NonPriv) {
            if (hres.passed) {
                // Soundness: the scheduled pattern truly qualifies.
                EXPECT_TRUE(Oracle::nonPrivParallel(hres.trace))
                    << "seed " << rp.seed;
            }
            if (pc.sched == SchedPolicy::StaticChunk) {
                // Deterministic placement: exact equivalence.
                bool oracle_ok = Oracle::nonPrivParallel(
                    staticPlacedTrace(loop, rp.iters, pc.procs));
                EXPECT_EQ(hres.passed, oracle_ok)
                    << "seed " << rp.seed;
            }
        } else {
            bool oracle_ok =
                Oracle::privParallel(loop.expectedTrace());
            EXPECT_EQ(hres.passed, oracle_ok) << "seed " << rp.seed;
        }

        EXPECT_EQ(ha, sa) << "state diverged from serial (seed "
                          << rp.seed << ", passed=" << hres.passed
                          << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    NonPrivSweep, MachineProperty,
    ::testing::Values(
        PropCase{21, 4,
                 {32, 512, 3, 0.4, 1, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{22, 4,
                 {24, 16, 3, 0.5, 16, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 2},
        PropCase{23, 8,
                 {48, 64, 4, 0.2, 64, TestType::NonPriv, 0},
                 SchedPolicy::BlockCyclic, 4},
        PropCase{24, 8,
                 {48, 64, 4, 0.0, 64, TestType::NonPriv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{25, 2,
                 {16, 8, 2, 0.9, 8, TestType::NonPriv, 0},
                 SchedPolicy::StaticChunk, 4},
        PropCase{26, 8,
                 {64, 32, 3, 0.3, 32, TestType::NonPriv, 0},
                 SchedPolicy::StaticChunk, 4}));

INSTANTIATE_TEST_SUITE_P(
    PrivSweep, MachineProperty,
    ::testing::Values(
        PropCase{31, 4,
                 {32, 64, 4, 0.6, 64, TestType::Priv, 0},
                 SchedPolicy::Dynamic, 4},
        PropCase{32, 8,
                 {40, 16, 3, 0.5, 16, TestType::Priv, 0},
                 SchedPolicy::BlockCyclic, 2},
        PropCase{33, 4,
                 {24, 8, 4, 0.8, 8, TestType::Priv, 0},
                 SchedPolicy::StaticChunk, 4},
        PropCase{34, 8,
                 {64, 128, 3, 0.05, 128, TestType::Priv, 0},
                 SchedPolicy::Dynamic, 8}));

TEST(MachineProperty, ReadOnlyRandomLoopsAlwaysPassNonPriv)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RandomLoopParams rp{48, 64, 4, 0.0, 64, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        LoopExecutor hw(cfg, loop, xc);
        EXPECT_TRUE(hw.run().passed) << "seed " << seed;
    }
}

TEST(MachineProperty, SingleProcessorHwAlwaysPassesNonPriv)
{
    // With one processor every element is trivially single-processor
    // and the non-privatization test can never fail.
    MachineConfig cfg;
    cfg.numProcs = 1;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RandomLoopParams rp{32, 8, 4, 0.6, 8, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        LoopExecutor hw(cfg, loop, xc);
        EXPECT_TRUE(hw.run().passed) << "seed " << seed;
    }
}

TEST(MachineProperty, SwVerdictMatchesLrpdOracleUnderStaticChunk)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    for (uint64_t seed = 41; seed <= 46; ++seed) {
        RandomLoopParams rp{24, 16, 3, 0.4, 16, TestType::NonPriv,
                            seed};
        RandomLoop loop(rp);
        ExecConfig xc;
        xc.mode = ExecMode::SW;
        xc.sched = SchedPolicy::StaticChunk;
        LoopExecutor sw(cfg, loop, xc);
        RunResult res = sw.run();
        LrpdVerdict v = Oracle::lrpd(
            staticPlacedTrace(loop, rp.iters, cfg.numProcs));
        EXPECT_EQ(res.passed, v == LrpdVerdict::Doall)
            << "seed " << seed;
    }
}

// --- six-way differential suite (campaign-driven) ---------------------
//
// One generated loop pattern, six independent checkers:
//
//   1. serial execution        -- the state oracle (final contents);
//   2. priv HW machine (§3.3)  -- full protocol, time-stamp state;
//   3. priv_compact pure logic (§4.1) -- 3-bit state, driven below;
//   4. software LRPD with read-in (§2.2.3), iteration-wise;
//   5. non-priv HW machine (§3.2) -- the same loop downgraded;
//   6. vector-clock happens-before oracle (verify/hb_oracle.hh) --
//      DRD-style race analysis of the placed trace.
//
// Agreement means: checkers 2-4 all equal Oracle::privParallel on the
// loop's access pattern; checker 5 equals Oracle::nonPrivParallel on
// the statically placed trace; checker 6's two race verdicts equal
// both; and every machine run's final memory
// equals checker 1's. Cases fan out through the campaign runner --
// one job per generated case, parameters drawn from the job context's
// seeded RNG streams, errors reported through JobOutcome-adjacent
// id-indexed slots (no gtest assertions off the main thread).

namespace
{

/**
 * Pure-logic privatization verdict over the compact (3-bit) private
 * directory: drive each processor's statically placed, ascending-
 * iteration access sequence through PrivCompactBits per element,
 * mirroring the machine's wiring -- a needed read-in probes the
 * shared directory as a read-first (read) or first-write (write)
 * and the access retries after the fill; explicit signals probe the
 * shared stamps directly. Single-element lines: each element's first
 * access by a processor sees an untouched line.
 */
bool
privCompactParallel(const std::vector<AccessEvent> &placed,
                    uint64_t elems, int procs)
{
    std::vector<std::vector<PrivCompactBits>> pd(
        procs, std::vector<PrivCompactBits>(elems));
    std::vector<std::vector<bool>> touched(
        procs, std::vector<bool>(elems, false));
    std::vector<PrivSharedDirBits> sd(elems);
    bool ok = true;

    auto probe = [&](uint64_t elem, IterNum iter, bool as_write) {
        PrivSDirResult r = as_write
                               ? privSDirFirstWrite(sd[elem], iter)
                               : privSDirReadFirst(sd[elem], iter);
        if (r.fail)
            ok = false;
    };

    for (const AccessEvent &e : placed) {
        PrivCompactBits &b = pd[e.proc][e.elem];
        bool untouched = !touched[e.proc][e.elem];
        auto access = [&](bool line_untouched) {
            return e.isWrite
                       ? privCompactWrite(b, e.iter, line_untouched)
                       : privCompactRead(b, e.iter, line_untouched);
        };
        PrivPDirResult r = access(untouched);
        if (r.needReadIn) {
            probe(e.elem, e.iter, e.isWrite);
            privCompactReadInDone(b, e.iter, e.isWrite);
            r = access(false); // the deferred access retries
        }
        touched[e.proc][e.elem] = true;
        if (r.readFirst)
            probe(e.elem, e.iter, false);
        if (r.firstWrite)
            probe(e.elem, e.iter, true);
    }
    return ok;
}

/**
 * One differential case; returns "" on agreement, else a
 * description of every divergence found.
 */
std::string
runDifferentialCase(SimContext &ctx, size_t id)
{
    Rng &gen = ctx.rng("diffgen");
    int procs = 2 << gen.nextBounded(3); // 2, 4, or 8
    RandomLoopParams rp;
    rp.iters = 16 + static_cast<IterNum>(gen.nextBounded(25));
    rp.elems = 8u << gen.nextBounded(3); // 8, 16, or 32
    rp.accesses = 2 + static_cast<int>(gen.nextBounded(3));
    rp.writeProb = 0.1 * static_cast<double>(gen.nextBounded(9));
    rp.window = rp.elems;
    rp.test = TestType::Priv;
    rp.seed = gen.next();
    RandomLoop loop(rp);

    MachineConfig cfg;
    cfg.numProcs = procs;
    std::ostringstream err;
    auto ctx_str = [&]() {
        std::ostringstream os;
        os << "case " << id << " (procs " << procs << ", iters "
           << rp.iters << ", elems " << rp.elems << ", wp "
           << rp.writeProb << ", seed " << rp.seed << "): ";
        return os.str();
    };

    // 1. Serial: the state oracle.
    ExecConfig sxc;
    sxc.mode = ExecMode::Serial;
    LoopExecutor serial(cfg, loop, sxc);
    if (!serial.run().passed)
        return ctx_str() + "serial run failed";
    auto want = arrayContents(serial, 0);

    bool priv_ok = Oracle::privParallel(loop.expectedTrace());
    auto placed = staticPlacedTrace(loop, rp.iters, procs);
    bool nonpriv_ok = Oracle::nonPrivParallel(placed);

    // 2. Priv HW (static placement, deterministic).
    ExecConfig hxc;
    hxc.mode = ExecMode::HW;
    hxc.sched = SchedPolicy::StaticChunk;
    LoopExecutor hw(cfg, loop, hxc);
    RunResult hres = hw.run();
    if (hres.passed != priv_ok)
        err << ctx_str() << "priv HW verdict " << hres.passed
            << " != oracle " << priv_ok << "\n";
    if (arrayContents(hw, 0) != want)
        err << ctx_str() << "priv HW final state != serial\n";

    // 3. priv_compact pure logic.
    bool compact_ok = privCompactParallel(placed, rp.elems, procs);
    if (compact_ok != priv_ok)
        err << ctx_str() << "priv_compact verdict " << compact_ok
            << " != oracle " << priv_ok << "\n";

    // 4. Software LRPD with the read-in extension (iteration-wise).
    ExecConfig wxc;
    wxc.mode = ExecMode::SW;
    wxc.sched = SchedPolicy::StaticChunk;
    wxc.swReadIn = true;
    LoopExecutor sw(cfg, loop, wxc);
    RunResult wres = sw.run();
    if (wres.passed != priv_ok)
        err << ctx_str() << "SW LRPD verdict " << wres.passed
            << " != oracle " << priv_ok << "\n";
    if (arrayContents(sw, 0) != want)
        err << ctx_str() << "SW LRPD final state != serial\n";

    // 5. Non-priv HW: same pattern under the §3.2 algorithm.
    ExecConfig nxc;
    nxc.mode = ExecMode::HW;
    nxc.sched = SchedPolicy::StaticChunk;
    nxc.downgradePrivToNonPriv = true;
    LoopExecutor np(cfg, loop, nxc);
    RunResult nres = np.run();
    if (nres.passed != nonpriv_ok)
        err << ctx_str() << "non-priv HW verdict " << nres.passed
            << " != oracle " << nonpriv_ok << "\n";
    if (arrayContents(np, 0) != want)
        err << ctx_str() << "non-priv HW final state != serial\n";

    // 6. Happens-before oracle: vector clocks over the placed trace
    // under the free doall schedule. Its flow-race verdict must
    // equal the privatization oracle and its data-race verdict the
    // non-privatization one.
    verify::HbReport hb =
        verify::HbOracle::analyzeTrace(placed, procs, rp.iters);
    if (hb.privOk != priv_ok)
        err << ctx_str() << "HB oracle priv verdict " << hb.privOk
            << " != oracle " << priv_ok << "\n";
    if (hb.nonPrivOk != nonpriv_ok)
        err << ctx_str() << "HB oracle non-priv verdict "
            << hb.nonPrivOk << " != oracle " << nonpriv_ok << "\n";
    if (!hb.privOk && hb.privRaces.empty())
        err << ctx_str() << "HB oracle failed priv without a race\n";
    if (!hb.nonPrivOk && hb.nonPrivRaces.empty())
        err << ctx_str()
            << "HB oracle failed non-priv without a race\n";

    return err.str();
}

} // namespace

TEST(MachineDifferential, SixCheckersAgreeOn200GeneratedCases)
{
    const size_t cases = 200;
    std::vector<std::string> errors(cases);
    campaign::Options opts;
    opts.jobs = 4;
    opts.baseSeed = 0xd1ffu;
    auto outcomes = campaign::run(
        cases,
        [&](size_t id, SimContext &ctx) {
            errors[id] = runDifferentialCase(ctx, id);
        },
        opts);
    ASSERT_TRUE(campaign::allOk(outcomes))
        << campaign::describeFailures(outcomes);
    size_t bad = 0;
    for (const std::string &e : errors) {
        if (!e.empty() && ++bad <= 5)
            ADD_FAILURE() << e;
    }
    EXPECT_EQ(bad, 0u) << bad << " of " << cases
                       << " cases diverged";
    // Both verdict classes must actually occur, or the sweep proves
    // nothing: re-derive the oracle side to check coverage.
    size_t priv_pass = 0;
    campaign::Options again = opts;
    std::atomic<size_t> passes{0};
    campaign::run(
        cases,
        [&](size_t, SimContext &ctx) {
            Rng &gen = ctx.rng("diffgen");
            int procs = 2 << gen.nextBounded(3);
            RandomLoopParams rp;
            rp.iters = 16 + static_cast<IterNum>(gen.nextBounded(25));
            rp.elems = 8u << gen.nextBounded(3);
            rp.accesses = 2 + static_cast<int>(gen.nextBounded(3));
            rp.writeProb = 0.1 * static_cast<double>(gen.nextBounded(9));
            rp.window = rp.elems;
            rp.test = TestType::Priv;
            rp.seed = gen.next();
            RandomLoop loop(rp);
            (void)procs;
            if (Oracle::privParallel(loop.expectedTrace()))
                ++passes;
        },
        again);
    priv_pass = passes.load();
    EXPECT_GT(priv_pass, 0u);
    EXPECT_LT(priv_pass, cases);
}
