/**
 * @file
 * Arena allocator tests: size-class behavior, published-counter
 * lifecycle across the recycle pool (no cross-job telemetry bleed),
 * and the headline claim -- steady-state network message traffic
 * performs zero heap allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "mem/network.hh"
#include "sim/arena.hh"
#include "sim/sim_context.hh"

using namespace specrt;

namespace
{

// Global allocation counter for the steady-state test. Overriding
// operator new/delete in the test binary counts every heap
// allocation anything on this thread makes.
std::atomic<uint64_t> gAllocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

TEST(Arena, SizeClassRoundingAndCounters)
{
    Arena a;
    void *p64 = a.alloc(1);
    void *p128 = a.alloc(65);
    void *p4k = a.alloc(4096);
    EXPECT_EQ(a.allocs(), 3u);
    EXPECT_EQ(a.live(), 3u);
    EXPECT_EQ(a.highWater(), 3u);
    // Served bytes are size-class bytes: 64 + 128 + 4096.
    EXPECT_EQ(a.bytesServed(), 64u + 128u + 4096u);
    EXPECT_EQ(a.oversizeAllocs(), 0u);
    a.free(p64, 1);
    a.free(p128, 65);
    a.free(p4k, 4096);
    EXPECT_EQ(a.frees(), 3u);
    EXPECT_EQ(a.live(), 0u);
    EXPECT_EQ(a.highWater(), 3u); // high water survives the frees
}

TEST(Arena, BlocksAreMaxAligned)
{
    Arena a;
    for (size_t sz : {1u, 64u, 100u, 512u, 4096u}) {
        void *p = a.alloc(sz);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t),
                  0u)
            << "size " << sz;
        a.free(p, sz);
    }
}

TEST(Arena, FreelistReuseAfterFree)
{
    Arena a;
    void *p = a.alloc(256);
    a.free(p, 256);
    uint64_t carvedBefore = a.carved();
    void *q = a.alloc(256);
    EXPECT_EQ(q, p); // same block, straight off the freelist
    EXPECT_EQ(a.carved(), carvedBefore);
    EXPECT_EQ(a.reused(), 1u);
    a.free(q, 256);
}

TEST(Arena, OversizeFallsThroughToHeap)
{
    Arena a;
    size_t big = Arena::maxClassBytes + 1;
    uint64_t before = gAllocs.load();
    void *p = a.alloc(big);
    EXPECT_GT(gAllocs.load(), before); // really from the heap
    EXPECT_EQ(a.oversizeAllocs(), 1u);
    EXPECT_EQ(a.live(), 1u);
    EXPECT_EQ(a.bytesServed(), big); // request bytes, no class
    a.free(p, big);
    EXPECT_EQ(a.live(), 0u);
    // Oversize blocks never join a freelist: the next oversize
    // request hits the heap again.
    before = gAllocs.load();
    void *q = a.alloc(big);
    EXPECT_GT(gAllocs.load(), before);
    a.free(q, big);
}

TEST(Arena, ResetZeroesPublishedCountersKeepsWarmth)
{
    Arena a;
    void *p = a.alloc(64);
    a.free(p, 64);
    ASSERT_GT(a.carved(), 0u);
    ASSERT_GT(a.numSlabs(), 0u);
    a.reset();
    // Published counters: zeroed, so a recycled arena's telemetry
    // never bleeds one job's numbers into the next.
    EXPECT_EQ(a.allocs(), 0u);
    EXPECT_EQ(a.frees(), 0u);
    EXPECT_EQ(a.highWater(), 0u);
    EXPECT_EQ(a.bytesServed(), 0u);
    EXPECT_EQ(a.oversizeAllocs(), 0u);
    // Warmth diagnostics: preserved, so the next job reuses the
    // slabs instead of touching the heap.
    EXPECT_GT(a.carved(), 0u);
    EXPECT_GT(a.numSlabs(), 0u);
    uint64_t before = gAllocs.load();
    void *q = a.alloc(64);
    EXPECT_EQ(gAllocs.load(), before); // warm: freelist, no heap
    EXPECT_EQ(a.reused(), 1u);
    a.free(q, 64);
}

TEST(Arena, RecyclePoolRoundTrip)
{
    auto a = Arena::acquire();
    Arena *raw = a.get();
    void *p = a->alloc(64);
    a->free(p, 64);
    Arena::recycle(std::move(a));
    // LIFO pool: the very next acquire returns the arena just
    // recycled, counters zeroed, slabs warm.
    auto b = Arena::acquire();
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(b->allocs(), 0u);
    EXPECT_GT(b->numSlabs(), 0u);
}

TEST(Arena, RecycleRefusesArenaWithLiveBlocks)
{
    // Drain the pool (it holds at most 64 arenas) so acquire() below
    // cannot accidentally return a previously recycled arena.
    std::vector<std::unique_ptr<Arena>> drained;
    for (int i = 0; i < 65; ++i)
        drained.push_back(Arena::acquire());

    auto leaky = std::make_unique<Arena>();
    (void)leaky->alloc(64); // never freed
    Arena::recycle(std::move(leaky)); // must destroy, not pool
    // The pool was empty, so if recycle had (wrongly) pooled the
    // arena with its live block, this acquire would return it with
    // the allocation still visible. (Pointer identity is no test:
    // the heap loves to reuse the freed arena's address.)
    auto next = Arena::acquire();
    EXPECT_EQ(next->live(), 0u);
    EXPECT_EQ(next->allocs(), 0u);
    EXPECT_EQ(next->numSlabs(), 0u); // fresh, not the leaky one
}

TEST(Arena, SimContextRecyclesItsArenaAcrossJobs)
{
    // Two sequential "campaign jobs", each with its own SimContext.
    // The second job's arena may be the first's recycled one -- warm
    // slabs -- but its published counters must start at zero.
    Arena *firstJobArena = nullptr;
    {
        SimContext job1(1);
        ScopedSimContext scope(job1);
        Arena &a = SimContext::current().msgArena();
        firstJobArena = &a;
        void *p = a.alloc(128);
        a.free(p, 128);
        EXPECT_EQ(a.allocs(), 1u);
    }
    {
        SimContext job2(2);
        ScopedSimContext scope(job2);
        Arena &a = SimContext::current().msgArena();
        EXPECT_EQ(&a, firstJobArena); // recycled, not reallocated
        EXPECT_EQ(a.allocs(), 0u);    // ...but telemetry-clean
        EXPECT_EQ(a.frees(), 0u);
        EXPECT_EQ(a.highWater(), 0u);
        EXPECT_EQ(a.bytesServed(), 0u);
    }
}

namespace
{

/** A 4-node network wired to counting handlers (no allocation). */
struct NetFixture
{
    MachineConfig cfg;
    EventQueue eq;
    std::unique_ptr<Network> net;
    uint64_t delivered = 0;

    NetFixture()
    {
        cfg.numProcs = 4;
        net = std::make_unique<Network>(eq, cfg);
        for (NodeId n = 0; n < 4; ++n) {
            net->setCacheHandler(n,
                                 [this](const Msg &) { ++delivered; });
            net->setDirHandler(n,
                               [this](const Msg &) { ++delivered; });
        }
    }

    void
    epoch(int msgs)
    {
        for (int i = 0; i < msgs; ++i) {
            Msg m;
            m.type = i % 2 ? MsgType::ReadReply : MsgType::ReadReq;
            m.src = static_cast<NodeId>(i % 4);
            m.dst = static_cast<NodeId>((i + 1) % 4);
            m.lineAddr = 0x1000 + 64 * (i % 8);
            m.data.resize(64);
            m.data[0] = static_cast<uint8_t>(i);
            net->send(std::move(m));
        }
        eq.run();
    }
};

} // namespace

TEST(Arena, NetworkSteadyStateIsZeroAlloc)
{
    NetFixture f;
    // Warm-up epoch: slab carving, event-queue vector growth, and
    // freelist population all happen here.
    f.epoch(200);
    ASSERT_EQ(f.delivered, 200u);

    // Steady state: every delivery's message copy comes off the
    // arena freelist and every event slot is recycled, so the
    // send -> transmit -> deliver path touches the heap zero times.
    uint64_t before = gAllocs.load(std::memory_order_relaxed);
    f.epoch(200);
    uint64_t heapAllocs =
        gAllocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(f.delivered, 400u);
    EXPECT_EQ(heapAllocs, 0u)
        << "steady-state network traffic must not allocate";
}

TEST(Arena, NetworkUsesContextArena)
{
    SimContext ctx(7);
    ScopedSimContext scope(ctx);
    Arena &a = SimContext::current().msgArena();
    uint64_t allocsBefore = a.allocs();
    {
        NetFixture f;
        f.epoch(50);
        EXPECT_EQ(f.delivered, 50u);
    }
    // Every in-flight copy came from (and went back to) the
    // context's arena.
    EXPECT_GT(a.allocs(), allocsBefore);
    EXPECT_EQ(a.live(), 0u);
}
