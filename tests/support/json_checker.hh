/**
 * @file
 * A tiny in-test JSON syntax checker shared by the exporter tests
 * (test_trace.cc, test_timeline.cc).
 *
 * Just enough of a recursive-descent parser to assert an exporter
 * emits well-formed JSON: the acceptance bar is "Perfetto loads it",
 * and Perfetto's first step is a strict JSON parse. Header-only and
 * test-only -- production code must not include this.
 */

#ifndef SPECRT_TESTS_SUPPORT_JSON_CHECKER_HH
#define SPECRT_TESTS_SUPPORT_JSON_CHECKER_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace specrt::test_support
{

struct JsonParser
{
    const std::string &s;
    size_t i = 0;

    explicit JsonParser(const std::string &text) : s(text) {}

    void skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n' ||
                                s[i] == '\t' || s[i] == '\r'))
            ++i;
    }

    bool eat(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    bool parseString()
    {
        skipWs();
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        return i < s.size() && s[i++] == '"';
    }

    bool parseNumber()
    {
        skipWs();
        size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '-' || s[i] == '+'))
            ++i;
        return i > start;
    }

    bool parseValue()
    {
        skipWs();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{') {
            ++i;
            if (eat('}'))
                return true;
            do {
                if (!parseString() || !eat(':') || !parseValue())
                    return false;
            } while (eat(','));
            return eat('}');
        }
        if (c == '[') {
            ++i;
            if (eat(']'))
                return true;
            do {
                if (!parseValue())
                    return false;
            } while (eat(','));
            return eat(']');
        }
        if (c == '"')
            return parseString();
        if (s.compare(i, 4, "true") == 0) { i += 4; return true; }
        if (s.compare(i, 5, "false") == 0) { i += 5; return true; }
        if (s.compare(i, 4, "null") == 0) { i += 4; return true; }
        return parseNumber();
    }

    bool parseDocument()
    {
        if (!parseValue())
            return false;
        skipWs();
        return i == s.size();
    }
};

inline bool
validJson(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace specrt::test_support

#endif // SPECRT_TESTS_SUPPORT_JSON_CHECKER_HH
