/**
 * @file
 * End-to-end tests of reduction parallelization (TestType::Reduction):
 * privatized partial accumulators, the post-loop merge, the
 * tagged-access validity check in both the hardware (immediate) and
 * software (post-loop) schemes, and exact agreement with serial
 * execution.
 */

#include <gtest/gtest.h>

#include "core/loop_exec.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

MachineConfig
machine(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    return cfg;
}

std::vector<uint64_t>
bins(LoopExecutor &exec)
{
    const Region *r = exec.sharedRegion(0);
    std::vector<uint64_t> out(r->numElems());
    for (uint64_t e = 0; e < r->numElems(); ++e)
        out[e] = exec.machine().memory().read(r->elemAddr(e), 4);
    return out;
}

std::pair<RunResult, std::vector<uint64_t>>
run(Workload &w, ExecMode mode, int procs, ExecConfig xc = {})
{
    xc.mode = mode;
    LoopExecutor exec(machine(procs), w, xc);
    RunResult res = exec.run();
    return {res, bins(exec)};
}

} // namespace

TEST(Reduction, SerialComputesTheHistogram)
{
    HistogramParams p;
    p.iters = 8;
    p.bins = 4;
    p.updates = 1;
    HistogramLoop loop(p);
    auto [res, b] = run(loop, ExecMode::Serial, 1);
    EXPECT_TRUE(res.passed);
    // Sum of weights must be conserved: initial sum + all updates.
    uint64_t total = 0, initial = 0;
    for (uint64_t e = 0; e < 4; ++e) {
        total += b[e];
        initial += 10 * e;
    }
    uint64_t weights = 0;
    for (IterNum i = 1; i <= 8; ++i)
        weights += static_cast<uint64_t>(i % 7 + 1);
    EXPECT_EQ(total, initial + weights);
}

TEST(Reduction, HwMatchesSerialExactly)
{
    HistogramLoop loop;
    auto [sres, sb] = run(loop, ExecMode::Serial, 1);
    auto [hres, hb] = run(loop, ExecMode::HW, 8);
    EXPECT_TRUE(hres.passed) << hres.hwFailure.reason;
    EXPECT_GT(hres.phases.reduction, 0u);
    EXPECT_EQ(hb, sb);
}

TEST(Reduction, IdealAndSwAlsoMergeCorrectly)
{
    HistogramLoop loop;
    auto [sres, sb] = run(loop, ExecMode::Serial, 1);
    auto [ires, ib] = run(loop, ExecMode::Ideal, 8);
    auto [wres, wb] = run(loop, ExecMode::SW, 8);
    EXPECT_TRUE(ires.passed);
    EXPECT_TRUE(wres.passed);
    EXPECT_EQ(ib, sb);
    EXPECT_EQ(wb, sb);
}

TEST(Reduction, RogueAccessFailsHwImmediately)
{
    HistogramParams p;
    p.iters = 512;
    p.rogueIter = 16;
    HistogramLoop loop(p);
    auto [sres, sb] = run(loop, ExecMode::Serial, 1);
    ExecConfig xc;
    xc.blockIters = 2;
    auto [hres, hb] = run(loop, ExecMode::HW, 8, xc);
    EXPECT_FALSE(hres.passed);
    EXPECT_NE(hres.hwFailure.reason.find("reduction"),
              std::string::npos);
    // Detected near the rogue iteration, far before loop end.
    EXPECT_LT(hres.itersExecuted, 128u);
    // Restore + serial re-execution produced the serial state.
    EXPECT_EQ(hb, sb);
}

TEST(Reduction, RogueAccessFailsSwAfterTheLoop)
{
    HistogramParams p;
    p.iters = 64;
    p.rogueIter = 5;
    HistogramLoop loop(p);
    auto [sres, sb] = run(loop, ExecMode::Serial, 1);
    auto [wres, wb] = run(loop, ExecMode::SW, 8);
    EXPECT_FALSE(wres.passed);
    EXPECT_EQ(wres.itersExecuted, 64u); // ran everything first
    EXPECT_EQ(wb, sb);
}

TEST(Reduction, MergeAddsPartialsOntoInitialValues)
{
    // One bin, one update per iteration: final value must be the
    // initial value plus every weight, regardless of which
    // processors accumulated what.
    HistogramParams p;
    p.iters = 32;
    p.bins = 2;
    p.updates = 1;
    p.seed = 99;
    HistogramLoop loop(p);
    auto [sres, sb] = run(loop, ExecMode::Serial, 1);
    auto [hres, hb] = run(loop, ExecMode::HW, 4);
    EXPECT_TRUE(hres.passed);
    EXPECT_EQ(hb, sb);
    EXPECT_EQ(hb[0] + hb[1], sb[0] + sb[1]);
}

TEST(Reduction, OracleFlagsUntaggedAccess)
{
    std::vector<AccessEvent> good = {
        {0, 1, 3, false, 0, true},
        {0, 1, 3, true, 0, true},
    };
    EXPECT_TRUE(Oracle::reductionValid(good));
    std::vector<AccessEvent> bad = good;
    bad.push_back({1, 2, 3, false, 0, false});
    EXPECT_FALSE(Oracle::reductionValid(bad));
}

TEST(Reduction, NoBackupIsTakenForReductionArrays)
{
    // The shared array is untouched until the merge, so backup is
    // unnecessary even though the array is declared modified.
    HistogramLoop loop;
    auto [hres, hb] = run(loop, ExecMode::HW, 4);
    EXPECT_TRUE(hres.passed);
    EXPECT_EQ(hres.phases.backup, 0u);
}
