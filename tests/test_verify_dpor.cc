/**
 * @file
 * Tests of dynamic partial-order reduction and fault-schedule
 * exploration in the bounded explorer (verify/explorer.hh): the
 * dependence predicate, soundness differentials against naive
 * enumeration (same violation fingerprints, strictly fewer runs),
 * fault decision points, the maxFaults d-bound, and decision-kind
 * validation on replay.
 */

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/sim_context.hh"
#include "verify/explorer.hh"

using namespace specrt;
using verify::ChoiceKind;
using verify::explore;
using verify::ExploreMode;
using verify::ExploreOptions;
using verify::ExploreResult;
using verify::RunVerdict;

namespace
{

EventChoice
ev(EventKind kind, uint16_t actor, uint64_t seq,
   uint64_t parent = noEventSeq)
{
    EventChoice c{5, kind, actor, false};
    c.seq = seq;
    c.parent = parent;
    return c;
}

/**
 * Three same-tick Network deliveries where exactly one pair is
 * dependent: a and b land at the same node, c at another (so c
 * commutes with both). The run's property fails -- with a stable
 * fingerprint -- whenever b fires before a, which only the
 * dependent pair's order determines: a sound seeded bug for
 * reduction differentials. 6 permutations, but only 2 trace-
 * equivalence classes (a-before-b and b-before-a).
 */
verify::RunFn
onePairRun(std::set<std::string> *orders, std::mutex *mu)
{
    return [orders, mu]() {
        EventQueue eq;
        eq.setScheduleController(
            SimContext::current().scheduleController);
        auto order = std::make_shared<std::string>();
        eq.schedule(5, [order] { *order += 'a'; }, EventKind::Network,
                    0);
        eq.schedule(5, [order] { *order += 'b'; }, EventKind::Network,
                    0);
        eq.schedule(5, [order] { *order += 'c'; }, EventKind::Network,
                    1);
        eq.run();
        if (orders) {
            std::lock_guard<std::mutex> g(*mu);
            orders->insert(*order);
        }
        RunVerdict v;
        if (order->find('b') < order->find('a')) {
            v.ok = false;
            v.report = "b fired before a";
        }
        return v;
    };
}

/** 2-node conflicting-store micro run; optional watchdog recovery. */
RunVerdict
microRun(Cycles watchdog)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fault.watchdogTimeout = watchdog;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);
    InvariantChecker chk(dsm);
    size_t viols = 0;
    chk.setHandler([&](const ProtocolViolation &) { ++viols; });
    bool loaded = false;
    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.cacheCtrl(1).load(a, 4, 2, [&](uint64_t) { loaded = true; });
    dsm.eventQueue().run();
    bool quiesced = dsm.quiescent();
    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    dsm.resetMachine(true);
    uint64_t fin = dsm.memory().read(a, 4);

    RunVerdict v;
    std::string err;
    if (!loaded)
        err += "load never completed; ";
    if (!quiesced)
        err += "not quiescent; ";
    if (fin != 11 && fin != 22)
        err += "final value not a serialization; ";
    if (viols)
        err += "invariant violation(s); ";
    v.report = err;
    v.ok = err.empty();
    return v;
}

} // namespace

TEST(DporDependence, CreationEdgesAreDependent)
{
    // Parent links win over any independence heuristic: a Network
    // event that scheduled another Network event's callback is
    // dependent on it even across distinct actors.
    EventChoice parent = ev(EventKind::Network, 0, 10);
    EventChoice child = ev(EventKind::Network, 1, 11, 10);
    EXPECT_TRUE(verify::dporDependent(parent, child));
    EXPECT_TRUE(verify::dporDependent(child, parent));
}

TEST(DporDependence, DistinctDestinationDeliveriesCommute)
{
    EventChoice n0 = ev(EventKind::Network, 0, 1);
    EventChoice n1 = ev(EventKind::Network, 1, 2);
    EXPECT_FALSE(verify::dporDependent(n0, n1));
}

TEST(DporDependence, SameActorAndCrossKindAreDependent)
{
    EventChoice n0 = ev(EventKind::Network, 0, 1);
    EventChoice n0b = ev(EventKind::Network, 0, 2);
    EventChoice cache = ev(EventKind::Cache, 1, 3);
    EventChoice unk = ev(EventKind::Network, unknownActor, 4);
    EXPECT_TRUE(verify::dporDependent(n0, n0b));
    EXPECT_TRUE(verify::dporDependent(n0, cache));
    EXPECT_TRUE(verify::dporDependent(n0, unk));
}

TEST(Dpor, AllDependentEventsStillEnumerateEveryPermutation)
{
    // Three same-tick pairwise-dependent events (distinct kinds and
    // actors, no Network pair): reduction must not lose a single
    // order.
    std::set<std::string> orders;
    std::mutex mu;
    auto run = [&orders, &mu]() {
        EventQueue eq;
        eq.setScheduleController(
            SimContext::current().scheduleController);
        auto order = std::make_shared<std::string>();
        eq.schedule(5, [order] { *order += 'a'; }, EventKind::Cache,
                    0);
        eq.schedule(5, [order] { *order += 'b'; },
                    EventKind::Directory, 1);
        eq.schedule(5, [order] { *order += 'c'; },
                    EventKind::Processor, 2);
        eq.run();
        {
            std::lock_guard<std::mutex> g(mu);
            orders.insert(*order);
        }
        return RunVerdict{};
    };
    ExploreOptions o;
    o.mode = ExploreMode::Dpor;
    ExploreResult res = explore(run, o);
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_EQ(res.runs, 6u);
    std::set<std::string> expect = {"abc", "acb", "bac",
                                    "bca", "cab", "cba"};
    EXPECT_EQ(orders, expect);
}

TEST(Dpor, IndependentPairNeedsOneRunAndNoRaces)
{
    auto run = [] {
        EventQueue eq;
        eq.setScheduleController(
            SimContext::current().scheduleController);
        eq.schedule(5, [] {}, EventKind::Network, 0);
        eq.schedule(5, [] {}, EventKind::Network, 1);
        eq.run();
        return RunVerdict{};
    };
    ExploreResult naive = explore(run);
    EXPECT_EQ(naive.runs, 2u);

    ExploreOptions o;
    o.mode = ExploreMode::Dpor;
    ExploreResult dpor = explore(run, o);
    EXPECT_FALSE(dpor.violated);
    EXPECT_EQ(dpor.runs, 1u);
    EXPECT_EQ(dpor.races, 0u);
}

TEST(Dpor, SameFingerprintsStrictlyFewerRunsOnSeededBug)
{
    // The differential the reduction must win: naive enumeration of
    // the one-dependent-pair scenario takes all 6 permutations; DPOR
    // must reach the same set of distinct violation fingerprints in
    // strictly fewer runs (the trace-equivalence classes number 2).
    std::set<std::string> naive_orders, dpor_orders;
    std::mutex mu;

    ExploreOptions no;
    no.keepGoing = true;
    ExploreResult naive = explore(onePairRun(&naive_orders, &mu), no);
    // runs exceeds the 6 permutations by the witness-shrinking
    // replays; the order set is the coverage measure.
    EXPECT_GE(naive.runs, 6u);
    EXPECT_EQ(naive_orders.size(), 6u);
    ASSERT_TRUE(naive.violated);
    EXPECT_EQ(naive.fingerprints,
              std::set<std::string>{"b fired before a"});

    ExploreOptions do_;
    do_.mode = ExploreMode::Dpor;
    do_.keepGoing = true;
    ExploreResult dpor = explore(onePairRun(&dpor_orders, &mu), do_);
    ASSERT_TRUE(dpor.violated);
    EXPECT_EQ(dpor.fingerprints, naive.fingerprints);
    EXPECT_LT(dpor_orders.size(), naive_orders.size())
        << "reduction explored every permutation";
    EXPECT_LT(dpor.runs, naive.runs)
        << "reduction explored as much as naive: " << dpor.summary();
    EXPECT_GE(dpor_orders.size(), 2u)
        << "fewer orders than trace-equivalence classes -- unsound";

    // Coverage up to commuting c: every naive order has an explored
    // representative with the same relative order of the dependent
    // pair (a, b).
    for (const std::string &o : naive_orders) {
        bool b_first = o.find('b') < o.find('a');
        bool covered = false;
        for (const std::string &d : dpor_orders)
            covered |= (d.find('b') < d.find('a')) == b_first;
        EXPECT_TRUE(covered)
            << "no explored representative for order " << o;
    }
}

TEST(Dpor, ExhaustsTwoNodeProtocolGridMatchingNaiveVerdict)
{
    ExploreOptions no;
    no.maxRuns = 50000;
    no.keepGoing = true;
    ExploreResult naive = explore([] { return microRun(0); }, no);
    EXPECT_FALSE(naive.budgetExhausted);
    EXPECT_FALSE(naive.violated) << naive.summary();

    ExploreOptions do_;
    do_.mode = ExploreMode::Dpor;
    do_.maxRuns = 50000;
    do_.keepGoing = true;
    ExploreResult dpor = explore([] { return microRun(0); }, do_);
    EXPECT_FALSE(dpor.budgetExhausted);
    EXPECT_FALSE(dpor.violated) << dpor.summary();
    EXPECT_EQ(dpor.fingerprints, naive.fingerprints);
    EXPECT_LE(dpor.runs, naive.runs);
}

TEST(FaultExploration, FaultDecisionPointsAppearAndRecover)
{
    // One controlled run with fault decisions live: the controller
    // log must contain Fault decision points (requests and replies
    // of the store/load traffic are drop- or dup-eligible), all
    // taking the default (deliver) branch, and the run stays clean.
    verify::ReplayController rc;
    rc.exploreFaults = true;
    RunVerdict v;
    {
        verify::ScopedScheduleController scope(&rc);
        v = microRun(2000);
    }
    EXPECT_TRUE(v.ok) << v.report;
    size_t fault_points = 0;
    for (const verify::Decision &d : rc.decisions())
        if (d.kind == ChoiceKind::Fault) {
            ++fault_points;
            EXPECT_GE(d.degree, 2u);
            EXPECT_EQ(d.taken, 0u);
        }
    EXPECT_GT(fault_points, 0u);
}

TEST(FaultExploration, ExploredDropAndDupSchedulesStayClean)
{
    // Exhaustively explore every single-fault placement (plus
    // delivery-order choice below them): each dropped request must
    // be recovered by the watchdog retry and each duplicate absorbed
    // -- the serializability + quiescence verdict holds everywhere.
    ExploreOptions o;
    o.exploreFaults = true;
    o.maxFaults = 1;
    o.maxRuns = 20000;
    ExploreResult res = explore([] { return microRun(2000); }, o);
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_FALSE(res.budgetExhausted) << res.summary();
    EXPECT_GT(res.runs, 1u);
    EXPECT_GT(res.pruned, 0u) << "fault d-bound never engaged";
}

TEST(FaultExploration, MaxFaultsBoundsTheTree)
{
    ExploreOptions o0;
    o0.exploreFaults = true;
    o0.maxFaults = 0;
    o0.maxRuns = 20000;
    ExploreResult zero = explore([] { return microRun(2000); }, o0);

    ExploreOptions o1 = o0;
    o1.maxFaults = 1;
    ExploreResult one = explore([] { return microRun(2000); }, o1);

    EXPECT_FALSE(zero.violated);
    EXPECT_FALSE(one.violated);
    // No fault budget: only delivery-order branching remains.
    EXPECT_LT(zero.runs, one.runs);
}

TEST(FaultExploration, KindMismatchFlagsForeignSchedule)
{
    // A schedule whose first position claims to be a Fault decision,
    // replayed against a run whose first decision is a Sched pick:
    // the controller must flag the mismatch instead of silently
    // replaying a different experiment.
    verify::ReplayController rc({1});
    rc.expectKinds = {ChoiceKind::Fault};
    {
        verify::ScopedScheduleController scope(&rc);
        microRun(0);
    }
    EXPECT_TRUE(rc.kindMismatch);
}
