/** @file Tests of the iteration schedulers (WorkSource impls). */

#include <gtest/gtest.h>

#include <set>

#include "runtime/scheduler.hh"

using namespace specrt;

namespace
{

/** Drain a source completely; return per-proc iteration sets. */
std::vector<std::set<IterNum>>
drain(WorkSource &src, int procs)
{
    std::vector<std::set<IterNum>> got(procs);
    bool progress = true;
    std::vector<bool> done(procs, false);
    while (progress) {
        progress = false;
        for (NodeId p = 0; p < procs; ++p) {
            if (done[p])
                continue;
            WorkSource::Grant g = src.next(p, 0);
            if (g.done) {
                done[p] = true;
                continue;
            }
            progress = true;
            for (IterNum i = g.lo; i < g.hi; ++i) {
                EXPECT_TRUE(got[p].insert(i).second)
                    << "iteration granted twice to proc " << p;
            }
        }
    }
    return got;
}

void
expectExactCover(const std::vector<std::set<IterNum>> &got, IterNum n)
{
    std::set<IterNum> all;
    for (const auto &s : got) {
        for (IterNum i : s) {
            EXPECT_TRUE(all.insert(i).second)
                << "iteration " << i << " granted to two procs";
        }
    }
    EXPECT_EQ(all.size(), static_cast<size_t>(n));
    if (!all.empty()) {
        EXPECT_EQ(*all.begin(), 1);
        EXPECT_EQ(*all.rbegin(), n);
    }
}

} // namespace

TEST(StaticChunk, CoversExactlyOnceContiguously)
{
    StaticChunkSource src(100, 7);
    auto got = drain(src, 7);
    expectExactCover(got, 100);
    for (const auto &s : got) {
        if (s.empty())
            continue;
        EXPECT_EQ(*s.rbegin() - *s.begin() + 1,
                  static_cast<IterNum>(s.size()))
            << "chunk not contiguous";
    }
}

TEST(StaticChunk, BalancesWithinOne)
{
    StaticChunkSource src(13, 4);
    auto got = drain(src, 4);
    expectExactCover(got, 13);
    for (const auto &s : got) {
        EXPECT_GE(s.size(), 3u);
        EXPECT_LE(s.size(), 4u);
    }
}

TEST(StaticChunk, MoreProcsThanIters)
{
    StaticChunkSource src(2, 5);
    auto got = drain(src, 5);
    expectExactCover(got, 2);
}

TEST(BlockCyclic, DealsBlocksRoundRobin)
{
    BlockCyclicSource src(24, 3, 4);
    auto got = drain(src, 3);
    expectExactCover(got, 24);
    // Proc 0 gets blocks 0, 3: iterations 1..4 and 13..16.
    EXPECT_TRUE(got[0].count(1));
    EXPECT_TRUE(got[0].count(13));
    EXPECT_FALSE(got[0].count(5));
    EXPECT_TRUE(got[1].count(5));
}

TEST(BlockCyclic, RaggedTail)
{
    BlockCyclicSource src(10, 4, 4);
    auto got = drain(src, 4);
    expectExactCover(got, 10);
}

TEST(Dynamic, CoversExactlyOnce)
{
    DynamicSource src(37, 5, 10);
    auto got = drain(src, 4);
    expectExactCover(got, 37);
}

TEST(Dynamic, GrabsSerializeOnTheLock)
{
    DynamicSource src(100, 4, 50);
    // Two processors ask at the same instant: the second must wait
    // for the first's lock hold.
    WorkSource::Grant a = src.next(0, 1000);
    WorkSource::Grant b = src.next(1, 1000);
    EXPECT_EQ(a.delay, 50u);
    EXPECT_EQ(b.delay, 100u);
    // A later uncontended grab pays only the grab cost.
    WorkSource::Grant c = src.next(2, 5000);
    EXPECT_EQ(c.delay, 50u);
}

TEST(Dynamic, GrantsAreAscendingBlocks)
{
    DynamicSource src(20, 6, 1);
    WorkSource::Grant a = src.next(0, 0);
    WorkSource::Grant b = src.next(1, 0);
    EXPECT_EQ(a.lo, 1);
    EXPECT_EQ(a.hi, 7);
    EXPECT_EQ(b.lo, 7);
    WorkSource::Grant tail = src.next(0, 0);
    EXPECT_EQ(tail.lo, 13);
    WorkSource::Grant last = src.next(0, 0);
    EXPECT_EQ(last.hi, 21); // clipped to numIters + 1
    EXPECT_TRUE(src.next(0, 0).done);
}

TEST(MakeSource, BuildsEachPolicy)
{
    auto a = makeSource(SchedPolicy::StaticChunk, 10, 2, 4, 5);
    auto b = makeSource(SchedPolicy::BlockCyclic, 10, 2, 4, 5);
    auto c = makeSource(SchedPolicy::Dynamic, 10, 2, 4, 5);
    auto ga = drain(*a, 2);
    auto gb = drain(*b, 2);
    auto gc = drain(*c, 2);
    expectExactCover(ga, 10);
    expectExactCover(gb, 10);
    expectExactCover(gc, 10);
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Dynamic), "dynamic");
}

TEST(Schedulers, PerProcIterationsAscendEverywhere)
{
    // The paper requires each processor to execute its iterations in
    // increasing order; grants must never go backwards.
    for (SchedPolicy pol :
         {SchedPolicy::StaticChunk, SchedPolicy::BlockCyclic,
          SchedPolicy::Dynamic}) {
        auto src = makeSource(pol, 57, 3, 4, 1);
        std::vector<IterNum> last(3, 0);
        std::vector<bool> done(3, false);
        bool progress = true;
        while (progress) {
            progress = false;
            for (NodeId p = 0; p < 3; ++p) {
                if (done[p])
                    continue;
                auto g = src->next(p, 0);
                if (g.done) {
                    done[p] = true;
                    continue;
                }
                progress = true;
                EXPECT_GT(g.lo, last[p]);
                last[p] = g.hi - 1;
            }
        }
    }
}
