/**
 * @file
 * Tests of the four Perfect-Club loop analogues: each passes the
 * test it is designed for, fails when forced into the paper's
 * failure scenarios, and produces serial-equivalent results.
 */

#include <gtest/gtest.h>

#include "core/loop_exec.hh"
#include "workloads/adm.hh"
#include "workloads/ocean.hh"
#include "workloads/p3m.hh"
#include "workloads/track.hh"

using namespace specrt;

namespace
{

MachineConfig
machine(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    return cfg;
}

RunResult
run(Workload &w, ExecMode mode, int procs, ExecConfig xc = {})
{
    xc.mode = mode;
    LoopExecutor exec(machine(procs), w, xc);
    return exec.run();
}

} // namespace

TEST(Ocean, PassesNonPrivWithBothStrides)
{
    for (uint64_t stride : {uint64_t(1), uint64_t(32)}) {
        OceanParams p;
        p.stride = stride;
        p.elems = 4096; // scaled down for the unit test
        OceanLoop loop(p);
        RunResult hw = run(loop, ExecMode::HW, 8);
        EXPECT_TRUE(hw.passed) << "stride " << stride << ": "
                               << hw.hwFailure.reason;
        EXPECT_EQ(hw.itersExecuted, 32u);
    }
}

TEST(Ocean, MatchesSerialResults)
{
    OceanParams p;
    p.elems = 2048;
    OceanLoop loop(p);

    LoopExecutor serial(machine(8), loop, ExecConfig{ExecMode::Serial});
    serial.run();
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor hw(machine(8), loop, xc);
    RunResult hres = hw.run();
    EXPECT_TRUE(hres.passed);

    const Region *sr = serial.sharedRegion(0);
    const Region *hr = hw.sharedRegion(0);
    for (uint64_t e = 0; e < sr->numElems(); ++e) {
        ASSERT_EQ(hw.machine().memory().read(hr->elemAddr(e), 8),
                  serial.machine().memory().read(sr->elemAddr(e), 8))
            << "element " << e;
    }
}

TEST(Ocean, SwProcessorWisePasses)
{
    OceanParams p;
    p.elems = 2048;
    OceanLoop loop(p);
    ExecConfig xc;
    xc.swProcWise = true;
    RunResult sw = run(loop, ExecMode::SW, 8, xc);
    EXPECT_TRUE(sw.passed);
}

TEST(P3m, PassesPrivatizationTest)
{
    P3mParams p;
    p.iters = 400;
    p.posElems = 8 * 1024;
    p.wsElems = 256;
    P3mLoop loop(p);
    ExecConfig xc;
    xc.sched = SchedPolicy::Dynamic;
    RunResult hw = run(loop, ExecMode::HW, 16, xc);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    EXPECT_EQ(hw.itersExecuted, 400u);
    // Workspaces are write-before-read: no read-ins are needed for
    // correctness but first-writes flow to the shared directory.
    EXPECT_EQ(hw.phases.copyOut, 0u); // not live-out
}

TEST(P3m, ForcedNonPrivFailsImmediately)
{
    // The paper's Figure 13 scenario: do not privatize, run the
    // non-privatization algorithm; the workspaces collide.
    P3mParams p;
    p.iters = 400;
    p.posElems = 8 * 1024;
    p.wsElems = 256;
    P3mLoop loop(p);
    ExecConfig xc;
    xc.downgradePrivToNonPriv = true;
    RunResult hw = run(loop, ExecMode::HW, 16, xc);
    EXPECT_FALSE(hw.passed);
    EXPECT_LT(hw.itersExecuted, 400u); // aborted early
    EXPECT_GT(hw.phases.serial, 0u);
}

TEST(P3m, LoadIsImbalanced)
{
    P3mLoop loop;
    int max_n = 0, min_n = 1 << 30;
    for (IterNum i = 1; i <= 1000; ++i) {
        int n = loop.neighborsOf(i);
        max_n = std::max(max_n, n);
        min_n = std::min(min_n, n);
    }
    EXPECT_GE(max_n, 5 * min_n)
        << "imbalance too small to require dynamic scheduling";
}

TEST(Adm, PassesWithMixedTestTypes)
{
    AdmParams p;
    AdmLoop loop(p);
    RunResult hw = run(loop, ExecMode::HW, 16);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    RunResult sw = run(loop, ExecMode::SW, 16,
                       ExecConfig{ExecMode::SW, SchedPolicy::StaticChunk,
                                  4, true});
    EXPECT_TRUE(sw.passed);
}

TEST(Adm, ForcedNonPrivFails)
{
    AdmLoop loop;
    ExecConfig xc;
    xc.downgradePrivToNonPriv = true;
    RunResult hw = run(loop, ExecMode::HW, 16, xc);
    EXPECT_FALSE(hw.passed);
}

TEST(Adm, MatchesSerialResults)
{
    AdmParams p;
    p.iters = 32;
    AdmLoop loop(p);
    LoopExecutor serial(machine(8), loop, ExecConfig{ExecMode::Serial});
    serial.run();
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor hw(machine(8), loop, xc);
    RunResult hres = hw.run();
    EXPECT_TRUE(hres.passed);
    const Region *sr = serial.sharedRegion(0);
    const Region *hr = hw.sharedRegion(0);
    for (uint64_t e = 0; e < sr->numElems(); ++e) {
        ASSERT_EQ(hw.machine().memory().read(hr->elemAddr(e), 8),
                  serial.machine().memory().read(sr->elemAddr(e), 8));
    }
}

TEST(Track, MostInstancesAreParallel)
{
    int failing = 0;
    for (int inst = 0; inst < 56; ++inst) {
        TrackLoop probe(TrackParams{inst});
        failing += probe.hasAdjacentDeps();
    }
    EXPECT_EQ(failing, 5); // 5 of the 56 executions, as in the paper
}

TEST(Track, CleanInstancePassesEverywhere)
{
    TrackParams p;
    p.instance = 1;
    p.iters = 96;
    p.elems = 128;
    TrackLoop loop(p);
    ASSERT_FALSE(loop.hasAdjacentDeps());
    RunResult hw = run(loop, ExecMode::HW, 8);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;
    ExecConfig swxc;
    swxc.swProcWise = false;
    RunResult sw = run(loop, ExecMode::SW, 8, swxc);
    EXPECT_TRUE(sw.passed);
}

TEST(Track, DependentInstanceBehavesLikeThePaper)
{
    TrackParams p;
    p.instance = 3; // has adjacent-iteration dependences
    p.iters = 96;
    p.elems = 128;
    TrackLoop loop(p);
    ASSERT_TRUE(loop.hasAdjacentDeps());
    ASSERT_GT(loop.testedFraction(), 0.0);

    // Iteration-wise software test: fails.
    ExecConfig iter_xc;
    iter_xc.swProcWise = false;
    RunResult sw_iter = run(loop, ExecMode::SW, 8, iter_xc);
    EXPECT_FALSE(sw_iter.passed);

    // Processor-wise software test (static scheduling): passes,
    // because the dependent iterations land on the same processor.
    ExecConfig proc_xc;
    proc_xc.swProcWise = true;
    RunResult sw_proc = run(loop, ExecMode::SW, 8, proc_xc);
    EXPECT_TRUE(sw_proc.passed);

    // Hardware scheme with small dynamic blocks: passes (the pair
    // shares a block), no static scheduling needed.
    ExecConfig hw_xc;
    hw_xc.sched = SchedPolicy::Dynamic;
    hw_xc.blockIters = 4;
    RunResult hw = run(loop, ExecMode::HW, 8, hw_xc);
    EXPECT_TRUE(hw.passed) << hw.hwFailure.reason;

    // Hardware with single-iteration blocks: the pair can split
    // across processors and the test fails (used for Figure 13).
    ExecConfig hw1_xc;
    hw1_xc.sched = SchedPolicy::BlockCyclic;
    hw1_xc.blockIters = 1;
    RunResult hw1 = run(loop, ExecMode::HW, 8, hw1_xc);
    EXPECT_FALSE(hw1.passed);
}

TEST(Track, TestedFractionSpansInstances)
{
    double lo = 1.0, hi = 0.0;
    for (int inst = 0; inst < 56; ++inst) {
        TrackLoop probe(TrackParams{inst});
        lo = std::min(lo, probe.testedFraction());
        hi = std::max(hi, probe.testedFraction());
    }
    EXPECT_EQ(lo, 0.0);
    EXPECT_NEAR(hi, 0.44, 1e-9);
}
