/**
 * @file
 * Integration tests of the speculation units attached to a real
 * machine: translation table, update-message generation (FirstUpdate
 * on clean first reads, ROnlyUpdate on cross-reader hits,
 * FirstUpdateFail bounces), fill-bit contents, the read-in path, the
 * CopyOutSig hardware arbitration, and failure latching.
 */

#include <gtest/gtest.h>

#include "mem/dsm.hh"
#include "spec/spec_unit.hh"

using namespace specrt;

namespace
{

struct SpecMachine
{
    MachineConfig cfg;
    std::unique_ptr<DsmSystem> dsm;
    std::unique_ptr<SpecSystem> spec;
    const Region *shared = nullptr;
    std::vector<const Region *> priv;

    explicit SpecMachine(int procs = 4, TestType type = TestType::NonPriv)
    {
        cfg.numProcs = procs;
        dsm = std::make_unique<DsmSystem>(cfg);
        spec = std::make_unique<SpecSystem>(*dsm);

        AddrMap &mem = dsm->memory();
        int id = mem.alloc("A", 4096, 4, Placement::Fixed, 0);
        shared = &mem.region(id);
        for (uint64_t e = 0; e < shared->numElems(); ++e)
            mem.write(shared->elemAddr(e), 4, 100 + e);

        if (type == TestType::NonPriv) {
            spec->table().addNonPriv(*shared);
        } else {
            for (int p = 0; p < procs; ++p) {
                int pid = mem.alloc("A_priv" + std::to_string(p), 4096,
                                    4, Placement::Fixed, p);
                priv.push_back(&mem.region(pid));
                mem.copyBytes(shared->base, priv.back()->base, 4096);
            }
            spec->table().addPriv(*shared, priv);
        }
        spec->arm();
    }

    uint64_t
    load(NodeId n, Addr a, IterNum iter = 1)
    {
        uint64_t v = 0;
        dsm->cacheCtrl(n).load(a, 4, iter, [&](uint64_t val) {
            v = val;
        });
        dsm->eventQueue().run();
        return v;
    }

    void
    store(NodeId n, Addr a, uint64_t v, IterNum iter = 1)
    {
        ASSERT_TRUE(dsm->cacheCtrl(n).store(a, 4, v, iter));
        dsm->eventQueue().run();
    }

    uint64_t
    msgs(MsgType t)
    {
        return static_cast<uint64_t>(
            dsm->network().msgsByType[static_cast<size_t>(t)]);
    }
};

} // namespace

TEST(TranslationTable, LookupAndRoles)
{
    SpecMachine m(4, TestType::Priv);
    TranslationTable &t = m.spec->table();
    EXPECT_EQ(t.numRanges(), 5u); // shared + 4 copies

    const TestRange *s = t.lookup(m.shared->elemAddr(3));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->role, PrivRole::SharedArray);

    const TestRange *p2 = t.lookup(m.priv[2]->elemAddr(3));
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(p2->role, PrivRole::PrivateCopy);
    EXPECT_EQ(p2->owner, 2);
    EXPECT_EQ(p2->toShared(m.priv[2]->elemAddr(3)),
              m.shared->elemAddr(3));

    EXPECT_EQ(t.lookup(0x10), nullptr);
    t.clear();
    EXPECT_EQ(t.numRanges(), 0u);
}

TEST(SpecUnit, MissesNeedNoUpdateMessages)
{
    // A read miss carries its speculation bookkeeping on the
    // ordinary coherence transaction.
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0));
    EXPECT_EQ(m.msgs(MsgType::FirstUpdate), 0u);
    EXPECT_EQ(m.msgs(MsgType::ROnlyUpdate), 0u);
    EXPECT_FALSE(m.spec->failure().failed);
}

TEST(SpecUnit, CleanHitFirstReadSendsFirstUpdate)
{
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0)); // fill the line
    m.load(1, m.shared->elemAddr(1)); // clean hit, new element
    EXPECT_EQ(m.msgs(MsgType::FirstUpdate), 1u);
    // Re-reading sends nothing more.
    m.load(1, m.shared->elemAddr(1));
    EXPECT_EQ(m.msgs(MsgType::FirstUpdate), 1u);
}

TEST(SpecUnit, CrossReaderHitSendsROnlyUpdate)
{
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0)); // P1 first on elem 0
    m.load(2, m.shared->elemAddr(1)); // P2 fills line; first on elem 1
    // P2 now reads elem 0 from its cached copy: tag.First == OTHER,
    // ROnly not yet set -> ROnly_update.
    m.load(2, m.shared->elemAddr(0));
    EXPECT_EQ(m.msgs(MsgType::ROnlyUpdate), 1u);
    EXPECT_FALSE(m.spec->failure().failed);
}

TEST(SpecUnit, ConcurrentFirstReadsBounceTheLoser)
{
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0));
    m.load(2, m.shared->elemAddr(1));
    // Both now hold the line; both read the untouched element 2 in
    // the same cycle: two FirstUpdates race to the home, the loser
    // is bounced with FirstUpdateFail (Fig. 7(f)/(g)) -- benign for
    // a read-read race.
    uint64_t v1 = 0, v2 = 0;
    m.dsm->cacheCtrl(1).load(m.shared->elemAddr(2), 4, 1,
                             [&](uint64_t v) { v1 = v; });
    m.dsm->cacheCtrl(2).load(m.shared->elemAddr(2), 4, 1,
                             [&](uint64_t v) { v2 = v; });
    m.dsm->eventQueue().run();
    EXPECT_EQ(v1, 102u);
    EXPECT_EQ(v2, 102u);
    EXPECT_EQ(m.msgs(MsgType::FirstUpdate), 2u);
    EXPECT_EQ(m.msgs(MsgType::FirstUpdateFail), 1u);
    EXPECT_FALSE(m.spec->failure().failed);
    // A write by anyone now fails (the element is read-shared).
    m.store(1, m.shared->elemAddr(2), 7);
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, FailureLatchesOnceWithDetail)
{
    SpecMachine m;
    int aborts = 0;
    m.spec->setAbortHook([&]() { ++aborts; });
    m.load(1, m.shared->elemAddr(0));
    m.store(2, m.shared->elemAddr(0), 1); // write after foreign read
    EXPECT_TRUE(m.spec->failure().failed);
    EXPECT_EQ(m.spec->failure().elemAddr, m.shared->elemAddr(0));
    EXPECT_FALSE(m.spec->failure().reason.empty());
    EXPECT_EQ(aborts, 1);
    // A second violation does not re-fire the hook.
    m.dsm->eventQueue().reset();
    m.store(3, m.shared->elemAddr(4), 1);
    m.load(1, m.shared->elemAddr(4));
    EXPECT_EQ(aborts, 1);
}

TEST(SpecUnit, DisarmedUnitsAreInert)
{
    SpecMachine m;
    m.spec->disarm();
    m.load(1, m.shared->elemAddr(0));
    m.store(2, m.shared->elemAddr(0), 1);
    m.load(3, m.shared->elemAddr(0));
    EXPECT_FALSE(m.spec->failure().failed);
    EXPECT_EQ(m.msgs(MsgType::FirstUpdate), 0u);
}

TEST(SpecUnit, ArmClearsOldState)
{
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0));
    m.spec->arm(); // new loop: all access bits cleared
    m.store(2, m.shared->elemAddr(0), 9);
    EXPECT_FALSE(m.spec->failure().failed);
}

TEST(SpecUnit, PrivateReadTriggersReadIn)
{
    SpecMachine m(4, TestType::Priv);
    // Processor 2 reads its private copy: untouched line ->
    // ReadInReq to the shared home, data comes back, load completes
    // with the shared array's value.
    uint64_t v = m.load(2, m.priv[2]->elemAddr(5), 3);
    EXPECT_EQ(v, 105u);
    EXPECT_EQ(m.msgs(MsgType::ReadInReq), 1u);
    EXPECT_EQ(m.msgs(MsgType::ReadInReply), 1u);
    EXPECT_FALSE(m.spec->failure().failed);
    // MaxR1st at the shared home recorded iteration 3: an earlier
    // iteration writing now is a flow dependence.
    m.store(1, m.priv[1]->elemAddr(5), 1, /*iter=*/2);
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, WriteToUntouchedLineReadsInForWrite)
{
    SpecMachine m(4, TestType::Priv);
    // The very first write to an untouched private line travels as a
    // read-in-for-write (Fig. 9(h)/(j)), which updates MinW at the
    // shared home directly -- no separate first-write signal.
    m.store(1, m.priv[1]->elemAddr(7), 42, /*iter=*/4);
    EXPECT_EQ(m.msgs(MsgType::ReadInReq), 1u);
    EXPECT_EQ(m.msgs(MsgType::FirstWriteSig), 0u);
    // A later iteration's read-first on another processor fails.
    m.load(2, m.priv[2]->elemAddr(7), /*iter=*/6);
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, FirstWriteOnTouchedLineSignals)
{
    SpecMachine m(4, TestType::Priv);
    // Touch the line with a read first (read-in), then write another
    // element of it: the private data is valid, so the write's first
    // occurrence flows to the shared home as a FirstWriteSig
    // (Fig. 9(g)/(i)).
    m.load(1, m.priv[1]->elemAddr(0), /*iter=*/1);
    m.store(1, m.priv[1]->elemAddr(2), 42, /*iter=*/2);
    EXPECT_GE(m.msgs(MsgType::FirstWriteSig), 1u);
    // A later iteration's read-first fails (MinW = 2).
    m.load(2, m.priv[2]->elemAddr(2), /*iter=*/5);
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, WrittenPrivElemsReportsLastWriters)
{
    SpecMachine m(4, TestType::Priv);
    m.store(1, m.priv[1]->elemAddr(3), 11, 2);
    m.store(1, m.priv[1]->elemAddr(3), 12, 5);
    m.store(1, m.priv[1]->elemAddr(8), 13, 4);
    auto written = m.spec->writtenPrivElems(
        1, m.priv[1]->base, m.priv[1]->base + m.priv[1]->bytes);
    ASSERT_EQ(written.size(), 2u);
    std::map<Addr, IterNum> by_addr(written.begin(), written.end());
    EXPECT_EQ(by_addr[m.priv[1]->elemAddr(3)], 5);
    EXPECT_EQ(by_addr[m.priv[1]->elemAddr(8)], 4);
}

TEST(SpecUnit, CopyOutSigHardwareArbitration)
{
    SpecMachine m(4, TestType::Priv);
    // Send copy-out values for element 9 from two "processors" with
    // different iteration numbers; the higher iteration must win
    // regardless of arrival order.
    Addr elem = m.shared->elemAddr(9);
    auto send = [&](NodeId src, IterNum iter, uint64_t value) {
        Msg msg;
        msg.type = MsgType::CopyOutSig;
        msg.src = src;
        msg.dst = m.dsm->memory().homeOf(elem);
        msg.lineAddr = m.dsm->cacheCtrl(0).cacheArray().lineAlign(elem);
        msg.elemAddr = elem;
        msg.iter = iter;
        msg.value = value;
        m.dsm->network().send(std::move(msg));
    };
    send(1, 7, 777);
    m.dsm->eventQueue().run();
    send(2, 3, 333); // older iteration arrives later: ignored
    m.dsm->eventQueue().run();
    EXPECT_EQ(m.dsm->memory().read(elem, 4), 777u);
    send(3, 9, 999);
    m.dsm->eventQueue().run();
    EXPECT_EQ(m.dsm->memory().read(elem, 4), 999u);
}

TEST(SpecUnit, EvictedDirtyBitsReachTheHomeAndStillDetect)
{
    SpecMachine m;
    // Node 1 writes an element while holding the line dirty: the
    // First/NoShr bits live only in its cache tags. Evict the line
    // (conflicting fill 8192 lines away needs a bigger region).
    int id = m.dsm->memory().alloc("big", 1024 * 1024 + 4096, 4,
                                   Placement::Fixed, 0);
    const Region *big = &m.dsm->memory().region(id);
    m.spec->table().clear();
    m.spec->table().addNonPriv(*big);
    m.spec->arm();

    m.store(1, big->elemAddr(0), 77);
    EXPECT_FALSE(m.spec->failure().failed);
    // Evict: the writeback must carry the tag access bits home.
    m.load(1, big->base + 8192 * 64);
    EXPECT_FALSE(m.spec->failure().failed);
    // Another processor now reads the element: the home's merged
    // bits (First=1, NoShr) make this a detected dependence.
    m.load(2, big->elemAddr(0));
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, ForwardedDirtyLineCarriesCombinedBits)
{
    SpecMachine m;
    // Node 1 reads elems 0 and 1 (first accessor of both), then
    // writes elem 0 -> line dirty at node 1 with authoritative tags.
    m.load(1, m.shared->elemAddr(0));
    m.load(1, m.shared->elemAddr(1));
    m.store(1, m.shared->elemAddr(0), 5);
    // Node 2 reads elem 2: 3-hop forward; its fill bits combine the
    // home's view with node 1's tags. Node 2 reading elem 2 is fine;
    // reading elem 0 (written by node 1) must fail.
    uint64_t v = m.load(2, m.shared->elemAddr(2));
    EXPECT_EQ(v, 102u);
    EXPECT_FALSE(m.spec->failure().failed);
    m.load(2, m.shared->elemAddr(0));
    EXPECT_TRUE(m.spec->failure().failed);
}

TEST(SpecUnit, FillBitsDescribeDirectoryState)
{
    SpecMachine m;
    m.load(1, m.shared->elemAddr(0));
    SpecDirUnit &home = m.spec->dirUnit(0);
    MsgBits bits = home.collectFillBits(
        2, m.shared->base, 1);
    ASSERT_EQ(bits.size(), 16u); // 64B line / 4B elements
    // Element 0: First = node 1 -> node 2 decodes OTHER, node 1 OWN.
    EXPECT_EQ(npWireToTag(bits[0], 1).first, TagFirst::Own);
    EXPECT_EQ(npWireToTag(bits[0], 2).first, TagFirst::Other);
    // Untouched elements decode NONE.
    EXPECT_EQ(npWireToTag(bits[5], 2).first, TagFirst::None);
}
