/** @file Unit tests for the global address space / backing store. */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/addr_map.hh"
#include "sim/logging.hh"

using namespace specrt;

namespace
{

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    return cfg;
}

} // namespace

TEST(AddrMap, AllocationsArePageAlignedAndDisjoint)
{
    MachineConfig cfg = smallCfg();
    AddrMap mem(cfg);
    int a = mem.alloc("a", 100, 4, Placement::RoundRobin);
    int b = mem.alloc("b", 5000, 4, Placement::RoundRobin);
    const Region &ra = mem.region(a);
    const Region &rb = mem.region(b);
    EXPECT_EQ(ra.base % cfg.pageBytes, 0u);
    EXPECT_EQ(rb.base % cfg.pageBytes, 0u);
    EXPECT_GE(rb.base, ra.base + cfg.pageBytes); // 100B -> 1 page
    EXPECT_GE(rb.base + rb.bytes, rb.base);
}

TEST(AddrMap, FindLocatesRegions)
{
    AddrMap mem(smallCfg());
    int a = mem.alloc("a", 4096, 4, Placement::RoundRobin);
    int b = mem.alloc("b", 4096, 8, Placement::Fixed, 2);
    const Region &ra = mem.region(a);
    const Region &rb = mem.region(b);
    EXPECT_EQ(mem.find(ra.base), &ra);
    EXPECT_EQ(mem.find(ra.base + 4095), &ra);
    EXPECT_EQ(mem.find(rb.base + 1), &rb);
    EXPECT_EQ(mem.find(rb.base + rb.bytes), nullptr);
    EXPECT_EQ(mem.find(0), nullptr);
}

TEST(AddrMap, RoundRobinHomesCyclePages)
{
    MachineConfig cfg = smallCfg();
    AddrMap mem(cfg);
    int a = mem.alloc("a", 8 * cfg.pageBytes, 4, Placement::RoundRobin);
    const Region &r = mem.region(a);
    for (int page = 0; page < 8; ++page) {
        Addr addr = r.base + page * cfg.pageBytes + 16;
        EXPECT_EQ(mem.homeOf(addr), page % cfg.numProcs);
    }
}

TEST(AddrMap, RoundRobinFirstNodeOffsets)
{
    MachineConfig cfg = smallCfg();
    AddrMap mem(cfg);
    int a = mem.alloc("a", 4 * cfg.pageBytes, 4, Placement::RoundRobin,
                      2);
    const Region &r = mem.region(a);
    EXPECT_EQ(mem.homeOf(r.base), 2);
    EXPECT_EQ(mem.homeOf(r.base + cfg.pageBytes), 3);
    EXPECT_EQ(mem.homeOf(r.base + 2 * cfg.pageBytes), 0);
}

TEST(AddrMap, FixedHomesStayPut)
{
    MachineConfig cfg = smallCfg();
    AddrMap mem(cfg);
    int a = mem.alloc("a", 10 * cfg.pageBytes, 8, Placement::Fixed, 3);
    const Region &r = mem.region(a);
    for (uint64_t off = 0; off < r.bytes; off += cfg.pageBytes)
        EXPECT_EQ(mem.homeOf(r.base + off), 3);
}

TEST(AddrMap, ReadWriteRoundTrip)
{
    AddrMap mem(smallCfg());
    int a = mem.alloc("a", 4096, 4, Placement::RoundRobin);
    const Region &r = mem.region(a);
    mem.write(r.elemAddr(10), 4, 0xdeadbeef);
    EXPECT_EQ(mem.read(r.elemAddr(10), 4), 0xdeadbeefu);
    mem.write(r.elemAddr(11), 4, 0x11223344);
    EXPECT_EQ(mem.read(r.elemAddr(10), 4), 0xdeadbeefu);

    int b = mem.alloc("b", 4096, 8, Placement::RoundRobin);
    const Region &rb = mem.region(b);
    mem.write(rb.elemAddr(5), 8, 0x0123456789abcdefULL);
    EXPECT_EQ(mem.read(rb.elemAddr(5), 8), 0x0123456789abcdefULL);
}

TEST(AddrMap, FreshMemoryIsZero)
{
    AddrMap mem(smallCfg());
    int a = mem.alloc("a", 4096, 4, Placement::RoundRobin);
    const Region &r = mem.region(a);
    for (uint64_t e = 0; e < 16; ++e)
        EXPECT_EQ(mem.read(r.elemAddr(e), 4), 0u);
}

TEST(AddrMap, LineReadWrite)
{
    AddrMap mem(smallCfg());
    int a = mem.alloc("a", 4096, 4, Placement::RoundRobin);
    const Region &r = mem.region(a);
    uint8_t line[64];
    for (int i = 0; i < 64; ++i)
        line[i] = static_cast<uint8_t>(i * 3);
    mem.writeLine(r.base + 64, line, 64);
    uint8_t out[64] = {};
    mem.readLine(r.base + 64, out, 64);
    EXPECT_EQ(std::memcmp(line, out, 64), 0);
    // Word view agrees with byte view.
    EXPECT_EQ(mem.read(r.base + 64, 1), line[0]);
}

TEST(AddrMap, CopyBytesBetweenRegions)
{
    AddrMap mem(smallCfg());
    int a = mem.alloc("a", 1024, 4, Placement::RoundRobin);
    int b = mem.alloc("b", 1024, 4, Placement::Fixed, 1);
    const Region &ra = mem.region(a);
    const Region &rb = mem.region(b);
    for (uint64_t e = 0; e < 256; ++e)
        mem.write(ra.elemAddr(e), 4, e * 7);
    mem.copyBytes(ra.base, rb.base, 1024);
    for (uint64_t e = 0; e < 256; ++e)
        EXPECT_EQ(mem.read(rb.elemAddr(e), 4), e * 7);
}

TEST(AddrMap, RegionPointersSurviveMoreAllocs)
{
    AddrMap mem(smallCfg());
    const Region *first = &mem.region(mem.alloc(
        "r0", 4096, 4, Placement::RoundRobin));
    Addr base = first->base;
    for (int i = 1; i < 200; ++i)
        mem.alloc("r" + std::to_string(i), 4096, 4,
                  Placement::RoundRobin);
    EXPECT_EQ(first->base, base);
    EXPECT_EQ(first->name, "r0");
}

TEST(AddrMap, ClearForgetsEverything)
{
    AddrMap mem(smallCfg());
    mem.alloc("a", 4096, 4, Placement::RoundRobin);
    mem.clear();
    EXPECT_EQ(mem.numRegions(), 0u);
    int a = mem.alloc("a2", 4096, 4, Placement::RoundRobin);
    EXPECT_EQ(mem.region(a).name, "a2");
}
