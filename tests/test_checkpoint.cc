/** @file Tests of checkpointing (dense programs + sparse hash). */

#include <gtest/gtest.h>

#include "mem/dsm.hh"
#include "runtime/checkpoint.hh"

using namespace specrt;

TEST(CopyProgram, EmitsLoadStorePairs)
{
    IterProgram prog;
    genCopyProgram(0, 1, 10, 14, prog);
    ASSERT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog[0].kind, OpKind::Load);
    EXPECT_EQ(prog[0].arrayId, 0);
    EXPECT_EQ(prog[0].index.imm, 10);
    EXPECT_EQ(prog[1].kind, OpKind::Store);
    EXPECT_EQ(prog[1].arrayId, 1);
    EXPECT_EQ(prog[7].index.imm, 13);
}

TEST(SparseCheckpoint, SavesOnlyFirstValue)
{
    SparseCheckpoint cp(4);
    EXPECT_TRUE(cp.saveIfFirst(0x1000, 7));
    EXPECT_FALSE(cp.saveIfFirst(0x1000, 99));
    EXPECT_TRUE(cp.saveIfFirst(0x1004, 8));
    EXPECT_EQ(cp.numSaved(), 2u);
    EXPECT_TRUE(cp.has(0x1000));
    EXPECT_FALSE(cp.has(0x2000));
}

TEST(SparseCheckpoint, RestoreWritesSavedValues)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 4096, 4, Placement::Fixed, 0));
    mem.write(r.elemAddr(3), 4, 111);
    mem.write(r.elemAddr(4), 4, 222);

    SparseCheckpoint cp(4);
    cp.saveIfFirst(r.elemAddr(3), mem.read(r.elemAddr(3), 4));
    mem.write(r.elemAddr(3), 4, 999); // speculative pollution
    mem.write(r.elemAddr(4), 4, 888); // never saved: stays polluted

    cp.restore(mem);
    EXPECT_EQ(mem.read(r.elemAddr(3), 4), 111u);
    EXPECT_EQ(mem.read(r.elemAddr(4), 4), 888u);

    cp.clear();
    EXPECT_EQ(cp.numSaved(), 0u);
}

TEST(DenseSnapshot, CaptureRestoreDiff)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 256, 4, Placement::Fixed, 0));
    for (uint64_t e = 0; e < 64; ++e)
        mem.write(r.elemAddr(e), 4, e);

    DenseSnapshot snap(mem, r);
    EXPECT_EQ(snap.diffBytes(mem), 0u);

    mem.write(r.elemAddr(10), 4, 0xffffffff);
    EXPECT_GT(snap.diffBytes(mem), 0u);

    snap.restore(mem);
    EXPECT_EQ(snap.diffBytes(mem), 0u);
    EXPECT_EQ(mem.read(r.elemAddr(10), 4), 10u);
}

TEST(SparseCheckpoint, RestoreWithZeroDirtyElementsIsANoOp)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 64, 4, Placement::Fixed, 0));
    for (uint64_t e = 0; e < 16; ++e)
        mem.write(r.elemAddr(e), 4, e + 1);

    // A run that never wrote anything leaves an empty checkpoint;
    // restoring it must touch nothing.
    SparseCheckpoint cp(4);
    ASSERT_EQ(cp.numSaved(), 0u);
    cp.restore(mem);
    for (uint64_t e = 0; e < 16; ++e)
        EXPECT_EQ(mem.read(r.elemAddr(e), 4), e + 1);

    DenseSnapshot snap(mem, r);
    snap.restore(mem); // equally untouched
    EXPECT_EQ(snap.diffBytes(mem), 0u);
}

TEST(SparseCheckpoint, DoubleRestoreIsIdempotentAndNotConsuming)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 64, 4, Placement::Fixed, 0));
    mem.write(r.elemAddr(0), 4, 10);
    mem.write(r.elemAddr(1), 4, 20);

    SparseCheckpoint cp(4);
    cp.saveIfFirst(r.elemAddr(0), 10);
    cp.saveIfFirst(r.elemAddr(1), 20);
    mem.write(r.elemAddr(0), 4, 77);
    mem.write(r.elemAddr(1), 4, 88);

    cp.restore(mem);
    cp.restore(mem); // back-to-back: same result, no crash
    EXPECT_EQ(mem.read(r.elemAddr(0), 4), 10u);
    EXPECT_EQ(mem.read(r.elemAddr(1), 4), 20u);

    // The checkpoint is not consumed by restore: a second abort (new
    // pollution after the first restore) is recoverable too.
    mem.write(r.elemAddr(1), 4, 99);
    cp.restore(mem);
    EXPECT_EQ(mem.read(r.elemAddr(1), 4), 20u);
    EXPECT_EQ(cp.numSaved(), 2u);
}

TEST(DenseSnapshot, RestoreAfterPartialCommitUndoesTheCommit)
{
    // An aborted speculative run may already have copied some
    // privatized results out into the shared array (the abort can
    // arrive mid copy-out). The backup restore must undo those
    // partial commits along with ordinary speculative pollution.
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &shared =
        mem.region(mem.alloc("A", 64, 4, Placement::Fixed, 0));
    const Region &priv =
        mem.region(mem.alloc("A_priv", 64, 4, Placement::Fixed, 1));
    for (uint64_t e = 0; e < 16; ++e)
        mem.write(shared.elemAddr(e), 4, e + 1);

    DenseSnapshot backup(mem, shared);

    // Speculative run computes into the private copy...
    for (uint64_t e = 0; e < 16; ++e)
        mem.write(priv.elemAddr(e), 4, 1000 + e);
    // ...and a partial copy-out commits only elements [0, 8) before
    // the failure is detected.
    for (uint64_t e = 0; e < 8; ++e)
        mem.write(shared.elemAddr(e), 4,
                  mem.read(priv.elemAddr(e), 4));
    ASSERT_GT(backup.diffBytes(mem), 0u);

    backup.restore(mem);
    EXPECT_EQ(backup.diffBytes(mem), 0u);
    for (uint64_t e = 0; e < 16; ++e)
        EXPECT_EQ(mem.read(shared.elemAddr(e), 4), e + 1)
            << "element " << e;
}

#include "sim/sim_context.hh"
#include "verify/explorer.hh"

namespace
{

/**
 * One run for the explorer: two nodes store into a checkpointed
 * region with the requester watchdog enabled, then the checkpoint is
 * restored TWICE. The verdict asserts quiescence and that both
 * restores land the same pre-store values -- i.e.\ restore is
 * idempotent and not consuming on every explored schedule, including
 * the ones where the explorer chose to drop (watchdog retry) or
 * duplicate a message.
 */
verify::RunVerdict
checkpointedFaultRun()
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fault.watchdogTimeout = 2000;
    DsmSystem dsm(cfg);
    AddrMap &mem = dsm.memory();
    const Region &r =
        mem.region(mem.alloc("A", 8, 4, Placement::Fixed, 0));
    mem.write(r.elemAddr(0), 4, 7);
    mem.write(r.elemAddr(1), 4, 9);

    SparseCheckpoint cp(4);
    cp.saveIfFirst(r.elemAddr(0), mem.read(r.elemAddr(0), 4));
    cp.saveIfFirst(r.elemAddr(1), mem.read(r.elemAddr(1), 4));

    dsm.cacheCtrl(0).store(r.elemAddr(0), 4, 100, 1);
    dsm.cacheCtrl(1).store(r.elemAddr(1), 4, 200, 1);
    dsm.eventQueue().run();
    bool quiesced = dsm.quiescent();
    dsm.resetMachine(true); // flush dirty lines into memory

    verify::RunVerdict v;
    std::string err;
    if (!quiesced)
        err += "not quiescent after drain; ";
    uint64_t s0 = mem.read(r.elemAddr(0), 4);
    uint64_t s1 = mem.read(r.elemAddr(1), 4);
    if (s0 != 100 || s1 != 200)
        err += "stores lost (" + std::to_string(s0) + ", " +
               std::to_string(s1) + "); ";
    for (int pass = 1; pass <= 2; ++pass) {
        cp.restore(mem);
        if (mem.read(r.elemAddr(0), 4) != 7 ||
            mem.read(r.elemAddr(1), 4) != 9)
            err += "restore pass " + std::to_string(pass) +
                   " did not reproduce the checkpoint; ";
    }
    v.report = err;
    v.ok = err.empty();
    return v;
}

} // namespace

TEST(SparseCheckpoint, RestoreIdempotentUnderExploredFaultSchedules)
{
    // Every single-fault placement (drop-then-retry or duplicate
    // delivery) interleaved with delivery-order choices: the
    // checkpoint contract must hold on all of them.
    verify::ExploreOptions o;
    o.exploreFaults = true;
    o.maxFaults = 1;
    o.maxRuns = 20000;
    verify::ExploreResult res = verify::explore(checkpointedFaultRun, o);
    EXPECT_FALSE(res.violated) << res.report;
    EXPECT_FALSE(res.budgetExhausted) << res.summary();
    EXPECT_GT(res.runs, 1u);
}
