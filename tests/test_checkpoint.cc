/** @file Tests of checkpointing (dense programs + sparse hash). */

#include <gtest/gtest.h>

#include "mem/dsm.hh"
#include "runtime/checkpoint.hh"

using namespace specrt;

TEST(CopyProgram, EmitsLoadStorePairs)
{
    IterProgram prog;
    genCopyProgram(0, 1, 10, 14, prog);
    ASSERT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog[0].kind, OpKind::Load);
    EXPECT_EQ(prog[0].arrayId, 0);
    EXPECT_EQ(prog[0].index.imm, 10);
    EXPECT_EQ(prog[1].kind, OpKind::Store);
    EXPECT_EQ(prog[1].arrayId, 1);
    EXPECT_EQ(prog[7].index.imm, 13);
}

TEST(SparseCheckpoint, SavesOnlyFirstValue)
{
    SparseCheckpoint cp(4);
    EXPECT_TRUE(cp.saveIfFirst(0x1000, 7));
    EXPECT_FALSE(cp.saveIfFirst(0x1000, 99));
    EXPECT_TRUE(cp.saveIfFirst(0x1004, 8));
    EXPECT_EQ(cp.numSaved(), 2u);
    EXPECT_TRUE(cp.has(0x1000));
    EXPECT_FALSE(cp.has(0x2000));
}

TEST(SparseCheckpoint, RestoreWritesSavedValues)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 4096, 4, Placement::Fixed, 0));
    mem.write(r.elemAddr(3), 4, 111);
    mem.write(r.elemAddr(4), 4, 222);

    SparseCheckpoint cp(4);
    cp.saveIfFirst(r.elemAddr(3), mem.read(r.elemAddr(3), 4));
    mem.write(r.elemAddr(3), 4, 999); // speculative pollution
    mem.write(r.elemAddr(4), 4, 888); // never saved: stays polluted

    cp.restore(mem);
    EXPECT_EQ(mem.read(r.elemAddr(3), 4), 111u);
    EXPECT_EQ(mem.read(r.elemAddr(4), 4), 888u);

    cp.clear();
    EXPECT_EQ(cp.numSaved(), 0u);
}

TEST(DenseSnapshot, CaptureRestoreDiff)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    AddrMap mem(cfg);
    const Region &r =
        mem.region(mem.alloc("A", 256, 4, Placement::Fixed, 0));
    for (uint64_t e = 0; e < 64; ++e)
        mem.write(r.elemAddr(e), 4, e);

    DenseSnapshot snap(mem, r);
    EXPECT_EQ(snap.diffBytes(mem), 0u);

    mem.write(r.elemAddr(10), 4, 0xffffffff);
    EXPECT_GT(snap.diffBytes(mem), 0u);

    snap.restore(mem);
    EXPECT_EQ(snap.diffBytes(mem), 0u);
    EXPECT_EQ(mem.read(r.elemAddr(10), 4), 10u);
}
