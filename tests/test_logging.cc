/**
 * @file
 * Failure-path tests for the logging layer: fatal()/panic()/
 * SPECRT_ASSERT must raise FatalError under throw-on-fatal (so the
 * suite can assert on error paths without dying), warn() must not
 * throw, and an installed LogSink must capture everything.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"

using namespace specrt;

namespace
{

class ThrowOnFatalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogThrowOnFatal(true);
        prev = setLogSink([this](LogLevel l, const std::string &m) {
            captured.push_back({l, m});
        });
    }

    void
    TearDown() override
    {
        setLogThrowOnFatal(false);
        setLogSink(prev);
    }

    LogSink prev;
    std::vector<std::pair<LogLevel, std::string>> captured;
};

} // namespace

TEST_F(ThrowOnFatalTest, FatalThrowsFatalError)
{
    try {
        fatal("bad knob value %d", 42);
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Fatal);
        EXPECT_NE(e.message.find("bad knob value 42"),
                  std::string::npos);
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Fatal);
}

TEST_F(ThrowOnFatalTest, PanicThrowsFatalError)
{
    try {
        panic("impossible state %s", "reached");
        FAIL() << "panic() returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Panic);
        EXPECT_NE(e.message.find("impossible state reached"),
                  std::string::npos);
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Panic);
}

TEST_F(ThrowOnFatalTest, FailedAssertThrowsWithLocation)
{
    try {
        SPECRT_ASSERT(1 == 2, "math broke: %d", 3);
        FAIL() << "assert fell through";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Panic);
        EXPECT_NE(e.message.find("1 == 2"), std::string::npos);
        EXPECT_NE(e.message.find("math broke: 3"), std::string::npos);
        EXPECT_NE(e.message.find("test_logging.cc"), std::string::npos);
    }
}

TEST_F(ThrowOnFatalTest, PassingAssertIsSilent)
{
    SPECRT_ASSERT(true, "never emitted");
    EXPECT_TRUE(captured.empty());
}

TEST_F(ThrowOnFatalTest, WarnDoesNotThrow)
{
    warn("questionable %s", "thing");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "questionable thing");
}

TEST_F(ThrowOnFatalTest, InformGoesThroughSink)
{
    inform("status %d%%", 50);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Inform);
    EXPECT_EQ(captured[0].second, "status 50%");
}

TEST(Logging, SinkInstallReturnsPrevious)
{
    std::vector<std::string> a, b;
    LogSink orig = setLogSink(
        [&a](LogLevel, const std::string &m) { a.push_back(m); });
    LogSink prev = setLogSink(
        [&b](LogLevel, const std::string &m) { b.push_back(m); });
    EXPECT_TRUE(prev); // the a-sink came back out
    warn("to b");
    setLogSink(orig);
    EXPECT_TRUE(a.empty());
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], "to b");
}

#ifndef NDEBUG
// Debug builds detect a LogSink that logs (or swaps sinks) during
// emission and abort with a diagnostic instead of deadlocking on the
// non-recursive log mutex. See the threading contract in logging.hh.
TEST(LoggingDeathTest, SinkThatLogsAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            setLogSink([](LogLevel, const std::string &) {
                warn("a sink must not log");
            });
            warn("outer");
        },
        "during log emission");
}

TEST(LoggingDeathTest, SinkThatSwapsSinksAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            setLogSink([](LogLevel, const std::string &) {
                setLogSink(nullptr);
            });
            warn("outer");
        },
        "during log emission");
}
#endif

TEST(Logging, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Fatal), "fatal");
    EXPECT_STREQ(logLevelName(LogLevel::Panic), "panic");
}
