/**
 * @file
 * Failure-path tests for the logging layer: fatal()/panic()/
 * SPECRT_ASSERT must raise FatalError under throw-on-fatal (so the
 * suite can assert on error paths without dying), warn() must not
 * throw, and an installed LogSink must capture everything. Also the
 * instance-scoping contract: sink and throw-flag live in the current
 * SimContext, so scoped contexts and other host threads never share
 * them.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/sim_context.hh"

using namespace specrt;

namespace
{

class ThrowOnFatalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogThrowOnFatal(true);
        prev = setLogSink([this](LogLevel l, const std::string &m) {
            captured.push_back({l, m});
        });
    }

    void
    TearDown() override
    {
        setLogThrowOnFatal(false);
        setLogSink(prev);
    }

    LogSink prev;
    std::vector<std::pair<LogLevel, std::string>> captured;
};

} // namespace

TEST_F(ThrowOnFatalTest, FatalThrowsFatalError)
{
    try {
        fatal("bad knob value %d", 42);
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Fatal);
        EXPECT_NE(e.message.find("bad knob value 42"),
                  std::string::npos);
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Fatal);
}

TEST_F(ThrowOnFatalTest, PanicThrowsFatalError)
{
    try {
        panic("impossible state %s", "reached");
        FAIL() << "panic() returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Panic);
        EXPECT_NE(e.message.find("impossible state reached"),
                  std::string::npos);
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Panic);
}

TEST_F(ThrowOnFatalTest, FailedAssertThrowsWithLocation)
{
    try {
        SPECRT_ASSERT(1 == 2, "math broke: %d", 3);
        FAIL() << "assert fell through";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Panic);
        EXPECT_NE(e.message.find("1 == 2"), std::string::npos);
        EXPECT_NE(e.message.find("math broke: 3"), std::string::npos);
        EXPECT_NE(e.message.find("test_logging.cc"), std::string::npos);
    }
}

TEST_F(ThrowOnFatalTest, PassingAssertIsSilent)
{
    SPECRT_ASSERT(true, "never emitted");
    EXPECT_TRUE(captured.empty());
}

TEST_F(ThrowOnFatalTest, WarnDoesNotThrow)
{
    warn("questionable %s", "thing");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "questionable thing");
}

TEST_F(ThrowOnFatalTest, InformGoesThroughSink)
{
    inform("status %d%%", 50);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Inform);
    EXPECT_EQ(captured[0].second, "status 50%");
}

TEST(Logging, SinkInstallReturnsPrevious)
{
    std::vector<std::string> a, b;
    LogSink orig = setLogSink(
        [&a](LogLevel, const std::string &m) { a.push_back(m); });
    LogSink prev = setLogSink(
        [&b](LogLevel, const std::string &m) { b.push_back(m); });
    EXPECT_TRUE(prev); // the a-sink came back out
    warn("to b");
    setLogSink(orig);
    EXPECT_TRUE(a.empty());
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], "to b");
}

#ifndef NDEBUG
// Debug builds detect a LogSink that logs (or swaps sinks) during
// emission and abort with a diagnostic instead of deadlocking on the
// non-recursive log mutex. See the threading contract in logging.hh.
TEST(LoggingDeathTest, SinkThatLogsAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            setLogSink([](LogLevel, const std::string &) {
                warn("a sink must not log");
            });
            warn("outer");
        },
        "during log emission");
}

TEST(LoggingDeathTest, SinkThatSwapsSinksAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            setLogSink([](LogLevel, const std::string &) {
                setLogSink(nullptr);
            });
            warn("outer");
        },
        "during log emission");
}
#endif

TEST(Logging, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Fatal), "fatal");
    EXPECT_STREQ(logLevelName(LogLevel::Panic), "panic");
}

// --- instance scoping (sim/sim_context.hh) ----------------------------

TEST(LoggingContexts, SinkAndThrowFlagFollowTheActiveContext)
{
    std::vector<std::string> outer_msgs, inner_msgs;
    LogSink orig = setLogSink([&outer_msgs](LogLevel,
                                            const std::string &m) {
        outer_msgs.push_back(m);
    });
    setLogThrowOnFatal(true);

    SimContext inner;
    {
        ScopedSimContext active(inner);
        // The inner context starts pristine: no sink, no throw flag.
        EXPECT_FALSE(SimContext::current().logSink);
        EXPECT_FALSE(SimContext::current().logThrowOnFatal);
        setLogSink([&inner_msgs](LogLevel, const std::string &m) {
            inner_msgs.push_back(m);
        });
        warn("from inner");
    }
    warn("from outer");

    ASSERT_EQ(inner_msgs.size(), 1u);
    EXPECT_EQ(inner_msgs[0], "from inner");
    ASSERT_EQ(outer_msgs.size(), 1u);
    EXPECT_EQ(outer_msgs[0], "from outer");
    EXPECT_TRUE(SimContext::current().logThrowOnFatal);

    setLogThrowOnFatal(false);
    setLogSink(orig);
}

TEST(LoggingContexts, FatalInAScopedContextThrowsOnlyThere)
{
    SimContext trapping;
    trapping.logThrowOnFatal = true;
    bool threw = false;
    {
        ScopedSimContext active(trapping);
        setLogSink([](LogLevel, const std::string &) {});
        try {
            fatal("contained failure");
        } catch (const FatalError &e) {
            threw = true;
            EXPECT_NE(e.message.find("contained failure"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(threw);
    // The surrounding context's flag is untouched (a fatal() here
    // would terminate the test, so just inspect the flag).
    EXPECT_FALSE(SimContext::current().logThrowOnFatal);
}

TEST(LoggingContexts, ThreadsGetTheirOwnDefaultContext)
{
    // A sink installed on this thread's context must be invisible to
    // a fresh host thread, whose default context logs to stderr
    // (captured here via its own sink).
    std::vector<std::string> mine, theirs;
    LogSink orig = setLogSink(
        [&mine](LogLevel, const std::string &m) { mine.push_back(m); });

    std::thread other([&theirs] {
        EXPECT_FALSE(SimContext::current().logSink);
        setLogSink([&theirs](LogLevel, const std::string &m) {
            theirs.push_back(m);
        });
        warn("other thread");
    });
    other.join();
    warn("main thread");

    setLogSink(orig);
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0], "main thread");
    ASSERT_EQ(theirs.size(), 1u);
    EXPECT_EQ(theirs[0], "other thread");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, ReentrantSinkInAScopedContextAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            SimContext ctx;
            ScopedSimContext active(ctx);
            setLogSink([](LogLevel, const std::string &) {
                warn("sinks must not log, per-context or not");
            });
            warn("outer");
        },
        "during log emission");
}
#endif
