/**
 * @file
 * Tests of the non-privatization algorithm's pure transition logic
 * (paper Figures 4, 6, 7), branch by branch, plus a property test:
 * replaying any access trace through the directory-side logic yields
 * PASS iff the oracle says every element is read-only or
 * single-processor.
 */

#include <gtest/gtest.h>

#include <map>

#include "spec/nonpriv.hh"
#include "spec/oracle.hh"
#include "sim/random.hh"

using namespace specrt;

// ---- cache side: Fig. 6(a) ------------------------------------------

TEST(NPCache, FirstReadSetsOwnAndInformsHome)
{
    NPTagBits t;
    NPCacheResult r = npCacheRead(t, false);
    EXPECT_FALSE(r.fail);
    EXPECT_TRUE(r.sendFirstUpdate);
    EXPECT_EQ(t.first, TagFirst::Own);
}

TEST(NPCache, FirstReadOnDirtyLineSkipsMessage)
{
    NPTagBits t;
    NPCacheResult r = npCacheRead(t, true);
    EXPECT_FALSE(r.fail);
    EXPECT_FALSE(r.sendFirstUpdate);
    EXPECT_EQ(t.first, TagFirst::Own);
}

TEST(NPCache, RepeatReadByOwnerIsSilent)
{
    NPTagBits t;
    npCacheRead(t, false);
    NPCacheResult r = npCacheRead(t, false);
    EXPECT_FALSE(r.fail);
    EXPECT_FALSE(r.sendFirstUpdate);
    EXPECT_FALSE(r.sendROnlyUpdate);
}

TEST(NPCache, ReadAfterOtherReaderSetsROnly)
{
    NPTagBits t;
    t.first = TagFirst::Other;
    NPCacheResult r = npCacheRead(t, false);
    EXPECT_FALSE(r.fail);
    EXPECT_TRUE(r.sendROnlyUpdate);
    EXPECT_TRUE(t.rOnly);
    // Second read: ROnly already set, no more traffic.
    NPCacheResult r2 = npCacheRead(t, false);
    EXPECT_FALSE(r2.sendROnlyUpdate);
}

TEST(NPCache, ReadOfOtherWrittenElementFails)
{
    NPTagBits t;
    t.first = TagFirst::Other;
    t.noShr = true;
    NPCacheResult r = npCacheRead(t, false);
    EXPECT_TRUE(r.fail);
}

// ---- cache side: Fig. 6(c) dirty-write path -------------------------

TEST(NPCache, DirtyWriteSetsOwnNoShrSilently)
{
    NPTagBits t;
    NPCacheResult r = npCacheWriteDirty(t);
    EXPECT_FALSE(r.fail);
    EXPECT_EQ(t.first, TagFirst::Own);
    EXPECT_TRUE(t.noShr);
}

TEST(NPCache, DirtyWriteAfterOtherFails)
{
    NPTagBits t;
    t.first = TagFirst::Other;
    EXPECT_TRUE(npCacheWriteDirty(t).fail);
    NPTagBits t2;
    t2.rOnly = true;
    EXPECT_TRUE(npCacheWriteDirty(t2).fail);
}

// ---- cache side: fills and Fig. 7(g) --------------------------------

TEST(NPCache, LocalApplyIsIdempotent)
{
    NPTagBits t;
    t.first = TagFirst::Own;
    t.noShr = true;
    NPCacheResult r = npCacheLocalApply(t, true);
    EXPECT_FALSE(r.fail);
    EXPECT_EQ(t.first, TagFirst::Own);
    EXPECT_TRUE(t.noShr);
}

TEST(NPCache, LocalApplyReadPromotesNoneToOwn)
{
    NPTagBits t;
    EXPECT_FALSE(npCacheLocalApply(t, false).fail);
    EXPECT_EQ(t.first, TagFirst::Own);
    EXPECT_FALSE(t.noShr);
}

TEST(NPCache, LocalApplyWriteOfForeignElementFails)
{
    NPTagBits t;
    t.first = TagFirst::Other;
    EXPECT_TRUE(npCacheLocalApply(t, true).fail);
}

TEST(NPCache, FirstUpdateFailBounce)
{
    // Fig. 7(g): loser of a First_update race.
    NPTagBits t;
    t.first = TagFirst::Own;
    NPCacheResult r = npCacheFirstUpdateFail(t);
    EXPECT_FALSE(r.fail);
    EXPECT_EQ(t.first, TagFirst::Other);
    EXPECT_TRUE(t.rOnly);
}

TEST(NPCache, FirstUpdateFailAfterWriteFails)
{
    // The loser not only read but also wrote before learning it
    // lost the race.
    NPTagBits t;
    t.first = TagFirst::Own;
    t.noShr = true;
    EXPECT_TRUE(npCacheFirstUpdateFail(t).fail);
}

// ---- directory side: Fig. 6(b)/(d) ----------------------------------

TEST(NPDir, ReadSetsFirstThenROnly)
{
    NPDirBits d;
    EXPECT_FALSE(npDirRead(d, 3).fail);
    EXPECT_EQ(d.first, 3);
    EXPECT_FALSE(d.rOnly);
    EXPECT_FALSE(npDirRead(d, 5).fail);
    EXPECT_TRUE(d.rOnly);
}

TEST(NPDir, ReadOfForeignWrittenElementFails)
{
    NPDirBits d;
    EXPECT_FALSE(npDirWrite(d, 2).fail);
    EXPECT_TRUE(d.noShr);
    EXPECT_TRUE(npDirRead(d, 4).fail);
    // The writer itself may keep reading.
    NPDirBits d2;
    npDirWrite(d2, 2);
    EXPECT_FALSE(npDirRead(d2, 2).fail);
}

TEST(NPDir, WriteAfterForeignAccessFails)
{
    NPDirBits d;
    npDirRead(d, 1);
    EXPECT_TRUE(npDirWrite(d, 2).fail);

    NPDirBits d2;
    npDirRead(d2, 1);
    npDirRead(d2, 2); // sets ROnly
    EXPECT_TRUE(npDirWrite(d2, 1).fail); // even the first reader
}

TEST(NPDir, SingleProcReadWriteSequencePasses)
{
    NPDirBits d;
    EXPECT_FALSE(npDirRead(d, 7).fail);
    EXPECT_FALSE(npDirWrite(d, 7).fail);
    EXPECT_FALSE(npDirRead(d, 7).fail);
    EXPECT_FALSE(npDirWrite(d, 7).fail);
}

// ---- directory side: update races, Fig. 7(f)/(h) --------------------

TEST(NPDir, FirstUpdateRaceBouncesLoser)
{
    NPDirBits d;
    EXPECT_FALSE(npDirFirstUpdate(d, 1).sendFirstUpdateFail);
    NPDirResult r = npDirFirstUpdate(d, 2);
    EXPECT_FALSE(r.fail);
    EXPECT_TRUE(r.sendFirstUpdateFail);
    EXPECT_TRUE(d.rOnly);
    EXPECT_EQ(d.first, 1);
}

TEST(NPDir, FirstUpdateVersusWriteRaceFails)
{
    NPDirBits d;
    npDirWrite(d, 1);
    EXPECT_TRUE(npDirFirstUpdate(d, 2).fail);
    // From the writer itself (in-order pairs make this impossible in
    // the machine, but the logic treats it as benign).
    NPDirBits d2;
    npDirWrite(d2, 1);
    EXPECT_FALSE(npDirFirstUpdate(d2, 1).fail);
}

TEST(NPDir, ROnlyUpdateRaceIsIgnored)
{
    NPDirBits d;
    npDirFirstUpdate(d, 1);
    EXPECT_FALSE(npDirROnlyUpdate(d, 2).fail);
    EXPECT_FALSE(npDirROnlyUpdate(d, 3).fail); // duplicate: ignored
    EXPECT_TRUE(d.rOnly);
}

TEST(NPDir, ROnlyUpdateVersusWriteRaceFails)
{
    NPDirBits d;
    npDirWrite(d, 1);
    EXPECT_TRUE(npDirROnlyUpdate(d, 2).fail);
}

// ---- wire encoding and merge ----------------------------------------

TEST(NPWireCodec, RoundTripsThroughPack)
{
    NPDirBits d;
    d.first = 5;
    d.noShr = true;
    uint32_t wire = npPackDir(d);
    NPTagBits own = npWireToTag(wire, 5);
    EXPECT_EQ(own.first, TagFirst::Own);
    EXPECT_TRUE(own.noShr);
    NPTagBits other = npWireToTag(wire, 6);
    EXPECT_EQ(other.first, TagFirst::Other);
}

TEST(NPWireCodec, TagPackCarriesIdentityForOwn)
{
    NPTagBits t;
    t.first = TagFirst::Own;
    t.rOnly = true;
    uint32_t wire = npPackTag(t, 9);
    NPWire w = npUnpack(wire);
    EXPECT_EQ(w.firstCode, 10u);
    EXPECT_TRUE(w.rOnly);

    t.first = TagFirst::Other;
    EXPECT_EQ(npUnpack(npPackTag(t, 9)).firstCode, npWireFirstOther);
}

TEST(NPWireCodec, CombinePrefersRealIdentity)
{
    // Owner says OTHER (identity unknown); home knows it is node 3.
    NPTagBits t;
    t.first = TagFirst::Other;
    NPDirBits d;
    d.first = 3;
    uint32_t combined = npCombineWire(npPackTag(t, 7), npPackDir(d));
    EXPECT_EQ(npUnpack(combined).firstCode, 4u);
    // The requester (node 3) recognizes itself.
    EXPECT_EQ(npWireToTag(combined, 3).first, TagFirst::Own);
}

TEST(NPWireCodec, CombineOrsFlags)
{
    NPTagBits t;
    t.first = TagFirst::Own;
    t.noShr = true;
    NPDirBits d;
    d.rOnly = true;
    uint32_t combined = npCombineWire(npPackTag(t, 2), npPackDir(d));
    NPWire w = npUnpack(combined);
    EXPECT_TRUE(w.noShr);
    EXPECT_TRUE(w.rOnly);
    EXPECT_EQ(w.firstCode, 3u);
}

TEST(NPDirMerge, OwnBitsInstallIdentity)
{
    NPDirBits d;
    NPTagBits t;
    t.first = TagFirst::Own;
    t.noShr = true;
    EXPECT_FALSE(npDirMergeDirty(d, 4, npPackTag(t, 4)).fail);
    EXPECT_EQ(d.first, 4);
    EXPECT_TRUE(d.noShr);
}

TEST(NPDirMerge, ContradictoryFirstFails)
{
    NPDirBits d;
    d.first = 2;
    NPTagBits t;
    t.first = TagFirst::Own;
    EXPECT_TRUE(npDirMergeDirty(d, 4, npPackTag(t, 4)).fail);
}

TEST(NPDirMerge, WrittenPlusReadSharedFails)
{
    NPDirBits d;
    d.first = 2;
    d.rOnly = true;
    NPTagBits t;
    t.first = TagFirst::Other;
    t.noShr = true;
    EXPECT_TRUE(npDirMergeDirty(d, 4, npPackTag(t, 4)).fail);
}

// ---- property: sequential replay == oracle --------------------------

namespace
{

/** Replay a trace through the directory logic (the serialization
 *  point); report whether any step fails. */
bool
replayPasses(const std::vector<AccessEvent> &trace)
{
    std::map<uint64_t, NPDirBits> dir;
    for (const AccessEvent &e : trace) {
        NPDirResult r = e.isWrite
                            ? npDirWrite(dir[e.elem], e.proc)
                            : npDirRead(dir[e.elem], e.proc);
        if (r.fail)
            return false;
    }
    return true;
}

struct NPPropParams
{
    uint64_t seed;
    int procs;
    int elems;
    int events;
    double write_prob;
};

class NPProperty : public ::testing::TestWithParam<NPPropParams>
{
};

} // namespace

TEST_P(NPProperty, ReplayMatchesOracle)
{
    NPPropParams p = GetParam();
    Rng rng(p.seed);
    for (int round = 0; round < 50; ++round) {
        std::vector<AccessEvent> trace;
        for (int i = 0; i < p.events; ++i) {
            AccessEvent e;
            e.proc = static_cast<NodeId>(rng.nextBounded(p.procs));
            e.iter = static_cast<IterNum>(i + 1);
            e.elem = rng.nextBounded(p.elems);
            e.isWrite = rng.nextBool(p.write_prob);
            trace.push_back(e);
        }
        EXPECT_EQ(replayPasses(trace), Oracle::nonPrivParallel(trace))
            << "seed " << p.seed << " round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NPProperty,
    ::testing::Values(
        NPPropParams{1, 2, 4, 12, 0.3},   // heavy collisions
        NPPropParams{2, 4, 64, 40, 0.3},  // medium
        NPPropParams{3, 8, 256, 60, 0.1}, // mostly reads
        NPPropParams{4, 8, 256, 60, 0.9}, // mostly writes
        NPPropParams{5, 16, 1024, 100, 0.0}, // read-only: must pass
        NPPropParams{6, 3, 8, 30, 0.5}));

TEST(NPProperty, ReadOnlyAlwaysPasses)
{
    std::vector<AccessEvent> trace;
    for (int i = 0; i < 100; ++i)
        trace.push_back({static_cast<NodeId>(i % 8), i + 1,
                         static_cast<uint64_t>(i % 5), false, 0});
    EXPECT_TRUE(replayPasses(trace));
}

TEST(NPProperty, SingleProcessorAlwaysPasses)
{
    std::vector<AccessEvent> trace;
    Rng rng(99);
    for (int i = 0; i < 200; ++i)
        trace.push_back({3, i + 1, rng.nextBounded(16),
                         rng.nextBool(0.5), 0});
    EXPECT_TRUE(replayPasses(trace));
}
