/**
 * @file
 * Tests for the simulation-campaign runner (sim/campaign.hh) and the
 * instance scoping underneath it (sim/sim_context.hh): work-stealing
 * completeness, per-job failure trapping, serial-vs-parallel
 * determinism of stats, trace, and timeline output, per-context RNG
 * streams, and log-sink isolation across concurrent contexts.
 *
 * Rule observed throughout: no gtest assertions inside campaign jobs
 * (they run on worker threads); jobs record into id-indexed slots and
 * the main thread asserts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/loop_exec.hh"
#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"
#include "sim/trace_export.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/** Options pinned to a worker count (tests must not depend on the
 *  host's core count or SPECRT_JOBS). */
campaign::Options
withJobs(unsigned jobs, uint64_t base_seed = 0)
{
    campaign::Options o;
    o.jobs = jobs;
    o.baseSeed = base_seed;
    return o;
}

} // namespace

// --- seeds and RNG streams --------------------------------------------

TEST(CampaignSeed, JobSeedIsStablePerJobAndDistinct)
{
    EXPECT_EQ(campaign::jobSeed(1, 0), campaign::jobSeed(1, 0));
    EXPECT_NE(campaign::jobSeed(1, 0), campaign::jobSeed(1, 1));
    EXPECT_NE(campaign::jobSeed(1, 0), campaign::jobSeed(2, 0));
}

TEST(SimContextRng, NamedStreamsAreReproducibleAndIndependent)
{
    SimContext a(42);
    SimContext b(42);
    // Same (seed, name): same sequence.
    EXPECT_EQ(a.rng("sched").next(), b.rng("sched").next());
    EXPECT_EQ(a.rng("sched").next(), b.rng("sched").next());
    // Different names decorrelate.
    SimContext c(42);
    SimContext d(42);
    EXPECT_NE(c.rng("sched").next(), d.rng("fault").next());
    // reseed() rewinds every stream.
    SimContext e(42);
    uint64_t first = e.rng("x").next();
    e.rng("x").next();
    e.reseed(42);
    EXPECT_EQ(e.rng("x").next(), first);
}

// --- pool correctness -------------------------------------------------

TEST(CampaignPool, RunsEveryJobExactlyOnce)
{
    const size_t n = 37;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    auto outcomes = campaign::run(
        n, [&](size_t id, SimContext &) { ++hits[id]; }, withJobs(4));
    ASSERT_EQ(outcomes.size(), n);
    EXPECT_TRUE(campaign::allOk(outcomes));
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "job " << i;
        EXPECT_EQ(outcomes[i].id, i);
    }
}

TEST(CampaignPool, ZeroJobsIsANoOp)
{
    auto outcomes = campaign::run(
        0, [](size_t, SimContext &) { FAIL(); }, withJobs(2));
    EXPECT_TRUE(outcomes.empty());
}

TEST(CampaignPool, MoreWorkersThanJobsStillCompletes)
{
    std::vector<std::atomic<int>> hits(2);
    for (auto &h : hits)
        h = 0;
    auto outcomes = campaign::run(
        2, [&](size_t id, SimContext &) { ++hits[id]; }, withJobs(16));
    EXPECT_TRUE(campaign::allOk(outcomes));
    EXPECT_EQ(hits[0], 1);
    EXPECT_EQ(hits[1], 1);
}

TEST(CampaignPool, DefaultJobsHonorsTheEnvironment)
{
    setenv("SPECRT_JOBS", "3", 1);
    EXPECT_EQ(campaign::defaultJobs(), 3u);
    // Garbage falls back to the host's core count (with a warning we
    // swallow so the test log stays clean).
    setenv("SPECRT_JOBS", "banana", 1);
    LogSink old = setLogSink([](LogLevel, const std::string &) {});
    EXPECT_GE(campaign::defaultJobs(), 1u);
    setLogSink(old);
    unsetenv("SPECRT_JOBS");
    EXPECT_GE(campaign::defaultJobs(), 1u);
}

// --- failure isolation ------------------------------------------------

TEST(CampaignFailure, FatalInOneJobIsTrappedAndAttributed)
{
    auto outcomes = campaign::run(
        8,
        [](size_t id, SimContext &) {
            if (id == 3)
                fatal("job %zu went boom", id);
        },
        withJobs(4));
    EXPECT_FALSE(campaign::allOk(outcomes));
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (i == 3) {
            EXPECT_FALSE(outcomes[i].ok);
            EXPECT_NE(outcomes[i].error.find("boom"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
        }
    }
    std::string report = campaign::describeFailures(outcomes);
    EXPECT_NE(report.find("job 3"), std::string::npos);
    EXPECT_NE(report.find("boom"), std::string::npos);
    // This thread's context is untouched by the jobs' throw-on-fatal.
    EXPECT_FALSE(SimContext::current().logThrowOnFatal);
}

TEST(CampaignFailure, ExceptionInAJobIsCaptured)
{
    auto outcomes = campaign::run(
        4,
        [](size_t id, SimContext &) {
            if (id == 1)
                throw std::runtime_error("kaput");
        },
        withJobs(2));
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].error, "kaput");
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_TRUE(outcomes[3].ok);
}

// --- determinism: serial vs parallel ----------------------------------

namespace
{

/**
 * One campaign job for the determinism test: run a seeded random
 * workload under HW speculation with this context's trace ring and
 * metric timeline on, and render everything observable -- verdict,
 * final memory, the machine's full stats snapshot, the trace
 * summary, and the timeline CSV + hot summary -- into one string.
 * Any dependence on worker identity or scheduling order shows up as
 * a byte difference between campaign configurations.
 */
std::string
determinismJob(size_t id)
{
    trace::buffer().enable(1u << 12);
    timeline::current().enable(200);
    RandomLoopParams rp{24, 48, 3, 0.5, 48,
                        (id % 2) ? TestType::Priv : TestType::NonPriv,
                        2000 + id};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();

    std::ostringstream os;
    os << "job " << id << " passed=" << r.passed
       << " iters=" << r.itersExecuted << " ticks=" << r.totalTicks
       << "\nmem:";
    const Region *a = exec.sharedRegion(0);
    for (uint64_t e = 0; e < a->numElems(); ++e)
        os << ' ' << exec.machine().memory().read(a->elemAddr(e), 4);
    StatSnapshot snap;
    exec.machine().snapshot(snap);
    os << "\nstats:\n";
    for (const auto &kv : snap)
        os << "  " << kv.first << " = " << std::setprecision(17)
           << kv.second << "\n";
    os << "trace:\n" << trace::textSummary(trace::buffer());
    os << "timeline:\n" << timeline::current().csv();
    os << timeline::current().hotSummary();
    return os.str();
}

} // namespace

TEST(CampaignDeterminism, SerialAndParallelRunsAreByteIdentical)
{
    const size_t n = 8;
    std::vector<std::string> serial(n), parallel(n);
    auto so = campaign::run(
        n,
        [&](size_t id, SimContext &) { serial[id] = determinismJob(id); },
        withJobs(1, 99));
    auto po = campaign::run(
        n,
        [&](size_t id, SimContext &) {
            parallel[id] = determinismJob(id);
        },
        withJobs(4, 99));
    ASSERT_TRUE(campaign::allOk(so)) << campaign::describeFailures(so);
    ASSERT_TRUE(campaign::allOk(po)) << campaign::describeFailures(po);
    for (size_t i = 0; i < n; ++i) {
        ASSERT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
    }
    // And re-running the parallel campaign reproduces itself.
    std::vector<std::string> again(n);
    campaign::run(
        n,
        [&](size_t id, SimContext &) { again[id] = determinismJob(id); },
        withJobs(4, 99));
    EXPECT_EQ(again, parallel);
}

// --- logging isolation across concurrent contexts ---------------------

TEST(CampaignLogging, ConcurrentContextsNeverShareSinks)
{
    // Two jobs pinned to two workers, each installing its own sink
    // and logging while (best-effort) overlapping with the other.
    // Every message must land in its own job's capture, intact.
    const int msgs = 200;
    std::vector<std::vector<std::string>> captured(2);
    std::atomic<int> arrived{0};
    auto outcomes = campaign::run(
        2,
        [&](size_t id, SimContext &) {
            setLogSink([&captured, id](LogLevel,
                                       const std::string &msg) {
                captured[id].push_back(msg);
            });
            ++arrived;
            // Wait (bounded) for the other job so the two contexts
            // really log concurrently when two workers exist.
            for (int spin = 0; arrived.load() < 2 && spin < 10000;
                 ++spin)
                std::this_thread::yield();
            for (int k = 0; k < msgs; ++k)
                warn("job %zu message %d", id, k);
        },
        withJobs(2));
    ASSERT_TRUE(campaign::allOk(outcomes))
        << campaign::describeFailures(outcomes);
    for (size_t id = 0; id < 2; ++id) {
        ASSERT_EQ(captured[id].size(), static_cast<size_t>(msgs))
            << "job " << id;
        for (int k = 0; k < msgs; ++k) {
            std::ostringstream want;
            want << "job " << id << " message " << k;
            EXPECT_EQ(captured[id][k], want.str());
        }
    }
    // The main thread's context never saw the jobs' sinks.
    EXPECT_FALSE(SimContext::current().logSink);
}

TEST(CampaignLogging, JobTraceRingsStayPrivate)
{
    // A job that traces must not leak records into the main thread's
    // ring, and vice versa.
    trace::buffer().disable();
    trace::buffer().clear();
    std::vector<uint64_t> recorded(3, 0);
    auto outcomes = campaign::run(
        3,
        [&](size_t id, SimContext &ctx) {
            trace::buffer().enable(64);
            trace::TraceRecord r;
            r.op = trace::TraceOp::IterBegin;
            for (size_t k = 0; k <= id; ++k)
                trace::buffer().emit(r);
            recorded[id] = ctx.traceBuffer().recorded();
        },
        withJobs(2));
    ASSERT_TRUE(campaign::allOk(outcomes));
    for (size_t id = 0; id < 3; ++id)
        EXPECT_EQ(recorded[id], id + 1);
    EXPECT_EQ(trace::buffer().recorded(), 0u);
    EXPECT_FALSE(trace::enabled());
}
