/**
 * @file
 * Stress tests: heavily contended lines, concurrent processor
 * activity through the full processor model, epoch barriers, and
 * end-to-end determinism under every scheduler.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "runtime/processor.hh"
#include "runtime/scheduler.hh"
#include "sim/campaign.hh"
#include "sim/sim_context.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/**
 * Each processor owns a disjoint element set, but neighbouring
 * processors' elements interleave within cache lines -- maximal
 * false sharing. Every element's final value is deterministic (a
 * single writer), whatever the interleaving of the line ping-pong.
 */
class FalseSharingTorture : public Workload
{
  public:
    FalseSharingTorture(int procs, int rounds)
        : procs(procs), rounds(rounds)
    {}

    std::string name() const override { return "torture"; }

    std::vector<ArrayDecl>
    arrays() const override
    {
        return {{"A", static_cast<uint64_t>(procs) * 64, 4,
                 TestType::None, true, false}};
    }

    IterNum numIters() const override { return procs * rounds; }

    void
    initData(AddrMap &mem,
             const std::vector<const Region *> &r) override
    {
        for (uint64_t e = 0; e < r[0]->numElems(); ++e)
            mem.write(r[0]->elemAddr(e), 4, 7);
    }

    void
    genIteration(IterNum i, IterProgram &out) override
    {
        // Iteration i belongs to "lane" (i-1) % procs; it updates 64
        // elements strided by `procs` so lanes interleave in lines.
        int64_t lane = (i - 1) % procs;
        for (int64_t k = 0; k < 64; ++k) {
            int64_t e = k * procs + lane;
            out.push_back(opLoad(1, 0, e));
            out.push_back(opImm(2, i));
            out.push_back(opAlu(1, AluOp::Add, 1, 2));
            out.push_back(opStore(0, e, 1));
        }
    }

  private:
    int procs;
    int rounds;
};

} // namespace

TEST(Torture, FalseSharingPingPongKeepsDataIntact)
{
    const int procs = 8, rounds = 4;
    FalseSharingTorture loop(procs, rounds);
    MachineConfig cfg;
    cfg.numProcs = procs;

    // Lane l executes iterations l+1, l+1+procs, ...: block-cyclic
    // with block 1 maps lane l to processor l, maximizing line
    // ping-pong while keeping each element single-writer.
    ExecConfig xc;
    xc.mode = ExecMode::Ideal;
    xc.sched = SchedPolicy::BlockCyclic;
    xc.blockIters = 1;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.itersExecuted,
              static_cast<uint64_t>(procs) * rounds);

    // Element (k*procs + lane) accumulated its lane's iterations.
    const Region *a = exec.sharedRegion(0);
    for (int64_t lane = 0; lane < procs; ++lane) {
        uint64_t expect = 7;
        for (int round = 0; round < rounds; ++round)
            expect += static_cast<uint64_t>(lane + 1 + round * procs);
        for (int64_t k = 0; k < 64; ++k) {
            ASSERT_EQ(exec.machine().memory().read(
                          a->elemAddr(k * procs + lane), 4),
                      expect)
                << "lane " << lane << " k " << k;
        }
    }
}

TEST(Torture, EpochBarriersPreserveSemantics)
{
    // Running the loop in time-stamp epochs must not change results
    // or verdicts, only add barrier time.
    Fig1CLoop loop(256, 1024, true, 11);
    MachineConfig cfg;
    cfg.numProcs = 8;

    ExecConfig plain;
    plain.mode = ExecMode::HW;
    LoopExecutor pe(cfg, loop, plain);
    RunResult pr = pe.run();

    ExecConfig epochs = plain;
    epochs.tsBits = 5; // barrier every 32 of 256 iterations
    LoopExecutor ee(cfg, loop, epochs);
    RunResult er = ee.run();

    EXPECT_TRUE(pr.passed);
    EXPECT_TRUE(er.passed);
    EXPECT_EQ(er.itersExecuted, pr.itersExecuted);
    EXPECT_GT(er.phases.loop, pr.phases.loop); // barriers cost time
    EXPECT_GT(er.agg.sync, pr.agg.sync);

    const Region *pa = pe.sharedRegion(0);
    const Region *ea = ee.sharedRegion(0);
    for (uint64_t e = 0; e < pa->numElems(); ++e) {
        ASSERT_EQ(pe.machine().memory().read(pa->elemAddr(e), 4),
                  ee.machine().memory().read(ea->elemAddr(e), 4));
    }
}

TEST(Torture, EpochBarriersStillAbortOnDependence)
{
    Fig1ALoop loop(128);
    MachineConfig cfg;
    cfg.numProcs = 8;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.tsBits = 4;
    xc.blockIters = 2;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run();
    EXPECT_FALSE(r.passed);
    EXPECT_LT(r.itersExecuted, 128u);
}

TEST(Torture, AllSchedulersAgreeOnResults)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    Fig1CLoop loop(128, 512, true, 13);

    std::vector<uint64_t> reference;
    for (SchedPolicy pol :
         {SchedPolicy::StaticChunk, SchedPolicy::BlockCyclic,
          SchedPolicy::Dynamic}) {
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = pol;
        xc.blockIters = 3;
        LoopExecutor exec(cfg, loop, xc);
        RunResult r = exec.run();
        ASSERT_TRUE(r.passed) << schedPolicyName(pol);
        const Region *a = exec.sharedRegion(0);
        std::vector<uint64_t> got(a->numElems());
        for (uint64_t e = 0; e < got.size(); ++e)
            got[e] = exec.machine().memory().read(a->elemAddr(e), 4);
        if (reference.empty())
            reference = got;
        else
            EXPECT_EQ(got, reference) << schedPolicyName(pol);
    }
}

TEST(Torture, FiftySeededFaultSchedulesMatchSerial)
{
    // Fifty reproducible fault schedules (drop + duplicate + jitter)
    // against random NonPriv/Priv workloads: the watchdog/retry
    // machinery must always converge to the fault-free serial answer
    // with the invariant checker silent. When a schedule defeats the
    // retry budget anyway, the ladder degrades instead of dying.
    //
    // The fifty schedules fan out through the campaign runner -- each
    // seed is one isolated job on a pool of workers. Jobs report
    // divergence as strings (no gtest off the main thread).
    const size_t seeds = 50;
    std::vector<std::string> errors(seeds);
    campaign::Options opts;
    opts.jobs = 4;
    auto outcomes = campaign::run(
        seeds,
        [&](size_t s, SimContext &) {
            std::ostringstream err;
            RandomLoopParams rp{48, 64, 3, 0.7, 64,
                                (s % 2) ? TestType::Priv
                                        : TestType::NonPriv,
                                1000 + s};
            RandomLoop loop(rp);
            MachineConfig cfg;
            cfg.numProcs = 4;

            ExecConfig sxc;
            sxc.mode = ExecMode::Serial;
            LoopExecutor se(cfg, loop, sxc);
            se.run();

            cfg.fault.seed = s;
            cfg.fault.dropProb = 0.02;
            cfg.fault.dupProb = 0.05;
            cfg.fault.jitterProb = 0.2;
            cfg.fault.jitterMaxCycles = 150;
            cfg.fault.watchdogTimeout = 3000;
            cfg.fault.watchdogMaxRetries = 6;

            ExecConfig xc;
            xc.mode = ExecMode::HW;
            xc.checkInvariants = true;
            LadderOutcome out = runWithDegradation(cfg, loop, xc);
            if (out.result.infraFailed)
                err << "seed " << s << " infra failure: "
                    << out.result.infraReason << "\n";
            if (out.result.invariantViolations != 0)
                err << "seed " << s << ": "
                    << out.result.invariantViolations
                    << " invariant violations\n";

            const Region *sa = se.sharedRegion(0);
            const Region *ha = out.exec->sharedRegion(0);
            for (uint64_t e = 0; e < sa->numElems(); ++e) {
                uint64_t got = out.exec->machine().memory().read(
                    ha->elemAddr(e), 4);
                uint64_t want =
                    se.machine().memory().read(sa->elemAddr(e), 4);
                if (got != want)
                    err << "seed " << s << " elem " << e << ": got "
                        << got << " want " << want << "\n";
            }
            errors[s] = err.str();
        },
        opts);
    ASSERT_TRUE(campaign::allOk(outcomes))
        << campaign::describeFailures(outcomes);
    for (size_t s = 0; s < seeds; ++s)
        EXPECT_TRUE(errors[s].empty()) << errors[s];
}

TEST(Torture, WideMachineStillCoherent)
{
    // 32 nodes hammering a privatization workload.
    MachineConfig cfg;
    cfg.numProcs = 32;
    RandomLoopParams rp{64, 32, 3, 0.7, 32, TestType::Priv, 77};
    RandomLoop loop(rp);

    ExecConfig sxc;
    sxc.mode = ExecMode::Serial;
    LoopExecutor se(cfg, loop, sxc);
    se.run();

    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor he(cfg, loop, xc);
    RunResult r = he.run();
    EXPECT_EQ(r.passed, Oracle::privParallel(loop.expectedTrace()));

    const Region *sa = se.sharedRegion(0);
    const Region *ha = he.sharedRegion(0);
    for (uint64_t e = 0; e < sa->numElems(); ++e) {
        ASSERT_EQ(he.machine().memory().read(ha->elemAddr(e), 4),
                  se.machine().memory().read(sa->elemAddr(e), 4));
    }
}
