/**
 * @file
 * Tests of the dependence oracle and the reference LRPD software
 * test, centered on the paper's worked example (Figure 2) and the
 * marking subtleties of section 2.2.2.
 */

#include <gtest/gtest.h>

#include "lrpd/lrpd.hh"
#include "sim/random.hh"
#include "spec/oracle.hh"

using namespace specrt;

namespace
{

/**
 * The Figure 2 loop's accesses (1-based elements mapped to 0-based):
 *   do i = 1,5:  z = A(K(i));  if (B1(i)) A(L(i)) = z + C(i)
 *   K = (1,2,3,4,1), L = (2,2,4,4,2), B1 = (T,F,T,F,T)
 */
std::vector<AccessEvent>
fig2Trace()
{
    int64_t K[] = {0, 1, 2, 3, 4, 1};
    int64_t L[] = {0, 2, 2, 4, 4, 2};
    bool B1[] = {false, true, false, true, false, true};
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 5; ++i) {
        t.push_back({0, i, static_cast<uint64_t>(K[i] - 1), false, 0});
        if (B1[i])
            t.push_back(
                {0, i, static_cast<uint64_t>(L[i] - 1), true, 0});
    }
    return t;
}

} // namespace

TEST(Fig2, MatchesThePaperChart)
{
    // The paper's chart (5 iterations): Aw = (0 1 0 1 0)...
    // In the published figure only elements 1..4 are shown with
    // Aw = (0 1 0 1), Ar = (1 1 1 1), Anp = (1 1 1 1), Atw = 3,
    // Atm = 2, and the test fails.
    LrpdAnalysis a = LrpdTest::run(fig2Trace(), 5, 1, true, false);
    EXPECT_EQ(a.atw, 3u);
    EXPECT_EQ(a.atm, 2u);
    EXPECT_TRUE(a.awAndAr);
    EXPECT_EQ(a.verdict, LrpdVerdict::NotParallel);
}

TEST(Fig2, OracleAgreesLoopIsNotParallel)
{
    EXPECT_EQ(Oracle::lrpd(fig2Trace()), LrpdVerdict::NotParallel);
    EXPECT_FALSE(Oracle::privParallel(fig2Trace()));
}

TEST(Lrpd, DisjointWritesAreDoall)
{
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 8; ++i) {
        t.push_back({0, i, static_cast<uint64_t>(i - 1), false, 0});
        t.push_back({0, i, static_cast<uint64_t>(i - 1), true, 0});
    }
    LrpdAnalysis a = LrpdTest::run(t, 8, 1, false, false);
    EXPECT_EQ(a.verdict, LrpdVerdict::Doall);
    EXPECT_EQ(a.atw, a.atm);
}

TEST(Lrpd, WorkspacePatternNeedsPrivatization)
{
    // Every iteration writes then reads element 0.
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 8; ++i) {
        t.push_back({0, i, 0, true, 0});
        t.push_back({0, i, 0, false, 0});
    }
    LrpdAnalysis priv = LrpdTest::run(t, 1, 1, true, false);
    EXPECT_EQ(priv.verdict, LrpdVerdict::DoallWithPriv);
    // Without privatization the loop, as executed, is not a doall.
    LrpdAnalysis nopriv = LrpdTest::run(t, 1, 1, false, false);
    EXPECT_EQ(nopriv.verdict, LrpdVerdict::NotParallel);
}

TEST(Lrpd, ReadBeforeWritePatternIsNotPrivatizable)
{
    // Read then write in each iteration: Anp fires.
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 4; ++i) {
        t.push_back({0, i, 0, false, 0});
        t.push_back({0, i, 0, true, 0});
    }
    LrpdAnalysis a = LrpdTest::run(t, 1, 1, true, false);
    EXPECT_EQ(a.verdict, LrpdVerdict::NotParallel);
    EXPECT_TRUE(a.awAndAnp);
    EXPECT_FALSE(a.awAndAr); // the reads were covered ("after")
}

TEST(Lrpd, CancelOnlyAffectsCurrentIteration)
{
    // Iteration 3 reads e (uncovered). Iteration 5 reads then
    // writes e: the write must cancel only iteration 5's Ar mark,
    // not iteration 3's.
    std::vector<AccessEvent> t = {
        {0, 3, 0, false, 0},
        {0, 5, 0, false, 0},
        {0, 5, 0, true, 0},
    };
    LrpdAnalysis a = LrpdTest::run(t, 1, 1, true, false);
    EXPECT_TRUE(a.awAndAr);
    EXPECT_EQ(a.verdict, LrpdVerdict::NotParallel);
    EXPECT_EQ(Oracle::lrpd(t), LrpdVerdict::NotParallel);
}

TEST(Lrpd, ReadOnlyArrayIsDoall)
{
    std::vector<AccessEvent> t;
    for (IterNum i = 1; i <= 10; ++i)
        t.push_back({0, i, static_cast<uint64_t>(i % 3), false, 0});
    EXPECT_EQ(LrpdTest::run(t, 3, 1, false, false).verdict,
              LrpdVerdict::Doall);
}

TEST(Lrpd, ProcWiseSavesAdjacentDependences)
{
    // Iterations 1 and 2 both write element 0; iteration 2 also
    // reads it. Iteration-wise: fail. Processor-wise with both
    // iterations on processor 0: pass.
    std::vector<AccessEvent> t = {
        {0, 1, 0, true, 0},
        {0, 2, 0, false, 0},
        {0, 2, 0, true, 0},
    };
    EXPECT_EQ(LrpdTest::run(t, 1, 2, false, false).verdict,
              LrpdVerdict::NotParallel);
    EXPECT_EQ(LrpdTest::run(t, 1, 2, false, true).verdict,
              LrpdVerdict::Doall);
    EXPECT_EQ(Oracle::lrpd(t), LrpdVerdict::NotParallel);
    EXPECT_EQ(Oracle::lrpdProcWise(t), LrpdVerdict::Doall);
}

TEST(Lrpd, ProcWiseStillFailsCrossProcessor)
{
    std::vector<AccessEvent> t = {
        {0, 1, 0, true, 0},
        {1, 2, 0, false, 0},
    };
    EXPECT_EQ(LrpdTest::run(t, 1, 2, false, true).verdict,
              LrpdVerdict::NotParallel);
    EXPECT_EQ(Oracle::lrpdProcWise(t), LrpdVerdict::NotParallel);
}

TEST(Lrpd, MechanicalMarkingMatchesOracleOnRandomTraces)
{
    Rng rng(123);
    for (int round = 0; round < 200; ++round) {
        int procs = 1 + static_cast<int>(rng.nextBounded(4));
        std::vector<AccessEvent> t;
        for (IterNum i = 1; i <= 12; ++i) {
            NodeId p = static_cast<NodeId>(rng.nextBounded(procs));
            for (int a = 0; a < 3; ++a)
                t.push_back({p, i, rng.nextBounded(5),
                             rng.nextBool(0.4), 0});
        }
        EXPECT_EQ(LrpdTest::run(t, 5, procs, true, false).verdict,
                  Oracle::lrpd(t))
            << "round " << round;
        EXPECT_EQ(LrpdTest::run(t, 5, procs, true, true).verdict,
                  Oracle::lrpdProcWise(t))
            << "round " << round;
    }
}

TEST(Oracle, PrivAcceptsWhatLrpdPrivAccepts)
{
    // Anything the basic privatizing LRPD accepts, the read-in
    // capable hardware test must also accept (it is strictly more
    // aggressive, section 3.3).
    Rng rng(321);
    for (int round = 0; round < 200; ++round) {
        std::vector<AccessEvent> t;
        for (IterNum i = 1; i <= 10; ++i) {
            for (int a = 0; a < 3; ++a)
                t.push_back({0, i, rng.nextBounded(4),
                             rng.nextBool(0.4), 0});
        }
        LrpdVerdict v = Oracle::lrpd(t);
        if (v != LrpdVerdict::NotParallel)
            EXPECT_TRUE(Oracle::privParallel(t)) << "round " << round;
    }
}

TEST(Oracle, NonPrivIsProcessorWise)
{
    // The hardware non-privatization test allows same-processor
    // cross-iteration reuse that the iteration-wise LRPD flags.
    std::vector<AccessEvent> t = {
        {2, 1, 0, true, 0},
        {2, 5, 0, false, 0},
    };
    EXPECT_TRUE(Oracle::nonPrivParallel(t));
    EXPECT_EQ(Oracle::lrpd(t), LrpdVerdict::NotParallel);
}

TEST(Oracle, VerdictNamesAreStable)
{
    EXPECT_STREQ(lrpdVerdictName(LrpdVerdict::Doall), "Doall");
    EXPECT_STREQ(lrpdVerdictName(LrpdVerdict::DoallWithPriv),
                 "DoallWithPriv");
    EXPECT_STREQ(lrpdVerdictName(LrpdVerdict::NotParallel),
                 "NotParallel");
}
