/**
 * @file
 * Fault-injection framework tests: FaultPlan determinism and
 * eligibility, FaultConfig validation, watchdog-driven recovery of
 * dropped messages, infra-failure (not panic) when the retry budget
 * is exhausted, and the HW -> SW -> Serial degradation ladder.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "core/loop_exec.hh"
#include "mem/msg.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

/** A moderate fault mix every run recovers from. */
FaultConfig
moderateFaults(uint64_t seed)
{
    FaultConfig f;
    f.seed = seed;
    f.dropProb = 0.03;
    f.dupProb = 0.05;
    f.jitterProb = 0.2;
    f.jitterMaxCycles = 150;
    f.watchdogTimeout = 3000;
    f.watchdogMaxRetries = 6;
    return f;
}

/** Total-loss fault mix: every eligible message dropped, tiny retry
 *  budget, so the HW and SW tiers provably cannot finish. */
FaultConfig
lethalFaults(uint64_t seed)
{
    FaultConfig f;
    f.seed = seed;
    f.dropProb = 1.0;
    f.watchdogTimeout = 200;
    f.watchdogMaxRetries = 2;
    return f;
}

struct ThrowOnFatalGuard
{
    ThrowOnFatalGuard() { setLogThrowOnFatal(true); }
    ~ThrowOnFatalGuard() { setLogThrowOnFatal(false); }
};

const MsgType kAllTypes[] = {
    MsgType::ReadReq,      MsgType::WriteReq,
    MsgType::Writeback,    MsgType::ReadReply,
    MsgType::WriteReply,   MsgType::Inval,
    MsgType::WritebackAck, MsgType::ReadFwd,
    MsgType::WriteFwd,     MsgType::ShareWb,
    MsgType::OwnXfer,      MsgType::InvalAck,
    MsgType::FirstUpdate,  MsgType::ROnlyUpdate,
    MsgType::FirstUpdateFail,
};

} // namespace

TEST(FaultPlan, SameSeedReplaysIdenticalSchedule)
{
    FaultConfig f = moderateFaults(1234);
    FaultPlan a(f), b(f);
    a.arm();
    b.arm();
    for (int i = 0; i < 2000; ++i) {
        MsgType t = kAllTypes[i % std::size(kAllTypes)];
        FaultDecision da = a.decide(t);
        FaultDecision db = b.decide(t);
        ASSERT_EQ(da.drop, db.drop) << "msg " << i;
        ASSERT_EQ(da.duplicate, db.duplicate) << "msg " << i;
        ASSERT_EQ(da.jitter, db.jitter) << "msg " << i;
    }
    EXPECT_EQ(a.faultsInjected.value(), b.faultsInjected.value());
    EXPECT_GT(a.faultsInjected.value(), 0);
}

TEST(FaultPlan, ReseedRestartsTheStream)
{
    FaultConfig f = moderateFaults(99);
    FaultPlan p(f);
    p.arm();
    std::vector<FaultDecision> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(p.decide(MsgType::ReadReq));
    p.reseed(99); // same seed -> same schedule from the top
    for (int i = 0; i < 500; ++i) {
        FaultDecision d = p.decide(MsgType::ReadReq);
        ASSERT_EQ(d.drop, first[i].drop) << i;
        ASSERT_EQ(d.duplicate, first[i].duplicate) << i;
        ASSERT_EQ(d.jitter, first[i].jitter) << i;
    }
}

TEST(FaultPlan, DisarmedPlanInjectsNothing)
{
    FaultConfig f;
    f.seed = 7;
    f.dropProb = 1.0;
    f.dupProb = 1.0;
    f.jitterProb = 1.0;
    f.watchdogTimeout = 100;
    FaultPlan p(f);
    for (int i = 0; i < 100; ++i) {
        FaultDecision d = p.decide(MsgType::ReadReq);
        EXPECT_FALSE(d.drop);
        EXPECT_FALSE(d.duplicate);
        EXPECT_EQ(d.jitter, 0u);
    }
    EXPECT_EQ(p.faultsInjected.value(), 0);
}

TEST(FaultPlan, EligibilityMatchesProtocolRecoverability)
{
    // Only signals somebody retransmits may be dropped.
    for (MsgType t : {MsgType::FirstUpdate, MsgType::ROnlyUpdate,
                      MsgType::ReadFirstSig, MsgType::FirstWriteSig,
                      MsgType::CopyOutSig}) {
        EXPECT_TRUE(FaultPlan::netRetransmits(t));
        EXPECT_TRUE(FaultPlan::dropEligible(t, false));
        EXPECT_TRUE(FaultPlan::dropEligible(t, true));
    }

    // Requests are recoverable only when the watchdog is on.
    for (MsgType t : {MsgType::ReadReq, MsgType::WriteReq}) {
        EXPECT_FALSE(FaultPlan::netRetransmits(t));
        EXPECT_FALSE(FaultPlan::dropEligible(t, false));
        EXPECT_TRUE(FaultPlan::dropEligible(t, true));
    }

    // No recovery leg for replies, forwards, writebacks, acks, or
    // the deferred read-in legs: never dropped.
    for (MsgType t :
         {MsgType::ReadReply, MsgType::WriteReply, MsgType::Inval,
          MsgType::InvalAck, MsgType::Writeback, MsgType::WritebackAck,
          MsgType::ReadFwd, MsgType::WriteFwd, MsgType::ShareWb,
          MsgType::OwnXfer, MsgType::FirstUpdateFail,
          MsgType::ReadInReq, MsgType::ReadInReply}) {
        EXPECT_FALSE(FaultPlan::dropEligible(t, true))
            << static_cast<int>(t);
    }

    // Duplication additionally covers the idempotent replies and
    // invalidation legs, but never the forwards / writebacks.
    for (MsgType t : {MsgType::ReadReply, MsgType::WriteReply,
                      MsgType::Inval, MsgType::InvalAck}) {
        EXPECT_TRUE(FaultPlan::dupEligible(t, true))
            << static_cast<int>(t);
    }
    for (MsgType t :
         {MsgType::ReadFwd, MsgType::WriteFwd, MsgType::ShareWb,
          MsgType::OwnXfer, MsgType::Writeback,
          MsgType::WritebackAck}) {
        EXPECT_FALSE(FaultPlan::dupEligible(t, true))
            << static_cast<int>(t);
    }
}

TEST(FaultConfig, DropWithoutWatchdogIsRejected)
{
    ThrowOnFatalGuard g;
    MachineConfig cfg;
    cfg.fault.dropProb = 0.1; // watchdogTimeout stays 0
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(FaultConfig, ProbabilitiesMustBeInRange)
{
    ThrowOnFatalGuard g;
    {
        MachineConfig cfg;
        cfg.fault.dupProb = 1.5;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.fault.jitterProb = -0.1;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.fault.watchdogMaxRetries = -1;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.fault = moderateFaults(1);
        cfg.validate(); // sane mix passes
    }
}

TEST(Fault, WatchdogRecoversDroppedMessages)
{
    // Disjoint subscripts: every element belongs to one iteration,
    // so no message timing can create a (spurious) test failure and
    // the verdict is stable under injection.
    Fig1CLoop loop(128, 512, true, 3);
    MachineConfig cfg;
    cfg.numProcs = 4;

    ExecConfig sxc;
    sxc.mode = ExecMode::Serial;
    LoopExecutor se(cfg, loop, sxc);
    se.run();

    cfg.fault = moderateFaults(5);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor he(cfg, loop, xc);
    RunResult r = he.run();

    EXPECT_FALSE(r.infraFailed) << r.infraReason;
    EXPECT_TRUE(r.passed);

    // The schedule really did hurt us, and we really did recover.
    FaultPlan &plan = he.machine().faultPlan();
    EXPECT_GT(plan.faultsInjected.value(), 0);
    EXPECT_GT(plan.drops.value(), 0);
    double recoveries = he.machine().network().msgsRetried.value();
    for (int n = 0; n < cfg.numProcs; ++n)
        recoveries += he.machine().cacheCtrl(n).msgsRetried.value();
    EXPECT_GE(recoveries, plan.drops.value());

    const Region *sa = se.sharedRegion(0);
    const Region *ha = he.sharedRegion(0);
    for (uint64_t e = 0; e < sa->numElems(); ++e) {
        ASSERT_EQ(he.machine().memory().read(ha->elemAddr(e), 4),
                  se.machine().memory().read(sa->elemAddr(e), 4))
            << "elem " << e;
    }
}

TEST(Fault, InjectionRunIsDeterministic)
{
    RandomLoopParams rp{32, 48, 3, 0.6, 48, TestType::Priv, 21};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.fault = moderateFaults(17);

    ExecConfig xc;
    xc.mode = ExecMode::HW;

    LoopExecutor a(cfg, loop, xc);
    RunResult ra = a.run();
    LoopExecutor b(cfg, loop, xc);
    RunResult rb = b.run();

    EXPECT_EQ(ra.passed, rb.passed);
    EXPECT_EQ(ra.totalTicks, rb.totalTicks);
    EXPECT_EQ(a.machine().faultPlan().faultsInjected.value(),
              b.machine().faultPlan().faultsInjected.value());
    EXPECT_EQ(a.machine().faultPlan().drops.value(),
              b.machine().faultPlan().drops.value());

    const Region *aa = a.sharedRegion(0);
    const Region *ba = b.sharedRegion(0);
    for (uint64_t e = 0; e < aa->numElems(); ++e) {
        ASSERT_EQ(a.machine().memory().read(aa->elemAddr(e), 4),
                  b.machine().memory().read(ba->elemAddr(e), 4));
    }
}

TEST(Fault, ExhaustedRetryBudgetInfraFailsInsteadOfPanicking)
{
    RandomLoopParams rp{24, 32, 3, 0.5, 32, TestType::NonPriv, 9};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.fault = lethalFaults(3);

    ExecConfig xc;
    xc.mode = ExecMode::HW;
    LoopExecutor exec(cfg, loop, xc);
    RunResult r = exec.run(); // must return, not abort
    EXPECT_TRUE(r.infraFailed);
    EXPECT_FALSE(r.passed);
    EXPECT_FALSE(r.infraReason.empty());

    double lost = exec.machine().network().msgsLost.value();
    for (int n = 0; n < cfg.numProcs; ++n)
        lost += exec.machine().cacheCtrl(n).txnsLost.value();
    EXPECT_GE(lost, 1);
}

TEST(Fault, LadderDegradesHwToSwToSerial)
{
    RandomLoopParams rp{24, 32, 3, 0.5, 32, TestType::NonPriv, 9};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;

    // Fault-free serial reference for the final data check.
    ExecConfig sxc;
    sxc.mode = ExecMode::Serial;
    LoopExecutor se(cfg, loop, sxc);
    se.run();

    cfg.fault = lethalFaults(3);
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    DegradationPolicy pol;
    pol.maxHwAttempts = 2;
    pol.maxSwAttempts = 1;
    DegradationLog log;
    LadderOutcome out = runWithDegradation(cfg, loop, xc, pol, &log);

    // Both speculative tiers burn their budget; the fault-free
    // serial floor finishes the job.
    EXPECT_EQ(out.degradations, 2);
    ASSERT_EQ(out.steps.size(), 4u); // 2x HW, 1x SW, 1x Serial
    EXPECT_EQ(out.steps[0].mode, ExecMode::HW);
    EXPECT_EQ(out.steps[1].mode, ExecMode::HW);
    EXPECT_EQ(out.steps[2].mode, ExecMode::SW);
    EXPECT_EQ(out.steps[3].mode, ExecMode::Serial);
    for (size_t i = 0; i + 1 < out.steps.size(); ++i)
        EXPECT_TRUE(out.steps[i].infraFailed) << "step " << i;
    EXPECT_FALSE(out.steps.back().infraFailed);

    EXPECT_EQ(out.result.mode, ExecMode::Serial);
    EXPECT_FALSE(out.result.infraFailed);
    EXPECT_TRUE(out.result.passed);

    ASSERT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[0].from, ExecMode::HW);
    EXPECT_EQ(log.records()[0].to, ExecMode::SW);
    EXPECT_EQ(log.records()[1].from, ExecMode::SW);
    EXPECT_EQ(log.records()[1].to, ExecMode::Serial);
    EXPECT_EQ(log.degradations.value(), 2);
    EXPECT_FALSE(log.report().empty());

    ASSERT_TRUE(out.exec);
    const Region *sa = se.sharedRegion(0);
    const Region *ha = out.exec->sharedRegion(0);
    for (uint64_t e = 0; e < sa->numElems(); ++e) {
        ASSERT_EQ(out.exec->machine().memory().read(
                      ha->elemAddr(e), 4),
                  se.machine().memory().read(sa->elemAddr(e), 4))
            << "elem " << e;
    }
}

TEST(Fault, LadderStaysOnFirstTierWhenRecoverable)
{
    // Dup + jitter only: nothing can be lost, so the HW tier must
    // succeed on its first attempt without degrading.
    RandomLoopParams rp{32, 48, 3, 0.5, 48, TestType::NonPriv, 13};
    RandomLoop loop(rp);
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.fault.seed = 8;
    cfg.fault.dupProb = 0.1;
    cfg.fault.jitterProb = 0.3;
    cfg.fault.jitterMaxCycles = 120;

    ExecConfig xc;
    xc.mode = ExecMode::HW;
    DegradationLog log;
    LadderOutcome out = runWithDegradation(cfg, loop, xc, {}, &log);

    EXPECT_EQ(out.degradations, 0);
    ASSERT_EQ(out.steps.size(), 1u);
    EXPECT_EQ(out.steps[0].mode, ExecMode::HW);
    EXPECT_FALSE(out.result.infraFailed);
    EXPECT_TRUE(log.records().empty());
    EXPECT_EQ(out.result.mode, ExecMode::HW);
}

#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/sim_context.hh"
#include "verify/explorer.hh"

namespace
{

/**
 * 2-node conflicting-store run with the requester watchdog enabled,
 * for fault-schedule exploration: the verdict asserts completion,
 * quiescence, serializability, and a clean final invariant sweep.
 */
verify::RunVerdict
watchdogMicroRun()
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fault.watchdogTimeout = 2000;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);
    InvariantChecker chk(dsm);
    size_t viols = 0;
    chk.setHandler([&](const ProtocolViolation &) { ++viols; });
    bool loaded = false;
    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.cacheCtrl(1).load(a, 4, 2, [&](uint64_t) { loaded = true; });
    dsm.eventQueue().run();
    bool quiesced = dsm.quiescent();
    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    dsm.resetMachine(true);
    uint64_t fin = dsm.memory().read(a, 4);

    verify::RunVerdict v;
    std::string err;
    if (!loaded)
        err += "load never completed; ";
    if (!quiesced)
        err += "not quiescent; ";
    if (fin != 11 && fin != 22)
        err += "final value not a serialization; ";
    if (viols)
        err += "invariant violation(s); ";
    v.report = err;
    v.ok = err.empty();
    return v;
}

/**
 * Probe the default schedule with fault decisions live and return
 * the stack index of the first Fault decision satisfying @p want,
 * or SIZE_MAX.
 */
size_t
firstFaultIndex(const std::function<bool(const FaultChoicePoint &)> &want)
{
    verify::ReplayController rc;
    rc.exploreFaults = true;
    {
        verify::ScopedScheduleController scope(&rc);
        watchdogMicroRun();
    }
    for (size_t i = 0; i < rc.decisions().size(); ++i) {
        const verify::Decision &d = rc.decisions()[i];
        if (d.kind == verify::ChoiceKind::Fault && want(d.fault))
            return i;
    }
    return SIZE_MAX;
}

} // namespace

TEST(Fault, ExploredDropThenRetryRecoversTheRequest)
{
    // Deterministically drop the first droppable transmission (a
    // request: only the watchdog can recover it) by replaying a
    // fault-choice schedule, and assert the retry leg completes the
    // protocol with the verdict intact.
    size_t at = firstFaultIndex(
        [](const FaultChoicePoint &p) { return p.canDrop; });
    ASSERT_NE(at, SIZE_MAX) << "no droppable transmission offered";

    std::vector<size_t> prefix(at, 0);
    prefix.push_back(1); // alternative 1 = drop (canDrop holds)
    verify::ReplayController rc(prefix);
    rc.exploreFaults = true;
    bool dropped = false;
    rc.onFaultDecision = [&](const FaultChoicePoint &p, size_t,
                             size_t take) {
        if (take == 1 && p.canDrop)
            dropped = true;
    };
    verify::RunVerdict v;
    {
        verify::ScopedScheduleController scope(&rc);
        v = watchdogMicroRun();
    }
    EXPECT_TRUE(dropped) << "the fault choice was never exercised";
    EXPECT_TRUE(v.ok) << v.report;
}

TEST(Fault, ExploredDuplicateDeliveryIsAbsorbed)
{
    // Deterministically duplicate one delivery and assert receiver
    // idempotence under the replayed schedule.
    size_t at = firstFaultIndex(
        [](const FaultChoicePoint &p) { return p.canDup; });
    ASSERT_NE(at, SIZE_MAX) << "no dup-eligible transmission offered";

    verify::ReplayController probe;
    probe.exploreFaults = true;
    {
        verify::ScopedScheduleController scope(&probe);
        watchdogMicroRun();
    }
    const verify::Decision &d = probe.decisions()[at];
    // Alternative meaning: 1 = drop if canDrop else dup, 2 = dup.
    size_t dup_alt = d.fault.canDrop ? 2 : 1;
    ASSERT_GT(d.degree, dup_alt);

    std::vector<size_t> prefix(at, 0);
    prefix.push_back(dup_alt);
    verify::ReplayController rc(prefix);
    rc.exploreFaults = true;
    bool duplicated = false;
    rc.onFaultDecision = [&](const FaultChoicePoint &p, size_t,
                             size_t take) {
        if ((take == 2) || (take == 1 && !p.canDrop))
            duplicated = true;
    };
    verify::RunVerdict v;
    {
        verify::ScopedScheduleController scope(&rc);
        v = watchdogMicroRun();
    }
    EXPECT_TRUE(duplicated) << "the dup choice was never exercised";
    EXPECT_TRUE(v.ok) << v.report;
}
