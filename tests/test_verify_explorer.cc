/**
 * @file
 * Tests of the bounded interleaving explorer (verify/explorer.hh):
 * controller replay semantics, complete enumeration of same-tick
 * permutations, budgets and independence pruning, exhaustive
 * exploration of a real two-node protocol scenario with per-delivery
 * invariant checking, verdict stability of the HW speculation
 * machine under reordering, detection + shrinking of a seeded
 * schedule-dependent protocol bug, schedule-file round trips, and
 * parallel exploration equivalence.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "mem/directory.hh"
#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/sim_context.hh"
#include "verify/explorer.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using verify::explore;
using verify::exploreParallel;
using verify::ExploreOptions;
using verify::ExploreResult;
using verify::RunVerdict;
using verify::ScheduleFile;

namespace
{

/**
 * A RunFn scheduling three same-tick events on a bare queue and
 * recording their firing order as a string. Orders are collected
 * into @p orders under @p mu (exploreParallel calls concurrently).
 */
verify::RunFn
permutationRun(std::set<std::string> *orders, std::mutex *mu)
{
    return [orders, mu]() {
        EventQueue eq;
        eq.setScheduleController(
            SimContext::current().scheduleController);
        auto order = std::make_shared<std::string>();
        eq.schedule(5, [order] { *order += 'a'; }, EventKind::Cache, 0);
        eq.schedule(5, [order] { *order += 'b'; },
                    EventKind::Directory, 1);
        eq.schedule(5, [order] { *order += 'c'; }, EventKind::Network,
                    2);
        eq.run();
        {
            std::lock_guard<std::mutex> g(*mu);
            orders->insert(*order);
        }
        RunVerdict v;
        if (order->size() != 3) {
            v.ok = false;
            v.report = "lost events: '" + *order + "'";
        }
        return v;
    };
}

/** What one two-node protocol micro-run observed. */
struct MicroOutcome
{
    bool loaded = false;
    uint64_t loadVal = 0;
    uint64_t finalVal = 0;
    bool quiescentAfterDrain = false;
    size_t violations = 0;
    std::string firstViolation;
    double dups = 0;
};

/**
 * One fresh two-node machine, one shared element homed at node 0
 * (initial value 7): node 0 stores 11, node 1 stores 22 and loads.
 * Every network delivery is followed by a Delivery-granularity
 * invariant sweep when @p delivery_checks; a final Quiesce-
 * granularity sweep always runs. @p post_run (optional) mutates the
 * machine between the drain and the final sweep (seeded-bug tests).
 */
MicroOutcome
runMicro(const FaultConfig &fault, bool delivery_checks,
         const std::function<void(DsmSystem &, Addr)> &post_run = {})
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fault = fault;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);

    InvariantChecker chk(dsm);
    MicroOutcome out;
    chk.setHandler([&](const ProtocolViolation &v) {
        ++out.violations;
        if (out.firstViolation.empty())
            out.firstViolation = v.str();
    });
    if (delivery_checks) {
        dsm.eventQueue().setPostFireHook([&](Tick, EventKind k) {
            if (k == EventKind::Network)
                chk.checkAll(InvariantChecker::Granularity::Delivery);
        });
    }

    bool inject = fault.dropProb > 0 || fault.dupProb > 0 ||
                  fault.jitterProb > 0;
    if (inject)
        dsm.faultPlan().arm();

    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.cacheCtrl(1).load(a, 4, 2, [&](uint64_t v) {
        out.loadVal = v;
        out.loaded = true;
    });
    dsm.eventQueue().run();
    if (inject)
        dsm.faultPlan().disarm();

    out.quiescentAfterDrain = dsm.quiescent();
    out.dups = dsm.faultPlan().dups.value();
    if (post_run)
        post_run(dsm, a);
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    dsm.resetMachine(true);
    out.finalVal = dsm.memory().read(a, 4);
    return out;
}

/** The micro-run's correctness property, as a RunVerdict. */
RunVerdict
microVerdict(const MicroOutcome &o)
{
    std::ostringstream os;
    if (!o.loaded)
        os << "load never completed; ";
    if (!o.quiescentAfterDrain)
        os << "not quiescent after drain; ";
    if (o.loaded && o.loadVal != 7 && o.loadVal != 11 &&
        o.loadVal != 22)
        os << "load saw " << o.loadVal << "; ";
    if (o.finalVal != 11 && o.finalVal != 22)
        os << "final value " << o.finalVal
           << " not a serialization of the stores; ";
    if (o.violations)
        os << o.violations << " invariant violation(s), first: "
           << o.firstViolation;
    RunVerdict v;
    v.report = os.str();
    v.ok = v.report.empty();
    return v;
}

verify::RunFn
microRun(const FaultConfig &fault = {}, bool delivery_checks = true)
{
    return [fault, delivery_checks]() {
        return microVerdict(runMicro(fault, delivery_checks));
    };
}

/** One HW-mode executor run of a Fig. 3 archetype, as a RunFn. */
RunVerdict
runFig3(Fig3Kind kind, bool expect_pass)
{
    Fig3Loop loop(kind, 4);
    MachineConfig cfg;
    cfg.numProcs = 2;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.sched = SchedPolicy::StaticChunk;
    xc.checkInvariants = true;
    xc.invariantGranularity = InvariantChecker::Granularity::Delivery;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();

    std::ostringstream os;
    if (res.passed != expect_pass)
        os << "verdict " << res.passed << ", expected " << expect_pass
           << " (" << res.hwFailure.reason << "); ";
    if (res.invariantViolations)
        os << res.invariantViolations << " invariant violation(s); ";
    if (res.infraFailed)
        os << "infra failure: " << res.infraReason;
    RunVerdict v;
    v.report = os.str();
    v.ok = v.report.empty();
    return v;
}

} // namespace

TEST(ReplayController, EmptyPrefixReproducesDefaultSchedule)
{
    std::set<std::string> orders;
    std::mutex mu;
    verify::RunFn run = permutationRun(&orders, &mu);

    // Uncontrolled (no controller installed at all).
    ASSERT_TRUE(run().ok);
    ASSERT_EQ(orders.size(), 1u);
    std::string plain = *orders.begin();

    // Controlled with an empty prefix: answer 0 everywhere.
    RunVerdict v = verify::replay(run, {});
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(orders.size(), 1u)
        << "pick-0 must reproduce the uncontrolled order " << plain;
}

TEST(ReplayController, RecordsDecisionPointsInDefaultOrder)
{
    std::set<std::string> orders;
    std::mutex mu;
    verify::RunFn run = permutationRun(&orders, &mu);

    verify::ReplayController rc({1});
    {
        verify::ScopedScheduleController scope(&rc);
        ASSERT_TRUE(run().ok);
    }
    // Three same-tick events: one 3-way decision, then a 2-way one.
    ASSERT_EQ(rc.numDecisions(), 2u);
    EXPECT_EQ(rc.decisions()[0].degree, 3u);
    EXPECT_EQ(rc.decisions()[0].taken, 1u);
    EXPECT_EQ(rc.decisions()[1].degree, 2u);
    EXPECT_EQ(rc.decisions()[1].taken, 0u); // beyond prefix: default
    // Candidates come in default order with their scheduling tags.
    EXPECT_EQ(rc.decisions()[0].options[0].kind, EventKind::Cache);
    EXPECT_EQ(rc.decisions()[0].options[1].kind, EventKind::Directory);
    EXPECT_EQ(rc.decisions()[0].options[2].kind, EventKind::Network);
    EXPECT_EQ(rc.decisions()[0].options[2].actor, 2u);
    EXPECT_EQ(orders.count("bac"), 1u);
}

TEST(Explorer, EnumeratesAllPermutationsOfThreeSameTickEvents)
{
    std::set<std::string> orders;
    std::mutex mu;
    ExploreResult res = explore(permutationRun(&orders, &mu));
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_FALSE(res.budgetExhausted);
    EXPECT_EQ(res.runs, 6u);
    EXPECT_EQ(res.maxDepthSeen, 2u);
    std::set<std::string> expect = {"abc", "acb", "bac",
                                    "bca", "cab", "cba"};
    EXPECT_EQ(orders, expect);
}

TEST(Explorer, MaxDepthBranchesOnlyAboveTheBound)
{
    std::set<std::string> orders;
    std::mutex mu;
    ExploreOptions o;
    o.maxDepth = 1;
    ExploreResult res = explore(permutationRun(&orders, &mu), o);
    EXPECT_FALSE(res.violated) << res.summary();
    // Only the first decision branches: a/b/c leads, defaults below.
    EXPECT_EQ(res.runs, 3u);
    std::set<std::string> expect = {"abc", "bac", "cab"};
    EXPECT_EQ(orders, expect);
}

TEST(Explorer, MaxBranchOneDegeneratesToTheDefaultSchedule)
{
    std::set<std::string> orders;
    std::mutex mu;
    ExploreOptions o;
    o.maxBranch = 1;
    ExploreResult res = explore(permutationRun(&orders, &mu), o);
    EXPECT_EQ(res.runs, 1u);
    EXPECT_EQ(orders, std::set<std::string>{"abc"});
}

TEST(Explorer, MaxRunsBudgetStopsEarly)
{
    std::set<std::string> orders;
    std::mutex mu;
    ExploreOptions o;
    o.maxRuns = 4;
    ExploreResult res = explore(permutationRun(&orders, &mu), o);
    EXPECT_TRUE(res.budgetExhausted);
    EXPECT_EQ(res.runs, 4u);
    EXPECT_FALSE(res.violated);
}

TEST(Explorer, LockedPrefixConfinesTheWalkToOneSubtree)
{
    std::set<std::string> orders;
    std::mutex mu;
    ExploreOptions o;
    o.lockedPrefix = {1};
    ExploreResult res = explore(permutationRun(&orders, &mu), o);
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_EQ(res.runs, 2u);
    std::set<std::string> expect = {"bac", "bca"};
    EXPECT_EQ(orders, expect);
}

TEST(Explorer, IndependencePruningSkipsCommutingNetworkSiblings)
{
    auto run = [] {
        return [] {
            EventQueue eq;
            eq.setScheduleController(
                SimContext::current().scheduleController);
            eq.schedule(5, [] {}, EventKind::Network, 0);
            eq.schedule(5, [] {}, EventKind::Network, 1);
            eq.run();
            return RunVerdict{};
        };
    }();

    ExploreResult plain = explore(run);
    EXPECT_EQ(plain.runs, 2u);

    ExploreOptions o;
    o.independent = verify::networkActorIndependence;
    ExploreResult pruned = explore(run, o);
    EXPECT_EQ(pruned.runs, 1u);
    EXPECT_EQ(pruned.pruned, 1u);
    EXPECT_FALSE(pruned.violated);

    // The heuristic itself.
    EventChoice na0{5, EventKind::Network, 0, false};
    EventChoice na1{5, EventKind::Network, 1, false};
    EventChoice nsame{5, EventKind::Network, 0, false};
    EventChoice cache{5, EventKind::Cache, 1, false};
    EventChoice unk{5, EventKind::Network, unknownActor, false};
    EXPECT_TRUE(verify::networkActorIndependence(na0, na1));
    EXPECT_FALSE(verify::networkActorIndependence(na0, nsame));
    EXPECT_FALSE(verify::networkActorIndependence(na0, cache));
    EXPECT_FALSE(verify::networkActorIndependence(na0, unk));
}

TEST(Explorer, ExhaustiveTwoNodeProtocolScenarioHoldsInvariants)
{
    // Every interleaving of the two-node conflicting-store scenario,
    // with the full invariant sweep after every network delivery and
    // the serializability property at the end. Exhaustive: no depth
    // or branch bound (maxRuns is a runaway backstop only).
    ExploreOptions o;
    o.maxRuns = 50000;
    ExploreResult res = explore(microRun(), o);
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_FALSE(res.budgetExhausted)
        << "scenario no longer fits the backstop: " << res.summary();
    EXPECT_GT(res.runs, 1u) << res.summary();
    EXPECT_GT(res.maxDepthSeen, 0u);
}

TEST(Explorer, NetworkIndependencePruningPreservesTheVerdict)
{
    // Two disjoint transactions (distinct lines, distinct homes,
    // distinct requesters): their symmetric deliveries coincide
    // tick-for-tick, so every decision point offers two Network
    // events bound for different nodes -- exactly what the
    // distinct-destination heuristic prunes.
    auto run = []() -> RunVerdict {
        MachineConfig cfg;
        cfg.numProcs = 4;
        DsmSystem dsm(cfg);
        int ia = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
        int ib = dsm.memory().alloc("B", 4, 4, Placement::Fixed, 2);
        Addr a = dsm.memory().region(ia).elemAddr(0);
        Addr b = dsm.memory().region(ib).elemAddr(0);
        InvariantChecker chk(dsm);
        size_t viols = 0;
        chk.setHandler([&](const ProtocolViolation &) { ++viols; });
        bool la = false, lb = false;
        dsm.cacheCtrl(1).load(a, 4, 1, [&](uint64_t) { la = true; });
        dsm.cacheCtrl(3).load(b, 4, 1, [&](uint64_t) { lb = true; });
        dsm.eventQueue().run();
        chk.checkAll(InvariantChecker::Granularity::Quiesce);
        RunVerdict v;
        if (!la || !lb) {
            v.ok = false;
            v.report = "a load never completed";
        } else if (viols) {
            v.ok = false;
            v.report = "invariant violations";
        }
        return v;
    };

    ExploreResult full = explore(run);
    ExploreOptions o;
    o.independent = verify::networkActorIndependence;
    ExploreResult pruned = explore(run, o);

    EXPECT_FALSE(full.violated) << full.summary();
    EXPECT_FALSE(pruned.violated) << pruned.summary();
    EXPECT_GT(full.runs, 1u);
    EXPECT_GT(pruned.pruned, 0u);
    EXPECT_LT(pruned.runs, full.runs);
}

TEST(Explorer, DuplicateDeliveriesAreIdempotentUnderReordering)
{
    // Fault plan set to duplicate every dup-eligible message; the
    // protocol must absorb re-deliveries in every explored
    // interleaving. Delivery-granularity sweeps stay on.
    FaultConfig f;
    f.seed = 7;
    f.dupProb = 1.0;
    ExploreOptions o;
    o.maxDepth = 4;
    o.maxRuns = 200;
    ExploreResult res = explore(microRun(f), o);
    EXPECT_FALSE(res.violated) << res.summary();
    EXPECT_GT(res.runs, 1u);

    // And the duplicates really happened.
    MicroOutcome probe = runMicro(f, false);
    EXPECT_GT(probe.dups, 0.0);
}

TEST(Explorer, HwVerdictIsScheduleIndependentOnFig3Archetypes)
{
    // The paper's section 3.3 verdict must not depend on message
    // interleaving: read-in-needed and write-first pass, flow-dep
    // fails, under every explored schedule of the real HW machine
    // with per-delivery invariant sweeps.
    struct Case
    {
        Fig3Kind kind;
        bool pass;
        const char *name;
    };
    const Case cases[] = {
        {Fig3Kind::ReadInNeeded, true, "read-in-needed"},
        {Fig3Kind::WriteFirst, true, "write-first"},
        {Fig3Kind::FlowDep, false, "flow-dep"},
    };
    for (const Case &c : cases) {
        verify::RunFn run = [&c] { return runFig3(c.kind, c.pass); };
        ExploreOptions o;
        o.maxDepth = 3;
        o.maxRuns = 24;
        ExploreResult res = explore(run, o);
        EXPECT_FALSE(res.violated) << c.name << ": " << res.summary();
        EXPECT_GT(res.runs, 1u) << c.name;
    }
}

namespace
{

/**
 * The seeded-bug run: a test-only mutation standing in for a
 * protocol bug that only some interleavings reach. When the schedule
 * deviates from the default order anywhere, the home directory entry
 * of the contended line is corrupted to Uncached after the drain --
 * the final invariant sweep must catch it, and the explorer must
 * shrink the failure to a minimal replayable stack.
 */
RunVerdict
seededBugRun()
{
    auto *rc = dynamic_cast<verify::ReplayController *>(
        SimContext::current().scheduleController);
    auto reordered = std::make_shared<bool>(false);
    if (rc) {
        rc->onDecision = [reordered](const EventChoice *, size_t,
                                     size_t take) {
            if (take != 0)
                *reordered = true;
        };
    }
    MicroOutcome o =
        runMicro({}, false, [&](DsmSystem &dsm, Addr a) {
            if (!*reordered)
                return;
            Addr line = dsm.cacheCtrl(0).cacheArray().lineAlign(a);
            DirEntry &e = dsm.dirCtrl(0).directory().entry(line);
            e.state = DirState::Uncached;
            e.sharers = 0;
            e.owner = invalidNode;
        });
    return microVerdict(o);
}

} // namespace

TEST(Explorer, FindsAndShrinksSeededProtocolBug)
{
    ExploreOptions o;
    o.maxRuns = 50000;
    ExploreResult res = explore(seededBugRun, o);
    ASSERT_TRUE(res.violated) << res.summary();
    EXPECT_NE(res.report.find("invariant violation"),
              std::string::npos)
        << res.report;

    // Shrunk to a minimal stack, well under the acceptance bound.
    ASSERT_FALSE(res.witness.empty());
    EXPECT_LE(res.witness.size(), 20u) << res.summary();
    EXPECT_LE(res.witness.size(), res.rawWitness.size());

    // The witness replays to the same failure; the default schedule
    // stays clean.
    EXPECT_FALSE(verify::replay(seededBugRun, res.witness).ok);
    EXPECT_TRUE(verify::replay(seededBugRun, {}).ok);
}

TEST(Explorer, ParallelExplorationMatchesSerial)
{
    std::set<std::string> serial_orders, par_orders;
    std::mutex mu;
    ExploreResult serial =
        explore(permutationRun(&serial_orders, &mu));

    campaign::Options copts;
    copts.jobs = 2;
    ExploreResult par = exploreParallel(
        permutationRun(&par_orders, &mu), {}, 1, copts);
    EXPECT_FALSE(par.violated) << par.summary();
    EXPECT_EQ(par_orders, serial_orders);
    // The probe run re-executes the root, so coverage counts exceed
    // the serial walk's by the probes.
    EXPECT_GE(par.runs, serial.runs);
}

TEST(Explorer, ParallelExplorationFindsTheSeededBug)
{
    campaign::Options copts;
    copts.jobs = 2;
    ExploreOptions o;
    o.maxRuns = 50000;
    ExploreResult res = exploreParallel(seededBugRun, o, 1, copts);
    ASSERT_TRUE(res.violated) << res.summary();
    EXPECT_FALSE(res.witness.empty());
    EXPECT_FALSE(verify::replay(seededBugRun, res.witness).ok);
}

TEST(ScheduleFileTest, RoundTripsMetaAndChoices)
{
    ScheduleFile f;
    f.meta["workload"] = "micro 2-node";
    f.meta["report"] = "dirty-single-owner: line 0x40";
    f.choices = {0, 3, 1, 0, 2};

    ScheduleFile g = ScheduleFile::parse(f.serialize());
    EXPECT_EQ(g.meta, f.meta);
    EXPECT_EQ(g.choices, f.choices);

    std::string path = testing::TempDir() + "/explorer_sched_rt.txt";
    f.save(path);
    ScheduleFile h = ScheduleFile::load(path);
    EXPECT_EQ(h.meta, f.meta);
    EXPECT_EQ(h.choices, f.choices);
}

TEST(ScheduleFileTest, RejectsMalformedInput)
{
    SimContext &ctx = SimContext::current();
    bool prev = ctx.logThrowOnFatal;
    ctx.logThrowOnFatal = true;
    EXPECT_THROW(ScheduleFile::parse("bogus"), FatalError);
    EXPECT_THROW(
        ScheduleFile::parse("specrt-schedule v1\nwibble 3\n"),
        FatalError);
    EXPECT_THROW(
        ScheduleFile::parse("specrt-schedule v1\nchoice -2\n"),
        FatalError);
    ctx.logThrowOnFatal = prev;
}

TEST(ScheduleFileTest, RoundTripsFaultKindsInV2)
{
    ScheduleFile f;
    f.meta["scenario"] = "faulty";
    f.choices = {0, 1, 2, 3};
    f.kinds = {verify::ChoiceKind::Sched, verify::ChoiceKind::Fault,
               verify::ChoiceKind::Fault, verify::ChoiceKind::Sched};
    ASSERT_TRUE(f.hasFaults());

    std::string text = f.serialize();
    EXPECT_NE(text.find("specrt-schedule v2"), std::string::npos);
    EXPECT_NE(text.find("fault 1"), std::string::npos);
    EXPECT_NE(text.find("end 4"), std::string::npos);

    ScheduleFile g = ScheduleFile::parse(text);
    EXPECT_EQ(g.choices, f.choices);
    EXPECT_EQ(g.kinds, f.kinds);
    EXPECT_EQ(g.meta, f.meta);
}

TEST(ScheduleFileTest, V1FilesStillParseAsAllSched)
{
    ScheduleFile f = ScheduleFile::parse(
        "specrt-schedule v1\nmeta scenario legacy\nchoice 2\n"
        "choice 0\n");
    EXPECT_EQ(f.choices, (std::vector<size_t>{2, 0}));
    EXPECT_TRUE(f.kinds.empty());
    EXPECT_FALSE(f.hasFaults());
}

TEST(ScheduleFileTest, StructuredErrorsNameLineAndCause)
{
    using verify::ParseError;
    ScheduleFile out;
    ParseError err;

    // Empty input.
    EXPECT_FALSE(ScheduleFile::tryParse("", out, err));
    EXPECT_EQ(err.line, 0u);

    // Version skew.
    EXPECT_FALSE(
        ScheduleFile::tryParse("specrt-schedule v9\n", out, err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("v9"), std::string::npos);

    // Unknown choice kind / keyword.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nwibble 3\nend 1\n", out, err));
    EXPECT_EQ(err.line, 2u);

    // fault lines are a v2 feature.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v1\nfault 1\n", out, err));
    EXPECT_EQ(err.line, 2u);

    // Malformed numbers: sign, garbage, overflow.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice -1\nend 1\n", out, err));
    EXPECT_EQ(err.line, 2u);
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice 1x\nend 1\n", out, err));
    EXPECT_EQ(err.line, 2u);
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice 99999999999999999999999\nend 1\n",
        out, err));
    EXPECT_EQ(err.line, 2u);

    // Fault alternative out of range.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nfault 3\nend 1\n", out, err));
    EXPECT_EQ(err.line, 2u);

    // Truncation: a v2 file without its end trailer, and a trailer
    // whose count disagrees with the positions actually present.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice 1\n", out, err));
    EXPECT_NE(err.message.find("trailer"), std::string::npos);
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice 1\nend 2\n", out, err));
    EXPECT_EQ(err.line, 3u);

    // Content after the trailer.
    EXPECT_FALSE(ScheduleFile::tryParse(
        "specrt-schedule v2\nchoice 1\nend 1\nchoice 0\n", out, err));
    EXPECT_EQ(err.line, 4u);
}

TEST(ScheduleFileTest, TryLoadReportsCorruptionWithoutPanicking)
{
    std::string path = testing::TempDir() + "/truncated.schedule";
    ScheduleFile f;
    f.choices = {0, 1, 2};
    f.save(path);

    // Simulate a torn write: drop the trailer and the last position.
    ScheduleFile whole = ScheduleFile::load(path);
    std::string text = whole.serialize();
    std::string cut = text.substr(0, text.find("choice 2"));
    {
        std::ofstream os(path, std::ios::trunc);
        os << cut;
    }
    ScheduleFile out;
    verify::ParseError err;
    EXPECT_FALSE(ScheduleFile::tryLoad(path, out, err));
    EXPECT_NE(err.message.find("trailer"), std::string::npos);
}

TEST(ScheduleFileTest, WitnessSavedFromAnExplorationReplays)
{
    ExploreOptions o;
    o.maxRuns = 50000;
    ExploreResult res = explore(seededBugRun, o);
    ASSERT_TRUE(res.violated);

    ScheduleFile f;
    f.meta["scenario"] = "seeded-bug micro";
    f.meta["report"] = res.report.substr(0, 60);
    f.choices = res.witness;
    std::string path = testing::TempDir() + "/explorer_witness.txt";
    f.save(path);

    ScheduleFile g = ScheduleFile::load(path);
    RunVerdict v = verify::replay(seededBugRun, g.choices);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.report.find("invariant violation"),
              std::string::npos);
}
