/** @file Unit tests for machine configuration and logging. */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/logging.hh"

using namespace specrt;

namespace
{

/** RAII: route fatal()/panic() into exceptions for the test. */
struct ThrowGuard
{
    ThrowGuard()
    {
        setLogThrowOnFatal(true);
        old = setLogSink([](LogLevel, const std::string &) {});
    }
    ~ThrowGuard()
    {
        setLogThrowOnFatal(false);
        setLogSink(old);
    }
    LogSink old;
};

} // namespace

TEST(Config, DefaultsValidate)
{
    MachineConfig cfg;
    ThrowGuard guard;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, PaperLatenciesAreDefault)
{
    MachineConfig cfg;
    // Component latencies compose to the paper's unloaded round
    // trips: 1 / 12 / 60 / 208 / 291 cycles.
    EXPECT_EQ(cfg.lat.l1Hit, 1u);
    EXPECT_EQ(cfg.lat.l1Hit + cfg.lat.l2Access, 12u);
    EXPECT_EQ(cfg.lat.l1Hit + cfg.lat.l2Access + cfg.lat.dirMemAccess,
              60u);
    EXPECT_EQ(12 + 2 * cfg.lat.netHop + cfg.lat.dirMemAccess, 208u);
    EXPECT_EQ(12 + 3 * cfg.lat.netHop + cfg.lat.dirLookup +
                  cfg.lat.ownerAccess,
              291u);
}

TEST(Config, RejectsBadProcCount)
{
    ThrowGuard guard;
    MachineConfig cfg;
    cfg.numProcs = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.numProcs = 100000;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsNonPow2Caches)
{
    ThrowGuard guard;
    MachineConfig cfg;
    cfg.l1.sizeBytes = 3000;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsLineMismatch)
{
    ThrowGuard guard;
    MachineConfig cfg;
    cfg.l1.lineBytes = 32;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsL2SmallerThanL1)
{
    ThrowGuard guard;
    MachineConfig cfg;
    cfg.l2.sizeBytes = 16 * 1024;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, SummaryMentionsGeometry)
{
    MachineConfig cfg;
    std::string s = cfg.summary();
    EXPECT_NE(s.find("16 procs"), std::string::npos);
    EXPECT_NE(s.find("32KB"), std::string::npos);
    EXPECT_NE(s.find("512KB"), std::string::npos);
}

TEST(Logging, SinkCapturesMessages)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink old = setLogSink(
        [&](LogLevel level, const std::string &msg) {
            captured.emplace_back(level, msg);
        });
    warn("answer is %d", 42);
    inform("hello %s", "world");
    setLogSink(old);
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "answer is 42");
    EXPECT_EQ(captured[1].second, "hello world");
}

TEST(Logging, AssertMacroThrowsWhenArmed)
{
    ThrowGuard guard;
    EXPECT_THROW(
        [] { SPECRT_ASSERT(1 == 2, "math broke: %d", 7); }(),
        FatalError);
    EXPECT_NO_THROW([] { SPECRT_ASSERT(1 == 1, "fine"); }());
}
