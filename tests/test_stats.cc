/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace specrt;

TEST(Stats, ScalarArithmetic)
{
    StatGroup g("g");
    Scalar s(&g, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    s += 3;
    ++s;
    EXPECT_EQ(s.value(), 4.0);
    s = 10;
    EXPECT_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, VectorTotals)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 4);
    v[0] = 1;
    v[3] = 5;
    EXPECT_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(Stats, VectorOutOfRangeThrows)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 2);
    EXPECT_THROW(v[5] = 1, std::out_of_range);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(95);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 95) / 4.0);
    EXPECT_EQ(d.min(), 5.0);
    EXPECT_EQ(d.max(), 95.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, DistributionOverUnderflow)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 10, 20, 5);
    d.sample(5);    // underflow
    d.sample(25);   // overflow
    d.sample(12);
    std::ostringstream os;
    d.print(os, "x");
    std::string out = os.str();
    EXPECT_NE(out.find("underflow 1"), std::string::npos);
    EXPECT_NE(out.find("overflow 1"), std::string::npos);
}

TEST(Stats, GroupDumpContainsNamesAndDescs)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    Scalar a(&root, "a", "stat a");
    Scalar b(&child, "b", "stat b");
    a = 7;
    b = 9;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a 7 # stat a"), std::string::npos);
    EXPECT_NE(out.find("root.child.b 9 # stat b"), std::string::npos);
}

TEST(Stats, SnapshotEmptyDistribution)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 0, 10, 1);
    StatSnapshot snap;
    g.snapshot(snap);
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].first, "g.d.count");
    EXPECT_EQ(snap[0].second, 0.0);
    EXPECT_EQ(snap[1].first, "g.d.mean");
    EXPECT_EQ(snap[1].second, 0.0); // 0/0 must not leak a NaN
    EXPECT_EQ(snap[2].first, "g.d.min");
    EXPECT_EQ(snap[2].second, 0.0);
    EXPECT_EQ(snap[3].first, "g.d.max");
    EXPECT_EQ(snap[3].second, 0.0);
}

TEST(Stats, SnapshotVectorDottedTotal)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    VectorStat v(&child, "v", "a vector", 3);
    v[0] = 1;
    v[2] = 4;
    StatSnapshot snap;
    root.snapshot(snap);
    // Only the aggregate is snapshotted, under the full dotted path.
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "root.child.v.total");
    EXPECT_EQ(snap[0].second, 5.0);
}

TEST(Stats, VectorPrintKeepsPerIndexValues)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 2);
    v[1] = 3;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("g.v[0] 0"), std::string::npos);
    EXPECT_NE(out.find("g.v[1] 3"), std::string::npos);
    EXPECT_NE(out.find("g.v.total 3"), std::string::npos);
}

TEST(Stats, SnapshotWithExplicitPrefix)
{
    StatGroup g("g");
    Scalar s(&g, "s", "a scalar");
    s = 2;
    StatSnapshot snap;
    g.snapshot(snap, "top");
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "top.g.s");
    EXPECT_EQ(snap[0].second, 2.0);
}

TEST(Stats, GroupResetRecurses)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1;
    b = 2;
    root.resetStats();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}
