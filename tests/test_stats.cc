/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace specrt;

TEST(Stats, ScalarArithmetic)
{
    StatGroup g("g");
    Scalar s(&g, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    s += 3;
    ++s;
    EXPECT_EQ(s.value(), 4.0);
    s = 10;
    EXPECT_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, VectorTotals)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 4);
    v[0] = 1;
    v[3] = 5;
    EXPECT_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(Stats, VectorOutOfRangeThrows)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 2);
    EXPECT_THROW(v[5] = 1, std::out_of_range);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(95);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 95) / 4.0);
    EXPECT_EQ(d.min(), 5.0);
    EXPECT_EQ(d.max(), 95.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, DistributionOverUnderflow)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 10, 20, 5);
    d.sample(5);    // underflow
    d.sample(25);   // overflow
    d.sample(12);
    std::ostringstream os;
    d.print(os, "x");
    std::string out = os.str();
    EXPECT_NE(out.find("underflow 1"), std::string::npos);
    EXPECT_NE(out.find("overflow 1"), std::string::npos);
}

TEST(Stats, GroupDumpContainsNamesAndDescs)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    Scalar a(&root, "a", "stat a");
    Scalar b(&child, "b", "stat b");
    a = 7;
    b = 9;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a 7 # stat a"), std::string::npos);
    EXPECT_NE(out.find("root.child.b 9 # stat b"), std::string::npos);
}

TEST(Stats, SnapshotEmptyDistribution)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 0, 10, 1);
    StatSnapshot snap;
    g.snapshot(snap);
    // Moments plus the always-present out-of-range mass; no bucket
    // keys while every bucket is still zero.
    ASSERT_EQ(snap.size(), 6u);
    EXPECT_EQ(snap[0].first, "g.d.count");
    EXPECT_EQ(snap[0].second, 0.0);
    EXPECT_EQ(snap[1].first, "g.d.mean");
    EXPECT_EQ(snap[1].second, 0.0); // 0/0 must not leak a NaN
    EXPECT_EQ(snap[2].first, "g.d.min");
    EXPECT_EQ(snap[2].second, 0.0);
    EXPECT_EQ(snap[3].first, "g.d.max");
    EXPECT_EQ(snap[3].second, 0.0);
    EXPECT_EQ(snap[4].first, "g.d.underflow");
    EXPECT_EQ(snap[4].second, 0.0);
    EXPECT_EQ(snap[5].first, "g.d.overflow");
    EXPECT_EQ(snap[5].second, 0.0);
}

TEST(Stats, SnapshotDistributionBucketsAndOutOfRangeMass)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a dist", 10, 20, 5);
    d.sample(5);  // underflow
    d.sample(25); // overflow
    d.sample(25); // overflow
    d.sample(12); // bucket [10,15)
    d.sample(17); // bucket [15,20)
    d.sample(17); // bucket [15,20)

    auto lookup = [](const StatSnapshot &snap, const std::string &key,
                     double &out) {
        for (const auto &kv : snap) {
            if (kv.first == key) {
                out = kv.second;
                return true;
            }
        }
        return false;
    };

    StatSnapshot snap;
    g.snapshot(snap);
    double v = -1;
    ASSERT_TRUE(lookup(snap, "g.d.underflow", v));
    EXPECT_EQ(v, 1.0);
    ASSERT_TRUE(lookup(snap, "g.d.overflow", v));
    EXPECT_EQ(v, 2.0);
    ASSERT_TRUE(lookup(snap, "g.d.bucket[10,15)", v));
    EXPECT_EQ(v, 1.0);
    ASSERT_TRUE(lookup(snap, "g.d.bucket[15,20)", v));
    EXPECT_EQ(v, 2.0);
    // In-range mass + out-of-range mass must account for every
    // sample (the .count key holds the total).
    ASSERT_TRUE(lookup(snap, "g.d.count", v));
    EXPECT_EQ(v, 6.0);

    // Keys come and go with the data: after a reset the bucket
    // sub-keys disappear again while underflow/overflow stay (at
    // zero), so delta consumers must match by name, not position.
    d.reset();
    StatSnapshot after;
    g.snapshot(after);
    ASSERT_EQ(after.size(), 6u);
    EXPECT_FALSE(lookup(after, "g.d.bucket[10,15)", v));
    ASSERT_TRUE(lookup(after, "g.d.underflow", v));
    EXPECT_EQ(v, 0.0);
    ASSERT_TRUE(lookup(after, "g.d.overflow", v));
    EXPECT_EQ(v, 0.0);
}

#ifndef NDEBUG
TEST(Stats, SnapshotDuplicateDottedNameAsserts)
{
    // Two same-named children each holding a same-named scalar
    // produce two "root.twin.s" entries -- a silent aliasing bug for
    // every by-name consumer (telemetry JSON, timeline deltas), so
    // debug builds must trip the snapshot's duplicate check.
    StatGroup root("root");
    StatGroup twin_a("twin");
    StatGroup twin_b("twin");
    root.addChild(&twin_a);
    root.addChild(&twin_b);
    Scalar sa(&twin_a, "s", "");
    Scalar sb(&twin_b, "s", "");

    setLogThrowOnFatal(true);
    StatSnapshot snap;
    EXPECT_THROW(root.snapshot(snap), FatalError);
    setLogThrowOnFatal(false);
}

TEST(Stats, SnapshotUniqueNamesDoNotTripTheDuplicateCheck)
{
    // Same leaf name under differently named parents is fine: the
    // dotted paths differ.
    StatGroup root("root");
    StatGroup a("a");
    StatGroup b("b");
    root.addChild(&a);
    root.addChild(&b);
    Scalar sa(&a, "s", "");
    Scalar sb(&b, "s", "");

    setLogThrowOnFatal(true);
    StatSnapshot snap;
    EXPECT_NO_THROW(root.snapshot(snap));
    setLogThrowOnFatal(false);
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "root.a.s");
    EXPECT_EQ(snap[1].first, "root.b.s");
}
#endif // !NDEBUG

TEST(Stats, SnapshotVectorDottedTotal)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    VectorStat v(&child, "v", "a vector", 3);
    v[0] = 1;
    v[2] = 4;
    StatSnapshot snap;
    root.snapshot(snap);
    // Only the aggregate is snapshotted, under the full dotted path.
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "root.child.v.total");
    EXPECT_EQ(snap[0].second, 5.0);
}

TEST(Stats, VectorPrintKeepsPerIndexValues)
{
    StatGroup g("g");
    VectorStat v(&g, "v", "a vector", 2);
    v[1] = 3;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("g.v[0] 0"), std::string::npos);
    EXPECT_NE(out.find("g.v[1] 3"), std::string::npos);
    EXPECT_NE(out.find("g.v.total 3"), std::string::npos);
}

TEST(Stats, SnapshotWithExplicitPrefix)
{
    StatGroup g("g");
    Scalar s(&g, "s", "a scalar");
    s = 2;
    StatSnapshot snap;
    g.snapshot(snap, "top");
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "top.g.s");
    EXPECT_EQ(snap[0].second, 2.0);
}

TEST(Stats, GroupResetRecurses)
{
    StatGroup root("root");
    StatGroup child("child");
    root.addChild(&child);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1;
    b = 2;
    root.resetStats();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}
