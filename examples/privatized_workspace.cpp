/**
 * @file
 * Privatization with read-in and copy-out (paper sections 2.2.3 and
 * 3.3): a molecular-dynamics-flavored loop accumulates into a
 * workspace array that carries a live-out result.
 *
 * Each iteration writes scratch slots before reading them
 * (privatizable), but the last slot ("best energy so far") is read
 * on entry in early iterations (needs read-in) and its final value
 * is needed after the loop (needs copy-out). The basic software
 * privatization test rejects the read-before-write pattern; the
 * paper's hardware privatization algorithm with read-in/copy-out
 * accepts it.
 */

#include <cstdio>

#include "core/parallelizer.hh"
#include "runtime/workload.hh"

using namespace specrt;

namespace
{

class EnergyLoop : public Workload
{
  public:
    explicit EnergyLoop(IterNum iters) : n(iters) {}

    std::string name() const override { return "energy"; }

    std::vector<ArrayDecl>
    arrays() const override
    {
        return {
            // Workspace: slot 0 is the live-out "best energy".
            {"ws", 64, 8, TestType::Priv, true, /*liveOut=*/true},
            {"energies", static_cast<uint64_t>(n) + 1, 8,
             TestType::None, false, false},
        };
    }

    IterNum numIters() const override { return n; }

    void
    initData(AddrMap &mem,
             const std::vector<const Region *> &r) override
    {
        mem.write(r[0]->elemAddr(0), 8, 500); // initial best energy
        for (IterNum i = 1; i <= n; ++i)
            mem.write(r[1]->elemAddr(i), 8, (i * 37) % 1000);
    }

    void
    genIteration(IterNum i, IterProgram &out) override
    {
        // Scratch: write-before-read accumulation.
        out.push_back(opLoad(1, 1, i));       // candidate energy
        out.push_back(opStore(0, 1, 1));      // ws(1) = e
        out.push_back(opBusy(20));            // force evaluation
        out.push_back(opLoad(2, 0, 1));
        // Best-so-far: the first half only READS the initial best
        // (read-in needed); later iterations improve it in a
        // write-before-read way.
        if (i <= n / 2) {
            out.push_back(opLoad(3, 0, 0));   // read initial best
            out.push_back(opAlu(4, AluOp::Min, 3, 2));
            out.push_back(opBusy(4));
        } else {
            out.push_back(opAlu(4, AluOp::Min, 2, 2));
            out.push_back(opStore(0, 0, 4));  // write best
            out.push_back(opLoad(5, 0, 0));
        }
    }

  private:
    IterNum n;
};

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    SpeculativeParallelizer spec(cfg);
    std::printf("machine: %s\n", cfg.summary().c_str());

    EnergyLoop loop(64);

    ExecConfig xc;
    xc.mode = ExecMode::HW;
    RunResult hw = spec.run(loop, xc);

    std::printf("\nhardware privatization (read-in/copy-out): %s\n",
                hw.passed ? "PASSED" : "failed");
    std::printf("  loop %llu cycles, copy-out %llu cycles\n",
                (unsigned long long)hw.phases.loop,
                (unsigned long long)hw.phases.copyOut);

    xc.mode = ExecMode::SW;
    RunResult sw = spec.run(loop, xc);
    std::printf("software LRPD (no read-in support): %s",
                sw.passed ? "passed\n" : "FAILED");
    if (!sw.passed) {
        const LrpdAnalysis &a = sw.swAnalyses.at(0);
        std::printf(" -- Aw&Ar=%d Aw&Anp=%d Atw=%llu Atm=%llu -> %s\n",
                    a.awAndAr, a.awAndAnp,
                    (unsigned long long)a.atw,
                    (unsigned long long)a.atm,
                    lrpdVerdictName(a.verdict));
        std::printf("  (the read-before-write prefix is exactly what "
                    "the paper's extended algorithm handles)\n");
    }

    std::printf("\nThe hardware test parallelizes a loop the basic "
                "software test must re-run serially.\n");
    return 0;
}
