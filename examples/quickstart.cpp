/**
 * @file
 * Quickstart: parallelize a loop with subscripted subscripts at run
 * time, on a modeled 16-node CC-NUMA machine, under all four
 * scenarios of the paper (Serial / Ideal / SW-LRPD / HW-speculative).
 *
 * The loop is Figure 1(c) of the paper:
 *
 *     do i = 1, n
 *         A(f(i)) = A(g(i)) + i
 *     enddo
 *
 * where f() and g() come from input data. With `disjoint` subscripts
 * the loop is parallel and both run-time tests pass; with colliding
 * subscripts the hardware aborts the speculative run as soon as the
 * first cross-iteration dependence touches the coherence protocol.
 */

#include <cstdio>

#include "core/parallelizer.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

void
runCase(const SpeculativeParallelizer &spec, bool disjoint)
{
    std::printf("\n=== Fig. 1(c) loop, %s subscripts ===\n",
                disjoint ? "disjoint (parallel)" : "colliding (serial)");

    Fig1CLoop loop(512, 2048, disjoint, /*seed=*/42);
    ExecConfig xc;
    xc.sched = SchedPolicy::Dynamic;
    xc.blockIters = 8;

    ScenarioComparison c = spec.compare(loop, xc);
    std::printf("  %s\n",
                SpeculativeParallelizer::describe(c.serial).c_str());
    std::printf("  %s\n",
                SpeculativeParallelizer::describe(c.ideal).c_str());
    std::printf("  %s\n",
                SpeculativeParallelizer::describe(c.sw).c_str());
    std::printf("  %s\n",
                SpeculativeParallelizer::describe(c.hw).c_str());
    std::printf("  speedups vs serial: ideal %.2f, SW %.2f, HW %.2f\n",
                c.idealSpeedup(), c.swSpeedup(), c.hwSpeedup());
    if (!c.hw.passed) {
        std::printf("  HW abort: %s (detected at cycle %llu, "
                    "node %d)\n",
                    c.hw.hwFailure.reason.c_str(),
                    (unsigned long long)c.hw.hwFailure.tick,
                    c.hw.hwFailure.node);
    }
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numProcs = 16;
    SpeculativeParallelizer spec(cfg);
    std::printf("machine: %s\n", cfg.summary().c_str());

    runCase(spec, true);
    runCase(spec, false);
    return 0;
}
