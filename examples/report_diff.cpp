/**
 * @file
 * Compare two report.json files (bench --report-out) and print the
 * regression-highlighting Markdown table.
 *
 *     report_diff [--tolerance F] <a.json> <b.json>
 *
 * Exit status: 0 = no regressions, 1 = at least one regression,
 * 2 = usage or I/O error. scripts/compare_runs.py is the Python twin
 * with the same direction rules plus informational host-side rows.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hh"

using namespace specrt;

namespace
{

/** Short label for the table header: basename without ".json". */
std::string
labelOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (base.size() > 5 && base.compare(base.size() - 5, 5, ".json") == 0)
        base.resize(base.size() - 5);
    return base.empty() ? path : base;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: report_diff [--tolerance F] <a.json> <b.json>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::DiffOptions opt;
    std::string pathA, pathB;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            opt.tolerance = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
            opt.tolerance = std::strtod(argv[i] + 12, nullptr);
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (pathA.empty()) {
            pathA = argv[i];
        } else if (pathB.empty()) {
            pathB = argv[i];
        } else {
            return usage();
        }
    }
    if (pathA.empty() || pathB.empty())
        return usage();

    obs::RunReport a, b;
    std::string err;
    if (!obs::loadReport(pathA, a, err)) {
        std::fprintf(stderr, "report_diff: %s: %s\n", pathA.c_str(),
                     err.c_str());
        return 2;
    }
    if (!obs::loadReport(pathB, b, err)) {
        std::fprintf(stderr, "report_diff: %s: %s\n", pathB.c_str(),
                     err.c_str());
        return 2;
    }

    obs::DiffResult d = obs::diff(a, b, opt);
    std::string md = obs::diffMarkdown(d, labelOf(pathA), labelOf(pathB));
    std::fwrite(md.data(), 1, md.size(), stdout);
    return d.regressions ? 1 : 0;
}
