/**
 * @file
 * Irregular-mesh relaxation: the class of code that motivates
 * run-time parallelization (SPICE, DYNA-3D, FIDAP... -- loops whose
 * subscripts come from input meshes the compiler never sees).
 *
 * A loop sweeps the mesh edges:
 *
 *     do e = 1, nedges
 *         a = endpoint1(e); b = endpoint2(e)
 *         val(a) = val(a) + w * val(b)     ! subscripted subscripts
 *     enddo
 *
 * Whether iterations collide depends entirely on the edge list. We
 * build an edge coloring-friendly mesh (each sweep touches disjoint
 * node sets -> parallel) and a conflicting variant, and let the
 * hardware decide at run time.
 */

#include <cstdio>

#include "core/parallelizer.hh"
#include "runtime/workload.hh"
#include "sim/random.hh"

using namespace specrt;

namespace
{

/** One relaxation sweep over a batch of mesh edges. */
class MeshSweep : public Workload
{
  public:
    MeshSweep(uint64_t nodes, IterNum edges, bool conflicting,
              uint64_t seed)
        : nodes(nodes), edges(edges)
    {
        Rng rng(seed);
        ends1.resize(edges + 1);
        ends2.resize(edges + 1);
        if (conflicting) {
            // Arbitrary edges: many nodes appear in several edges.
            for (IterNum e = 1; e <= edges; ++e) {
                ends1[e] = static_cast<int64_t>(rng.nextBounded(nodes));
                ends2[e] = static_cast<int64_t>(rng.nextBounded(nodes));
            }
        } else {
            // A matching: every node appears in at most one edge, so
            // the sweep is a doall -- but only the input data knows.
            std::vector<int64_t> shuffled(nodes);
            for (uint64_t n = 0; n < nodes; ++n)
                shuffled[n] = static_cast<int64_t>(n);
            for (uint64_t n = nodes - 1; n > 0; --n)
                std::swap(shuffled[n], shuffled[rng.nextBounded(n + 1)]);
            for (IterNum e = 1; e <= edges; ++e) {
                ends1[e] = shuffled[2 * (e - 1)];
                ends2[e] = shuffled[2 * (e - 1) + 1];
            }
        }
    }

    std::string name() const override { return "mesh-sweep"; }

    std::vector<ArrayDecl>
    arrays() const override
    {
        return {
            {"val", nodes, 8, TestType::NonPriv, true, false},
            {"end1", static_cast<uint64_t>(edges) + 1, 4,
             TestType::None, false, false},
            {"end2", static_cast<uint64_t>(edges) + 1, 4,
             TestType::None, false, false},
        };
    }

    IterNum numIters() const override { return edges; }

    void
    initData(AddrMap &mem,
             const std::vector<const Region *> &r) override
    {
        for (uint64_t n = 0; n < nodes; ++n)
            mem.write(r[0]->elemAddr(n), 8, 1000 + n);
        for (IterNum e = 1; e <= edges; ++e) {
            mem.write(r[1]->elemAddr(e), 4,
                      static_cast<uint64_t>(ends1[e]));
            mem.write(r[2]->elemAddr(e), 4,
                      static_cast<uint64_t>(ends2[e]));
        }
    }

    void
    genIteration(IterNum e, IterProgram &out) override
    {
        out.push_back(opLoad(1, 1, e));                        // a
        out.push_back(opLoad(2, 2, e));                        // b
        out.push_back(opLoad(3, 0, IndexOperand::fromReg(1))); // val(a)
        out.push_back(opLoad(4, 0, IndexOperand::fromReg(2))); // val(b)
        out.push_back(opBusy(12)); // w * val(b), damping, etc.
        out.push_back(opAlu(3, AluOp::Add, 3, 4));
        out.push_back(opStore(0, IndexOperand::fromReg(1), 3));
    }

  private:
    uint64_t nodes;
    IterNum edges;
    std::vector<int64_t> ends1, ends2;
};

void
sweep(const SpeculativeParallelizer &spec, bool conflicting)
{
    std::printf("\n--- %s mesh ---\n",
                conflicting ? "conflicting" : "matching (parallel)");
    MeshSweep mesh(4096, 1024, conflicting, 2024);

    ExecConfig xc;
    xc.sched = SchedPolicy::Dynamic;
    xc.blockIters = 8;

    RunResult serial = spec.run(mesh, [&] {
        ExecConfig s = xc;
        s.mode = ExecMode::Serial;
        return s;
    }());
    RunResult hw = spec.run(mesh, [&] {
        ExecConfig h = xc;
        h.mode = ExecMode::HW;
        return h;
    }());

    std::printf("serial: %llu cycles\n",
                (unsigned long long)serial.totalTicks);
    std::printf("hw:     %llu cycles (%s), speedup %.2f\n",
                (unsigned long long)hw.totalTicks,
                hw.passed ? "speculation passed"
                          : "aborted + re-executed serially",
                static_cast<double>(serial.totalTicks) /
                    static_cast<double>(hw.totalTicks));
    if (!hw.passed) {
        std::printf("  first dependence: %s at node %d, cycle %llu "
                    "of the speculative run\n",
                    hw.hwFailure.reason.c_str(), hw.hwFailure.node,
                    (unsigned long long)hw.hwFailure.tick);
    }
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numProcs = 16;
    SpeculativeParallelizer spec(cfg);
    std::printf("machine: %s\n", cfg.summary().c_str());

    sweep(spec, false);
    sweep(spec, true);

    std::printf("\nThe same binary, the same loop: the input mesh "
                "alone decided whether it ran as a doall.\n");
    return 0;
}
