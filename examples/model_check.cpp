/**
 * @file
 * Model-check the coherence + speculation protocol: enumerate
 * message interleavings of small configurations with the bounded
 * explorer (verify/explorer.hh), assert the protocol invariants
 * after every network delivery and the paper's verdict semantics at
 * the end of every schedule, and shrink + serialize any violation as
 * a replayable schedule file.
 *
 *   model_check                      # the full grid (CI verify job)
 *   model_check --scenario micro-3node-2elem-dpor
 *   model_check --demo-bug[=NAME]    # seeded bug(s): find, shrink, save
 *   model_check --replay-schedule f  # re-execute a saved schedule
 *   model_check --out DIR            # where schedule files land
 *   model_check --jobs N             # parallel subtree workers
 *   model_check --assert-max-runs N  # fail if any scenario used > N runs
 *   model_check --compare            # DPOR-vs-naive run-count table
 *
 * Scenarios:
 *   micro-2node[-dpor]    2 nodes, 1 element, conflicting stores;
 *                         EXHAUSTIVE in both modes (the DPOR variant
 *                         must find the same violations in fewer runs).
 *   micro-3node           3 nodes, 1 element; budgeted naive sweep
 *                         fanned across the campaign worker pool.
 *   micro-3node-dpor      the same state space, exhausted by DPOR.
 *   micro-3node-2elem-dpor  3 nodes x 2 elements: tractable only
 *                         under partial-order reduction.
 *   micro-2node-faults    fault exploration: the DFS decides which
 *                         tolerated message is dropped or duplicated
 *                         (watchdog recovery enabled).
 *   fig3-*                the real HW machine (2 procs) on the
 *                         paper's Fig. 3 archetypes; verdict must be
 *                         schedule-independent (budgeted).
 *
 * Seeded bugs (--demo-bug; the witness regression corpus in
 * tests/schedules/ is generated from these):
 *   seeded-bug            home directory forgets who caches the line
 *   seeded-specbit        NoShr access bit cleared behind the checker
 *   seeded-maxr1st        stale MaxR1st/MinW stamps, no latched failure
 *   seeded-dropped-grant  corruption reachable only when a fault
 *                         schedule drops a write request (fault-choice
 *                         witness)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "mem/directory.hh"
#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/sim_context.hh"
#include "spec/spec_unit.hh"
#include "verify/explorer.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using verify::explore;
using verify::exploreParallel;
using verify::ExploreMode;
using verify::ExploreOptions;
using verify::ExploreResult;
using verify::RunVerdict;
using verify::ScheduleFile;

namespace
{

/**
 * N nodes contending on E elements, element e homed at node e mod N
 * (so distinct elements live at distinct homes and their protocol
 * traffic is independent -- the axis partial-order reduction
 * factors): for every element, every node stores a distinct value
 * and then every node loads it. Properties: the drain terminates
 * quiescent,
 * per-delivery and final invariant sweeps are clean, and each
 * element's final value is one of its stores (serializability).
 * With @p watchdog nonzero the requester watchdog is armed, which
 * enables the recovery legs fault exploration needs.
 */
RunVerdict
runMicroN(int nodes, int elems, Cycles watchdog = 0)
{
    MachineConfig cfg;
    cfg.numProcs = nodes;
    cfg.fault.watchdogTimeout = watchdog;
    DsmSystem dsm(cfg);
    std::vector<Addr> addr(elems);
    for (int e = 0; e < elems; ++e) {
        int id = dsm.memory().alloc("A" + std::to_string(e), 4, 4,
                                    Placement::Fixed, e % nodes);
        addr[e] = dsm.memory().region(id).elemAddr(0);
        dsm.memory().write(addr[e], 4, 7);
    }

    InvariantChecker chk(dsm);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });
    dsm.eventQueue().setPostFireHook([&](Tick, EventKind k) {
        if (k == EventKind::Network)
            chk.checkAll(InvariantChecker::Granularity::Delivery);
    });

    size_t loaded = 0;
    size_t expect_loads = static_cast<size_t>(elems) * nodes;
    std::vector<uint64_t> lv(elems, 0);
    for (int e = 0; e < elems; ++e)
        for (NodeId n = 0; n < nodes; ++n)
            dsm.cacheCtrl(n).store(addr[e], 4,
                                   100 * (e + 1) +
                                       static_cast<uint64_t>(n),
                                   n + 1);
    for (int e = 0; e < elems; ++e)
        for (NodeId n = 0; n < nodes; ++n)
            dsm.cacheCtrl(n).load(addr[e], 4, 1, [&, e](uint64_t v) {
                lv[e] = v;
                ++loaded;
            });
    dsm.eventQueue().run();

    bool quiesced = dsm.quiescent();
    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    dsm.resetMachine(true);

    RunVerdict v;
    std::string err;
    if (loaded != expect_loads)
        err += "load(s) never completed; ";
    if (!quiesced)
        err += "not quiescent after drain; ";
    for (int e = 0; e < elems; ++e) {
        uint64_t fin = dsm.memory().read(addr[e], 4);
        bool fin_ok = false;
        for (NodeId n = 0; n < nodes; ++n)
            fin_ok |= fin == 100 * (e + 1) + static_cast<uint64_t>(n);
        if (!fin_ok)
            err += "elem " + std::to_string(e) + " final value " +
                   std::to_string(fin) +
                   " is no serialization of the stores; ";
    }
    if (viols)
        err += std::to_string(viols) +
               " invariant violation(s), first: " + first;
    v.report = err;
    v.ok = err.empty();
    return v;
}

RunVerdict
runMicro(int nodes)
{
    return runMicroN(nodes, 1);
}

/** One HW-machine run of a Fig. 3 archetype (2 procs, 4 iters). */
RunVerdict
runFig3(Fig3Kind kind, bool expect_pass)
{
    Fig3Loop loop(kind, 4);
    MachineConfig cfg;
    cfg.numProcs = 2;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.sched = SchedPolicy::StaticChunk;
    xc.checkInvariants = true;
    xc.invariantGranularity = InvariantChecker::Granularity::Delivery;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();

    RunVerdict v;
    std::string err;
    if (res.passed != expect_pass)
        err += "verdict flipped under reordering (got " +
               std::to_string(res.passed) + ", expected " +
               std::to_string(expect_pass) + "); ";
    if (res.invariantViolations)
        err += std::to_string(res.invariantViolations) +
               " invariant violation(s); ";
    if (res.infraFailed)
        err += "infra failure: " + res.infraReason;
    v.report = err;
    v.ok = err.empty();
    return v;
}

/** The current run's ReplayController, or null (uncontrolled run). */
verify::ReplayController *
controller()
{
    return dynamic_cast<verify::ReplayController *>(
        SimContext::current().scheduleController);
}

/**
 * Seeded bug #1: a deliberate test-only corruption reachable only
 * off the default schedule, so the explorer has something to find,
 * shrink, and serialize. The "bug": after a reordered drain the home
 * directory forgets who caches the line.
 */
RunVerdict
runSeededBug()
{
    auto *rc = controller();
    bool reordered = false;
    if (rc) {
        rc->onDecision = [&reordered](const EventChoice *, size_t,
                                      size_t take) {
            if (take != 0)
                reordered = true;
        };
    }

    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);
    InvariantChecker chk(dsm);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });
    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.eventQueue().run();
    if (reordered) {
        // The "bug": home forgets who caches the line.
        Addr line = dsm.cacheCtrl(0).cacheArray().lineAlign(a);
        DirEntry &e = dsm.dirCtrl(0).directory().entry(line);
        e.state = DirState::Uncached;
        e.sharers = 0;
        e.owner = invalidNode;
    }
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    RunVerdict v;
    if (viols) {
        v.ok = false;
        v.report = first;
    }
    return v;
}

/**
 * Seeded bug #2: the spec-bit clear race. Two processors store to
 * distinct elements of an armed non-priv region; each store stamps
 * First and sets NoShr at the home speculation unit. Off the default
 * schedule the bug clears one element's NoShr after a baseline sweep
 * already observed it set -- the checker's monotonicity invariant
 * (access bits only accumulate while armed) must attribute it.
 */
RunVerdict
runSeededSpecBit()
{
    auto *rc = controller();
    bool reordered = false;
    if (rc) {
        rc->onDecision = [&reordered](const EventChoice *, size_t,
                                      size_t take) {
            if (take != 0)
                reordered = true;
        };
    }

    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    SpecSystem spec(dsm);
    AddrMap &mem = dsm.memory();
    int id = mem.alloc("A", 8, 4, Placement::Fixed, 0);
    const Region &reg = mem.region(id);
    Addr a0 = reg.elemAddr(0), a1 = reg.elemAddr(1);
    mem.write(a0, 4, 7);
    mem.write(a1, 4, 7);
    spec.table().addNonPriv(reg);
    spec.arm();

    InvariantChecker chk(dsm);
    chk.setSpecSystem(&spec);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });

    dsm.cacheCtrl(1).store(a0, 4, 41, 1);
    dsm.cacheCtrl(0).store(a1, 4, 42, 1);
    dsm.eventQueue().run();

    // Baseline sweep: records NoShr set for both elements.
    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    if (reordered)
        spec.dirUnit(0).npBitsForTest(a0).noShr = false;
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    RunVerdict v;
    if (viols) {
        v.ok = false;
        v.report = first;
    }
    return v;
}

/**
 * Seeded bug #3: stale iteration stamps on a priv-test shared
 * element. Two processors read their private copies (read-in +
 * ReadFirstSig traffic to the shared home); off the default schedule
 * the bug plants MaxR1st > MinW at the shared home with no latched
 * speculation failure -- the checker must flag the missed
 * cross-iteration dependence.
 */
RunVerdict
runSeededMaxR1st()
{
    auto *rc = controller();
    bool reordered = false;
    if (rc) {
        rc->onDecision = [&reordered](const EventChoice *, size_t,
                                      size_t take) {
            if (take != 0)
                reordered = true;
        };
    }

    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    SpecSystem spec(dsm);
    AddrMap &mem = dsm.memory();
    int sid = mem.alloc("A", 4, 4, Placement::Fixed, 0);
    const Region &shared = mem.region(sid);
    mem.write(shared.elemAddr(0), 4, 7);
    std::vector<const Region *> priv;
    for (int p = 0; p < 2; ++p) {
        int pid = mem.alloc("A_priv" + std::to_string(p), 4, 4,
                            Placement::Fixed, p);
        priv.push_back(&mem.region(pid));
        mem.copyBytes(shared.base, priv.back()->base, 4);
    }
    spec.table().addPriv(shared, priv);
    spec.arm();

    InvariantChecker chk(dsm);
    chk.setSpecSystem(&spec);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });

    for (NodeId p = 0; p < 2; ++p)
        dsm.cacheCtrl(p).load(priv[p]->elemAddr(0), 4, p + 1,
                              [](uint64_t) {});
    dsm.eventQueue().run();

    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    if (reordered) {
        PrivSharedDirBits &e =
            spec.dirUnit(0).sharedBitsForTest(shared.elemAddr(0));
        e.maxR1st = 9; // a read-first stamped after...
        e.minW = 3;    // ...a write the unit never flagged
    }
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    RunVerdict v;
    if (viols) {
        v.ok = false;
        v.report = first;
    }
    return v;
}

/**
 * Seeded bug #4 -- reachable ONLY through a fault-choice schedule.
 * Two processors store to one line with the requester watchdog
 * enabled; the corruption triggers only on runs where the explorer
 * chose to DROP a request (the write grant path), i.e.\ after a
 * watchdog retry leg. No pure delivery-order schedule can reach it,
 * so finding it proves fault decisions are genuine choice points.
 */
RunVerdict
runSeededDroppedGrant()
{
    auto *rc = controller();
    bool dropped = false;
    if (rc) {
        rc->onFaultDecision = [&dropped](const FaultChoicePoint &p,
                                         size_t, size_t take) {
            if (take == 1 && p.canDrop)
                dropped = true;
        };
    }

    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fault.watchdogTimeout = 2000;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);
    InvariantChecker chk(dsm);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });
    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.eventQueue().run();
    if (dropped) {
        // The "bug": the retry leg leaves the home amnesiac.
        Addr line = dsm.cacheCtrl(0).cacheArray().lineAlign(a);
        DirEntry &e = dsm.dirCtrl(0).directory().entry(line);
        e.state = DirState::Uncached;
        e.sharers = 0;
        e.owner = invalidNode;
    }
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    RunVerdict v;
    if (viols) {
        v.ok = false;
        v.report = first;
    }
    return v;
}

struct Scenario
{
    const char *name;
    verify::RunFn run;
    ExploreOptions opts;
    bool exhaustive; ///< budgetExhausted counts as a failure
};

std::vector<Scenario>
grid()
{
    std::vector<Scenario> s;
    ExploreOptions backstop; // runaway backstop, not a budget
    backstop.maxRuns = 200000;
    s.push_back({"micro-2node", [] { return runMicro(2); }, backstop,
                 true});
    {
        ExploreOptions o = backstop;
        o.mode = ExploreMode::Dpor;
        s.push_back({"micro-2node-dpor", [] { return runMicro(2); }, o,
                     true});
    }
    {
        ExploreOptions o;
        o.maxDepth = 6;
        o.maxBranch = 3;
        o.maxRuns = 2000;
        s.push_back({"micro-3node", [] { return runMicro(3); }, o,
                     false});
    }
    {
        ExploreOptions o = backstop;
        o.mode = ExploreMode::Dpor;
        s.push_back({"micro-3node-dpor", [] { return runMicro(3); }, o,
                     true});
    }
    {
        // The headline pair: 3 nodes x 2 elements under ONE budget.
        // Naive enumeration needs 5376 schedules and exhausts the
        // budget (expected, not a failure); DPOR must finish inside
        // it -- which also acts as a committed run-count ceiling
        // against reduction regressions (see --assert-max-runs for
        // the CI belt-and-braces check).
        ExploreOptions o;
        o.maxRuns = 2500;
        s.push_back({"micro-3node-2elem-naive",
                     [] { return runMicroN(3, 2); }, o, false});
        o.mode = ExploreMode::Dpor;
        s.push_back({"micro-3node-2elem-dpor",
                     [] { return runMicroN(3, 2); }, o, true});
    }
    {
        // Fault exploration: every tolerated message's fate is a
        // choice point; d-bounded to one fault per schedule. No
        // commutativity theory under faults, so naive mode.
        ExploreOptions o = backstop;
        o.exploreFaults = true;
        o.maxFaults = 1;
        s.push_back({"micro-2node-faults",
                     [] { return runMicroN(2, 1, 2000); }, o, true});
    }
    auto fig3 = [](Fig3Kind k, bool pass) {
        return [k, pass] { return runFig3(k, pass); };
    };
    ExploreOptions fo;
    fo.maxDepth = 3;
    fo.maxRuns = 24;
    s.push_back({"fig3-readin", fig3(Fig3Kind::ReadInNeeded, true),
                 fo, false});
    s.push_back({"fig3-writefirst", fig3(Fig3Kind::WriteFirst, true),
                 fo, false});
    s.push_back({"fig3-flowdep", fig3(Fig3Kind::FlowDep, false), fo,
                 false});
    return s;
}

struct SeededBug
{
    const char *name;
    verify::RunFn run;
    ExploreOptions opts; ///< exploration that can reach it
    const char *about;
};

std::vector<SeededBug>
seededBugs()
{
    ExploreOptions o;
    o.maxRuns = 200000;
    ExploreOptions fo = o;
    fo.exploreFaults = true;
    fo.maxFaults = 1;
    return {
        {"seeded-bug", runSeededBug, o,
         "home directory forgets who caches the line"},
        {"seeded-specbit", runSeededSpecBit, o,
         "NoShr access bit cleared behind the checker's back"},
        {"seeded-maxr1st", runSeededMaxR1st, o,
         "stale MaxR1st/MinW stamps with no latched failure"},
        {"seeded-dropped-grant", runSeededDroppedGrant, fo,
         "corruption on the watchdog retry leg of a dropped request"},
    };
}

/** Scenario or seeded-bug run by name; fills exploration options. */
const verify::RunFn *
findRun(const std::vector<Scenario> &s, const std::string &name,
        verify::RunFn &bug_storage, ExploreOptions &opts_out)
{
    for (const SeededBug &b : seededBugs())
        if (name == b.name) {
            bug_storage = b.run;
            opts_out = b.opts;
            return &bug_storage;
        }
    for (const Scenario &sc : s)
        if (name == sc.name) {
            opts_out = sc.opts;
            return &sc.run;
        }
    return nullptr;
}

/** Save a found violation's shrunk witness as a schedule file. */
void
saveWitness(const ExploreResult &res, const std::string &scenario,
            bool faults, const std::string &path)
{
    ScheduleFile f;
    f.meta["scenario"] = scenario;
    f.meta["report"] = res.report.substr(0, 200);
    if (faults)
        f.meta["faults"] = "1";
    f.choices = res.witness;
    f.kinds = res.witnessKinds;
    f.save(path);
}

/** Explore one scenario; write a schedule file on violation. */
bool
runScenario(const Scenario &sc, const std::string &out_dir, size_t jobs,
            size_t &runs_out)
{
    std::printf("%-22s ", sc.name);
    std::fflush(stdout);
    ExploreResult res;
    if (jobs > 1) {
        campaign::Options copts;
        copts.jobs = jobs;
        res = exploreParallel(sc.run, sc.opts, 1, copts);
    } else {
        res = explore(sc.run, sc.opts);
    }
    runs_out = res.runs;
    bool ok = !res.violated && !(sc.exhaustive && res.budgetExhausted);
    std::printf("%s  %s\n", ok ? "OK  " : "FAIL",
                res.summary().c_str());
    if (res.violated) {
        std::string path = out_dir + "/" + sc.name + ".schedule";
        saveWitness(res, sc.name, sc.opts.exploreFaults, path);
        std::printf("  witness (%zu choices) -> %s\n",
                    res.witness.size(), path.c_str());
    }
    return ok;
}

int
replaySchedule(const std::string &path)
{
    ScheduleFile f;
    verify::ParseError perr;
    if (!ScheduleFile::tryLoad(path, f, perr)) {
        std::fprintf(stderr, "%s: line %zu: %s\n", path.c_str(),
                     perr.line, perr.message.c_str());
        return 1;
    }
    auto it = f.meta.find("scenario");
    if (it == f.meta.end()) {
        std::fprintf(stderr, "%s: no scenario in metadata\n",
                     path.c_str());
        return 1;
    }
    std::vector<Scenario> s = grid();
    verify::RunFn bug;
    ExploreOptions opts;
    const verify::RunFn *run = findRun(s, it->second, bug, opts);
    if (!run) {
        std::fprintf(stderr, "unknown scenario '%s'\n",
                     it->second.c_str());
        return 1;
    }
    bool faults = opts.exploreFaults || f.hasFaults() ||
                  f.meta.count("faults");
    std::printf("replaying %s (%zu choices%s) ...\n",
                it->second.c_str(), f.choices.size(),
                faults ? ", fault decisions live" : "");
    verify::ReplayController rc(f.choices);
    rc.exploreFaults = faults;
    rc.expectKinds = f.kinds;
    RunVerdict v;
    {
        verify::ScopedScheduleController scope(&rc);
        v = (*run)();
    }
    if (rc.kindMismatch) {
        std::fprintf(stderr,
                     "schedule does not describe this scenario: "
                     "decision kinds diverged during replay\n");
        return 1;
    }
    std::printf("%s%s%s\n", v.ok ? "OK: schedule is clean" : "FAIL: ",
                v.report.c_str(), v.ok ? "" : " (reproduced)");
    return v.ok ? 0 : 2;
}

/** Hunt one seeded bug; shrink, save, and confirm the replay. */
int
demoOneBug(const SeededBug &b, const std::string &out_dir)
{
    std::printf("hunting %s (%s) ...\n", b.name, b.about);
    ExploreResult res = explore(b.run, b.opts);
    if (!res.violated) {
        std::printf("  NOT FOUND (%s) -- seeded bugs must always be "
                    "reachable\n",
                    res.summary().c_str());
        return 1;
    }
    size_t fault_positions = 0;
    for (verify::ChoiceKind k : res.witnessKinds)
        fault_positions += k == verify::ChoiceKind::Fault;
    std::printf("  found after %zu runs: %s\n", res.runs,
                res.report.c_str());
    std::printf("  raw witness: %zu choices, shrunk: %zu "
                "(%zu fault decision(s))\n",
                res.rawWitness.size(), res.witness.size(),
                fault_positions);
    std::string path = out_dir + "/" + b.name + ".schedule";
    saveWitness(res, b.name, b.opts.exploreFaults, path);
    RunVerdict v =
        verify::replay(b.run, res.witness, b.opts.exploreFaults);
    if (v.ok) {
        std::printf("  witness does NOT replay -- shrinking bug?\n");
        return 1;
    }
    std::printf("  schedule -> %s (replay with --replay-schedule)\n",
                path.c_str());
    return 0;
}

int
demoBug(const std::string &which, const std::string &out_dir)
{
    int rc = 0;
    bool matched = false;
    for (const SeededBug &b : seededBugs()) {
        if (which != "all" && which != b.name)
            continue;
        matched = true;
        rc |= demoOneBug(b, out_dir);
    }
    if (!matched) {
        std::fprintf(stderr, "unknown seeded bug '%s'\n",
                     which.c_str());
        return 1;
    }
    return rc;
}

/** DPOR-vs-naive run-count table (EXPERIMENTS.md). */
int
compareModes()
{
    struct Row
    {
        const char *name;
        int nodes, elems;
    };
    const Row rows[] = {
        {"micro-2node", 2, 1},
        {"micro-3node", 3, 1},
        {"micro-3node-2elem", 3, 2},
    };
    std::printf("%-20s %12s %12s %8s %8s\n", "scenario", "naive runs",
                "dpor runs", "races", "pruned");
    for (const Row &r : rows) {
        auto run = [&r] { return runMicroN(r.nodes, r.elems); };
        ExploreOptions no;
        no.maxRuns = 50000; // cap the naive side; DPOR must exhaust
        ExploreResult nres = explore(run, no);
        ExploreOptions dopts;
        dopts.mode = ExploreMode::Dpor;
        dopts.maxRuns = 200000;
        ExploreResult dres = explore(run, dopts);
        char naive[32];
        std::snprintf(naive, sizeof(naive), "%zu%s", nres.runs,
                      nres.budgetExhausted ? "+" : "");
        std::printf("%-20s %12s %12zu %8zu %8zu\n", r.name, naive,
                    dres.runs, dres.races, dres.pruned);
        if (nres.violated || dres.violated) {
            std::printf("violation during comparison: %s\n",
                        (nres.violated ? nres : dres).report.c_str());
            return 2;
        }
        if (dres.budgetExhausted) {
            std::printf("DPOR failed to exhaust %s\n", r.name);
            return 2;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    std::string replay_path;
    std::string only;
    std::string demo_which;
    size_t jobs = 1;
    size_t assert_max_runs = 0;
    bool demo = false;
    bool compare = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--replay-schedule")
            replay_path = value();
        else if (arg == "--out")
            out_dir = value();
        else if (arg == "--scenario")
            only = value();
        else if (arg == "--jobs")
            jobs = static_cast<size_t>(std::stoul(value()));
        else if (arg == "--assert-max-runs")
            assert_max_runs = static_cast<size_t>(std::stoul(value()));
        else if (arg == "--compare")
            compare = true;
        else if (arg == "--demo-bug") {
            demo = true;
            demo_which = "all";
        } else if (arg.rfind("--demo-bug=", 0) == 0) {
            demo = true;
            demo_which = arg.substr(std::strlen("--demo-bug="));
        } else {
            std::fprintf(stderr,
                         "usage: model_check [--scenario NAME] "
                         "[--jobs N] [--out DIR] [--demo-bug[=NAME]] "
                         "[--replay-schedule FILE] "
                         "[--assert-max-runs N] [--compare]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (!replay_path.empty())
        return replaySchedule(replay_path);
    if (demo)
        return demoBug(demo_which, out_dir);
    if (compare)
        return compareModes();

    std::vector<Scenario> s = grid();
    bool all_ok = true;
    size_t worst_runs = 0;
    const char *worst = "";
    for (const Scenario &sc : s) {
        if (!only.empty() && only != sc.name)
            continue;
        // Only the budgeted 3-node sweep is big enough to be worth
        // fanning out.
        size_t j = std::strcmp(sc.name, "micro-3node") == 0 ? jobs : 1;
        size_t runs = 0;
        all_ok &= runScenario(sc, out_dir, j, runs);
        if (runs > worst_runs) {
            worst_runs = runs;
            worst = sc.name;
        }
    }
    if (all_ok && assert_max_runs && worst_runs > assert_max_runs) {
        std::printf("run-count ceiling exceeded: %s used %zu runs "
                    "(ceiling %zu) -- partial-order reduction "
                    "regressed\n",
                    worst, worst_runs, assert_max_runs);
        return 3;
    }
    std::printf("%s\n", all_ok ? "model check: all scenarios clean"
                               : "model check: VIOLATIONS FOUND");
    return all_ok ? 0 : 2;
}
