/**
 * @file
 * Model-check the coherence + speculation protocol: enumerate
 * message interleavings of small configurations with the bounded
 * explorer (verify/explorer.hh), assert the protocol invariants
 * after every network delivery and the paper's verdict semantics at
 * the end of every schedule, and shrink + serialize any violation as
 * a replayable schedule file.
 *
 *   model_check                      # the full grid (CI verify job)
 *   model_check --scenario micro-2node
 *   model_check --demo-bug           # seeded bug: find, shrink, save
 *   model_check --replay-schedule f  # re-execute a saved schedule
 *   model_check --out DIR            # where schedule files land
 *   model_check --jobs N             # parallel subtree workers
 *
 * Scenarios:
 *   micro-2node   2 nodes, 1 element, conflicting stores; EXHAUSTIVE
 *                 (every reachable interleaving), per-delivery
 *                 invariant sweeps + serializability at the end.
 *   micro-3node   3 nodes, 1 element; budgeted sweep fanned across
 *                 the campaign worker pool by choice prefix.
 *   fig3-*        the real HW machine (2 procs) on the paper's
 *                 Fig. 3 archetypes; verdict must be schedule-
 *                 independent (budgeted).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/loop_exec.hh"
#include "mem/directory.hh"
#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "sim/sim_context.hh"
#include "verify/explorer.hh"
#include "workloads/microloops.hh"

using namespace specrt;
using verify::explore;
using verify::exploreParallel;
using verify::ExploreOptions;
using verify::ExploreResult;
using verify::RunVerdict;
using verify::ScheduleFile;

namespace
{

/**
 * N nodes contending on one element homed at node 0: every node but
 * the last stores a distinct value, the last node loads. Properties:
 * the drain terminates quiescent, per-delivery and final invariant
 * sweeps are clean, and the final value is one of the stores
 * (serializability).
 */
RunVerdict
runMicro(int nodes)
{
    MachineConfig cfg;
    cfg.numProcs = nodes;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);

    InvariantChecker chk(dsm);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });
    dsm.eventQueue().setPostFireHook([&](Tick, EventKind k) {
        if (k == EventKind::Network)
            chk.checkAll(InvariantChecker::Granularity::Delivery);
    });

    bool loaded = false;
    uint64_t lv = 0;
    for (NodeId n = 0; n < nodes; ++n)
        dsm.cacheCtrl(n).store(a, 4, 100 + static_cast<uint64_t>(n),
                               n + 1);
    dsm.cacheCtrl(nodes - 1).load(a, 4, 1, [&](uint64_t v) {
        lv = v;
        loaded = true;
    });
    dsm.eventQueue().run();

    bool quiesced = dsm.quiescent();
    chk.checkAll(InvariantChecker::Granularity::Quiesce);
    dsm.resetMachine(true);
    uint64_t fin = dsm.memory().read(a, 4);

    RunVerdict v;
    std::string err;
    if (!loaded)
        err += "load never completed; ";
    if (!quiesced)
        err += "not quiescent after drain; ";
    bool fin_ok = false;
    for (NodeId n = 0; n < nodes; ++n)
        fin_ok |= fin == 100 + static_cast<uint64_t>(n);
    if (!fin_ok)
        err += "final value " + std::to_string(fin) +
               " is no serialization of the stores; ";
    if (viols)
        err += std::to_string(viols) +
               " invariant violation(s), first: " + first;
    v.report = err;
    v.ok = err.empty();
    return v;
}

/** One HW-machine run of a Fig. 3 archetype (2 procs, 4 iters). */
RunVerdict
runFig3(Fig3Kind kind, bool expect_pass)
{
    Fig3Loop loop(kind, 4);
    MachineConfig cfg;
    cfg.numProcs = 2;
    ExecConfig xc;
    xc.mode = ExecMode::HW;
    xc.sched = SchedPolicy::StaticChunk;
    xc.checkInvariants = true;
    xc.invariantGranularity = InvariantChecker::Granularity::Delivery;
    LoopExecutor exec(cfg, loop, xc);
    RunResult res = exec.run();

    RunVerdict v;
    std::string err;
    if (res.passed != expect_pass)
        err += "verdict flipped under reordering (got " +
               std::to_string(res.passed) + ", expected " +
               std::to_string(expect_pass) + "); ";
    if (res.invariantViolations)
        err += std::to_string(res.invariantViolations) +
               " invariant violation(s); ";
    if (res.infraFailed)
        err += "infra failure: " + res.infraReason;
    v.report = err;
    v.ok = err.empty();
    return v;
}

/**
 * The seeded-bug demo: a deliberate test-only corruption reachable
 * only off the default schedule, so the explorer has something to
 * find, shrink, and serialize (EXPERIMENTS.md walkthrough; CI checks
 * the artifact replays).
 */
RunVerdict
runSeededBug()
{
    auto *rc = dynamic_cast<verify::ReplayController *>(
        SimContext::current().scheduleController);
    bool reordered = false;
    if (rc) {
        rc->onDecision = [&reordered](const EventChoice *, size_t,
                                      size_t take) {
            if (take != 0)
                reordered = true;
        };
    }

    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 4, 4, Placement::Fixed, 0);
    Addr a = dsm.memory().region(id).elemAddr(0);
    dsm.memory().write(a, 4, 7);
    InvariantChecker chk(dsm);
    size_t viols = 0;
    std::string first;
    chk.setHandler([&](const ProtocolViolation &v) {
        if (!viols++)
            first = v.str();
    });
    dsm.cacheCtrl(0).store(a, 4, 11, 1);
    dsm.cacheCtrl(1).store(a, 4, 22, 2);
    dsm.eventQueue().run();
    if (reordered) {
        // The "bug": home forgets who caches the line.
        Addr line = dsm.cacheCtrl(0).cacheArray().lineAlign(a);
        DirEntry &e = dsm.dirCtrl(0).directory().entry(line);
        e.state = DirState::Uncached;
        e.sharers = 0;
        e.owner = invalidNode;
    }
    chk.checkAll(InvariantChecker::Granularity::Quiesce);

    RunVerdict v;
    if (viols) {
        v.ok = false;
        v.report = first;
    }
    return v;
}

struct Scenario
{
    const char *name;
    verify::RunFn run;
    ExploreOptions opts;
    bool exhaustive; ///< budgetExhausted counts as a failure
};

std::vector<Scenario>
grid()
{
    std::vector<Scenario> s;
    {
        ExploreOptions o;
        o.maxRuns = 200000; // runaway backstop, not a budget
        s.push_back({"micro-2node", [] { return runMicro(2); }, o,
                     true});
    }
    {
        ExploreOptions o;
        o.maxDepth = 6;
        o.maxBranch = 3;
        o.maxRuns = 2000;
        s.push_back({"micro-3node", [] { return runMicro(3); }, o,
                     false});
    }
    auto fig3 = [](Fig3Kind k, bool pass) {
        return [k, pass] { return runFig3(k, pass); };
    };
    ExploreOptions fo;
    fo.maxDepth = 3;
    fo.maxRuns = 24;
    s.push_back({"fig3-readin", fig3(Fig3Kind::ReadInNeeded, true),
                 fo, false});
    s.push_back({"fig3-writefirst", fig3(Fig3Kind::WriteFirst, true),
                 fo, false});
    s.push_back({"fig3-flowdep", fig3(Fig3Kind::FlowDep, false), fo,
                 false});
    return s;
}

const verify::RunFn *
findRun(const std::vector<Scenario> &s, const std::string &name,
        verify::RunFn &bug_storage)
{
    if (name == "seeded-bug") {
        bug_storage = runSeededBug;
        return &bug_storage;
    }
    for (const Scenario &sc : s)
        if (name == sc.name)
            return &sc.run;
    return nullptr;
}

/** Explore one scenario; write a schedule file on violation. */
bool
runScenario(const Scenario &sc, const std::string &out_dir,
            size_t jobs)
{
    std::printf("%-16s ", sc.name);
    std::fflush(stdout);
    ExploreResult res;
    if (jobs > 1) {
        campaign::Options copts;
        copts.jobs = jobs;
        res = exploreParallel(sc.run, sc.opts, 1, copts);
    } else {
        res = explore(sc.run, sc.opts);
    }
    bool ok = !res.violated && !(sc.exhaustive && res.budgetExhausted);
    std::printf("%s  %s\n", ok ? "OK  " : "FAIL",
                res.summary().c_str());
    if (res.violated) {
        ScheduleFile f;
        f.meta["scenario"] = sc.name;
        f.meta["report"] = res.report.substr(0, 200);
        f.choices = res.witness;
        std::string path = out_dir + "/" + sc.name + ".schedule";
        f.save(path);
        std::printf("  witness (%zu choices) -> %s\n",
                    res.witness.size(), path.c_str());
    }
    return ok;
}

int
replaySchedule(const std::string &path)
{
    ScheduleFile f = ScheduleFile::load(path);
    auto it = f.meta.find("scenario");
    if (it == f.meta.end()) {
        std::fprintf(stderr, "%s: no scenario in metadata\n",
                     path.c_str());
        return 1;
    }
    std::vector<Scenario> s = grid();
    verify::RunFn bug;
    const verify::RunFn *run = findRun(s, it->second, bug);
    if (!run) {
        std::fprintf(stderr, "unknown scenario '%s'\n",
                     it->second.c_str());
        return 1;
    }
    std::printf("replaying %s (%zu choices) ...\n",
                it->second.c_str(), f.choices.size());
    RunVerdict v = verify::replay(*run, f.choices);
    std::printf("%s%s%s\n", v.ok ? "OK: schedule is clean" : "FAIL: ",
                v.report.c_str(), v.ok ? "" : " (reproduced)");
    return v.ok ? 0 : 2;
}

int
demoBug(const std::string &out_dir)
{
    std::printf("hunting the seeded directory-corruption bug ...\n");
    ExploreOptions o;
    o.maxRuns = 200000;
    ExploreResult res = explore(runSeededBug, o);
    if (!res.violated) {
        std::printf("not found (%s) -- the seeded bug should always "
                    "be reachable\n",
                    res.summary().c_str());
        return 1;
    }
    std::printf("found after %zu runs: %s\n", res.runs,
                res.report.c_str());
    std::printf("raw witness: %zu choices, shrunk: %zu\n",
                res.rawWitness.size(), res.witness.size());
    ScheduleFile f;
    f.meta["scenario"] = "seeded-bug";
    f.meta["report"] = res.report.substr(0, 200);
    f.choices = res.witness;
    std::string path = out_dir + "/seeded-bug.schedule";
    f.save(path);
    std::printf("schedule -> %s (replay with --replay-schedule)\n",
                path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    std::string replay_path;
    std::string only;
    size_t jobs = 1;
    bool demo = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--replay-schedule")
            replay_path = value();
        else if (arg == "--out")
            out_dir = value();
        else if (arg == "--scenario")
            only = value();
        else if (arg == "--jobs")
            jobs = static_cast<size_t>(std::stoul(value()));
        else if (arg == "--demo-bug")
            demo = true;
        else {
            std::fprintf(stderr,
                         "usage: model_check [--scenario NAME] "
                         "[--jobs N] [--out DIR] [--demo-bug] "
                         "[--replay-schedule FILE]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (!replay_path.empty())
        return replaySchedule(replay_path);
    if (demo)
        return demoBug(out_dir);

    std::vector<Scenario> s = grid();
    bool all_ok = true;
    for (const Scenario &sc : s) {
        if (!only.empty() && only != sc.name)
            continue;
        // Only the budgeted 3-node sweep is big enough to be worth
        // fanning out.
        size_t j = std::strcmp(sc.name, "micro-3node") == 0 ? jobs : 1;
        all_ok &= runScenario(sc, out_dir, j);
    }
    std::printf("%s\n", all_ok ? "model check: all scenarios clean"
                               : "model check: VIOLATIONS FOUND");
    return all_ok ? 0 : 2;
}
