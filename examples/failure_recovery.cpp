/**
 * @file
 * Failure handling end to end: run a genuinely serial loop
 * (Figure 1(a): A(i) = A(i) + A(i-1)) speculatively, watch the
 * hardware abort on the first cross-iteration dependence, restore
 * the checkpoint, and re-execute serially -- and compare with the
 * software scheme, which only learns of the failure after the whole
 * loop, the merge, and the analysis have run.
 *
 * Run with SPECRT_TRACE=abort_trace.json to also capture the
 * protocol trace of the abort (Chrome/Perfetto trace-event JSON; see
 * EXPERIMENTS.md, "Tracing a speculative abort"). The reconstructed
 * abort cause prints below when tracing is on.
 */

#include <cstdio>

#include "core/parallelizer.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

void
phaseLine(const char *name, Tick t)
{
    if (t)
        std::printf("    %-10s %10llu cycles\n", name,
                    (unsigned long long)t);
}

void
report(const char *title, const RunResult &r)
{
    std::printf("\n%s: %llu cycles total, test %s\n", title,
                (unsigned long long)r.totalTicks,
                r.passed ? "passed" : "FAILED");
    phaseLine("backup", r.phases.backup);
    phaseLine("zero-out", r.phases.zeroOut);
    phaseLine("loop", r.phases.loop);
    phaseLine("merge", r.phases.merge);
    phaseLine("analysis", r.phases.analysis);
    phaseLine("restore", r.phases.restore);
    phaseLine("serial", r.phases.serial);
    std::printf("    iterations speculated: %llu\n",
                (unsigned long long)r.itersExecuted);
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    SpeculativeParallelizer spec(cfg);
    std::printf("machine: %s\n", cfg.summary().c_str());
    std::printf("loop: do i: A(i) = A(i) + A(i-1)  (512 iterations; "
                "every iteration depends on the previous one)\n");

    Fig1ALoop loop(512);

    ExecConfig xc;
    xc.sched = SchedPolicy::Dynamic;
    xc.blockIters = 2;

    xc.mode = ExecMode::Serial;
    RunResult serial = spec.run(loop, xc);
    report("Serial", serial);

    xc.mode = ExecMode::HW;
    RunResult hw = spec.run(loop, xc);
    report("HW speculation", hw);
    std::printf("    abort reason: %s (node %d)\n",
                hw.hwFailure.reason.c_str(), hw.hwFailure.node);
    if (hw.hwFailure.cause.valid)
        std::printf("    %s\n", hw.hwFailure.cause.str().c_str());

    xc.mode = ExecMode::SW;
    RunResult sw = spec.run(loop, xc);
    report("SW (LRPD)", sw);

    double hw_over = static_cast<double>(hw.totalTicks) /
                     static_cast<double>(serial.totalTicks);
    double sw_over = static_cast<double>(sw.totalTicks) /
                     static_cast<double>(serial.totalTicks);
    std::printf("\nslowdown vs plain serial execution: HW %.2fx, "
                "SW %.2fx\n", hw_over, sw_over);
    std::printf("The hardware detected the dependence after %llu of "
                "512 iterations; the software ran all 512 plus the "
                "test phases before it could tell.\n",
                (unsigned long long)hw.itersExecuted);
    return 0;
}
