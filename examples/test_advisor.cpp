/**
 * @file
 * The test-selection advisor in action (paper section 2.2.4): the
 * compiler cannot analyze these loops, so profile one execution,
 * evaluate every run-time test on the observed access pattern, and
 * pick a test per array.
 *
 * We profile three loops with very different characters:
 *  - the Adm analogue (mixed: an index-permuted field plus a
 *    write-before-read workspace),
 *  - a histogram (a reduction neither paper test passes),
 *  - a genuinely serial recurrence.
 */

#include <cstdio>

#include "core/advisor.hh"
#include "core/parallelizer.hh"
#include "workloads/adm.hh"
#include "workloads/microloops.hh"

using namespace specrt;

namespace
{

void
advise(const SpeculativeParallelizer &spec, Workload &w)
{
    std::printf("\n=== %s ===\n", w.name().c_str());

    // Profile: one parallel execution with the trace kept. (A real
    // system would use a previous run's statistics, as the paper
    // suggests.)
    ExecConfig xc;
    xc.mode = ExecMode::Ideal;
    xc.keepTrace = true;
    xc.traceAllArrays = true;
    RunResult profile = spec.run(w, xc);

    std::vector<ArrayAdvice> advice =
        adviseTests(profile.trace, w.arrays());
    std::printf("%s", adviceReport(advice).c_str());
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    SpeculativeParallelizer spec(cfg);
    std::printf("machine: %s\n", cfg.summary().c_str());

    AdmParams ap;
    ap.iters = 32;
    AdmLoop adm(ap);
    advise(spec, adm);

    HistogramParams hp;
    hp.iters = 64;
    HistogramLoop hist(hp);
    advise(spec, hist);

    Fig1ALoop serial_loop(64);
    advise(spec, serial_loop);

    std::printf("\nThe advisor picks the cheapest test each access "
                "pattern can pass; the serial recurrence is flagged "
                "so the compiler can skip speculation entirely.\n");
    return 0;
}
