/**
 * @file
 * Reproduces Figure 11: speedups of the Ideal, SW (LRPD), and HW
 * (speculative coherence extensions) parallel executions of the four
 * loops, relative to Serial (uniprocessor, all data local).
 *
 * Ocean runs with 8 processors; the other loops with 16, as in the
 * paper. Absolute speedups depend on the synthetic substrates; the
 * shape to check is: Ideal > HW > SW for every loop, HW roughly
 * half-way between SW and Ideal, and an HW/SW ratio around the
 * paper's "50% faster / twice the speedup".
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(fig11_speedup)
{
    printHeader("Figure 11: speedups of the parallel executions "
                "(vs. Serial)");
    std::vector<int> w = {8, 6, 9, 9, 9, 9, 11, 24};
    printRow({"loop", "procs", "Ideal", "SW", "HW", "HW/SW",
              "paper(I/S/H)", "note"},
             w);

    // The four loops are independent simulations: fan them out
    // through the campaign runner. With the default --jobs 1 this
    // runs inline (identical to the old sequential sweep, so the
    // perf gate's ticks/s is undisturbed); with --jobs N the loops
    // run concurrently and the telemetry shards merge in loop order.
    std::vector<PaperLoop> loops = paperLoops();
    std::vector<ScenarioComparison> comps(loops.size());
    auto outcomes = runJobs(loops.size(),
                            [&](size_t id, SimContext &) {
                                comps[id] = runAll(loops[id]);
                            });
    if (!campaign::allOk(outcomes)) {
        std::fprintf(stderr, "fig11: %s\n",
                     campaign::describeFailures(outcomes).c_str());
        return 1;
    }

    double sw_sum = 0, hw_sum = 0, ideal_sum = 0;
    int n16 = 0;
    for (size_t i = 0; i < loops.size(); ++i) {
        const PaperLoop &loop = loops[i];
        const ScenarioComparison &c = comps[i];
        double si = c.idealSpeedup();
        double ss = c.swSpeedup();
        double sh = c.hwSpeedup();
        if (loop.procs == 16) {
            sw_sum += ss;
            hw_sum += sh;
            ideal_sum += si;
            ++n16;
        }
        std::string paper = fmt(loop.paperIdeal, 0) + "/" +
                            fmt(loop.paperSw, 0) + "/" +
                            fmt(loop.paperHw, 0);
        std::string note;
        if (!c.sw.passed || !c.hw.passed)
            note = "TEST FAILED";
        printRow({loop.name, std::to_string(loop.procs), fmt(si),
                  fmt(ss), fmt(sh), fmt(sh / ss), paper, note},
                 w);
    }

    std::printf("\n16-processor averages: Ideal %.2f, SW %.2f, HW "
                "%.2f (paper: HW ~6.7, SW ~2.9)\n",
                ideal_sum / n16, sw_sum / n16, hw_sum / n16);
    std::printf("Shape checks: HW between SW and Ideal on every "
                "loop; HW/SW ratio ~1.5-2.5x.\n");
    telemetry().metric("ideal_speedup_mean_16p", ideal_sum / n16);
    telemetry().metric("sw_speedup_mean_16p", sw_sum / n16);
    telemetry().metric("hw_speedup_mean_16p", hw_sum / n16);
    return 0;
}
