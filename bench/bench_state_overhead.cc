/**
 * @file
 * Reproduces the storage-overhead comparison of paper section 3.4
 * and reports the measured extra coherence traffic of the hardware
 * scheme.
 *
 * Per array element, the software scheme needs 3 shadow time stamps
 * (4 with read-in support); the hardware scheme needs
 * max(2, 2 + log2(P)) bits without read-in support, or
 * max(2 time stamps, 2 + log2(P) bits) with it. With 16-bit time
 * stamps (loops up to 2^16 iterations) the hardware state is an
 * order of magnitude smaller.
 */

#include <cmath>
#include <cstdio>

#include "core/loop_exec.hh"
#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(state_overhead)
{
    printHeader("Section 3.4: per-element state, software vs "
                "hardware (time stamp = 16 bits)");

    std::vector<int> w = {8, 16, 16, 16, 18};
    printRow({"procs", "SW (no read-in)", "SW (read-in)",
              "HW (no read-in)", "HW (read-in)"},
             w);
    const int ts_bits = 16;
    for (int procs : {4, 8, 16, 32, 64}) {
        int log_p = static_cast<int>(std::ceil(std::log2(procs)));
        int sw_no = 3 * ts_bits;
        int sw_ri = 4 * ts_bits;
        int hw_no = std::max(2, 2 + log_p);
        int hw_ri = std::max(2 * ts_bits, 2 + log_p);
        printRow({std::to_string(procs),
                  std::to_string(sw_no) + " bits",
                  std::to_string(sw_ri) + " bits",
                  std::to_string(hw_no) + " bits",
                  std::to_string(hw_ri) + " bits"},
                 w);
    }

    printHeader("Measured speculation traffic (messages per tested "
                "access)");
    std::vector<int> w2 = {8, 12, 14, 14, 14, 12, 10};
    printRow({"loop", "accesses", "First_upd", "ROnly_upd",
              "rd1st/1stwr", "read-ins", "msgs/acc"},
             w2);

    for (const PaperLoop &loop : paperLoops()) {
        MachineConfig cfg;
        cfg.numProcs = loop.procs;
        auto wl = loop.make();
        ExecConfig xc = loop.xc;
        xc.mode = ExecMode::HW;
        xc.keepTrace = true;
        if (loop.name == "P3m")
            xc.maxIters = quickPick<IterNum>(4000, 1000);
        LoopExecutor exec(cfg, *wl, xc);
        RunResult r = exec.run();
        telemetry().recordRun(r);
        SpecSystem *spec = exec.specSystem();
        double accesses = static_cast<double>(r.trace.size());
        double fu = spec->firstUpdates.value();
        double ru = spec->rOnlyUpdates.value();
        double sig = spec->readFirstSigs.value() +
                     spec->firstWriteSigs.value();
        double ri = spec->readIns.value();
        printRow({loop.name, fmt(accesses, 0), fmt(fu, 0), fmt(ru, 0),
                  fmt(sig, 0), fmt(ri, 0),
                  fmt((fu + ru + sig + ri) / std::max(1.0, accesses),
                      3)},
                 w2);
    }

    std::printf("\nShape: a small fraction of tested accesses "
                "generates extra protocol messages; the rest ride "
                "on ordinary coherence transactions or stay in the "
                "cache tags.\n");
    return 0;
}
