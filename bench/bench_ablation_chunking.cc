/**
 * @file
 * Ablation (paper section 4.1): grouping contiguous iterations into
 * chunks ("superiterations") to reduce the privatization algorithm's
 * overhead. Larger scheduling blocks mean fewer per-iteration tag
 * clears, fewer read-first/first-write signals, and fewer protocol
 * tests -- at the price of possible load imbalance. At the extreme
 * (one chunk per processor, i.e.\ static scheduling) overhead is
 * minimal but P3m's imbalance bites.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(ablation_chunking)
{
    printHeader("Ablation: scheduling block size under the "
                "privatization algorithm (P3m, 16 procs)");

    MachineConfig cfg;
    cfg.numProcs = 16;

    std::vector<int> w = {16, 12, 12, 12, 14};
    printRow({"blocking", "HW ticks", "sync%", "spd vs b=1", ""}, w);

    ExecConfig base;
    base.maxIters = quickPick<IterNum>(4000, 1000);

    double first = 0;
    for (IterNum block : {1, 2, 4, 8, 16, 32}) {
        P3mLoop loop;
        ExecConfig xc = base;
        xc.mode = ExecMode::HW;
        xc.sched = SchedPolicy::Dynamic;
        xc.blockIters = block;
        RunResult r = runMachine(cfg, loop, xc);
        double tot = r.agg.busy + r.agg.sync + r.agg.mem;
        if (first == 0)
            first = static_cast<double>(r.totalTicks);
        printRow({"dynamic/" + std::to_string(block),
                  fmtTicks(r.totalTicks),
                  fmt(100 * r.agg.sync / tot, 1),
                  fmt(first / static_cast<double>(r.totalTicks)),
                  r.passed ? "" : "[failed]"},
                 w);
    }

    // The processor-wise extreme: one static chunk per processor.
    {
        P3mLoop loop;
        ExecConfig xc = base;
        xc.mode = ExecMode::HW;
        xc.sched = SchedPolicy::StaticChunk;
        RunResult r = runMachine(cfg, loop, xc);
        double tot = r.agg.busy + r.agg.sync + r.agg.mem;
        printRow({"static (1/proc)", fmtTicks(r.totalTicks),
                  fmt(100 * r.agg.sync / tot, 1),
                  fmt(first / static_cast<double>(r.totalTicks)),
                  r.passed ? "" : "[failed]"},
                 w);
    }

    std::printf("\nShape: moderate blocks beat single-iteration "
                "blocks; the static extreme suffers P3m's "
                "imbalance (higher sync%%).\n");
    return 0;
}
