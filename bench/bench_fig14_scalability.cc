/**
 * @file
 * Reproduces Figure 14: scalability of the software and hardware
 * schemes -- speedup of Ideal / SW / HW on 4, 8, and 16 processors
 * for P3m, Adm, and Track (Ocean is too small to run on 16, as in
 * the paper).
 *
 * Shape to verify: the SW curves lie below the HW curves and
 * saturate earlier (the merge/analysis work per processor stays
 * constant as processors are added); the HW curves keep rising.
 * In the paper P3m's SW speedup is lower at 16 than at 8.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(fig14_scalability)
{
    printHeader("Figure 14: scalability (speedup vs. processors)");
    // Quick mode keeps the endpoints of the processor sweep.
    const std::vector<int> counts =
        quick() ? std::vector<int>{4, 16} : std::vector<int>{4, 8, 16};

    for (const PaperLoop &loop : paperLoops()) {
        if (loop.name == "Ocean")
            continue; // too small for 16 processors, as in the paper

        RunResult serial = runScenarioWith(loop, ExecMode::Serial, 16);
        double st = static_cast<double>(serial.totalTicks);

        std::printf("\n%s:\n", loop.name.c_str());
        std::printf("  %-7s %8s %8s %8s\n", "procs", "Ideal", "SW",
                    "HW");
        double prev_sw = 0;
        bool sw_saturating = false;
        for (int procs : counts) {
            RunResult ideal =
                runScenarioWith(loop, ExecMode::Ideal, procs);
            RunResult sw = runScenarioWith(loop, ExecMode::SW, procs);
            RunResult hw = runScenarioWith(loop, ExecMode::HW, procs);
            double si = st / static_cast<double>(ideal.totalTicks);
            double ss = st / static_cast<double>(sw.totalTicks);
            double sh = st / static_cast<double>(hw.totalTicks);
            std::printf("  %-7d %8.2f %8.2f %8.2f%s\n", procs, si, ss,
                        sh,
                        (!ideal.passed || !sw.passed || !hw.passed)
                            ? "  [failed]"
                            : "");
            if (procs > 4 && ss < prev_sw * 1.15)
                sw_saturating = true;
            prev_sw = ss;
        }
        std::printf("  SW curve %s (paper: SW saturates earlier than "
                    "HW)\n",
                    sw_saturating ? "saturates" : "still climbing");
    }

    // P3m with its workspaces at full application size: the shadow
    // working set and the all-to-all merge collapse the software
    // scheme as processors are added -- the paper's P3m curve, where
    // SW speedup is LOWER at 16 processors than at 8.
    {
        std::printf("\nP3m (large workspaces, the paper's SW decline "
                    "at 16 procs):\n");
        std::printf("  %-7s %8s %8s %8s\n", "procs", "Ideal", "SW",
                    "HW");
        P3mParams pp;
        pp.wsElems = quickPick<uint64_t>(8192, 2048);
        IterNum iterCap = quickPick<IterNum>(15000, 2000);
        RunResult serial;
        {
            MachineConfig cfg;
            cfg.numProcs = 16;
            P3mLoop wl(pp);
            ExecConfig xc;
            xc.mode = ExecMode::Serial;
            xc.maxIters = iterCap;
            serial = runMachine(cfg, wl, xc);
        }
        double st = static_cast<double>(serial.totalTicks);
        double sw8 = 0, sw16 = 0;
        for (int procs : counts) {
            double spd[3];
            ExecMode modes[3] = {ExecMode::Ideal, ExecMode::SW,
                                 ExecMode::HW};
            for (int m = 0; m < 3; ++m) {
                MachineConfig cfg;
                cfg.numProcs = procs;
                P3mLoop wl(pp);
                ExecConfig xc;
                xc.mode = modes[m];
                xc.sched = SchedPolicy::Dynamic;
                xc.blockIters = 4;
                xc.maxIters = iterCap;
                spd[m] = st / static_cast<double>(
                                  runMachine(cfg, wl, xc).totalTicks);
            }
            std::printf("  %-7d %8.2f %8.2f %8.2f\n", procs, spd[0],
                        spd[1], spd[2]);
            if (procs == 8)
                sw8 = spd[1];
            if (procs == 16)
                sw16 = spd[1];
        }
        std::printf("  SW at 16 procs %s SW at 8 procs (paper: "
                    "lower)\n",
                    sw16 < sw8 ? "is LOWER than" : "exceeds");
        telemetry().metric("p3m_large_sw_speedup_8p", sw8);
        telemetry().metric("p3m_large_sw_speedup_16p", sw16);
    }
    return 0;
}
