/**
 * @file
 * Validates the machine against the paper's section 5.1 latency
 * table: unloaded round-trip latencies of 1 / 12 / 60 / 208 / 291
 * cycles to the primary cache, secondary cache, local memory,
 * 2-hop remote memory, and 3-hop remote memory (dirty in a third
 * node's cache).
 */

#include <cstdio>

#include "mem/dsm.hh"
#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

struct Probe
{
    MachineConfig cfg;
    std::unique_ptr<DsmSystem> dsm;
    const Region *r;

    Probe()
    {
        cfg.numProcs = 4;
        dsm = std::make_unique<DsmSystem>(cfg);
        int id = dsm->memory().alloc("probe", 1024 * 1024 + 4096, 4,
                                     Placement::Fixed, 0);
        r = &dsm->memory().region(id);
    }

    Tick
    load(NodeId n, Addr a)
    {
        Tick t0 = dsm->eventQueue().curTick();
        Tick t1 = t0;
        dsm->cacheCtrl(n).load(a, 4, 1, [&](uint64_t) {
            t1 = dsm->eventQueue().curTick();
        });
        dsm->eventQueue().run();
        return t1 - t0;
    }

    void
    store(NodeId n, Addr a)
    {
        dsm->cacheCtrl(n).store(a, 4, 1, 1);
        dsm->eventQueue().run();
    }
};

} // namespace

SPECRT_BENCH_MAIN(latency_table)
{
    printHeader("Section 5.1 latency table: unloaded round trips "
                "(cycles)");

    Probe p;
    Addr a = p.r->base;

    // L1 hit: load twice from the home node.
    p.load(1, a);
    Tick l1 = p.load(1, a);

    // L2 hit: displace the L1 entry only (conflicting L1 set, 512
    // lines away; different L2 set).
    p.load(1, a + 512 * 64);
    Tick l2 = p.load(1, a);

    // Local memory: cold access from the home node.
    Tick local = p.load(0, a + 64);

    // Remote clean (2 hops): cold access from a non-home node.
    Tick remote2 = p.load(2, a + 128);

    // Remote dirty (3 hops): dirty in a third node's cache.
    p.store(1, a + 192);
    Tick remote3 = p.load(2, a + 192);

    std::vector<int> w = {26, 10, 10, 8};
    printRow({"level", "paper", "measured", "match"}, w);
    auto row = [&](const char *name, Tick paper, Tick got) {
        printRow({name, fmtTicks(paper), fmtTicks(got),
                  paper == got ? "yes" : "NO"},
                 w);
    };
    row("primary cache (L1)", 1, l1);
    row("secondary cache (L2)", 12, l2);
    row("local memory", 60, local);
    row("remote memory, 2 hops", 208, remote2);
    row("remote memory, 3 hops", 291, remote3);

    bool all = l1 == 1 && l2 == 12 && local == 60 && remote2 == 208 &&
               remote3 == 291;
    std::printf("\n%s\n", all ? "All five round trips match the paper."
                              : "MISMATCH against the paper's table!");
    telemetry().metric("latency_matches", all ? 5 : 0);
    telemetry().simTicks += p.dsm->eventQueue().curTick();
    telemetry().eventsFired += p.dsm->eventQueue().numFiredTotal();
    return all ? 0 : 1;
}
