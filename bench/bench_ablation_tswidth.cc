/**
 * @file
 * Ablation (paper section 3.3): time-stamp width vs synchronization
 * cost. The privatization algorithm stores iteration numbers in
 * MaxR1st / MinW; "if the loop has so many iterations that the time
 * stamps would overflow, we synchronize all processors periodically
 * after a fixed number of iterations". Narrower time stamps save
 * directory SRAM but buy barriers: every 2^bits iterations, all
 * processors rendezvous.
 *
 * We run P3m (privatization, 4000 iterations, 16 processors) with
 * time stamps from 4 to 12 bits and unbounded, and report total time
 * and the Sync share.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(ablation_tswidth)
{
    printHeader("Ablation: privatization time-stamp width "
                "(P3m, 16 procs)");

    MachineConfig cfg;
    cfg.numProcs = 16;

    std::vector<int> w = {14, 12, 12, 10, 12};
    printRow({"ts width", "sync every", "HW ticks", "sync%",
              "vs unbounded"},
             w);

    double unbounded = 0;
    // Unbounded first (reference); quick mode keeps the endpoints.
    std::vector<int> widths = quick() ? std::vector<int>{0, 8, 4}
                                      : std::vector<int>{0, 12, 10, 8, 6, 4};
    for (int bits : widths) {
        P3mLoop loop;
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = SchedPolicy::Dynamic;
        xc.blockIters = 4;
        xc.maxIters = quickPick<IterNum>(4000, 1000);
        xc.tsBits = bits;
        RunResult r = runMachine(cfg, loop, xc);
        if (!r.passed)
            std::printf("  !! unexpected failure at %d bits\n", bits);
        double tot = r.agg.busy + r.agg.sync + r.agg.mem;
        if (bits == 0)
            unbounded = static_cast<double>(r.totalTicks);
        std::string every =
            bits == 0 ? "never"
                      : std::to_string(IterNum(1) << bits) + " iters";
        printRow({bits == 0 ? "unbounded" : std::to_string(bits) + " bits",
                  every, fmtTicks(r.totalTicks),
                  fmt(100 * r.agg.sync / tot, 1),
                  fmt(static_cast<double>(r.totalTicks) / unbounded,
                      3)},
                 w);
    }

    std::printf("\nShape: wide-enough time stamps cost nothing; "
                "below ~8 bits the periodic barriers start to show "
                "in Sync time. The paper's 16-bit stamps never "
                "synchronize for these trip counts.\n");
    return 0;
}
