/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmarks.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (section 6). The harness provides the four loops in
 * their paper configurations (section 5.2), run helpers, and table
 * printing.
 */

#ifndef SPECRT_BENCH_HARNESS_HH
#define SPECRT_BENCH_HARNESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/parallelizer.hh"
#include "telemetry.hh"
#include "workloads/adm.hh"
#include "workloads/microloops.hh"
#include "workloads/ocean.hh"
#include "workloads/p3m.hh"
#include "workloads/track.hh"

namespace specrt::bench
{

/** One of the paper's loops in its section-5.2 configuration. */
struct PaperLoop
{
    std::string name;
    /** Processors the paper runs it with (Ocean: 8, others: 16). */
    int procs;
    /** Factory: a fresh workload instance. */
    std::function<std::unique_ptr<Workload>()> make;
    /** Base execution config (scheduling etc.). */
    ExecConfig xc;
    /** Paper-reported speedups (eyeballed from Figure 11). */
    double paperIdeal;
    double paperSw;
    double paperHw;
};

/**
 * The four loops, paper-configured. Under --quick the expensive
 * iteration caps shrink to CI-smoke sizes (the figures' shapes
 * survive; the absolute numbers are only comparable to other quick
 * runs).
 */
std::vector<PaperLoop> paperLoops();

/**
 * Run one executor and fold the result into the telemetry
 * accumulator. All bench-driven runs should funnel through here so
 * BENCH_results.json sees every simulated tick.
 */
RunResult runMachine(const MachineConfig &cfg, Workload &w,
                     const ExecConfig &xc);

/** Run one scenario of a paper loop. */
RunResult runScenario(const PaperLoop &loop, ExecMode mode);

/** Run one scenario with a processor-count override (Fig. 14). */
RunResult runScenarioWith(const PaperLoop &loop, ExecMode mode,
                          int procs);

/** Run all four scenarios. */
ScenarioComparison runAll(const PaperLoop &loop);

// --- table printing ---------------------------------------------------

/** Print a header line followed by a rule. */
void printHeader(const std::string &title);

/** Print one row of fixed-width cells. */
void printRow(const std::vector<std::string> &cells,
              const std::vector<int> &widths);

/** Format helpers. */
std::string fmt(double v, int prec = 2);
std::string fmtTicks(Tick t);

} // namespace specrt::bench

#endif // SPECRT_BENCH_HARNESS_HH
