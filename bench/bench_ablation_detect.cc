/**
 * @file
 * Ablation (paper sections 3.4 / 6.2): failure-detection latency.
 * The hardware scheme aborts as soon as the dependence's coherence
 * transaction reaches the test logic; the software scheme learns of
 * the failure only after the whole loop plus the merge and analysis
 * phases. We inject a single flow dependence at varying loop
 * positions and report when each scheme stops speculating.
 */

#include <cstdio>

#include "core/loop_exec.hh"
#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

/** Disjoint writes, plus iteration @p depAt reads iteration 1's
 *  element (a flow dependence once they run on different procs). */
class DepAtLoop : public Workload
{
  public:
    DepAtLoop(IterNum iters, IterNum dep_at)
        : n(iters), depAt(dep_at)
    {}

    std::string name() const override { return "dep-at"; }

    std::vector<ArrayDecl>
    arrays() const override
    {
        return {{"A", static_cast<uint64_t>(n) + 1, 4,
                 TestType::NonPriv, true, false}};
    }

    IterNum numIters() const override { return n; }

    void
    initData(AddrMap &mem,
             const std::vector<const Region *> &r) override
    {
        for (uint64_t e = 0; e < r[0]->numElems(); ++e)
            mem.write(r[0]->elemAddr(e), 4, e);
    }

    void
    genIteration(IterNum i, IterProgram &out) override
    {
        out.push_back(opImm(1, i));
        out.push_back(opStore(0, i, 1));
        out.push_back(opBusy(20));
        if (i == depAt)
            out.push_back(opLoad(2, 0, 1)); // iteration 1's element
    }

  private:
    IterNum n;
    IterNum depAt;
};

} // namespace

SPECRT_BENCH_MAIN(ablation_detect)
{
    printHeader("Ablation: failure-detection latency vs dependence "
                "position (16 procs, 2048 iterations)");

    MachineConfig cfg;
    cfg.numProcs = 16;
    const IterNum iters = quickPick<IterNum>(2048, 512);

    std::vector<int> w = {12, 14, 14, 14, 16};
    printRow({"dep at", "HW loop ticks", "HW iters run",
              "SW loop ticks", "SW iters run"},
             w);

    for (IterNum frac : {2, 20, 50, 90}) {
        IterNum dep_at = std::max<IterNum>(2, iters * frac / 100);
        DepAtLoop loop(iters, dep_at);

        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = SchedPolicy::Dynamic;
        xc.blockIters = 4;
        RunResult hw = runMachine(cfg, loop, xc);

        xc.mode = ExecMode::SW;
        RunResult sw = runMachine(cfg, loop, xc);

        printRow({fmt(frac, 0) + "%",
                  fmtTicks(hw.phases.loop),
                  std::to_string(hw.itersExecuted),
                  fmtTicks(sw.phases.loop + sw.phases.merge +
                           sw.phases.analysis),
                  std::to_string(sw.itersExecuted)},
                 w);

        if (hw.passed)
            std::printf("  !! HW unexpectedly passed at %lld%%\n",
                        (long long)frac);
    }

    std::printf("\nShape: HW abort time grows with the dependence "
                "position; SW always pays the full loop + test.\n");
    return 0;
}
