/**
 * @file
 * Reproduces Figure 12: execution time of the loops broken down into
 * Busy (executing instructions), Sync (locks/barriers/scheduling),
 * and Mem (waiting on the memory system), for Serial / Ideal / SW /
 * HW, normalized to Serial = 100.
 *
 * The paper's observations to verify: the HW scheme has lower Busy
 * and Mem than the SW scheme (fewer extra instructions and fewer
 * induced misses); SW's extra marking/merging/analysis instructions
 * show up as both Busy and Mem; Sync is a minor component except
 * where static scheduling causes imbalance.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

/** Per-scenario normalized stacked bar. */
void
row(const std::string &label, const RunResult &r, double serial_total,
    int procs)
{
    // Aggregate processor cycles scaled to wall-clock fractions:
    // each category's share of the run's processor-time, applied to
    // the run's wall-clock, normalized to Serial's wall-clock = 100.
    double total = r.agg.busy + r.agg.sync + r.agg.mem;
    if (total <= 0)
        total = 1;
    double wall = static_cast<double>(r.totalTicks) / serial_total * 100;
    double busy = wall * r.agg.busy / total;
    double sync = wall * r.agg.sync / total;
    double mem = wall * r.agg.mem / total;
    std::printf("  %-10s |%7.1f = busy %6.1f + sync %6.1f + mem %6.1f"
                "  %s\n",
                (label + std::to_string(procs)).c_str(), wall, busy,
                sync, mem, r.passed ? "" : "[failed]");
}

} // namespace

SPECRT_BENCH_MAIN(fig12_breakdown)
{
    printHeader("Figure 12: normalized execution time breakdown "
                "(Serial = 100)");
    double hw_vs_sw_sum = 0;
    int n = 0;
    for (const PaperLoop &loop : paperLoops()) {
        ScenarioComparison c = runAll(loop);
        double st = static_cast<double>(c.serial.totalTicks);
        std::printf("\n%s:\n", loop.name.c_str());
        row("Serial", c.serial, st, 1);
        row("Ideal", c.ideal, st, loop.procs);
        row("SW", c.sw, st, loop.procs);
        row("HW", c.hw, st, loop.procs);

        double hw_vs_sw = static_cast<double>(c.sw.totalTicks) /
                          static_cast<double>(c.hw.totalTicks);
        std::printf("  HW is %.0f%% faster than SW "
                    "(paper: ~50%% on average)\n",
                    (hw_vs_sw - 1.0) * 100);
        hw_vs_sw_sum += hw_vs_sw;
        ++n;
    }
    telemetry().metric("hw_vs_sw_time_ratio_mean", hw_vs_sw_sum / n);
    return 0;
}
