/**
 * @file
 * Ablation (paper sections 2.2.3, 5.2): iteration-wise vs.
 * processor-wise software test on Track.
 *
 * The processor-wise test passes the five dependent instances
 * (adjacent dependent iterations land in one static chunk) where the
 * iteration-wise test fails -- but static scheduling costs Sync time
 * under Track's load imbalance. The hardware non-privatization test
 * is processor-wise under any scheduling, so it passes the dependent
 * instances while keeping dynamic scheduling.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

RunResult
run(int instance, ExecMode mode, bool proc_wise, SchedPolicy sched,
    IterNum block)
{
    MachineConfig cfg;
    cfg.numProcs = 16;
    TrackParams p;
    p.instance = instance;
    TrackLoop loop(p);
    ExecConfig xc;
    xc.mode = mode;
    xc.swProcWise = proc_wise;
    xc.sched = sched;
    xc.blockIters = block;
    return runMachine(cfg, loop, xc);
}

} // namespace

SPECRT_BENCH_MAIN(ablation_procwise)
{
    printHeader("Ablation: iteration-wise vs processor-wise tests "
                "(Track, 16 procs)");

    std::vector<int> w = {10, 10, 14, 14, 14};
    printRow({"instance", "deps?", "SW iter-wise", "SW proc-wise",
              "HW dynamic/4"},
             w);

    int iter_fails = 0, proc_fails = 0, hw_fails = 0;
    // Quick mode keeps a dependent/independent mix of instances.
    std::vector<int> instances =
        quick() ? std::vector<int>{1, 3, 25, 47}
                : std::vector<int>{1, 3, 7, 14, 25, 36, 47};
    for (int instance : instances) {
        TrackLoop probe(TrackParams{instance});
        RunResult swi = run(instance, ExecMode::SW, false,
                            SchedPolicy::Dynamic, 4);
        RunResult swp = run(instance, ExecMode::SW, true,
                            SchedPolicy::StaticChunk, 4);
        RunResult hw = run(instance, ExecMode::HW, false,
                           SchedPolicy::Dynamic, 4);
        iter_fails += !swi.passed;
        proc_fails += !swp.passed;
        hw_fails += !hw.passed;
        auto cell = [](const RunResult &r) {
            return std::string(r.passed ? "pass " : "FAIL ") +
                   fmtTicks(r.totalTicks);
        };
        printRow({std::to_string(instance),
                  probe.hasAdjacentDeps() ? "yes" : "no", cell(swi),
                  cell(swp), cell(hw)},
                 w);
    }

    std::printf("\nDependent instances fail iteration-wise (%d "
                "failures) but pass processor-wise (%d) and under "
                "the hardware test (%d), as in the paper.\n",
                iter_fails, proc_fails, hw_fails);
    telemetry().metric("iter_wise_failures", iter_fails);
    telemetry().metric("proc_wise_failures", proc_fails);
    telemetry().metric("hw_failures", hw_fails);
    return (proc_fails == 0 && hw_fails == 0) ? 0 : 1;
}
