/**
 * @file
 * Host-speed microbenchmarks (google-benchmark): how fast the
 * simulator's hot paths run on the host machine. Useful when tuning
 * the simulator itself -- these are host nanoseconds, not simulated
 * cycles.
 */

#include <benchmark/benchmark.h>

#include "mem/dsm.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "spec/nonpriv.hh"
#include "spec/oracle.hh"
#include "spec/priv.hh"

using namespace specrt;

namespace
{

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue eq;
    int sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(static_cast<Cycles>(i % 97),
                          [&sink]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_RngNextBounded(benchmark::State &state)
{
    Rng rng(1);
    uint64_t acc = 0;
    for (auto _ : state)
        acc += rng.nextBounded(12345);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNextBounded);

void
BM_NonPrivDirLogic(benchmark::State &state)
{
    NPDirBits d;
    int64_t i = 0;
    for (auto _ : state) {
        NodeId n = static_cast<NodeId>(i++ & 1);
        benchmark::DoNotOptimize(npDirRead(d, 0));
        benchmark::DoNotOptimize(npDirRead(d, n));
    }
}
BENCHMARK(BM_NonPrivDirLogic);

void
BM_PrivSharedDirLogic(benchmark::State &state)
{
    PrivSharedDirBits d;
    IterNum iter = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(privSDirFirstWrite(d, iter));
        benchmark::DoNotOptimize(privSDirReadFirst(d, iter));
        ++iter;
    }
}
BENCHMARK(BM_PrivSharedDirLogic);

void
BM_SimulatedLocalLoad(benchmark::State &state)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    DsmSystem dsm(cfg);
    int id = dsm.memory().alloc("A", 1 << 20, 4, Placement::Fixed, 0);
    const Region &r = dsm.memory().region(id);
    uint64_t e = 0;
    for (auto _ : state) {
        uint64_t v = 0;
        dsm.cacheCtrl(0).load(r.elemAddr(e % r.numElems()), 4, 1,
                              [&](uint64_t val) { v = val; });
        dsm.eventQueue().run();
        benchmark::DoNotOptimize(v);
        e += 16; // a fresh line each time
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedLocalLoad);

void
BM_OracleLrpd(benchmark::State &state)
{
    Rng rng(7);
    std::vector<AccessEvent> trace;
    for (IterNum i = 1; i <= 256; ++i) {
        for (int a = 0; a < 4; ++a)
            trace.push_back({static_cast<NodeId>(i % 8), i,
                             rng.nextBounded(64), rng.nextBool(0.4),
                             0});
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(Oracle::lrpd(trace));
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_OracleLrpd);

} // namespace

BENCHMARK_MAIN();
