#include "telemetry.hh"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "core/loop_exec.hh"
#include "obs/event_log.hh"
#include "obs/report.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/critpath.hh"
#include "sim/profile.hh"
#include "sim/sim_context.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"
#include "sim/trace_export.hh"

#ifndef SPECRT_GIT_SHA
#define SPECRT_GIT_SHA "unknown"
#endif

namespace specrt::bench
{

namespace
{

bool quickMode = false;

/** Resolved --jobs value (0 until benchMain parses flags). */
unsigned jobsCount = 1;

/** Resolved --status-out path; runJobs streams progress there. */
std::string statusPath;

/** Peak resident set size of this process, in KiB (0 if unknown). */
uint64_t
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<uint64_t>(ru.ru_maxrss);
}

/** This thread's shard inside a ScopedTelemetry scope. */
thread_local Telemetry *tlsTelemetry = nullptr;

Telemetry &
processTelemetry()
{
    static Telemetry t;
    return t;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    // %.17g round-trips doubles; integers up to 2^53 print exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no inf/nan.
    if (std::strstr(buf, "inf") || std::strstr(buf, "nan"))
        return "0";
    return buf;
}

/**
 * Append @p record to the JSON array in @p path, creating the file
 * (as a one-element array) when missing or unparsable.
 */
bool
appendRecord(const std::string &path, const std::string &record)
{
    std::string existing;
    {
        std::ifstream is(path);
        if (is) {
            std::ostringstream buf;
            buf << is.rdbuf();
            existing = buf.str();
        }
    }

    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;

    size_t end = existing.find_last_of(']');
    if (end == std::string::npos ||
        existing.find('[') == std::string::npos) {
        os << "[\n" << record << "\n]\n";
        return static_cast<bool>(os);
    }
    std::string head = existing.substr(0, end);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' ' ||
            head.back() == '\t' || head.back() == '\r'))
        head.pop_back();
    bool emptyArray = !head.empty() && head.back() == '[';
    os << head << (emptyArray ? "\n" : ",\n") << record << "\n]\n";
    return static_cast<bool>(os);
}

} // namespace

bool
quick()
{
    return quickMode;
}

Telemetry &
telemetry()
{
    return tlsTelemetry ? *tlsTelemetry : processTelemetry();
}

ScopedTelemetry::ScopedTelemetry(Telemetry &shard) : prev(tlsTelemetry)
{
    tlsTelemetry = &shard;
}

ScopedTelemetry::~ScopedTelemetry()
{
    tlsTelemetry = prev;
}

unsigned
jobs()
{
    return jobsCount ? jobsCount : campaign::defaultJobs();
}

void
setJobs(unsigned n)
{
    jobsCount = n;
}

std::vector<campaign::JobOutcome>
runJobs(size_t n, const campaign::JobFn &fn, uint64_t base_seed)
{
    std::vector<Telemetry> shards(n);
    // With the process timeline on (--timeline-out), every job
    // samples into its own context's timeline at the same interval;
    // the shards are captured per job and merged below in job-id
    // order, so the merged timeline does not depend on --jobs.
    timeline::Timeline &procTl = timeline::current();
    bool tlOn = procTl.isOn();
    Tick tlInterval = procTl.interval();
    std::vector<timeline::Timeline> tlShards(tlOn ? n : 0);
    // Same per-job capture for the critical-path recorder: each job
    // fills its own context's recorder; merging in job-id order keeps
    // the export byte-identical across --jobs values.
    critpath::Recorder &procCp = critpath::current();
    bool cpOn = procCp.isOn();
    std::vector<critpath::Recorder> cpShards(cpOn ? n : 0);
    // And for the event log: each job records into its own context's
    // log (bracketed by job_begin) and the shards merge in job-id
    // order, with job_end lines appended from the outcomes, so the
    // merged JSONL is byte-identical across --jobs values.
    obs::EventLog &procEv = obs::log();
    bool evOn = procEv.isOn();
    size_t evCap = procEv.capacity();
    std::vector<obs::EventLog> evShards(evOn ? n : 0);

    // Live figures for the --status-out snapshot (publisher thread).
    std::mutex liveMtx;
    uint64_t liveTicks = 0;
    std::string liveHot;

    campaign::Options opts;
    opts.jobs = jobs();
    opts.baseSeed = base_seed;
    if (!statusPath.empty()) {
        opts.progressPath = statusPath;
        opts.progressLive = [&] {
            std::lock_guard<std::mutex> lock(liveMtx);
            return campaign::ProgressLive{liveTicks, liveHot};
        };
    }
    std::vector<campaign::JobOutcome> outcomes = campaign::run(
        n,
        [&](size_t id, SimContext &ctx) {
            ScopedTelemetry scoped(shards[id]);
            if (tlOn)
                timeline::current().enable(tlInterval);
            if (cpOn)
                critpath::current().enable();
            // Capture the job's event log even when fn throws (a
            // failed job's events are the forensic record).
            struct EvGuard
            {
                obs::EventLog *dst = nullptr;
                ~EvGuard()
                {
                    if (dst)
                        *dst = obs::log();
                }
            } evg;
            if (evOn) {
                obs::log().enable(evCap);
                obs::refreshEnabled();
                evg.dst = &evShards[id];
                obs::jobBegin(id, ctx.baseSeed);
            }
            fn(id, ctx);
            if (tlOn)
                tlShards[id] = timeline::current();
            if (cpOn)
                cpShards[id] = critpath::current();
            {
                std::lock_guard<std::mutex> lock(liveMtx);
                liveTicks += shards[id].simTicks;
                if (tlOn)
                    liveHot = timeline::current().hotSummary(1);
            }
        },
        opts);
    Telemetry &t = processTelemetry();
    for (const Telemetry &shard : shards) // job-id order: deterministic
        t.merge(shard);
    for (const timeline::Timeline &shard : tlShards)
        procTl.merge(shard);
    for (const critpath::Recorder &shard : cpShards)
        procCp.merge(shard);
    for (size_t id = 0; id < evShards.size(); ++id) {
        procEv.merge(evShards[id]);
        obs::jobEnd(outcomes[id].id, outcomes[id].ok,
                    outcomes[id].error);
    }
    return outcomes;
}

void
Telemetry::recordRun(const RunResult &r)
{
    simTicks += r.totalTicks;
    eventsFired += r.eventsFired;
    ++runs;
    if (r.infraFailed)
        ++infraFailedRuns;
    if (r.cost.valid) {
        cost.valid = true;
        cost.numProcs = std::max(cost.numProcs, r.cost.numProcs);
        cost.perNodeTicks += r.cost.perNodeTicks;
        cost.busy += r.cost.busy;
        for (size_t i = 0; i < stall::numCauses; ++i)
            cost.stalls[i] += r.cost.stalls[i];
    }
}

void
Telemetry::metric(const std::string &key, double value)
{
    for (auto &kv : metrics) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    metrics.emplace_back(key, value);
}

void
Telemetry::snapshotStats(const StatGroup &g)
{
    stats.clear();
    g.snapshot(stats);
}

void
Telemetry::merge(const Telemetry &shard)
{
    simTicks += shard.simTicks;
    eventsFired += shard.eventsFired;
    runs += shard.runs;
    infraFailedRuns += shard.infraFailedRuns;
    for (const auto &kv : shard.metrics)
        metric(kv.first, kv.second);
    if (!shard.stats.empty())
        stats = shard.stats;
    if (shard.cost.valid) {
        cost.valid = true;
        cost.numProcs = std::max(cost.numProcs, shard.cost.numProcs);
        cost.perNodeTicks += shard.cost.perNodeTicks;
        cost.busy += shard.cost.busy;
        for (size_t i = 0; i < stall::numCauses; ++i)
            cost.stalls[i] += shard.cost.stalls[i];
    }
}

int
benchMain(int argc, char **argv, const char *name, int (*body)())
{
    const char *envOut = std::getenv("SPECRT_BENCH_OUT");
    std::string outPath = envOut ? envOut : "BENCH_results.json";
    std::string tracePath;
    std::string timelinePath;
    std::string critpathPath;
    std::string eventsPath;
    std::string reportPath;
    bool writeJson = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quickMode = true;
        } else if (arg == "--no-json") {
            writeJson = false;
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            tracePath = arg.substr(std::strlen("--trace-out="));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (arg.rfind("--timeline-out=", 0) == 0) {
            timelinePath = arg.substr(std::strlen("--timeline-out="));
        } else if (arg == "--timeline-out" && i + 1 < argc) {
            timelinePath = argv[++i];
        } else if (arg.rfind("--critpath-out=", 0) == 0) {
            critpathPath = arg.substr(std::strlen("--critpath-out="));
        } else if (arg == "--critpath-out" && i + 1 < argc) {
            critpathPath = argv[++i];
        } else if (arg.rfind("--events-out=", 0) == 0) {
            eventsPath = arg.substr(std::strlen("--events-out="));
        } else if (arg == "--events-out" && i + 1 < argc) {
            eventsPath = argv[++i];
        } else if (arg.rfind("--report-out=", 0) == 0) {
            reportPath = arg.substr(std::strlen("--report-out="));
        } else if (arg == "--report-out" && i + 1 < argc) {
            reportPath = argv[++i];
        } else if (arg.rfind("--status-out=", 0) == 0) {
            statusPath = arg.substr(std::strlen("--status-out="));
        } else if (arg == "--status-out" && i + 1 < argc) {
            statusPath = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0 ||
                   (arg == "--jobs" && i + 1 < argc)) {
            const char *val = arg == "--jobs"
                                  ? argv[++i]
                                  : arg.c_str() + std::strlen("--jobs=");
            char *end = nullptr;
            long v = std::strtol(val, &end, 10);
            if (!end || *end != '\0' || v < 0) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n",
                             argv[0], val);
                return 2;
            }
            jobsCount = static_cast<unsigned>(v);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--quick] [--no-json] "
                        "[--out <path>] [--trace-out <path>] "
                        "[--timeline-out <path>] "
                        "[--critpath-out <path>] "
                        "[--events-out <path>] "
                        "[--report-out <path>] "
                        "[--status-out <path>] [--jobs <n>]\n"
                        "  --trace-out  record the protocol trace and "
                        "write Chrome/Perfetto JSON to <path>\n"
                        "  --timeline-out  sample the metric timeline "
                        "and write its CSV to <path> (with "
                        "--trace-out, counter tracks land in the "
                        "trace JSON too)\n"
                        "  --critpath-out  profile stall attribution "
                        "and write the critical-path Perfetto JSON "
                        "to <path>\n"
                        "  --events-out  record the structured event "
                        "log and write the merged JSONL to <path>\n"
                        "  --report-out  write the unified run report "
                        "JSON to <path> (implies the event log)\n"
                        "  --status-out  stream live campaign "
                        "progress snapshots to <path> "
                        "(scripts/specrt_top.py tails it)\n"
                        "  --jobs       campaign worker threads "
                        "(0 = all host cores; default 1)\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg.c_str());
            return 2;
        }
    }

    if (!tracePath.empty())
        trace::buffer().enable();
    if (!timelinePath.empty())
        timeline::current().enable();
    if (!critpathPath.empty())
        critpath::current().enable();
    if (!eventsPath.empty() || !reportPath.empty()) {
        obs::log().enable();
        obs::refreshEnabled();
    }

    auto t0 = std::chrono::steady_clock::now();
    int rc = body();
    auto t1 = std::chrono::steady_clock::now();

    const timeline::Timeline &tl = timeline::current();
    if (!tracePath.empty()) {
        const timeline::Timeline *tlp =
            tl.numSamples() ? &tl : nullptr;
        if (trace::exportChromeTraceFile(trace::buffer(), tracePath,
                                         tlp)) {
            std::printf("[trace] wrote %" PRIu64 " records to %s\n",
                        trace::buffer().recorded(),
                        tracePath.c_str());
        } else {
            std::fprintf(stderr, "%s: failed to write trace to %s\n",
                         name, tracePath.c_str());
            if (rc == 0)
                rc = 1;
        }
    }

    if (!timelinePath.empty()) {
        std::ofstream os(timelinePath, std::ios::trunc);
        if (os)
            os << tl.csv();
        if (os) {
            std::printf("[timeline] wrote %zu samples x %zu series "
                        "to %s\n",
                        tl.numSamples(), tl.numSeries(),
                        timelinePath.c_str());
        } else {
            std::fprintf(stderr,
                         "%s: failed to write timeline to %s\n",
                         name, timelinePath.c_str());
            if (rc == 0)
                rc = 1;
        }
    }

    const critpath::Recorder &cp = critpath::current();
    if (!critpathPath.empty()) {
        std::ofstream os(critpathPath, std::ios::trunc);
        if (os)
            os << cp.perfettoJson();
        if (os) {
            std::printf("[critpath] wrote %" PRIu64
                        " txn records over %" PRIu64 " runs to %s\n",
                        cp.numTxns(), cp.numRuns(),
                        critpathPath.c_str());
            std::string line = cp.summaryLine();
            if (!line.empty())
                std::printf("[critpath] %s\n", line.c_str());
        } else {
            std::fprintf(stderr,
                         "%s: failed to write critpath report to %s\n",
                         name, critpathPath.c_str());
            if (rc == 0)
                rc = 1;
        }
    }

    const obs::EventLog &ev = obs::log();
    if (!eventsPath.empty()) {
        std::ofstream os(eventsPath, std::ios::trunc);
        if (os)
            os << ev.jsonl();
        if (os) {
            std::printf("[events] wrote %zu event lines to %s\n",
                        ev.size(), eventsPath.c_str());
        } else {
            std::fprintf(stderr,
                         "%s: failed to write event log to %s\n",
                         name, eventsPath.c_str());
            if (rc == 0)
                rc = 1;
        }
    }

    double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double wallS = wallMs / 1e3;

    Telemetry &t = telemetry();
    double tps = wallS > 0 ? static_cast<double>(t.simTicks) / wallS
                           : 0.0;
    double eps = wallS > 0
                     ? static_cast<double>(t.eventsFired) / wallS
                     : 0.0;

    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64,
                  MachineConfig{}.fingerprint());
    // The fingerprint of the machine the bench actually ran, when a
    // LoopExecutor published one (benches with custom configs).
    const std::string &ranFp = SimContext::current().configFingerprint;

    if (!reportPath.empty()) {
        obs::ReportInputs ri;
        ri.name = name;
        ri.gitSha = SPECRT_GIT_SHA;
        ri.configFingerprint = ranFp.empty() ? fp : ranFp;
        ri.baseSeed = SimContext::current().baseSeed;
        ri.simTicks = t.simTicks;
        ri.eventsFired = t.eventsFired;
        ri.runs = t.runs;
        ri.infraFailedRuns = t.infraFailedRuns;
        ri.metrics = t.metrics;
        ri.stats = t.stats;
        ri.cost = t.cost;
        ri.critpath = &cp;
        ri.timeline = &tl;
        ri.events = &ev;
        if (obs::writeReport(ri, reportPath)) {
            std::printf("[report] wrote unified run report to %s\n",
                        reportPath.c_str());
        } else {
            std::fprintf(stderr,
                         "%s: failed to write report to %s\n",
                         name, reportPath.c_str());
            if (rc == 0)
                rc = 1;
        }
    }

    if (!writeJson)
        return rc;

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"schema\": 1,\n"
        << "    \"bench\": \"" << jsonEscape(name) << "\",\n"
        << "    \"quick\": " << (quickMode ? "true" : "false")
        << ",\n"
        << "    \"git_sha\": \"" << jsonEscape(SPECRT_GIT_SHA)
        << "\",\n"
        << "    \"config_fingerprint\": \"" << fp << "\",\n"
        << "    \"exit_code\": " << rc << ",\n"
        << "    \"wall_ms\": " << jsonNumber(wallMs) << ",\n"
        << "    \"sim_ticks\": " << t.simTicks << ",\n"
        << "    \"events_fired\": " << t.eventsFired << ",\n"
        << "    \"ticks_per_sec\": " << jsonNumber(tps) << ",\n"
        << "    \"events_per_sec\": " << jsonNumber(eps) << ",\n"
        << "    \"runs\": " << t.runs << ",\n"
        << "    \"infra_failed_runs\": " << t.infraFailedRuns << ",\n";
    if (!timelinePath.empty()) {
        // Timeline-derived keys; the perf gate treats unknown keys
        // as informational (scripts/check_bench_regression.py).
        rec << "    \"timeline_samples\": " << tl.numSamples()
            << ",\n"
            << "    \"timeline_series\": " << tl.numSeries() << ",\n"
            << "    \"timeline_out\": \"" << jsonEscape(timelinePath)
            << "\",\n";
    }
    if (!critpathPath.empty()) {
        rec << "    \"critpath_txns\": " << cp.numTxns() << ",\n"
            << "    \"critpath_summary\": \""
            << jsonEscape(cp.summaryLine()) << "\",\n"
            << "    \"critpath_out\": \"" << jsonEscape(critpathPath)
            << "\",\n";
    }
    if (!eventsPath.empty() || !reportPath.empty()) {
        rec << "    \"events_recorded\": " << ev.recorded() << ",\n"
            << "    \"events_dropped\": " << ev.dropped() << ",\n";
        if (!eventsPath.empty()) {
            rec << "    \"events_out\": \"" << jsonEscape(eventsPath)
                << "\",\n";
        }
        if (!reportPath.empty()) {
            rec << "    \"report_out\": \"" << jsonEscape(reportPath)
                << "\",\n";
        }
    }
    // Host memory figures; the perf gate reads unknown mem_* keys as
    // informational rows, never as pass/fail.
    rec << "    \"mem_peak_rss_kb\": " << peakRssKb() << ",\n"
        << "    \"mem_arena_hwm_blocks\": "
        << std::max(Arena::maxHighWater(),
                    SimContext::current().arenaHighWater())
        << ",\n";
    if constexpr (profileEnabled) {
        // SPECRT_PROFILE builds: the host-side profile (per-EventKind
        // fired-event histogram + scoped timers), previously
        // stderr-only, rides along in the telemetry record.
        const prof::Registry &reg = prof::Registry::instance();
        const auto &hist = reg.eventHist();
        rec << "    \"profile\": {\"events\": {";
        bool firstKey = true;
        for (size_t k = 0; k < numEventKinds; ++k) {
            if (!hist[k])
                continue;
            rec << (firstKey ? "" : ", ") << "\""
                << jsonEscape(eventKindName(
                       static_cast<EventKind>(k)))
                << "\": " << hist[k];
            firstKey = false;
        }
        rec << "}, \"timers\": {";
        firstKey = true;
        for (const prof::Counter *c : reg.counters()) {
            rec << (firstKey ? "" : ", ") << "\""
                << jsonEscape(c->name) << "\": {\"hits\": " << c->hits
                << ", \"ns\": " << c->ns << "}";
            firstKey = false;
        }
        rec << "}},\n";
    }
    rec << "    \"metrics\": {";
    for (size_t i = 0; i < t.metrics.size(); ++i) {
        rec << (i ? ", " : "") << "\"" << jsonEscape(t.metrics[i].first)
            << "\": " << jsonNumber(t.metrics[i].second);
    }
    rec << "},\n";
    rec << "    \"stats\": {";
    for (size_t i = 0; i < t.stats.size(); ++i) {
        rec << (i ? ", " : "") << "\"" << jsonEscape(t.stats[i].first)
            << "\": " << jsonNumber(t.stats[i].second);
    }
    rec << "}\n  }";

    if (!appendRecord(outPath, rec.str())) {
        std::fprintf(stderr, "%s: failed to write telemetry to %s\n",
                     name, outPath.c_str());
        return rc ? rc : 1;
    }
    std::printf("\n[telemetry] %s%s: %.0f ms wall, %" PRIu64
                " sim ticks, %.3g ticks/s, %" PRIu64
                " events -> %s\n",
                name, quickMode ? " (quick)" : "", wallMs, t.simTicks,
                tps, t.eventsFired, outPath.c_str());
    return rc;
}

} // namespace specrt::bench
