/**
 * @file
 * Ablation (paper section 5.2): Ocean's stride families. The loop is
 * executed thousands of times and "data is accessed with different
 * strides in different executions". Unit-stride executions keep each
 * iteration's elements on private cache lines; the column-major
 * (stride = iteration-count) executions interleave iterations'
 * elements within lines, so neighbouring iterations share lines and
 * the parallel runs pay communication for it -- the "memory accesses
 * do not have much locality" behaviour the paper reports for Ocean.
 *
 * Also exercises the repeated-execution API: each execution runs on
 * a fresh machine (the paper flushes caches between executions) and
 * the Track 56-instance average is reported the same way.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(ablation_stride)
{
    const int execs = quickPick(4, 2);
    printHeader("Ablation: Ocean stride families over repeated "
                "executions (8 procs, " + std::to_string(execs) +
                " executions each)");

    MachineConfig cfg;
    cfg.numProcs = 8;
    SpeculativeParallelizer spec(cfg);

    std::vector<int> w = {14, 12, 12, 12, 12};
    printRow({"stride family", "Serial", "Ideal", "SW", "HW"}, w);

    for (uint64_t stride : {uint64_t(1), uint64_t(32)}) {
        auto make = [stride](int) {
            OceanParams p;
            p.stride = stride;
            return std::make_unique<OceanLoop>(p);
        };
        std::map<ExecMode, double> mean;
        for (ExecMode mode : {ExecMode::Serial, ExecMode::Ideal,
                              ExecMode::SW, ExecMode::HW}) {
            ExecConfig xc;
            xc.mode = mode;
            xc.sched = SchedPolicy::StaticChunk;
            xc.swProcWise = true;
            auto agg = spec.runRepeated(make, xc, execs);
            for (RunResult &r : agg.runs)
                telemetry().recordRun(r);
            mean[mode] = agg.meanTicks();
            if (agg.failures)
                std::printf("  !! unexpected failures (%llu)\n",
                            (unsigned long long)agg.failures);
        }
        double st = mean[ExecMode::Serial];
        printRow({stride == 1 ? "unit (rows)" : "column-major",
                  "1.00",
                  fmt(st / mean[ExecMode::Ideal]),
                  fmt(st / mean[ExecMode::SW]),
                  fmt(st / mean[ExecMode::HW])},
                 w);
        telemetry().metric(stride == 1 ? "hw_speedup_unit"
                                       : "hw_speedup_column",
                           st / mean[ExecMode::HW]);
    }

    std::printf("\nShape: the strided executions lose parallel "
                "efficiency across the board (line sharing between "
                "neighbouring iterations); the HW-between-SW-and-"
                "Ideal ordering survives in both families.\n");
    return 0;
}
