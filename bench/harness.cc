#include "harness.hh"

#include <cstdio>

namespace specrt::bench
{

std::vector<PaperLoop> paperLoops()
{
    std::vector<PaperLoop> loops;

    {
        // Ocean ftrvmt.do109: 8 processors, non-privatization test,
        // small working set, strided access; the software scheme
        // uses the processor-wise test (good load balance).
        PaperLoop l;
        l.name = "Ocean";
        l.procs = 8;
        l.make = []() {
            OceanParams p;
            p.stride = 1; // per-iteration columns are contiguous
            return std::make_unique<OceanLoop>(p);
        };
        // Static scheduling: 32 well-balanced iterations on 8
        // processors; contiguous chunks avoid splitting cache lines
        // shared by neighbouring iterations.
        l.xc.sched = SchedPolicy::StaticChunk;
        l.xc.swProcWise = true;
        l.paperIdeal = 5.0;
        l.paperSw = 1.8;
        l.paperHw = 3.5;
        loops.push_back(l);
    }
    {
        // P3m pp.do100: 16 processors, privatization test, large
        // working set, heavy load imbalance -> dynamic scheduling;
        // 15,000 of 97,336 iterations simulated.
        PaperLoop l;
        l.name = "P3m";
        l.procs = 16;
        l.make = []() { return std::make_unique<P3mLoop>(); };
        l.xc.sched = SchedPolicy::Dynamic;
        l.xc.blockIters = 4;
        l.xc.maxIters = quickPick<IterNum>(15000, 2000);
        l.paperIdeal = 12.0;
        l.paperSw = 4.0;
        l.paperHw = 8.0;
        loops.push_back(l);
    }
    {
        // Adm run.do20: 16 processors, mixed non-priv + priv arrays,
        // small working set, good load balance (proc-wise SW test).
        PaperLoop l;
        l.name = "Adm";
        l.procs = 16;
        l.make = []() { return std::make_unique<AdmLoop>(); };
        l.xc.sched = SchedPolicy::Dynamic;
        l.xc.blockIters = 2;
        l.xc.swProcWise = true;
        l.paperIdeal = 10.0;
        l.paperSw = 3.0;
        l.paperHw = 7.0;
        loops.push_back(l);
    }
    {
        // Track nlfilt.do300: 16 processors, four non-priv arrays;
        // the SW test must be processor-wise (static scheduling,
        // hence load imbalance); HW schedules small dynamic blocks.
        PaperLoop l;
        l.name = "Track";
        l.procs = 16;
        l.make = []() {
            TrackParams p;
            p.instance = 7; // representative parallel instance
            return std::make_unique<TrackLoop>(p);
        };
        // Blocks of 16 iterations: "small blocks of a few
        // iterations" that keep each line's slots on one processor
        // while dynamic scheduling rides out the imbalance.
        l.xc.sched = SchedPolicy::Dynamic;
        l.xc.blockIters = 16;
        l.xc.swProcWise = true;
        l.paperIdeal = 6.0;
        l.paperSw = 2.0;
        l.paperHw = 4.0;
        loops.push_back(l);
    }
    return loops;
}

RunResult
runMachine(const MachineConfig &cfg, Workload &w, const ExecConfig &xc)
{
    LoopExecutor exec(cfg, w, xc);
    RunResult r = exec.run();
    telemetry().recordRun(r);
    telemetry().snapshotStats(exec.machine());
    return r;
}

RunResult
runScenario(const PaperLoop &loop, ExecMode mode)
{
    return runScenarioWith(loop, mode, loop.procs);
}

RunResult
runScenarioWith(const PaperLoop &loop, ExecMode mode, int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    auto w = loop.make();
    ExecConfig xc = loop.xc;
    xc.mode = mode;
    return runMachine(cfg, *w, xc);
}

ScenarioComparison
runAll(const PaperLoop &loop)
{
    ScenarioComparison c;
    c.serial = runScenario(loop, ExecMode::Serial);
    c.ideal = runScenario(loop, ExecMode::Ideal);
    c.sw = runScenario(loop, ExecMode::SW);
    c.hw = runScenario(loop, ExecMode::HW);
    return c;
}

void
printHeader(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%s\n", std::string(title.size(), '-').c_str());
}

void
printRow(const std::vector<std::string> &cells,
         const std::vector<int> &widths)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        int w = i < widths.size() ? widths[i] : 10;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtTicks(Tick t)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)t);
    return buf;
}

} // namespace specrt::bench
