/**
 * @file
 * Allocator microbenchmark: the message-arena freelist
 * (sim/arena.hh) against the general heap, on the allocation pattern
 * the network actually produces -- one Msg-sized block per delivery,
 * freed when the delivery fires, with a bounded number in flight at
 * once. The headline number -- arena/heap churn throughput -- lands
 * in BENCH_results.json as metric "alloc_churn_speedup"; the CI perf
 * gate expects it to stay above its baseline floor.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "harness.hh"
#include "mem/msg.hh"
#include "sim/arena.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The network's churn shape: a ring of in-flight message blocks.
 * Every step frees the oldest block and allocates a fresh one
 * (delivery fires, new message enters the wire), touching the
 * payload so the block is really used. Returns blocks per second.
 */
template <typename AllocFn, typename FreeFn>
double
churn(AllocFn &&alloc, FreeFn &&free_, int rounds, int inFlight,
      uint64_t &sink)
{
    std::vector<Msg *> ring(inFlight, nullptr);
    for (int i = 0; i < inFlight; ++i)
        ring[i] = alloc();
    auto t0 = std::chrono::steady_clock::now();
    uint64_t steps = 0;
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < inFlight; ++i) {
            free_(ring[i]);
            Msg *m = alloc();
            m->lineAddr = static_cast<Addr>(r) * inFlight + i;
            sink += m->lineAddr;
            ring[i] = m;
            ++steps;
        }
    }
    double secs = secondsSince(t0);
    for (int i = 0; i < inFlight; ++i)
        free_(ring[i]);
    return static_cast<double>(steps) / secs;
}

} // namespace

SPECRT_BENCH_MAIN(allocator)
{
    printHeader("Message allocator: arena freelist vs general heap");

    // Quick mode stays big enough that one best-of trial outlasts a
    // scheduler quantum -- sub-millisecond trials flake under load.
    const int rounds = quickPick(20000, 5000);
    // The protocol keeps a few dozen messages in flight per machine;
    // 64 is past the high-water mark of every gated bench.
    const int inFlight = 64;
    uint64_t sink = 0;

    Arena arena;

    auto arenaAlloc = [&arena]() {
        return new (arena.alloc(sizeof(Msg))) Msg();
    };
    auto arenaFree = [&arena](Msg *m) {
        m->~Msg();
        arena.free(m, sizeof(Msg));
    };
    auto heapAlloc = []() { return new Msg(); };
    auto heapFree = [](Msg *m) { delete m; };

    // Warm both sides: slab carving and heap cache misses happen off
    // the clock, matching the arena's steady-state claim.
    churn(arenaAlloc, arenaFree, 32, inFlight, sink);
    churn(heapAlloc, heapFree, 32, inFlight, sink);

    // Best-of-k with the sides interleaved: a scheduler preemption
    // landing on one side's single timed run would swing the ratio by
    // 2x and flake the CI gate; the best trial of each side is the
    // interference-free measurement.
    const int trials = 5;
    double arenaRate = 0, heapRate = 0;
    for (int t = 0; t < trials; ++t) {
        arenaRate = std::max(arenaRate,
                             churn(arenaAlloc, arenaFree,
                                   rounds / trials, inFlight, sink));
        heapRate = std::max(heapRate,
                            churn(heapAlloc, heapFree,
                                  rounds / trials, inFlight, sink));
    }

    std::vector<int> w = {14, 16, 16, 10};
    printRow({"pattern", "arena Mmsg/s", "heap Mmsg/s", "speedup"},
             w);
    printRow({"msg churn", fmt(arenaRate / 1e6), fmt(heapRate / 1e6),
              fmt(arenaRate / heapRate, 2)},
             w);

    std::printf("\nsizeof(Msg) = %zu bytes, arena high water = %llu "
                "blocks, carved = %llu, reused = %llu\n",
                sizeof(Msg), (unsigned long long)arena.highWater(),
                (unsigned long long)arena.carved(),
                (unsigned long long)arena.reused());
    std::printf("sink=%llu (keeps the payload writes alive)\n",
                (unsigned long long)sink);

    telemetry().metric("alloc_churn_arena_mmps", arenaRate / 1e6);
    telemetry().metric("alloc_churn_heap_mmps", heapRate / 1e6);
    telemetry().metric("alloc_churn_speedup", arenaRate / heapRate);

    // Steady state must never touch a slab: after warm-up every
    // block comes off a freelist.
    Arena steady;
    churn([&steady]() {
        return new (steady.alloc(sizeof(Msg))) Msg();
    }, [&steady](Msg *m) {
        m->~Msg();
        steady.free(m, sizeof(Msg));
    }, 4, inFlight, sink);
    uint64_t carvedAfterWarm = steady.carved();
    churn([&steady]() {
        return new (steady.alloc(sizeof(Msg))) Msg();
    }, [&steady](Msg *m) {
        m->~Msg();
        steady.free(m, sizeof(Msg));
    }, 64, inFlight, sink);
    bool zeroCarve = steady.carved() == carvedAfterWarm;
    std::printf("steady-state carves after warm-up: %llu (want 0)\n",
                (unsigned long long)(steady.carved() -
                                     carvedAfterWarm));

    std::printf("Target: arena churn >= 1.2x the general heap.\n");
    return (arenaRate / heapRate >= 1.2 && zeroCarve) ? 0 : 1;
}
