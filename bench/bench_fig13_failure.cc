/**
 * @file
 * Reproduces Figure 13: execution time when the speculative run
 * fails the test, normalized to Serial = 100.
 *
 * Forced-failure scenarios, as in section 6.2:
 *  - P3m, Adm: do not privatize the arrays under test; run the
 *    non-privatization algorithm (it fails);
 *  - Ocean: inject a cross-iteration dependence between iterations
 *    1 and 2 (the hardware run schedules single-iteration blocks so
 *    the pair splits across processors);
 *  - Track: run the iteration-wise tests on a dependent instance
 *    (the hardware run splits the dependent pairs with
 *    single-iteration blocks).
 *
 * Two accountings are printed:
 *  - measured: the serial re-execution runs on the same machine
 *    with the data still distributed round-robin;
 *  - paper accounting: failure overhead + the Serial (local-data)
 *    time, which is how the paper composes its bars ("...plus the
 *    Serial time").
 *
 * Shape to verify: HW only slightly above Serial (detection on the
 * fly), SW well above it (the loop completes, then merge+analysis
 * run, before failure is known); Track worst because backing up and
 * restoring its four arrays is large relative to the loop.
 */

#include <cstdio>

#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

struct FailCase
{
    std::string name;
    int procs;
    std::function<std::unique_ptr<Workload>()> make;
    ExecConfig swXc;
    ExecConfig hwXc;
};

std::vector<FailCase>
failCases()
{
    std::vector<FailCase> cases;
    {
        FailCase c;
        c.name = "Ocean";
        c.procs = 8;
        c.make = []() {
            OceanParams p;
            p.stride = 1;
            p.injectDep = true;
            return std::make_unique<OceanLoop>(p);
        };
        // The injected dependence spans the iteration space, so the
        // loop's standard configurations (processor-wise SW test,
        // static chunks) both catch it.
        c.swXc.sched = SchedPolicy::StaticChunk;
        c.swXc.swProcWise = true;
        c.hwXc.sched = SchedPolicy::StaticChunk;
        cases.push_back(c);
    }
    {
        FailCase c;
        c.name = "P3m";
        c.procs = 16;
        c.make = []() { return std::make_unique<P3mLoop>(); };
        c.swXc.sched = SchedPolicy::Dynamic;
        c.swXc.blockIters = 4;
        c.swXc.maxIters = quickPick<IterNum>(15000, 2000);
        c.swXc.downgradePrivToNonPriv = true;
        c.hwXc = c.swXc;
        cases.push_back(c);
    }
    {
        FailCase c;
        c.name = "Adm";
        c.procs = 16;
        c.make = []() { return std::make_unique<AdmLoop>(); };
        c.swXc.sched = SchedPolicy::StaticChunk;
        c.swXc.swProcWise = true; // Adm's standard SW flavor
        c.swXc.downgradePrivToNonPriv = true;
        c.hwXc.sched = SchedPolicy::Dynamic;
        c.hwXc.blockIters = 2;
        c.hwXc.downgradePrivToNonPriv = true;
        cases.push_back(c);
    }
    {
        FailCase c;
        c.name = "Track";
        c.procs = 16;
        c.make = []() {
            TrackParams p;
            p.instance = 3; // dependent instance
            return std::make_unique<TrackLoop>(p);
        };
        c.swXc.sched = SchedPolicy::StaticChunk;
        c.swXc.swProcWise = false; // iteration-wise: fails
        c.hwXc.sched = SchedPolicy::BlockCyclic;
        c.hwXc.blockIters = 1; // split the dependent pairs
        cases.push_back(c);
    }
    return cases;
}

RunResult
run(const FailCase &c, ExecMode mode, const ExecConfig &base)
{
    MachineConfig cfg;
    cfg.numProcs = c.procs;
    auto w = c.make();
    ExecConfig xc = base;
    xc.mode = mode;
    return runMachine(cfg, *w, xc);
}

} // namespace

SPECRT_BENCH_MAIN(fig13_failure)
{
    printHeader("Figure 13: execution time when the test fails "
                "(Serial = 100)");
    std::vector<int> w = {8, 9, 16, 16, 16, 16, 13};
    printRow({"loop", "Serial", "SW measured", "HW measured",
              "SW paper-acct", "HW paper-acct", "HW iters"},
             w);

    double swp_sum = 0, hwp_sum = 0;
    int n = 0;
    for (const FailCase &c : failCases()) {
        RunResult serial = run(c, ExecMode::Serial, c.swXc);
        RunResult sw = run(c, ExecMode::SW, c.swXc);
        RunResult hw = run(c, ExecMode::HW, c.hwXc);

        if (sw.passed)
            std::printf("  !! SW unexpectedly passed %s\n",
                        c.name.c_str());
        if (hw.passed)
            std::printf("  !! HW unexpectedly passed %s\n",
                        c.name.c_str());

        double st = static_cast<double>(serial.totalTicks);
        auto norm = [&](Tick t) {
            return 100 * static_cast<double>(t) / st;
        };
        // Paper accounting: overhead phases + the Serial time.
        double sw_paper =
            norm(sw.totalTicks - sw.phases.serial) + 100;
        double hw_paper =
            norm(hw.totalTicks - hw.phases.serial) + 100;
        swp_sum += sw_paper;
        hwp_sum += hw_paper;
        ++n;

        printRow({c.name, "100.0", fmt(norm(sw.totalTicks), 1),
                  fmt(norm(hw.totalTicks), 1), fmt(sw_paper, 1),
                  fmt(hw_paper, 1), std::to_string(hw.itersExecuted)},
                 w);
    }

    telemetry().metric("sw_paper_acct_mean", swp_sum / n);
    telemetry().metric("hw_paper_acct_mean", hwp_sum / n);
    std::printf("\npaper-accounting averages: SW %.0f, HW %.0f "
                "(paper: SW ~158, HW ~122)\n",
                swp_sum / n, hwp_sum / n);
    std::printf("Shape checks: HW close to Serial (on-the-fly "
                "detection), SW well above it; the measured columns "
                "additionally pay remote-data serial re-execution "
                "(see EXPERIMENTS.md).\n");
    return 0;
}
