/**
 * @file
 * Machine-readable benchmark telemetry.
 *
 * Every bench binary runs through benchMain() (see the
 * SPECRT_BENCH_MAIN macro), which times the bench body, accumulates
 * simulated work via the Telemetry singleton, and appends one JSON
 * record to BENCH_results.json: wall time, simulated ticks, ticks
 * per second, events fired, a per-counter Stats snapshot of the last
 * machine, a machine-config fingerprint, and the git SHA the binary
 * was built from. scripts/check_bench_regression.py compares those
 * records against bench/baseline.json in CI.
 *
 * Flags understood by every bench binary:
 *   --quick       CI smoke sizing (benches consult bench::quick())
 *   --out <path>  telemetry file (default $SPECRT_BENCH_OUT or
 *                 ./BENCH_results.json)
 *   --no-json     skip writing telemetry
 */

#ifndef SPECRT_BENCH_TELEMETRY_HH
#define SPECRT_BENCH_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace specrt
{
struct RunResult;
}

namespace specrt::bench
{

/** True when the binary runs in --quick (CI smoke) mode. */
bool quick();

/** Pick @p full normally, @p q under --quick. */
template <typename T>
T
quickPick(T full, T q)
{
    return quick() ? q : full;
}

/** Per-process accumulator behind the JSON record. */
class Telemetry
{
  public:
    /** Fold one simulator run into the totals. */
    void recordRun(const RunResult &r);

    /** Record a bench-specific headline number. */
    void metric(const std::string &key, double value);

    /** Capture @p g's counters (replaces the previous snapshot). */
    void snapshotStats(const StatGroup &g);

    uint64_t simTicks = 0;
    uint64_t eventsFired = 0;
    uint64_t runs = 0;
    /** Runs that died of injected infrastructure faults. */
    uint64_t infraFailedRuns = 0;
    std::vector<std::pair<std::string, double>> metrics;
    StatSnapshot stats;
};

/** The process-wide telemetry accumulator. */
Telemetry &telemetry();

/**
 * Entry point shared by all bench binaries: parses the telemetry
 * flags, runs @p body, and writes the JSON record (unless
 * --no-json). Returns the bench's exit code.
 */
int benchMain(int argc, char **argv, const char *name, int (*body)());

/**
 * Declare the bench body; benchMain() provides main(). Usage:
 *
 *   SPECRT_BENCH_MAIN(fig11_speedup)
 *   {
 *       ... // return an exit code
 *   }
 */
#define SPECRT_BENCH_MAIN(name)                                         \
    static int specrtBenchBody();                                       \
    int                                                                 \
    main(int argc, char **argv)                                         \
    {                                                                   \
        return ::specrt::bench::benchMain(argc, argv, #name,            \
                                          &specrtBenchBody);            \
    }                                                                   \
    static int specrtBenchBody()

} // namespace specrt::bench

#endif // SPECRT_BENCH_TELEMETRY_HH
