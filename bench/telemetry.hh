/**
 * @file
 * Machine-readable benchmark telemetry.
 *
 * Every bench binary runs through benchMain() (see the
 * SPECRT_BENCH_MAIN macro), which times the bench body, accumulates
 * simulated work via the Telemetry singleton, and appends one JSON
 * record to BENCH_results.json: wall time, simulated ticks, ticks
 * per second, events fired, a per-counter Stats snapshot of the last
 * machine, a machine-config fingerprint, and the git SHA the binary
 * was built from. scripts/check_bench_regression.py compares those
 * records against bench/baseline.json in CI.
 *
 * Flags understood by every bench binary:
 *   --quick       CI smoke sizing (benches consult bench::quick())
 *   --out <path>  telemetry file (default $SPECRT_BENCH_OUT or
 *                 ./BENCH_results.json)
 *   --no-json     skip writing telemetry
 *   --jobs <n>    campaign worker threads for benches that fan out
 *                 through bench::runJobs() (0 = all host cores;
 *                 default 1 so the perf gate's ticks/s keeps
 *                 measuring a single simulator instance)
 *   --timeline-out <path>  enable the metric timeline
 *                 (sim/timeline.hh) and write its CSV to <path>;
 *                 with --trace-out, the sampled series also land in
 *                 the trace JSON as Perfetto counter tracks. Jobs
 *                 fanned out via runJobs() sample into per-job
 *                 timelines merged in job-id order, so the CSV is
 *                 identical whatever --jobs was. Adds
 *                 timeline_samples / timeline_series keys to the
 *                 JSON record.
 *   --events-out <path>  enable the structured event log
 *                 (obs/event_log.hh) and write the merged JSONL to
 *                 <path>. Jobs fanned out via runJobs() record into
 *                 per-job logs merged in job-id order, so the file
 *                 is byte-identical whatever --jobs was.
 *   --report-out <path>  write the unified run report
 *                 (obs/report.hh) to <path>; implies the event log
 *                 so the report's events section is populated.
 *   --status-out <path>  stream live campaign progress snapshots
 *                 (sim/campaign.hh progressPath) to <path> while
 *                 runJobs() is in flight; tail with
 *                 scripts/specrt_top.py.
 *
 * The JSON record also always carries host memory figures --
 * mem_peak_rss_kb (getrusage) and mem_arena_hwm_blocks (the largest
 * message-arena high-water mark) -- which the perf gate reads as
 * informational keys.
 *
 * Concurrency: telemetry() is the PROCESS accumulator on the main
 * thread, but campaign jobs run on worker threads -- there it
 * resolves to the job's own shard (installed by ScopedTelemetry), and
 * runJobs() merges the shards into the process accumulator in job-id
 * order, so the JSON record is identical whatever --jobs was.
 */

#ifndef SPECRT_BENCH_TELEMETRY_HH
#define SPECRT_BENCH_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/campaign.hh"
#include "sim/stall.hh"
#include "sim/stats.hh"

namespace specrt
{
struct RunResult;
}

namespace specrt::bench
{

/** True when the binary runs in --quick (CI smoke) mode. */
bool quick();

/** Pick @p full normally, @p q under --quick. */
template <typename T>
T
quickPick(T full, T q)
{
    return quick() ? q : full;
}

/** Accumulator behind the JSON record (process-wide or per-job). */
class Telemetry
{
  public:
    /** Fold one simulator run into the totals. */
    void recordRun(const RunResult &r);

    /** Record a bench-specific headline number. */
    void metric(const std::string &key, double value);

    /** Capture @p g's counters (replaces the previous snapshot). */
    void snapshotStats(const StatGroup &g);

    /**
     * Fold a per-job shard into this accumulator: counters sum,
     * shard metrics overwrite same-keyed ones, a non-empty shard
     * stats snapshot replaces the current one ("last machine" --
     * with shards merged in job-id order, the highest job id wins).
     */
    void merge(const Telemetry &shard);

    uint64_t simTicks = 0;
    uint64_t eventsFired = 0;
    uint64_t runs = 0;
    /** Runs that died of injected infrastructure faults. */
    uint64_t infraFailedRuns = 0;
    std::vector<std::pair<std::string, double>> metrics;
    StatSnapshot stats;
    /**
     * Summed stall/cost breakdown of every profiled run recorded
     * (cost.valid stays false until one run carried a valid
     * breakdown). Feeds the unified report's "cost" section.
     */
    stall::CostBreakdown cost;
};

/**
 * The calling thread's telemetry accumulator: the process-wide one
 * normally, the job's shard inside a ScopedTelemetry scope (bench
 * bodies and harness helpers call this and work unchanged under
 * runJobs()).
 */
Telemetry &telemetry();

/** RAII redirect of this thread's telemetry() to @p shard. */
class ScopedTelemetry
{
  public:
    explicit ScopedTelemetry(Telemetry &shard);
    ~ScopedTelemetry();

    ScopedTelemetry(const ScopedTelemetry &) = delete;
    ScopedTelemetry &operator=(const ScopedTelemetry &) = delete;

  private:
    Telemetry *prev;
};

/** Campaign worker threads resolved from --jobs / SPECRT_JOBS (>= 1). */
unsigned jobs();

/**
 * Override the worker count benchMain() parsed from --jobs. For
 * tests that re-run the same bench body at different fan-outs and
 * assert byte-identical aggregation; bench bodies never call this.
 */
void setJobs(unsigned n);

/**
 * Fan jobs 0..n-1 across jobs() workers via campaign::run. Each job
 * gets a private Telemetry shard (telemetry() resolves to it inside
 * the job); shards are merged into the process accumulator in job-id
 * order after all jobs finish, so the JSON record does not depend on
 * --jobs. Job failures are reported in the returned outcomes, not
 * thrown.
 */
std::vector<campaign::JobOutcome> runJobs(size_t n,
                                          const campaign::JobFn &fn,
                                          uint64_t base_seed = 0);

/**
 * Entry point shared by all bench binaries: parses the telemetry
 * flags, runs @p body, and writes the JSON record (unless
 * --no-json). Returns the bench's exit code.
 */
int benchMain(int argc, char **argv, const char *name, int (*body)());

/**
 * Declare the bench body; benchMain() provides main(). Usage:
 *
 *   SPECRT_BENCH_MAIN(fig11_speedup)
 *   {
 *       ... // return an exit code
 *   }
 */
#define SPECRT_BENCH_MAIN(name)                                         \
    static int specrtBenchBody();                                       \
    int                                                                 \
    main(int argc, char **argv)                                         \
    {                                                                   \
        return ::specrt::bench::benchMain(argc, argv, #name,            \
                                          &specrtBenchBody);            \
    }                                                                   \
    static int specrtBenchBody()

} // namespace specrt::bench

#endif // SPECRT_BENCH_TELEMETRY_HH
