/**
 * @file
 * Event-engine microbenchmark: schedule/fire/cancel throughput of
 * the index-tracked-heap engine (sim/event_queue.hh) against a
 * replica of the seed engine (std::priority_queue of std::function
 * plus lazy-deletion cancel sets), on the cycle every protocol hop
 * takes. The headline number -- new/legacy schedule+fire throughput
 * -- lands in BENCH_results.json as metric "sched_fire_speedup";
 * the CI perf gate expects it to stay >= 1.3.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "harness.hh"
#include "sim/event_queue.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

/** The seed engine, verbatim (lazy cancellation, allocating). */
class LegacyEventQueue
{
  public:
    using Id = uint64_t;

    Tick curTick() const { return _curTick; }

    Id
    schedule(Tick when, std::function<void()> callback)
    {
        Id id = nextId++;
        pending.push(Entry{when, nextSeq++, id, std::move(callback)});
        live.insert(id);
        return id;
    }

    Id
    scheduleIn(Cycles delay, std::function<void()> callback)
    {
        return schedule(_curTick + delay, std::move(callback));
    }

    void
    deschedule(Id id)
    {
        if (!live.erase(id))
            return;
        cancelled.insert(id);
    }

    Tick
    run()
    {
        while (!pending.empty()) {
            Entry entry =
                std::move(const_cast<Entry &>(pending.top()));
            pending.pop();
            auto it = cancelled.find(entry.id);
            if (it != cancelled.end()) {
                cancelled.erase(it);
                continue;
            }
            live.erase(entry.id);
            _curTick = entry.when;
            entry.callback();
        }
        return _curTick;
    }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Id id;
        std::function<void()> callback;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare>
        pending;
    std::unordered_set<Id> live;
    std::unordered_set<Id> cancelled;
    Tick _curTick = 0;
    uint64_t nextSeq = 0;
    Id nextId = 1;
};

/**
 * Always-default controller: what the explorer's replay costs once
 * the stack is exhausted. The engine only consults it at same-tick
 * collision points, so the delta vs.\ the uncontrolled run isolates
 * the controlled fire path; the uncontrolled run itself (the gated
 * sched_fire_speedup metric) demonstrates that merely compiling the
 * hook in costs nothing when no controller is installed.
 */
struct Pick0Controller : ScheduleController
{
    size_t
    pick(const EventChoice *, size_t) override
    {
        return 0;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The common protocol cycle: every round schedules a spread of
 * future events and drains them. Returns events fired per second.
 */
template <typename Queue>
double
schedFireWorkload(Queue &q, int rounds, int perRound, uint64_t &sink)
{
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < perRound; ++i)
            q.scheduleIn(static_cast<Cycles>(i % 97 + 1),
                         [&sink]() { ++sink; });
        q.run();
    }
    return static_cast<double>(rounds) * perRound / secondsSince(t0);
}

/** Watchdog pattern: schedule, cancel half before they fire. */
template <typename Queue>
double
cancelHeavyWorkload(Queue &q, int rounds, int perRound,
                    uint64_t &sink)
{
    std::vector<decltype(q.schedule(0, []() {}))> ids(perRound);
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < perRound; ++i)
            ids[i] = q.scheduleIn(static_cast<Cycles>(i % 211 + 1),
                                  [&sink]() { ++sink; });
        for (int i = 0; i < perRound; i += 2)
            q.deschedule(ids[i]);
        q.run();
    }
    return static_cast<double>(rounds) * perRound / secondsSince(t0);
}

/** Zero-delay hand-off chains (the same-tick FIFO fast lane). */
template <typename Queue>
double
sameTickWorkload(Queue &q, int rounds, int chains, int depth,
                 uint64_t &sink)
{
    std::function<void(int)> hop = [&](int d) {
        ++sink;
        if (d > 0)
            q.scheduleIn(0, [&hop, d]() { hop(d - 1); });
    };
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int c = 0; c < chains; ++c) {
            q.scheduleIn(static_cast<Cycles>(c % 13 + 1),
                         [&hop, depth]() { hop(depth); });
        }
        q.run();
    }
    return static_cast<double>(rounds) * chains * (depth + 1) /
           secondsSince(t0);
}

} // namespace

SPECRT_BENCH_MAIN(event_queue)
{
    printHeader("Event engine: schedule/fire/cancel throughput, "
                "new vs seed engine");

    const int rounds = quickPick(1500, 200);
    const int perRound = 1000;
    uint64_t sink = 0;

    EventQueue nq;
    LegacyEventQueue lq;

    // Warm both engines so vector growth happens off the clock.
    schedFireWorkload(nq, 10, perRound, sink);
    schedFireWorkload(lq, 10, perRound, sink);

    double nSf = schedFireWorkload(nq, rounds, perRound, sink);
    double lSf = schedFireWorkload(lq, rounds, perRound, sink);
    double nCa = cancelHeavyWorkload(nq, rounds, perRound, sink);
    double lCa = cancelHeavyWorkload(lq, rounds, perRound, sink);
    double nSt = sameTickWorkload(nq, rounds / 4 + 1, 100, 9, sink);
    double lSt = sameTickWorkload(lq, rounds / 4 + 1, 100, 9, sink);

    // Same workload with a pick-0 ScheduleController installed: the
    // price of the explorer's controlled fire path when it IS active
    // (the absent-controller numbers above gate the default path).
    Pick0Controller p0;
    EventQueue cq;
    schedFireWorkload(cq, 10, perRound, sink);
    cq.setScheduleController(&p0);
    double cSf = schedFireWorkload(cq, rounds, perRound, sink);
    cq.setScheduleController(nullptr);

    std::vector<int> w = {16, 14, 14, 10};
    printRow({"workload", "new Mev/s", "seed Mev/s", "speedup"}, w);
    auto row = [&](const char *name, double n, double l) {
        printRow({name, fmt(n / 1e6), fmt(l / 1e6), fmt(n / l, 2)},
                 w);
    };
    row("schedule+fire", nSf, lSf);
    row("cancel-heavy", nCa, lCa);
    row("same-tick chain", nSt, lSt);
    row("ctl'd (pick-0)", cSf, lSf);

    telemetry().metric("sched_fire_new_meps", nSf / 1e6);
    telemetry().metric("sched_fire_controlled_meps", cSf / 1e6);
    telemetry().metric("controlled_fire_relative", cSf / nSf);
    telemetry().metric("sched_fire_legacy_meps", lSf / 1e6);
    telemetry().metric("sched_fire_speedup", nSf / lSf);
    telemetry().metric("cancel_heavy_speedup", nCa / lCa);
    telemetry().metric("same_tick_speedup", nSt / lSt);
    // Give the regression gate a sim-rate to track: this bench's
    // "simulated ticks" are the engine's own advanced ticks.
    telemetry().simTicks += nq.curTick();
    telemetry().eventsFired += nq.numFired();

    std::printf("\nsink=%llu (keeps the callbacks alive)\n",
                (unsigned long long)sink);
    std::printf("Target: schedule+fire speedup >= 1.3x over the "
                "seed engine.\n");
    return nSf / lSf >= 1.3 ? 0 : 1;
}
