/**
 * @file
 * Ablation (paper sections 2.2.3 / 3.3, Figure 3): the privatization
 * algorithm with read-in and copy-out parallelizes loops the basic
 * software privatization test rejects. We run the Figure-3-style
 * single-element loops under the hardware test and the basic LRPD
 * and report verdicts, read-in transaction counts, and times.
 */

#include <cstdio>

#include "core/loop_exec.hh"
#include "harness.hh"
#include "lrpd/lrpd.hh"

using namespace specrt;
using namespace specrt::bench;

SPECRT_BENCH_MAIN(ablation_readin)
{
    printHeader("Ablation: privatization with read-in/copy-out "
                "(Figure 3 loops, 8 procs)");

    MachineConfig cfg;
    cfg.numProcs = 8;

    std::vector<int> w = {16, 12, 16, 14, 12, 12};
    printRow({"loop", "HW verdict", "basic-LRPD", "SW+Awmin",
              "HW ticks", "copy-out"},
             w);

    struct Case
    {
        const char *name;
        Fig3Kind kind;
    };
    for (const Case &c : {Case{"read-in needed", Fig3Kind::ReadInNeeded},
                          Case{"write-first", Fig3Kind::WriteFirst},
                          Case{"flow dep", Fig3Kind::FlowDep}}) {
        Fig3Loop loop(c.kind, 64);

        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.keepTrace = true;
        RunResult hw = runMachine(cfg, loop, xc);

        // The basic (no read-in) LRPD verdict on the same pattern.
        std::vector<AccessEvent> array0;
        for (const AccessEvent &e : hw.trace) {
            if (e.arrayId == 0)
                array0.push_back(e);
        }
        LrpdVerdict basic =
            LrpdTest::run(array0, 1, cfg.numProcs, true, false)
                .verdict;

        // The section 2.2.3 software extension with the Awmin
        // shadow, run end to end.
        Fig3Loop loop2(c.kind, 64);
        ExecConfig sxc;
        sxc.mode = ExecMode::SW;
        sxc.swReadIn = true;
        RunResult sw = runMachine(cfg, loop2, sxc);

        printRow({c.name, hw.passed ? "pass" : "FAIL",
                  lrpdVerdictName(basic),
                  sw.passed ? "pass" : "FAIL",
                  fmtTicks(hw.totalTicks),
                  fmtTicks(hw.phases.copyOut)},
                 w);
    }

    std::printf("\nShape: the basic LRPD rejects the read-in loop; "
                "the hardware test and the Awmin-extended software "
                "test both accept it; the flow-dependent loop fails "
                "everywhere.\n");
    return 0;
}
