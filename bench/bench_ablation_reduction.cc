/**
 * @file
 * Ablation (extension): reduction parallelization. The paper closes
 * by noting work on handling more loop types; the LRPD framework's
 * reduction leg is the classic case. A histogram loop
 * (bins(K(i)) += W(i)) defeats both of the paper's tests -- under
 * the non-privatization algorithm the bins are written by many
 * processors, and under the privatization algorithm every
 * accumulation is a read-first after someone's write -- yet it is
 * perfectly parallel as a reduction: privatized partial accumulators
 * merged after the loop, guarded by the tagged-access check.
 */

#include <cstdio>

#include "core/loop_exec.hh"
#include "harness.hh"

using namespace specrt;
using namespace specrt::bench;

namespace
{

/** Histogram variant whose bins are declared with a chosen test. */
class RetaggedHistogram : public Workload
{
  public:
    RetaggedHistogram(const HistogramParams &p, TestType t)
        : inner(p), type(t)
    {}

    std::string name() const override { return "histogram"; }
    std::vector<ArrayDecl>
    arrays() const override
    {
        std::vector<ArrayDecl> decls = inner.arrays();
        decls[0].test = type;
        decls[0].liveOut = type != TestType::NonPriv;
        return decls;
    }
    IterNum numIters() const override { return inner.numIters(); }
    void
    initData(AddrMap &mem,
             const std::vector<const Region *> &r) override
    {
        inner.initData(mem, r);
    }
    void
    genIteration(IterNum i, IterProgram &out) override
    {
        inner.genIteration(i, out);
    }

  private:
    HistogramLoop inner;
    TestType type;
};

} // namespace

SPECRT_BENCH_MAIN(ablation_reduction)
{
    printHeader("Ablation: reduction parallelization "
                "(histogram, 16 procs)");

    MachineConfig cfg;
    cfg.numProcs = 16;
    HistogramParams hp;
    hp.iters = quickPick<IterNum>(4096, 1024);
    hp.bins = 512;

    RunResult serial;
    {
        HistogramLoop loop(hp);
        ExecConfig xc;
        xc.mode = ExecMode::Serial;
        serial = runMachine(cfg, loop, xc);
    }
    double st = static_cast<double>(serial.totalTicks);

    std::vector<int> w = {22, 10, 12, 10, 12};
    printRow({"bins declared as", "verdict", "HW ticks", "speedup",
              "merge ticks"},
             w);
    printRow({"(serial baseline)", "-", fmtTicks(serial.totalTicks),
              "1.00", "-"},
             w);

    struct Case
    {
        const char *name;
        TestType type;
    };
    for (const Case &c :
         {Case{"Reduction", TestType::Reduction},
          Case{"Priv (paper's test)", TestType::Priv},
          Case{"NonPriv (paper's)", TestType::NonPriv}}) {
        RetaggedHistogram loop(hp, c.type);
        ExecConfig xc;
        xc.mode = ExecMode::HW;
        xc.sched = SchedPolicy::Dynamic;
        xc.blockIters = 8;
        RunResult r = runMachine(cfg, loop, xc);
        if (c.type == TestType::Reduction)
            telemetry().metric("reduction_speedup",
                               st / static_cast<double>(r.totalTicks));
        printRow({c.name, r.passed ? "pass" : "FAIL",
                  fmtTicks(r.totalTicks),
                  fmt(st / static_cast<double>(r.totalTicks)),
                  fmtTicks(r.phases.reduction)},
                 w);
    }

    std::printf("\nShape: only the reduction extension parallelizes "
                "the loop; the paper's two tests correctly reject it "
                "(it IS cross-iteration dependent elementwise) and "
                "fall back to serial re-execution.\n");
    return 0;
}
