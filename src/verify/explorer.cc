#include "verify/explorer.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace verify
{

size_t
ReplayController::pick(const EventChoice *choices, size_t n)
{
    size_t i = log.size();
    size_t take = 0;
    if (i < prefix.size())
        take = std::min(prefix[i], n - 1);
    log.push_back(
        {take, n, std::vector<EventChoice>(choices, choices + n)});
    if (onDecision)
        onDecision(choices, n, take);
    return take;
}

ScopedScheduleController::ScopedScheduleController(ScheduleController *c)
    : prev(SimContext::current().scheduleController)
{
    SimContext::current().scheduleController = c;
}

ScopedScheduleController::~ScopedScheduleController()
{
    SimContext::current().scheduleController = prev;
}

bool
networkActorIndependence(const EventChoice &a, const EventChoice &b)
{
    return a.kind == EventKind::Network && b.kind == EventKind::Network &&
           a.actor != unknownActor && b.actor != unknownActor &&
           a.actor != b.actor;
}

std::string
ExploreResult::summary() const
{
    std::ostringstream os;
    os << "runs=" << runs << " decisions=" << decisions
       << " max_depth=" << maxDepthSeen << " pruned=" << pruned;
    if (budgetExhausted)
        os << " (budget exhausted)";
    if (violated) {
        os << " VIOLATED witness=[";
        for (size_t i = 0; i < witness.size(); ++i)
            os << (i ? "," : "") << witness[i];
        os << "] " << report;
    }
    return os.str();
}

namespace
{

/** Execute one schedule, folding coverage counters into @p res. */
RunVerdict
runSchedule(const RunFn &run, const std::vector<size_t> &choices,
            ExploreResult &res, std::vector<Decision> *decisions_out)
{
    ReplayController rc(choices);
    ScopedScheduleController scope(&rc);
    RunVerdict v = run();
    ++res.runs;
    res.decisions += rc.numDecisions();
    res.maxDepthSeen = std::max(res.maxDepthSeen, rc.numDecisions());
    if (decisions_out)
        *decisions_out = rc.decisions();
    return v;
}

std::vector<size_t>
takenOf(const std::vector<Decision> &decs)
{
    std::vector<size_t> taken;
    taken.reserve(decs.size());
    for (const Decision &d : decs)
        taken.push_back(d.taken);
    // Positions beyond the stack default to branch 0, so trailing
    // zeros carry no information.
    while (!taken.empty() && taken.back() == 0)
        taken.pop_back();
    return taken;
}

/**
 * Minimize a failing choice stack: shortest failing prefix first
 * (everything beyond a prefix defaults to 0), then each surviving
 * choice lowered toward the default. Every candidate is re-executed;
 * the runs count toward @p res. The simulator is deterministic given
 * a stack, so the result is a stable 1-minimal witness.
 */
std::vector<size_t>
shrinkWitness(const RunFn &run, std::vector<size_t> cur,
              ExploreResult &res)
{
    auto fails = [&](const std::vector<size_t> &c) {
        return !runSchedule(run, c, res, nullptr).ok;
    };

    for (size_t len = 0; len < cur.size(); ++len) {
        std::vector<size_t> t(cur.begin(),
                              cur.begin() + static_cast<long>(len));
        if (fails(t)) {
            cur = std::move(t);
            break;
        }
    }

    for (size_t i = 0; i < cur.size(); ++i) {
        while (cur[i] > 0) {
            std::vector<size_t> t = cur;
            --t[i];
            if (!fails(t))
                break;
            cur = std::move(t);
        }
    }

    while (!cur.empty() && cur.back() == 0)
        cur.pop_back();
    return cur;
}

void
recordViolation(const RunFn &run, const std::vector<Decision> &decs,
                const std::string &report, ExploreResult &res)
{
    res.violated = true;
    res.rawWitness = takenOf(decs);
    res.report = report;
    res.witness = shrinkWitness(run, res.rawWitness, res);
}

/**
 * Advance @p i's branch past @p from, skipping (and counting)
 * siblings that commute with an earlier-explored one. @return the
 * branch to take, or @p limit when the point is spent.
 *
 * Pruning soundness rests on the relation being a true
 * commutativity; skipping b because it commutes with a sibling j < b
 * assumes the interleavings below b are covered below j (and, when j
 * was itself pruned, transitively below j's coverer).
 */
size_t
nextBranch(const Decision &d, size_t from, size_t limit,
           const ExploreOptions &opts, ExploreResult &res)
{
    size_t b = from;
    while (b < limit && opts.independent) {
        bool prune = false;
        for (size_t j = 0; j < b && !prune; ++j)
            prune = opts.independent(d.options[j], d.options[b]);
        if (!prune)
            break;
        ++res.pruned;
        ++b;
    }
    return b;
}

} // namespace

ExploreResult
explore(const RunFn &run, const ExploreOptions &opts)
{
    ExploreResult res;
    std::vector<size_t> stack = opts.lockedPrefix;
    const size_t locked = opts.lockedPrefix.size();

    while (true) {
        std::vector<Decision> decs;
        RunVerdict v = runSchedule(run, stack, res, &decs);
        if (!v.ok) {
            recordViolation(run, decs, v.report, res);
            return res;
        }

        // Depth-first: increment the deepest incrementable point.
        bool advanced = false;
        for (size_t i = decs.size(); i-- > locked;) {
            if (opts.maxDepth && i >= opts.maxDepth)
                continue;
            size_t limit = decs[i].degree;
            if (opts.maxBranch)
                limit = std::min(limit, opts.maxBranch);
            size_t b = nextBranch(decs[i], decs[i].taken + 1, limit,
                                  opts, res);
            if (b >= limit)
                continue;
            stack.resize(i);
            for (size_t k = 0; k < i; ++k)
                stack[k] = decs[k].taken;
            stack.push_back(b);
            advanced = true;
            break;
        }
        if (!advanced)
            return res; // tree (as bounded) exhausted

        if (opts.maxRuns && res.runs >= opts.maxRuns) {
            res.budgetExhausted = true;
            return res;
        }
    }
}

RunVerdict
replay(const RunFn &run, const std::vector<size_t> &choices)
{
    ReplayController rc(choices);
    ScopedScheduleController scope(&rc);
    return run();
}

ExploreResult
exploreParallel(const RunFn &run, const ExploreOptions &opts,
                size_t partition_depth, const campaign::Options &copts)
{
    ExploreResult agg;

    // Breadth-first prefix expansion: each probe run discovers the
    // branch degree at its frontier position (and checks the
    // property on the way).
    std::vector<std::vector<size_t>> frontier = {opts.lockedPrefix};
    for (size_t level = 0; level < partition_depth; ++level) {
        std::vector<std::vector<size_t>> next;
        for (const std::vector<size_t> &p : frontier) {
            std::vector<Decision> decs;
            RunVerdict v = runSchedule(run, p, agg, &decs);
            if (!v.ok) {
                recordViolation(run, decs, v.report, agg);
                return agg;
            }
            size_t pos = p.size();
            if (decs.size() <= pos)
                continue; // the probe was the subtree's only schedule
            size_t limit = decs[pos].degree;
            if (opts.maxBranch)
                limit = std::min(limit, opts.maxBranch);
            if (opts.maxDepth && pos >= opts.maxDepth)
                limit = 1;
            for (size_t b = 0; b < limit;
                 b = nextBranch(decs[pos], b + 1, limit, opts, agg)) {
                std::vector<size_t> q = p;
                q.push_back(b);
                next.push_back(std::move(q));
            }
        }
        frontier = std::move(next);
        if (frontier.empty())
            return agg; // every subtree fit inside a probe
    }

    // One campaign job per prefix-locked subtree. Budgets (maxRuns)
    // apply per job. Shards merge in job-id order, so the outcome is
    // independent of worker scheduling.
    std::vector<ExploreResult> shard(frontier.size());
    campaign::JobFn fn = [&](size_t id, SimContext &) {
        ExploreOptions o = opts;
        o.lockedPrefix = frontier[id];
        shard[id] = explore(run, o);
    };
    auto outcomes = campaign::run(frontier.size(), fn, copts);

    for (size_t id = 0; id < frontier.size(); ++id) {
        const ExploreResult &s = shard[id];
        agg.runs += s.runs;
        agg.decisions += s.decisions;
        agg.maxDepthSeen = std::max(agg.maxDepthSeen, s.maxDepthSeen);
        agg.pruned += s.pruned;
        agg.budgetExhausted |= s.budgetExhausted;
        if (!agg.violated && s.violated) {
            agg.violated = true;
            agg.rawWitness = s.rawWitness;
            agg.witness = s.witness;
            agg.report = s.report;
        }
        if (!agg.violated && !outcomes[id].ok) {
            agg.violated = true;
            agg.report = "job " + std::to_string(id) +
                         " died: " + outcomes[id].error;
        }
    }
    return agg;
}

// --- schedule files ----------------------------------------------------

std::string
ScheduleFile::serialize() const
{
    std::ostringstream os;
    os << "specrt-schedule v1\n";
    for (const auto &[k, v] : meta) {
        SPECRT_ASSERT(k.find_first_of(" \n") == std::string::npos,
                      "schedule meta key '%s' contains whitespace",
                      k.c_str());
        SPECRT_ASSERT(v.find('\n') == std::string::npos,
                      "schedule meta value for '%s' contains a newline",
                      k.c_str());
        os << "meta " << k << " " << v << "\n";
    }
    for (size_t c : choices)
        os << "choice " << c << "\n";
    return os.str();
}

ScheduleFile
ScheduleFile::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "specrt-schedule v1")
        panic("not a specrt schedule file (bad header '%s')",
              line.c_str());

    ScheduleFile f;
    size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "meta") {
            std::string key;
            ls >> key;
            std::string value;
            std::getline(ls, value);
            if (!value.empty() && value[0] == ' ')
                value.erase(0, 1);
            if (key.empty())
                panic("schedule file line %zu: meta without a key",
                      lineno);
            f.meta[key] = value;
        } else if (kw == "choice") {
            long long c = -1;
            ls >> c;
            if (c < 0)
                panic("schedule file line %zu: bad choice", lineno);
            f.choices.push_back(static_cast<size_t>(c));
        } else {
            panic("schedule file line %zu: unknown keyword '%s'",
                  lineno, kw.c_str());
        }
    }
    return f;
}

void
ScheduleFile::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        panic("cannot write schedule file %s", path.c_str());
    os << serialize();
    if (!os)
        panic("write to schedule file %s failed", path.c_str());
}

ScheduleFile
ScheduleFile::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        panic("cannot read schedule file %s", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return parse(buf.str());
}

} // namespace verify
} // namespace specrt
