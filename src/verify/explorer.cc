#include "verify/explorer.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace verify
{

size_t
ReplayController::nextTake(size_t n, ChoiceKind kind)
{
    size_t i = log.size();
    size_t take = 0;
    if (i < prefix.size())
        take = std::min(prefix[i], n - 1);
    if (i < expectKinds.size() && expectKinds[i] != kind)
        kindMismatch = true;
    return take;
}

size_t
ReplayController::pick(const EventChoice *choices, size_t n)
{
    size_t take = nextTake(n, ChoiceKind::Sched);
    log.push_back({take, n,
                   std::vector<EventChoice>(choices, choices + n),
                   ChoiceKind::Sched, {}});
    if (onDecision)
        onDecision(choices, n, take);
    return take;
}

size_t
ReplayController::pickFault(const FaultChoicePoint &p, size_t n)
{
    size_t take = nextTake(n, ChoiceKind::Fault);
    log.push_back({take, n, {}, ChoiceKind::Fault, p});
    if (onFaultDecision)
        onFaultDecision(p, n, take);
    return take;
}

void
ReplayController::onFire(const EventChoice &fired)
{
    // Daemon events are pure observers by contract: they neither
    // race with protocol events nor create non-daemon children, so
    // the DPOR trace omits them.
    if (recordSteps && !fired.daemon)
        stepLog.push_back(fired);
}

ScopedScheduleController::ScopedScheduleController(ScheduleController *c)
    : prev(SimContext::current().scheduleController)
{
    SimContext::current().scheduleController = c;
}

ScopedScheduleController::~ScopedScheduleController()
{
    SimContext::current().scheduleController = prev;
}

bool
networkActorIndependence(const EventChoice &a, const EventChoice &b)
{
    return a.kind == EventKind::Network && b.kind == EventKind::Network &&
           a.actor != unknownActor && b.actor != unknownActor &&
           a.actor != b.actor;
}

bool
dporDependent(const EventChoice &a, const EventChoice &b)
{
    if (a.parent == b.seq || b.parent == a.seq)
        return true; // creation edge: causally ordered regardless
    return !networkActorIndependence(a, b);
}

std::string
ExploreResult::summary() const
{
    std::ostringstream os;
    os << "runs=" << runs << " decisions=" << decisions
       << " max_depth=" << maxDepthSeen << " pruned=" << pruned
       << " races=" << races;
    if (budgetExhausted)
        os << " (budget exhausted)";
    if (violated) {
        os << " VIOLATED";
        if (violations > 1)
            os << " x" << violations << " ("
               << fingerprints.size() << " distinct)";
        os << " witness=[";
        for (size_t i = 0; i < witness.size(); ++i)
            os << (i ? "," : "") << witness[i];
        os << "] " << report;
    }
    return os.str();
}

namespace
{

using Indep =
    std::function<bool(const EventChoice &, const EventChoice &)>;

/** The run-relative dependence: creation edges plus the complement
 *  of the supplied commutativity relation. */
bool
stepsDependent(const EventChoice &a, const EventChoice &b,
               const Indep &indep)
{
    if (a.parent == b.seq || b.parent == a.seq)
        return true;
    return !indep(a, b);
}

/** Execute one schedule, folding coverage counters into @p res. */
RunVerdict
runSchedule(const RunFn &run, const std::vector<size_t> &choices,
            const ExploreOptions &opts, ExploreResult &res,
            std::vector<Decision> *decisions_out,
            std::vector<EventChoice> *steps_out)
{
    ReplayController rc(choices);
    rc.exploreFaults = opts.exploreFaults;
    rc.recordSteps = steps_out != nullptr;
    ScopedScheduleController scope(&rc);
    RunVerdict v = run();
    ++res.runs;
    res.decisions += rc.numDecisions();
    res.maxDepthSeen = std::max(res.maxDepthSeen, rc.numDecisions());
    if (decisions_out)
        *decisions_out = rc.decisions();
    if (steps_out)
        *steps_out = rc.steps();
    return v;
}

std::vector<size_t>
takenOf(const std::vector<Decision> &decs)
{
    std::vector<size_t> taken;
    taken.reserve(decs.size());
    for (const Decision &d : decs)
        taken.push_back(d.taken);
    // Positions beyond the stack default to branch 0, so trailing
    // zeros carry no information.
    while (!taken.empty() && taken.back() == 0)
        taken.pop_back();
    return taken;
}

/**
 * Minimize a failing choice stack: shortest failing prefix first
 * (everything beyond a prefix defaults to 0), then each surviving
 * choice lowered toward the default. Every candidate is re-executed;
 * the runs count toward @p res. The simulator is deterministic given
 * a stack, so the result is a stable 1-minimal witness.
 */
std::vector<size_t>
shrinkWitness(const RunFn &run, std::vector<size_t> cur,
              const ExploreOptions &opts, ExploreResult &res)
{
    auto fails = [&](const std::vector<size_t> &c) {
        return !runSchedule(run, c, opts, res, nullptr, nullptr).ok;
    };

    for (size_t len = 0; len < cur.size(); ++len) {
        std::vector<size_t> t(cur.begin(),
                              cur.begin() + static_cast<long>(len));
        if (fails(t)) {
            cur = std::move(t);
            break;
        }
    }

    for (size_t i = 0; i < cur.size(); ++i) {
        while (cur[i] > 0) {
            std::vector<size_t> t = cur;
            --t[i];
            if (!fails(t))
                break;
            cur = std::move(t);
        }
    }

    while (!cur.empty() && cur.back() == 0)
        cur.pop_back();
    return cur;
}

void
recordViolation(const RunFn &run, const std::vector<Decision> &decs,
                const std::string &report, const ExploreOptions &opts,
                ExploreResult &res)
{
    res.violated = true;
    ++res.violations;
    res.fingerprints.insert(report);
    if (res.violations > 1)
        return; // keepGoing: only the first violation is shrunk
    res.rawWitness = takenOf(decs);
    res.report = report;
    res.witness = shrinkWitness(run, res.rawWitness, opts, res);
    // The witness kinds come from a confirming replay: lowering an
    // earlier choice can change which decisions follow it, so the
    // original failing run's kinds are not authoritative.
    std::vector<Decision> wdecs;
    runSchedule(run, res.witness, opts, res, &wdecs, nullptr);
    res.witnessKinds.clear();
    for (size_t i = 0; i < res.witness.size() && i < wdecs.size(); ++i)
        res.witnessKinds.push_back(wdecs[i].kind);
}

/** One decision point on the current DFS path, with its
 *  exploration state. */
struct PathNode
{
    Decision d;
    /** Effective branch cap after maxBranch/maxDepth. */
    size_t limit = 1;
    /** Branch explored (or pruned), indexed [0, degree). */
    std::vector<char> done;
    /** Branches demanded for exploration, sorted ascending. */
    std::vector<size_t> backtrack;
};

void
addBacktrack(PathNode &nd, size_t b, ExploreResult &res)
{
    auto it = std::lower_bound(nd.backtrack.begin(),
                               nd.backtrack.end(), b);
    if (it != nd.backtrack.end() && *it == b)
        return;
    nd.backtrack.insert(it, b);
    ++res.races;
}

/**
 * DPOR race analysis of one executed trace.
 *
 * Fire ticks are schedule-independent in this engine (callbacks
 * schedule at curTick + delay and a controller only permutes within
 * a tick), so two dependent events at different ticks fire in that
 * tick order in EVERY schedule: only same-tick dependent pairs are
 * reversible races. The trace is therefore scanned per maximal
 * same-tick segment, and any happens-before path between two
 * same-tick events runs entirely inside their segment (every trace
 * position between them is at the same tick), so the intra-segment
 * closure is the real thing, cheaply.
 *
 * For a direct race (i, j) -- dependent, not ordered through an
 * intermediate event, and i not a creation ancestor of j -- the
 * decision point that fired i must also try "j's side". The branch
 * to demand is j itself or its deepest creation ancestor that fired
 * after i: that ancestor's parent fired before i, so the ancestor
 * already existed at the decision point, and (being same-tick) was
 * among its ready candidates. If the candidate cannot be found in
 * the options (a forced move has no decision at all), the race is
 * either unreversible or, conservatively, every branch is demanded.
 */
void
seedBacktracks(const std::vector<EventChoice> &steps,
               std::vector<PathNode> &path, const Indep &indep,
               size_t locked, ExploreResult &res)
{
    std::unordered_map<uint64_t, size_t> decOf; // fired seq -> decision
    for (size_t di = 0; di < path.size(); ++di) {
        const Decision &d = path[di].d;
        if (d.kind == ChoiceKind::Sched)
            decOf[d.options[d.taken].seq] = di;
    }
    std::unordered_map<uint64_t, size_t> stepOf; // seq -> trace index
    for (size_t j = 0; j < steps.size(); ++j)
        stepOf[steps[j].seq] = j;

    auto creationAncestor = [&](size_t i, size_t j) {
        uint64_t p = steps[j].parent;
        while (p != noEventSeq) {
            if (p == steps[i].seq)
                return true;
            auto it = stepOf.find(p);
            if (it == stepOf.end())
                break;
            p = steps[it->second].parent;
        }
        return false;
    };

    auto raceToBacktrack = [&](size_t i, size_t j) {
        auto dit = decOf.find(steps[i].seq);
        if (dit == decOf.end())
            return; // forced move: no alternative existed
        size_t di = dit->second;
        if (di < locked)
            return; // sibling partitions cover the locked levels
        PathNode &nd = path[di];
        if (nd.limit <= 1)
            return; // maxDepth/maxBranch bound this point
        size_t cand = j;
        uint64_t p = steps[j].parent;
        while (p != noEventSeq) {
            auto sit = stepOf.find(p);
            if (sit == stepOf.end() || sit->second <= i)
                break;
            cand = sit->second;
            p = steps[cand].parent;
        }
        const Decision &d = nd.d;
        size_t b = d.degree;
        for (size_t o = 0; o < d.degree; ++o) {
            if (d.options[o].seq == steps[cand].seq) {
                b = o;
                break;
            }
        }
        if (b < nd.limit) {
            addBacktrack(nd, b, res);
        } else if (b == d.degree) {
            // Candidate not among the options: demand everything
            // (conservative, sound).
            for (size_t o = 0; o < nd.limit; ++o)
                addBacktrack(nd, o, res);
        }
        // else: the candidate exists but maxBranch excludes it --
        // bounded exploration drops the demand by design.
    };

    for (size_t s = 0; s < steps.size();) {
        size_t e = s + 1;
        while (e < steps.size() && steps[e].when == steps[s].when)
            ++e;
        size_t m = e - s;
        if (m < 2) {
            s = e;
            continue;
        }
        // Intra-segment happens-before closure as bitset clocks:
        // clk[j] bit i set iff steps[s+i] happens-before steps[s+j].
        size_t words = (m + 63) / 64;
        std::vector<uint64_t> clk(m * words, 0);
        auto test = [&](size_t j, size_t i) {
            return (clk[j * words + i / 64] >> (i % 64)) & 1;
        };
        for (size_t j = 1; j < m; ++j) {
            for (size_t i = 0; i < j; ++i) {
                if (stepsDependent(steps[s + i], steps[s + j], indep)) {
                    for (size_t w = 0; w < words; ++w)
                        clk[j * words + w] |= clk[i * words + w];
                    clk[j * words + i / 64] |= uint64_t(1) << (i % 64);
                }
            }
        }
        for (size_t j = 1; j < m; ++j) {
            for (size_t i = 0; i < j; ++i) {
                if (!stepsDependent(steps[s + i], steps[s + j], indep))
                    continue;
                if (creationAncestor(s + i, s + j))
                    continue;
                bool indirect = false;
                for (size_t k = i + 1; k < j && !indirect; ++k)
                    indirect = test(k, i) && test(j, k);
                if (indirect)
                    continue; // ordered through k: not a direct race
                raceToBacktrack(s + i, s + j);
            }
        }
        s = e;
    }
}

/**
 * Advance @p b past branches that commute with an already-explored
 * sibling (probe expansion in exploreParallel). @return the branch
 * to take, or @p limit when the point is spent.
 *
 * Pruning soundness rests on the relation being a true
 * commutativity; skipping b because it commutes with a sibling j < b
 * assumes the interleavings below b are covered below j (and, when j
 * was itself pruned, transitively below j's coverer).
 */
size_t
nextBranch(const Decision &d, size_t from, size_t limit,
           const Indep &indep, ExploreResult &res)
{
    size_t b = from;
    while (b < limit && indep && d.kind == ChoiceKind::Sched) {
        bool prune = false;
        for (size_t j = 0; j < b && !prune; ++j)
            prune = indep(d.options[j], d.options[b]);
        if (!prune)
            break;
        ++res.pruned;
        ++b;
    }
    return b;
}

} // namespace

ExploreResult
explore(const RunFn &run, const ExploreOptions &opts_in)
{
    ExploreOptions opts = opts_in;
    const bool dpor = opts.mode == ExploreMode::Dpor;
    if (dpor && !opts.independent)
        opts.independent = networkActorIndependence;

    ExploreResult res;
    std::vector<size_t> stack = opts.lockedPrefix;
    const size_t locked = opts.lockedPrefix.size();
    std::vector<PathNode> path;

    auto effLimit = [&](size_t i, size_t degree) {
        size_t limit = degree;
        if (opts.maxBranch)
            limit = std::min(limit, opts.maxBranch);
        if (opts.maxDepth && i >= opts.maxDepth)
            limit = 1;
        return limit;
    };
    auto faultsBefore = [&](size_t i) {
        size_t c = 0;
        for (size_t k = 0; k < i; ++k)
            c += path[k].d.kind == ChoiceKind::Fault &&
                 path[k].d.taken != 0;
        return c;
    };

    while (true) {
        std::vector<Decision> decs;
        std::vector<EventChoice> steps;
        RunVerdict v = runSchedule(run, stack, opts, res, &decs,
                                   dpor ? &steps : nullptr);
        if (!v.ok) {
            recordViolation(run, decs, v.report, opts, res);
            if (!opts.keepGoing)
                return res;
        }

        // Reconcile the path with this run's decisions: replayed
        // positions keep their exploration state (determinism makes
        // their Decision identical); deeper positions are new.
        if (decs.size() < path.size())
            path.resize(decs.size());
        for (size_t i = 0; i < path.size(); ++i) {
            path[i].d.taken = decs[i].taken;
            if (decs[i].taken < path[i].done.size())
                path[i].done[decs[i].taken] = 1;
        }
        for (size_t i = path.size(); i < decs.size(); ++i) {
            PathNode nd;
            nd.d = decs[i];
            nd.limit = effLimit(i, decs[i].degree);
            nd.done.assign(decs[i].degree, 0);
            nd.done[decs[i].taken] = 1;
            if (!dpor || decs[i].kind == ChoiceKind::Fault) {
                // Naive mode explores every branch; fault points get
                // the same treatment in both modes (no commutativity
                // theory applies to fault placement).
                for (size_t b = 0; b < nd.limit; ++b)
                    nd.backtrack.push_back(b);
            } else {
                // DPOR: only the branch actually taken; races demand
                // the rest.
                nd.backtrack.push_back(decs[i].taken);
            }
            path.push_back(std::move(nd));
        }

        if (dpor)
            seedBacktracks(steps, path, opts.independent, locked, res);

        // Depth-first: take the deepest demanded, unexplored branch.
        bool advanced = false;
        for (size_t i = path.size(); i-- > locked;) {
            PathNode &nd = path[i];
            for (size_t bi = 0; bi < nd.backtrack.size(); ++bi) {
                size_t b = nd.backtrack[bi];
                if (b >= nd.done.size() || nd.done[b] ||
                    b >= nd.limit)
                    continue;
                if (nd.d.kind == ChoiceKind::Fault && b != 0 &&
                    faultsBefore(i) >= opts.maxFaults) {
                    // d-bounding: this schedule already spends the
                    // whole fault budget above here.
                    nd.done[b] = 1;
                    ++res.pruned;
                    continue;
                }
                if (nd.d.kind == ChoiceKind::Sched &&
                    opts.independent) {
                    bool prune = false;
                    for (size_t j = 0;
                         j < nd.done.size() && !prune; ++j)
                        prune = j != b && nd.done[j] &&
                                opts.independent(nd.d.options[j],
                                                 nd.d.options[b]);
                    if (prune) {
                        // Sleep set: a commuting sibling's subtree
                        // covers this one's interleavings.
                        nd.done[b] = 1;
                        ++res.pruned;
                        continue;
                    }
                }
                nd.d.taken = b;
                nd.done[b] = 1;
                path.resize(i + 1);
                stack.resize(i + 1);
                for (size_t k = 0; k <= i; ++k)
                    stack[k] = path[k].d.taken;
                advanced = true;
                break;
            }
            if (advanced)
                break;
        }
        if (!advanced)
            return res; // tree (as bounded) exhausted

        if (opts.maxRuns && res.runs >= opts.maxRuns) {
            res.budgetExhausted = true;
            return res;
        }
    }
}

RunVerdict
replay(const RunFn &run, const std::vector<size_t> &choices,
       bool exploreFaults)
{
    ReplayController rc(choices);
    rc.exploreFaults = exploreFaults;
    ScopedScheduleController scope(&rc);
    return run();
}

ExploreResult
exploreParallel(const RunFn &run, const ExploreOptions &opts_in,
                size_t partition_depth, const campaign::Options &copts)
{
    ExploreOptions opts = opts_in;
    if (opts.mode == ExploreMode::Dpor && !opts.independent)
        opts.independent = networkActorIndependence;

    ExploreResult agg;

    // Breadth-first prefix expansion: each probe run discovers the
    // branch degree at its frontier position (and checks the
    // property on the way). Every branch of the partitioned levels
    // is expanded regardless of mode -- a superset of what DPOR
    // would demand, so prefix-locked subtrees lose no coverage.
    std::vector<std::vector<size_t>> frontier = {opts.lockedPrefix};
    for (size_t level = 0; level < partition_depth; ++level) {
        std::vector<std::vector<size_t>> next;
        for (const std::vector<size_t> &p : frontier) {
            std::vector<Decision> decs;
            RunVerdict v =
                runSchedule(run, p, opts, agg, &decs, nullptr);
            if (!v.ok) {
                recordViolation(run, decs, v.report, opts, agg);
                if (!opts.keepGoing)
                    return agg;
            }
            size_t pos = p.size();
            if (decs.size() <= pos)
                continue; // the probe was the subtree's only schedule
            size_t limit = decs[pos].degree;
            if (opts.maxBranch)
                limit = std::min(limit, opts.maxBranch);
            if (opts.maxDepth && pos >= opts.maxDepth)
                limit = 1;
            size_t faults_used = 0;
            for (size_t k = 0; k < pos; ++k)
                faults_used += decs[k].kind == ChoiceKind::Fault &&
                               decs[k].taken != 0;
            for (size_t b = 0; b < limit;
                 b = nextBranch(decs[pos], b + 1, limit,
                                opts.independent, agg)) {
                if (decs[pos].kind == ChoiceKind::Fault && b != 0 &&
                    faults_used >= opts.maxFaults) {
                    ++agg.pruned;
                    continue;
                }
                std::vector<size_t> q = p;
                q.push_back(b);
                next.push_back(std::move(q));
            }
        }
        frontier = std::move(next);
        if (frontier.empty())
            return agg; // every subtree fit inside a probe
    }

    // One campaign job per prefix-locked subtree. Budgets (maxRuns)
    // apply per job. Shards merge in job-id order, so the outcome is
    // independent of worker scheduling.
    std::vector<ExploreResult> shard(frontier.size());
    campaign::JobFn fn = [&](size_t id, SimContext &) {
        ExploreOptions o = opts;
        o.lockedPrefix = frontier[id];
        shard[id] = explore(run, o);
    };
    auto outcomes = campaign::run(frontier.size(), fn, copts);

    for (size_t id = 0; id < frontier.size(); ++id) {
        const ExploreResult &s = shard[id];
        agg.runs += s.runs;
        agg.decisions += s.decisions;
        agg.maxDepthSeen = std::max(agg.maxDepthSeen, s.maxDepthSeen);
        agg.pruned += s.pruned;
        agg.races += s.races;
        agg.budgetExhausted |= s.budgetExhausted;
        agg.violations += s.violations;
        agg.fingerprints.insert(s.fingerprints.begin(),
                                s.fingerprints.end());
        if (!agg.violated && s.violated) {
            agg.violated = true;
            agg.rawWitness = s.rawWitness;
            agg.witness = s.witness;
            agg.witnessKinds = s.witnessKinds;
            agg.report = s.report;
        }
        if (!agg.violated && !outcomes[id].ok) {
            agg.violated = true;
            agg.report = "job " + std::to_string(id) +
                         " died: " + outcomes[id].error;
        }
    }
    return agg;
}

// --- schedule files ----------------------------------------------------

bool
ScheduleFile::hasFaults() const
{
    for (ChoiceKind k : kinds)
        if (k == ChoiceKind::Fault)
            return true;
    return false;
}

std::string
ScheduleFile::serialize() const
{
    std::ostringstream os;
    os << "specrt-schedule v2\n";
    for (const auto &[k, v] : meta) {
        SPECRT_ASSERT(k.find_first_of(" \n") == std::string::npos,
                      "schedule meta key '%s' contains whitespace",
                      k.c_str());
        SPECRT_ASSERT(v.find('\n') == std::string::npos,
                      "schedule meta value for '%s' contains a newline",
                      k.c_str());
        os << "meta " << k << " " << v << "\n";
    }
    for (size_t i = 0; i < choices.size(); ++i) {
        bool fault = i < kinds.size() && kinds[i] == ChoiceKind::Fault;
        os << (fault ? "fault " : "choice ") << choices[i] << "\n";
    }
    os << "end " << choices.size() << "\n";
    return os.str();
}

bool
ScheduleFile::tryParse(const std::string &text, ScheduleFile &out,
                       ParseError &err)
{
    out = ScheduleFile{};
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line)) {
        err = {0, "empty input: missing header"};
        return false;
    }
    int version;
    if (line == "specrt-schedule v1") {
        version = 1;
    } else if (line == "specrt-schedule v2") {
        version = 2;
    } else if (line.rfind("specrt-schedule v", 0) == 0) {
        err = {1, "unsupported schedule version '" +
                      line.substr(sizeof("specrt-schedule ") - 1) +
                      "' (this build reads v1 and v2)"};
        return false;
    } else {
        err = {1, "not a specrt schedule file (bad header '" + line +
                      "')"};
        return false;
    }

    // Strict full-token decimal; rejects signs, garbage, overflow.
    auto parseCount = [](const std::string &tok, size_t &val) {
        if (tok.empty())
            return false;
        val = 0;
        for (char c : tok) {
            if (c < '0' || c > '9')
                return false;
            auto d = static_cast<size_t>(c - '0');
            if (val > (SIZE_MAX - d) / 10)
                return false;
            val = val * 10 + d;
        }
        return true;
    };

    bool saw_end = false;
    size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        if (saw_end) {
            err = {lineno, "content after the end trailer"};
            return false;
        }
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "meta") {
            std::string key;
            ls >> key;
            std::string value;
            std::getline(ls, value);
            if (!value.empty() && value[0] == ' ')
                value.erase(0, 1);
            if (key.empty()) {
                err = {lineno, "meta without a key"};
                return false;
            }
            out.meta[key] = value;
        } else if (kw == "choice" || kw == "fault" || kw == "end") {
            std::string tok;
            ls >> tok;
            size_t n;
            if (!parseCount(tok, n)) {
                err = {lineno, "malformed count '" + tok +
                                   "' after '" + kw + "'"};
                return false;
            }
            std::string extra;
            if (ls >> extra) {
                err = {lineno,
                       "trailing garbage '" + extra + "'"};
                return false;
            }
            if (kw == "end") {
                if (version < 2) {
                    err = {lineno, "end trailer requires v2"};
                    return false;
                }
                if (n != out.choices.size()) {
                    err = {lineno,
                           "end trailer says " + std::to_string(n) +
                               " positions but " +
                               std::to_string(out.choices.size()) +
                               " were read (truncated or spliced "
                               "file)"};
                    return false;
                }
                saw_end = true;
            } else if (kw == "fault") {
                if (version < 2) {
                    err = {lineno, "fault choices require v2"};
                    return false;
                }
                if (n > 2) {
                    err = {lineno, "fault alternative " +
                                       std::to_string(n) +
                                       " out of range (0..2)"};
                    return false;
                }
                out.choices.push_back(n);
                out.kinds.push_back(ChoiceKind::Fault);
            } else {
                out.choices.push_back(n);
                out.kinds.push_back(ChoiceKind::Sched);
            }
        } else {
            err = {lineno, "unknown keyword '" + kw + "'"};
            return false;
        }
    }
    if (version >= 2 && !saw_end) {
        err = {lineno, "missing end trailer (truncated file)"};
        return false;
    }
    if (version == 1)
        out.kinds.clear(); // canonical "all Sched" form
    return true;
}

ScheduleFile
ScheduleFile::parse(const std::string &text)
{
    ScheduleFile f;
    ParseError err;
    if (!tryParse(text, f, err))
        panic("schedule file line %zu: %s", err.line,
              err.message.c_str());
    return f;
}

void
ScheduleFile::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        panic("cannot write schedule file %s", path.c_str());
    os << serialize();
    if (!os)
        panic("write to schedule file %s failed", path.c_str());
}

ScheduleFile
ScheduleFile::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        panic("cannot read schedule file %s", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return parse(buf.str());
}

bool
ScheduleFile::tryLoad(const std::string &path, ScheduleFile &out,
                      ParseError &err)
{
    std::ifstream is(path);
    if (!is)
        panic("cannot read schedule file %s", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return tryParse(buf.str(), out, err);
}

} // namespace verify
} // namespace specrt
