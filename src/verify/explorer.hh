/**
 * @file
 * Bounded state-space explorer for the coherence + speculation
 * protocol (the other half of the verification subsystem; see
 * verify/hb_oracle.hh for the happens-before checker).
 *
 * The simulator is deterministic: same-tick events fire in schedule
 * order. That determinism is what makes runs reproducible -- and
 * what hides every interleaving but one. The explorer drives the
 * engine's ScheduleController hook (sim/event_queue.hh) to
 * systematically enumerate the others: at each point where two or
 * more events are ready at the minimum pending tick, the controller
 * picks which fires, so a run is fully described by its CHOICE STACK
 * -- the branch index taken at each decision point, with 0 (the
 * default engine order) assumed beyond the stack's end.
 *
 * Exploration is stateless (CHESS-style): each schedule is a
 * complete re-execution from a fresh machine under a
 * ReplayController primed with the choice stack. After a run, the
 * recorded branch degrees tell the DFS which stack to try next (the
 * deepest incrementable position, depth-first). Budgets bound the
 * walk -- maxDepth stops branching below a prefix length, maxBranch
 * caps the alternatives tried per point, maxRuns caps total
 * schedules -- and an optional independence relation prunes
 * commuting siblings (sleep-set style).
 *
 * A failing schedule is shrunk -- shortest failing prefix, then each
 * choice lowered toward the default -- and can be serialized as a
 * schedule file for replay (examples/model_check --replay-schedule).
 *
 * Parallel exploration partitions the tree by choice prefix and fans
 * the subtrees across the campaign work-stealing pool: each prefix
 * becomes one campaign job exploring with that prefix locked, so
 * results are deterministic in job-id order.
 */

#ifndef SPECRT_VERIFY_EXPLORER_HH
#define SPECRT_VERIFY_EXPLORER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/event_queue.hh"

namespace specrt
{
namespace verify
{

/** One decision point as observed during a run. */
struct Decision
{
    /** Branch fired (index into the engine's default-order list). */
    size_t taken;
    /** Candidates that were ready. */
    size_t degree;
    /** The candidates themselves (for independence pruning). */
    std::vector<EventChoice> options;
};

/**
 * The ScheduleController of one exploration run: replays a choice
 * prefix, answers 0 (the engine's default order) beyond it, and
 * records every decision point it is asked about.
 */
class ReplayController : public ScheduleController
{
  public:
    explicit ReplayController(std::vector<size_t> prefix_ = {})
        : prefix(std::move(prefix_))
    {}

    size_t pick(const EventChoice *choices, size_t n) override;

    const std::vector<Decision> &decisions() const { return log; }
    size_t numDecisions() const { return log.size(); }

    /**
     * Observer fired at each decision (after the pick): the
     * candidate list, its size, and the branch taken. Tests use it
     * to seed schedule-dependent bugs; it must not touch the queue.
     */
    std::function<void(const EventChoice *, size_t, size_t)> onDecision;

  private:
    std::vector<size_t> prefix;
    std::vector<Decision> log;
};

/**
 * RAII: installs @p c as SimContext::current().scheduleController
 * for the scope, so every DsmSystem constructed inside comes up
 * controlled. Restores the previous controller (usually null) on
 * destruction. Scopes nest.
 */
class ScopedScheduleController
{
  public:
    explicit ScopedScheduleController(ScheduleController *c);
    ~ScopedScheduleController();

    ScopedScheduleController(const ScopedScheduleController &) = delete;
    ScopedScheduleController &
    operator=(const ScopedScheduleController &) = delete;

  private:
    ScheduleController *prev;
};

/** What one run of the system under test concluded. */
struct RunVerdict
{
    bool ok = true;
    /** Human-readable failure description ("" when ok). */
    std::string report;
};

/**
 * One complete execution of the system under test. Called once per
 * schedule with the controller already installed in the current
 * SimContext; it must build a FRESH machine each time (constructing
 * a DsmSystem under the context picks the controller up) and check
 * its properties -- invariants in every reachable state, final
 * verdict vs.\ the oracle. Must be pure re-entrant: exploreParallel
 * calls it concurrently from campaign workers.
 */
using RunFn = std::function<RunVerdict()>;

/** Exploration budgets and pruning. */
struct ExploreOptions
{
    /** Total schedules to execute; 0 = unlimited (exhaustive). */
    size_t maxRuns = 0;
    /**
     * Branch only at the first maxDepth decision points; deeper
     * points always take the default order. 0 = unlimited.
     */
    size_t maxDepth = 0;
    /** Alternatives tried per decision point; 0 = all. */
    size_t maxBranch = 0;
    /**
     * Commutativity relation for sleep-set style pruning: when
     * advancing a decision point to a sibling branch whose event is
     * independent of an already-explored sibling's, the subtree is
     * skipped (the explored one covers its interleavings). Null (the
     * default) prunes nothing, which is always sound. Supplying a
     * relation is sound only if related events truly commute --
     * firing them in either order reaches the same state -- e.g.\
     * fault-free network deliveries to distinct destination nodes
     * (networkActorIndependence).
     */
    std::function<bool(const EventChoice &, const EventChoice &)>
        independent;
    /**
     * Choices locked by a parallel partition: positions below
     * lockedPrefix.size() replay these values and are never
     * incremented. The DFS explores only the subtree below.
     */
    std::vector<size_t> lockedPrefix;
};

/**
 * The distinct-destination heuristic: two Network deliveries bound
 * for different known actor nodes commute in the fault-free
 * protocol (distinct controllers, channel order per (src,dst) pair
 * preserved either way). NOT valid under fault injection (a dropped
 * or duplicated delivery changes global retry state).
 */
bool networkActorIndependence(const EventChoice &a,
                              const EventChoice &b);

/** What an exploration covered and found. */
struct ExploreResult
{
    /** Schedules fully executed. */
    size_t runs = 0;
    /** Decision points observed, summed over runs. */
    size_t decisions = 0;
    /** Deepest decision stack seen in any run. */
    size_t maxDepthSeen = 0;
    /** Subtrees skipped by independence pruning. */
    size_t pruned = 0;
    /** Stopped on maxRuns before exhausting the (bounded) tree. */
    bool budgetExhausted = false;

    /** Some schedule failed the property. */
    bool violated = false;
    /** The first failing choice stack, as found (unshrunk). */
    std::vector<size_t> rawWitness;
    /** The shrunk failing stack (replay it to reproduce). */
    std::vector<size_t> witness;
    /** The failing run's report. */
    std::string report;

    std::string summary() const;
};

/**
 * Depth-first enumeration of schedules of @p run under @p opts,
 * shrinking the first violation found (exploration stops at it).
 */
ExploreResult explore(const RunFn &run, const ExploreOptions &opts = {});

/**
 * Execute @p run once under the schedule @p choices (replay). The
 * verdict is the run's own; the returned controller log is not kept.
 */
RunVerdict replay(const RunFn &run, const std::vector<size_t> &choices);

/**
 * Parallel exploration: expand the choice tree breadth-first to
 * @p partitionDepth levels (each probe run also checks the
 * property), then explore the resulting prefix-locked subtrees as
 * campaign jobs. Results merge deterministically in job-id order;
 * the merged result equals a serial explore() up to the order in
 * which a violation (if several subtrees contain one) is attributed.
 */
ExploreResult exploreParallel(const RunFn &run, const ExploreOptions &opts,
                              size_t partitionDepth,
                              const campaign::Options &copts = {});

// --- schedule files ----------------------------------------------------

/** A serialized schedule: metadata plus the choice stack. */
struct ScheduleFile
{
    /** Free-form metadata (config fingerprint, workload, report). */
    std::map<std::string, std::string> meta;
    std::vector<size_t> choices;

    /** Serialize to the textual schedule format. */
    std::string serialize() const;
    /** Parse; throws FatalError on malformed input. */
    static ScheduleFile parse(const std::string &text);

    /** Write to @p path (panics on I/O failure). */
    void save(const std::string &path) const;
    /** Read from @p path (panics on I/O failure). */
    static ScheduleFile load(const std::string &path);
};

} // namespace verify
} // namespace specrt

#endif // SPECRT_VERIFY_EXPLORER_HH
