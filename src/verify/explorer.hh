/**
 * @file
 * Bounded state-space explorer for the coherence + speculation
 * protocol (the other half of the verification subsystem; see
 * verify/hb_oracle.hh for the happens-before checker).
 *
 * The simulator is deterministic: same-tick events fire in schedule
 * order. That determinism is what makes runs reproducible -- and
 * what hides every interleaving but one. The explorer drives the
 * engine's ScheduleController hook (sim/event_queue.hh) to
 * systematically enumerate the others: at each point where two or
 * more events are ready at the minimum pending tick, the controller
 * picks which fires, so a run is fully described by its CHOICE STACK
 * -- the branch index taken at each decision point, with 0 (the
 * default engine order) assumed beyond the stack's end. With
 * exploreFaults on, network fault decisions (which tolerated message
 * is dropped or duplicated) become decision points on the same
 * stack, so the DFS explores fault placement, not just delivery
 * order.
 *
 * Exploration is stateless (CHESS-style): each schedule is a
 * complete re-execution from a fresh machine under a
 * ReplayController primed with the choice stack. Two modes drive the
 * walk:
 *
 *  - Naive: every branch of every decision point is scheduled for
 *    exploration (the PR 6 behaviour). Budgets bound the walk --
 *    maxDepth stops branching below a prefix length, maxBranch caps
 *    the alternatives tried per point, maxRuns caps total schedules
 *    -- and an optional independence relation prunes commuting
 *    siblings (sleep-set style).
 *
 *  - Dpor: dynamic partial-order reduction (Flanagan/Godefroid).
 *    Initially only the default branch of each point is taken; after
 *    each run a happens-before analysis over the fired events (the
 *    dependence relation closed under creation edges -- event A
 *    scheduled B's callback) finds RACES: same-tick dependent pairs
 *    not ordered by an intermediate event. Fire ticks are
 *    schedule-independent in this engine (callbacks schedule at
 *    curTick + delay; a controller only permutes within a tick), so
 *    cross-tick dependent pairs are unreversible and need no
 *    backtracking -- only same-tick races seed backtrack branches at
 *    the decision point that fired the earlier event. Sleep-set
 *    sibling pruning still applies on top. Fault decision points get
 *    every branch (no commutativity theory for faults), bounded by
 *    maxFaults.
 *
 * A failing schedule is shrunk -- shortest failing prefix, then each
 * choice lowered toward the default -- and can be serialized as a
 * schedule file for replay (examples/model_check --replay-schedule).
 *
 * Parallel exploration partitions the tree by choice prefix and fans
 * the subtrees across the campaign work-stealing pool: each prefix
 * becomes one campaign job exploring with that prefix locked, so
 * results are deterministic in job-id order. The breadth-first
 * partition expands EVERY branch of the top levels -- a superset of
 * what DPOR would demand -- so prefix-locking loses no coverage.
 */

#ifndef SPECRT_VERIFY_EXPLORER_HH
#define SPECRT_VERIFY_EXPLORER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/event_queue.hh"

namespace specrt
{
namespace verify
{

/** What kind of decision a stack position holds. */
enum class ChoiceKind : uint8_t
{
    /** Which same-tick ready event fires next. */
    Sched,
    /** The fate of one network transmission (deliver/drop/dup). */
    Fault,
};

/** One decision point as observed during a run. */
struct Decision
{
    /** Branch fired (index into the engine's default-order list). */
    size_t taken;
    /** Candidates that were ready (or fault alternatives). */
    size_t degree;
    /** The candidates themselves (Sched points only). */
    std::vector<EventChoice> options;
    ChoiceKind kind = ChoiceKind::Sched;
    /** The transmission decided on (Fault points only). */
    FaultChoicePoint fault = {};
};

/**
 * The ScheduleController of one exploration run: replays a choice
 * prefix, answers 0 (the engine's default order / normal delivery)
 * beyond it, and records every decision point it is asked about.
 * Sched and Fault decisions share one stack, indexed in the order
 * the engine asks.
 */
class ReplayController : public ScheduleController
{
  public:
    explicit ReplayController(std::vector<size_t> prefix_ = {})
        : prefix(std::move(prefix_))
    {}

    size_t pick(const EventChoice *choices, size_t n) override;
    size_t pickFault(const FaultChoicePoint &p, size_t n) override;
    bool exploresFaults() const override { return exploreFaults; }
    void onFire(const EventChoice &fired) override;

    const std::vector<Decision> &decisions() const { return log; }
    size_t numDecisions() const { return log.size(); }

    /**
     * Every non-daemon event fired during the run, in fire order
     * (recorded only while recordSteps is set). This is the trace
     * DPOR computes happens-before races over; daemon events are
     * pure observers by contract and take no part in it.
     */
    const std::vector<EventChoice> &steps() const { return stepLog; }

    /** Offer fault decision points to the network (pickFault). */
    bool exploreFaults = false;
    /** Record the fired-event trace (DPOR mode). */
    bool recordSteps = false;

    /**
     * Expected kind per stack position (from a schedule file).
     * When non-empty, a decision whose kind disagrees sets
     * kindMismatch -- the replayed file does not describe this
     * machine/workload and the witness is not being reproduced.
     */
    std::vector<ChoiceKind> expectKinds;
    bool kindMismatch = false;

    /**
     * Observer fired at each Sched decision (after the pick): the
     * candidate list, its size, and the branch taken. Tests use it
     * to seed schedule-dependent bugs; it must not touch the queue.
     */
    std::function<void(const EventChoice *, size_t, size_t)> onDecision;

    /** Observer fired at each Fault decision (after the pick). */
    std::function<void(const FaultChoicePoint &, size_t, size_t)>
        onFaultDecision;

  private:
    size_t nextTake(size_t n, ChoiceKind kind);

    std::vector<size_t> prefix;
    std::vector<Decision> log;
    std::vector<EventChoice> stepLog;
};

/**
 * RAII: installs @p c as SimContext::current().scheduleController
 * for the scope, so every DsmSystem constructed inside comes up
 * controlled. Restores the previous controller (usually null) on
 * destruction. Scopes nest.
 */
class ScopedScheduleController
{
  public:
    explicit ScopedScheduleController(ScheduleController *c);
    ~ScopedScheduleController();

    ScopedScheduleController(const ScopedScheduleController &) = delete;
    ScopedScheduleController &
    operator=(const ScopedScheduleController &) = delete;

  private:
    ScheduleController *prev;
};

/** What one run of the system under test concluded. */
struct RunVerdict
{
    bool ok = true;
    /** Human-readable failure description ("" when ok). */
    std::string report;
};

/**
 * One complete execution of the system under test. Called once per
 * schedule with the controller already installed in the current
 * SimContext; it must build a FRESH machine each time (constructing
 * a DsmSystem under the context picks the controller up) and check
 * its properties -- invariants in every reachable state, final
 * verdict vs.\ the oracle. Must be pure re-entrant: exploreParallel
 * calls it concurrently from campaign workers.
 */
using RunFn = std::function<RunVerdict()>;

/** How the DFS decides which branches deserve exploration. */
enum class ExploreMode : uint8_t
{
    /** Every branch of every decision point (PR 6 behaviour). */
    Naive,
    /** Dynamic partial-order reduction: only race-demanded branches. */
    Dpor,
};

/** Exploration budgets and pruning. */
struct ExploreOptions
{
    ExploreMode mode = ExploreMode::Naive;
    /** Total schedules to execute; 0 = unlimited (exhaustive). */
    size_t maxRuns = 0;
    /**
     * Branch only at the first maxDepth decision points; deeper
     * points always take the default order. 0 = unlimited.
     */
    size_t maxDepth = 0;
    /** Alternatives tried per decision point; 0 = all. */
    size_t maxBranch = 0;
    /**
     * Promote network fault decisions into choice points: the DFS
     * explores which tolerated message is dropped or duplicated.
     * The RunFn's machine must enable the recovery paths (a nonzero
     * fault.watchdogTimeout), or a dropped request has no retry leg
     * and the run wedges.
     */
    bool exploreFaults = false;
    /**
     * Non-default fault alternatives per schedule (d-bounding).
     * Fault points beyond the budget take normal delivery.
     */
    size_t maxFaults = 1;
    /**
     * Keep exploring after a violation instead of stopping at the
     * first: every distinct failure report is collected into
     * ExploreResult::fingerprints (the first one is still shrunk to
     * a witness). For differential coverage tests.
     */
    bool keepGoing = false;
    /**
     * Commutativity relation. Naive mode uses it for sleep-set
     * style pruning only: when advancing a decision point to a
     * sibling branch whose event is independent of an
     * already-explored sibling's, the subtree is skipped (the
     * explored one covers its interleavings). Null (the default)
     * prunes nothing, which is always sound.
     *
     * Dpor mode derives its dependence relation from this (two
     * events race iff NOT independent, closed under creation
     * edges); null defaults to networkActorIndependence. Supplying
     * a relation is sound only if related events truly commute --
     * firing them in either order reaches the same state -- e.g.\
     * fault-free network deliveries to distinct destination nodes.
     * NOT valid under fault injection or fault exploration (a
     * dropped delivery changes global retry state), so leave it
     * null / rely on nothing commuting when exploreFaults is set.
     */
    std::function<bool(const EventChoice &, const EventChoice &)>
        independent;
    /**
     * Choices locked by a parallel partition: positions below
     * lockedPrefix.size() replay these values and are never
     * incremented. The DFS explores only the subtree below.
     */
    std::vector<size_t> lockedPrefix;
};

/**
 * The distinct-destination heuristic: two Network deliveries bound
 * for different known actor nodes commute in the fault-free
 * protocol (distinct controllers, channel order per (src,dst) pair
 * preserved either way). NOT valid under fault injection (a dropped
 * or duplicated delivery changes global retry state).
 */
bool networkActorIndependence(const EventChoice &a,
                              const EventChoice &b);

/**
 * The dependence predicate DPOR uses under the default relation:
 * two fired events are dependent iff one created the other (a
 * creation edge) or networkActorIndependence does not prove them
 * independent. Exposed for unit tests pinning the relation.
 */
bool dporDependent(const EventChoice &a, const EventChoice &b);

/** What an exploration covered and found. */
struct ExploreResult
{
    /** Schedules fully executed. */
    size_t runs = 0;
    /** Decision points observed, summed over runs. */
    size_t decisions = 0;
    /** Deepest decision stack seen in any run. */
    size_t maxDepthSeen = 0;
    /** Subtrees skipped by independence pruning / fault budget. */
    size_t pruned = 0;
    /** Backtrack branches demanded by DPOR races. */
    size_t races = 0;
    /** Stopped on maxRuns before exhausting the (bounded) tree. */
    bool budgetExhausted = false;

    /** Some schedule failed the property. */
    bool violated = false;
    /** Schedules that failed (1 unless keepGoing). */
    size_t violations = 0;
    /** Distinct failure reports seen (keepGoing collects them all). */
    std::set<std::string> fingerprints;
    /** The first failing choice stack, as found (unshrunk). */
    std::vector<size_t> rawWitness;
    /** The shrunk failing stack (replay it to reproduce). */
    std::vector<size_t> witness;
    /** Kind of each witness position (Sched/Fault). */
    std::vector<ChoiceKind> witnessKinds;
    /** The failing run's report. */
    std::string report;

    std::string summary() const;
};

/**
 * Depth-first enumeration of schedules of @p run under @p opts,
 * shrinking the first violation found (exploration stops at it
 * unless opts.keepGoing).
 */
ExploreResult explore(const RunFn &run, const ExploreOptions &opts = {});

/**
 * Execute @p run once under the schedule @p choices (replay). The
 * verdict is the run's own; the returned controller log is not
 * kept. @p exploreFaults must match the exploration that produced
 * the schedule (fault positions are decision points only when on).
 */
RunVerdict replay(const RunFn &run, const std::vector<size_t> &choices,
                  bool exploreFaults = false);

/**
 * Parallel exploration: expand the choice tree breadth-first to
 * @p partitionDepth levels (each probe run also checks the
 * property), then explore the resulting prefix-locked subtrees as
 * campaign jobs. Results merge deterministically in job-id order;
 * the merged result equals a serial explore() up to the order in
 * which a violation (if several subtrees contain one) is attributed.
 * Probes expand every branch of the partitioned levels, so DPOR
 * backtrack demands that land inside a locked prefix are already
 * covered by sibling jobs.
 */
ExploreResult exploreParallel(const RunFn &run, const ExploreOptions &opts,
                              size_t partitionDepth,
                              const campaign::Options &copts = {});

// --- schedule files ----------------------------------------------------

/** A structured schedule-file parse failure. */
struct ParseError
{
    /** 1-based line of the offending input (0 = whole file). */
    size_t line = 0;
    std::string message;
};

/**
 * A serialized schedule: metadata plus the choice stack.
 *
 * v2 format (serialize always emits v2):
 *
 *     specrt-schedule v2
 *     meta <key> <value...>
 *     choice <n>      # Sched position: fire ready-candidate n
 *     fault <n>       # Fault position: 0 deliver, 1 drop/dup, 2 dup
 *     end <count>     # trailer; count == number of positions
 *
 * Positions appear in decision order; choice and fault lines
 * interleave exactly as the run decided them. The end trailer makes
 * truncation detectable. v1 files (no trailer, choice lines only)
 * still parse.
 */
struct ScheduleFile
{
    /** Free-form metadata (config fingerprint, workload, report). */
    std::map<std::string, std::string> meta;
    std::vector<size_t> choices;
    /**
     * Kind of each position, parallel to choices. Empty means all
     * Sched (a v1 file).
     */
    std::vector<ChoiceKind> kinds;

    /** True if any position is a fault decision. */
    bool hasFaults() const;

    /** Serialize to the textual v2 schedule format. */
    std::string serialize() const;

    /**
     * Parse into @p out. On failure returns false and fills @p err
     * with the offending line and a description; @p out is
     * unspecified. Never silently truncates: version skew, unknown
     * keywords, malformed numbers, and a missing/inconsistent v2
     * trailer are all errors.
     */
    static bool tryParse(const std::string &text, ScheduleFile &out,
                         ParseError &err);
    /** Parse; throws FatalError on malformed input. */
    static ScheduleFile parse(const std::string &text);

    /** Write to @p path (panics on I/O failure). */
    void save(const std::string &path) const;
    /** Read from @p path (panics on I/O or parse failure). */
    static ScheduleFile load(const std::string &path);
    /**
     * Read from @p path; parse failures fill @p err and return
     * false (I/O failures still panic).
     */
    static bool tryLoad(const std::string &path, ScheduleFile &out,
                        ParseError &err);
};

} // namespace verify
} // namespace specrt

#endif // SPECRT_VERIFY_EXPLORER_HH
