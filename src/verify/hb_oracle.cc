#include "verify/hb_oracle.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace specrt
{
namespace verify
{

void
VectorClock::join(const VectorClock &o)
{
    if (o.c.size() > c.size())
        c.resize(o.c.size(), 0);
    for (size_t i = 0; i < o.c.size(); ++i)
        c[i] = std::max(c[i], o.c[i]);
}

bool
VectorClock::happensBefore(const VectorClock &o) const
{
    bool strict = false;
    for (size_t i = 0; i < c.size(); ++i) {
        uint64_t theirs = i < o.c.size() ? o.c[i] : 0;
        if (c[i] > theirs)
            return false;
        if (c[i] < theirs)
            strict = true;
    }
    for (size_t i = c.size(); i < o.c.size(); ++i) {
        if (o.c[i] > 0)
            strict = true;
    }
    return strict;
}

std::string
VectorClock::str() const
{
    std::string s = "[";
    for (size_t i = 0; i < c.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(c[i]);
    }
    return s + "]";
}

std::string
HbRace::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "elem %llu: %s@thread %zu (iter %lld) races %s@thread "
                  "%zu (iter %lld)",
                  (unsigned long long)elem, writeA ? "write" : "read",
                  threadA, (long long)iterA, writeB ? "write" : "read",
                  threadB, (long long)iterB);
    return buf;
}

HbOracle::HbOracle(int numProcs, IterNum maxIter)
    : procs(static_cast<size_t>(numProcs)),
      iters(static_cast<size_t>(maxIter)),
      procClocks(procs, VectorClock(procs)),
      iterClocks(iters, VectorClock(iters)),
      syncClock(procs),
      iterSyncClock(iters)
{
    SPECRT_ASSERT(numProcs > 0, "HbOracle needs at least one processor");
    SPECRT_ASSERT(maxIter > 0, "HbOracle needs at least one iteration");
}

void
HbOracle::onAccess(const AccessEvent &e)
{
    SPECRT_ASSERT(e.proc >= 0 && static_cast<size_t>(e.proc) < procs,
                  "access by unknown proc %d", e.proc);
    SPECRT_ASSERT(e.iter >= 1 && static_cast<size_t>(e.iter) <= iters,
                  "access in out-of-range iter %lld", (long long)e.iter);

    size_t p = static_cast<size_t>(e.proc);
    size_t it = static_cast<size_t>(e.iter - 1);

    if (chained && e.iter > lastChainIter) {
        // Serial-order release->acquire: the new iteration starts
        // after everything the previous one did.
        if (lastChainIter >= 1)
            iterClocks[it].join(
                iterClocks[static_cast<size_t>(lastChainIter - 1)]);
        lastChainIter = e.iter;
    }

    procClocks[p].tick(p);
    iterClocks[it].tick(it);

    // An exposed read: the iteration's first access to this element
    // is a read, so a privatized copy would be initialized by the
    // read-in from the shared backing store.
    uint64_t key = e.elem * (static_cast<uint64_t>(iters) + 1) +
                   static_cast<uint64_t>(it);
    auto [fit, inserted] = firstIsWrite.emplace(key, e.isWrite);
    bool exposed = !e.isWrite && (inserted || !fit->second);

    byElem[e.elem].push_back({procClocks[p], iterClocks[it], e.proc,
                              e.iter, e.isWrite, exposed});
}

void
HbOracle::onBarrier()
{
    VectorClock all(procs);
    for (const VectorClock &c : procClocks)
        all.join(c);
    for (VectorClock &c : procClocks)
        c.join(all);
    syncClock.join(all);

    VectorClock allIt(iters);
    for (const VectorClock &c : iterClocks)
        allIt.join(c);
    for (VectorClock &c : iterClocks)
        c.join(allIt);
    iterSyncClock.join(allIt);
}

void
HbOracle::commit(NodeId proc)
{
    SPECRT_ASSERT(proc >= 0 && static_cast<size_t>(proc) < procs,
                  "commit by unknown proc %d", proc);
    syncClock.join(procClocks[static_cast<size_t>(proc)]);
}

void
HbOracle::acquire(NodeId proc)
{
    SPECRT_ASSERT(proc >= 0 && static_cast<size_t>(proc) < procs,
                  "acquire by unknown proc %d", proc);
    procClocks[static_cast<size_t>(proc)].join(syncClock);
}

void
HbOracle::onMessage(NodeId src, NodeId dst)
{
    SPECRT_ASSERT(src >= 0 && static_cast<size_t>(src) < procs &&
                  dst >= 0 && static_cast<size_t>(dst) < procs,
                  "message edge %d -> %d out of range", src, dst);
    procClocks[static_cast<size_t>(dst)].join(
        procClocks[static_cast<size_t>(src)]);
}

void
HbOracle::sequentialEdges()
{
    SPECRT_ASSERT(byElem.empty(),
                  "sequentialEdges() must precede the first access");
    chained = true;
}

HbReport
HbOracle::analyze() const
{
    HbReport rep;

    for (const auto &[elem, accs] : byElem) {
        bool npRaced = false;
        bool pRaced = false;
        for (size_t i = 0; i < accs.size() && !(npRaced && pRaced);
             ++i) {
            for (size_t j = i + 1;
                 j < accs.size() && !(npRaced && pRaced); ++j) {
                const Access &a = accs[i];
                const Access &b = accs[j];

                // Non-privatization family: cross-processor pair
                // with a write, concurrent under the proc clocks.
                if (!npRaced && a.proc != b.proc &&
                    (a.isWrite || b.isWrite) &&
                    a.procClock.concurrentWith(b.procClock)) {
                    npRaced = true;
                    rep.nonPrivRaces.push_back(
                        {elem, static_cast<size_t>(a.proc),
                         static_cast<size_t>(b.proc), a.iter, b.iter,
                         a.isWrite, b.isWrite});
                }

                // Privatization family: a write and a later
                // iteration's exposed read, concurrent under the
                // iteration clocks (the read-in would observe the
                // unordered write's element).
                if (!pRaced && a.iter != b.iter) {
                    const Access &w =
                        a.iter < b.iter ? a : b; // earlier iteration
                    const Access &r = a.iter < b.iter ? b : a;
                    if (w.isWrite && r.exposedRead &&
                        w.iterClock.concurrentWith(r.iterClock)) {
                        pRaced = true;
                        rep.privRaces.push_back(
                            {elem, static_cast<size_t>(w.iter - 1),
                             static_cast<size_t>(r.iter - 1), w.iter,
                             r.iter, true, false});
                    }
                }
            }
        }
        rep.nonPrivOk = rep.nonPrivOk && !npRaced;
        rep.privOk = rep.privOk && !pRaced;
    }

    return rep;
}

HbReport
HbOracle::analyzeTrace(const std::vector<AccessEvent> &trace,
                       int numProcs, IterNum maxIter)
{
    HbOracle hb(numProcs, maxIter);
    for (const AccessEvent &e : trace)
        hb.onAccess(e);
    // The exit barrier orders everything after the loop; it cannot
    // retroactively order the in-loop accesses against each other,
    // so it does not mask any race.
    hb.onBarrier();
    return hb.analyze();
}

} // namespace verify
} // namespace specrt
