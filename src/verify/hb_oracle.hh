/**
 * @file
 * Vector-clock happens-before oracle (the sixth checker of the
 * differential suite).
 *
 * Where spec/oracle.hh answers "must the paper's test pass?" by
 * direct definition, this oracle answers the same question through a
 * DRD-style happens-before analysis: every access is stamped with a
 * vector clock, clocks are joined only on explicit synchronization
 * edges (barriers, checkpoint/commit, messages), and a verdict is
 * derived from the races that remain.
 *
 * Two clock families capture the paper's two tests:
 *
 *  - per-PROCESSOR clocks model the non-privatization execution of
 *    section 3.2: a doall loop has no cross-processor edges between
 *    the entry and exit barriers, so any cross-processor pair of
 *    accesses to one element with at least one write is a data race
 *    on the shared array. An element races iff it is neither
 *    read-only nor single-processor -- exactly the hardware test.
 *
 *  - per-ITERATION clocks model the privatized execution of section
 *    3.3: each iteration runs against its own copy, so the only
 *    shared-state conflict left is a FLOW race -- iteration w writes
 *    the element, a later unordered iteration r > w performs an
 *    exposed (first-access) read that the read-in serves from the
 *    stale backing copy. An element flow-races iff it has a write in
 *    some iteration w and an exposed read in some unordered r > w --
 *    exactly MaxR1st > MinW.
 *
 * The equivalences above hold for the free (barrier-less) schedule
 * the speculative hardware assumes; sequentialEdges() restores the
 * serial-order edges and makes every race disappear, which is the
 * unit-testable sanity anchor.
 */

#ifndef SPECRT_VERIFY_HB_ORACLE_HH
#define SPECRT_VERIFY_HB_ORACLE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "spec/oracle.hh"

namespace specrt
{
namespace verify
{

/** A classic vector clock over a fixed number of threads. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(size_t n) : c(n, 0) {}

    size_t size() const { return c.size(); }
    uint64_t operator[](size_t i) const { return c[i]; }

    /** Advance thread @p i's own component. */
    void tick(size_t i) { ++c[i]; }

    /** Component-wise max (receive/acquire edge). */
    void join(const VectorClock &o);

    /**
     * True when every component of *this is <= @p o's and at least
     * one is strictly smaller (strict happens-before).
     */
    bool happensBefore(const VectorClock &o) const;

    /** Distinct and neither happens-before the other. */
    bool
    concurrentWith(const VectorClock &o) const
    {
        return !(*this == o) && !happensBefore(o) &&
               !o.happensBefore(*this);
    }

    bool operator==(const VectorClock &o) const { return c == o.c; }

    std::string str() const;

  private:
    std::vector<uint64_t> c;
};

/** One detected happens-before race on an array element. */
struct HbRace
{
    uint64_t elem;
    /** Threads of the racing pair: processors (non-priv family) or
     *  0-based iteration indices (priv family). */
    size_t threadA;
    size_t threadB;
    IterNum iterA;
    IterNum iterB;
    bool writeA;
    bool writeB;

    std::string str() const;
};

/** Full analysis result. */
struct HbReport
{
    /** No cross-processor race on any element (section 3.2 passes). */
    bool nonPrivOk = true;
    /** No cross-iteration flow race (section 3.3 passes). */
    bool privOk = true;
    std::vector<HbRace> nonPrivRaces;
    std::vector<HbRace> privRaces;
};

/**
 * The happens-before oracle. Feed it the placed access trace (proc
 * fields meaningful, per-iteration program order as for Oracle) plus
 * any synchronization edges, then call analyze().
 */
class HbOracle
{
  public:
    /**
     * @p numProcs processors; @p maxIter the highest 1-based
     * iteration number that may appear (defines the iteration-clock
     * dimension).
     */
    HbOracle(int numProcs, IterNum maxIter);

    /** Record one access (stamps both clock families). */
    void onAccess(const AccessEvent &e);

    /**
     * All-to-all barrier: joins every processor clock and every
     * iteration clock through a single sync point, ordering all
     * earlier accesses before all later ones.
     */
    void onBarrier();

    /**
     * Checkpoint/commit edge: processor @p proc publishes its work
     * (release into the global sync clock). A later acquire() by any
     * processor orders it after every published commit.
     */
    void commit(NodeId proc);
    /** Acquire edge: @p proc joins everything published so far. */
    void acquire(NodeId proc);

    /**
     * Point-to-point message edge @p src -> @p dst (e.g. a read-in
     * reply or an ownership transfer): dst's clock joins src's.
     */
    void onMessage(NodeId src, NodeId dst);

    /**
     * Chain iteration i -> i+1 for all i (serial execution order).
     * With these edges no iteration pair is concurrent, so analyze()
     * must report privOk (the serial anchor of the equivalence
     * tests). Call before feeding accesses; accesses must then be
     * fed in serial (iteration-major) order so each chain edge is a
     * real release->acquire through the clocks.
     */
    void sequentialEdges();

    /** Run the race analysis over everything recorded so far. */
    HbReport analyze() const;

    /**
     * One-shot helper: analyze a placed trace under the free doall
     * schedule (entry/exit barriers only -- the schedule the
     * speculative hardware checks). Equivalent, by construction, to
     * Oracle::nonPrivParallel / Oracle::privParallel on the same
     * trace; the differential suite asserts exactly that.
     */
    static HbReport analyzeTrace(const std::vector<AccessEvent> &trace,
                                 int numProcs, IterNum maxIter);

  private:
    struct Access
    {
        VectorClock procClock;
        VectorClock iterClock;
        NodeId proc;
        IterNum iter;
        bool isWrite;
        /** First access of its iteration to this element was a read
         *  (the read-in would expose the backing copy). */
        bool exposedRead;
    };

    size_t procs;
    size_t iters;

    std::vector<VectorClock> procClocks;
    std::vector<VectorClock> iterClocks;
    /** Release target of commit(); source of acquire(). */
    VectorClock syncClock;
    /** Iteration-family release clock for onBarrier(). */
    VectorClock iterSyncClock;

    /** Accesses grouped per element index. */
    std::unordered_map<uint64_t, std::vector<Access>> byElem;
    /** elem*(iters+1)+iter0 keys whose first access was a write. */
    std::unordered_map<uint64_t, bool> firstIsWrite;
    bool chained = false;
    /** Highest iteration chained so far (sequentialEdges mode). */
    IterNum lastChainIter = 0;
};

} // namespace verify
} // namespace specrt

#endif // SPECRT_VERIFY_HB_ORACLE_HH
