#include "workloads/adm.hh"

#include "sim/random.hh"
#include "sim/logging.hh"

namespace specrt
{

AdmLoop::AdmLoop(const AdmParams &params) : p(params)
{
    fieldElems = static_cast<uint64_t>(p.iters) * p.elemsPerIter;
    // A block-local permutation of the field: the compiler cannot
    // prove the iteration slices disjoint, but they are, and the
    // scatter stays within each iteration's neighbourhood (the
    // paper's loop has a small working set with locality).
    Rng rng(p.seed);
    perm.resize(fieldElems);
    for (uint64_t e = 0; e < fieldElems; ++e)
        perm[e] = static_cast<int64_t>(e);
    uint64_t block = p.elemsPerIter;
    for (uint64_t base = 0; base + block <= fieldElems; base += block) {
        for (uint64_t k = block - 1; k > 0; --k) {
            std::swap(perm[base + k],
                      perm[base + rng.nextBounded(k + 1)]);
        }
    }
}

std::vector<ArrayDecl>
AdmLoop::arrays() const
{
    return {
        // Field updated through the permutation: non-priv test.
        {"field", fieldElems, 8, TestType::NonPriv, true, false},
        // Small privatized workspace, written before read.
        {"wrk", p.wsElems, 8, TestType::Priv, true, false},
        // The index permutation (input data, read-only).
        {"idx", fieldElems, 4, TestType::None, false, false},
    };
}

void
AdmLoop::initData(AddrMap &mem,
                  const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < fieldElems; ++e) {
        mem.write(r[0]->elemAddr(e), 8, e + 1000);
        mem.write(r[2]->elemAddr(e), 4,
                  static_cast<uint64_t>(perm[e]));
    }
}

void
AdmLoop::genIteration(IterNum i, IterProgram &out)
{
    uint64_t base = (static_cast<uint64_t>(i) - 1) * p.elemsPerIter;
    for (uint64_t k = 0; k < p.elemsPerIter; ++k) {
        int64_t ii = static_cast<int64_t>(base + k);
        int64_t ws = static_cast<int64_t>(k % p.wsElems);
        out.push_back(opLoad(1, 2, ii));                      // j=idx(..)
        out.push_back(opLoad(2, 0, IndexOperand::fromReg(1))); // field(j)
        out.push_back(opBusy(p.flopCycles));
        out.push_back(opImm(3, i));
        out.push_back(opAlu(2, AluOp::Add, 2, 3));
        out.push_back(opStore(1, ws, 2));                      // wrk=..
        out.push_back(opLoad(4, 1, ws));                       // ..wrk
        out.push_back(opStore(0, IndexOperand::fromReg(1), 4)); // field
    }
}

} // namespace specrt
