/**
 * @file
 * Analogue of Adm's run.do20 (paper section 5.2).
 *
 * The paper's loop: executed 900 times with 32 or 64 iterations;
 * small working set; some arrays need the non-privatization scheme
 * and some the privatization scheme; 8-byte elements; good load
 * balance (processor-wise software test); accesses to the arrays
 * under test are a large fraction of the loop's work.
 *
 * The analogue: iteration i updates its own slice of a
 * non-privatization-tested field array through an index permutation
 * (subscripted subscripts) and uses a small privatized workspace
 * written before read.
 */

#ifndef SPECRT_WORKLOADS_ADM_HH
#define SPECRT_WORKLOADS_ADM_HH

#include "runtime/workload.hh"

namespace specrt
{

struct AdmParams
{
    IterNum iters = 64;
    /** Field elements per iteration (8-byte elements). */
    uint64_t elemsPerIter = 48;
    /** Privatized workspace elements. */
    uint64_t wsElems = 32;
    Cycles flopCycles = 16;
    uint64_t seed = 13;
};

class AdmLoop : public Workload
{
  public:
    explicit AdmLoop(const AdmParams &params = {});

    std::string name() const override { return "adm.run_do20"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    AdmParams p;
    uint64_t fieldElems;
    std::vector<int64_t> perm;
};

} // namespace specrt

#endif // SPECRT_WORKLOADS_ADM_HH
