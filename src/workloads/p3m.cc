#include "workloads/p3m.hh"

#include "sim/logging.hh"

namespace specrt
{

namespace
{

uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

P3mLoop::P3mLoop(const P3mParams &params) : p(params)
{
    SPECRT_ASSERT(p.wsElems >= 64 && p.posElems >= 1024,
                  "bad p3m params");
}

int
P3mLoop::neighborsOf(IterNum i) const
{
    uint64_t h = mix(static_cast<uint64_t>(i) * 2654435761ULL ^ p.seed);
    int n = p.minNeighbors + static_cast<int>(h % p.spreadNeighbors);
    if (p.tailEvery > 0 && i % p.tailEvery == 0)
        n *= p.tailFactor;
    return n;
}

std::vector<ArrayDecl>
P3mLoop::arrays() const
{
    return {
        // Privatized workspace: written before read each iteration.
        {"force_ws", p.wsElems, 4, TestType::Priv, true, false},
        {"phi_ws", p.wsElems, 4, TestType::Priv, true, false},
        // Large read-only particle positions (analyzable).
        {"pos", p.posElems, 4, TestType::None, false, false},
        // Per-iteration result (analyzable, write-only; regenerated
        // by a serial re-execution, so no backup is required).
        {"accel", static_cast<uint64_t>(p.iters) + 1, 4,
         TestType::None, false, false},
    };
}

void
P3mLoop::initData(AddrMap &mem,
                  const std::vector<const Region *> &r)
{
    // Workspaces start at zero (they are written before read).
    for (uint64_t e = 0; e < p.posElems; ++e)
        mem.write(r[2]->elemAddr(e), 4, (e * 2654435761ULL) & 0xffff);
}

void
P3mLoop::genIteration(IterNum i, IterProgram &out)
{
    int n = neighborsOf(i);
    uint64_t h = mix(static_cast<uint64_t>(i) ^ (p.seed << 1));

    // Gather phase: reads of the big position array (neighbors
    // cluster spatially, as real particle neighborhoods do) plus
    // write-before-read accumulation in the privatized workspaces.
    uint64_t hood = h % (p.posElems - 256);
    uint64_t ws_base = h % p.wsElems;
    for (int k = 0; k < n; ++k) {
        uint64_t hk = mix(h + static_cast<uint64_t>(k));
        int64_t pos_idx = static_cast<int64_t>(hood + hk % 256);
        int64_t ws_idx = static_cast<int64_t>(
            (ws_base + static_cast<uint64_t>(k)) % p.wsElems);

        out.push_back(opLoad(1, 2, pos_idx));      // neighbor position
        out.push_back(opBusy(p.flopCycles));       // distance + force
        out.push_back(opImm(2, static_cast<int64_t>(hk & 0xff)));
        out.push_back(opAlu(3, AluOp::Add, 1, 2));
        out.push_back(opStore(0, ws_idx, 3));      // force_ws(k) = f
        out.push_back(opStore(1, ws_idx, 2));      // phi_ws(k) = phi
    }

    // Reduce phase: read the workspaces back (covered by the writes
    // above, so no read-first is generated).
    out.push_back(opImm(4, 0));
    for (int k = 0; k < n; ++k) {
        int64_t ws_idx = static_cast<int64_t>(
            (ws_base + static_cast<uint64_t>(k)) % p.wsElems);
        out.push_back(opLoad(5, 0, ws_idx));
        out.push_back(opLoad(6, 1, ws_idx));
        out.push_back(opAlu(5, AluOp::Add, 5, 6));
        out.push_back(opAlu(4, AluOp::Add, 4, 5));
        out.push_back(opBusy(2));
    }
    out.push_back(opStore(3, i, 4)); // accel(i) = total
}

} // namespace specrt
