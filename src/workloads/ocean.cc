#include "workloads/ocean.hh"

#include "sim/logging.hh"

namespace specrt
{

OceanLoop::OceanLoop(const OceanParams &params) : p(params)
{
    SPECRT_ASSERT(p.iters > 0 && p.elems >= (uint64_t)p.iters,
                  "bad ocean params");
    elemsPerIter = p.elems / p.iters;
}

std::vector<ArrayDecl>
OceanLoop::arrays() const
{
    return {
        // The complex data array under test.
        {"cdata", p.elems, 8, TestType::NonPriv, true, false},
        // Read-only twiddle factors (analyzable).
        {"twiddle", elemsPerIter + 1, 8, TestType::None, false, false},
    };
}

void
OceanLoop::initData(AddrMap &mem,
                    const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < p.elems; ++e)
        mem.write(r[0]->elemAddr(e), 8, e * 5 + 1);
    for (uint64_t e = 0; e < r[1]->numElems(); ++e)
        mem.write(r[1]->elemAddr(e), 8, e + 2);
}

void
OceanLoop::genIteration(IterNum i, IterProgram &out)
{
    if (p.injectDep && i == p.iters) {
        // Element 0 belongs to iteration 1's partition under both
        // stride families; reading it from the last iteration makes
        // the dependence cross processors under static chunking too.
        out.push_back(opLoad(9, 0, 0));
        out.push_back(opBusy(2));
    }
    // Iteration i updates its own set of elements; the stride family
    // decides whether they are contiguous (stride 1) or interleaved
    // at distance `iters` (column-major style).
    for (uint64_t k = 0; k < elemsPerIter; ++k) {
        uint64_t e;
        if (p.stride <= 1)
            e = (static_cast<uint64_t>(i) - 1) * elemsPerIter + k;
        else
            e = k * static_cast<uint64_t>(p.iters) +
                (static_cast<uint64_t>(i) - 1);
        if (e >= p.elems)
            continue;
        int64_t ei = static_cast<int64_t>(e);
        int64_t wi = static_cast<int64_t>(k);
        out.push_back(opLoad(1, 0, ei));        // x = cdata(e)
        out.push_back(opLoad(2, 1, wi));        // w = twiddle(k)
        out.push_back(opBusy(p.flopCycles));    // complex multiply/add
        out.push_back(opAlu(3, AluOp::Add, 1, 2));
        out.push_back(opStore(0, ei, 3));       // cdata(e) = x op w
    }
}

} // namespace specrt
