#include "workloads/microloops.hh"

#include "sim/logging.hh"

namespace specrt
{

// --------------------------------------------------------------------
// Fig1A
// --------------------------------------------------------------------

std::vector<ArrayDecl>
Fig1ALoop::arrays() const
{
    return {{"A", static_cast<uint64_t>(n) + 1, 4, TestType::NonPriv,
             true, false}};
}

void
Fig1ALoop::initData(AddrMap &mem,
                    const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < r[0]->numElems(); ++e)
        mem.write(r[0]->elemAddr(e), 4, e + 1);
}

void
Fig1ALoop::genIteration(IterNum i, IterProgram &out)
{
    // A(i) = A(i) + A(i-1)   (elements are 0-based: A[i] += A[i-1])
    out.push_back(opLoad(1, 0, i));
    out.push_back(opLoad(2, 0, i - 1));
    out.push_back(opAlu(3, AluOp::Add, 1, 2));
    out.push_back(opStore(0, i, 3));
}

// --------------------------------------------------------------------
// Fig1B
// --------------------------------------------------------------------

std::vector<ArrayDecl>
Fig1BLoop::arrays() const
{
    return {
        {"A", 2 * static_cast<uint64_t>(n) + 2, 4, TestType::NonPriv,
         true, false},
        {"tmp", 1, 4, TestType::Priv, true, false},
    };
}

void
Fig1BLoop::initData(AddrMap &mem,
                    const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < r[0]->numElems(); ++e)
        mem.write(r[0]->elemAddr(e), 4, 100 + e);
}

void
Fig1BLoop::genIteration(IterNum i, IterProgram &out)
{
    // tmp = A(2i); A(2i) = A(2i-1); A(2i-1) = tmp
    out.push_back(opLoad(1, 0, 2 * i));
    out.push_back(opStore(1, 0, 1));        // tmp = r1
    out.push_back(opLoad(2, 0, 2 * i - 1));
    out.push_back(opStore(0, 2 * i, 2));
    out.push_back(opLoad(3, 1, 0));         // r3 = tmp
    out.push_back(opStore(0, 2 * i - 1, 3));
}

// --------------------------------------------------------------------
// Fig1C
// --------------------------------------------------------------------

Fig1CLoop::Fig1CLoop(IterNum iters, uint64_t elems_, bool disjoint,
                     uint64_t seed)
    : n(iters), elems(elems_)
{
    SPECRT_ASSERT(elems >= static_cast<uint64_t>(n),
                  "fig1c needs elems >= iters");
    Rng rng(seed);
    f.resize(n + 1);
    g.resize(n + 1);
    if (disjoint) {
        // f is a permutation slice; g(i) == f(i) so each iteration
        // touches only its own element (read and write).
        std::vector<int64_t> perm(elems);
        for (uint64_t e = 0; e < elems; ++e)
            perm[e] = static_cast<int64_t>(e);
        for (uint64_t e = elems - 1; e > 0; --e)
            std::swap(perm[e], perm[rng.nextBounded(e + 1)]);
        for (IterNum i = 1; i <= n; ++i) {
            f[i] = perm[i - 1];
            g[i] = perm[i - 1];
        }
    } else {
        for (IterNum i = 1; i <= n; ++i) {
            f[i] = static_cast<int64_t>(rng.nextBounded(elems));
            g[i] = static_cast<int64_t>(rng.nextBounded(elems));
        }
    }
}

std::vector<ArrayDecl>
Fig1CLoop::arrays() const
{
    return {
        {"A", elems, 4, TestType::NonPriv, true, false},
        {"F", static_cast<uint64_t>(n) + 1, 4, TestType::None, false,
         false},
        {"G", static_cast<uint64_t>(n) + 1, 4, TestType::None, false,
         false},
    };
}

void
Fig1CLoop::initData(AddrMap &mem,
                    const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < elems; ++e)
        mem.write(r[0]->elemAddr(e), 4, 7 * e + 3);
    for (IterNum i = 1; i <= n; ++i) {
        mem.write(r[1]->elemAddr(i), 4, static_cast<uint64_t>(f[i]));
        mem.write(r[2]->elemAddr(i), 4, static_cast<uint64_t>(g[i]));
    }
}

void
Fig1CLoop::genIteration(IterNum i, IterProgram &out)
{
    // r1 = F(i); r2 = G(i); r3 = A(g(i)) + i; A(f(i)) = r3
    out.push_back(opLoad(1, 1, i));
    out.push_back(opLoad(2, 2, i));
    out.push_back(opLoad(3, 0, IndexOperand::fromReg(2)));
    out.push_back(opImm(4, i));
    out.push_back(opAlu(3, AluOp::Add, 3, 4));
    out.push_back(opBusy(2));
    out.push_back(opStore(0, IndexOperand::fromReg(1), 3));
}

// --------------------------------------------------------------------
// Fig2
// --------------------------------------------------------------------

Fig2Loop::Fig2Loop()
{
    // 1-based iteration data from the paper's Figure 2 (elements are
    // 1-based there; we keep them 1-based in a 5-element array).
    k = {0, 1, 2, 3, 4, 1};
    l = {0, 2, 2, 4, 4, 2};
    b1 = {0, 1, 0, 1, 0, 1};
}

std::vector<ArrayDecl>
Fig2Loop::arrays() const
{
    return {
        {"A", 5, 4, TestType::NonPriv, true, false},
        {"K", 6, 4, TestType::None, false, false},
        {"L", 6, 4, TestType::None, false, false},
        {"C", 6, 4, TestType::None, false, false},
    };
}

void
Fig2Loop::initData(AddrMap &mem,
                   const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < 5; ++e)
        mem.write(r[0]->elemAddr(e), 4, 10 * (e + 1));
    for (IterNum i = 1; i <= 5; ++i) {
        mem.write(r[1]->elemAddr(i), 4, static_cast<uint64_t>(k[i]));
        mem.write(r[2]->elemAddr(i), 4, static_cast<uint64_t>(l[i]));
        mem.write(r[3]->elemAddr(i), 4, static_cast<uint64_t>(i));
    }
}

void
Fig2Loop::genIteration(IterNum i, IterProgram &out)
{
    // z = A(K(i)); if (B1(i)) A(L(i)) = z + C(i)
    out.push_back(opLoad(1, 1, i));                       // r1 = K(i)
    out.push_back(opImm(5, 1));
    out.push_back(opAlu(1, AluOp::Sub, 1, 5));            // 0-based
    out.push_back(opLoad(2, 0, IndexOperand::fromReg(1))); // z
    if (b1[i]) {
        out.push_back(opLoad(3, 2, i));                   // r3 = L(i)
        out.push_back(opAlu(3, AluOp::Sub, 3, 5));
        out.push_back(opLoad(4, 3, i));                   // C(i)
        out.push_back(opAlu(4, AluOp::Add, 2, 4));
        out.push_back(opStore(0, IndexOperand::fromReg(3), 4));
    }
}

// --------------------------------------------------------------------
// Fig3
// --------------------------------------------------------------------

Fig3Loop::Fig3Loop(Fig3Kind kind_, IterNum iters)
    : kind(kind_), n(iters)
{
    SPECRT_ASSERT(n >= 4, "fig3 needs a few iterations");
}

std::vector<ArrayDecl>
Fig3Loop::arrays() const
{
    return {
        {"A", 1, 4, TestType::Priv, true, true},
        {"R", static_cast<uint64_t>(n) + 1, 4, TestType::None, true,
         false},
    };
}

void
Fig3Loop::initData(AddrMap &mem,
                   const std::vector<const Region *> &r)
{
    mem.write(r[0]->elemAddr(0), 4, 999); // the pre-loop value of A(1)
}

void
Fig3Loop::genIteration(IterNum i, IterProgram &out)
{
    switch (kind) {
      case Fig3Kind::ReadInNeeded: {
        // First half only reads A(1) (the pre-loop value must be
        // read in); second half writes it before reading.
        if (i <= n / 2) {
            out.push_back(opLoad(1, 0, 0));
            out.push_back(opStore(1, i, 1));
        } else {
            out.push_back(opImm(1, 1000 + i));
            out.push_back(opStore(0, 0, 1));
            out.push_back(opLoad(2, 0, 0));
            out.push_back(opStore(1, i, 2));
        }
        return;
      }
      case Fig3Kind::WriteFirst: {
        out.push_back(opImm(1, 2000 + i));
        out.push_back(opStore(0, 0, 1));
        out.push_back(opLoad(2, 0, 0));
        out.push_back(opStore(1, i, 2));
        return;
      }
      case Fig3Kind::FlowDep: {
        // Read then write: iteration i reads the value iteration
        // i-1 produced.
        out.push_back(opLoad(1, 0, 0));
        out.push_back(opStore(1, i, 1));
        out.push_back(opImm(2, 3000 + i));
        out.push_back(opStore(0, 0, 2));
        return;
      }
    }
}

// --------------------------------------------------------------------
// HistogramLoop
// --------------------------------------------------------------------

HistogramLoop::HistogramLoop(const HistogramParams &params) : p(params)
{
    SPECRT_ASSERT(p.bins >= 2 && p.updates >= 1, "bad histogram");
}

std::vector<ArrayDecl>
HistogramLoop::arrays() const
{
    return {
        {"bins", p.bins, 4, TestType::Reduction, true, true},
        {"key", static_cast<uint64_t>(p.iters) * p.updates + 1, 4,
         TestType::None, false, false},
        {"wgt", static_cast<uint64_t>(p.iters) + 1, 4, TestType::None,
         false, false},
    };
}

void
HistogramLoop::initData(AddrMap &mem,
                        const std::vector<const Region *> &r)
{
    // Bins start non-zero so the merge's "shared + sum of partials"
    // semantics are visible.
    for (uint64_t b = 0; b < p.bins; ++b)
        mem.write(r[0]->elemAddr(b), 4, 10 * b);
    Rng rng(p.seed);
    for (uint64_t k = 0; k < r[1]->numElems(); ++k)
        mem.write(r[1]->elemAddr(k), 4, rng.nextBounded(p.bins));
    for (IterNum i = 0; i <= p.iters; ++i)
        mem.write(r[2]->elemAddr(i), 4,
                  static_cast<uint64_t>(i % 7 + 1));
}

void
HistogramLoop::genIteration(IterNum i, IterProgram &out)
{
    out.push_back(opLoad(2, 2, i)); // w = wgt(i)
    for (int u = 0; u < p.updates; ++u) {
        int64_t kidx = (i - 1) * p.updates + u + 1;
        out.push_back(opLoad(1, 1, kidx)); // b = key(...)
        out.push_back(opBusy(6));
        // bins(b) += w  -- the tagged reduction statement.
        out.push_back(opLoadRed(3, 0, IndexOperand::fromReg(1)));
        out.push_back(opAlu(3, AluOp::Add, 3, 2));
        out.push_back(opStoreRed(0, IndexOperand::fromReg(1), 3));
    }
    if (p.rogueIter != 0 && i == p.rogueIter) {
        // An untagged read of a bin: uses a partial value, so the
        // test must reject the run.
        out.push_back(opLoad(4, 0, 1));
        out.push_back(opBusy(1));
    }
}

// --------------------------------------------------------------------
// RandomLoop
// --------------------------------------------------------------------

RandomLoop::RandomLoop(const RandomLoopParams &params) : p(params)
{
    SPECRT_ASSERT(p.window >= 1 && p.window <= p.elems,
                  "bad random-loop window");
    Rng rng(p.seed);
    perIter.resize(p.iters + 1);
    for (IterNum i = 1; i <= p.iters; ++i) {
        uint64_t base =
            p.elems == p.window
                ? 0
                : (static_cast<uint64_t>(i) * 37) %
                      (p.elems - p.window + 1);
        for (int a = 0; a < p.accesses; ++a) {
            uint64_t e = base + rng.nextBounded(p.window);
            bool w = rng.nextBool(p.writeProb);
            perIter[i].emplace_back(e, w);
            trace.push_back({invalidNode, i, e, w, 0});
        }
    }
}

std::vector<ArrayDecl>
RandomLoop::arrays() const
{
    // Privatized runs declare the array live-out so copy-out makes
    // the shared array comparable with serial execution.
    return {{"A", p.elems, 4, p.test, true,
             p.test == TestType::Priv}};
}

void
RandomLoop::initData(AddrMap &mem,
                     const std::vector<const Region *> &r)
{
    for (uint64_t e = 0; e < p.elems; ++e)
        mem.write(r[0]->elemAddr(e), 4, e * 3 + 11);
}

void
RandomLoop::genIteration(IterNum i, IterProgram &out)
{
    SPECRT_ASSERT(i >= 1 && i <= p.iters, "random iter out of range");
    int vreg = 1;
    for (const auto &[e, w] : perIter[i]) {
        if (w) {
            out.push_back(opImm(vreg, 100000 + i * 1000 + vreg));
            out.push_back(opStore(0, static_cast<int64_t>(e), vreg));
        } else {
            out.push_back(opLoad(vreg, 0, static_cast<int64_t>(e)));
        }
        vreg = vreg % 20 + 1;
        out.push_back(opBusy(1));
    }
}

} // namespace specrt
