#include "workloads/track.hh"

#include "sim/logging.hh"

namespace specrt
{

namespace
{

uint64_t
mix(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

TrackLoop::TrackLoop(const TrackParams &params) : p(params)
{
    SPECRT_ASSERT(p.instance >= 0 && p.instance < 56,
                  "track instance must be 0..55");
    SPECRT_ASSERT(p.elems >= static_cast<uint64_t>(p.iters),
                  "track needs elems >= iters");
}

double
TrackLoop::testedFraction() const
{
    double f = (p.instance % 12) * 0.04;
    // The five dependent instances communicate through the tested
    // arrays, so they necessarily access them.
    if (hasAdjacentDeps() && f < 0.08)
        f = 0.08;
    return f;
}

std::vector<ArrayDecl>
TrackLoop::arrays() const
{
    return {
        {"t_extr", p.elems, 4, TestType::NonPriv, true, false},
        {"t_meas", p.elems, 4, TestType::NonPriv, true, false},
        {"t_stat", p.elems, 8, TestType::NonPriv, true, false},
        {"t_conf", p.elems, 8, TestType::NonPriv, true, false},
        // Read-only measurements (analyzable).
        {"obs", 8 * p.elems, 4, TestType::None, false, false},
        // Per-iteration output (regenerated on re-execution).
        {"out", static_cast<uint64_t>(p.iters) + 1, 4, TestType::None,
         false, false},
    };
}

void
TrackLoop::initData(AddrMap &mem,
                    const std::vector<const Region *> &r)
{
    for (int a = 0; a < 4; ++a) {
        for (uint64_t e = 0; e < p.elems; ++e)
            mem.write(r[a]->elemAddr(e), r[a]->elemBytes,
                      e + 17 * (a + 1));
    }
    for (uint64_t e = 0; e < r[4]->numElems(); ++e)
        mem.write(r[4]->elemAddr(e), 4, mix(e) & 0xffff);
}

void
TrackLoop::genIteration(IterNum i, IterProgram &out)
{
    uint64_t h = mix(static_cast<uint64_t>(i) * 1099511628211ULL ^
                     p.seed ^ (static_cast<uint64_t>(p.instance) << 32));
    int total = 12 + static_cast<int>(h % p.imbalanceSpread) * 6;
    int tested = static_cast<int>(testedFraction() * total + 0.5);
    int64_t slot = static_cast<int64_t>(i - 1);

    int vreg = 1;
    for (int k = 0; k < total; ++k) {
        uint64_t hk = mix(h + static_cast<uint64_t>(k) * 31);
        if (k < tested) {
            int arr = k % 4;
            // Update this iteration's own slot: read-modify-write.
            out.push_back(opLoad(vreg, arr, slot));
            out.push_back(opBusy(p.flopCycles));
            out.push_back(opImm(vreg + 1,
                                static_cast<int64_t>(hk & 0xfff)));
            out.push_back(
                opAlu(vreg, AluOp::Add, vreg, vreg + 1));
            out.push_back(opStore(arr, slot, vreg));
        } else {
            // Observations cluster around this track's window.
            int64_t oi = static_cast<int64_t>(
                (static_cast<uint64_t>(slot) * 8 + hk % 96) %
                (8 * p.elems));
            out.push_back(opLoad(vreg, 4, oi));
            out.push_back(opBusy(p.flopCycles));
        }
        vreg = vreg % 12 + 1;
    }

    // In the five dependent instances, some adjacent iteration pairs
    // communicate: iteration 4k+2 reads what 4k+1 wrote. Block
    // scheduling keeps the pair on one processor, so the
    // processor-wise tests pass while the iteration-wise software
    // test fails (paper section 5.2).
    if (hasAdjacentDeps() && tested > 0 && i % 4 == 2 &&
        (i / 4) % 8 == 0) {
        out.push_back(opLoad(20, 0, slot - 1));
        out.push_back(opBusy(2));
    }

    out.push_back(opStore(5, i, 1)); // out(i)
}

} // namespace specrt
