/**
 * @file
 * Analogue of Ocean's ftrvmt.do109 (paper section 5.2).
 *
 * The paper's loop: executed 4129 times, usually with 32 iterations;
 * small working set (258 x 64 complex elements); data accessed with
 * different strides in different executions; tested with the
 * non-privatization algorithm; good load balance (the software
 * scheme uses the processor-wise test); run with 8 processors.
 *
 * The analogue is an FFT-like pass over a complex array: iteration i
 * updates a disjoint set of elements (so the loop is parallel and
 * every element is touched by one processor), with a stride
 * parameter that changes between executions. A large fraction of the
 * loop's accesses hit the array under test, which is what makes the
 * software scheme's instruction overhead high for this loop.
 */

#ifndef SPECRT_WORKLOADS_OCEAN_HH
#define SPECRT_WORKLOADS_OCEAN_HH

#include "runtime/workload.hh"

namespace specrt
{

/** Parameters of one execution of the Ocean loop. */
struct OceanParams
{
    IterNum iters = 32;
    /** Complex elements (8 bytes each). 258*64 in the paper. */
    uint64_t elems = 258 * 64;
    /** Stride family for this execution (1 = unit, or the iteration
     *  count for column-major style access). */
    uint64_t stride = 1;
    /** Twiddle work per element, in cycles. */
    Cycles flopCycles = 12;
    /**
     * Inject a cross-iteration flow dependence: the last iteration
     * reads an element iteration 1 writes (the paper's Figure 13
     * forced-failure experiment injects a dependence between early
     * iterations; ours spans chunks so every scheduling splits it).
     */
    bool injectDep = false;
};

class OceanLoop : public Workload
{
  public:
    explicit OceanLoop(const OceanParams &params = {});

    std::string name() const override { return "ocean.ftrvmt_do109"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    OceanParams p;
    uint64_t elemsPerIter;
};

} // namespace specrt

#endif // SPECRT_WORKLOADS_OCEAN_HH
