/**
 * @file
 * Small loops from the paper's figures, plus a configurable random
 * loop for property testing.
 *
 * - Fig1A: A(i) = A(i) + A(i-1)           (flow deps; never parallel)
 * - Fig1B: element swap through tmp        (parallel once tmp is
 *          privatized)
 * - Fig1C: A(f(i)) = ...; ... = A(g(i))    (subscripted subscripts)
 * - Fig2:  the worked marking example (K/L/B1 of Figure 2; the test
 *          must fail)
 * - Fig3:  single-element loops parallel only under privatization
 *          with read-in/copy-out
 * - RandomLoop: seeded random access pattern with tunable sharing /
 *          dependence probability (drives the property tests)
 */

#ifndef SPECRT_WORKLOADS_MICROLOOPS_HH
#define SPECRT_WORKLOADS_MICROLOOPS_HH

#include "runtime/workload.hh"
#include "sim/random.hh"
#include "spec/oracle.hh"

namespace specrt
{

/** Figure 1(a): A(i) = A(i) + A(i-1). */
class Fig1ALoop : public Workload
{
  public:
    explicit Fig1ALoop(IterNum iters = 64) : n(iters) {}

    std::string name() const override { return "fig1a"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return n; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    IterNum n;
};

/**
 * Figure 1(b): swap A(2i) and A(2i-1) through scalar tmp.
 * tmp is privatizable; the swap touches disjoint elements per
 * iteration, so the loop is parallel with tmp privatized.
 */
class Fig1BLoop : public Workload
{
  public:
    explicit Fig1BLoop(IterNum iters = 64) : n(iters) {}

    std::string name() const override { return "fig1b"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return n; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    IterNum n;
};

/**
 * Figure 1(c): A(f(i)) = ...; ... = A(g(i)). The subscript arrays
 * come from "input data": a seed picks them. With disjoint == true
 * the subscripts are a permutation (parallel); otherwise they
 * collide (not parallel).
 */
class Fig1CLoop : public Workload
{
  public:
    Fig1CLoop(IterNum iters, uint64_t elems, bool disjoint,
              uint64_t seed);

    std::string name() const override { return "fig1c"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return n; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    IterNum n;
    uint64_t elems;
    std::vector<int64_t> f, g;
};

/** The Figure 2 worked example (5 iterations; the test fails). */
class Fig2Loop : public Workload
{
  public:
    Fig2Loop();

    std::string name() const override { return "fig2"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return 5; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    std::vector<int64_t> k, l;
    std::vector<uint8_t> b1;
};

/** Variants of the Figure 3 single-element loops. */
enum class Fig3Kind
{
    /** Read-only prefix, then write-before-read suffix: parallel
     *  only with read-in support. */
    ReadInNeeded,
    /** Every iteration writes before reading: plain privatization,
     *  live-out value needs copy-out. */
    WriteFirst,
    /** Reads after an earlier iteration's write: NOT parallel. */
    FlowDep,
};

class Fig3Loop : public Workload
{
  public:
    Fig3Loop(Fig3Kind kind, IterNum iters = 32);

    std::string name() const override { return "fig3"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return n; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    Fig3Kind kind;
    IterNum n;
};

/** Parameters of the histogram (reduction) loop. */
struct HistogramParams
{
    IterNum iters = 256;
    uint64_t bins = 64;
    /** Reduction updates per iteration. */
    int updates = 3;
    /**
     * Iteration that reads a bin OUTSIDE the reduction statement
     * (0 = none): the illegal access the reduction test must catch.
     */
    IterNum rogueIter = 0;
    uint64_t seed = 5;
};

/**
 * A classic run-time reduction: bins(K(i)) += W(i), with the bin
 * indices coming from input data. Exercises TestType::Reduction --
 * privatized partial accumulators merged after the loop, with the
 * tagged-access check guarding against non-reduction uses.
 */
class HistogramLoop : public Workload
{
  public:
    explicit HistogramLoop(const HistogramParams &params = {});

    std::string name() const override { return "histogram"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

  private:
    HistogramParams p;
};

/** Parameters of the random property-test loop. */
struct RandomLoopParams
{
    IterNum iters = 64;
    uint64_t elems = 256;
    /** Accesses per iteration to the array under test. */
    int accesses = 4;
    /** Probability an access is a write. */
    double writeProb = 0.3;
    /**
     * Element locality: each iteration draws its elements from a
     * window of this size placed by the iteration index; a window of
     * `elems` makes all iterations collide freely.
     */
    uint64_t window = 256;
    TestType test = TestType::NonPriv;
    uint64_t seed = 1;
};

/** Seeded random loop over one tested array. */
class RandomLoop : public Workload
{
  public:
    explicit RandomLoop(const RandomLoopParams &params);

    std::string name() const override { return "random"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

    /** The exact access trace the loop performs (oracle input). */
    const std::vector<AccessEvent> &expectedTrace() const
    {
        return trace;
    }

  private:
    RandomLoopParams p;
    /** Pre-drawn accesses: trace[k] for iteration order. */
    std::vector<AccessEvent> trace;
    std::vector<std::vector<std::pair<uint64_t, bool>>> perIter;
};

} // namespace specrt

#endif // SPECRT_WORKLOADS_MICROLOOPS_HH
