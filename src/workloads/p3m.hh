/**
 * @file
 * Analogue of P3m's pp.do100 (paper section 5.2).
 *
 * The paper's loop: executed once with 97,336 iterations (15,000
 * simulated); very large working set; several arrays need the
 * privatization algorithm; 4-byte elements; no read-in or copy-out
 * needed; load across iterations highly imbalanced, so dynamic
 * scheduling is required.
 *
 * The analogue is a particle-particle force pass: iteration i
 * gathers a variable-length neighbor list from a large read-only
 * position array (the big working set), accumulates into privatized
 * workspace arrays (written before read each iteration, so the
 * privatization test passes with no read-in), and writes one
 * analyzable result element.
 */

#ifndef SPECRT_WORKLOADS_P3M_HH
#define SPECRT_WORKLOADS_P3M_HH

#include "runtime/workload.hh"
#include "sim/random.hh"

namespace specrt
{

struct P3mParams
{
    IterNum iters = 97336;
    /** Privatized workspace elements (4 bytes each). */
    uint64_t wsElems = 6144;
    /** Read-only particle data elements (the big working set). */
    uint64_t posElems = 192 * 1024;
    /** Neighbor count: min + hash(i) % spread, plus a heavy tail. */
    int minNeighbors = 2;
    int spreadNeighbors = 12;
    /** One iteration in `tailEvery` gets tailFactor times the work
     *  (the load imbalance that forces dynamic scheduling). */
    int tailEvery = 29;
    int tailFactor = 10;
    Cycles flopCycles = 20;
    uint64_t seed = 7;
};

class P3mLoop : public Workload
{
  public:
    explicit P3mLoop(const P3mParams &params = {});

    std::string name() const override { return "p3m.pp_do100"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

    /** Neighbors of iteration i (work per iteration; imbalance). */
    int neighborsOf(IterNum i) const;

  private:
    P3mParams p;
};

} // namespace specrt

#endif // SPECRT_WORKLOADS_P3M_HH
