/**
 * @file
 * Analogue of Track's nlfilt.do300 (paper section 5.2).
 *
 * The paper's loop: executed 56 times, 480 iterations on average;
 * small working set; four arrays under the non-privatization scheme
 * (4- or 8-byte elements); the fraction of accesses to the tested
 * arrays varies from 0% to 44% across executions. Five of the 56
 * executions are not fully parallel: the iteration-wise software
 * test fails on them, but the processor-wise test passes because
 * the dependent iterations are adjacent (the hardware scheme passes
 * them too as long as adjacent iterations are scheduled in the same
 * block). There is load imbalance, so the static scheduling the
 * processor-wise software test requires hurts.
 *
 * The analogue: a non-linear filter over track candidates. Each
 * instance (0..55) selects the fraction of tested-array accesses and
 * whether adjacent-iteration dependences exist (instances where
 * `instance % 11 == 3`, giving 5 of 56).
 */

#ifndef SPECRT_WORKLOADS_TRACK_HH
#define SPECRT_WORKLOADS_TRACK_HH

#include "runtime/workload.hh"

namespace specrt
{

struct TrackParams
{
    /** Which of the 56 executions (0-based). */
    int instance = 0;
    IterNum iters = 480;
    /** Elements per tested array. */
    uint64_t elems = 4096;
    Cycles flopCycles = 22;
    /** Work multiplier spread (load imbalance). */
    int imbalanceSpread = 10;
    uint64_t seed = 17;
};

class TrackLoop : public Workload
{
  public:
    explicit TrackLoop(const TrackParams &params = {});

    std::string name() const override { return "track.nlfilt_do300"; }
    std::vector<ArrayDecl> arrays() const override;
    IterNum numIters() const override { return p.iters; }
    void initData(AddrMap &mem,
                  const std::vector<const Region *> &r) override;
    void genIteration(IterNum i, IterProgram &out) override;

    /** True if this instance carries adjacent-iteration dependences
     *  (5 of 56 instances, as in the paper). */
    bool hasAdjacentDeps() const { return p.instance % 11 == 3; }

    /** Fraction of accesses that touch the tested arrays (0..0.44). */
    double testedFraction() const;

  private:
    TrackParams p;
};

} // namespace specrt

#endif // SPECRT_WORKLOADS_TRACK_HH
