/**
 * @file
 * DsmSystem: one modeled CC-NUMA machine.
 *
 * Owns the event queue, the global address space, the network, and a
 * cache controller + directory controller per node, all wired
 * together. Higher layers (spec/, runtime/) attach speculation units
 * and processors on top.
 */

#ifndef SPECRT_MEM_DSM_HH
#define SPECRT_MEM_DSM_HH

#include <memory>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache_ctrl.hh"
#include "mem/dir_ctrl.hh"
#include "mem/network.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace specrt
{

/** A complete modeled machine. */
class DsmSystem : public StatGroup
{
  public:
    explicit DsmSystem(const MachineConfig &config);

    const MachineConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return eq; }
    AddrMap &memory() { return mem; }
    Network &network() { return *net; }

    CacheCtrl &cacheCtrl(NodeId n) { return *caches.at(n); }
    DirCtrl &dirCtrl(NodeId n) { return *dirs.at(n); }
    int numProcs() const { return cfg.numProcs; }

    /**
     * The machine's fault schedule (built from cfg.fault). Always
     * present but disarmed by default; arm it around the phase that
     * should experience faults.
     */
    FaultPlan &faultPlan() { return *faults; }

    /**
     * Install the hook fired when a transaction or retransmitted
     * signal exhausts its retry budget (graceful degradation).
     * Without one, message loss panics.
     */
    void setTxnLostHook(std::function<void(const char *)> hook);

    /**
     * Run-boundary reset: flush all caches (committing or discarding
     * dirty data), clear all directory + transaction state, and drop
     * any pending events. The paper flushes the caches after every
     * loop execution; an aborted speculative run additionally
     * discards its dirty lines.
     */
    void resetMachine(bool commit_dirty);

    /** True when no transaction is in flight anywhere. */
    bool quiescent() const;

  private:
    MachineConfig cfg;
    EventQueue eq;
    AddrMap mem;
    std::unique_ptr<FaultPlan> faults;
    std::unique_ptr<Network> net;
    /** Message-arena telemetry (`system.arena.*`), machine-scoped. */
    std::unique_ptr<ArenaStats> arenaStats;
    std::vector<std::unique_ptr<CacheCtrl>> caches;
    std::vector<std::unique_ptr<DirCtrl>> dirs;
};

} // namespace specrt

#endif // SPECRT_MEM_DSM_HH
