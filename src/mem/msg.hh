/**
 * @file
 * Message types exchanged between cache controllers and directories.
 *
 * The base protocol is a DASH-like invalidation protocol. On top of
 * it ride the speculative-parallelization messages of the paper:
 * First_update / ROnly_update (non-privatization algorithm, Figs. 6-7)
 * and read-first / first-write / read-in (privatization algorithm,
 * Figs. 8-9). Spec messages reuse the same network and the same
 * per-line serialization at the home directory.
 */

#ifndef SPECRT_MEM_MSG_HH
#define SPECRT_MEM_MSG_HH

#include <cstdint>

#include "sim/small_vec.hh"
#include "sim/types.hh"

namespace specrt
{

/**
 * Line data payload: inline up to 64 bytes (the default line size),
 * heap-backed only for exotic configurations with larger lines.
 */
using MsgData = SmallVec<uint8_t, 64>;

/**
 * Speculation-bits payload: one word per element of a line (16 with
 * 64-byte lines and 4-byte elements), or a single word for
 * element-granularity signals. Inline in the common case.
 */
using MsgBits = SmallVec<uint32_t, 16>;

/** All message kinds in the system. */
enum class MsgType : uint8_t
{
    // --- base DASH-like protocol, cache -> home ---
    ReadReq,       ///< read miss
    WriteReq,      ///< write miss or upgrade
    Writeback,     ///< eviction of a dirty line (carries data)

    // --- home -> cache ---
    ReadReply,     ///< data for a read (shared)
    WriteReply,    ///< data + ownership for a write
    Inval,         ///< invalidate a shared copy
    WritebackAck,  ///< home accepted (or superseded) a writeback

    // --- home -> owner (forwards) ---
    ReadFwd,       ///< get data for a remote reader, downgrade
    WriteFwd,      ///< give data + ownership to a remote writer

    // --- owner -> home (transaction completion legs) ---
    ShareWb,       ///< sharing writeback after ReadFwd (carries data)
    OwnXfer,       ///< ownership transfer notice after WriteFwd

    // --- cache -> home ---
    InvalAck,      ///< invalidation acknowledged

    // --- speculation: non-privatization algorithm ---
    FirstUpdate,     ///< cache set tag.First=OWN on a clean read hit
    ROnlyUpdate,     ///< cache set tag.ROnly on a clean read hit
    FirstUpdateFail, ///< home bounced a FirstUpdate (race, Fig. 7(g))

    // --- speculation: privatization algorithm ---
    ReadFirstSig,    ///< private dir -> shared dir (Fig. 8(b,d))
    FirstWriteSig,   ///< private dir -> shared dir (Fig. 9(g,i))
    ReadInReq,       ///< private dir -> shared dir, wants line data
    ReadInReply,     ///< shared dir -> private dir, line data
    CopyOutSig,      ///< last-value copy-out to the shared array
};

/** Name of a message type. */
const char *msgTypeName(MsgType t);

/** True for messages processed by a home directory. */
bool msgToHome(MsgType t);

/**
 * One message. A plain value type; the network copies it around.
 *
 * Word-granularity speculation state travels in specBits: one entry
 * per word of the line for line-carrying messages, or a single entry
 * for element-granularity spec messages. The encoding is owned by the
 * spec layer (mem/ treats it as opaque payload).
 */
struct Msg
{
    MsgType type;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /** Line-aligned address of the line this message concerns. */
    Addr lineAddr = invalidAddr;
    /** Element address for element-granularity spec messages. */
    Addr elemAddr = invalidAddr;

    /** Requester on whose behalf a forward travels. */
    NodeId requester = invalidNode;

    /** Line data for data-carrying messages. */
    MsgData data;

    /** Opaque per-word speculation state (see spec/access_bits.hh). */
    MsgBits specBits;

    /** Iteration number of the access (privatization algorithm). */
    IterNum iter = 0;

    /**
     * Requester-side transaction sequence number for ReadReq/WriteReq
     * and every reply generated on their behalf (echoed through
     * forwards). The requester uses it to discard stale replies that
     * race with watchdog retries; 0 means "no sequence" (messages
     * outside a requester transaction).
     */
    uint64_t txnSeq = 0;

    /** For ShareWb: whether the previous owner kept a shared copy. */
    bool ownerRetains = false;

    /** For WriteReq: requester already holds a shared copy. */
    bool isUpgrade = false;

    /** For ReadInReq/ReadInReply: the read-in serves a write. */
    bool forWrite = false;

    /** For CopyOutSig: the value written in iteration `iter`. */
    uint64_t value = 0;
};

} // namespace specrt

#endif // SPECRT_MEM_MSG_HH
