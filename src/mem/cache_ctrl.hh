/**
 * @file
 * Per-node cache controller: two-level cache, write buffer,
 * writeback buffer, and the cache side of the DASH-like protocol.
 *
 * Processor-visible semantics follow the paper's machine model:
 * loads block until data returns; stores retire into a write buffer
 * and the processor does not stall on write misses (it only stalls
 * when the buffer is full). The speculation unit (spec/) is invoked
 * at the access points of section 4.2: on cache hits, on fills, and
 * when dirty lines leave the cache.
 */

#ifndef SPECRT_MEM_CACHE_CTRL_HH
#define SPECRT_MEM_CACHE_CTRL_HH

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "mem/spec_iface.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/small_function.hh"
#include "sim/stats.hh"

namespace specrt
{

/** The cache controller of one node. */
class CacheCtrl : public StatGroup
{
  public:
    /**
     * Load-completion callback. A small-buffer type: the processor's
     * completion captures ~20 bytes, which overflows std::function's
     * 16-byte SBO and cost one heap allocation per load. The 40-byte
     * inline buffer keeps sizeof(LoadDone) at 56, so the hit path's
     * continuation (LoadDone + loaded value = 64 bytes) still fits
     * inside the event queue's 80-byte SmallFunction buffer.
     */
    using LoadDone = SmallCallback<void(uint64_t), 40>;
    using Notice = std::function<void()>;
    /** Fired when a transaction exhausts its watchdog retries. */
    using LostHook = std::function<void(NodeId, Addr, const char *)>;

    CacheCtrl(NodeId node, EventQueue &eq, Network &net, AddrMap &mem,
              const MachineConfig &config);

    /** Attach the speculation hardware (may be null). */
    void setSpecUnit(SpecCacheIface *unit) { spec = unit; }

    /**
     * Issue a blocking load of @p size bytes at @p addr.
     * @p done fires (with the value) once the data is available;
     * the full access latency has elapsed by then. At most one load
     * may be outstanding (the modeled processor blocks on loads).
     */
    void load(Addr addr, uint32_t size, IterNum iter, LoadDone done);

    /**
     * Enqueue a store into the write buffer.
     * @return false if the buffer is full (caller stalls and retries
     * after a slot-free notice).
     */
    bool store(Addr addr, uint32_t size, uint64_t value, IterNum iter);

    /** Invoked every time a write-buffer entry retires. */
    void setSlotFreeNotice(Notice n) { slotFreeNotice = std::move(n); }

    /**
     * One-shot notice when the write buffer is empty and no store
     * transaction is in flight (used at iteration boundaries).
     */
    void requestDrainNotice(Notice n);

    /** Network entry point. */
    void handle(const Msg &msg);

    /**
     * Install the lost-transaction hook (graceful degradation).
     * Without one, watchdog exhaustion panics.
     */
    void setLostHook(LostHook h) { lostHook = std::move(h); }

    /**
     * Run-boundary flush. Dirty lines are either committed straight
     * into the backing store (@p commit_dirty) or discarded (aborted
     * speculative run). All transaction state must be quiescent.
     */
    void reset(bool commit_dirty);

    /** True when no load/store/writeback activity is in flight. */
    bool quiescent() const;

    /**
     * True when this controller has any in-flight activity touching
     * @p line: an outstanding load/store transaction, a buffered
     * write to it, a buffered writeback, or a parked forward. The
     * per-delivery invariant checker skips such lines -- their cache
     * tags and home state legitimately disagree mid-transaction.
     */
    bool lineBusy(Addr line) const;

    NodeCache &cacheArray() { return cache; }
    NodeId nodeId() const { return node; }

  private:
    struct WbEntry
    {
        Addr addr;
        uint32_t size;
        uint64_t value;
        IterNum iter;
    };

    struct LoadTxn
    {
        Addr line;
        Addr elem;
        uint32_t size;
        IterNum iter;
        LoadDone done;
        bool invalPending = false;
        /** Sequence echoed by every reply of this transaction. */
        uint64_t seq = 0;
        /** Watchdog retries already performed. */
        int attempts = 0;
        EventId watchdog = invalidEventId;
    };

    struct WbBufEntry
    {
        MsgData data;
        MsgBits bits;
    };

    struct BlockedLoad
    {
        Addr addr;
        uint32_t size;
        IterNum iter;
        LoadDone done;
    };

    Addr lineOf(Addr a) const { return cache.lineAlign(a); }
    NodeId homeOf(Addr a) const { return mem.homeOf(a); }

    bool wbHasLine(Addr line) const;
    void scheduleDrain();
    void drainHead();
    void retireHead();
    void popHead();

    void onReadReply(const Msg &msg);
    void onWriteReply(const Msg &msg);
    void onInval(const Msg &msg);
    void onFwd(const Msg &msg);
    void serveFwd(const Msg &msg);
    void onWritebackAck(const Msg &msg);

    /** (Re)issue the request of the outstanding load transaction. */
    void sendLoadReq(Cycles extra_delay);
    /** (Re)issue the request of the outstanding store transaction. */
    void sendStoreReq(Cycles extra_delay);
    /** Arm the transaction watchdog (no-op when disabled). */
    EventId armWatchdog(bool is_load, uint64_t seq, int attempt);
    void onWatchdog(bool is_load, uint64_t seq);
    void txnLost(Addr elem, const char *what);

    /**
     * A WriteReply granted ownership nobody is waiting for (a
     * watchdog retry raced with the original grant). The line data
     * may exist nowhere else: buffer it and write it straight back
     * so home and memory converge, then serve any parked forwards.
     */
    void disownGrant(const Msg &msg);

    /**
     * Install a line; handles victim eviction (writeback of dirty
     * victims) and spec-bit installation + local application of the
     * triggering access.
     */
    void fillLine(const Msg &reply, LineState state, bool is_write);

    void evictDirty(const CacheLine &victim);

    void unblockLoads(Addr line);
    void maybeFireDrainNotice();

    NodeId node;
    EventQueue &eq;
    Network &net;
    AddrMap &mem;
    const MachineConfig &cfg;
    SpecCacheIface *spec = nullptr;

    NodeCache cache;

    std::deque<WbEntry> wb;
    bool storeTxnActive = false;
    Addr storeTxnLine = invalidAddr;
    uint64_t storeTxnSeq = 0;
    int storeAttempts = 0;
    EventId storeWatchdog = invalidEventId;
    bool drainScheduled = false;

    /** Per-node transaction sequence numbers (never reused). */
    uint64_t seqCounter = 1;
    /** Duplicates/strays tolerated instead of asserted. */
    bool lenient = false;
    LostHook lostHook;

    std::optional<LoadTxn> loadTxn;
    std::vector<BlockedLoad> blockedLoads;

    std::unordered_map<Addr, std::deque<WbBufEntry>> wbBuf;
    std::unordered_map<Addr, std::vector<Msg>> parkedFwds;

    Notice slotFreeNotice;
    std::vector<Notice> drainNotices;

  public:
    Scalar l1Hits;
    Scalar l2Hits;
    Scalar misses;
    Scalar storeHits;
    Scalar storeMisses;
    Scalar writebacks;
    Scalar wbFullStalls;
    Scalar watchdogFires;
    Scalar msgsRetried;
    Scalar strayMsgs;
    Scalar disownedGrants;
    Scalar txnsLost;
};

} // namespace specrt

#endif // SPECRT_MEM_CACHE_CTRL_HH
