/**
 * @file
 * Interfaces through which the base coherence machinery calls into
 * the speculative-parallelization hardware (implemented in spec/).
 *
 * The hooks mirror the integration points of the paper's design
 * (section 4.2): the cache's Access Bit Array + Test Logic is
 * consulted on every processor access that touches the cache, and
 * the directory's Translation Table + Access Bit Table is consulted
 * while the home serializes each transaction. A null interface means
 * "plain machine, no speculation hardware".
 */

#ifndef SPECRT_MEM_SPEC_IFACE_HH
#define SPECRT_MEM_SPEC_IFACE_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/msg.hh"
#include "sim/types.hh"

namespace specrt
{

/**
 * Cache-side speculation unit of one node (access bit array + test
 * logic beside the L1/L2 tags).
 */
class SpecCacheIface
{
  public:
    virtual ~SpecCacheIface() = default;

    /**
     * Processor load that hit in this node's cache.
     * May update tag access bits and send update messages; may FAIL.
     */
    virtual void onLoadHit(Addr addr, LineState state, IterNum iter) = 0;

    /**
     * Processor store performed directly in the cache (line Dirty).
     * Clean-hit and missing stores reach the home as WriteReq and are
     * checked there instead.
     */
    virtual void onStoreDirtyHit(Addr addr, IterNum iter) = 0;

    /**
     * A line was filled after a miss. Install the access bits that
     * came with the data, then apply the triggering access locally
     * (idempotent when the home already accounted for it; needed
     * when the bits came from the old owner's tags via a forward).
     *
     * @param line_addr line-aligned address
     * @param bits      access bits attached to the reply (may be
     *                  empty for plain data)
     * @param elem_addr address of the access that missed
     * @param is_write  whether that access was a store
     * @param iter      its iteration number
     */
    virtual void onFill(Addr line_addr, const MsgBits &bits,
                        Addr elem_addr, bool is_write, IterNum iter) = 0;

    /**
     * A dirty line is leaving the cache (writeback or forward reply);
     * harvest the tag access bits to ship to the home.
     */
    virtual MsgBits onDirtyOut(Addr line_addr) = 0;

    /**
     * Combine an owner's harvested tag bits with the home's
     * directory bits (attached to a forward). The owner's 2-bit tag
     * view cannot name the first accessor; the home's view can, and
     * the two views are together exact (while a line is dirty, only
     * its owner can change the bits). The result is shipped to the
     * requester and back to the home.
     */
    virtual MsgBits combineBits(Addr line_addr,
                                const MsgBits &owner_bits,
                                const MsgBits &home_bits) = 0;

    /** The line was invalidated; drop its tag bits. */
    virtual void onInval(Addr line_addr) = 0;

    /** Element-granularity spec message (e.g.\ FirstUpdateFail). */
    virtual void onMsg(const Msg &msg) = 0;
};

/** What a directory-side hook tells the protocol engine to do. */
enum class SpecDirAction
{
    /** Continue the base transaction normally. */
    Proceed,
    /**
     * The spec unit started a nested transaction (e.g.\ a read-in to
     * the shared array); the engine parks the request and continues
     * when the unit calls DirCtrl::resumeDeferred().
     */
    Defer,
};

/**
 * Directory-side speculation unit of one home node (translation
 * table + access bit table + test logic beside the directory).
 */
class SpecDirIface
{
  public:
    virtual ~SpecDirIface() = default;

    /** Home is processing a read request (Fig. 6(b) / Fig. 8(c)). */
    virtual SpecDirAction onReadReq(const Msg &req) = 0;

    /** Home is processing a write request (Fig. 6(d) / Fig. 9(h)). */
    virtual SpecDirAction onWriteReq(const Msg &req) = 0;

    /**
     * Access bits to attach to a data reply for @p line_addr going to
     * @p requester ("copy dir state to tag state for all the words in
     * the line").
     */
    virtual MsgBits collectFillBits(NodeId requester, Addr line_addr,
                                    IterNum iter) = 0;

    /**
     * Dirty-line access bits arriving with a Writeback / ShareWb /
     * OwnXfer ("update directory using the tag state of all the words
     * of the dirty line").
     */
    virtual void onDirtyBits(NodeId from, Addr line_addr,
                             const MsgBits &bits) = 0;

    /**
     * Element-granularity spec message addressed to this directory
     * (FirstUpdate, ROnlyUpdate, ReadFirstSig, FirstWriteSig,
     * ReadInReq, ReadInReply, CopyOutSig).
     */
    virtual void onMsg(const Msg &msg) = 0;
};

} // namespace specrt

#endif // SPECRT_MEM_SPEC_IFACE_HH
