#include "mem/msg.hh"

namespace specrt
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:         return "ReadReq";
      case MsgType::WriteReq:        return "WriteReq";
      case MsgType::Writeback:       return "Writeback";
      case MsgType::ReadReply:       return "ReadReply";
      case MsgType::WriteReply:      return "WriteReply";
      case MsgType::Inval:           return "Inval";
      case MsgType::WritebackAck:    return "WritebackAck";
      case MsgType::ReadFwd:         return "ReadFwd";
      case MsgType::WriteFwd:        return "WriteFwd";
      case MsgType::ShareWb:         return "ShareWb";
      case MsgType::OwnXfer:         return "OwnXfer";
      case MsgType::InvalAck:        return "InvalAck";
      case MsgType::FirstUpdate:     return "FirstUpdate";
      case MsgType::ROnlyUpdate:     return "ROnlyUpdate";
      case MsgType::FirstUpdateFail: return "FirstUpdateFail";
      case MsgType::ReadFirstSig:    return "ReadFirstSig";
      case MsgType::FirstWriteSig:   return "FirstWriteSig";
      case MsgType::ReadInReq:       return "ReadInReq";
      case MsgType::ReadInReply:     return "ReadInReply";
      case MsgType::CopyOutSig:      return "CopyOutSig";
    }
    return "Unknown";
}

bool
msgToHome(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::WriteReq:
      case MsgType::Writeback:
      case MsgType::FirstUpdate:
      case MsgType::ROnlyUpdate:
      case MsgType::ReadFirstSig:
      case MsgType::FirstWriteSig:
      case MsgType::ReadInReq:
      case MsgType::CopyOutSig:
        return true;
      default:
        return false;
    }
}

} // namespace specrt
