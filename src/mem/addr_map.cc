#include "mem/addr_map.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace specrt
{

AddrMap::AddrMap(const MachineConfig &config)
    : _pageBytes(config.pageBytes),
      _numProcs(config.numProcs),
      nextBase(config.pageBytes) // leave page 0 unmapped
{
}

int
AddrMap::alloc(const std::string &name, uint64_t bytes,
               uint32_t elem_bytes, Placement placement, NodeId node)
{
    SPECRT_ASSERT(bytes > 0, "empty region '%s'", name.c_str());
    SPECRT_ASSERT(elem_bytes > 0 && elem_bytes <= 8,
                  "bad element width %u", elem_bytes);
    SPECRT_ASSERT(node >= 0 && node < _numProcs,
                  "bad node %d for region '%s'", node, name.c_str());

    uint64_t rounded = (bytes + _pageBytes - 1) & ~uint64_t(_pageBytes - 1);

    Region r;
    r.name = name;
    r.base = nextBase;
    r.bytes = bytes;
    r.elemBytes = elem_bytes;
    r.elems = bytes / elem_bytes;
    r.placement = placement;
    r.node = node;
    nextBase += rounded;

    regions.push_back(r);
    backing.emplace_back(rounded, 0);
    bases.push_back(r.base);
    return static_cast<int>(regions.size()) - 1;
}

void
AddrMap::clear()
{
    regions.clear();
    backing.clear();
    bases.clear();
    mru = 0;
    nextBase = _pageBytes;
}

int
AddrMap::lookup(Addr addr) const
{
    if (mru < regions.size() && regions[mru].contains(addr))
        return static_cast<int>(mru);
    // Regions are allocated in ascending address order.
    auto it = std::upper_bound(bases.begin(), bases.end(), addr);
    if (it == bases.begin())
        return -1;
    size_t idx = static_cast<size_t>(it - bases.begin()) - 1;
    if (!regions[idx].contains(addr))
        return -1;
    mru = static_cast<uint32_t>(idx);
    return static_cast<int>(idx);
}

const Region *
AddrMap::find(Addr addr) const
{
    int idx = lookup(addr);
    return idx < 0 ? nullptr : &regions[idx];
}

NodeId
AddrMap::homeOf(Addr addr) const
{
    const Region *r = find(addr);
    SPECRT_ASSERT(r, "homeOf(unmapped addr %#llx)",
                  (unsigned long long)addr);
    if (r->placement == Placement::Fixed)
        return r->node;
    uint64_t page = (addr - r->base) / _pageBytes;
    return static_cast<NodeId>((r->node + page) % _numProcs);
}

uint8_t *
AddrMap::backingPtr(Addr addr, uint32_t span)
{
    return const_cast<uint8_t *>(
        static_cast<const AddrMap *>(this)->backingPtr(addr, span));
}

const uint8_t *
AddrMap::backingPtr(Addr addr, uint32_t span) const
{
    int idx = lookup(addr);
    SPECRT_ASSERT(idx >= 0, "access to unmapped addr %#llx",
                  (unsigned long long)addr);
    const Region &r = regions[idx];
    uint64_t off = addr - r.base;
    SPECRT_ASSERT(off + span <= backing[idx].size(),
                  "access past end of region '%s'", r.name.c_str());
    return backing[idx].data() + off;
}

uint64_t
AddrMap::read(Addr addr, uint32_t size) const
{
    SPECRT_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    uint64_t value = 0;
    std::memcpy(&value, backingPtr(addr, size), size);
    return value;
}

void
AddrMap::write(Addr addr, uint32_t size, uint64_t value)
{
    SPECRT_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    std::memcpy(backingPtr(addr, size), &value, size);
}

void
AddrMap::readLine(Addr line_addr, uint8_t *out, uint32_t bytes) const
{
    std::memcpy(out, backingPtr(line_addr, bytes), bytes);
}

void
AddrMap::writeLine(Addr line_addr, const uint8_t *data, uint32_t bytes)
{
    std::memcpy(backingPtr(line_addr, bytes), data, bytes);
}

void
AddrMap::copyBytes(Addr src, Addr dst, uint64_t bytes)
{
    if (bytes == 0)
        return;
    const uint8_t *s = backingPtr(src, static_cast<uint32_t>(
        std::min<uint64_t>(bytes, 1)));
    uint8_t *d = backingPtr(dst, static_cast<uint32_t>(
        std::min<uint64_t>(bytes, 1)));
    // Validate the far ends too, then copy in one shot.
    backingPtr(src + bytes - 1, 1);
    backingPtr(dst + bytes - 1, 1);
    std::memcpy(d, s, bytes);
}

} // namespace specrt
