/**
 * @file
 * Direct-mapped cache arrays for one node.
 *
 * The node-visible coherence state and the line data live in the L2
 * array (the node's copy exists once). The L1 array is a tag-only
 * presence filter used for latency: an address "hits in L1" when the
 * L1 set holds its tag AND the L2 holds the line (inclusion). L2
 * evictions invalidate any matching L1 entry.
 */

#ifndef SPECRT_MEM_CACHE_HH
#define SPECRT_MEM_CACHE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/config.hh"
#include "sim/small_vec.hh"
#include "sim/types.hh"

namespace specrt
{

/** Node-level coherence state of a line. */
enum class LineState : uint8_t
{
    Invalid,
    Shared,  ///< clean, possibly multiple nodes
    Dirty,   ///< exclusive modified, memory stale
};

const char *lineStateName(LineState s);

/**
 * One L2 line: coherence state + real data bytes. The data payload
 * lives inline for the default 64-byte lines (a machine builds tens
 * of thousands of lines per run; per-line heap vectors dominated
 * construction cost).
 */
struct CacheLine
{
    Addr addr = invalidAddr;      ///< line-aligned address
    LineState state = LineState::Invalid;
    SmallVec<uint8_t, 64> data;

    bool valid() const { return state != LineState::Invalid; }
};

/**
 * The two-level cache structure of one node.
 */
class NodeCache
{
  public:
    NodeCache(const MachineConfig &config);

    uint32_t lineBytes() const { return _lineBytes; }
    uint64_t numL2Lines() const { return l2.size(); }

    Addr lineAlign(Addr a) const { return a & ~Addr(_lineBytes - 1); }

    /**
     * L2 set index for an address. Geometry is power-of-two
     * (config.validate() enforces it), so indexing is shift+mask --
     * these sit on the per-access hot path, where the division the
     * obvious formula implies is measurable.
     */
    uint64_t l2Index(Addr a) const { return (a >> _lineShift) & _l2Mask; }

    /** L1 set index for an address. */
    uint64_t l1Index(Addr a) const { return (a >> _lineShift) & _l1Mask; }

    /** The L2 line currently occupying the set of @p a (any tag). */
    CacheLine &l2Slot(Addr a) { return l2[l2Index(a)]; }
    const CacheLine &l2Slot(Addr a) const { return l2[l2Index(a)]; }

    /** The L2 line holding @p a, or nullptr if not present.
     *  Header-inline: this is the single hottest memory-system call
     *  (once per load/store/invalidate/fill). */
    CacheLine *
    findLine(Addr a)
    {
        CacheLine &slot = l2Slot(a);
        return (slot.valid() && slot.addr == lineAlign(a)) ? &slot
                                                           : nullptr;
    }
    const CacheLine *
    findLine(Addr a) const
    {
        const CacheLine &slot = l2Slot(a);
        return (slot.valid() && slot.addr == lineAlign(a)) ? &slot
                                                           : nullptr;
    }

    /** True if @p a hits in the L1 filter (implies L2 presence). */
    bool l1Hit(Addr a) const;

    /**
     * True if the L1 filter holds @p a's tag (no L2 presence check).
     * For callers that already resolved the L2 line and want to
     * avoid a second lookup: l1Hit(a) == l1TagHit(a) && findLine(a).
     */
    bool
    l1TagHit(Addr a) const
    {
        return l1Tags[l1Index(a)] == lineAlign(a);
    }

    /** Install @p a in the L1 filter (possibly displacing a tag). */
    void l1Fill(Addr a);

    /** Remove @p a from the L1 filter if present. */
    void l1Evict(Addr a);

    /**
     * Install a line in L2 (and L1). The previous occupant of the
     * set, if valid and of a different tag, is returned through
     * @p victim (state is copied out before being overwritten).
     *
     * @return true if a valid victim (different line) was displaced.
     */
    bool fill(Addr line_addr, LineState state, const uint8_t *data,
              CacheLine *victim);

    /** Drop @p a from both levels (invalidation). No writeback. */
    void invalidate(Addr a);

    /** Invalidate everything (the paper flushes caches between runs).
     *  Dirty lines are appended to @p victims for writeback. */
    void flushAll(std::vector<CacheLine> *victims);

    /** Every L2 slot, valid or not (invariant checker iteration). */
    const std::vector<CacheLine> &l2Lines() const { return l2; }

    /** Read a word out of a present line. */
    uint64_t readWord(Addr a, uint32_t size) const;

    /** Write a word into a present line (caller manages state). */
    void writeWord(Addr a, uint32_t size, uint64_t value);

    /** Read a word out of an already-resolved line. */
    static uint64_t
    readWordIn(const CacheLine &line, Addr a, uint32_t size)
    {
        uint64_t value = 0;
        std::memcpy(&value, line.data.data() + (a - line.addr), size);
        return value;
    }

    /** Write a word into an already-resolved line. */
    static void
    writeWordIn(CacheLine &line, Addr a, uint32_t size, uint64_t value)
    {
        std::memcpy(line.data.data() + (a - line.addr), &value, size);
    }

  private:
    uint32_t _lineBytes;
    uint32_t _lineShift;
    uint64_t _l2Mask;
    uint64_t _l1Mask;
    std::vector<CacheLine> l2;
    /** L1 filter: line-aligned address or invalidAddr, per set. */
    std::vector<Addr> l1Tags;
};

} // namespace specrt

#endif // SPECRT_MEM_CACHE_HH
