/**
 * @file
 * Home-node directory controller: a DASH-like invalidation protocol
 * engine with the paper's speculative-parallelization hooks.
 *
 * All transactions touching a line are serialized here, one at a
 * time, exactly as the paper requires ("the transactions added to
 * the cache coherence protocol are designed so that they are all
 * serialized in the directory"). A transaction runs to completion --
 * including remote legs (owner forwards, invalidation acks, nested
 * read-ins) -- before the next queued request for that line starts.
 *
 * Dirty lines are served by forwarding: the home sends the owner a
 * ReadFwd/WriteFwd; the owner replies directly to the requester
 * (giving the 3-hop latency of section 5.1) and sends the line +
 * its access bits back to the home (ShareWb / OwnXfer), at which
 * point the home merges the bits and runs the speculation check of
 * Figs. 6(b)/6(d) with exactly the paper's merge-then-test order.
 */

#ifndef SPECRT_MEM_DIR_CTRL_HH
#define SPECRT_MEM_DIR_CTRL_HH

#include <functional>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "mem/spec_iface.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace specrt
{

/** The directory controller of one home node. */
class DirCtrl : public StatGroup
{
  public:
    DirCtrl(NodeId node, EventQueue &eq, Network &net, AddrMap &mem,
            const MachineConfig &config);

    /** Attach the speculation hardware (may be null: plain machine). */
    void setSpecUnit(SpecDirIface *unit) { spec = unit; }

    /** Network entry point. */
    void handle(const Msg &msg);

    /**
     * Continue a transaction a spec unit previously deferred
     * (read-in finished). Runs the base protocol action now.
     */
    void resumeDeferred(Addr line_addr);

    /** Drop all transaction + directory state (run boundary). */
    void reset();

    Directory &directory() { return dir; }
    NodeId nodeId() const { return node; }

    /** Transactions fully processed. */
    uint64_t numTxns() const { return static_cast<uint64_t>(txns.value()); }

    /** In-flight serialized transactions (quiesce check). */
    size_t numActiveTxns() const { return active.size(); }

    /**
     * True when @p line has an active transaction or queued requests
     * at this home (per-delivery invariant checker: cache tags and
     * directory state legitimately diverge mid-transaction).
     */
    bool
    lineBusy(Addr line) const
    {
        if (findActive(line))
            return true;
        for (const Msg &m : waiting) {
            if (m.lineAddr == line)
                return true;
        }
        return false;
    }
    /** Requests queued behind an active transaction. */
    size_t numQueuedReqs() const { return waiting.size(); }

  private:
    struct Txn
    {
        Addr line = invalidAddr;
        Msg req;
        /** Per-node bitmask of invalidation acks still outstanding
         *  (a mask, not a count, so duplicate acks dedup cleanly). */
        uint64_t ackWait = 0;
        bool deferred = false;
        /** Waiting for ShareWb/OwnXfer from the old owner. */
        bool awaitingOwner = false;
    };

    /** True if this message type opens a new serialized transaction. */
    static bool startsTxn(MsgType t);

    void enqueue(const Msg &msg);
    /**
     * Open a serialized transaction for @p msg and schedule it.
     * @p enq_tick is when the request first reached this home
     * (queue wait is attributed from there).
     */
    void beginTxn(const Msg &msg, Tick enq_tick);
    /** Start the next queued request for @p line, if any. */
    void tryStart(Addr line);
    /** Scheduled entry point: run the active transaction's request. */
    void runTxn(Addr line);
    /** Begin processing @p msg (line marked busy). */
    void process(const Msg &msg);
    /** Base protocol action for ReadReq/WriteReq (after spec hook). */
    void processBase(const Msg &req);
    void processWriteback(const Msg &msg);
    void processSpecMsg(const Msg &msg);

    void onShareWb(const Msg &msg);
    void onOwnXfer(const Msg &msg);
    void onInvalAck(const Msg &msg);

    /** Send a data reply (ReadReply/WriteReply) out of memory. */
    void replyFromMemory(const Msg &req, bool write, Cycles delay);

    void finishTxn(Addr line);

    Txn *findActive(Addr line);
    const Txn *findActive(Addr line) const;

    /** Occupancy: processing start time for a new transaction. */
    Tick claimController();

    NodeId node;
    EventQueue &eq;
    Network &net;
    AddrMap &mem;
    const MachineConfig &cfg;
    SpecDirIface *spec = nullptr;

    Directory dir;
    /**
     * In-flight serialized transactions and the requests queued
     * behind them. Flat vectors, not maps: both sets are tiny (one
     * txn per contended line, queues bounded by the requesters), so
     * a linear scan beats hash-node churn, and the capacity is
     * reused forever -- no allocation per transaction.
     */
    std::vector<Txn> active;
    std::vector<Msg> waiting;
    /** Arrival tick of each waiting[] request (parallel vector). */
    std::vector<Tick> waitingSince;
    Tick nextFree = 0;
    /** Duplicates/strays tolerated instead of asserted. */
    bool lenient = false;

    Scalar txns;
    Scalar fwds;
    Scalar invalsSent;
    Scalar queuedCycles;

  public:
    Scalar dupRequests;
    Scalar strayMsgs;
};

} // namespace specrt

#endif // SPECRT_MEM_DIR_CTRL_HH
