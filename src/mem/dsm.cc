#include "mem/dsm.hh"

#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace specrt
{

DsmSystem::DsmSystem(const MachineConfig &config)
    : StatGroup("system"), cfg(config), mem(config)
{
    cfg.validate();
    if (cfg.numProcs > 64)
        fatal("DsmSystem supports at most 64 nodes (full-map "
              "directory presence bits)");

    // Schedule exploration: a controller parked in the ambient
    // SimContext takes effect on every machine built under it, so
    // the explorer can steer runs whose machine is constructed deep
    // inside a driver (LoopExecutor::run() builds its own DsmSystem).
    if (ScheduleController *sc =
            SimContext::current().scheduleController)
        eq.setScheduleController(sc);

    faults = std::make_unique<FaultPlan>(cfg.fault);
    addChild(faults.get());
    net = std::make_unique<Network>(eq, cfg);
    net->setFaultPlan(faults.get());
    addChild(net.get());
    arenaStats = std::make_unique<ArenaStats>(
        SimContext::current().msgArena());
    addChild(arenaStats.get());

    caches.reserve(cfg.numProcs);
    dirs.reserve(cfg.numProcs);
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        caches.push_back(
            std::make_unique<CacheCtrl>(n, eq, *net, mem, cfg));
        dirs.push_back(
            std::make_unique<DirCtrl>(n, eq, *net, mem, cfg));
        addChild(caches.back().get());
        addChild(dirs.back().get());

        CacheCtrl *cc = caches.back().get();
        DirCtrl *dc = dirs.back().get();
        net->setCacheHandler(n, [cc](const Msg &m) { cc->handle(m); });
        net->setDirHandler(n, [dc](const Msg &m) { dc->handle(m); });
    }
}

void
DsmSystem::setTxnLostHook(std::function<void(const char *)> hook)
{
    net->setLostHook(
        [hook](const Msg &, const char *what) { hook(what); });
    for (auto &cc : caches) {
        cc->setLostHook(
            [hook](NodeId, Addr, const char *what) { hook(what); });
    }
}

void
DsmSystem::resetMachine(bool commit_dirty)
{
    // The event-queue reset discards in-flight deliveries, pending
    // retransmissions, and armed watchdog timers wholesale; the
    // network and cache resets then drop the matching bookkeeping
    // (channel FIFO floors, retransmit counts, watchdog handles).
    eq.reset();
    net->reset();
    for (auto &cc : caches)
        cc->reset(commit_dirty);
    for (auto &dc : dirs)
        dc->reset();
}

bool
DsmSystem::quiescent() const
{
    for (const auto &cc : caches) {
        if (!cc->quiescent())
            return false;
    }
    return true;
}

} // namespace specrt
