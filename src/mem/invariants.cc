#include "mem/invariants.hh"

#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "spec/spec_unit.hh"

namespace specrt
{

namespace
{

std::string
hexAddr(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%#llx", (unsigned long long)a);
    return buf;
}

} // namespace

InvariantChecker::InvariantChecker(DsmSystem &dsm_)
    : StatGroup("invariants"),
      violations(this, "invariant_violations",
                 "protocol invariant violations detected"),
      checks(this, "invariant_checks", "full invariant passes run"),
      dsm(dsm_)
{
}

void
InvariantChecker::report(const char *invariant, std::string detail)
{
    ++violations;
    ++foundThisCall;
    ProtocolViolation v{invariant, std::move(detail)};
    if (handler) {
        handler(v);
        return;
    }
    warn("protocol invariant %s violated: %s", v.invariant.c_str(),
         v.detail.c_str());
}

void
InvariantChecker::newRun()
{
    npBase.clear();
    psBase.clear();
    ppBase.clear();
}

size_t
InvariantChecker::checkAll(Granularity g)
{
    ++checks;
    size_t n = 0;
    n += checkCoherence(g);
    n += checkSpecBits(g);
    if (g == Granularity::Quiesce)
        n += checkQuiesced();
    return n;
}

bool
InvariantChecker::lineInFlight(Addr line) const
{
    NodeId home = dsm.memory().homeOf(line);
    if (dsm.dirCtrl(home).lineBusy(line))
        return true;
    const int procs = dsm.numProcs();
    for (NodeId n = 0; n < procs; ++n) {
        if (dsm.cacheCtrl(n).lineBusy(line))
            return true;
    }
    return false;
}

size_t
InvariantChecker::checkCoherence(Granularity g)
{
    foundThisCall = 0;
    const int procs = dsm.numProcs();
    const bool midFlight = g == Granularity::Delivery;

    struct Holder
    {
        NodeId node;
        const CacheLine *line;
    };
    std::unordered_map<Addr, std::vector<Holder>> holders;
    for (NodeId n = 0; n < procs; ++n) {
        for (const CacheLine &cl :
             dsm.cacheCtrl(n).cacheArray().l2Lines()) {
            if (cl.valid())
                holders[cl.addr].push_back({n, &cl});
        }
    }

    std::vector<uint8_t> memData;
    for (const auto &[addr, hs] : holders) {
        if (!dsm.memory().find(addr)) {
            report("line-mapped",
                   "cached line " + hexAddr(addr) + " is unmapped");
            continue;
        }
        if (midFlight && lineInFlight(addr))
            continue;
        NodeId home = dsm.memory().homeOf(addr);
        const DirEntry *e = dsm.dirCtrl(home).directory().find(addr);
        DirState ds = e ? e->state : DirState::Uncached;

        for (const Holder &h : hs) {
            std::string where = "line " + hexAddr(addr) + " at node " +
                                std::to_string(h.node);
            if (h.line->state == LineState::Dirty) {
                if (ds != DirState::Dirty || e->owner != h.node)
                    report("dirty-owner",
                           where + " is Dirty but home " +
                               std::to_string(home) + " has it " +
                               dirStateName(ds));
                if (hs.size() != 1)
                    report("dirty-single-owner",
                           where + " is Dirty but " +
                               std::to_string(hs.size()) +
                               " nodes cache the line");
            } else {
                if (ds != DirState::Shared) {
                    report("shared-dir-state",
                           where + " is Shared but home " +
                               std::to_string(home) + " has it " +
                               dirStateName(ds));
                } else if (!e->isSharer(h.node)) {
                    report("shared-presence",
                           where + " is Shared but its presence bit "
                                   "is clear at home");
                } else {
                    uint32_t bytes =
                        static_cast<uint32_t>(h.line->data.size());
                    memData.resize(bytes);
                    dsm.memory().readLine(addr, memData.data(), bytes);
                    if (bytes != h.line->data.size() ||
                        std::memcmp(memData.data(),
                                    h.line->data.data(), bytes) != 0)
                        report("shared-data",
                               where + " (clean) differs from memory");
                }
            }
        }
    }

    for (NodeId home = 0; home < procs; ++home) {
        dsm.dirCtrl(home).directory().forEach([&](Addr addr,
                                                  const DirEntry &e) {
            if (midFlight && lineInFlight(addr))
                return;
            std::string where =
                "dir entry " + hexAddr(addr) + " at home " +
                std::to_string(home);
            if (e.state == DirState::Dirty) {
                if (e.owner < 0 || e.owner >= procs) {
                    report("dirty-owner-valid",
                           where + " is Dirty with bad owner " +
                               std::to_string(e.owner));
                    return;
                }
                if (e.sharers != 0)
                    report("dirty-no-sharers",
                           where + " is Dirty with presence bits set");
                const CacheLine *cl = dsm.cacheCtrl(e.owner)
                                          .cacheArray()
                                          .findLine(addr);
                if (!cl || cl->state != LineState::Dirty)
                    report("dirty-owner-caches",
                           where + " names owner " +
                               std::to_string(e.owner) +
                               " which does not hold the line Dirty");
            } else if (e.state == DirState::Shared) {
                if (procs < 64 &&
                    (e.sharers >> procs) != 0)
                    report("sharer-range",
                           where + " has presence bits beyond the "
                                   "machine size");
            }
        });
    }

    return foundThisCall;
}

size_t
InvariantChecker::checkSpecBits(Granularity g)
{
    foundThisCall = 0;
    if (!spec)
        return 0;
    const int procs = dsm.numProcs();
    const bool failed = spec->failure().failed;

    // Non-privatization bits at each home (authoritative copy).
    for (NodeId home = 0; home < procs; ++home) {
        spec->dirUnit(home).forEachNp([&](Addr elem,
                                          const NPDirBits &d) {
            std::string where = "NP bits of elem " + hexAddr(elem);
            if (d.noShr && d.rOnly && !failed)
                report("np-noshr-ronly",
                       where + " have NoShr and ROnly both set but "
                               "no failure is latched");
            if (d.noShr && d.first == invalidNode)
                report("np-noshr-first",
                       where + " have NoShr set with First empty");

            auto it = npBase.find(elem);
            if (it != npBase.end()) {
                const NpBase &b = it->second;
                if (b.first != invalidNode && d.first != b.first)
                    report("np-first-stable",
                           where + " changed First from " +
                               std::to_string(b.first) + " to " +
                               std::to_string(d.first));
                if ((b.noShr && !d.noShr) || (b.rOnly && !d.rOnly))
                    report("np-bits-monotonic",
                           where + " cleared NoShr or ROnly");
            }
            npBase[elem] = {d.first, d.noShr, d.rOnly};
        });
    }

    // Cache tags vs. the home's bits. Dirty lines are skipped: their
    // updates are deliberately deferred until the line leaves the
    // cache, so the home legitimately lags. Between deliveries even
    // Shared tags can lag (an in-flight fill carries bits the home
    // already merged), so this cross-check only holds at quiesce.
    for (NodeId n = 0; g == Granularity::Quiesce && n < procs; ++n) {
        NodeCache &cache = dsm.cacheCtrl(n).cacheArray();
        spec->cacheUnit(n).forEachNpLine([&](Addr line,
                                             const NPTagBits *bits,
                                             uint32_t elems) {
            const CacheLine *cl = cache.findLine(line);
            if (!cl || cl->state != LineState::Shared)
                return;
            const Region *r = dsm.memory().find(line);
            if (!r)
                return;
            NodeId home = dsm.memory().homeOf(line);
            for (uint32_t i = 0; i < elems; ++i) {
                Addr elem = line + i * r->elemBytes;
                const NPDirBits *d = spec->dirUnit(home).findNp(elem);
                const NPTagBits &t = bits[i];
                std::string where = "node " + std::to_string(n) +
                                    " tag of elem " + hexAddr(elem);
                if (t.first == TagFirst::Own &&
                    (!d || d->first != n))
                    report("np-tag-first",
                           where + " says First=OWN but home " +
                               "disagrees");
                if (t.first == TagFirst::Other &&
                    (!d || d->first == invalidNode || d->first == n))
                    report("np-tag-first",
                           where + " says First=OTHER but home " +
                               "disagrees");
                if (t.rOnly && (!d || !d->rOnly))
                    report("np-tag-ronly",
                           where + " has ROnly unknown to the home");
                if (t.noShr && (!d || !d->noShr))
                    report("np-tag-noshr",
                           where + " has NoShr unknown to the home");
            }
        });
    }

    // Privatization time stamps (shared-array home side).
    for (NodeId home = 0; home < procs; ++home) {
        spec->dirUnit(home).forEachShared(
            [&](Addr elem, const PrivSharedDirBits &d) {
            std::string where = "priv stamps of elem " + hexAddr(elem);
            if (d.maxR1st > d.minW && !failed)
                report("priv-maxr1st-minw",
                       where + ": MaxR1st " +
                           std::to_string(d.maxR1st) + " > MinW " +
                           std::to_string(d.minW) +
                           " but no failure is latched");
            auto it = psBase.find(elem);
            if (it != psBase.end()) {
                if (d.maxR1st < it->second.maxR1st)
                    report("priv-maxr1st-monotonic",
                           where + ": MaxR1st decreased");
                if (d.minW > it->second.minW)
                    report("priv-minw-monotonic",
                           where + ": MinW increased");
            }
            psBase[elem] = {d.maxR1st, d.minW};
        });
        spec->dirUnit(home).forEachPriv(
            [&](Addr elem, const PrivPrivDirBits &d) {
            auto it = ppBase.find(elem);
            if (it != ppBase.end() &&
                (d.pMaxR1st < it->second.pMaxR1st ||
                 d.pMaxW < it->second.pMaxW))
                report("priv-pdir-monotonic",
                       "private stamps of elem " + hexAddr(elem) +
                           " moved backwards");
            ppBase[elem] = {d.pMaxR1st, d.pMaxW};
        });
    }

    return foundThisCall;
}

size_t
InvariantChecker::checkQuiesced()
{
    foundThisCall = 0;
    const int procs = dsm.numProcs();

    for (NodeId n = 0; n < procs; ++n) {
        DirCtrl &dc = dsm.dirCtrl(n);
        if (dc.numActiveTxns() != 0)
            report("quiesce-txns",
                   "dir " + std::to_string(n) + " still has " +
                       std::to_string(dc.numActiveTxns()) +
                       " active transactions");
        if (dc.numQueuedReqs() != 0)
            report("quiesce-queue",
                   "dir " + std::to_string(n) + " still has " +
                       std::to_string(dc.numQueuedReqs()) +
                       " queued requests");
        if (!dsm.cacheCtrl(n).quiescent())
            report("quiesce-cache",
                   "cache " + std::to_string(n) +
                       " has transactions in flight");
        if (spec && spec->dirUnit(n).numPendingReadIns() != 0)
            report("quiesce-readins",
                   "dir " + std::to_string(n) +
                       " has read-ins in flight");
    }
    if (dsm.network().numPendingRetransmits() != 0)
        report("quiesce-retransmits",
               std::to_string(dsm.network().numPendingRetransmits()) +
                   " signal retransmissions still pending");

    return foundThisCall;
}

} // namespace specrt
