#include "mem/directory.hh"

namespace specrt
{

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Uncached: return "Uncached";
      case DirState::Shared:   return "Shared";
      case DirState::Dirty:    return "Dirty";
    }
    return "Unknown";
}

} // namespace specrt
