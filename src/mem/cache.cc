#include "mem/cache.hh"

#include <cstring>

#include "sim/logging.hh"

namespace specrt
{

const char *
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "Invalid";
      case LineState::Shared:  return "Shared";
      case LineState::Dirty:   return "Dirty";
    }
    return "Unknown";
}

NodeCache::NodeCache(const MachineConfig &config)
    : _lineBytes(config.l2.lineBytes)
{
    // Geometry is power-of-two (config.validate()); indexing relies
    // on it.
    SPECRT_ASSERT((_lineBytes & (_lineBytes - 1)) == 0,
                  "line size %u not a power of two", _lineBytes);
    _lineShift = 0;
    while ((1u << _lineShift) < _lineBytes)
        ++_lineShift;
    uint64_t l2Lines = config.l2.numLines();
    uint64_t l1Lines = config.l1.numLines();
    SPECRT_ASSERT((l2Lines & (l2Lines - 1)) == 0 &&
                  (l1Lines & (l1Lines - 1)) == 0,
                  "cache line counts not powers of two");
    _l2Mask = l2Lines - 1;
    _l1Mask = l1Lines - 1;
    // Line data stays empty until fill(): invalid lines are never
    // read, and skipping the zero-fill makes machine construction
    // (hundreds of caches per campaign) cheap.
    l2.resize(l2Lines);
    l1Tags.assign(l1Lines, invalidAddr);
}

bool
NodeCache::l1Hit(Addr a) const
{
    return l1TagHit(a) && findLine(a) != nullptr;
}

void
NodeCache::l1Fill(Addr a)
{
    l1Tags[l1Index(a)] = lineAlign(a);
}

void
NodeCache::l1Evict(Addr a)
{
    if (l1Tags[l1Index(a)] == lineAlign(a))
        l1Tags[l1Index(a)] = invalidAddr;
}

bool
NodeCache::fill(Addr line_addr, LineState state, const uint8_t *data,
                CacheLine *victim)
{
    SPECRT_ASSERT(line_addr == lineAlign(line_addr),
                  "fill with unaligned addr");
    CacheLine &slot = l2Slot(line_addr);

    bool displaced = false;
    if (slot.valid() && slot.addr != line_addr) {
        if (victim)
            *victim = slot;   // copies data out
        l1Evict(slot.addr);   // inclusion
        displaced = true;
    }

    slot.addr = line_addr;
    slot.state = state;
    slot.data.assign(data, _lineBytes);
    l1Fill(line_addr);
    return displaced;
}

void
NodeCache::invalidate(Addr a)
{
    CacheLine *line = findLine(a);
    if (line)
        line->state = LineState::Invalid;
    l1Evict(a);
}

void
NodeCache::flushAll(std::vector<CacheLine> *victims)
{
    for (CacheLine &line : l2) {
        if (line.state == LineState::Dirty && victims)
            victims->push_back(line);
        line.state = LineState::Invalid;
        line.addr = invalidAddr;
    }
    for (Addr &tag : l1Tags)
        tag = invalidAddr;
}

uint64_t
NodeCache::readWord(Addr a, uint32_t size) const
{
    const CacheLine *line = findLine(a);
    SPECRT_ASSERT(line, "readWord on absent line %#llx",
                  (unsigned long long)a);
    return readWordIn(*line, a, size);
}

void
NodeCache::writeWord(Addr a, uint32_t size, uint64_t value)
{
    CacheLine *line = findLine(a);
    SPECRT_ASSERT(line, "writeWord on absent line %#llx",
                  (unsigned long long)a);
    std::memcpy(line->data.data() + (a - line->addr), &value, size);
}

} // namespace specrt
