#include "mem/network.hh"

#include <algorithm>
#include <new>

#include "obs/event_log.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/**
 * Move-only RAII handle to an arena-allocated message copy. Scheduled
 * delivery lambdas capture one of these (24 bytes) instead of a full
 * Msg (hundreds of bytes), which keeps the whole capture inside
 * SmallFunction's inline buffer -- zero heap allocations per event.
 */
struct PooledMsg
{
    Msg *m = nullptr;
    Arena *a = nullptr;

    PooledMsg(Msg *m_, Arena *a_) : m(m_), a(a_) {}
    PooledMsg(PooledMsg &&o) noexcept : m(o.m), a(o.a)
    {
        o.m = nullptr;
    }
    PooledMsg(const PooledMsg &) = delete;
    PooledMsg &operator=(const PooledMsg &) = delete;
    PooledMsg &operator=(PooledMsg &&) = delete;
    ~PooledMsg()
    {
        if (m) {
            m->~Msg();
            a->free(m, sizeof(Msg));
        }
    }

    const Msg &operator*() const { return *m; }
};

/** Copy @p msg into @p arena and wrap it in a PooledMsg. */
PooledMsg
poolCopy(Arena *arena, const Msg &msg)
{
    return PooledMsg(new (arena->alloc(sizeof(Msg))) Msg(msg), arena);
}

/** Trace one send attempt; returns the flow id for its deliveries. */
uint64_t
traceSend(const Msg &msg, Tick tick)
{
    auto &buf = trace::buffer();
    uint64_t flow = buf.nextFlow();
    trace::TraceRecord r;
    r.tick = tick;
    r.op = trace::TraceOp::MsgSend;
    r.sub = static_cast<uint8_t>(msg.type);
    r.node = msg.src;
    r.peer = msg.dst;
    r.iter = msg.iter;
    r.addr = msg.elemAddr != invalidAddr ? msg.elemAddr : msg.lineAddr;
    r.a = msg.lineAddr;
    r.b = flow;
    r.label = msgTypeName(msg.type);
    buf.emit(r);
    return flow;
}

/** Trace one delivery of the send recorded under @p flow. */
void
traceRecv(const Msg &msg, Tick tick, uint64_t flow)
{
    trace::TraceRecord r;
    r.tick = tick;
    r.op = trace::TraceOp::MsgRecv;
    r.sub = static_cast<uint8_t>(msg.type);
    r.node = msg.dst;
    r.peer = msg.src;
    r.iter = msg.iter;
    r.addr = msg.elemAddr != invalidAddr ? msg.elemAddr : msg.lineAddr;
    r.a = msg.lineAddr;
    r.b = flow;
    r.label = msgTypeName(msg.type);
    trace::buffer().emit(r);
}

} // namespace

Network::Network(EventQueue &eq_, const MachineConfig &config)
    : StatGroup("network"),
      eq(eq_),
      hopLatency(config.lat.netHop),
      arena(&SimContext::current().msgArena()),
      numNodes(config.numProcs),
      cacheHandlers(config.numProcs),
      dirHandlers(config.numProcs),
      msgs(this, "msgs", "total messages sent"),
      hopStat(this, "hops", "inter-node network traversals"),
      msgsRetried(this, "msgs_retried",
                  "dropped signals retransmitted by the NI"),
      msgsLost(this, "msgs_lost",
               "signals lost after exhausting retransmissions"),
      msgsByType(this, "msgs_by_type", "messages per MsgType", 32),
      retriesByType(this, "retries_by_type",
                    "NI retransmissions per MsgType", 32)
{
}

void
Network::setCacheHandler(NodeId node, Handler h)
{
    cacheHandlers.at(node) = std::move(h);
}

void
Network::setDirHandler(NodeId node, Handler h)
{
    dirHandlers.at(node) = std::move(h);
}

void
Network::send(Msg msg, Cycles extra_delay)
{
    transmit(std::move(msg), extra_delay, 0);
}

void
Network::transmit(Msg msg, Cycles extra_delay, int attempt)
{
    SPECRT_ASSERT(msg.src >= 0 &&
                  msg.src < static_cast<NodeId>(cacheHandlers.size()),
                  "bad msg src %d", msg.src);
    SPECRT_ASSERT(msg.dst >= 0 &&
                  msg.dst < static_cast<NodeId>(cacheHandlers.size()),
                  "bad msg dst %d", msg.dst);

    ++msgs;
    msgsByType[static_cast<size_t>(msg.type)] += 1;

    uint64_t flow = 0;
    if (trace::enabled())
        flow = traceSend(msg, eq.curTick());

    Cycles delay = extra_delay;
    if (msg.src != msg.dst) {
        delay += hopLatency;
        ++hops;
        ++hopStat;
        if (stall::enabled()) {
            // Credit this hop to the load transaction it serves; the
            // requester's identity depends on the protocol leg.
            NodeId requester = msg.type == MsgType::ReadReq
                                   ? msg.src
                               : msg.type == MsgType::ReadFwd
                                   ? msg.requester
                               : msg.type == MsgType::ReadReply
                                   ? msg.dst
                                   : NodeId(-1);
            stall::netLeg(requester, msg.txnSeq,
                          static_cast<double>(hopLatency));
        }
    }

    FaultDecision fd;
    ScheduleController *sc = eq.scheduleController();
    if (sc && sc->exploresFaults() && plan) {
        // Exploration mode: fault decisions are explorer choice
        // points, not random draws -- the DFS enumerates WHICH
        // message is lost or duplicated. Eligibility matches the
        // seeded plan's rules so every explored fate has a recovery
        // leg. Ineligible messages are not decision points at all.
        bool wd = plan->config().watchdogTimeout != 0;
        bool can_drop = FaultPlan::dropEligible(msg.type, wd);
        bool can_dup = FaultPlan::dupEligible(msg.type, wd);
        size_t n = 1 + (can_drop ? 1 : 0) + (can_dup ? 1 : 0);
        if (n > 1) {
            FaultChoicePoint p{eq.curTick(),
                               static_cast<uint16_t>(msg.type),
                               static_cast<uint16_t>(msg.src),
                               static_cast<uint16_t>(msg.dst),
                               can_drop, can_dup};
            size_t alt = sc->pickFault(p, n);
            if (alt >= n)
                alt = n - 1;
            if (alt == 1)
                (can_drop ? fd.drop : fd.duplicate) = true;
            else if (alt == 2)
                fd.duplicate = true;
        }
    } else if (plan && plan->armed()) {
        fd = plan->decide(msg.type);
    }

    if (obs::enabled() && (fd.drop || fd.duplicate || fd.jitter)) {
        obs::faultInject(eq.curTick(),
                         fd.drop ? "drop"
                                 : fd.duplicate ? "dup" : "jitter",
                         msgTypeName(msg.type), msg.src, msg.dst);
    }

    if (fd.drop) {
        if (!FaultPlan::netRetransmits(msg.type))
            return; // request: the requester's watchdog retries it
        if (attempt >= plan->config().watchdogMaxRetries) {
            ++msgsLost;
            obs::faultInject(eq.curTick(), "lost",
                             msgTypeName(msg.type), msg.src, msg.dst);
            if (lostHook) {
                lostHook(msg, "speculation signal");
                return;
            }
            panic("%s src %d dst %d line %#llx lost: retransmission "
                  "budget exhausted and no degradation hook installed",
                  msgTypeName(msg.type), msg.src, msg.dst,
                  (unsigned long long)msg.lineAddr);
        }
        scheduleRetransmit(std::move(msg), attempt + 1);
        return;
    }

    if (fd.duplicate)
        deliver(msg, delay, fd.jitter, flow);
    deliver(msg, delay, fd.jitter, flow);
}

void
Network::deliver(const Msg &msg, Cycles delay, Cycles jitter,
                 uint64_t flow)
{
    bool to_dir = msgToHome(msg.type) || msg.type == MsgType::ShareWb ||
                  msg.type == MsgType::OwnXfer ||
                  msg.type == MsgType::InvalAck ||
                  msg.type == MsgType::ReadInReply;
    Handler &h = to_dir ? dirHandlers.at(msg.dst)
                        : cacheHandlers.at(msg.dst);
    SPECRT_ASSERT(h, "no handler for %s at node %d",
                  msgTypeName(msg.type), msg.dst);

    ++inFlight;
    auto actor = static_cast<uint16_t>(msg.dst);
    if (!plan || !plan->armed()) {
        if (trace::enabled()) {
            eq.scheduleIn(
                delay,
                [this, &h, pm = poolCopy(arena, msg), flow]() {
                    --inFlight;
                    if (trace::enabled())
                        traceRecv(*pm, eq.curTick(), flow);
                    h(*pm);
                },
                EventKind::Network, actor);
            return;
        }
        // Fault-free fast path: identical timing to the plain network.
        eq.scheduleIn(
            delay,
            [this, &h, pm = poolCopy(arena, msg)]() {
                --inFlight;
                h(*pm);
            },
            EventKind::Network, actor);
        return;
    }

    // Clamp behind the latest delivery already scheduled on this
    // (src,dst) channel so jitter cannot reorder a channel.
    Tick when = eq.curTick() + delay + jitter;
    if (channelFloor.empty())
        channelFloor.resize(static_cast<size_t>(numNodes) * numNodes,
                            0);
    Tick &floor = channelFloor[static_cast<size_t>(msg.src) * numNodes +
                              msg.dst];
    when = std::max(when, floor);
    floor = when;
    eq.schedule(
        when,
        [this, &h, pm = poolCopy(arena, msg), flow]() {
            --inFlight;
            if (trace::enabled())
                traceRecv(*pm, eq.curTick(), flow);
            h(*pm);
        },
        EventKind::Network, actor);
}

void
Network::scheduleRetransmit(Msg msg, int attempt)
{
    const FaultConfig &fc = plan->config();
    int shift = std::min(attempt - 1, 16);
    Cycles backoff = fc.watchdogTimeout << shift;
    ++pendingRetransmits;
    auto dst = static_cast<uint16_t>(msg.dst);
    eq.scheduleIn(
        backoff,
        [this, pm = poolCopy(arena, msg), attempt]() {
            --pendingRetransmits;
            ++msgsRetried;
            retriesByType[static_cast<size_t>((*pm).type)] += 1;
            transmit(*pm, 0, attempt);
        },
        EventKind::Network, dst);
}

void
Network::reset()
{
    std::fill(channelFloor.begin(), channelFloor.end(), 0);
    pendingRetransmits = 0;
    // The event-queue reset that accompanies a machine reset dropped
    // every scheduled delivery.
    inFlight = 0;
}

} // namespace specrt
