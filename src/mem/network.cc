#include "mem/network.hh"

#include "sim/logging.hh"

namespace specrt
{

Network::Network(EventQueue &eq_, const MachineConfig &config)
    : StatGroup("network"),
      eq(eq_),
      hopLatency(config.lat.netHop),
      cacheHandlers(config.numProcs),
      dirHandlers(config.numProcs),
      msgs(this, "msgs", "total messages sent"),
      hopStat(this, "hops", "inter-node network traversals"),
      msgsByType(this, "msgs_by_type", "messages per MsgType", 32)
{
}

void
Network::setCacheHandler(NodeId node, Handler h)
{
    cacheHandlers.at(node) = std::move(h);
}

void
Network::setDirHandler(NodeId node, Handler h)
{
    dirHandlers.at(node) = std::move(h);
}

void
Network::send(Msg msg, Cycles extra_delay)
{
    SPECRT_ASSERT(msg.src >= 0 &&
                  msg.src < static_cast<NodeId>(cacheHandlers.size()),
                  "bad msg src %d", msg.src);
    SPECRT_ASSERT(msg.dst >= 0 &&
                  msg.dst < static_cast<NodeId>(cacheHandlers.size()),
                  "bad msg dst %d", msg.dst);

    ++msgs;
    msgsByType[static_cast<size_t>(msg.type)] += 1;

    Cycles delay = extra_delay;
    if (msg.src != msg.dst) {
        delay += hopLatency;
        ++hops;
        ++hopStat;
    }

    bool to_dir = msgToHome(msg.type) || msg.type == MsgType::ShareWb ||
                  msg.type == MsgType::OwnXfer ||
                  msg.type == MsgType::InvalAck ||
                  msg.type == MsgType::ReadInReply;
    Handler &h = to_dir ? dirHandlers.at(msg.dst)
                        : cacheHandlers.at(msg.dst);
    SPECRT_ASSERT(h, "no handler for %s at node %d",
                  msgTypeName(msg.type), msg.dst);

    eq.scheduleIn(delay, [&h, m = std::move(msg)]() { h(m); });
}

} // namespace specrt
