#include "mem/dir_ctrl.hh"

#include "sim/logging.hh"
#include "sim/stall.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Record a directory-entry state change (old -> new). */
void
traceDirState(Tick tick, NodeId home, Addr line, DirState from,
              DirState to)
{
    if (from == to)
        return;
    trace::TraceRecord r;
    r.tick = tick;
    r.op = trace::TraceOp::DirState;
    r.node = home;
    r.addr = line;
    r.a = static_cast<uint64_t>(from);
    r.b = static_cast<uint64_t>(to);
    r.label = dirStateName(to);
    trace::buffer().emit(r);
}

/** Contention heatmap key: the element when known, else the line. */
Addr
heatElem(const Msg &msg)
{
    return msg.elemAddr != invalidAddr ? msg.elemAddr : msg.lineAddr;
}

} // namespace

DirCtrl::DirCtrl(NodeId node_, EventQueue &eq_, Network &net_,
                 AddrMap &mem_, const MachineConfig &config)
    : StatGroup("dir" + std::to_string(node_)),
      node(node_), eq(eq_), net(net_), mem(mem_), cfg(config),
      dir(config.l2.lineBytes),
      txns(this, "txns", "transactions processed"),
      fwds(this, "fwds", "owner forwards sent"),
      invalsSent(this, "invals", "invalidations sent"),
      queuedCycles(this, "queued_cycles", "cycles requests sat queued"),
      dupRequests(this, "dup_requests",
                  "duplicate/retried requests ignored as already served"),
      strayMsgs(this, "stray_msgs", "stray protocol legs tolerated")
{
    lenient = cfg.fault.lenientProtocol();
}

bool
DirCtrl::startsTxn(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::WriteReq:
      case MsgType::Writeback:
      case MsgType::FirstUpdate:
      case MsgType::ROnlyUpdate:
      case MsgType::ReadFirstSig:
      case MsgType::FirstWriteSig:
      case MsgType::ReadInReq:
      case MsgType::CopyOutSig:
        return true;
      default:
        return false;
    }
}

void
DirCtrl::handle(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::ShareWb:
        onShareWb(msg);
        return;
      case MsgType::OwnXfer:
        onOwnXfer(msg);
        return;
      case MsgType::InvalAck:
        onInvalAck(msg);
        return;
      case MsgType::ReadInReply:
        // Nested leg of a deferred transaction; entirely the spec
        // unit's business (it will call resumeDeferred()).
        SPECRT_ASSERT(spec, "ReadInReply with no spec unit");
        spec->onMsg(msg);
        return;
      default:
        break;
    }
    SPECRT_ASSERT(startsTxn(msg.type), "dir %d got unexpected %s",
                  node, msgTypeName(msg.type));
    enqueue(msg);
}

DirCtrl::Txn *
DirCtrl::findActive(Addr line)
{
    for (Txn &t : active) {
        if (t.line == line)
            return &t;
    }
    return nullptr;
}

const DirCtrl::Txn *
DirCtrl::findActive(Addr line) const
{
    for (const Txn &t : active) {
        if (t.line == line)
            return &t;
    }
    return nullptr;
}

void
DirCtrl::enqueue(const Msg &msg)
{
    // A request arriving while its line has an active transaction is
    // exactly the home-node serialization the paper worries about --
    // that is the contention the heatmap's "queued" axis counts.
    if (findActive(msg.lineAddr)) {
        timeline::dirQueued(node, heatElem(msg));
        waiting.push_back(msg);
        waitingSince.push_back(eq.curTick());
        return;
    }
    beginTxn(msg, eq.curTick());
}

void
DirCtrl::beginTxn(const Msg &msg, Tick enq_tick)
{
    Addr line = msg.lineAddr;
    active.push_back(Txn{line, msg, 0, false, false});

    Tick start = claimController();
    queuedCycles += static_cast<double>(start - eq.curTick());
    // Everything between arrival at this home and processing start is
    // home-node serialization: line-queue wait + controller occupancy.
    stall::dirWait(msg.src, msg.txnSeq,
                   static_cast<double>(start - enq_tick));
    // Capture only the line: the request lives in the active set, so
    // the callback stays within SmallFunction's inline buffer.
    eq.schedule(start, [this, line]() { runTxn(line); });
}

void
DirCtrl::tryStart(Addr line)
{
    if (findActive(line))
        return;
    for (size_t i = 0; i < waiting.size(); ++i) {
        if (waiting[i].lineAddr != line)
            continue;
        Msg req = std::move(waiting[i]);
        Tick since = waitingSince[i];
        waiting.erase(waiting.begin() +
                      static_cast<ptrdiff_t>(i));
        waitingSince.erase(waitingSince.begin() +
                           static_cast<ptrdiff_t>(i));
        beginTxn(req, since);
        return;
    }
}

void
DirCtrl::runTxn(Addr line)
{
    Txn *t = findActive(line);
    SPECRT_ASSERT(t, "runTxn with no active transaction for %#llx",
                  (unsigned long long)line);
    // Stack copy: process() may finish the transaction (erasing the
    // active slot) or start new ones (moving the vector).
    Msg req = t->req;
    process(req);
}

Tick
DirCtrl::claimController()
{
    Tick start = std::max(eq.curTick(), nextFree);
    nextFree = start + cfg.lat.dirOccupancy;
    return start;
}

void
DirCtrl::process(const Msg &msg)
{
    timeline::dirAccess(node, heatElem(msg));
    switch (msg.type) {
      case MsgType::ReadReq:
      case MsgType::WriteReq: {
        DirEntry &e = dir.entry(msg.lineAddr);
        if (e.state == DirState::Dirty) {
            if (e.owner == msg.src) {
                // Duplicate or watchdog-retried request from the node
                // we already granted to. The grant is provably still
                // in flight (replies are never dropped), so ignoring
                // the duplicate is safe: the requester will accept
                // the original reply under the same sequence number.
                SPECRT_ASSERT(lenient,
                              "requester %d already owns line %#llx",
                              msg.src, (unsigned long long)msg.lineAddr);
                ++dupRequests;
                finishTxn(msg.lineAddr);
                return;
            }
            // Forward to the owner; spec check runs when the owner's
            // bits come home (merge-then-test, as in Fig. 6(b)/(d)).
            findActive(msg.lineAddr)->awaitingOwner = true;
            Msg fwd;
            fwd.type = msg.type == MsgType::ReadReq ? MsgType::ReadFwd
                                                    : MsgType::WriteFwd;
            fwd.src = node;
            fwd.dst = e.owner;
            fwd.lineAddr = msg.lineAddr;
            fwd.elemAddr = msg.elemAddr;
            fwd.requester = msg.src;
            fwd.iter = msg.iter;
            fwd.txnSeq = msg.txnSeq;
            if (spec) {
                // Attach the home's authoritative access bits; the
                // owner combines them with its tags so the requester
                // receives exact, identity-carrying bits.
                fwd.specBits =
                    spec->collectFillBits(msg.src, msg.lineAddr,
                                          msg.iter);
            }
            ++fwds;
            net.send(std::move(fwd), cfg.lat.dirLookup);
            return;
        }
        if (spec) {
            SpecDirAction action = msg.type == MsgType::ReadReq
                                       ? spec->onReadReq(msg)
                                       : spec->onWriteReq(msg);
            if (action == SpecDirAction::Defer) {
                findActive(msg.lineAddr)->deferred = true;
                return;
            }
        }
        processBase(msg);
        return;
      }
      case MsgType::Writeback:
        processWriteback(msg);
        return;
      default:
        processSpecMsg(msg);
        return;
    }
}

void
DirCtrl::processBase(const Msg &req)
{
    Addr line = req.lineAddr;
    DirEntry &e = dir.entry(line);

    if (req.type == MsgType::ReadReq) {
        SPECRT_ASSERT(e.state != DirState::Dirty,
                      "processBase(read) on Dirty line");
        if (trace::enabled())
            traceDirState(eq.curTick(), node, line, e.state,
                          DirState::Shared);
        e.state = DirState::Shared;
        e.addSharer(req.src);
        e.owner = invalidNode;
        replyFromMemory(req, false, cfg.lat.dirMemAccess);
        eq.scheduleIn(cfg.lat.dirMemAccess,
                      [this, line]() { finishTxn(line); });
        return;
    }

    SPECRT_ASSERT(req.type == MsgType::WriteReq, "processBase type");
    uint64_t others = e.state == DirState::Shared
                          ? (e.sharers & ~(uint64_t(1) << req.src))
                          : 0;
    if (others) {
        findActive(line)->ackWait = others;
        for (NodeId n = 0; others; ++n, others >>= 1) {
            if (!(others & 1))
                continue;
            Msg inv;
            inv.type = MsgType::Inval;
            inv.src = node;
            inv.dst = n;
            inv.lineAddr = line;
            ++invalsSent;
            net.send(std::move(inv), cfg.lat.dirLookup);
        }
        return; // grant when the last InvalAck arrives
    }

    if (trace::enabled())
        traceDirState(eq.curTick(), node, line, e.state,
                      DirState::Dirty);
    e.state = DirState::Dirty;
    e.owner = req.src;
    e.sharers = 0;
    replyFromMemory(req, true, cfg.lat.dirMemAccess);
    eq.scheduleIn(cfg.lat.dirMemAccess,
                  [this, line]() { finishTxn(line); });
}

void
DirCtrl::processWriteback(const Msg &msg)
{
    Addr line = msg.lineAddr;
    DirEntry &e = dir.entry(line);
    if (e.state == DirState::Dirty && e.owner == msg.src) {
        SPECRT_ASSERT(msg.data.size() == mem.find(line)->elemBytes ||
                      !msg.data.empty(),
                      "writeback without data");
        mem.writeLine(line, msg.data.data(),
                      static_cast<uint32_t>(msg.data.size()));
        if (spec && !msg.specBits.empty())
            spec->onDirtyBits(msg.src, line, msg.specBits);
        if (trace::enabled())
            traceDirState(eq.curTick(), node, line, e.state,
                          DirState::Uncached);
        e.state = DirState::Uncached;
        e.owner = invalidNode;
        e.sharers = 0;
    }
    // Else: superseded -- a forward already extracted this line from
    // the sender's writeback buffer; just acknowledge.
    Msg ack;
    ack.type = MsgType::WritebackAck;
    ack.src = node;
    ack.dst = msg.src;
    ack.lineAddr = line;
    net.send(std::move(ack), cfg.lat.dirLookup);
    eq.scheduleIn(cfg.lat.dirLookup, [this, line]() { finishTxn(line); });
}

void
DirCtrl::processSpecMsg(const Msg &msg)
{
    SPECRT_ASSERT(spec, "spec message %s with no spec unit at node %d",
                  msgTypeName(msg.type), node);
    spec->onMsg(msg);
    Cycles busy = (msg.type == MsgType::ReadInReq ||
                   msg.type == MsgType::CopyOutSig)
                      ? cfg.lat.dirMemAccess
                      : cfg.lat.dirLookup;
    Addr line = msg.lineAddr;
    eq.scheduleIn(busy, [this, line]() { finishTxn(line); });
}

void
DirCtrl::onShareWb(const Msg &msg)
{
    Txn *t = findActive(msg.lineAddr);
    SPECRT_ASSERT(t && t->awaitingOwner, "stray ShareWb for %#llx",
                  (unsigned long long)msg.lineAddr);
    Txn &txn = *t;
    SPECRT_ASSERT(txn.req.type == MsgType::ReadReq, "ShareWb txn type");

    mem.writeLine(msg.lineAddr, msg.data.data(),
                  static_cast<uint32_t>(msg.data.size()));
    if (spec) {
        if (!msg.specBits.empty())
            spec->onDirtyBits(msg.src, msg.lineAddr, msg.specBits);
        SpecDirAction action = spec->onReadReq(txn.req);
        SPECRT_ASSERT(action == SpecDirAction::Proceed,
                      "spec deferred in owner leg");
    }

    DirEntry &e = dir.entry(msg.lineAddr);
    if (trace::enabled())
        traceDirState(eq.curTick(), node, msg.lineAddr, e.state,
                      DirState::Shared);
    e.state = DirState::Shared;
    e.sharers = uint64_t(1) << txn.req.src;
    if (msg.ownerRetains)
        e.addSharer(msg.src);
    e.owner = invalidNode;
    finishTxn(msg.lineAddr);
}

void
DirCtrl::onOwnXfer(const Msg &msg)
{
    Txn *t = findActive(msg.lineAddr);
    SPECRT_ASSERT(t && t->awaitingOwner, "stray OwnXfer for %#llx",
                  (unsigned long long)msg.lineAddr);
    Txn &txn = *t;
    SPECRT_ASSERT(txn.req.type == MsgType::WriteReq, "OwnXfer txn type");

    if (spec) {
        if (!msg.specBits.empty())
            spec->onDirtyBits(msg.src, msg.lineAddr, msg.specBits);
        SpecDirAction action = spec->onWriteReq(txn.req);
        SPECRT_ASSERT(action == SpecDirAction::Proceed,
                      "spec deferred in owner leg");
    }

    DirEntry &e = dir.entry(msg.lineAddr);
    if (trace::enabled())
        traceDirState(eq.curTick(), node, msg.lineAddr, e.state,
                      DirState::Dirty);
    e.state = DirState::Dirty;
    e.owner = txn.req.src;
    e.sharers = 0;
    finishTxn(msg.lineAddr);
}

void
DirCtrl::onInvalAck(const Msg &msg)
{
    Txn *t = findActive(msg.lineAddr);
    uint64_t bit = uint64_t(1) << msg.src;
    if (!t || !(t->ackWait & bit)) {
        // Duplicate ack (the Inval or the ack itself was duplicated):
        // this node's bit is already clear. The mask dedups it.
        SPECRT_ASSERT(lenient, "stray InvalAck for %#llx",
                      (unsigned long long)msg.lineAddr);
        ++strayMsgs;
        return;
    }
    Txn &txn = *t;
    txn.ackWait &= ~bit;
    if (txn.ackWait)
        return;

    // All sharers gone: grant ownership. The memory read overlapped
    // with the invalidations, so the reply goes out immediately.
    DirEntry &e = dir.entry(msg.lineAddr);
    if (trace::enabled())
        traceDirState(eq.curTick(), node, msg.lineAddr, e.state,
                      DirState::Dirty);
    e.state = DirState::Dirty;
    e.owner = txn.req.src;
    e.sharers = 0;
    replyFromMemory(txn.req, true, 0);
    finishTxn(msg.lineAddr);
}

void
DirCtrl::replyFromMemory(const Msg &req, bool write, Cycles delay)
{
    const Region *r = mem.find(req.lineAddr);
    SPECRT_ASSERT(r, "reply for unmapped line");
    uint32_t line_bytes = cfg.l2.lineBytes;

    Msg reply;
    reply.type = write ? MsgType::WriteReply : MsgType::ReadReply;
    reply.src = node;
    reply.dst = req.src;
    reply.lineAddr = req.lineAddr;
    reply.elemAddr = req.elemAddr;
    reply.iter = req.iter;
    reply.txnSeq = req.txnSeq;
    reply.data.resize(line_bytes);
    mem.readLine(req.lineAddr, reply.data.data(), line_bytes);
    if (spec)
        reply.specBits =
            spec->collectFillBits(req.src, req.lineAddr, req.iter);
    net.send(std::move(reply), delay);
}

void
DirCtrl::resumeDeferred(Addr line_addr)
{
    Txn *t = findActive(line_addr);
    SPECRT_ASSERT(t && t->deferred,
                  "resumeDeferred with no deferred txn");
    t->deferred = false;
    // Stack copy: processBase may finish the transaction.
    Msg req = t->req;
    processBase(req);
}

void
DirCtrl::finishTxn(Addr line)
{
    Txn *t = findActive(line);
    SPECRT_ASSERT(t, "finishTxn with no txn");
    // Order is irrelevant (lookups are keyed): swap-with-back erase.
    if (t != &active.back())
        *t = std::move(active.back());
    active.pop_back();
    ++txns;
    tryStart(line);
}

void
DirCtrl::reset()
{
    SPECRT_ASSERT(active.empty() || true, "reset");
    active.clear();
    waiting.clear();
    waitingSince.clear();
    dir.clear();
    nextFree = 0;
}

} // namespace specrt
