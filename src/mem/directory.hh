/**
 * @file
 * Full-map directory state for the lines homed at one node.
 *
 * Entries are materialized lazily: a line never referenced behaves as
 * Uncached. Up to 64 nodes are supported (one presence bit each),
 * which comfortably covers the paper's 16-processor machine.
 */

#ifndef SPECRT_MEM_DIRECTORY_HH
#define SPECRT_MEM_DIRECTORY_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace specrt
{

/** Directory-visible state of a line. */
enum class DirState : uint8_t
{
    Uncached,
    Shared,
    Dirty,
};

const char *dirStateName(DirState s);

/** Directory entry for one line. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    /** Presence bits (valid when Shared). */
    uint64_t sharers = 0;
    /** Owner (valid when Dirty). */
    NodeId owner = invalidNode;

    bool isSharer(NodeId n) const { return sharers & (uint64_t(1) << n); }
    void addSharer(NodeId n) { sharers |= uint64_t(1) << n; }
    void removeSharer(NodeId n) { sharers &= ~(uint64_t(1) << n); }
    int numSharers() const { return __builtin_popcountll(sharers); }
};

/** The directory array of one home node. */
class Directory
{
  public:
    /** Entry for @p line_addr, creating an Uncached one on demand. */
    DirEntry &entry(Addr line_addr) { return entries[line_addr]; }

    /** Entry if it exists, else nullptr (const inspection). */
    const DirEntry *
    find(Addr line_addr) const
    {
        auto it = entries.find(line_addr);
        return it == entries.end() ? nullptr : &it->second;
    }

    /** Drop all entries (machine reset between runs). */
    void clear() { entries.clear(); }

    size_t numEntries() const { return entries.size(); }

    /** All materialized entries (invariant checker iteration). */
    const std::unordered_map<Addr, DirEntry> &
    entriesMap() const
    {
        return entries;
    }

  private:
    std::unordered_map<Addr, DirEntry> entries;
};

} // namespace specrt

#endif // SPECRT_MEM_DIRECTORY_HH
