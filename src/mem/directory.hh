/**
 * @file
 * Full-map directory state for the lines homed at one node.
 *
 * Entries are materialized lazily: a line never referenced behaves as
 * Uncached. Up to 64 nodes are supported (one presence bit each),
 * which comfortably covers the paper's 16-processor machine.
 *
 * Storage is a dense array indexed by line id (addr >> log2(line)),
 * mirroring the flat SRAM tables of the modeled hardware: entries
 * for consecutive lines share cache lines and every protocol action
 * is an index, not a hash probe. The simulated address space starts
 * at the first page and grows contiguously (mem/addr_map.hh), so the
 * array stays proportional to the footprint under test; anything
 * past the dense window (absurdly sparse addresses in synthetic
 * tests) falls back to a hash map.
 */

#ifndef SPECRT_MEM_DIRECTORY_HH
#define SPECRT_MEM_DIRECTORY_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace specrt
{

/** Directory-visible state of a line. */
enum class DirState : uint8_t
{
    Uncached,
    Shared,
    Dirty,
};

const char *dirStateName(DirState s);

/** Directory entry for one line. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    /**
     * Entry has been referenced since the last clear(). Bookkeeping
     * for Directory (numEntries / forEach), kept inside the entry so
     * the hot entry() lookup touches a single cache line instead of
     * a separate presence array.
     */
    uint8_t touched = 0;
    /** Presence bits (valid when Shared). */
    uint64_t sharers = 0;
    /** Owner (valid when Dirty). */
    NodeId owner = invalidNode;

    bool isSharer(NodeId n) const { return sharers & (uint64_t(1) << n); }
    void addSharer(NodeId n) { sharers |= uint64_t(1) << n; }
    void removeSharer(NodeId n) { sharers &= ~(uint64_t(1) << n); }
    int numSharers() const { return __builtin_popcountll(sharers); }
};

/** The directory array of one home node. */
class Directory
{
  public:
    explicit Directory(uint32_t line_bytes = 64)
    {
        lineShift = 0;
        while ((uint64_t(1) << lineShift) < line_bytes)
            ++lineShift;
    }

    /** Entry for @p line_addr, creating an Uncached one on demand. */
    DirEntry &
    entry(Addr line_addr)
    {
        uint64_t id = line_addr >> lineShift;
        if (id >= denseLimit)
            return overflowEntry(line_addr);
        if (id >= dense.size())
            growTo(id);
        DirEntry &e = dense[id];
        if (!e.touched) {
            e.touched = 1;
            ++materialized;
        }
        return e;
    }

    /** Entry if it exists, else nullptr (const inspection). */
    const DirEntry *
    find(Addr line_addr) const
    {
        uint64_t id = line_addr >> lineShift;
        if (id < dense.size())
            return dense[id].touched ? &dense[id] : nullptr;
        auto it = overflow.find(line_addr);
        return it == overflow.end() ? nullptr : &it->second;
    }

    /** Drop all entries (machine reset between runs). */
    void
    clear()
    {
        std::fill(dense.begin(), dense.end(), DirEntry{});
        overflow.clear();
        materialized = 0;
    }

    size_t numEntries() const { return materialized + overflow.size(); }

    /** Visit every materialized (line, entry) pair. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (size_t id = 0; id < dense.size(); ++id) {
            if (dense[id].touched)
                f(static_cast<Addr>(id) << lineShift, dense[id]);
        }
        for (const auto &[addr, e] : overflow)
            f(addr, e);
    }

  private:
    /** Lines past this id live in the overflow map (1 GiB of 64-byte
     *  lines: far beyond any modeled footprint). */
    static constexpr uint64_t denseLimit = uint64_t(1) << 24;

    void
    growTo(uint64_t id)
    {
        size_t want = static_cast<size_t>(id) + 1;
        size_t cap = dense.empty() ? 1024 : dense.size();
        while (cap < want)
            cap *= 2;
        dense.resize(cap);
    }

    DirEntry &
    overflowEntry(Addr line_addr)
    {
        DirEntry &e = overflow[line_addr];
        e.touched = 1;
        return e;
    }

    uint32_t lineShift;
    size_t materialized = 0;
    std::vector<DirEntry> dense;
    std::unordered_map<Addr, DirEntry> overflow;
};

} // namespace specrt

#endif // SPECRT_MEM_DIRECTORY_HH
