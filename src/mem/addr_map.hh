/**
 * @file
 * Global physical address space of the modeled CC-NUMA machine.
 *
 * Memory is allocated in named, page-aligned regions. A region is
 * either distributed round-robin across the nodes' memory modules at
 * page granularity (the paper's placement for shared workload data)
 * or pinned to a single node (private per-processor data, serial
 * runs). The AddrMap also owns the backing store: simulated memory
 * really holds bytes so data values flow through the machine.
 */

#ifndef SPECRT_MEM_ADDR_MAP_HH
#define SPECRT_MEM_ADDR_MAP_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace specrt
{

/** How a region's pages are assigned to nodes. */
enum class Placement
{
    /** Page p of the region lives on node (firstNode + p) % numProcs. */
    RoundRobin,
    /** All pages live on one fixed node. */
    Fixed,
};

/** One named, page-aligned allocation. */
struct Region
{
    std::string name;
    Addr base = invalidAddr;
    uint64_t bytes = 0;
    /** Element width in bytes (4 or 8 for the paper's workloads). */
    uint32_t elemBytes = 4;
    Placement placement = Placement::RoundRobin;
    /** Home node for Fixed placement; first node for RoundRobin. */
    NodeId node = 0;

    /** bytes / elemBytes, cached: the bounds check in the processor's
     *  address resolution runs once per simulated memory op. */
    uint64_t elems = 0;

    uint64_t numElems() const { return elems; }
    Addr elemAddr(uint64_t i) const { return base + i * elemBytes; }

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + bytes;
    }
};

/**
 * The global address space plus its backing store.
 *
 * Thread-unsafe by design: the simulator is single-threaded.
 */
class AddrMap
{
  public:
    AddrMap(const MachineConfig &config);

    /**
     * Allocate a region. Returns the region id (index).
     *
     * @param name      human-readable name (diagnostics)
     * @param bytes     region size; rounded up to a whole page
     * @param elem_bytes element width (must divide the line size)
     * @param placement page placement policy
     * @param node      Fixed home / RoundRobin first node
     */
    int alloc(const std::string &name, uint64_t bytes,
              uint32_t elem_bytes, Placement placement,
              NodeId node = 0);

    /** Free all regions (new program run). */
    void clear();

    /** Region count. */
    size_t numRegions() const { return regions.size(); }

    const Region &region(int id) const { return regions.at(id); }

    /** Find the region containing @p addr, or nullptr. */
    const Region *find(Addr addr) const;

    /** Home node of @p addr per its region's placement policy. */
    NodeId homeOf(Addr addr) const;

    /**
     * Read a naturally-aligned word of @p size bytes (1..8) straight
     * from the backing store (no coherence; used by directories and
     * by test oracles).
     */
    uint64_t read(Addr addr, uint32_t size) const;

    /** Write a word straight to the backing store. */
    void write(Addr addr, uint32_t size, uint64_t value);

    /** Copy a whole line out of the backing store. */
    void readLine(Addr line_addr, uint8_t *out, uint32_t bytes) const;

    /** Copy a whole line into the backing store. */
    void writeLine(Addr line_addr, const uint8_t *data, uint32_t bytes);

    /**
     * Bulk copy between two mapped ranges of equal layout (e.g.\
     * initializing a private copy from its shared array). Both
     * ranges must lie within single regions.
     */
    void copyBytes(Addr src, Addr dst, uint64_t bytes);

    uint32_t pageBytes() const { return _pageBytes; }
    int numProcs() const { return _numProcs; }

  private:
    /** Locate the backing byte for @p addr; panics if unmapped. */
    uint8_t *backingPtr(Addr addr, uint32_t span);
    const uint8_t *backingPtr(Addr addr, uint32_t span) const;

    /** Index of the region containing @p addr, or -1. */
    int lookup(Addr addr) const;

    // Deques keep Region pointers stable across alloc() calls.
    std::deque<Region> regions;
    std::deque<std::vector<uint8_t>> backing;
    /** regions[i].base, in a flat array: the translation hot path
     *  binary-searches this instead of chasing deque iterators. */
    std::vector<Addr> bases;
    /** Last region hit; accesses are bursty (loops sweep arrays), so
     *  checking it first skips the search almost every time. */
    mutable uint32_t mru = 0;

    uint32_t _pageBytes;
    int _numProcs;
    /** Next free page-aligned address. Starts above nullptr guard. */
    Addr nextBase;
};

} // namespace specrt

#endif // SPECRT_MEM_ADDR_MAP_HH
