#include "mem/cache_ctrl.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Record one cache event (fill/evict/inval) for the trace ring. */
void
traceCache(trace::TraceOp op, Tick tick, NodeId node, Addr line,
           const char *label, uint8_t sub = 0)
{
    trace::TraceRecord r;
    r.tick = tick;
    r.op = op;
    r.sub = sub;
    r.node = node;
    r.addr = line;
    r.label = label;
    trace::buffer().emit(r);
}

} // namespace

CacheCtrl::CacheCtrl(NodeId node_, EventQueue &eq_, Network &net_,
                     AddrMap &mem_, const MachineConfig &config)
    : StatGroup("cache" + std::to_string(node_)),
      node(node_), eq(eq_), net(net_), mem(mem_), cfg(config),
      cache(config),
      l1Hits(this, "l1_hits", "loads hitting in L1"),
      l2Hits(this, "l2_hits", "loads hitting in L2"),
      misses(this, "misses", "loads missing both levels"),
      storeHits(this, "store_hits", "stores hitting a dirty line"),
      storeMisses(this, "store_misses", "stores needing a transaction"),
      writebacks(this, "writebacks", "dirty lines written back"),
      wbFullStalls(this, "wb_full_stalls", "stores rejected: buffer full"),
      watchdogFires(this, "watchdog_fires",
                    "transaction watchdog expirations"),
      msgsRetried(this, "msgs_retried", "requests re-sent by watchdog"),
      strayMsgs(this, "stray_msgs", "duplicate/stale replies ignored"),
      disownedGrants(this, "disowned_grants",
                     "unwanted ownership grants written back"),
      txnsLost(this, "txns_lost", "transactions lost after all retries")
{
    lenient = cfg.fault.lenientProtocol();
}

bool
CacheCtrl::wbHasLine(Addr line) const
{
    for (const WbEntry &e : wb) {
        if (lineOf(e.addr) == line)
            return true;
    }
    return false;
}

void
CacheCtrl::load(Addr addr, uint32_t size, IterNum iter, LoadDone done)
{
    SPECRT_ASSERT(!loadTxn, "second outstanding load at node %d", node);
    Addr line = lineOf(addr);

    // A load may not bypass a buffered store to the same line.
    if (wbHasLine(line) || (storeTxnActive && storeTxnLine == line)) {
        blockedLoads.push_back({addr, size, iter, std::move(done)});
        return;
    }

    // One L2 lookup serves both hit levels (findLine dominates the
    // hit path otherwise: l1Hit, the spec probe, and readWord each
    // redid it).
    if (const CacheLine *cl = cache.findLine(addr)) {
        bool inL1 = cache.l1TagHit(addr);
        if (inL1) {
            ++l1Hits;
        } else {
            ++l2Hits;
            cache.l1Fill(addr);
        }
        if (spec)
            spec->onLoadHit(addr, cl->state, iter);
        uint64_t value = NodeCache::readWordIn(*cl, addr, size);
        Cycles lat = inL1 ? cfg.lat.l1Hit
                          : cfg.lat.l1Hit + cfg.lat.l2Access;
        eq.scheduleIn(lat, [done = std::move(done), value]() mutable {
            done(value);
        });
        return;
    }

    ++misses;
    loadTxn = LoadTxn{line, addr, size, iter, std::move(done), false,
                      seqCounter++, 0, invalidEventId};
    stall::loadBegin(node, loadTxn->seq, line, addr, iter,
                     homeOf(addr), eq.curTick());
    sendLoadReq(cfg.lat.l1Hit + cfg.lat.l2Access);
    loadTxn->watchdog = armWatchdog(true, loadTxn->seq, 0);
}

void
CacheCtrl::sendLoadReq(Cycles extra_delay)
{
    Msg req;
    req.type = MsgType::ReadReq;
    req.src = node;
    req.dst = homeOf(loadTxn->elem);
    req.lineAddr = loadTxn->line;
    req.elemAddr = loadTxn->elem;
    req.iter = loadTxn->iter;
    req.txnSeq = loadTxn->seq;
    net.send(std::move(req), extra_delay);
}

bool
CacheCtrl::store(Addr addr, uint32_t size, uint64_t value, IterNum iter)
{
    if (wb.size() >= static_cast<size_t>(cfg.writeBufferEntries)) {
        ++wbFullStalls;
        return false;
    }
    wb.push_back({addr, size, value, iter});
    scheduleDrain();
    return true;
}

void
CacheCtrl::requestDrainNotice(Notice n)
{
    if (wb.empty() && !storeTxnActive) {
        n();
        return;
    }
    drainNotices.push_back(std::move(n));
}

void
CacheCtrl::scheduleDrain()
{
    if (drainScheduled || storeTxnActive || wb.empty())
        return;
    drainScheduled = true;
    eq.scheduleIn(1, [this]() {
        drainScheduled = false;
        drainHead();
    });
}

void
CacheCtrl::drainHead()
{
    if (storeTxnActive || wb.empty())
        return;
    const WbEntry &head = wb.front();
    Addr line = lineOf(head.addr);

    // Do not start a store transaction while a load transaction is
    // outstanding on the same line (reply ordering across different
    // senders is not guaranteed).
    if (loadTxn && loadTxn->line == line)
        return; // re-poked when the load completes

    CacheLine *cl = cache.findLine(head.addr);
    if (cl && cl->state == LineState::Dirty) {
        ++storeHits;
        NodeCache::writeWordIn(*cl, head.addr, head.size, head.value);
        cache.l1Fill(head.addr);
        if (spec)
            spec->onStoreDirtyHit(head.addr, head.iter);
        popHead();
        scheduleDrain();
        return;
    }

    ++storeMisses;
    storeTxnActive = true;
    storeTxnLine = line;
    storeTxnSeq = seqCounter++;
    storeAttempts = 0;
    sendStoreReq(cfg.lat.l1Hit + cfg.lat.l2Access);
    storeWatchdog = armWatchdog(false, storeTxnSeq, 0);
}

void
CacheCtrl::sendStoreReq(Cycles extra_delay)
{
    const WbEntry &head = wb.front();
    Msg req;
    req.type = MsgType::WriteReq;
    req.src = node;
    req.dst = homeOf(head.addr);
    req.lineAddr = storeTxnLine;
    req.elemAddr = head.addr;
    req.iter = head.iter;
    req.isUpgrade = cache.findLine(head.addr) != nullptr;
    req.txnSeq = storeTxnSeq;
    net.send(std::move(req), extra_delay);
}

EventId
CacheCtrl::armWatchdog(bool is_load, uint64_t seq, int attempt)
{
    if (cfg.fault.watchdogTimeout == 0)
        return invalidEventId;
    // Exponential backoff: each retry waits twice as long.
    Cycles timeout = cfg.fault.watchdogTimeout
                     << std::min(attempt, 16);
    return eq.scheduleIn(timeout, [this, is_load, seq]() {
        onWatchdog(is_load, seq);
    });
}

void
CacheCtrl::onWatchdog(bool is_load, uint64_t seq)
{
    // Stale timer: the transaction it guarded already completed.
    if (is_load && (!loadTxn || loadTxn->seq != seq))
        return;
    if (!is_load && (!storeTxnActive || storeTxnSeq != seq))
        return;

    ++watchdogFires;
    int attempts = is_load ? loadTxn->attempts : storeAttempts;
    if (is_load) {
        // The whole expired backoff window was spent waiting on a
        // lost or late message; credit it to the outstanding load.
        // (loadWait() clamps the credit if a reply overlapped it.)
        Cycles window = cfg.fault.watchdogTimeout
                        << std::min(attempts, 16);
        stall::retryWindow(node, seq, static_cast<double>(window));
    }
    if (attempts >= cfg.fault.watchdogMaxRetries) {
        txnLost(is_load ? loadTxn->elem : wb.front().addr,
                is_load ? "load transaction" : "store transaction");
        return;
    }

    // Retry with the SAME sequence number: whichever of the original
    // or the retry draws a reply first completes the transaction, and
    // the directory ignores the loser as a duplicate.
    ++msgsRetried;
    if (is_load) {
        ++loadTxn->attempts;
        sendLoadReq(0);
        loadTxn->watchdog = armWatchdog(true, seq, loadTxn->attempts);
    } else {
        ++storeAttempts;
        sendStoreReq(0);
        storeWatchdog = armWatchdog(false, seq, storeAttempts);
    }
}

void
CacheCtrl::txnLost(Addr elem, const char *what)
{
    ++txnsLost;
    if (lostHook) {
        lostHook(node, elem, what);
        return;
    }
    panic("node %d: %s for %#llx exhausted its watchdog retries and "
          "no degradation hook is installed",
          node, what, (unsigned long long)elem);
}

void
CacheCtrl::popHead()
{
    wb.pop_front();
    if (slotFreeNotice)
        slotFreeNotice();
    maybeFireDrainNotice();
    unblockLoads(invalidAddr);
}

void
CacheCtrl::maybeFireDrainNotice()
{
    if (!wb.empty() || storeTxnActive || drainNotices.empty())
        return;
    std::vector<Notice> notices = std::move(drainNotices);
    drainNotices.clear();
    for (Notice &n : notices)
        n();
}

void
CacheCtrl::handle(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::ReadReply:    onReadReply(msg); return;
      case MsgType::WriteReply:   onWriteReply(msg); return;
      case MsgType::Inval:        onInval(msg); return;
      case MsgType::ReadFwd:
      case MsgType::WriteFwd:     onFwd(msg); return;
      case MsgType::WritebackAck: onWritebackAck(msg); return;
      case MsgType::FirstUpdateFail:
        SPECRT_ASSERT(spec, "FirstUpdateFail with no spec unit");
        spec->onMsg(msg);
        return;
      default:
        panic("cache %d got unexpected %s", node,
              msgTypeName(msg.type));
    }
}

void
CacheCtrl::fillLine(const Msg &reply, LineState state, bool is_write)
{
    CacheLine victim;
    bool displaced =
        cache.fill(reply.lineAddr, state, reply.data.data(), &victim);
    if (displaced) {
        if (victim.state == LineState::Dirty) {
            evictDirty(victim);
        } else {
            if (trace::enabled())
                traceCache(trace::TraceOp::CacheInval, eq.curTick(),
                           node, victim.addr, "displaced");
            if (spec)
                spec->onInval(victim.addr);
        }
    }
    if (trace::enabled())
        traceCache(trace::TraceOp::CacheFill, eq.curTick(), node,
                   reply.lineAddr, lineStateName(state),
                   static_cast<uint8_t>(state));
    if (spec)
        spec->onFill(reply.lineAddr, reply.specBits, reply.elemAddr,
                     is_write, reply.iter);
}

void
CacheCtrl::evictDirty(const CacheLine &victim)
{
    ++writebacks;
    if (trace::enabled())
        traceCache(trace::TraceOp::CacheEvict, eq.curTick(), node,
                   victim.addr, "writeback");
    MsgBits bits;
    if (spec) {
        bits = spec->onDirtyOut(victim.addr);
        spec->onInval(victim.addr);
    }
    WbBufEntry buffered;
    buffered.data.assign(victim.data);
    buffered.bits = bits;
    wbBuf[victim.addr].push_back(std::move(buffered));

    Msg wbm;
    wbm.type = MsgType::Writeback;
    wbm.src = node;
    wbm.dst = homeOf(victim.addr);
    wbm.lineAddr = victim.addr;
    wbm.data.assign(victim.data);
    wbm.specBits = std::move(bits);
    net.send(std::move(wbm));
}

void
CacheCtrl::onReadReply(const Msg &msg)
{
    if (!loadTxn || loadTxn->line != msg.lineAddr ||
        msg.txnSeq != loadTxn->seq) {
        // Duplicate or superseded reply; shared data is never unique,
        // so dropping it is safe.
        SPECRT_ASSERT(lenient, "stray ReadReply at node %d", node);
        ++strayMsgs;
        return;
    }
    eq.deschedule(loadTxn->watchdog);
    LoadTxn txn = std::move(*loadTxn);
    loadTxn.reset();

    fillLine(msg, LineState::Shared, false);
    uint64_t value = cache.readWord(txn.elem, txn.size);
    if (txn.invalPending) {
        if (spec)
            spec->onInval(msg.lineAddr);
        cache.invalidate(msg.lineAddr);
    }

    // A store to this line may have been waiting for the load.
    scheduleDrain();
    unblockLoads(invalidAddr);
    txn.done(value);
}

void
CacheCtrl::onWriteReply(const Msg &msg)
{
    if (!storeTxnActive || storeTxnLine != msg.lineAddr ||
        msg.txnSeq != storeTxnSeq) {
        SPECRT_ASSERT(lenient, "stray WriteReply at node %d", node);
        disownGrant(msg);
        return;
    }
    SPECRT_ASSERT(!wb.empty(), "WriteReply with empty write buffer");
    eq.deschedule(storeWatchdog);
    storeWatchdog = invalidEventId;

    fillLine(msg, LineState::Dirty, true);

    const WbEntry &head = wb.front();
    SPECRT_ASSERT(lineOf(head.addr) == msg.lineAddr, "WB head mismatch");
    cache.writeWord(head.addr, head.size, head.value);
    cache.l1Fill(head.addr);

    storeTxnActive = false;
    storeTxnLine = invalidAddr;
    popHead();

    // Serve any forwards that raced ahead of this grant.
    auto it = parkedFwds.find(msg.lineAddr);
    if (it != parkedFwds.end()) {
        std::vector<Msg> fwds = std::move(it->second);
        parkedFwds.erase(it);
        for (const Msg &f : fwds)
            serveFwd(f);
    }

    scheduleDrain();
    unblockLoads(invalidAddr);
}

void
CacheCtrl::disownGrant(const Msg &msg)
{
    ++strayMsgs;
    if (cache.findLine(msg.lineAddr)) {
        // The line is (still or again) cached here: the duplicate
        // grant carries nothing we need.
        return;
    }
    // Ownership was transferred here with data that may exist nowhere
    // else (the old owner invalidated itself serving a retried
    // forward). Write it straight back; the home either commits it
    // (it still thinks we own the line) or supersedes the writeback.
    ++disownedGrants;
    ++writebacks;
    wbBuf[msg.lineAddr].push_back({msg.data, {}});

    Msg wbm;
    wbm.type = MsgType::Writeback;
    wbm.src = node;
    wbm.dst = homeOf(msg.lineAddr);
    wbm.lineAddr = msg.lineAddr;
    wbm.data = msg.data;
    net.send(std::move(wbm));

    // Forwards that raced ahead of the unwanted grant can now be
    // served out of the writeback buffer.
    auto it = parkedFwds.find(msg.lineAddr);
    if (it != parkedFwds.end()) {
        std::vector<Msg> fwds = std::move(it->second);
        parkedFwds.erase(it);
        for (const Msg &f : fwds)
            serveFwd(f);
    }
}

void
CacheCtrl::onInval(const Msg &msg)
{
    if (loadTxn && loadTxn->line == msg.lineAddr)
        loadTxn->invalPending = true;

    const CacheLine *cl = cache.findLine(msg.lineAddr);
    if (lenient && cl && cl->state == LineState::Dirty) {
        // A stale duplicate Inval: the directory never invalidates an
        // owner, so this Inval predates our ownership. Ack it without
        // touching the dirty line (the directory dedups acks).
        ++strayMsgs;
        cl = nullptr;
    }
    if (cl) {
        if (trace::enabled())
            traceCache(trace::TraceOp::CacheInval, eq.curTick(), node,
                       msg.lineAddr, "inval");
        if (spec)
            spec->onInval(msg.lineAddr);
        cache.invalidate(msg.lineAddr);
    }

    Msg ack;
    ack.type = MsgType::InvalAck;
    ack.src = node;
    ack.dst = msg.src;
    ack.lineAddr = msg.lineAddr;
    net.send(std::move(ack), cfg.lat.invalCycles);
}

void
CacheCtrl::onFwd(const Msg &msg)
{
    const CacheLine *cl = cache.findLine(msg.lineAddr);
    bool have_dirty = cl && cl->state == LineState::Dirty;
    bool in_wb_buf = wbBuf.count(msg.lineAddr) > 0;

    if (!have_dirty && !in_wb_buf) {
        // Our ownership grant (WriteReply from the old owner) is
        // still in flight; park the forward until it lands. Under
        // fault injection the grant may be one we never asked for
        // (watchdog-retry race) -- disownGrant() then serves the
        // parked forward from the writeback buffer.
        SPECRT_ASSERT(lenient ||
                      (storeTxnActive && storeTxnLine == msg.lineAddr),
                      "fwd %s for unowned line %#llx at node %d",
                      msgTypeName(msg.type),
                      (unsigned long long)msg.lineAddr, node);
        parkedFwds[msg.lineAddr].push_back(msg);
        return;
    }
    serveFwd(msg);
}

void
CacheCtrl::serveFwd(const Msg &msg)
{
    CacheLine *cl = cache.findLine(msg.lineAddr);
    bool read = msg.type == MsgType::ReadFwd;

    MsgData data;
    MsgBits bits;
    bool retains = false;

    if (cl && cl->state == LineState::Dirty) {
        data.assign(cl->data);
        if (spec)
            bits = spec->combineBits(msg.lineAddr,
                                     spec->onDirtyOut(msg.lineAddr),
                                     msg.specBits);
        if (read) {
            cl->state = LineState::Shared;
            retains = true;
        } else {
            if (spec)
                spec->onInval(msg.lineAddr);
            cache.invalidate(msg.lineAddr);
        }
    } else {
        auto it = wbBuf.find(msg.lineAddr);
        SPECRT_ASSERT(it != wbBuf.end() && !it->second.empty(),
                      "serveFwd without data at node %d", node);
        data = it->second.back().data;
        bits = spec ? spec->combineBits(msg.lineAddr,
                                        it->second.back().bits,
                                        msg.specBits)
                    : it->second.back().bits;
        retains = false;
    }

    Msg reply;
    reply.type = read ? MsgType::ReadReply : MsgType::WriteReply;
    reply.src = node;
    reply.dst = msg.requester;
    reply.lineAddr = msg.lineAddr;
    reply.elemAddr = msg.elemAddr;
    reply.iter = msg.iter;
    reply.txnSeq = msg.txnSeq;
    reply.data = data;
    reply.specBits = bits;
    net.send(std::move(reply), cfg.lat.ownerAccess);

    Msg home;
    home.type = read ? MsgType::ShareWb : MsgType::OwnXfer;
    home.src = node;
    home.dst = msg.src;
    home.lineAddr = msg.lineAddr;
    home.elemAddr = msg.elemAddr;
    home.iter = msg.iter;
    home.data = std::move(data);
    home.specBits = std::move(bits);
    home.ownerRetains = retains;
    net.send(std::move(home), cfg.lat.ownerAccess);
}

void
CacheCtrl::onWritebackAck(const Msg &msg)
{
    auto it = wbBuf.find(msg.lineAddr);
    SPECRT_ASSERT(it != wbBuf.end() && !it->second.empty(),
                  "WritebackAck without buffer entry at node %d", node);
    it->second.pop_front();
    if (it->second.empty())
        wbBuf.erase(it);
}

void
CacheCtrl::unblockLoads(Addr)
{
    if (blockedLoads.empty())
        return;
    std::vector<BlockedLoad> still_blocked;
    std::vector<BlockedLoad> ready;
    for (BlockedLoad &bl : blockedLoads) {
        Addr line = lineOf(bl.addr);
        bool blocked = wbHasLine(line) ||
                       (storeTxnActive && storeTxnLine == line);
        (blocked ? still_blocked : ready).push_back(std::move(bl));
    }
    blockedLoads = std::move(still_blocked);
    for (BlockedLoad &bl : ready)
        load(bl.addr, bl.size, bl.iter, std::move(bl.done));
}

bool
CacheCtrl::quiescent() const
{
    return !loadTxn && wb.empty() && !storeTxnActive && wbBuf.empty() &&
           parkedFwds.empty() && blockedLoads.empty();
}

bool
CacheCtrl::lineBusy(Addr line) const
{
    if (loadTxn && loadTxn->line == line)
        return true;
    if (storeTxnActive && storeTxnLine == line)
        return true;
    if (wbBuf.count(line) || parkedFwds.count(line))
        return true;
    for (const WbEntry &e : wb) {
        if (lineOf(e.addr) == line)
            return true;
    }
    for (const BlockedLoad &bl : blockedLoads) {
        if (lineOf(bl.addr) == line)
            return true;
    }
    return false;
}

void
CacheCtrl::reset(bool commit_dirty)
{
    // A committing reset requires a quiescent machine; an aborting
    // reset (failed speculation) forcibly drops in-flight state.
    SPECRT_ASSERT(!commit_dirty || quiescent(),
                  "committing reset of non-quiescent cache ctrl at "
                  "node %d", node);
    std::vector<CacheLine> victims;
    cache.flushAll(&victims);
    if (commit_dirty) {
        for (const CacheLine &v : victims)
            mem.writeLine(v.addr, v.data.data(),
                          static_cast<uint32_t>(v.data.size()));
        // Writeback-buffer data is also committed: an entry can
        // outlive its WritebackAck only transiently.
        for (auto &[line, entries] : wbBuf) {
            for (const WbBufEntry &e : entries)
                mem.writeLine(line, e.data.data(),
                              static_cast<uint32_t>(e.data.size()));
        }
    }
    wb.clear();
    loadTxn.reset();
    storeTxnActive = false;
    storeTxnLine = invalidAddr;
    // Watchdog timers are owned by the event queue, which the system
    // reset has already cleared; only drop the stale handles here (a
    // stale timer that did survive no-ops on the seq mismatch).
    storeTxnSeq = 0;
    storeAttempts = 0;
    storeWatchdog = invalidEventId;
    wbBuf.clear();
    parkedFwds.clear();
    blockedLoads.clear();
    drainNotices.clear();
    drainScheduled = false;
}

} // namespace specrt
