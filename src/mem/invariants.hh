/**
 * @file
 * Protocol invariant checker, run at quiesce points (iteration
 * barriers, loop boundaries) to catch silent corruption early --
 * especially under fault injection (sim/fault.hh), where a bug in a
 * recovery path would otherwise surface only as a wrong final array.
 *
 * Checked invariants:
 *
 *  - cache tags vs.\ directory state: a Dirty line has exactly one
 *    holder and the home names it; Shared copies match memory and
 *    are covered by presence bits; Uncached lines are cached nowhere
 *    (single-writer / multi-reader).
 *  - non-privatization access bits (paper section 3.2): First/NoShr/
 *    ROnly are mutually consistent at each home and every cache tag
 *    agrees with its home's authoritative bits.
 *  - privatization time stamps (paper section 3.3): MaxR1st and MinW
 *    move monotonically, and MaxR1st > MinW implies the speculation
 *    failure is latched.
 *  - quiescence: after a drain nothing is in flight anywhere (no
 *    active or queued directory transactions, no pending
 *    retransmissions, no outstanding read-ins).
 *
 * Violations are reported through a structured ProtocolViolation
 * channel: a settable handler, defaulting to warn() (which respects
 * the installed LogSink), plus a counter stat. The checker never
 * panics on a violation -- callers decide whether to abort, degrade,
 * or keep going.
 */

#ifndef SPECRT_MEM_INVARIANTS_HH
#define SPECRT_MEM_INVARIANTS_HH

#include <functional>
#include <string>
#include <unordered_map>

#include "mem/dsm.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace specrt
{

class SpecSystem;

/** One detected protocol invariant violation. */
struct ProtocolViolation
{
    /** Short invariant identifier, e.g.\ "dirty-single-owner". */
    std::string invariant;
    /** Human-readable description with addresses and nodes. */
    std::string detail;

    std::string str() const { return invariant + ": " + detail; }
};

/** Checks machine-wide protocol invariants at quiesce points. */
class InvariantChecker : public StatGroup
{
  public:
    using Handler = std::function<void(const ProtocolViolation &)>;

    /**
     * How much in-flight activity the checked state may contain.
     *
     * Quiesce (the default) asserts the full set and is only valid
     * after a drain. Delivery is safe after any single message
     * delivery: lines with an active transaction at their home or
     * any in-flight cache activity are skipped (their tags and
     * directory state legitimately diverge mid-transaction), the
     * cache-tag-vs-home spec-bit cross-check is skipped (tag updates
     * are deferred until lines leave the cache), and the quiescence
     * pass is skipped entirely.
     */
    enum class Granularity
    {
        Quiesce,
        Delivery,
    };

    explicit InvariantChecker(DsmSystem &dsm);

    /** Attach the speculation hardware (enables spec-bit passes). */
    void setSpecSystem(const SpecSystem *s) { spec = s; }

    /**
     * Install a violation handler (e.g.\ a test capturing them).
     * Without one, each violation warn()s through the logging layer.
     */
    void setHandler(Handler h) { handler = std::move(h); }

    /** Forget monotonicity baselines (call at each run start). */
    void newRun();

    /**
     * Run every pass valid at @p g. @return number of violations
     * found this call.
     */
    size_t checkAll(Granularity g = Granularity::Quiesce);

    /** Cache tags vs.\ directory state (+ Shared data vs memory). */
    size_t checkCoherence(Granularity g = Granularity::Quiesce);
    /** Spec access-bit consistency and monotonicity (needs spec). */
    size_t checkSpecBits(Granularity g = Granularity::Quiesce);
    /** Nothing in flight (call only after a drain). */
    size_t checkQuiesced();

    uint64_t
    numViolations() const
    {
        return static_cast<uint64_t>(violations.value());
    }

    Scalar violations;
    Scalar checks;

  private:
    void report(const char *invariant, std::string detail);

    /** Any controller (home or any cache) mid-transaction on @p line. */
    bool lineInFlight(Addr line) const;

    DsmSystem &dsm;
    const SpecSystem *spec = nullptr;
    Handler handler;
    size_t foundThisCall = 0;

    /** Monotonicity baselines from the previous check of this run. */
    struct NpBase
    {
        NodeId first;
        bool noShr;
        bool rOnly;
    };
    struct PsBase
    {
        IterNum maxR1st;
        IterNum minW;
    };
    struct PpBase
    {
        IterNum pMaxR1st;
        IterNum pMaxW;
    };
    std::unordered_map<Addr, NpBase> npBase;
    std::unordered_map<Addr, PsBase> psBase;
    std::unordered_map<Addr, PpBase> ppBase;
};

} // namespace specrt

#endif // SPECRT_MEM_INVARIANTS_HH
