/**
 * @file
 * Interconnection network of the modeled machine.
 *
 * As in the paper, the global network is abstracted as a constant
 * per-traversal latency with no contention ("we model contention in
 * the whole system except in the global network, which is abstracted
 * away as a constant latency"). Messages between distinct nodes take
 * lat.netHop cycles; intra-node messages are immediate. Delivery
 * between any src/dst pair is in send order (the paper's algorithms
 * assume in-order delivery).
 */

#ifndef SPECRT_MEM_NETWORK_HH
#define SPECRT_MEM_NETWORK_HH

#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace specrt
{

/**
 * Routes messages to per-node handlers with constant latency.
 */
class Network : public StatGroup
{
  public:
    using Handler = std::function<void(const Msg &)>;

    Network(EventQueue &eq, const MachineConfig &config);

    /** Install the cache-controller handler for @p node. */
    void setCacheHandler(NodeId node, Handler h);

    /** Install the directory-controller handler for @p node. */
    void setDirHandler(NodeId node, Handler h);

    /**
     * Send @p msg from msg.src to msg.dst after @p extra_delay cycles
     * of sender-side processing. The message is dispatched to the
     * destination's directory handler for home-bound types, else to
     * its cache handler.
     */
    void send(Msg msg, Cycles extra_delay = 0);

    /** Network traversals between distinct nodes. */
    uint64_t numHops() const { return hops; }
    /** Total messages sent (including intra-node). */
    uint64_t numMsgs() const { return static_cast<uint64_t>(msgs.value()); }

  private:
    EventQueue &eq;
    Cycles hopLatency;

    std::vector<Handler> cacheHandlers;
    std::vector<Handler> dirHandlers;

    uint64_t hops = 0;
    Scalar msgs;
    Scalar hopStat;

  public:
    /** Per-message-type counters (index by MsgType value). */
    VectorStat msgsByType;
};

} // namespace specrt

#endif // SPECRT_MEM_NETWORK_HH
