/**
 * @file
 * Interconnection network of the modeled machine.
 *
 * As in the paper, the global network is abstracted as a constant
 * per-traversal latency with no contention ("we model contention in
 * the whole system except in the global network, which is abstracted
 * away as a constant latency"). Messages between distinct nodes take
 * lat.netHop cycles; intra-node messages are immediate. Delivery
 * between any src/dst pair is in send order (the paper's algorithms
 * assume in-order delivery).
 *
 * A FaultPlan (sim/fault.hh) may be attached: while armed it can
 * jitter, duplicate, or drop messages. Jitter never reorders a
 * (src,dst) channel -- each channel remembers its latest scheduled
 * delivery and later sends are clamped behind it. Dropped
 * fire-and-forget speculation signals are retransmitted by the
 * network interface with exponential backoff; dropped requests are
 * recovered by the requester's watchdog (cache_ctrl).
 */

#ifndef SPECRT_MEM_NETWORK_HH
#define SPECRT_MEM_NETWORK_HH

#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace specrt
{

/**
 * Routes messages to per-node handlers with constant latency.
 */
class Network : public StatGroup
{
  public:
    using Handler = std::function<void(const Msg &)>;
    /** Fired when a retransmitted signal exhausts its retry budget. */
    using LostHook = std::function<void(const Msg &, const char *)>;

    Network(EventQueue &eq, const MachineConfig &config);

    /** Install the cache-controller handler for @p node. */
    void setCacheHandler(NodeId node, Handler h);

    /** Install the directory-controller handler for @p node. */
    void setDirHandler(NodeId node, Handler h);

    /** Attach the fault schedule (null = fault-free). */
    void setFaultPlan(FaultPlan *p) { plan = p; }

    /** Install the lost-transaction hook (degradation path). */
    void setLostHook(LostHook h) { lostHook = std::move(h); }

    /**
     * Send @p msg from msg.src to msg.dst after @p extra_delay cycles
     * of sender-side processing. The message is dispatched to the
     * destination's directory handler for home-bound types, else to
     * its cache handler.
     */
    void send(Msg msg, Cycles extra_delay = 0);

    /**
     * Drop channel-ordering floors and retransmission bookkeeping
     * (run-boundary reset; the owning event queue is reset by the
     * caller, which discards any in-flight retransmit events).
     */
    void reset();

    /** Network traversals between distinct nodes. */
    uint64_t numHops() const { return hops; }
    /** Total messages sent (including intra-node). */
    uint64_t numMsgs() const { return static_cast<uint64_t>(msgs.value()); }
    /** Signal retransmissions still scheduled (quiesce check). */
    size_t numPendingRetransmits() const { return pendingRetransmits; }
    /** Deliveries scheduled but not yet handed over (timeline gauge). */
    size_t numInFlight() const { return inFlight; }

  private:
    /** One transmission attempt (attempt > 0 for retransmissions). */
    void transmit(Msg msg, Cycles extra_delay, int attempt);
    /**
     * Deliver one copy at base delay + @p jitter, FIFO-clamped.
     * @p flow is the trace flow id tying this delivery back to its
     * MsgSend record (0 = tracing off at send time).
     */
    void deliver(const Msg &msg, Cycles delay, Cycles jitter,
                 uint64_t flow);
    /** Schedule a backoff retransmission of a dropped signal. */
    void scheduleRetransmit(Msg msg, int attempt);

    EventQueue &eq;
    Cycles hopLatency;
    /**
     * The owning SimContext's message arena: every scheduled delivery
     * owns a pooled copy of its message, so steady-state send/deliver
     * traffic never touches the general heap.
     */
    Arena *arena;
    int numNodes;

    std::vector<Handler> cacheHandlers;
    std::vector<Handler> dirHandlers;

    FaultPlan *plan = nullptr;
    LostHook lostHook;
    /** Latest scheduled delivery tick per (src,dst) channel, indexed
     *  src * numNodes + dst (only touched under fault injection). */
    std::vector<Tick> channelFloor;
    size_t pendingRetransmits = 0;
    /** Scheduled deliveries not yet handed to their endpoint. */
    size_t inFlight = 0;

    uint64_t hops = 0;
    Scalar msgs;
    Scalar hopStat;

  public:
    Scalar msgsRetried;
    Scalar msgsLost;

    /** Per-message-type counters (index by MsgType value). */
    VectorStat msgsByType;
    /**
     * NI retransmissions per message class (index by MsgType value):
     * which kinds of dropped signal the fault watchdog actually had
     * to recover. Sums to msgsRetried.
     */
    VectorStat retriesByType;
};

} // namespace specrt

#endif // SPECRT_MEM_NETWORK_HH
