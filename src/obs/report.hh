/**
 * @file
 * Unified run report + cross-run differ: the campaign flight
 * recorder's third stage.
 *
 * A full evaluation run currently leaves its story scattered over
 * four artifacts: the StatGroup snapshot (BENCH_results.json), the
 * timeline CSV, the stall CostBreakdown, and the critical-path /
 * abort-attribution warn lines. renderReport() fuses them into one
 * deterministic report.json -- same (config, seed, binary) in, byte-
 * identical bytes out, independent of --jobs -- and diff() compares
 * two such reports, classifying every changed key as a regression,
 * an improvement, or a neutral change by a per-key direction rule
 * (stall cycles up = regression, speedup up = improvement, ...).
 *
 * The report deliberately contains only *simulation-deterministic*
 * data. Host-side figures (wall time, peak RSS) stay in
 * BENCH_results.json where the perf gate reads them;
 * scripts/compare_runs.py can fold them in as informational rows.
 *
 * Consumers: bench --report-out, examples/report_diff,
 * scripts/compare_runs.py (same schema and direction rules), and the
 * CI bench-smoke step that self-diffs a report (must be empty) and
 * checks `--jobs` byte-identity.
 */

#ifndef SPECRT_OBS_REPORT_HH
#define SPECRT_OBS_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/stall.hh"
#include "sim/stats.hh"

namespace specrt
{

namespace critpath
{
class Recorder;
}

namespace timeline
{
class Timeline;
}

namespace obs
{

class EventLog;

/** Everything renderReport() fuses into one report.json. */
struct ReportInputs
{
    /** Run name (bench name, campaign label). */
    std::string name;
    std::string gitSha;
    /** Hex MachineConfig fingerprint. */
    std::string configFingerprint;
    uint64_t baseSeed = 0;

    // Aggregate counters (bench::Telemetry or hand-filled).
    uint64_t simTicks = 0;
    uint64_t eventsFired = 0;
    uint64_t runs = 0;
    uint64_t infraFailedRuns = 0;
    std::vector<std::pair<std::string, double>> metrics;
    StatSnapshot stats;

    /** Aggregated stall/cost breakdown (all-zero when not profiled). */
    stall::CostBreakdown cost;

    // Optional deep sections (skipped when null / empty).
    const critpath::Recorder *critpath = nullptr;
    const timeline::Timeline *timeline = nullptr;
    const EventLog *events = nullptr;
};

/** Render the deterministic report JSON (field order fixed). */
std::string renderReport(const ReportInputs &in);

/** renderReport() to @p path; false on I/O failure. */
bool writeReport(const ReportInputs &in, const std::string &path);

// --- parsing ----------------------------------------------------------

/**
 * A parsed report, flattened to dotted keys ("cost.stalls.dir_queue",
 * "metrics.fig11_speedup", "events.counts.abort"). Numbers and bools
 * (0/1) land in `numbers`, strings in `strings`; array elements get
 * "[i]" suffixes; nulls are skipped.
 */
struct RunReport
{
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;
};

/**
 * Parse @p json (any JSON object, not just reports) into @p out.
 * False + @p err on malformed input.
 */
bool parseReport(const std::string &json, RunReport &out,
                 std::string &err);

/** parseReport() on the contents of @p path. */
bool loadReport(const std::string &path, RunReport &out,
                std::string &err);

// --- diffing ----------------------------------------------------------

struct DiffOptions
{
    /** Relative change below this is "equal" (numeric keys). */
    double tolerance = 0.02;
};

enum class DiffKind
{
    Changed,    ///< beyond tolerance, no direction rule (neutral)
    Improved,   ///< moved the good way per the direction rule
    Regressed,  ///< moved the bad way per the direction rule
    Added,      ///< key only in B
    Removed,    ///< key only in A
};

struct DiffRow
{
    std::string key;
    DiffKind kind = DiffKind::Changed;
    bool numeric = true;
    double a = 0, b = 0;
    /** String values when !numeric. */
    std::string sa, sb;
};

struct DiffResult
{
    /** Non-equal keys only, in sorted key order. */
    std::vector<DiffRow> rows;
    /** Keys present in both reports. */
    size_t compared = 0;
    size_t regressions = 0;
    size_t improvements = 0;

    bool identical() const { return rows.empty(); }
};

/**
 * Which way is "better" for @p key: -1 lower-better (stall cycles,
 * aborts, failures, mem_*), +1 higher-better (speedup metrics,
 * ticks_per_sec), 0 neutral. compare_runs.py mirrors these rules.
 */
int keyDirection(const std::string &key);

/** Compare two parsed reports (keys sorted; informational keys skipped). */
DiffResult diff(const RunReport &a, const RunReport &b,
                const DiffOptions &opt = {});

/**
 * Render @p d as a Markdown table ("| key | A | B | delta | status |")
 * with a summary trailer; "no differences" prose when identical.
 */
std::string diffMarkdown(const DiffResult &d, const std::string &nameA,
                         const std::string &nameB);

} // namespace obs
} // namespace specrt

#endif // SPECRT_OBS_REPORT_HH
