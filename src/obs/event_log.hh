/**
 * @file
 * Structured event log: the campaign flight recorder's first stage.
 *
 * The trace ring (sim/trace.hh), the timeline (sim/timeline.hh), and
 * the stall profiler (sim/stall.hh) each answer one question in
 * depth; none answers "what happened to this run, in order?". The
 * event log records exactly that, as a bounded ring of rendered
 * JSONL lines -- one JSON object per line, fields in a fixed order,
 * so two runs of the same (config, seed) produce byte-identical
 * logs:
 *
 *   {"ev":"run_begin","t":0,"mode":"HW","iters":64,"procs":8}
 *   {"ev":"checkpoint","t":118,"what":"backup of shared arrays"}
 *   {"ev":"abort","t":302,"elem":"0x1a8","node":2,"iter":7,
 *    "reason":"...","rule":"..."}
 *   {"ev":"run_end","t":9301,"mode":"HW","passed":false,
 *    "infra_failed":false,"total_ticks":9301,"iters":64}
 *
 * Event kinds: run lifecycle (run_begin / run_end), campaign job
 * lifecycle (job_begin / job_end), speculation aborts with their
 * PR-3 attribution (abort, sw_abort), network fault injections
 * (fault), degradation transitions (degrade), and checkpoint /
 * commit boundaries (checkpoint, commit).
 *
 * Like the trace and the timeline, the log is instance-scoped: the
 * current SimContext owns one, campaign jobs each fill their own,
 * and merge() folds job logs into the process-level one in job-id
 * order, so the merged JSONL is byte-identical across `--jobs N`.
 * The hot-path guard follows the trace.hh discipline -- a
 * thread-local latch makes the disabled case one predictable branch,
 * and every typed emitter below is free when the log is off.
 *
 * File sink: SPECRT_EVENTS / SPECRT_EVENTS_OUT turn the log on for
 * any driver (the context exports the JSONL when it dies, mirroring
 * SPECRT_TRACE); bench binaries take --events-out.
 */

#ifndef SPECRT_OBS_EVENT_LOG_HH
#define SPECRT_OBS_EVENT_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace specrt
{
namespace obs
{

/** Bounded ring of rendered JSONL event lines (newest kept). */
class EventLog
{
  public:
    /** Ring capacity when the caller does not pick one. */
    static constexpr size_t defaultCapacity = 8192;

    /**
     * Start collecting; idempotent, keeps accumulated lines. A
     * capacity change takes effect for subsequent emits (existing
     * lines above the new capacity are shed oldest-first).
     */
    void enable(size_t capacity = defaultCapacity);
    /** Stop collecting; accumulated lines stay exportable. */
    void disable();
    bool isOn() const { return on; }

    /** Drop every line (capacity and on/off state kept). */
    void clear();

    size_t capacity() const { return cap; }
    /** Lines currently retained (<= capacity). */
    size_t size() const { return ring.size(); }
    /** Lines ever emitted (including ones the ring shed). */
    uint64_t recorded() const { return total; }
    /** Lines shed by the ring (recorded - size). */
    uint64_t dropped() const { return total - ring.size(); }

    /** Retained line @p i, oldest first. */
    const std::string &at(size_t i) const;

    /**
     * Append one rendered line (no trailing newline). Appends
     * regardless of isOn(): enablement is enforced by the emitters'
     * obs::enabled() guard, and merge paths must work on captured
     * shards whatever their flag says.
     */
    void emit(std::string line);

    /**
     * Append @p shard's retained lines, oldest first. Called in
     * job-id order by the campaign merge path, which makes the
     * merged log independent of --jobs.
     */
    void merge(const EventLog &shard);

    /** Every retained line, oldest first, newline-terminated. */
    std::string jsonl() const;

  private:
    bool on = false;
    size_t cap = defaultCapacity;
    /** Overwrite cursor once the ring is full (slot of the oldest). */
    size_t head = 0;
    uint64_t total = 0;
    std::vector<std::string> ring;
};

/** The current context's event log (per-instance, like the trace). */
EventLog &log();

/** Mirror of EventLog::isOn() for the thread's current context. */
extern thread_local bool tlsEventsOn;

/** Cheap hot-path guard; true when the current log collects. */
inline bool enabled() { return tlsEventsOn; }

/** Re-sync the thread-local latch with the current context. */
void refreshEnabled();

/**
 * Apply SPECRT_EVENTS / SPECRT_EVENTS_OUT to the current context,
 * once per context; returns enabled(). SPECRT_EVENTS unset or "0"
 * leaves the log off; "1" turns it on; any other value turns it on
 * AND names the output file (SPECRT_EVENTS_OUT overrides). With an
 * output path set, the context exports the JSONL when it dies
 * (mirrors SPECRT_TRACE / SPECRT_TIMELINE / SPECRT_CRITPATH).
 */
bool maybeEnableFromEnv();

// --- JSON helpers (shared with obs/report.cc) -------------------------

/** Backslash-escape @p s for embedding in a JSON string. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip decimal of @p v ("0" for inf/nan). */
std::string jsonNumber(double v);

// --- typed emitters ---------------------------------------------------
// One branch when disabled; instrumentation sites call these
// unconditionally. Field order within a line is fixed.

/** A LoopExecutor run started. */
void runBegin(Tick t, const char *mode, uint64_t iters, int procs);

/** A LoopExecutor run finished (or infra-aborted). */
void runEnd(Tick t, const char *mode, bool passed, bool infra_failed,
            uint64_t total_ticks, uint64_t iters);

/** Campaign job @p job began under context seed @p seed. */
void jobBegin(uint64_t job, uint64_t seed);

/** Campaign job @p job finished; @p error is "" when @p ok. */
void jobEnd(uint64_t job, bool ok, const std::string &error);

/** HW speculation abort with its attribution (spec/spec_unit.cc). */
void abortEvent(Tick t, Addr elem, NodeId node, IterNum iter,
                const char *reason, const char *rule);

/** The software LRPD test failed (core/loop_exec.cc). */
void swAbort(Tick t, const char *reason);

/**
 * The network's fault plan acted on a message: @p kind is "drop",
 * "dup", "jitter", or "lost" (retransmission budget exhausted).
 */
void faultInject(Tick t, const char *kind, const char *msg_type,
                 int src, int dst);

/** The degradation ladder stepped down a tier. */
void degrade(const char *from, const char *to,
             const std::string &reason);

/** A checkpoint boundary (backup / restore of shared arrays). */
void checkpointMark(Tick t, const char *what);

/** Speculative state committed. */
void commitMark(Tick t);

} // namespace obs
} // namespace specrt

#endif // SPECRT_OBS_EVENT_LOG_HH
