#include "obs/event_log.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/sim_context.hh"

namespace specrt
{
namespace obs
{

thread_local bool tlsEventsOn = false;

// --- EventLog ---------------------------------------------------------

void
EventLog::enable(size_t capacity)
{
    on = true;
    if (capacity == 0)
        capacity = 1;
    if (capacity == cap)
        return;
    // Re-linearize before changing geometry so at()/jsonl() stay
    // oldest-first; shed oldest lines if shrinking.
    std::vector<std::string> flat;
    flat.reserve(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        flat.push_back(at(i));
    if (flat.size() > capacity)
        flat.erase(flat.begin(),
                   flat.begin() + (flat.size() - capacity));
    ring = std::move(flat);
    head = 0;
    cap = capacity;
}

void
EventLog::disable()
{
    on = false;
}

void
EventLog::clear()
{
    ring.clear();
    head = 0;
    total = 0;
}

const std::string &
EventLog::at(size_t i) const
{
    if (ring.size() < cap)
        return ring[i];
    return ring[(head + i) % cap];
}

void
EventLog::emit(std::string line)
{
    ++total;
    if (ring.size() < cap) {
        ring.push_back(std::move(line));
        return;
    }
    ring[head] = std::move(line);
    head = (head + 1) % cap;
}

void
EventLog::merge(const EventLog &shard)
{
    for (size_t i = 0; i < shard.size(); ++i)
        emit(shard.at(i));
    // Lines the shard's own ring already shed count as dropped here
    // too: the merged recorded() tally stays the true emit count.
    total += shard.dropped();
}

std::string
EventLog::jsonl() const
{
    std::string out;
    for (size_t i = 0; i < ring.size(); ++i) {
        out += at(i);
        out += '\n';
    }
    return out;
}

// --- context plumbing -------------------------------------------------

EventLog &
log()
{
    return SimContext::current().eventsData();
}

void
refreshEnabled()
{
    tlsEventsOn = SimContext::current().eventsData().isOn();
}

bool
maybeEnableFromEnv()
{
    SimContext &ctx = SimContext::current();
    if (ctx.eventsEnvChecked) {
        refreshEnabled();
        return enabled();
    }
    ctx.eventsEnvChecked = true;
    const char *env = std::getenv("SPECRT_EVENTS");
    if (env && std::strcmp(env, "0") != 0) {
        ctx.eventsData().enable();
        if (std::strcmp(env, "1") != 0)
            ctx.eventsOutPath = env;
        if (const char *out = std::getenv("SPECRT_EVENTS_OUT"))
            ctx.eventsOutPath = out;
        ctx.eventsExportOnDestroy = !ctx.eventsOutPath.empty();
    }
    refreshEnabled();
    return enabled();
}

// --- JSON helpers -----------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    // %.17g round-trips doubles; integers up to 2^53 print exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no inf/nan.
    if (std::strstr(buf, "inf") || std::strstr(buf, "nan"))
        return "0";
    return buf;
}

// --- typed emitters ---------------------------------------------------

namespace
{

/** printf into the current log (callers hold the enabled() guard). */
void
emitf(const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

void
emitf(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n < 0)
        return;
    if (static_cast<size_t>(n) >= sizeof(buf))
        buf[sizeof(buf) - 1] = '\0'; // truncated: keep the prefix
    log().emit(buf);
}

} // namespace

void
runBegin(Tick t, const char *mode, uint64_t iters, int procs)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"run_begin\",\"t\":%" PRIu64
          ",\"mode\":\"%s\",\"iters\":%" PRIu64 ",\"procs\":%d}",
          t, mode, iters, procs);
}

void
runEnd(Tick t, const char *mode, bool passed, bool infra_failed,
       uint64_t total_ticks, uint64_t iters)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"run_end\",\"t\":%" PRIu64 ",\"mode\":\"%s\","
          "\"passed\":%s,\"infra_failed\":%s,\"total_ticks\":%" PRIu64
          ",\"iters\":%" PRIu64 "}",
          t, mode, passed ? "true" : "false",
          infra_failed ? "true" : "false", total_ticks, iters);
}

void
jobBegin(uint64_t job, uint64_t seed)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"job_begin\",\"job\":%" PRIu64
          ",\"seed\":\"0x%" PRIx64 "\"}",
          job, seed);
}

void
jobEnd(uint64_t job, bool ok, const std::string &error)
{
    if (!enabled())
        return;
    std::string esc = jsonEscape(error);
    emitf("{\"ev\":\"job_end\",\"job\":%" PRIu64
          ",\"ok\":%s,\"error\":\"%s\"}",
          job, ok ? "true" : "false", esc.c_str());
}

void
abortEvent(Tick t, Addr elem, NodeId node, IterNum iter,
           const char *reason, const char *rule)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"abort\",\"t\":%" PRIu64 ",\"elem\":\"0x%" PRIx64
          "\",\"node\":%d,\"iter\":%" PRId64
          ",\"reason\":\"%s\",\"rule\":\"%s\"}",
          t, elem, node, iter,
          jsonEscape(reason ? reason : "unspecified").c_str(),
          jsonEscape(rule ? rule : "").c_str());
}

void
swAbort(Tick t, const char *reason)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"sw_abort\",\"t\":%" PRIu64 ",\"reason\":\"%s\"}",
          t, jsonEscape(reason ? reason : "unspecified").c_str());
}

void
faultInject(Tick t, const char *kind, const char *msg_type, int src,
            int dst)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"fault\",\"t\":%" PRIu64
          ",\"kind\":\"%s\",\"msg\":\"%s\",\"src\":%d,\"dst\":%d}",
          t, kind, msg_type, src, dst);
}

void
degrade(const char *from, const char *to, const std::string &reason)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"degrade\",\"from\":\"%s\",\"to\":\"%s\","
          "\"reason\":\"%s\"}",
          from, to, jsonEscape(reason).c_str());
}

void
checkpointMark(Tick t, const char *what)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"checkpoint\",\"t\":%" PRIu64 ",\"what\":\"%s\"}",
          t, jsonEscape(what ? what : "").c_str());
}

void
commitMark(Tick t)
{
    if (!enabled())
        return;
    emitf("{\"ev\":\"commit\",\"t\":%" PRIu64 "}", t);
}

} // namespace obs
} // namespace specrt
