#include "obs/report.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/event_log.hh"
#include "sim/critpath.hh"
#include "sim/timeline.hh"

namespace specrt
{
namespace obs
{

namespace
{

/** Count retained event lines by kind ({"ev":"<kind>"...}). */
std::map<std::string, uint64_t>
eventCounts(const EventLog &ev)
{
    std::map<std::string, uint64_t> counts;
    static const char prefix[] = "{\"ev\":\"";
    constexpr size_t plen = sizeof(prefix) - 1;
    for (size_t i = 0; i < ev.size(); ++i) {
        const std::string &line = ev.at(i);
        if (line.compare(0, plen, prefix) != 0)
            continue;
        size_t q = line.find('"', plen);
        if (q == std::string::npos)
            continue;
        ++counts[line.substr(plen, q - plen)];
    }
    return counts;
}

/** Display-friendly number for the Markdown table (6 sig digits). */
std::string
tableNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

void
appendPairs(std::ostringstream &os,
            const std::vector<std::pair<std::string, double>> &pairs)
{
    for (size_t i = 0; i < pairs.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscape(pairs[i].first)
           << "\": " << jsonNumber(pairs[i].second);
    }
}

} // namespace

std::string
renderReport(const ReportInputs &in)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"name\": \"" << jsonEscape(in.name) << "\",\n"
       << "  \"git_sha\": \"" << jsonEscape(in.gitSha) << "\",\n"
       << "  \"config_fingerprint\": \""
       << jsonEscape(in.configFingerprint) << "\",\n"
       << "  \"base_seed\": " << in.baseSeed << ",\n"
       << "  \"sim_ticks\": " << in.simTicks << ",\n"
       << "  \"events_fired\": " << in.eventsFired << ",\n"
       << "  \"runs\": " << in.runs << ",\n"
       << "  \"infra_failed_runs\": " << in.infraFailedRuns << ",\n";

    os << "  \"metrics\": {";
    appendPairs(os, in.metrics);
    os << "},\n";

    os << "  \"stats\": {";
    appendPairs(os, in.stats);
    os << "},\n";

    const stall::CostBreakdown &c = in.cost;
    os << "  \"cost\": {\n"
       << "    \"valid\": " << (c.valid ? "true" : "false") << ",\n"
       << "    \"num_procs\": " << c.numProcs << ",\n"
       << "    \"per_node_ticks\": " << jsonNumber(c.perNodeTicks)
       << ",\n"
       << "    \"busy\": " << jsonNumber(c.busy) << ",\n"
       << "    \"stalls\": {";
    for (size_t i = 0; i < stall::numCauses; ++i) {
        os << (i ? ", " : "") << "\""
           << stall::causeName(static_cast<stall::Cause>(i))
           << "\": " << jsonNumber(c.stalls[i]);
    }
    os << "},\n"
       << "    \"dominant\": \""
       << (c.valid ? stall::causeName(c.dominantCause()) : "")
       << "\",\n"
       << "    \"dominant_share\": "
       << jsonNumber(c.valid ? c.dominantShare() : 0.0) << "\n"
       << "  },\n";

    os << "  \"critpath\": {\n"
       << "    \"runs\": "
       << (in.critpath ? in.critpath->numRuns() : 0) << ",\n"
       << "    \"txns\": "
       << (in.critpath ? in.critpath->numTxns() : 0) << ",\n"
       << "    \"summary\": \""
       << jsonEscape(in.critpath ? in.critpath->summaryLine()
                                 : std::string())
       << "\"\n  },\n";

    os << "  \"timeline\": {\n"
       << "    \"samples\": "
       << (in.timeline ? in.timeline->numSamples() : 0) << ",\n"
       << "    \"series\": "
       << (in.timeline ? in.timeline->numSeries() : 0) << ",\n"
       << "    \"hot\": \""
       << jsonEscape(in.timeline ? in.timeline->hotSummary()
                                 : std::string())
       << "\"\n  },\n";

    os << "  \"events\": {\n"
       << "    \"recorded\": "
       << (in.events ? in.events->recorded() : 0) << ",\n"
       << "    \"dropped\": "
       << (in.events ? in.events->dropped() : 0) << ",\n"
       << "    \"counts\": {";
    if (in.events) {
        bool first = true;
        for (const auto &[kind, n] : eventCounts(*in.events)) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(kind)
               << "\": " << n;
            first = false;
        }
    }
    os << "},\n"
       << "    \"aborts\": [";
    // The newest abort lines verbatim: each already is a JSON
    // object, so they embed directly.
    if (in.events) {
        constexpr size_t maxAborts = 8;
        std::vector<const std::string *> aborts;
        for (size_t i = 0; i < in.events->size(); ++i) {
            const std::string &line = in.events->at(i);
            if (line.rfind("{\"ev\":\"abort\"", 0) == 0 ||
                line.rfind("{\"ev\":\"sw_abort\"", 0) == 0)
                aborts.push_back(&line);
        }
        size_t from =
            aborts.size() > maxAborts ? aborts.size() - maxAborts : 0;
        for (size_t i = from; i < aborts.size(); ++i)
            os << (i == from ? "" : ", ") << *aborts[i];
    }
    os << "]\n  }\n}\n";
    return os.str();
}

bool
writeReport(const ReportInputs &in, const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    os << renderReport(in);
    return static_cast<bool>(os);
}

// --- parsing ----------------------------------------------------------

namespace
{

/**
 * Minimal recursive-descent JSON reader that flattens values into
 * RunReport's dotted-key maps. It validates only as much structure as
 * the differ needs; tests/support/json_checker.hh stays the
 * strict-syntax oracle in tests.
 */
struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (p >= end || *p != c)
            return fail(std::string("expected '") + c + "'");
        ++p;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("bad escape");
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    // Reports only compare strings for equality, so
                    // the escape can stay verbatim.
                    if (end - p < 5)
                        return fail("bad \\u escape");
                    out += "\\u";
                    out.append(p + 1, 4);
                    p += 4;
                    break;
                  default: return fail("bad escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        return true;
    }

    bool
    parseValue(const std::string &path, RunReport &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        char c = *p;
        if (c == '{')
            return parseObject(path, out);
        if (c == '[')
            return parseArray(path, out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out.strings[path] = s;
            return true;
        }
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
            p += 4;
            out.numbers[path] = 1;
            return true;
        }
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
            p += 5;
            out.numbers[path] = 0;
            return true;
        }
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
            p += 4;
            return true; // nulls are skipped
        }
        char *numEnd = nullptr;
        double v = std::strtod(p, &numEnd);
        if (numEnd == p)
            return fail(
                "bad value at '" +
                std::string(p, std::min<size_t>(end - p, 16)) + "'");
        p = numEnd;
        out.numbers[path] = v;
        return true;
    }

    bool
    parseObject(const std::string &path, RunReport &out)
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!expect(':'))
                return false;
            if (!parseValue(path.empty() ? key : path + "." + key,
                            out))
                return false;
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(const std::string &path, RunReport &out)
    {
        if (!expect('['))
            return false;
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        for (size_t i = 0;; ++i) {
            if (!parseValue(path + "[" + std::to_string(i) + "]",
                            out))
                return false;
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            return expect(']');
        }
    }
};

} // namespace

bool
parseReport(const std::string &json, RunReport &out, std::string &err)
{
    out.numbers.clear();
    out.strings.clear();
    Parser parser{json.data(), json.data() + json.size(), {}};
    if (!parser.parseValue("", out)) {
        err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        err = "trailing content after JSON value";
        return false;
    }
    return true;
}

bool
loadReport(const std::string &path, RunReport &out, std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseReport(buf.str(), out, err);
}

// --- diffing ----------------------------------------------------------

int
keyDirection(const std::string &key)
{
    auto endsWith = [&](const char *s) {
        size_t n = std::strlen(s);
        return key.size() >= n &&
               key.compare(key.size() - n, n, s) == 0;
    };
    auto contains = [&](const char *s) {
        return key.find(s) != std::string::npos;
    };

    // "speedup" anywhere, not just as a suffix: the benches name
    // their headline metrics hw_speedup_mean_16p and the like.
    if (contains("speedup") || endsWith("ticks_per_sec") ||
        endsWith("events_per_sec"))
        return +1;
    if (key.rfind("cost.stalls.", 0) == 0)
        return -1;
    if (key.rfind("events.counts.", 0) == 0) {
        // More conflict/fault activity is worse; lifecycle counts
        // (run_begin, commit, ...) are workload-shaped, neutral.
        std::string kind = key.substr(std::strlen("events.counts."));
        if (kind == "abort" || kind == "sw_abort" ||
            kind == "fault" || kind == "degrade")
            return -1;
        return 0;
    }
    if (contains("violation") || contains("abort") ||
        contains("lost") || contains("retr") ||
        contains("infra_failed") || contains("failures") ||
        contains("mem_"))
        return -1;
    return 0;
}

DiffResult
diff(const RunReport &a, const RunReport &b, const DiffOptions &opt)
{
    DiffResult res;
    // "schema" carries no run information; the key set itself is the
    // schema check.
    auto skipped = [](const std::string &key) {
        return key == "schema";
    };

    std::set<std::string> keys;
    for (const auto &kv : a.numbers)
        keys.insert(kv.first);
    for (const auto &kv : b.numbers)
        keys.insert(kv.first);
    for (const auto &kv : a.strings)
        keys.insert(kv.first);
    for (const auto &kv : b.strings)
        keys.insert(kv.first);

    for (const std::string &key : keys) {
        if (skipped(key))
            continue;
        auto na = a.numbers.find(key);
        auto nb = b.numbers.find(key);
        auto sa = a.strings.find(key);
        auto sb = b.strings.find(key);
        bool inA = na != a.numbers.end() || sa != a.strings.end();
        bool inB = nb != b.numbers.end() || sb != b.strings.end();

        DiffRow row;
        row.key = key;
        if (na != a.numbers.end())
            row.a = na->second;
        if (nb != b.numbers.end())
            row.b = nb->second;
        if (sa != a.strings.end())
            row.sa = sa->second;
        if (sb != b.strings.end())
            row.sb = sb->second;

        if (!inA || !inB) {
            row.kind = inB ? DiffKind::Added : DiffKind::Removed;
            row.numeric = inB ? nb != b.numbers.end()
                              : na != a.numbers.end();
            res.rows.push_back(std::move(row));
            continue;
        }

        ++res.compared;
        if (na != a.numbers.end() && nb != b.numbers.end()) {
            double va = na->second, vb = nb->second;
            if (va == vb)
                continue;
            double denom = std::max(std::abs(va), std::abs(vb));
            if (denom > 0 &&
                std::abs(vb - va) / denom <= opt.tolerance)
                continue;
            int dir = keyDirection(key);
            if (dir == 0)
                row.kind = DiffKind::Changed;
            else if ((vb > va) == (dir > 0))
                row.kind = DiffKind::Improved;
            else
                row.kind = DiffKind::Regressed;
        } else if (sa != a.strings.end() && sb != b.strings.end()) {
            if (sa->second == sb->second)
                continue;
            row.numeric = false;
            row.kind = DiffKind::Changed;
        } else {
            // The key changed type between reports: surface it,
            // neutrally, as a string row.
            row.numeric = false;
            if (row.sa.empty())
                row.sa = jsonNumber(row.a);
            if (row.sb.empty())
                row.sb = jsonNumber(row.b);
            row.kind = DiffKind::Changed;
        }
        if (row.kind == DiffKind::Regressed)
            ++res.regressions;
        else if (row.kind == DiffKind::Improved)
            ++res.improvements;
        res.rows.push_back(std::move(row));
    }
    return res;
}

std::string
diffMarkdown(const DiffResult &d, const std::string &nameA,
             const std::string &nameB)
{
    std::ostringstream os;
    os << "### Run comparison: " << nameA << " vs " << nameB
       << "\n\n";
    if (d.identical()) {
        os << "No differences: " << d.compared
           << " keys compared, all equal.\n";
        return os.str();
    }

    // One table row per key: flatten newlines and pipes, clip long
    // string values.
    auto cell = [](const std::string &s) {
        std::string out;
        for (char c : s)
            out += (c == '\n' || c == '|') ? ' ' : c;
        if (out.size() > 48)
            out = out.substr(0, 45) + "...";
        return out;
    };

    os << "| key | " << nameA << " | " << nameB
       << " | delta | status |\n"
       << "|---|---:|---:|---:|---|\n";
    for (const DiffRow &row : d.rows) {
        bool onlyA = row.kind == DiffKind::Removed;
        bool onlyB = row.kind == DiffKind::Added;
        std::string va, vb, delta = "n/a";
        if (row.numeric) {
            va = onlyB ? "-" : tableNumber(row.a);
            vb = onlyA ? "-" : tableNumber(row.b);
            if (!onlyA && !onlyB && row.a != 0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.1f%%",
                              100.0 * (row.b - row.a) / row.a);
                delta = buf;
            }
        } else {
            auto code = [&](const std::string &s) {
                std::string o = "`";
                o += cell(s);
                o += "`";
                return o;
            };
            va = onlyB ? std::string("-") : code(row.sa);
            vb = onlyA ? std::string("-") : code(row.sb);
        }
        os << "| `" << row.key << "` | " << va << " | " << vb
           << " | " << delta << " | ";
        switch (row.kind) {
          case DiffKind::Regressed:
            os << ":x: regressed";
            break;
          case DiffKind::Improved:
            os << ":white_check_mark: improved";
            break;
          case DiffKind::Changed: os << "changed"; break;
          case DiffKind::Added: os << "added"; break;
          case DiffKind::Removed: os << "removed"; break;
        }
        os << " |\n";
    }
    os << "\n**" << d.compared << " keys compared, " << d.rows.size()
       << " difference(s), " << d.regressions << " regression(s), "
       << d.improvements << " improvement(s).**\n";
    return os.str();
}

} // namespace obs
} // namespace specrt
