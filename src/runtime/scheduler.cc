#include "runtime/scheduler.hh"

#include <memory>

#include "sim/logging.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Record a work grant of iterations [lo, hi) to processor @p p. */
void
traceGrant(NodeId p, Tick now, IterNum lo, IterNum hi,
           const char *policy)
{
    if (!trace::enabled())
        return;
    trace::TraceRecord r;
    r.tick = now;
    r.op = trace::TraceOp::Grant;
    r.node = p;
    r.iter = lo;
    r.a = static_cast<uint64_t>(hi);
    r.label = policy;
    trace::buffer().emit(r);
}

} // namespace

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::StaticChunk: return "static";
      case SchedPolicy::BlockCyclic: return "block-cyclic";
      case SchedPolicy::Dynamic:     return "dynamic";
    }
    return "unknown";
}

StaticChunkSource::StaticChunkSource(IterNum num_iters, int num_procs)
    : numIters(num_iters), numProcs(num_procs),
      handedOut(num_procs, false)
{
    SPECRT_ASSERT(num_procs > 0, "no processors");
}

std::pair<IterNum, IterNum>
StaticChunkSource::chunkOf(NodeId p) const
{
    IterNum per = numIters / numProcs;
    IterNum extra = numIters % numProcs;
    IterNum lo = 1 + p * per + std::min<IterNum>(p, extra);
    IterNum size = per + (p < extra ? 1 : 0);
    return {lo, lo + size};
}

WorkSource::Grant
StaticChunkSource::next(NodeId p, Tick now)
{
    SPECRT_ASSERT(p >= 0 && p < numProcs, "bad proc %d", p);
    if (handedOut[p])
        return {true, 0, 0, 0};
    handedOut[p] = true;
    auto [lo, hi] = chunkOf(p);
    if (lo >= hi)
        return {true, 0, 0, 0};
    traceGrant(p, now, lo, hi, "static");
    return {false, lo, hi, 0};
}

BlockCyclicSource::BlockCyclicSource(IterNum num_iters, int num_procs,
                                     IterNum block_iters)
    : numIters(num_iters), numProcs(num_procs),
      blockIters(block_iters), nextBlock(num_procs, 0)
{
    SPECRT_ASSERT(block_iters > 0, "zero block size");
}

WorkSource::Grant
BlockCyclicSource::next(NodeId p, Tick now)
{
    SPECRT_ASSERT(p >= 0 && p < numProcs, "bad proc %d", p);
    IterNum ordinal = nextBlock[p] * numProcs + p;
    IterNum lo = 1 + ordinal * blockIters;
    if (lo > numIters)
        return {true, 0, 0, 0};
    ++nextBlock[p];
    IterNum hi = std::min<IterNum>(lo + blockIters, numIters + 1);
    traceGrant(p, now, lo, hi, "block-cyclic");
    return {false, lo, hi, 0};
}

DynamicSource::DynamicSource(IterNum num_iters, IterNum block_iters,
                             Cycles grab_cycles)
    : numIters(num_iters), blockIters(block_iters),
      grabCycles(grab_cycles)
{
    SPECRT_ASSERT(block_iters > 0, "zero block size");
}

WorkSource::Grant
DynamicSource::next(NodeId p, Tick now)
{
    if (nextIter > numIters)
        return {true, 0, 0, 0};
    // Serialize on the shared counter's lock: service starts when
    // the lock frees, and holds it for grabCycles.
    Tick start = std::max(now, lockFree);
    lockFree = start + grabCycles;
    Cycles delay = (start + grabCycles) - now;
    // The whole grant delay -- lock contention plus the grab itself --
    // is scheduling-lock serialization. Charged here (not by the
    // processor) because only this source knows the delay's origin.
    stall::schedWait(p, static_cast<double>(delay));

    IterNum lo = nextIter;
    IterNum hi = std::min<IterNum>(lo + blockIters, numIters + 1);
    nextIter = hi;
    traceGrant(p, now, lo, hi, "dynamic");
    return {false, lo, hi, delay};
}

std::unique_ptr<WorkSource>
makeSource(SchedPolicy policy, IterNum num_iters, int num_procs,
           IterNum block_iters, Cycles grab_cycles)
{
    switch (policy) {
      case SchedPolicy::StaticChunk:
        return std::make_unique<StaticChunkSource>(num_iters,
                                                   num_procs);
      case SchedPolicy::BlockCyclic:
        return std::make_unique<BlockCyclicSource>(num_iters, num_procs,
                                                   block_iters);
      case SchedPolicy::Dynamic:
        return std::make_unique<DynamicSource>(num_iters, block_iters,
                                               grab_cycles);
    }
    panic("bad scheduling policy");
}

} // namespace specrt
