#include "runtime/validate.hh"

#include <sstream>

// Registers r27-r31 are reserved by the LRPD instrumentation
// (see lrpd/lrpd_codegen.cc).

namespace specrt
{

namespace
{

/** First register reserved for instrumentation (r27..r31). */
constexpr int firstReservedReg = 27;

void
issue(ValidationReport &rep, IterNum iter, size_t op,
      const std::string &msg)
{
    rep.issues.push_back({iter, op, msg});
}

void
checkReg(ValidationReport &rep, IterNum iter, size_t op, int reg,
         const char *what)
{
    if (reg < 0 || reg >= numRegs) {
        std::ostringstream os;
        os << what << " register r" << reg << " out of range";
        issue(rep, iter, op, os.str());
    } else if (reg >= firstReservedReg) {
        std::ostringstream os;
        os << what << " register r" << reg
           << " is reserved for LRPD instrumentation (r"
           << firstReservedReg << "-r" << numRegs - 1 << ")";
        issue(rep, iter, op, os.str());
    }
}

} // namespace

std::string
ValidationReport::summary() const
{
    std::ostringstream os;
    if (ok()) {
        os << "OK: " << opsChecked << " ops checked";
        if (dynamicIndexAccesses)
            os << " (" << dynamicIndexAccesses
               << " register-indexed accesses not statically "
                  "checkable)";
        return os.str();
    }
    os << issues.size() << " issue(s):\n";
    for (const ValidationIssue &i : issues) {
        os << "  iter " << i.iter << ", op " << i.opIndex << ": "
           << i.message << "\n";
    }
    return os.str();
}

ValidationReport
validateWorkload(Workload &w, IterNum max_iters)
{
    ValidationReport rep;
    std::vector<ArrayDecl> decls = w.arrays();

    for (size_t d = 0; d < decls.size(); ++d) {
        if (decls[d].elems == 0)
            issue(rep, 0, d, "array '" + decls[d].name +
                                 "' has zero elements");
        if (decls[d].elemBytes != 1 && decls[d].elemBytes != 2 &&
            decls[d].elemBytes != 4 && decls[d].elemBytes != 8)
            issue(rep, 0, d, "array '" + decls[d].name +
                                 "' has unsupported element width");
        if (decls[d].test == TestType::Reduction && !decls[d].modified)
            issue(rep, 0, d, "reduction array '" + decls[d].name +
                                 "' must be declared modified");
    }

    IterNum n = w.numIters();
    if (n < 1)
        issue(rep, 0, 0, "loop has no iterations");
    if (max_iters > 0 && max_iters < n)
        n = max_iters;

    IterProgram prog;
    for (IterNum i = 1; i <= n; ++i) {
        prog.clear();
        w.genIteration(i, prog);
        if (prog.empty())
            issue(rep, i, 0, "iteration generated no ops");
        for (size_t k = 0; k < prog.size(); ++k) {
            const Op &op = prog[k];
            ++rep.opsChecked;
            switch (op.kind) {
              case OpKind::Imm:
                checkReg(rep, i, k, op.dst, "destination");
                break;
              case OpKind::Alu:
                checkReg(rep, i, k, op.dst, "destination");
                checkReg(rep, i, k, op.srcA, "source");
                checkReg(rep, i, k, op.srcB, "source");
                break;
              case OpKind::Busy:
                if (op.cycles > 1000000)
                    issue(rep, i, k, "implausible Busy duration");
                break;
              case OpKind::Load:
              case OpKind::Store: {
                bool is_store = op.kind == OpKind::Store;
                checkReg(rep, i, k,
                         is_store ? op.srcA : op.dst,
                         is_store ? "store value" : "destination");
                if (op.arrayId < 0 ||
                    op.arrayId >= static_cast<int>(decls.size())) {
                    issue(rep, i, k, "arrayId out of range");
                    break;
                }
                const ArrayDecl &decl = decls[op.arrayId];
                bool reduction_array =
                    decl.test == TestType::Reduction;
                if (op.isReduction && !reduction_array)
                    issue(rep, i, k,
                          "reduction-tagged access to non-reduction "
                          "array '" + decl.name + "'");
                if (!op.isReduction && reduction_array)
                    issue(rep, i, k,
                          "untagged access to reduction array '" +
                              decl.name +
                              "' (would fail the reduction test)");
                if (op.index.isReg) {
                    checkReg(rep, i, k, op.index.reg, "index");
                    ++rep.dynamicIndexAccesses;
                } else if (op.index.imm < 0 ||
                           static_cast<uint64_t>(op.index.imm) >=
                               decl.elems) {
                    std::ostringstream os;
                    os << "index " << op.index.imm
                       << " out of bounds for '" << decl.name << "' ("
                       << decl.elems << " elems)";
                    issue(rep, i, k, os.str());
                }
                break;
              }
            }
        }
    }
    return rep;
}

} // namespace specrt
