/**
 * @file
 * Static validation of workloads before simulation.
 *
 * Generating every iteration up front catches authoring mistakes
 * (out-of-range immediate indices, reserved-register clobbers,
 * reduction-tag misuse, bad array ids) with a readable report
 * instead of a mid-simulation panic. Register-carried indices can
 * only be checked at run time, so the validator flags them as
 * "dynamic" rather than verified.
 */

#ifndef SPECRT_RUNTIME_VALIDATE_HH
#define SPECRT_RUNTIME_VALIDATE_HH

#include <string>
#include <vector>

#include "runtime/workload.hh"

namespace specrt
{

/** One validation finding. */
struct ValidationIssue
{
    IterNum iter = 0;       ///< iteration (0 = declaration level)
    size_t opIndex = 0;     ///< op within the iteration
    std::string message;
};

/** Validation outcome. */
struct ValidationReport
{
    std::vector<ValidationIssue> issues;
    /** Accesses whose index comes from a register (not statically
     *  checkable). */
    uint64_t dynamicIndexAccesses = 0;
    uint64_t opsChecked = 0;

    bool ok() const { return issues.empty(); }
    std::string summary() const;
};

/**
 * Validate @p w: declarations well-formed, every immediate index in
 * bounds, registers within range (r27-r31 reserved for the LRPD
 * instrumentation), Busy durations sane, reduction tags only on
 * reduction arrays and reduction arrays only touched by tagged
 * accesses.
 *
 * @param max_iters cap on generated iterations (0 = all)
 */
ValidationReport validateWorkload(Workload &w, IterNum max_iters = 0);

} // namespace specrt

#endif // SPECRT_RUNTIME_VALIDATE_HH
