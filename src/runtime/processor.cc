#include "runtime/processor.hh"

#include "sim/logging.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Record an iteration boundary on @p node's track. */
void
traceIter(trace::TraceOp op, Tick tick, NodeId node, IterNum iter)
{
    trace::TraceRecord r;
    r.tick = tick;
    r.op = op;
    r.node = node;
    r.iter = iter;
    trace::buffer().emit(r);
}

} // namespace

Processor::Processor(NodeId node_, EventQueue &eq_, CacheCtrl &cache_,
                     const MachineConfig &config)
    : StatGroup("proc" + std::to_string(node_)),
      node(node_), eq(eq_), cache(cache_), cfg(config),
      busy(this, "busy_cycles", "cycles executing instructions"),
      sync(this, "sync_cycles", "cycles in scheduling/barriers"),
      mem(this, "mem_cycles", "cycles stalled on the memory system"),
      iters(this, "iterations", "iterations executed")
{
    cache.setSlotFreeNotice([this]() {
        if (!stalledOnWb)
            return;
        stalledOnWb = false;
        Op op = stalledOp;
        Tick start = stallStart;
        issueStore(op, start);
    });
}

void
Processor::resetPhaseStats()
{
    busy = 0;
    sync = 0;
    mem = 0;
    iters = 0;
}

void
Processor::startPhase(WorkSource *source_, IterGen gen_,
                      bool drain_per_iter, DoneCb done)
{
    SPECRT_ASSERT(!active, "proc %d already running a phase", node);
    source = source_;
    gen = std::move(gen_);
    doneCb = std::move(done);
    drainPerIter = drain_per_iter;
    active = true;
    stalledOnWb = false;
    fetchWork();
}

void
Processor::hardStop()
{
    active = false;
    source = nullptr;
    gen = nullptr;
    doneCb = nullptr;
    stalledOnWb = false;
    pc = 0;
    prog.clear();
}

void
Processor::fetchWork()
{
    if (!active)
        return;
    WorkSource::Grant grant = source->next(node, eq.curTick());
    if (grant.done) {
        // Drain the write buffer before declaring the phase done so
        // the machine can quiesce.
        Tick t0 = eq.curTick();
        cache.requestDrainNotice([this, t0]() {
            if (!active)
                return;
            double waited = static_cast<double>(eq.curTick() - t0);
            mem += waited;
            stall::memWait(node, waited);
            active = false;
            if (doneCb)
                doneCb(node);
        });
        return;
    }
    SPECRT_ASSERT(grant.lo < grant.hi, "empty work grant");
    curIter = grant.lo;
    chunkHi = grant.hi;
    if (grant.delay > 0) {
        // The work source already attributed this delay (SchedWait).
        sync += static_cast<double>(grant.delay);
        eq.scheduleIn(grant.delay, [this]() { beginIteration(); });
    } else {
        beginIteration();
    }
}

void
Processor::beginIteration()
{
    if (!active)
        return;
    if (trace::enabled())
        traceIter(trace::TraceOp::IterBegin, eq.curTick(), node,
                  curIter);
    prog.clear();
    gen(curIter, prog);
    pc = 0;
    for (int64_t &r : regs)
        r = 0;
    step();
}

void
Processor::finishIteration()
{
    if (!active)
        return;
    if (trace::enabled())
        traceIter(trace::TraceOp::IterEnd, eq.curTick(), node,
                  curIter);
    iters += 1;
    IterNum finished = curIter;
    (void)finished;

    auto advance = [this]() {
        if (!active)
            return;
        ++curIter;
        if (curIter < chunkHi)
            beginIteration();
        else
            fetchWork();
    };

    if (drainPerIter) {
        Tick t0 = eq.curTick();
        cache.requestDrainNotice([this, t0, advance]() {
            if (!active)
                return;
            double waited = static_cast<double>(eq.curTick() - t0);
            mem += waited;
            stall::memWait(node, waited);
            advance();
        });
    } else {
        advance();
    }
}

void
Processor::execNonMem(const Op &op)
{
    switch (op.kind) {
      case OpKind::Imm:
        regs[op.dst] = op.imm;
        break;
      case OpKind::Alu:
        regs[op.dst] = evalAlu(op.alu, regs[op.srcA], regs[op.srcB]);
        break;
      case OpKind::Busy:
        break;
      default:
        panic("execNonMem on memory op");
    }
}

void
Processor::step()
{
    if (!active)
        return;
    Cycles acc = 0;
    while (pc < prog.size()) {
        const Op &op = prog[pc];
        if (op.kind == OpKind::Load || op.kind == OpKind::Store)
            break;
        execNonMem(op);
        acc += op.kind == OpKind::Busy
                   ? (op.cycles > 0 ? op.cycles : 1)
                   : 1;
        ++pc;
    }
    busy += static_cast<double>(acc);

    if (pc >= prog.size()) {
        if (acc > 0)
            eq.scheduleIn(acc, [this]() { finishIteration(); });
        else
            finishIteration();
        return;
    }

    const Op &op = prog[pc];
    ++pc;
    if (acc > 0) {
        // Capture the op's index, not the op: prog is stable until
        // beginIteration(), which cannot run while this op is
        // pending, and the small capture keeps the callback inside
        // the event slot's inline buffer (no heap allocation).
        eq.scheduleIn(acc, [this, i = pc - 1]() {
            if (!active)
                return;
            const Op &o = prog[i];
            if (o.kind == OpKind::Load)
                issueLoad(o);
            else
                issueStore(o, eq.curTick());
        });
    } else {
        if (op.kind == OpKind::Load)
            issueLoad(op);
        else
            issueStore(op, eq.curTick());
    }
}

int64_t
Processor::indexValue(const IndexOperand &idx) const
{
    return idx.isReg ? regs[idx.reg] : idx.imm;
}

std::pair<Addr, uint64_t>
Processor::resolve(const Op &op) const
{
    SPECRT_ASSERT(bindings, "no array bindings at proc %d", node);
    SPECRT_ASSERT(op.arrayId >= 0 &&
                  op.arrayId < static_cast<int>(bindings->size()),
                  "bad arrayId %d", op.arrayId);
    const ArrayBinding &b = (*bindings)[op.arrayId];
    SPECRT_ASSERT(b.region, "unbound arrayId %d", op.arrayId);
    int64_t idx = indexValue(op.index);
    SPECRT_ASSERT(idx >= 0 &&
                  static_cast<uint64_t>(idx) < b.region->numElems(),
                  "index %lld out of bounds for region '%s' (%llu "
                  "elems)", (long long)idx, b.region->name.c_str(),
                  (unsigned long long)b.region->numElems());
    return {b.region->elemAddr(static_cast<uint64_t>(idx)),
            static_cast<uint64_t>(idx)};
}

void
Processor::issueLoad(const Op &op)
{
    auto [addr, elem] = resolve(op);
    const ArrayBinding &b = (*bindings)[op.arrayId];
    if (b.reductionOnly && !op.isReduction && violationHook)
        violationHook(node, addr);
    if (trace && b.traced)
        trace->record(node, curIter, b.traceArrayId, elem, false,
                      op.isReduction);

    Tick t0 = eq.curTick();
    int dst = op.dst;
    cache.load(addr, b.region->elemBytes, curIter,
               [this, t0, dst](uint64_t value) {
                   if (!active)
                       return;
                   busy += 1;
                   Tick latency = eq.curTick() - t0;
                   if (latency > 1) {
                       mem += static_cast<double>(latency - 1);
                       stall::loadWait(
                           node, static_cast<double>(latency - 1),
                           eq.curTick());
                   }
                   regs[dst] = static_cast<int64_t>(value);
                   step();
               });
}

void
Processor::issueStore(const Op &op, Tick stall_start)
{
    auto [addr, elem] = resolve(op);
    const ArrayBinding &b = (*bindings)[op.arrayId];

    bool accepted = cache.store(addr, b.region->elemBytes,
                                static_cast<uint64_t>(regs[op.srcA]),
                                curIter);
    if (!accepted) {
        stalledOnWb = true;
        stalledOp = op;
        stallStart = stall_start;
        return;
    }

    if (b.reductionOnly && !op.isReduction && violationHook)
        violationHook(node, addr);
    if (trace && b.traced)
        trace->record(node, curIter, b.traceArrayId, elem, true,
                      op.isReduction);

    busy += 1;
    Tick waited = eq.curTick() - stall_start;
    if (waited > 0) {
        mem += static_cast<double>(waited);
        stall::memWait(node, static_cast<double>(waited));
    }
    eq.scheduleIn(1, [this]() { step(); });
}

} // namespace specrt
