/**
 * @file
 * Iteration schedulers (WorkSource implementations).
 *
 * - StaticChunk: the iteration space is split into one contiguous
 *   chunk per processor (the static scheduling the processor-wise
 *   software test requires; may suffer load imbalance).
 * - BlockCyclic: fixed-size blocks dealt round-robin (section 4.1's
 *   chunked superiterations).
 * - Dynamic: processors grab fixed-size blocks from a shared counter
 *   protected by a lock; grabs serialize and each costs
 *   schedLockCycles (this is where Sync time comes from).
 */

#ifndef SPECRT_RUNTIME_SCHEDULER_HH
#define SPECRT_RUNTIME_SCHEDULER_HH

#include <memory>
#include <vector>

#include "runtime/processor.hh"
#include "sim/config.hh"

namespace specrt
{

/** Scheduling policy selector. */
enum class SchedPolicy
{
    StaticChunk,
    BlockCyclic,
    Dynamic,
};

const char *schedPolicyName(SchedPolicy p);

/** One contiguous chunk per processor. */
class StaticChunkSource : public WorkSource
{
  public:
    /**
     * @param num_iters  iterations 1..num_iters
     * @param num_procs  active processors
     */
    StaticChunkSource(IterNum num_iters, int num_procs);

    Grant next(NodeId p, Tick now) override;

    /** The chunk assigned to processor @p p (lo, hi). */
    std::pair<IterNum, IterNum> chunkOf(NodeId p) const;

  private:
    IterNum numIters;
    int numProcs;
    std::vector<bool> handedOut;
};

/** Fixed-size blocks dealt round-robin to processors. */
class BlockCyclicSource : public WorkSource
{
  public:
    BlockCyclicSource(IterNum num_iters, int num_procs,
                      IterNum block_iters);

    Grant next(NodeId p, Tick now) override;

  private:
    IterNum numIters;
    int numProcs;
    IterNum blockIters;
    std::vector<IterNum> nextBlock; ///< per-proc next block ordinal
};

/** Self-scheduling from a lock-protected shared counter. */
class DynamicSource : public WorkSource
{
  public:
    DynamicSource(IterNum num_iters, IterNum block_iters,
                  Cycles grab_cycles);

    Grant next(NodeId p, Tick now) override;

    /** Reset the counter for reuse. */
    void reset() { nextIter = 1; lockFree = 0; }

  private:
    IterNum numIters;
    IterNum blockIters;
    Cycles grabCycles;
    IterNum nextIter = 1;
    Tick lockFree = 0;
};

/** Make the configured source. */
std::unique_ptr<WorkSource> makeSource(SchedPolicy policy,
                                       IterNum num_iters, int num_procs,
                                       IterNum block_iters,
                                       Cycles grab_cycles);

} // namespace specrt

#endif // SPECRT_RUNTIME_SCHEDULER_HH
