/**
 * @file
 * The modeled in-order processor.
 *
 * Executes micro-ISA iteration programs pulled from a WorkSource.
 * One op retires per cycle except memory stalls: loads block until
 * data returns; stores retire into the cache controller's write
 * buffer and only stall when it is full (the paper's "processors do
 * not stall on write misses"). Time is split into Busy / Sync / Mem
 * exactly as in the paper's Figure 12 breakdown.
 */

#ifndef SPECRT_RUNTIME_PROCESSOR_HH
#define SPECRT_RUNTIME_PROCESSOR_HH

#include <functional>
#include <vector>

#include "mem/cache_ctrl.hh"
#include "runtime/isa.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace specrt
{

/** Where an arrayId points during a phase. */
struct ArrayBinding
{
    const Region *region = nullptr;
    /** Record accesses to this array in the trace sink. */
    bool traced = false;
    /** Array identity used in trace records (the decl index). */
    int traceArrayId = -1;
    /**
     * Only reduction-tagged accesses are legal (TestType::Reduction
     * arrays); an untagged access trips the violation hook.
     */
    bool reductionOnly = false;
};

/** Receives one record per access to a traced array. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(NodeId proc, IterNum iter, int array_id,
                        uint64_t elem, bool is_write,
                        bool is_reduction) = 0;
};

/** Supplies ranges of iterations to processors (see scheduler.hh). */
class WorkSource
{
  public:
    struct Grant
    {
        bool done = false;
        IterNum lo = 0;     ///< first iteration (inclusive)
        IterNum hi = 0;     ///< one past the last iteration
        Cycles delay = 0;   ///< scheduling overhead (Sync time)
    };

    virtual ~WorkSource() = default;

    /** Next work for processor @p p asking at time @p now. */
    virtual Grant next(NodeId p, Tick now) = 0;
};

/** One modeled processor. */
class Processor : public StatGroup
{
  public:
    using IterGen = std::function<void(IterNum, IterProgram &)>;
    using DoneCb = std::function<void(NodeId)>;

    Processor(NodeId node, EventQueue &eq, CacheCtrl &cache,
              const MachineConfig &config);

    NodeId nodeId() const { return node; }

    void setBindings(const std::vector<ArrayBinding> *b)
    {
        bindings = b;
    }
    void setTraceSink(TraceSink *sink) { trace = sink; }

    /**
     * Hook fired when a non-reduction access touches a
     * reduction-only array (the hardware's tagged-access check).
     */
    void
    setViolationHook(std::function<void(NodeId, Addr)> hook)
    {
        violationHook = std::move(hook);
    }

    /**
     * Run a phase: repeatedly pull iteration ranges from @p source,
     * generate each iteration's program with @p gen, and execute it.
     * @p drain_per_iter forces the write buffer empty at each
     * iteration boundary (required for the privatization algorithm's
     * per-iteration tag clearing). @p done fires when the source is
     * exhausted and the write buffer has drained.
     */
    void startPhase(WorkSource *source, IterGen gen,
                    bool drain_per_iter, DoneCb done);

    /** Abandon any in-flight phase state (machine abort). */
    void hardStop();

    double busyCycles() const { return busy.value(); }
    double syncCycles() const { return sync.value(); }
    double memCycles() const { return mem.value(); }
    uint64_t itersExecuted() const
    {
        return static_cast<uint64_t>(iters.value());
    }

    /** Directly add sync time (barrier waits, added by executor). */
    void addSyncCycles(double cycles) { sync += cycles; }

    /**
     * Speculative iterations claimed but not yet finished (timeline
     * gauge): the rest of the current chunk while a phase is active.
     */
    uint64_t outstandingIters() const
    {
        return active && chunkHi > curIter
                   ? static_cast<uint64_t>(chunkHi - curIter)
                   : 0;
    }

    void resetPhaseStats();

  private:
    void fetchWork();
    void beginIteration();
    void step();
    void finishIteration();
    void issueLoad(const Op &op);
    void issueStore(const Op &op, Tick stall_start);
    void execNonMem(const Op &op);

    /** Resolve the address + element index of a memory op. */
    std::pair<Addr, uint64_t> resolve(const Op &op) const;
    int64_t indexValue(const IndexOperand &idx) const;

    NodeId node;
    EventQueue &eq;
    CacheCtrl &cache;
    const MachineConfig &cfg;

    const std::vector<ArrayBinding> *bindings = nullptr;
    TraceSink *trace = nullptr;
    std::function<void(NodeId, Addr)> violationHook;

    // Phase state.
    WorkSource *source = nullptr;
    IterGen gen;
    DoneCb doneCb;
    bool drainPerIter = false;
    bool active = false;

    // Current work.
    IterNum curIter = 0;
    IterNum chunkHi = 0;
    IterProgram prog;
    size_t pc = 0;
    int64_t regs[numRegs] = {};

    // Write-buffer stall bookkeeping.
    bool stalledOnWb = false;
    Op stalledOp;
    Tick stallStart = 0;

    Scalar busy;
    Scalar sync;
    Scalar mem;
    Scalar iters;
};

} // namespace specrt

#endif // SPECRT_RUNTIME_PROCESSOR_HH
