/**
 * @file
 * The micro-ISA in which loop iterations are expressed.
 *
 * Workloads generate one small register program per iteration.
 * Indices may come from registers, so subscripted-subscript loops
 * (A(K(i))) are expressed naturally: load K(i) into a register, then
 * use that register as the index of the next access. Data values
 * really flow through the simulated memory system, so a passing
 * speculative run can be checked against serial execution.
 */

#ifndef SPECRT_RUNTIME_ISA_HH
#define SPECRT_RUNTIME_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace specrt
{

/** Number of general-purpose registers per processor. */
constexpr int numRegs = 32;

/** Operation kinds. */
enum class OpKind : uint8_t
{
    Imm,    ///< dst = imm
    Alu,    ///< dst = srcA <op> srcB
    Load,   ///< dst = array[index]
    Store,  ///< array[index] = src
    Busy,   ///< spin for `cycles` cycles (models non-memory work)
};

/** ALU operations. */
enum class AluOp : uint8_t
{
    Add, Sub, Mul, And, Or, Xor, Min, Max, Mod, Shr,
};

/** An index operand: an immediate element index or a register. */
struct IndexOperand
{
    bool isReg = false;
    int reg = 0;
    int64_t imm = 0;

    static IndexOperand immediate(int64_t v) { return {false, 0, v}; }
    static IndexOperand fromReg(int r) { return {true, r, 0}; }
};

/** One micro-op. */
struct Op
{
    OpKind kind = OpKind::Busy;
    int dst = 0;            ///< Imm/Alu/Load destination register
    int srcA = 0;           ///< Alu operand / Store value register
    int srcB = 0;           ///< Alu operand
    AluOp alu = AluOp::Add;
    int arrayId = -1;       ///< Load/Store target array
    IndexOperand index;     ///< Load/Store element index
    int64_t imm = 0;        ///< Imm value
    Cycles cycles = 0;      ///< Busy duration
    /**
     * The access belongs to a compiler-identified reduction
     * statement (A(x) op= expr). Arrays under the reduction test
     * may only be touched by such accesses; the hardware checks the
     * tag with its address-range comparator on every access.
     */
    bool isReduction = false;
};

/** A single iteration's body. */
using IterProgram = std::vector<Op>;

// --- builders ---------------------------------------------------------

inline Op
opImm(int dst, int64_t value)
{
    Op op;
    op.kind = OpKind::Imm;
    op.dst = dst;
    op.imm = value;
    return op;
}

inline Op
opAlu(int dst, AluOp alu, int src_a, int src_b)
{
    Op op;
    op.kind = OpKind::Alu;
    op.dst = dst;
    op.alu = alu;
    op.srcA = src_a;
    op.srcB = src_b;
    return op;
}

inline Op
opLoad(int dst, int array_id, IndexOperand index)
{
    Op op;
    op.kind = OpKind::Load;
    op.dst = dst;
    op.arrayId = array_id;
    op.index = index;
    return op;
}

inline Op
opLoad(int dst, int array_id, int64_t index)
{
    return opLoad(dst, array_id, IndexOperand::immediate(index));
}

inline Op
opStore(int array_id, IndexOperand index, int src)
{
    Op op;
    op.kind = OpKind::Store;
    op.arrayId = array_id;
    op.index = index;
    op.srcA = src;
    return op;
}

inline Op
opStore(int array_id, int64_t index, int src)
{
    return opStore(array_id, IndexOperand::immediate(index), src);
}

inline Op
opBusy(Cycles cycles)
{
    Op op;
    op.kind = OpKind::Busy;
    op.cycles = cycles;
    return op;
}

/** A load that is part of a reduction statement. */
inline Op
opLoadRed(int dst, int array_id, IndexOperand index)
{
    Op op = opLoad(dst, array_id, index);
    op.isReduction = true;
    return op;
}

/** A store that is part of a reduction statement. */
inline Op
opStoreRed(int array_id, IndexOperand index, int src)
{
    Op op = opStore(array_id, index, src);
    op.isReduction = true;
    return op;
}

/** Evaluate an ALU operation (shared by the processor and tests).
 *  Header-inline: the interpreter runs this once per ALU op. */
inline int64_t
evalAlu(AluOp op, int64_t a, int64_t b)
{
    switch (op) {
      case AluOp::Add: return a + b;
      case AluOp::Sub: return a - b;
      case AluOp::Mul: return a * b;
      case AluOp::And: return a & b;
      case AluOp::Or:  return a | b;
      case AluOp::Xor: return a ^ b;
      case AluOp::Min: return a < b ? a : b;
      case AluOp::Max: return a > b ? a : b;
      case AluOp::Mod:
        SPECRT_ASSERT(b != 0, "Mod by zero");
        return ((a % b) + b) % b;
      case AluOp::Shr:
        SPECRT_ASSERT(b >= 0 && b < 64, "bad shift %lld",
                      (long long)b);
        return static_cast<int64_t>(static_cast<uint64_t>(a) >> b);
    }
    return 0;
}

/** Disassemble one op (diagnostics). */
std::string opToString(const Op &op);

} // namespace specrt

#endif // SPECRT_RUNTIME_ISA_HH
