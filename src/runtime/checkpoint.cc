#include "runtime/checkpoint.hh"

#include "sim/logging.hh"

namespace specrt
{

void
genCopyProgram(int src_id, int dst_id, uint64_t lo, uint64_t hi,
               IterProgram &out)
{
    for (uint64_t i = lo; i < hi; ++i) {
        out.push_back(opLoad(0, src_id, static_cast<int64_t>(i)));
        out.push_back(opStore(dst_id, static_cast<int64_t>(i), 0));
    }
}

bool
SparseCheckpoint::saveIfFirst(Addr elem_addr, uint64_t old_value)
{
    return saved.emplace(elem_addr, old_value).second;
}

void
SparseCheckpoint::restore(AddrMap &mem) const
{
    for (const auto &[addr, value] : saved)
        mem.write(addr, elemBytes, value);
}

DenseSnapshot::DenseSnapshot(const AddrMap &mem, const Region &region)
    : base(region.base), bytes(region.bytes)
{
    for (uint64_t i = 0; i < region.bytes; ++i)
        bytes[i] = static_cast<uint8_t>(mem.read(base + i, 1));
}

void
DenseSnapshot::restore(AddrMap &mem) const
{
    for (uint64_t i = 0; i < bytes.size(); ++i)
        mem.write(base + i, 1, bytes[i]);
}

uint64_t
DenseSnapshot::diffBytes(const AddrMap &mem) const
{
    uint64_t diff = 0;
    for (uint64_t i = 0; i < bytes.size(); ++i) {
        if (static_cast<uint8_t>(mem.read(base + i, 1)) != bytes[i])
            ++diff;
    }
    return diff;
}

} // namespace specrt
