/**
 * @file
 * The workload abstraction: a loop whose dependences the compiler
 * could not analyze, expressed as a generator of per-iteration
 * micro-ISA programs plus declarations of the arrays it touches.
 */

#ifndef SPECRT_RUNTIME_WORKLOAD_HH
#define SPECRT_RUNTIME_WORKLOAD_HH

#include <string>
#include <vector>

#include "mem/addr_map.hh"
#include "runtime/isa.hh"
#include "spec/translation_table.hh"

namespace specrt
{

/** Declaration of one array the loop touches. */
struct ArrayDecl
{
    std::string name;
    uint64_t elems = 0;
    uint32_t elemBytes = 4;
    /** Which run-time test the array needs (None = analyzable). */
    TestType test = TestType::None;
    /** The loop may modify the array (needs backup unless
     *  privatized). */
    bool modified = false;
    /** Privatized array whose final values are needed after the
     *  loop (requires copy-out). */
    bool liveOut = false;
};

/**
 * A loop to parallelize at run time.
 *
 * Iterations are 1-based. genIteration() must reference arrays by
 * their index in arrays(). Values stored in arrays under test must
 * never be used as indices (they may be stale in a failing
 * speculative run); index arrays must be declared TestType::None.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual std::vector<ArrayDecl> arrays() const = 0;
    virtual IterNum numIters() const = 0;

    /**
     * Write the loop's input data straight into the backing store
     * (models program state on loop entry). @p regions holds the
     * shared region of each declared array, in declaration order.
     */
    virtual void initData(AddrMap &mem,
                          const std::vector<const Region *> &regions) = 0;

    /** Emit the body of iteration @p i into @p out. */
    virtual void genIteration(IterNum i, IterProgram &out) = 0;
};

} // namespace specrt

#endif // SPECRT_RUNTIME_WORKLOAD_HH
