#include "runtime/isa.hh"

#include <sstream>

#include "sim/logging.hh"

namespace specrt
{

std::string
opToString(const Op &op)
{
    std::ostringstream os;
    auto idx = [&]() -> std::string {
        if (op.index.isReg)
            return "r" + std::to_string(op.index.reg);
        return std::to_string(op.index.imm);
    };
    switch (op.kind) {
      case OpKind::Imm:
        os << "imm r" << op.dst << " = " << op.imm;
        break;
      case OpKind::Alu:
        os << "alu r" << op.dst << " = r" << op.srcA << " op" << " r"
           << op.srcB;
        break;
      case OpKind::Load:
        os << "load r" << op.dst << " = a" << op.arrayId << "["
           << idx() << "]";
        break;
      case OpKind::Store:
        os << "store a" << op.arrayId << "[" << idx() << "] = r"
           << op.srcA;
        break;
      case OpKind::Busy:
        os << "busy " << op.cycles;
        break;
    }
    return os.str();
}

} // namespace specrt
