#include "runtime/isa.hh"

#include <sstream>

#include "sim/logging.hh"

namespace specrt
{

int64_t
evalAlu(AluOp op, int64_t a, int64_t b)
{
    switch (op) {
      case AluOp::Add: return a + b;
      case AluOp::Sub: return a - b;
      case AluOp::Mul: return a * b;
      case AluOp::And: return a & b;
      case AluOp::Or:  return a | b;
      case AluOp::Xor: return a ^ b;
      case AluOp::Min: return a < b ? a : b;
      case AluOp::Max: return a > b ? a : b;
      case AluOp::Mod:
        SPECRT_ASSERT(b != 0, "Mod by zero");
        return ((a % b) + b) % b;
      case AluOp::Shr:
        SPECRT_ASSERT(b >= 0 && b < 64, "bad shift %lld", (long long)b);
        return static_cast<int64_t>(static_cast<uint64_t>(a) >> b);
    }
    return 0;
}

std::string
opToString(const Op &op)
{
    std::ostringstream os;
    auto idx = [&]() -> std::string {
        if (op.index.isReg)
            return "r" + std::to_string(op.index.reg);
        return std::to_string(op.index.imm);
    };
    switch (op.kind) {
      case OpKind::Imm:
        os << "imm r" << op.dst << " = " << op.imm;
        break;
      case OpKind::Alu:
        os << "alu r" << op.dst << " = r" << op.srcA << " op" << " r"
           << op.srcB;
        break;
      case OpKind::Load:
        os << "load r" << op.dst << " = a" << op.arrayId << "["
           << idx() << "]";
        break;
      case OpKind::Store:
        os << "store a" << op.arrayId << "[" << idx() << "] = r"
           << op.srcA;
        break;
      case OpKind::Busy:
        os << "busy " << op.cycles;
        break;
    }
    return os.str();
}

} // namespace specrt
