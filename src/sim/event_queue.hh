/**
 * @file
 * Discrete-event engine driving the whole simulator.
 *
 * Everything in specrt (processor ops, coherence messages, directory
 * occupancy, barrier releases) is an event scheduled at an absolute
 * Tick. Events scheduled for the same tick fire in schedule order,
 * which keeps the simulation deterministic.
 */

#ifndef SPECRT_SIM_EVENT_QUEUE_HH
#define SPECRT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace specrt
{

/** Handle used to cancel a pending event. */
using EventId = uint64_t;

/** Sentinel for "no event". */
constexpr EventId invalidEventId = 0;

/**
 * A single-threaded discrete-event queue.
 *
 * The queue owns the current simulated time. Callbacks may schedule
 * further events (including at the current tick, which fire later in
 * the same tick).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p callback to fire at absolute time @p when.
     * @return a handle usable with deschedule().
     */
    EventId schedule(Tick when, std::function<void()> callback);

    /** Schedule @p callback @p delay cycles from now. */
    EventId
    scheduleIn(Cycles delay, std::function<void()> callback)
    {
        return schedule(_curTick + delay, std::move(callback));
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     */
    void deschedule(EventId id);

    /** Number of events still pending. */
    size_t numPending() const { return pending.size() - numCancelled; }

    /** True if no events are pending. */
    bool empty() const { return numPending() == 0; }

    /**
     * Run until the queue drains or stop() is called.
     * @return the tick of the last event fired.
     */
    Tick run();

    /**
     * Run events up to and including tick @p limit.
     * @return the tick of the last event fired.
     */
    Tick runUntil(Tick limit);

    /** Make run()/runUntil() return before firing the next event. */
    void stop() { stopped = true; }

    /** Total number of events ever fired (for stats/tests). */
    uint64_t numFired() const { return _numFired; }

    /**
     * Reset to an empty queue at tick 0. Pending events are dropped.
     */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        EventId id;
        std::function<void()> callback;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and fire one event; assumes the queue is non-empty. */
    void fireNext();

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> pending;
    /** Ids currently in the queue and not cancelled. */
    std::unordered_set<EventId> live;
    std::unordered_set<EventId> cancelled;
    size_t numCancelled = 0;

    Tick _curTick = 0;
    uint64_t nextSeq = 0;
    EventId nextId = 1;
    uint64_t _numFired = 0;
    bool stopped = false;
};

} // namespace specrt

#endif // SPECRT_SIM_EVENT_QUEUE_HH
