/**
 * @file
 * Discrete-event engine driving the whole simulator.
 *
 * Everything in specrt (processor ops, coherence messages, directory
 * occupancy, barrier releases) is an event scheduled at an absolute
 * Tick. Events scheduled for the same tick fire in schedule order,
 * which keeps the simulation deterministic.
 *
 * The engine is built for the schedule/fire/cancel cycle that every
 * protocol hop takes:
 *
 *  - a same-tick FIFO fast lane: events scheduled at the current
 *    tick (the zero-delay hand-offs protocol engines chain on) skip
 *    every ordering structure;
 *  - a timing wheel for near-future events (delay < wheelSpan, which
 *    covers every modeled latency): O(1) insert into a per-tick
 *    bucket list threaded through a recycled node pool, so the hot
 *    schedule path never pays a heap sift;
 *  - an index-tracked binary heap keyed by (tick, sequence) for the
 *    rare far-future events (watchdogs, campaign timeouts), with a
 *    slot table mapping EventId -> heap position, so deschedule() is
 *    a true O(log n) removal (no lazy-deletion ghosts inflating the
 *    queue and no auxiliary cancel set to leak);
 *  - SmallFunction callbacks (small_function.hh), so the steady-state
 *    schedule/fire/cancel path performs zero heap allocations once
 *    the engine's arrays have grown to the working-set size.
 *
 * Fire order is (tick, sequence) globally across all three lanes:
 * sequence numbers are monotonic in scheduling order, which both
 * keeps the simulation deterministic and lets each lane stay sorted
 * by construction (FIFO and wheel buckets receive entries in
 * ascending sequence).
 *
 * EventIds carry a per-slot generation, so cancelling an id whose
 * event already fired is a harmless no-op even after the slot has
 * been reused.
 *
 * Daemon events (scheduleDaemon) are for observers such as the
 * metric-timeline sampler: they fire in order alongside real events
 * but never keep the queue alive -- a drain stops, leaving them
 * pending, once only daemons remain.
 */

#ifndef SPECRT_SIM_EVENT_QUEUE_HH
#define SPECRT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/profile.hh"
#include "sim/small_function.hh"
#include "sim/types.hh"

namespace specrt
{

/** Handle used to cancel a pending event. */
using EventId = uint64_t;

/** Sentinel for "no event". */
constexpr EventId invalidEventId = 0;

/** Scheduling-site actor tag value meaning "site did not say". */
constexpr uint16_t unknownActor = 0xFFFF;

/** Sentinel event sequence number: "no such event". */
constexpr uint64_t noEventSeq = ~uint64_t(0);

/**
 * One ready event offered to a ScheduleController: everything the
 * engine knows about it without touching the callback.
 */
struct EventChoice
{
    Tick when;
    EventKind kind;
    /**
     * Actor tag given at the scheduling site (e.g.\ the destination
     * node of a network delivery); unknownActor when the site did
     * not tag the event.
     */
    uint16_t actor;
    bool daemon;
    /**
     * Global scheduling sequence number: monotonic in scheduling
     * order, unique within a run, and stable across replays of the
     * same choice prefix. Identifies "the same event" across runs.
     */
    uint64_t seq = 0;
    /**
     * Sequence number of the event whose callback scheduled this one
     * (the creation edge of the happens-before relation), or
     * noEventSeq when scheduled from outside any callback.
     */
    uint64_t parent = noEventSeq;
};

/**
 * One network fault decision point offered to a ScheduleController:
 * a message about to be transmitted whose loss or duplication the
 * protocol is expected to tolerate. Field values mirror the Msg
 * being sent; msgType is the mem-layer MsgType widened to an int so
 * sim/ stays independent of mem/.
 */
struct FaultChoicePoint
{
    Tick when;
    uint16_t msgType;
    uint16_t src;
    uint16_t dst;
    /** Alternative 1 drops the message (a recovery path exists). */
    bool canDrop;
    /** The last alternative delivers the message twice. */
    bool canDup;
};

/**
 * Hook controlling which of several same-tick ready events fires
 * next (verify/explorer.hh drives this to enumerate interleavings).
 *
 * When installed, every point at which two or more events are ready
 * at the minimum pending tick becomes a decision point: the engine
 * gathers the candidates in default (when, seq) order and asks the
 * controller. Returning 0 always reproduces the uncontrolled
 * schedule exactly, so a controller that constantly answers 0 is a
 * no-op (modulo its own observation). pick() is not called for
 * forced moves (a single ready event).
 */
class ScheduleController
{
  public:
    virtual ~ScheduleController() = default;

    /**
     * @param choices the @p n >= 2 ready events, default order.
     * @return index of the event to fire; clamped to [0, n).
     */
    virtual size_t pick(const EventChoice *choices, size_t n) = 0;

    /**
     * Fault decision point: the network is about to transmit a
     * message whose loss/duplication the protocol tolerates. Called
     * only when exploresFaults() is true. Alternative 0 always means
     * "deliver normally"; alternative 1 drops if p.canDrop (else
     * duplicates); alternative 2 (present when both are eligible)
     * duplicates. @p n counts the alternatives (>= 2).
     */
    virtual size_t pickFault(const FaultChoicePoint &p, size_t n)
    {
        (void)p;
        (void)n;
        return 0;
    }

    /**
     * Opt-in for fault decision points. When false (the default) the
     * network never consults pickFault and faults follow the seeded
     * FaultPlan as usual.
     */
    virtual bool exploresFaults() const { return false; }

    /**
     * Observation hook: called once per fired event, in fire order,
     * with the event's full identity (including seq and creation
     * parent). Fires for forced moves too, not just decision points
     * -- this is the per-run step trace DPOR computes races over.
     */
    virtual void onFire(const EventChoice &fired) { (void)fired; }
};

/**
 * A single-threaded discrete-event queue.
 *
 * The queue owns the current simulated time. Callbacks may schedule
 * further events (including at the current tick, which fire later in
 * the same tick).
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p callback to fire at absolute time @p when. The
     * optional @p actor tag names the model entity the event acts on
     * (e.g.\ the destination node of a message delivery); it is only
     * observed by ScheduleControllers.
     *
     * Templated over the callable so the callback is constructed
     * directly inside its event slot -- the hot path performs zero
     * SmallFunction relocations between the call site and fire().
     *
     * @return a handle usable with deschedule().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&callback,
             EventKind kind = EventKind::Generic,
             uint16_t actor = unknownActor)
    {
        return scheduleImpl(when, std::forward<F>(callback), kind,
                            actor, false);
    }

    /** Schedule @p callback @p delay cycles from now. */
    template <typename F>
    EventId
    scheduleIn(Cycles delay, F &&callback,
               EventKind kind = EventKind::Generic,
               uint16_t actor = unknownActor)
    {
        return scheduleImpl(_curTick + delay,
                            std::forward<F>(callback), kind, actor,
                            false);
    }

    /**
     * Schedule a daemon event: it fires in (when, seq) order like
     * any other event while non-daemon work is pending, but it never
     * keeps the queue alive -- run()/runUntil() return, without
     * firing it, once only daemon events remain, and it stays
     * pending for the next run() leg (or until reset() drops it).
     *
     * This is for observers like the timeline sampler: a periodic
     * event that must not extend a drain past the real work, which
     * would advance curTick beyond the last modeled event and
     * perturb measured phase durations.
     */
    template <typename F>
    EventId
    scheduleDaemon(Tick when, F &&callback,
                   EventKind kind = EventKind::Generic)
    {
        return scheduleImpl(when, std::forward<F>(callback), kind,
                            unknownActor, true);
    }

    /** Schedule a daemon event @p delay cycles from now. */
    template <typename F>
    EventId
    scheduleDaemonIn(Cycles delay, F &&callback,
                     EventKind kind = EventKind::Generic)
    {
        return scheduleImpl(_curTick + delay,
                            std::forward<F>(callback), kind,
                            unknownActor, true);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     */
    void deschedule(EventId id);

    /** Number of events still pending (cancelled events excluded). */
    size_t numPending() const { return pendingCount; }

    /** Pending daemon events (a subset of numPending()). */
    size_t numDaemon() const { return daemonCount; }

    /** True if no events are pending. */
    bool empty() const { return pendingCount == 0; }

    /** True if only daemon events (if any) remain: run() returns. */
    bool drained() const { return pendingCount == daemonCount; }

    /**
     * Run until the queue drains or stop() is called.
     * @return the tick of the last event fired.
     */
    Tick run();

    /**
     * Run events up to and including tick @p limit.
     * @return the tick of the last event fired.
     */
    Tick runUntil(Tick limit);

    /** Make run()/runUntil() return before firing the next event. */
    void stop() { stopped = true; }

    /** Events fired since construction or the last reset(). */
    uint64_t numFired() const { return _numFired; }

    /** Lifetime events fired; survives reset() (telemetry). */
    uint64_t numFiredTotal() const { return _numFiredTotal; }

    /**
     * Reset to an empty queue at tick 0. Pending events are dropped.
     * The schedule controller and post-fire hook survive: they
     * observe a whole run, which may span several reset legs
     * (machine resets between phases).
     */
    void reset();

    /**
     * Install (or with nullptr remove) the controller consulted at
     * same-tick decision points. Exploration-only: when absent (the
     * default) the fire path is the plain deterministic one.
     */
    void setScheduleController(ScheduleController *c)
    {
        controller = c;
    }
    ScheduleController *scheduleController() const { return controller; }

    /**
     * Install a hook called after every fired event's callback
     * returns (per-delivery invariant checking). Empty function
     * removes it. The hook must not mutate the queue's schedule
     * beyond what ordinary callbacks may do (scheduling is fine;
     * it runs at a point where the fired event is fully retired).
     */
    void setPostFireHook(std::function<void(Tick, EventKind)> h)
    {
        postFireHook = std::move(h);
    }

  private:
    /** Where a live slot's event currently lives. */
    enum SlotLoc : uint8_t
    {
        LocFree,
        LocHeap,
        LocFifo,
        LocWheel,
    };

    static constexpr uint32_t badIndex = UINT32_MAX;

    /**
     * Timing-wheel geometry. Any delay below wheelSpan ticks takes
     * the O(1) wheel path; the modeled latencies (cache, network,
     * memory, busy ops) are all far below it. Power of two so the
     * bucket of an absolute tick is a mask.
     */
    static constexpr uint32_t wheelSpan = 4096;
    static constexpr uint32_t wheelMask = wheelSpan - 1;
    /** "The wheel is empty / position unknown" tick sentinel. */
    static constexpr Tick noWheelTick = ~Tick(0);

    /**
     * Lane entry: a POD ordering key. The callback itself lives in
     * the slot table so heap sifts shuffle 24-byte keys, not 64-byte
     * callables (each of whose moves costs an indirect call).
     */
    struct Entry
    {
        Tick when;
        uint64_t seq;
        /** Owning slot; badIndex marks a cancelled FIFO entry. */
        uint32_t slot;
    };

    /**
     * Timing-wheel node: ordering key + singly-linked bucket chain.
     * Nodes live in a recycled pool (wpool), so steady-state wheel
     * traffic allocates nothing regardless of which buckets fill.
     */
    struct WheelNode
    {
        Entry e;
        /** Next node in the bucket chain, or the free list. */
        uint32_t next = badIndex;
    };

    struct Slot
    {
        /** Stable home of the event's callback until fire/cancel. */
        SmallFunction cb;
        /** Generation checked against the id on deschedule(). */
        uint32_t gen = 1;
        /** Index into heap[] (LocHeap), fifo[] (LocFifo), or the
         *  wheel node pool (LocWheel). */
        uint32_t pos = 0;
        SlotLoc loc = LocFree;
        EventKind kind = EventKind::Generic;
        /** Daemon events never keep the queue alive. */
        bool daemon = false;
        /** Scheduling-site actor tag (ScheduleController only). */
        uint16_t actor = unknownActor;
        /** Seq of the event whose callback scheduled this one. */
        uint64_t parent = noEventSeq;
        uint32_t nextFree = badIndex;
    };

    static bool
    before(const Entry &a, const Entry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /**
     * Shared schedule body: allocate a slot, construct the callback
     * in place (zero relocations), then link the ordering key into
     * the right lane. The lane linkage is out of line (insertEntry);
     * only the thin type-dependent part is instantiated per callable.
     */
    template <typename F>
    EventId
    scheduleImpl(Tick when, F &&callback, EventKind kind,
                 uint16_t actor, bool daemon)
    {
        SPECRT_ASSERT(when >= _curTick,
                      "scheduling in the past: when=%llu cur=%llu",
                      (unsigned long long)when,
                      (unsigned long long)_curTick);
        uint32_t slot = allocSlot();
        Slot &s = slotAt(slot);
        EventId id =
            (static_cast<uint64_t>(slot) + 1) << 32 | s.gen;
        s.cb.emplace(std::forward<F>(callback));
        s.kind = kind;
        s.daemon = daemon;
        s.actor = actor;
        s.parent = curParentSeq;
        if (daemon)
            ++daemonCount;
        insertEntry(when, slot, s);
        return id;
    }

    /** Link an allocated, filled slot's key into the proper lane. */
    void insertEntry(Tick when, uint32_t slot, Slot &s);

    uint32_t allocSlot();
    void freeSlot(uint32_t idx);

    /**
     * Slot lookup. Slots live in fixed-size chunks, so growth never
     * moves an existing slot -- fire() exploits this to run callbacks
     * in place instead of moving them out first.
     */
    Slot &
    slotAt(uint32_t i)
    {
        return slotChunks[i >> slotChunkShift][i & slotChunkMask];
    }
    const Slot &
    slotAt(uint32_t i) const
    {
        return slotChunks[i >> slotChunkShift][i & slotChunkMask];
    }

    /** Decode an id; returns badIndex unless it names a live slot. */
    uint32_t liveSlotOf(EventId id) const;

    void heapSiftUp(size_t i);
    void heapSiftDown(size_t i);
    /** Remove heap[i], returning its key. */
    Entry heapRemove(size_t i);

    /** Advance fifoHead past cancelled entries; recycle when empty. */
    void fifoSkipDead();

    uint32_t allocWheelNode();
    void freeWheelNode(uint32_t n);
    /** Unlink and free the head node of bucket @p b. */
    void popWheelHead(uint32_t b);
    /**
     * Establish the wheel candidate: drop cancelled nodes at the
     * head of the wheelNext bucket and, when a bucket exhausts,
     * rescan forward for the next occupied one. Afterwards wheelNext
     * is either noWheelTick (wheel empty) or the tick of a live head
     * node.
     */
    void wheelAdvance();
    /** Find the next occupied bucket after wheelNext (or go empty). */
    void wheelRescan();

    /** Fire the event owned by @p e (already unlinked from its lane). */
    void fire(const Entry &e);

    /**
     * One scheduling loop step: fire the globally-next event, or
     * return false if none exists or its tick exceeds @p limit.
     */
    bool fireNext(Tick limit);

    /**
     * The controlled variant of fireNext(): gather every ready event
     * at the minimum pending tick from both lanes and let the
     * controller pick which fires. Out of line and cold -- the plain
     * path pays one predicted-not-taken branch for its existence.
     */
    bool fireNextControlled(Tick limit);

    std::vector<Entry> heap;
    std::vector<Entry> fifo;
    size_t fifoHead = 0;
    /** FIFO entries cancelled in place, awaiting skip. */
    size_t fifoDead = 0;

    /** Wheel node pool + free list (nodes recycled, never shrunk). */
    std::vector<WheelNode> wpool;
    uint32_t wheelFree = badIndex;
    /** Per-bucket chain heads/tails (badIndex = empty). */
    std::vector<uint32_t> bucketHead;
    std::vector<uint32_t> bucketTail;
    /** Nodes physically in buckets (live + cancelled-in-place). */
    size_t wheelCount = 0;
    /** Tick of the earliest occupied bucket (noWheelTick if none). */
    Tick wheelNext = noWheelTick;

    /** Chunked slot storage (stable addresses; see slotAt()). */
    static constexpr uint32_t slotChunkShift = 9;
    static constexpr uint32_t slotChunkLen = 1u << slotChunkShift;
    static constexpr uint32_t slotChunkMask = slotChunkLen - 1;
    std::vector<std::unique_ptr<Slot[]>> slotChunks;
    /** Slots constructed so far (chunks * slotChunkLen covers it). */
    uint32_t slotCount = 0;
    uint32_t freeHead = badIndex;
    size_t slotsInUse = 0;

    size_t pendingCount = 0;
    size_t daemonCount = 0;
    Tick _curTick = 0;
    uint64_t nextSeq = 0;
    uint64_t _numFired = 0;
    uint64_t _numFiredTotal = 0;
    bool stopped = false;
    /** Depth of fire() frames on the stack (reset() guard). */
    uint32_t fireDepth = 0;
    /** Seq of the event whose callback is on the stack (creation
     *  edges for EventChoice::parent); noEventSeq outside fire(). */
    uint64_t curParentSeq = noEventSeq;

    ScheduleController *controller = nullptr;
    std::function<void(Tick, EventKind)> postFireHook;

    /** Candidate-gathering scratch of the controlled path. */
    enum class CandLane : uint8_t
    {
        Fifo,
        Wheel,
        Heap,
    };
    struct Cand
    {
        uint64_t seq;
        /** fifo[]/heap[] index, or wheel node id. */
        uint32_t idx;
        CandLane lane;
    };
    std::vector<Cand> candScratch;
    std::vector<EventChoice> choiceScratch;
};

} // namespace specrt

#endif // SPECRT_SIM_EVENT_QUEUE_HH
