#include "sim/trace.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/trace_export.hh"

namespace specrt
{
namespace trace
{

thread_local bool tlsTraceOn = false;

TraceBuffer &
buffer()
{
    return SimContext::current().traceBuffer();
}

void
refreshEnabled()
{
    tlsTraceOn = SimContext::current().traceBuffer().isOn();
}

uint32_t
nextLoopId()
{
    return ++SimContext::current().traceNextLoopId;
}

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::MsgSend: return "msg_send";
      case TraceOp::MsgRecv: return "msg_recv";
      case TraceOp::CacheFill: return "cache_fill";
      case TraceOp::CacheEvict: return "cache_evict";
      case TraceOp::CacheInval: return "cache_inval";
      case TraceOp::DirState: return "dir_state";
      case TraceOp::SpecBit: return "spec_bit";
      case TraceOp::TimeStamp: return "time_stamp";
      case TraceOp::IterBegin: return "iter_begin";
      case TraceOp::IterEnd: return "iter_end";
      case TraceOp::Grant: return "grant";
      case TraceOp::LoopBegin: return "loop_begin";
      case TraceOp::LoopEnd: return "loop_end";
      case TraceOp::Checkpoint: return "checkpoint";
      case TraceOp::Abort: return "abort";
      case TraceOp::Commit: return "commit";
      default: return "?";
    }
}

EventKind
opCategory(TraceOp op)
{
    switch (op) {
      case TraceOp::MsgSend:
      case TraceOp::MsgRecv:
        return EventKind::Network;
      case TraceOp::CacheFill:
      case TraceOp::CacheEvict:
      case TraceOp::CacheInval:
        return EventKind::Cache;
      case TraceOp::DirState:
        return EventKind::Directory;
      case TraceOp::SpecBit:
      case TraceOp::TimeStamp:
      case TraceOp::Abort:
      case TraceOp::Commit:
        return EventKind::Spec;
      case TraceOp::IterBegin:
      case TraceOp::IterEnd:
        return EventKind::Processor;
      case TraceOp::Grant:
      case TraceOp::LoopBegin:
      case TraceOp::LoopEnd:
      case TraceOp::Checkpoint:
        return EventKind::Sched;
      default:
        return EventKind::Generic;
    }
}

const char *
tsStampName(TsStamp s)
{
    switch (s) {
      case TsStamp::MaxR1st: return "MaxR1st";
      case TsStamp::MinW: return "MinW";
      case TsStamp::PMaxR1st: return "PMaxR1st";
      case TsStamp::PMaxW: return "PMaxW";
      default: return "?";
    }
}

void
TraceBuffer::enable(size_t cap)
{
    if (cap == 0)
        cap = 1;
    if (ring.size() != cap) {
        ring.assign(cap, TraceRecord{});
        head = 0;
        wrapped = false;
        total = 0;
    }
    on = true;
    refreshEnabled();
}

void
TraceBuffer::disable()
{
    on = false;
    refreshEnabled();
}

void
TraceBuffer::clear()
{
    head = 0;
    wrapped = false;
    total = 0;
    curLoop = 0;
}

size_t
TraceBuffer::size() const
{
    return wrapped ? ring.size() : head;
}

uint64_t
TraceBuffer::dropped() const
{
    return total - size();
}

const TraceRecord &
TraceBuffer::at(size_t i) const
{
    SPECRT_ASSERT(i < size(), "trace index out of range");
    size_t base = wrapped ? head : 0;
    return ring[(base + i) % ring.size()];
}

void
TraceBuffer::emit(const TraceRecord &r)
{
    if (!on || ring.empty())
        return;
    TraceRecord &slot = ring[head];
    slot = r;
    slot.loop = curLoop;
    ++total;
    if (++head == ring.size()) {
        head = 0;
        wrapped = true;
    }
}

Ctx &
ctx()
{
    return SimContext::current().traceCtx;
}

void
specBits(bool is_write, uint32_t old_packed, uint32_t new_packed)
{
    if (!enabled() || old_packed == new_packed)
        return;
    const Ctx &c = ctx();
    TraceRecord r;
    r.tick = c.tick;
    r.op = TraceOp::SpecBit;
    r.sub = is_write ? 1 : 0;
    r.node = c.node;
    r.iter = c.iter;
    r.addr = c.elem;
    r.a = old_packed;
    r.b = new_packed;
    r.label = is_write ? "write" : "read";
    buffer().emit(r);
}

void
timeStamp(TsStamp which, IterNum old_v, IterNum new_v)
{
    if (!enabled() || old_v == new_v)
        return;
    const Ctx &c = ctx();
    TraceRecord r;
    r.tick = c.tick;
    r.op = TraceOp::TimeStamp;
    r.sub = static_cast<uint8_t>(which);
    r.node = c.node;
    r.iter = c.iter;
    r.addr = c.elem;
    r.a = static_cast<uint64_t>(old_v);
    r.b = static_cast<uint64_t>(new_v);
    r.label = tsStampName(which);
    buffer().emit(r);
}

// --- abort-cause attribution ------------------------------------------

namespace
{

/**
 * Detector reason -> paper rule. Matched by substring so the
 * detectors keep owning the exact phrasing; first hit wins.
 */
struct RuleMap
{
    const char *needle;
    const char *rule;
};

const RuleMap ruleTable[] = {
    // §3.2 non-privatization access bits. The needles cover every
    // detector site: "element written by another" catches the read /
    // read-fill / read-request variants, "element accessed by
    // another" and "element read or written by another" the write
    // variants (tests/test_trace.cc asserts the full coverage).
    {"element written by another",
     "§3.2: a processor may not read an element already written by a "
     "different processor (First/NoShr bits; flow dependence across "
     "iterations)"},
    {"element accessed by another",
     "§3.2: a processor may not write an element already read or "
     "written by a different processor (NoShr bit cleared by a second "
     "accessor)"},
    {"element read or written by another",
     "§3.2: a processor may not write an element already read or "
     "written by a different processor (NoShr bit cleared by a second "
     "accessor)"},
    {"contradictory First merge",
     "§3.2: merging per-processor First bits found two distinct "
     "first accessors for the same element"},
    {"element both written and read-shared",
     "§3.2: merged dirty bits show an element both written and "
     "read-shared across processors (ROnly violated)"},
    {"race between",
     "§3.2: an in-transit spec-bit update raced with a concurrent "
     "access to the same element; the conservative in-transit rule "
     "treats the race as a dependence"},
    {"non-reduction access",
     "reduction test: an array under the reduction test may only be "
     "accessed from its reduction statement (LRPD reduction "
     "validity)"},
    // §3.3 privatization time stamps.
    {"read-first iteration after a writing iteration",
     "§3.3: MaxR1st > MinW -- an iteration read the element before "
     "writing it, while an earlier iteration wrote it (flow "
     "dependence; privatization test fails)"},
    {"writing iteration before a read-first iteration",
     "§3.3: MinW < MaxR1st -- an iteration wrote the element while a "
     "later iteration had read it first (flow dependence; "
     "privatization test fails)"},
};

bool
isAccessOp(const TraceRecord &r)
{
    return r.op == TraceOp::SpecBit || r.op == TraceOp::TimeStamp;
}

} // namespace

const char *
violatedRule(const char *reason)
{
    if (reason) {
        for (const RuleMap &m : ruleTable) {
            if (std::strstr(reason, m.needle))
                return m.rule;
        }
    }
    return "unmapped detector reason -- see §3.2/§3.3 for the access "
           "rules";
}

AbortCause
attributeAbort(const TraceBuffer &buf, Addr elem, NodeId node,
               IterNum iter, const char *reason, Tick tick)
{
    AbortCause cause;
    cause.valid = true;
    cause.elemAddr = elem;
    cause.failNode = node;
    cause.failIter = iter;
    cause.reason = reason;
    cause.rule = violatedRule(reason);

    // Newest-to-oldest. The failing access is the newest record for
    // the element attributable to the failing (node, iteration); a
    // rejected access often left no bit change behind, so it may be
    // absent. The conflicting earlier access is the newest record
    // for the element by any OTHER (node, iteration) pair.
    size_t n = buf.size();
    for (size_t i = n; i-- > 0;) {
        const TraceRecord &r = buf.at(i);
        if (!isAccessOp(r) || r.addr != elem || r.tick > tick)
            continue;
        bool same = r.node == node && r.iter == iter;
        if (same && !cause.haveFailing) {
            cause.failing = r;
            cause.haveFailing = true;
        } else if (!same && !cause.haveEarlier) {
            cause.earlier = r;
            cause.haveEarlier = true;
        }
        if (cause.haveFailing && cause.haveEarlier)
            break;
    }
    return cause;
}

std::string
AbortCause::str() const
{
    std::ostringstream os;
    if (!valid) {
        os << "abort cause: <none>";
        return os.str();
    }
    os << "abort cause: element 0x" << std::hex << elemAddr
       << std::dec << " at node " << failNode << ", iteration "
       << failIter;
    os << "\n  reason: " << (reason ? reason : "?")
       << "\n  rule:   " << (rule ? rule : "?");
    auto access = [&os](const char *tag, const TraceRecord &r) {
        os << "\n  " << tag << " " << traceOpName(r.op) << " ("
           << (r.label ? r.label : "?") << ") by node " << r.node
           << " iter " << r.iter << " @ tick " << r.tick;
    };
    if (haveEarlier)
        access("earlier:", earlier);
    if (haveFailing)
        access("failing:", failing);
    if (!haveEarlier)
        os << "\n  (conflicting access not in the trace ring)";
    return os.str();
}

// --- config / env wiring ----------------------------------------------

const std::string &
outPath()
{
    return SimContext::current().traceOutPath;
}

void
applyConfig(const TraceConfig &tc)
{
    if (!tc.enabled)
        return;
    SimContext &ctx = SimContext::current();
    ctx.traceBuffer().enable(tc.capacityRecords
                                 ? tc.capacityRecords
                                 : TraceBuffer::defaultCapacity);
    if (!tc.outPath.empty())
        ctx.traceOutPath = tc.outPath;
}

namespace
{

/** The environment, parsed once per process (thread-safe). */
const TraceConfig &
envTraceConfig()
{
    static const TraceConfig tc = TraceConfig::fromEnv();
    return tc;
}

} // namespace

bool
maybeEnableFromEnv()
{
    SimContext &ctx = SimContext::current();
    if (!ctx.traceEnvChecked) {
        ctx.traceEnvChecked = true;
        const TraceConfig &tc = envTraceConfig();
        if (tc.enabled) {
            applyConfig(tc);
            // The export happens when the context dies (not via
            // atexit -- thread-locals are destroyed first): CI
            // re-runs failing tests with SPECRT_TRACE set and
            // harvests the file without the test knowing anything
            // about tracing.
            if (!ctx.traceOutPath.empty())
                ctx.traceExportOnDestroy = true;
        }
    }
    return enabled();
}

} // namespace trace
} // namespace specrt
