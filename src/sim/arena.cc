#include "sim/arena.hh"

#include <atomic>
#include <mutex>

#include "sim/logging.hh"

namespace specrt
{

namespace
{

/**
 * Retired arenas waiting for the next SimContext. Bounded so a burst
 * of short-lived contexts cannot hoard slabs forever.
 */
constexpr size_t maxPooled = 64;
std::mutex poolMutex;
std::vector<std::unique_ptr<Arena>> pool;

/** Process-wide maximum of every sampled per-arena high-water mark. */
std::atomic<uint64_t> procHighWater{0};

void
noteHighWater(uint64_t hwm)
{
    uint64_t cur = procHighWater.load(std::memory_order_relaxed);
    while (hwm > cur &&
           !procHighWater.compare_exchange_weak(
               cur, hwm, std::memory_order_relaxed))
        ;
}

} // namespace

Arena::~Arena()
{
    noteHighWater(_highWater);
    for (char *slab : slabs)
        ::operator delete(slab);
}

int
Arena::classOf(size_t bytes)
{
    if (bytes > maxClassBytes)
        return -1;
    int cls = 0;
    size_t sz = minClassBytes;
    while (sz < bytes) {
        sz <<= 1;
        ++cls;
    }
    return cls;
}

void *
Arena::carve(int cls)
{
    size_t need = classBytes(cls);
    if (static_cast<size_t>(slabEnd - slabCur) < need) {
        char *slab = static_cast<char *>(::operator new(slabBytes));
        slabs.push_back(slab);
        slabCur = slab;
        slabEnd = slab + slabBytes;
    }
    void *p = slabCur;
    slabCur += need;
    ++_carved;
    return p;
}

void *
Arena::alloc(size_t bytes)
{
    int cls = classOf(bytes);
    if (cls < 0) {
        ++_oversizeAllocs;
        ++_allocs;
        if (live() > _highWater)
            _highWater = live();
        _bytesServed += bytes;
        return ::operator new(bytes);
    }

    void *p;
    if (FreeBlock *b = freelists[cls]) {
        freelists[cls] = b->next;
        ++_reused;
        p = b;
    } else {
        p = carve(cls);
    }
    ++_allocs;
    if (live() > _highWater)
        _highWater = live();
    _bytesServed += classBytes(cls);
    return p;
}

void
Arena::free(void *p, size_t bytes)
{
    if (!p)
        return;
    ++_frees;
    int cls = classOf(bytes);
    if (cls < 0) {
        ::operator delete(p);
        return;
    }
    auto *b = static_cast<FreeBlock *>(p);
    b->next = freelists[cls];
    freelists[cls] = b;
}

void
Arena::reset()
{
    SPECRT_ASSERT(live() == 0,
                  "arena reset with %llu blocks outstanding",
                  (unsigned long long)live());
    noteHighWater(_highWater);
    _allocs = 0;
    _frees = 0;
    _highWater = 0;
    _bytesServed = 0;
    _oversizeAllocs = 0;
    // Warmth diagnostics survive: they describe the arena, not a job.
}

uint64_t
Arena::maxHighWater()
{
    return procHighWater.load(std::memory_order_relaxed);
}

std::unique_ptr<Arena>
Arena::acquire()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        if (!pool.empty()) {
            std::unique_ptr<Arena> a = std::move(pool.back());
            pool.pop_back();
            return a;
        }
    }
    return std::make_unique<Arena>();
}

void
Arena::recycle(std::unique_ptr<Arena> arena)
{
    if (!arena || arena->live() != 0)
        return; // outstanding blocks: safer to let it die
    arena->reset();
    std::lock_guard<std::mutex> lock(poolMutex);
    if (pool.size() < maxPooled)
        pool.push_back(std::move(arena));
}

ArenaStats::ArenaStats(const Arena &a)
    : StatGroup("arena"),
      allocs(this, "allocs", "pooled message blocks handed out",
             [&a] { return double(a.allocs()); }),
      frees(this, "frees", "pooled message blocks returned",
            [&a] { return double(a.frees()); }),
      live(this, "live", "pooled blocks outstanding",
           [&a] { return double(a.live()); }, false),
      highWater(this, "high_water", "most blocks outstanding at once",
                [&a] { return double(a.highWater()); }, false),
      bytesServed(this, "bytes_served",
                  "payload bytes served (size-class bytes)",
                  [&a] { return double(a.bytesServed()); }),
      oversizeAllocs(this, "oversize_allocs",
                     "requests above the largest size class",
                     [&a] { return double(a.oversizeAllocs()); })
{
}

} // namespace specrt
