/**
 * @file
 * Critical-path recorder: per-transaction latency records and the
 * dominant-chain report.
 *
 * The stall engine (sim/stall.hh) says how many cycles each node lost
 * to each cause; the recorder says *which transactions* carried the
 * loss. It keeps, per profiled run:
 *
 *  - per-transaction latency records for the slowest load misses
 *    (request -> dir queue -> forward -> ack), with the queue-wait /
 *    network / retry / service split the stall engine reconciled;
 *  - a per-home-node aggregation of directory queue wait (who was
 *    the hot home, over which element range);
 *  - the run-level cause totals, from which the dependence-chain
 *    reducer derives the dominant chain, e.g.\
 *    "run bounded 61% by dir-queue at home node 3,
 *     elements 0x400-0x5f8".
 *
 * The report lands in three places: the trace text summary
 * (sim/trace_export.hh), the abort-attribution warn channel
 * (spec/spec_unit.cc), and a standalone Perfetto JSON export whose
 * async track (pid 9997) renders each slow transaction as nested
 * "b"/"e" slices -- one child slice per latency component.
 *
 * Like the trace and the timeline, the recorder is instance-scoped:
 * the current SimContext owns one, campaign jobs each fill their own,
 * and merge() folds job recorders into the process-level one in
 * job-id order, so `--jobs N` exports are byte-identical to
 * `--jobs 1`. Everything here is host-side observability: enabling
 * it never changes modeled timing, and the hot-path guard follows
 * the trace.hh thread-local-latch discipline.
 */

#ifndef SPECRT_SIM_CRITPATH_HH
#define SPECRT_SIM_CRITPATH_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stall.hh"
#include "sim/types.hh"

namespace specrt
{

struct CritpathConfig;

namespace critpath
{

/** One completed load-miss transaction (latency split in cycles). */
struct TxnRecord
{
    NodeId node = 0;   ///< requester
    NodeId home = 0;   ///< home directory of the line
    Addr line = 0;
    Addr elem = 0;
    IterNum iter = 0;
    uint64_t seq = 0;  ///< cache-controller txn sequence
    Tick start = 0;
    Tick end = 0;
    double dirWait = 0; ///< home queue + controller occupancy
    double net = 0;     ///< network transit
    double retry = 0;   ///< watchdog retry windows
    double service = 0; ///< memory/owner service (the remainder)

    double latency() const { return static_cast<double>(end - start); }
};

class Recorder
{
  public:
    /** Transaction records kept (the slowest ones). */
    static constexpr size_t topK = 32;

    /** Synthetic Perfetto pid of the critical-path async track. */
    static constexpr int perfettoPid = 9997;

    /** Start collecting; idempotent, keeps accumulated data. */
    void enable();
    /** Stop collecting; accumulated data stays exportable. */
    void disable();
    bool isOn() const { return on; }

    /** Per-home directory-queue aggregation. */
    struct HomeAgg
    {
        double dirWait = 0;
        uint64_t txns = 0;
        Addr minElem = static_cast<Addr>(-1);
        Addr maxElem = 0;
    };

    /** Fold in one completed transaction (stall::Engine calls this). */
    void addTxn(const TxnRecord &r);

    /**
     * Fold in one run's cause totals (loop_exec, at run end):
     * per-node-summed @p busy cycles, per-cause stall cycles, the
     * run length @p run_ticks, over @p nprocs nodes.
     */
    void addRunTotals(double busy,
                      const std::array<double, stall::numCauses>
                          &stalls,
                      double run_ticks, int nprocs);

    bool hasData() const { return runsSeen > 0 || txnsSeen > 0; }
    uint64_t numRuns() const { return runsSeen; }
    uint64_t numTxns() const { return txnsSeen; }
    double causeTotal(stall::Cause c) const
    {
        return stallTotals[static_cast<size_t>(c)];
    }
    double busyCycles() const { return busyTotal; }
    const std::vector<TxnRecord> &slowest() const { return top; }
    const std::map<NodeId, HomeAgg> &homes() const { return homeAgg; }

    /**
     * Fold @p shard into this recorder: totals and home aggregates
     * sum, slowest-transaction lists merge and re-truncate. Called
     * in job-id order by the campaign merge path, making the result
     * independent of --jobs.
     */
    void merge(const Recorder &shard);

    /**
     * The dominant-chain report, e.g.\ "run bounded 61% by dir-queue
     * at home node 3, elements 0x400-0x5f8". Empty when nothing was
     * attributed.
     */
    std::string summaryLine() const;

    /**
     * Standalone Chrome/Perfetto JSON: an async track (pid 9997, one
     * tid per node) with nested per-component slices for each slow
     * transaction, plus a machine-readable "critpath" object with
     * the cause totals and the summary line.
     */
    std::string perfettoJson() const;

    /**
     * Append this recorder's async-track events to an existing
     * traceEvents stream (sim/trace_export.cc merges them into the
     * combined trace JSON). @p first tracks comma placement.
     */
    void appendTraceEvents(std::string &out, bool &first) const;

  private:
    bool on = false;
    std::array<double, stall::numCauses> stallTotals{};
    double busyTotal = 0;
    double runTicksTotal = 0;
    int procsMax = 0;
    uint64_t runsSeen = 0;
    uint64_t txnsSeen = 0;
    std::map<NodeId, HomeAgg> homeAgg;
    /** Kept sorted slowest-first, at most topK entries. */
    std::vector<TxnRecord> top;
};

/** The current context's recorder (per-instance, like the trace). */
Recorder &current();

/** Mirror of Recorder::isOn() for the thread's current context. */
extern thread_local bool tlsCritpathOn;

/** Cheap guard; true when the current recorder collects. */
inline bool enabled() { return tlsCritpathOn; }

/** Re-sync the thread-local latch with the current context. */
void refreshEnabled();

/** Enable the current context's recorder per @p cfg (no-op if off). */
void applyConfig(const CritpathConfig &cfg);

/**
 * Apply SPECRT_CRITPATH / SPECRT_CRITPATH_OUT to the current
 * context, once per context; returns enabled(). With an output path
 * set, the context exports the Perfetto JSON when it dies (mirrors
 * SPECRT_TRACE / SPECRT_TIMELINE).
 */
bool maybeEnableFromEnv();

/**
 * The current recorder's dominant-chain line, or "" when the
 * recorder is off or empty (trace_export / spec_unit append this).
 */
std::string summaryLine();

} // namespace critpath
} // namespace specrt

#endif // SPECRT_SIM_CRITPATH_HH
