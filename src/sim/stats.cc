#include "sim/stats.hh"

#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>

#include "sim/logging.hh"

namespace specrt
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    for (const StatBase *stat : stats)
        stat->print(os, full);
    for (const StatGroup *child : children)
        child->dump(os, full);
}

void
StatGroup::snapshot(StatSnapshot &out, const std::string &prefix) const
{
#ifndef NDEBUG
    size_t first = out.size();
#endif
    snapshotInto(out, prefix);
#ifndef NDEBUG
    // Duplicate dotted names (two same-named children, say) would
    // silently shadow each other in every keyed consumer; check the
    // range this call appended.
    std::set<std::string> seen;
    for (size_t i = first; i < out.size(); ++i) {
        SPECRT_ASSERT(seen.insert(out[i].first).second,
                      "duplicate stat name '%s' in snapshot of "
                      "group '%s'",
                      out[i].first.c_str(), _name.c_str());
    }
#endif
}

void
StatGroup::snapshotInto(StatSnapshot &out,
                        const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    for (const StatBase *stat : stats)
        stat->snapshot(out, full);
    for (const StatGroup *child : children)
        child->snapshotInto(out, full);
}

void
StatGroup::resetStats()
{
    for (StatBase *stat : stats)
        stat->reset();
    for (StatGroup *child : children)
        child->resetStats();
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << "." << name() << " " << _value
       << " # " << desc() << "\n";
}

void
Scalar::snapshot(StatSnapshot &out, const std::string &prefix) const
{
    out.emplace_back(prefix + "." + name(), _value);
}

void
CallbackStat::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << "." << name() << " " << value()
       << " # " << desc() << "\n";
}

void
CallbackStat::snapshot(StatSnapshot &out,
                       const std::string &prefix) const
{
    out.emplace_back(prefix + "." + name(), value());
}

double
VectorStat::total() const
{
    double t = 0;
    for (double v : values)
        t += v;
    return t;
}

void
VectorStat::print(std::ostream &os, const std::string &prefix) const
{
    for (size_t i = 0; i < values.size(); ++i) {
        os << prefix << "." << name() << "[" << i << "] " << values[i]
           << " # " << desc() << "\n";
    }
    os << prefix << "." << name() << ".total " << total()
       << " # " << desc() << "\n";
}

void
VectorStat::snapshot(StatSnapshot &out, const std::string &prefix) const
{
    // Telemetry keeps the aggregate; per-index values stay a
    // print()-only affair to keep the JSON records small.
    out.emplace_back(prefix + "." + name() + ".total", total());
}

void
VectorStat::reset()
{
    for (double &v : values)
        v = 0;
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double lo_, double hi_,
                           double bucket_size)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo(lo_), hi(hi_), bucketSize(bucket_size)
{
    SPECRT_ASSERT(hi > lo && bucket_size > 0, "bad distribution params");
    size_t n = static_cast<size_t>(std::ceil((hi - lo) / bucketSize));
    buckets.assign(n ? n : 1, 0);
}

void
Distribution::sample(double v, uint64_t count)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        if (v < _min) _min = v;
        if (v > _max) _max = v;
    }
    _count += count;
    sum += v * count;

    if (v < lo) {
        underflow += count;
    } else if (v >= hi) {
        overflow += count;
    } else {
        auto idx = static_cast<size_t>((v - lo) / bucketSize);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        buckets[idx] += count;
    }
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix + "." + name();
    os << full << ".count " << _count << " # " << desc() << "\n";
    os << full << ".mean " << mean() << " # " << desc() << "\n";
    os << full << ".min " << min() << " # " << desc() << "\n";
    os << full << ".max " << max() << " # " << desc() << "\n";
    if (underflow)
        os << full << ".underflow " << underflow << "\n";
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        double b_lo = lo + i * bucketSize;
        os << full << ".bucket[" << b_lo << "," << (b_lo + bucketSize)
           << ") " << buckets[i] << "\n";
    }
    if (overflow)
        os << full << ".overflow " << overflow << "\n";
}

void
Distribution::snapshot(StatSnapshot &out,
                       const std::string &prefix) const
{
    std::string full = prefix + "." + name();
    out.emplace_back(full + ".count",
                     static_cast<double>(_count));
    out.emplace_back(full + ".mean", mean());
    out.emplace_back(full + ".min", min());
    out.emplace_back(full + ".max", max());
    // Out-of-range mass and the populated buckets, mirroring
    // print(): underflow/overflow are always present (consumers key
    // on them), buckets only when non-zero (keeps records small).
    out.emplace_back(full + ".underflow",
                     static_cast<double>(underflow));
    out.emplace_back(full + ".overflow",
                     static_cast<double>(overflow));
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        double b_lo = lo + i * bucketSize;
        std::ostringstream key;
        key << full << ".bucket[" << b_lo << ","
            << (b_lo + bucketSize) << ")";
        out.emplace_back(key.str(),
                         static_cast<double>(buckets[i]));
    }
}

void
Distribution::reset()
{
    for (uint64_t &b : buckets)
        b = 0;
    underflow = overflow = 0;
    _count = 0;
    sum = 0;
    _min = _max = 0;
}

} // namespace specrt
