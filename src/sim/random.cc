#include "sim/random.hh"

#include "sim/logging.hh"

namespace specrt
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    SPECRT_ASSERT(bound > 0, "nextBounded(0)");
    // Reject to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    SPECRT_ASSERT(lo <= hi, "nextRange with lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)   // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

uint64_t
deriveSeed(uint64_t base, const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL; // FNV-1a prime
    }
    uint64_t x = base ^ h;
    return splitmix64(x);
}

} // namespace specrt
