#include "sim/config.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace specrt
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

TraceConfig
TraceConfig::fromEnv()
{
    TraceConfig tc;
    const char *v = std::getenv("SPECRT_TRACE");
    if (!v || !*v || std::string(v) == "0")
        return tc;
    tc.enabled = true;
    if (std::string(v) != "1")
        tc.outPath = v;
    if (const char *out = std::getenv("SPECRT_TRACE_OUT"))
        tc.outPath = out;
    if (const char *cap = std::getenv("SPECRT_TRACE_CAPACITY")) {
        char *end = nullptr;
        unsigned long long n = std::strtoull(cap, &end, 10);
        if (end && *end == '\0' && n > 0)
            tc.capacityRecords = static_cast<size_t>(n);
        else
            warn("ignoring bad SPECRT_TRACE_CAPACITY '%s'", cap);
    }
    return tc;
}

TimelineConfig
TimelineConfig::fromEnv()
{
    TimelineConfig tc;
    const char *v = std::getenv("SPECRT_TIMELINE");
    if (!v || !*v || std::string(v) == "0")
        return tc;
    tc.enabled = true;
    if (std::string(v) != "1")
        tc.outPath = v;
    if (const char *out = std::getenv("SPECRT_TIMELINE_OUT"))
        tc.outPath = out;
    if (const char *iv = std::getenv("SPECRT_TIMELINE_INTERVAL")) {
        char *end = nullptr;
        unsigned long long n = std::strtoull(iv, &end, 10);
        if (end && *end == '\0' && n > 0)
            tc.intervalTicks = static_cast<Tick>(n);
        else
            warn("ignoring bad SPECRT_TIMELINE_INTERVAL '%s'", iv);
    }
    return tc;
}

CritpathConfig
CritpathConfig::fromEnv()
{
    CritpathConfig cc;
    const char *v = std::getenv("SPECRT_CRITPATH");
    if (!v || !*v || std::string(v) == "0")
        return cc;
    cc.enabled = true;
    if (std::string(v) != "1")
        cc.outPath = v;
    if (const char *out = std::getenv("SPECRT_CRITPATH_OUT"))
        cc.outPath = out;
    return cc;
}

void
MachineConfig::validate() const
{
    if (numProcs < 1 || numProcs > 1024)
        fatal("numProcs must be in [1, 1024], got %d", numProcs);
    if (!isPow2(pageBytes))
        fatal("pageBytes must be a power of two, got %u", pageBytes);
    for (const CacheConfig *c : {&l1, &l2}) {
        if (!isPow2(c->lineBytes) || !isPow2(c->sizeBytes))
            fatal("cache size/line must be powers of two");
        if (c->sizeBytes < c->lineBytes)
            fatal("cache smaller than one line");
    }
    if (l1.lineBytes != l2.lineBytes)
        fatal("L1 and L2 must share a line size (got %u vs %u)",
              l1.lineBytes, l2.lineBytes);
    if (l2.sizeBytes < l1.sizeBytes)
        fatal("L2 must be at least as large as L1 (inclusion)");
    if (writeBufferEntries < 1)
        fatal("writeBufferEntries must be >= 1");
    for (double p : {fault.dropProb, fault.dupProb, fault.jitterProb}) {
        if (p < 0 || p > 1)
            fatal("fault probabilities must be in [0, 1], got %g", p);
    }
    if (fault.dropProb > 0 && fault.watchdogTimeout == 0)
        fatal("fault.dropProb requires the transaction watchdog "
              "(fault.watchdogTimeout > 0): dropped requests are "
              "only recovered by requester retry");
    if (fault.watchdogMaxRetries < 0)
        fatal("fault.watchdogMaxRetries must be >= 0");
}

std::string
MachineConfig::summary() const
{
    std::ostringstream os;
    os << numProcs << " procs, L1 " << (l1.sizeBytes / 1024) << "KB/"
       << l1.lineBytes << "B, L2 " << (l2.sizeBytes / 1024) << "KB/"
       << l2.lineBytes << "B, page " << pageBytes << "B";
    return os.str();
}

uint64_t
MachineConfig::fingerprint() const
{
    uint64_t h = 14695981039346656037ull; // FNV offset basis
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull; // FNV prime
        }
    };
    mix(static_cast<uint64_t>(numProcs));
    mix(pageBytes);
    mix(l1.sizeBytes);
    mix(l1.lineBytes);
    mix(l2.sizeBytes);
    mix(l2.lineBytes);
    mix(lat.l1Hit);
    mix(lat.l2Access);
    mix(lat.dirMemAccess);
    mix(lat.dirLookup);
    mix(lat.ownerAccess);
    mix(lat.netHop);
    mix(lat.invalCycles);
    mix(lat.dirOccupancy);
    mix(lat.memOccupancy);
    mix(static_cast<uint64_t>(writeBufferEntries));
    mix(schedLockCycles);
    mix(barrierCycles);
    return h;
}

} // namespace specrt
