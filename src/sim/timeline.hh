/**
 * @file
 * Time-series metrics engine: periodic stat sampling, per-directory
 * hot-spot heatmaps, and the data behind Perfetto counter tracks.
 *
 * End-of-run StatGroup::snapshot() dumps say how much each protocol
 * phase cost but not *when* the cost accrued or *which* home node was
 * hot. The paper's evaluation (Fig. 12 overhead breakdown, Fig. 13
 * early-abort timing, the claim that speculative transactions
 * serialize at the home directory) is all about exactly those two
 * axes, so the Timeline records both:
 *
 *  - a column-oriented time series: a RunSampler self-schedules a
 *    sampling event every N ticks on the machine's EventQueue and
 *    captures *deltas* of registered StatGroups plus live gauges
 *    (network in-flight messages, per-directory queue depth and
 *    occupancy, outstanding speculative iterations) as one row;
 *
 *  - an access-conflict heatmap keyed by home node x element bucket,
 *    fed from the directory controller (accesses, line-busy queueing)
 *    and from abort attribution (conflicts).
 *
 * Like the protocol trace, the Timeline is instance-scoped: the
 * current SimContext owns one, campaign jobs each fill their own, and
 * merge() folds job timelines into the process-level one in job-id
 * order so `--jobs N` output is byte-identical to `--jobs 1`.
 *
 * Exports: csv() (bench --timeline-out), Perfetto counter tracks
 * merged into the trace_export JSON on the same timebase, and
 * hotSummary() appended to the abort-attribution report.
 *
 * The hot-path feeds (dirAccess() etc.) follow the trace.hh pattern:
 * a thread-local enable latch makes the disabled case one predictable
 * branch, and refreshEnabled() re-syncs the latch when the current
 * context changes or the timeline is (en|dis)abled.
 */

#ifndef SPECRT_SIM_TIMELINE_HH
#define SPECRT_SIM_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace specrt
{

struct TimelineConfig;

namespace timeline
{

/** Mirror of Timeline::isOn() for the thread's current context. */
extern thread_local bool tlsTimelineOn;

/** Cheap hot-path guard; true when the current timeline collects. */
inline bool enabled() { return tlsTimelineOn; }

/** Re-sync the thread-local latch with the current context. */
void refreshEnabled();

/** One heatmap cell: contention counters for (home, bucket). */
struct HeatCell
{
    uint64_t accesses = 0;   ///< directory requests processed
    uint64_t queued = 0;     ///< requests that waited behind a txn
    uint64_t conflicts = 0;  ///< abort-attributed conflicts
};

class Timeline
{
  public:
    /** Sampling period when the caller does not pick one. */
    static constexpr Tick defaultIntervalTicks = 5000;

    /** Elements within one bucket share a heatmap cell (64 words). */
    static constexpr int bucketShift = 6;

    /** One named counter column of the sample matrix. */
    struct Series
    {
        std::string name;
        std::vector<double> values;  ///< one entry per sample row
    };

    /** Start collecting; idempotent, keeps accumulated data. */
    void enable(Tick interval = defaultIntervalTicks);
    /** Stop collecting; accumulated data stays exportable. */
    void disable();

    bool isOn() const { return on; }
    Tick interval() const { return intervalTicks; }

    /**
     * Allocate the next run id. A "run" is one sampled execution
     * (one LoopExecutor::run() or one campaign job after merge);
     * rows carry their run id so merged timelines keep per-run
     * timebases apart.
     */
    uint32_t beginRun() { return nextRun++; }

    /**
     * Append one sample row at @p tick for run @p run. Absent series
     * get 0 for this row; series first seen now are zero-backfilled
     * for earlier rows, keeping the matrix rectangular. The built-in
     * "spec.transitions" series (spec-bit / time-stamp changes since
     * the previous sample) is always emitted, so a run with zero
     * registered groups and zero gauges still produces rows.
     */
    void sample(Tick tick, uint32_t run,
                const std::vector<std::pair<std::string, double>>
                    &values);

    size_t numSamples() const { return ticks_.size(); }
    size_t numSeries() const { return series_.size(); }
    const std::vector<Tick> &sampleTicks() const { return ticks_; }
    const std::vector<uint32_t> &sampleRuns() const { return runs_; }
    const std::vector<Series> &allSeries() const { return series_; }

    // --- contention heatmap -------------------------------------------

    void noteDirAccess(NodeId home, Addr elem);
    void noteDirQueued(NodeId home, Addr elem);
    void noteDirConflict(NodeId home, Addr elem);
    /** One §3.2 spec-bit / §3.3 time-stamp change (built-in series). */
    void noteSpecTransition() { ++pendingSpecTransitions; }

    const std::map<std::pair<NodeId, Addr>, HeatCell> &
    heatMap() const
    {
        return heat;
    }

    // --- campaign merge -----------------------------------------------

    /**
     * Fold @p shard into this timeline: its rows are appended with
     * run ids offset past ours, its series united by name (new names
     * zero-backfilled on both sides), its heat cells summed. Called
     * in job-id order by the campaign merge path, which makes the
     * result independent of --jobs.
     */
    void merge(const Timeline &shard);

    // --- exports ------------------------------------------------------

    /**
     * The sample matrix as CSV: header "tick,run,<series...>", one
     * row per sample, then the heatmap as '#'-prefixed footer lines
     * (deterministic map order).
     */
    std::string csv() const;

    /**
     * Text "top hot elements / hot home nodes" summary for the
     * abort-attribution report; empty string when the heatmap is.
     */
    std::string hotSummary(size_t topK = 5) const;

  private:
    size_t seriesIndexOf(const std::string &name);

    bool on = false;
    Tick intervalTicks = defaultIntervalTicks;
    uint32_t nextRun = 0;
    uint64_t pendingSpecTransitions = 0;

    // Column store: ticks_/runs_ are the row keys; every Series has
    // exactly ticks_.size() values.
    std::vector<Tick> ticks_;
    std::vector<uint32_t> runs_;
    std::vector<Series> series_;
    std::map<std::string, size_t> seriesIndex;

    std::map<std::pair<NodeId, Addr>, HeatCell> heat;
};

/** The current context's timeline (per-instance, like the trace). */
Timeline &current();

// --- hot-path feeds ---------------------------------------------------
// One branch when disabled; instrumentation sites call these
// unconditionally.

inline void
dirAccess(NodeId home, Addr elem)
{
    if (enabled())
        current().noteDirAccess(home, elem);
}

inline void
dirQueued(NodeId home, Addr elem)
{
    if (enabled())
        current().noteDirQueued(home, elem);
}

inline void
dirConflict(NodeId home, Addr elem)
{
    if (enabled())
        current().noteDirConflict(home, elem);
}

inline void
specTransition()
{
    if (enabled())
        current().noteSpecTransition();
}

/**
 * Samples the current timeline every Timeline::interval() ticks for
 * the duration of one run, by scheduling its own daemon events on
 * the run's EventQueue.
 *
 * The machine's queue is drain-driven (run() returns when the queue
 * empties), and phase durations are read off curTick afterwards, so
 * the sampler must neither keep the queue alive nor advance time
 * past the real work. Daemon events (EventQueue::scheduleDaemon)
 * guarantee both: a drain stops, leaving the sampling event pending,
 * once only daemons remain. The pending event carries over to the
 * next eq.run() leg; the executor also calls arm() before every leg
 * (idempotent while an event is in flight) to restart sampling after
 * machine resets.
 *
 * EventQueue::reset() (machine reset between phases) discards the
 * pending event and restarts event generations, so a stale EventId
 * could alias a fresh event; the sampler therefore never deschedules.
 * It hands each scheduled callback a shared token and a weak_ptr to
 * its state: a fired callback whose token is no longer current -- or
 * whose sampler has finished -- does nothing.
 */
class RunSampler
{
  public:
    /**
     * Inert unless timeline::enabled() at construction: a disabled
     * timeline schedules zero events. @p eq must outlive the sampler.
     */
    explicit RunSampler(EventQueue &eq);
    ~RunSampler() { finish(); }

    RunSampler(const RunSampler &) = delete;
    RunSampler &operator=(const RunSampler &) = delete;

    /** Sample @p name via @p fn at every sampling point. */
    void addGauge(std::string name,
                  std::function<double()> fn);

    /**
     * Sample every stat under @p group as a per-interval delta
     * ("delta." + dotted name). A stat that shrank (reset mid-run)
     * restarts from its new absolute value, the Prometheus counter
     * rule, so resets do not produce negative spikes.
     */
    void addStatDelta(const StatGroup &group);

    /**
     * Ensure a sampling event is scheduled; call before each
     * eq.run() leg. No-op when inert, finished, or already armed.
     */
    void arm();

    /** Take a final sample and go inert; idempotent. */
    void finish();

    bool active() const { return st != nullptr; }

  private:
    struct State
    {
        EventQueue *eq = nullptr;
        Timeline *tl = nullptr;
        uint32_t runId = 0;
        Tick interval = Timeline::defaultIntervalTicks;
        std::vector<std::pair<std::string,
                              std::function<double()>>> gauges;
        struct DeltaGroup
        {
            const StatGroup *group;
            /**
             * Previous absolute values by name, not by position:
             * Distribution snapshots grow per-bucket keys as buckets
             * fill, so snapshot positions shift between samples.
             */
            std::map<std::string, double> prev;
        };
        std::vector<DeltaGroup> deltas;
        /**
         * Alive while a sampling event is in flight; each scheduled
         * callback keeps a copy, so use_count() > 1 means armed, and
         * replacing the token orphans stale callbacks (they compare
         * tokens and bail).
         */
        std::shared_ptr<char> pending;
    };

    static void takeSample(State &s);
    static void armLocked(const std::shared_ptr<State> &s);

    std::shared_ptr<State> st;
};

// --- config / env wiring ----------------------------------------------

/** Enable the current context's timeline per @p cfg (no-op if off). */
void applyConfig(const TimelineConfig &cfg);

/**
 * Apply SPECRT_TIMELINE / SPECRT_TIMELINE_OUT /
 * SPECRT_TIMELINE_INTERVAL to the current context, once per context;
 * returns enabled(). With an output path set, the context exports
 * the CSV when it dies (mirrors SPECRT_TRACE).
 */
bool maybeEnableFromEnv();

} // namespace timeline
} // namespace specrt

#endif // SPECRT_SIM_TIMELINE_HH
